// Remote monitoring and profiling services (paper section 3.3).
//
// AuditFilter / ProfileFilter are static components that instrument method
// entries (and exits, for auditing) with calls into the dvm/rt/Auditor and
// dvm/rt/Profiler dynamic components. The dynamic components forward events to
// the central AdministrationConsole over a handshake-established session, so
// audit logs live on a host that untrusted code cannot tamper with.
//
// The profiler additionally builds the dynamic call graph and the first-use
// method order that drives the repartitioning optimizer (section 5).
#ifndef SRC_SERVICES_MONITOR_SERVICE_H_
#define SRC_SERVICES_MONITOR_SERVICE_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/rewrite/filter.h"
#include "src/runtime/machine.h"
#include "src/support/stats.h"
#include "src/support/trace.h"

namespace dvm {

// --- central console ---------------------------------------------------------

struct AuditEvent {
  uint64_t session_id = 0;
  uint64_t sequence = 0;
  std::string kind;       // "enter", "exit", "session-start", ...
  std::string detail;     // usually "class.method"
};

struct MonitoredSession {
  uint64_t session_id = 0;
  std::string user;
  std::string client_host;
  std::string hardware_config;
  std::string vm_version;
};

// One replica's periodic StatsRegistry snapshot as received by the console.
struct ReplicaSnapshot {
  size_t replica = 0;
  uint64_t taken_at = 0;  // virtual nanos at the replica when snapped
  uint64_t received_at = 0;  // virtual nanos at the console on delivery
  StatsSnapshot stats;
};

// The administration console: session handshakes, bounded audit log and span
// ring, aggregate call graph, code-usage statistics, and the fleet metrics
// sink (per-replica snapshots, exact fleet merge, divergence view).
class AdministrationConsole {
 public:
  // The log and span stores are rings, not append-only vectors: a console fed
  // by 10^6 clients must hold the most recent window under a fixed RSS
  // ceiling, counting what it sheds. Defaults keep every existing
  // single-process workload lossless.
  static constexpr size_t kDefaultLogCapacity = 1 << 16;
  static constexpr size_t kDefaultSpanCapacity = 1 << 16;

  explicit AdministrationConsole(size_t log_capacity = kDefaultLogCapacity,
                                 size_t span_capacity = kDefaultSpanCapacity)
      : log_capacity_(log_capacity), span_ring_(span_capacity) {}

  // Handshake: establishes credentials and assigns a session identifier.
  uint64_t OpenSession(const std::string& user, const std::string& client_host,
                       const std::string& hardware_config, const std::string& vm_version);

  void Append(AuditEvent event);
  // Call-graph edge (caller -> callee) reported by the profiling service.
  void RecordCallEdge(const std::string& caller, const std::string& callee);
  void RecordFirstUse(uint64_t session_id, const std::string& method_id);
  // Code-version inventory (section 3.3: the console "monitors ... code
  // versions"): digest of each class version the proxy served, plus a flag
  // when a class changed digest mid-flight (stale mirrors, upgrades).
  void RecordCodeVersion(const std::string& class_name, const std::string& digest_hex);

  // Trace sink (§3.3's central observation point, extended to spans): pulls
  // every completed span out of `tracer` and files it next to the audit log,
  // so the organization's console holds the full virtual-time execution trace
  // of its clients. Exported via ChromeTraceJson(trace_spans()).
  void IngestTrace(const Tracer& tracer);
  void RecordSpan(Span span);
  // Ring contents, oldest first (materialized copy — the backing store is a
  // bounded ring, not a stable vector).
  std::vector<Span> trace_spans() const { return span_ring_.Snapshot(); }
  // Totals ever ingested / shed, not the current ring occupancy.
  uint64_t spans_ingested() const { return span_ring_.ingested(); }
  uint64_t spans_dropped() const { return span_ring_.dropped(); }

  std::vector<AuditEvent> log() const {
    return std::vector<AuditEvent>(log_.begin(), log_.end());
  }
  const std::vector<MonitoredSession>& sessions() const { return sessions_; }
  const std::map<std::pair<std::string, std::string>, uint64_t>& call_graph() const {
    return call_graph_;
  }
  // First-use order of methods for a session (repartitioning input).
  const std::vector<std::string>& FirstUseOrder(uint64_t session_id) const;
  const std::map<std::string, std::string>& code_versions() const { return code_versions_; }
  uint64_t code_version_changes() const { return code_version_changes_; }

  uint64_t events_received() const { return events_received_; }
  uint64_t events_dropped() const { return events_dropped_; }

  // --- fleet metrics sink ------------------------------------------------------
  // Latest snapshot per replica (a newer taken_at replaces the previous one).
  void IngestReplicaSnapshot(size_t replica, uint64_t taken_at, uint64_t received_at,
                             StatsSnapshot stats);
  const std::map<size_t, ReplicaSnapshot>& replica_snapshots() const {
    return replica_snapshots_;
  }
  uint64_t snapshots_ingested() const { return snapshots_ingested_; }
  // Exact union of every replica's latest snapshot (counters add, histogram
  // buckets add) — what a fleet-level scrape sees.
  StatsSnapshot FleetMerged() const;
  // Prometheus exposition of the fleet merge.
  std::string FleetPrometheus() const;
  // Per-counter per-replica values with min/max spread: the view that makes a
  // diverging replica (stale epoch, shedding alone, cold caches) stand out.
  std::string DivergenceView() const;

 private:
  uint64_t next_session_id_ = 1;
  std::vector<MonitoredSession> sessions_;
  size_t log_capacity_;
  std::deque<AuditEvent> log_;
  uint64_t events_received_ = 0;
  uint64_t events_dropped_ = 0;
  std::map<std::pair<std::string, std::string>, uint64_t> call_graph_;
  std::map<uint64_t, std::vector<std::string>> first_use_;
  std::map<std::string, std::string> code_versions_;
  uint64_t code_version_changes_ = 0;
  BoundedSpanRing span_ring_;
  std::map<size_t, ReplicaSnapshot> replica_snapshots_;
  uint64_t snapshots_ingested_ = 0;
};

// --- static components ---------------------------------------------------------

class AuditFilter : public CodeFilter {
 public:
  std::string name() const override { return "auditor"; }
  Result<FilterOutcome> Apply(ClassFile& cls, const FilterContext& ctx) override;

  uint64_t methods_instrumented() const { return methods_instrumented_; }

 private:
  uint64_t methods_instrumented_ = 0;
};

class ProfileFilter : public CodeFilter {
 public:
  std::string name() const override { return "profiler"; }
  Result<FilterOutcome> Apply(ClassFile& cls, const FilterContext& ctx) override;

 private:
  uint64_t methods_instrumented_ = 0;
};

// --- dynamic components ----------------------------------------------------------

// Client-side audit session: handshakes with the console, then forwards enter/
// exit events. Events are buffered and flushed in batches to model the
// asynchronous connection.
class AuditSession {
 public:
  AuditSession(AdministrationConsole* console, std::string user, std::string client_host);

  void Install(Machine& machine);
  void Flush();

  uint64_t session_id() const { return session_id_; }
  uint64_t events_sent() const { return events_sent_; }

 private:
  void Emit(Machine& machine, const std::string& kind, const std::string& detail);

  AdministrationConsole* console_;
  uint64_t session_id_;
  uint64_t sequence_ = 0;
  uint64_t events_sent_ = 0;
  std::vector<AuditEvent> buffer_;
};

// Client-side profile collector: first-use order and call-graph edges, pushed
// to the console and queryable locally (used to derive transfer profiles).
class ProfileCollector {
 public:
  ProfileCollector(AdministrationConsole* console, uint64_t session_id)
      : console_(console), session_id_(session_id) {}

  void Install(Machine& machine);

  const std::vector<std::string>& first_use_order() const { return first_use_order_; }

 private:
  AdministrationConsole* console_;
  uint64_t session_id_;
  std::map<std::string, bool> seen_;
  std::vector<std::string> first_use_order_;
  std::vector<std::string> active_stack_;
};

}  // namespace dvm

#endif  // SRC_SERVICES_MONITOR_SERVICE_H_
