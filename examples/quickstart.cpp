// Quickstart: the paper's "hello world" (Figure 3) end to end.
//
// 1. Assemble a hello-world application whose main() references classes the
//    proxy has never seen (System.out-style cross-class references).
// 2. Stand up a DvmServer: proxy + verification/security/audit services.
// 3. Attach a DvmClient over simulated Ethernet and run the app.
// 4. Show what the verification service injected (the guarded RTVerifier
//    preamble) and what the client actually checked at run time.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "src/bytecode/builder.h"
#include "src/bytecode/disasm.h"
#include "src/bytecode/serializer.h"
#include "src/dvm/dvm.h"

using namespace dvm;

namespace {

// class Hello { public static void main() { Console.out.println("hello world"); } }
ClassFile BuildHello() {
  ClassBuilder cb("app/Hello", "java/lang/Object");
  MethodBuilder& m = cb.AddMethod(AccessFlags::kPublic | AccessFlags::kStatic, "main", "()V");
  m.GetStatic("app/Console", "out", "Lapp/Stream;");
  m.PushString("hello world");
  m.InvokeVirtual("app/Stream", "println", "(Ljava/lang/String;)V");
  m.Emit(Op::kReturn);
  return cb.Build().value();
}

// The library classes Hello depends on — served by the origin, fetched lazily.
ClassFile BuildStream() {
  ClassBuilder cb("app/Stream", "java/lang/Object");
  cb.AddDefaultConstructor();
  MethodBuilder& println = cb.AddMethod(AccessFlags::kPublic, "println",
                                        "(Ljava/lang/String;)V");
  println.Emit(Op::kAload, 1);
  println.InvokeStatic("java/lang/System", "println", "(Ljava/lang/String;)V");
  println.Emit(Op::kReturn);
  return cb.Build().value();
}

ClassFile BuildConsole() {
  ClassBuilder cb("app/Console", "java/lang/Object");
  cb.AddField(AccessFlags::kPublic | AccessFlags::kStatic, "out", "Lapp/Stream;");
  MethodBuilder& clinit = cb.AddMethod(AccessFlags::kStatic, "<clinit>", "()V");
  clinit.New("app/Stream").Emit(Op::kDup).InvokeSpecial("app/Stream", "<init>", "()V");
  clinit.PutStatic("app/Console", "out", "Lapp/Stream;");
  clinit.Emit(Op::kReturn);
  return cb.Build().value();
}

}  // namespace

int main() {
  // --- origin web server ------------------------------------------------------
  MapClassProvider origin;
  origin.AddClassFile(BuildHello());
  origin.AddClassFile(BuildStream());
  origin.AddClassFile(BuildConsole());

  // --- organization-wide DVM server --------------------------------------------
  DvmServerConfig config;
  config.policy = *ParseSecurityPolicy(R"(
      <policy version="1">
        <domain sid="applet" code="app/*"/>
        <allow sid="applet" operation="*" target="*"/>
      </policy>)");
  DvmServer server(std::move(config), &origin);

  // --- a client on the LAN ------------------------------------------------------
  DvmClient client(&server, DvmMachineConfig(), MakeEthernet10Mb(), "egs", "client-1");
  auto outcome = client.RunApp("app/Hello");
  if (!outcome.ok()) {
    std::fprintf(stderr, "host error: %s\n", outcome.error().ToString().c_str());
    return 1;
  }
  if (outcome->threw) {
    std::fprintf(stderr, "guest exception: %s: %s\n", outcome->exception_class.c_str(),
                 outcome->exception_message.c_str());
    return 1;
  }

  std::printf("Program output:\n");
  for (const auto& line : client.machine().printed()) {
    std::printf("  %s\n", line.c_str());
  }

  std::printf("\nWhat the static verification service injected into app/Hello\n"
              "(compare with Figure 3 of the paper):\n");
  auto rewritten = server.proxy().HandleRequest("app/Hello");
  auto parsed = ReadClassFile(rewritten->data);
  std::printf("%s\n", DisassembleMethod(*parsed, *parsed->FindMethod("main", "()V")).c_str());

  std::printf("Client-side dynamic verify checks executed: %llu\n",
              static_cast<unsigned long long>(
                  client.machine().counters().dynamic_verify_checks));
  std::printf("Classes fetched through the proxy: %llu (%llu bytes)\n",
              static_cast<unsigned long long>(client.classes_fetched()),
              static_cast<unsigned long long>(client.bytes_fetched()));
  std::printf("Virtual time on the simulated 200MHz client: %.2f ms\n",
              static_cast<double>(client.machine().virtual_nanos()) / 1e6);
  std::printf("Proxy audit trail:\n");
  for (const auto& line : server.proxy().audit_trail()) {
    std::printf("  %s\n", line.c_str());
  }
  return 0;
}
