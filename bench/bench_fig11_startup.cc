// Figure 11: application start-up time as a function of client link bandwidth
// for six graphical applications. Start-up = time from invocation to the point
// the application can process user requests (here: main() returning after the
// init chain). The proxy cache is pre-warmed so the numbers isolate the
// transfer path, as in the paper's setup.
#include "bench/bench_util.h"
#include "src/workloads/graphical.h"

namespace dvm {
namespace bench {

// Runs one startup on a warmed server over a `kbps` kilobit/s client link.
uint64_t StartupNanos(DvmServer* server, const AppBundle& app, double kbps) {
  DvmClient client(server, DvmMachineConfig(), MakeModem(kbps));
  auto out = client.RunApp(app.main_class);
  if (!out.ok() || out->threw) {
    std::fprintf(stderr, "startup failed for %s\n", app.name.c_str());
    std::abort();
  }
  return client.machine().virtual_nanos();
}

}  // namespace bench
}  // namespace dvm

int main() {
  using namespace dvm;
  using namespace dvm::bench;

  PrintHeader("Start-up time (seconds) vs bandwidth (KB/s)", "Figure 11");

  const double kBandwidthKbps[] = {28.8, 56, 128, 512, 1000, 8000};
  std::vector<std::string> header = {"App", "Bytes"};
  for (double kbps : kBandwidthKbps) {
    header.push_back(FmtDouble(kbps / 8.0, 0) + "KB/s");
  }
  PrintRow(header, 11);

  for (const AppBundle& app : BuildGraphicalApps()) {
    MapClassProvider origin;
    app.InstallInto(&origin);
    DvmServerConfig config;
    config.enable_audit = false;  // isolate the transfer path
    config.policy = PermissivePolicy();
    DvmServer server(std::move(config), &origin);
    // Warm the rewrite cache from a LAN client.
    {
      DvmClient warm(&server, DvmMachineConfig(), MakeEthernet10Mb());
      if (!warm.RunApp(app.main_class).ok()) {
        return 1;
      }
    }
    std::vector<std::string> row = {app.name, std::to_string(app.TotalBytes())};
    for (double kbps : kBandwidthKbps) {
      row.push_back(FmtSeconds(StartupNanos(&server, app, kbps)));
    }
    PrintRow(row, 11);
  }
  std::printf("\nPaper shape: below ~1 Mb/s start-up time is inversely proportional to\n"
              "bandwidth and spans minutes for the large applications.\n");
  return 0;
}
