#include "src/services/security_service.h"

#include "src/bytecode/descriptor.h"
#include "src/policy/xml.h"
#include "src/rewrite/method_editor.h"
#include "src/runtime/syslib.h"
#include "src/support/strings.h"

namespace dvm {
namespace {

// Figure 9 calibration (nanoseconds). The DVM's common-case check is a cached
// lookup in the enforcement manager; the first check downloads a policy slice
// from the security server (4.1-6.4 ms in the paper).
constexpr uint64_t kSliceDownloadNanos = 5'200'000;
constexpr uint64_t kCachedCheckNanos = 7'000;
constexpr uint64_t kCacheMissEvalNanos = 11'000;

}  // namespace

std::string SecurityPolicy::DomainForClass(const std::string& class_name) const {
  for (const auto& [pattern, sid] : code_domains) {
    if (GlobMatch(pattern, class_name)) {
      return sid;
    }
  }
  return "";
}

bool SecurityPolicy::Evaluate(const std::string& sid, const std::string& operation,
                              const std::string& target) const {
  if (sid.empty()) {
    return true;  // trusted system code
  }
  for (const auto& rule : rules) {
    bool sid_match = rule.sid == "*" || rule.sid == sid;
    bool op_match = GlobMatch(rule.operation, operation);
    bool target_match = GlobMatch(rule.target_pattern, target);
    if (sid_match && op_match && target_match) {
      return rule.allow;
    }
  }
  return false;  // default deny
}

Result<SecurityPolicy> ParseSecurityPolicy(const std::string& xml_text) {
  DVM_ASSIGN_OR_RETURN(XmlNode root, ParseXml(xml_text));
  if (root.tag != "policy") {
    return Error{ErrorCode::kParseError, "security policy root must be <policy>"};
  }
  SecurityPolicy policy;
  if (root.HasAttr("version")) {
    policy.version = static_cast<uint64_t>(std::stoll(root.Attr("version")));
  }
  for (const auto& child : root.children) {
    if (child.tag == "domain") {
      if (!child.HasAttr("sid") || !child.HasAttr("code")) {
        return Error{ErrorCode::kParseError, "<domain> requires sid and code attributes"};
      }
      policy.code_domains.emplace_back(child.Attr("code"), child.Attr("sid"));
    } else if (child.tag == "allow" || child.tag == "deny") {
      SecurityRule rule;
      rule.sid = child.Attr("sid", "*");
      rule.operation = child.Attr("operation", "*");
      rule.target_pattern = child.Attr("target", "*");
      rule.allow = child.tag == "allow";
      policy.rules.push_back(std::move(rule));
    } else if (child.tag == "hook") {
      SecurityHook hook;
      hook.class_pattern = child.Attr("class", "*");
      hook.method_pattern = child.Attr("method", "*");
      hook.operation = child.Attr("operation");
      if (hook.operation.empty()) {
        return Error{ErrorCode::kParseError, "<hook> requires an operation attribute"};
      }
      std::string target_arg = child.Attr("target-arg", "-1");
      hook.target_arg = static_cast<int>(std::stol(target_arg));
      policy.hooks.push_back(std::move(hook));
    } else {
      return Error{ErrorCode::kParseError, "unknown policy element <" + child.tag + ">"};
    }
  }
  return policy;
}

Result<FilterOutcome> SecurityFilter::Apply(ClassFile& cls, const FilterContext& ctx) {
  FilterOutcome outcome;
  const std::string class_name = cls.name();
  // Never instrument the enforcement machinery itself.
  if (StartsWith(class_name, "dvm/rt/")) {
    return outcome;
  }

  // Index-based iteration: wrapping a native method appends a wrapper, which
  // must be neither visited (it would match its own hook again) nor allowed to
  // invalidate references mid-scan.
  const size_t original_method_count = cls.methods.size();
  for (size_t mi = 0; mi < original_method_count; mi++) {
    for (const auto& hook : policy_->hooks) {
      MethodInfo& method = cls.methods[mi];
      if (!method.code.has_value() && !method.IsNative()) {
        break;
      }
      if (!GlobMatch(hook.class_pattern, class_name) ||
          !GlobMatch(hook.method_pattern, method.name)) {
        continue;
      }
      outcome.checks_performed++;

      ConstantPool& pool = cls.pool();
      std::vector<Instr> preamble;
      preamble.push_back({Op::kLdc, pool.AddString(hook.operation), 0});
      if (hook.target_arg >= 0) {
        // Pass the (String) argument as the runtime target. The local slot is
        // the parameter index plus one for the receiver of instance methods.
        auto sig = ParseMethodDescriptor(method.descriptor);
        if (!sig.ok() || hook.target_arg >= sig->ArgSlots() ||
            sig->params[static_cast<size_t>(hook.target_arg)] != "Ljava/lang/String;") {
          return Error{ErrorCode::kInvalidArgument,
                       "hook target-arg does not name a String parameter of " +
                           class_name + "." + method.Id()};
        }
        int slot = hook.target_arg + (method.IsStatic() ? 0 : 1);
        preamble.push_back({Op::kAload, slot, 0});
      } else {
        preamble.push_back(
            {Op::kLdc, pool.AddString(class_name + "." + method.name), 0});
      }
      preamble.push_back({Op::kInvokestatic,
                          pool.AddMethodRef(kRtEnforcerClass, "checkPermission",
                                            "(Ljava/lang/String;Ljava/lang/String;)V"),
                          0});

      // Native methods cannot carry injected bytecode; wrap them instead:
      // rename the native and synthesize a checked forwarding body under the
      // original name.
      if (method.IsNative()) {
        std::string inner_name = "__dvmSecured$" + method.name;
        MethodInfo inner = method;
        inner.name = inner_name;
        auto sig = ParseMethodDescriptor(method.descriptor);
        if (!sig.ok()) {
          return sig.error();
        }
        std::vector<Instr> body = preamble;
        int slot = method.IsStatic() ? 0 : 1;
        if (!method.IsStatic()) {
          body.push_back({Op::kAload, 0, 0});
        }
        for (const auto& param : sig->params) {
          Op load = param == "I" ? Op::kIload : param == "J" ? Op::kLload : Op::kAload;
          body.push_back({load, slot++, 0});
        }
        body.push_back({method.IsStatic() ? Op::kInvokestatic : Op::kInvokevirtual,
                        pool.AddMethodRef(class_name, inner_name, method.descriptor), 0});
        if (sig->ReturnsVoid()) {
          body.push_back({Op::kReturn, 0, 0});
        } else if (sig->return_type == "I") {
          body.push_back({Op::kIreturn, 0, 0});
        } else if (sig->return_type == "J") {
          body.push_back({Op::kLreturn, 0, 0});
        } else {
          body.push_back({Op::kAreturn, 0, 0});
        }
        DVM_ASSIGN_OR_RETURN(Bytes encoded, EncodeCode(body));
        DVM_ASSIGN_OR_RETURN(uint16_t max_stack, ComputeMaxStackDepth(body, pool, {}));
        MethodInfo wrapper;
        wrapper.access_flags = static_cast<uint16_t>(method.access_flags & ~AccessFlags::kNative);
        wrapper.name = method.name;
        wrapper.descriptor = method.descriptor;
        CodeAttr code;
        code.max_stack = max_stack;
        code.max_locals = static_cast<uint16_t>(slot);
        code.code = std::move(encoded);
        wrapper.code = std::move(code);
        method = std::move(inner);      // original slot becomes the renamed native
        cls.methods.push_back(std::move(wrapper));
        checks_injected_++;
        outcome.modified = true;
        break;  // method reference invalidated by push_back; stop hook scan
      }

      DVM_ASSIGN_OR_RETURN(MethodEditor editor, MethodEditor::Open(&cls, &method));
      DVM_RETURN_IF_ERROR(editor.InsertBefore(0, preamble));
      DVM_RETURN_IF_ERROR(editor.Commit());
      checks_injected_++;
      outcome.modified = true;
    }
  }
  if (outcome.modified) {
    cls.SetAttribute(kAttrServiceStamp, Bytes{'s', 'e', 'c', 'u'});
  }
  return outcome;
}

void SecurityServer::UpdatePolicy(SecurityPolicy policy) {
  policy_ = std::move(policy);
  for (EnforcementManager* manager : managers_) {
    manager->Invalidate();
  }
}

EnforcementManager::EnforcementManager(SecurityServer* server) : server_(server) {
  server_->RegisterManager(this);
}

EnforcementManager::~EnforcementManager() { server_->UnregisterManager(this); }

void EnforcementManager::Invalidate() {
  decision_cache_.clear();
  slice_downloaded_ = false;
  invalidations_++;
}

bool EnforcementManager::CheckPermission(Machine& machine, const std::string& operation,
                                         const std::string& target) {
  machine.counters().security_checks++;
  if (!slice_downloaded_) {
    // First check since (re)start or invalidation: fetch the policy slice for
    // this sid from the central server.
    machine.AddNanos(kSliceDownloadNanos);
    machine.AddServiceNanos("security", kSliceDownloadNanos);
    server_->CountSliceDownload();
    slice_downloaded_ = true;
  }
  std::string key = thread_sid_ + "\x1f" + operation + "\x1f" + target;
  auto it = decision_cache_.find(key);
  if (it != decision_cache_.end()) {
    cache_hits_++;
    machine.AddNanos(kCachedCheckNanos);
    machine.AddServiceNanos("security", kCachedCheckNanos);
    return it->second;
  }
  cache_misses_++;
  machine.AddNanos(kCacheMissEvalNanos);
  machine.AddServiceNanos("security", kCacheMissEvalNanos);
  bool allowed = server_->Evaluate(thread_sid_, operation, target);
  decision_cache_[key] = allowed;
  return allowed;
}

void EnforcementManager::Install(Machine& machine) {
  machine.natives().Register(
      kRtEnforcerClass, "checkPermission", "(Ljava/lang/String;Ljava/lang/String;)V",
      [this](Machine& m, std::vector<Value>& args) -> Result<Value> {
        DVM_ASSIGN_OR_RETURN(std::string operation, m.StringValue(args[0].AsRef()));
        std::string target;
        if (!args[1].IsNullRef()) {
          DVM_ASSIGN_OR_RETURN(target, m.StringValue(args[1].AsRef()));
        }
        if (!CheckPermission(m, operation, target)) {
          m.ThrowGuest("java/lang/SecurityException",
                       operation + " denied for target " + target);
        }
        return Value::Null();
      });
}

}  // namespace dvm
