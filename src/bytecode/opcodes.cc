#include "src/bytecode/opcodes.h"

#include <unordered_map>

namespace dvm {
namespace {

struct Entry {
  Op op;
  OpInfo info;
};

// Stack deltas are in slots; longs take one slot in the DVM (see opcodes.h).
const Entry kTable[] = {
    {Op::kNop, {"nop", OperandKind::kNone, 0, false}},
    {Op::kAconstNull, {"aconst_null", OperandKind::kNone, 1, false}},
    {Op::kIconst0, {"iconst_0", OperandKind::kNone, 1, false}},
    {Op::kIconst1, {"iconst_1", OperandKind::kNone, 1, false}},
    {Op::kBipush, {"bipush", OperandKind::kI8, 1, false}},
    {Op::kSipush, {"sipush", OperandKind::kI16, 1, false}},
    {Op::kLdc, {"ldc", OperandKind::kCpIndex, 1, false}},
    {Op::kIload, {"iload", OperandKind::kU8, 1, false}},
    {Op::kLload, {"lload", OperandKind::kU8, 1, false}},
    {Op::kAload, {"aload", OperandKind::kU8, 1, false}},
    {Op::kIstore, {"istore", OperandKind::kU8, -1, false}},
    {Op::kLstore, {"lstore", OperandKind::kU8, -1, false}},
    {Op::kAstore, {"astore", OperandKind::kU8, -1, false}},
    {Op::kIaload, {"iaload", OperandKind::kNone, -1, false}},
    {Op::kLaload, {"laload", OperandKind::kNone, -1, false}},
    {Op::kAaload, {"aaload", OperandKind::kNone, -1, false}},
    {Op::kIastore, {"iastore", OperandKind::kNone, -3, false}},
    {Op::kLastore, {"lastore", OperandKind::kNone, -3, false}},
    {Op::kAastore, {"aastore", OperandKind::kNone, -3, false}},
    {Op::kPop, {"pop", OperandKind::kNone, -1, false}},
    {Op::kDup, {"dup", OperandKind::kNone, 1, false}},
    {Op::kDupX1, {"dup_x1", OperandKind::kNone, 1, false}},
    {Op::kSwap, {"swap", OperandKind::kNone, 0, false}},
    {Op::kIadd, {"iadd", OperandKind::kNone, -1, false}},
    {Op::kLadd, {"ladd", OperandKind::kNone, -1, false}},
    {Op::kIsub, {"isub", OperandKind::kNone, -1, false}},
    {Op::kLsub, {"lsub", OperandKind::kNone, -1, false}},
    {Op::kImul, {"imul", OperandKind::kNone, -1, false}},
    {Op::kLmul, {"lmul", OperandKind::kNone, -1, false}},
    {Op::kIdiv, {"idiv", OperandKind::kNone, -1, false}},
    {Op::kLdiv, {"ldiv", OperandKind::kNone, -1, false}},
    {Op::kIrem, {"irem", OperandKind::kNone, -1, false}},
    {Op::kLrem, {"lrem", OperandKind::kNone, -1, false}},
    {Op::kIneg, {"ineg", OperandKind::kNone, 0, false}},
    {Op::kLneg, {"lneg", OperandKind::kNone, 0, false}},
    {Op::kIshl, {"ishl", OperandKind::kNone, -1, false}},
    {Op::kIshr, {"ishr", OperandKind::kNone, -1, false}},
    {Op::kIushr, {"iushr", OperandKind::kNone, -1, false}},
    {Op::kIand, {"iand", OperandKind::kNone, -1, false}},
    {Op::kIor, {"ior", OperandKind::kNone, -1, false}},
    {Op::kIxor, {"ixor", OperandKind::kNone, -1, false}},
    {Op::kIinc, {"iinc", OperandKind::kLocalIncr, 0, false}},
    {Op::kI2l, {"i2l", OperandKind::kNone, 0, false}},
    {Op::kL2i, {"l2i", OperandKind::kNone, 0, false}},
    {Op::kLcmp, {"lcmp", OperandKind::kNone, -1, false}},
    {Op::kIfeq, {"ifeq", OperandKind::kBranch16, -1, false}},
    {Op::kIfne, {"ifne", OperandKind::kBranch16, -1, false}},
    {Op::kIflt, {"iflt", OperandKind::kBranch16, -1, false}},
    {Op::kIfge, {"ifge", OperandKind::kBranch16, -1, false}},
    {Op::kIfgt, {"ifgt", OperandKind::kBranch16, -1, false}},
    {Op::kIfle, {"ifle", OperandKind::kBranch16, -1, false}},
    {Op::kIfIcmpeq, {"if_icmpeq", OperandKind::kBranch16, -2, false}},
    {Op::kIfIcmpne, {"if_icmpne", OperandKind::kBranch16, -2, false}},
    {Op::kIfIcmplt, {"if_icmplt", OperandKind::kBranch16, -2, false}},
    {Op::kIfIcmpge, {"if_icmpge", OperandKind::kBranch16, -2, false}},
    {Op::kIfIcmpgt, {"if_icmpgt", OperandKind::kBranch16, -2, false}},
    {Op::kIfIcmple, {"if_icmple", OperandKind::kBranch16, -2, false}},
    {Op::kIfAcmpeq, {"if_acmpeq", OperandKind::kBranch16, -2, false}},
    {Op::kIfAcmpne, {"if_acmpne", OperandKind::kBranch16, -2, false}},
    {Op::kGoto, {"goto", OperandKind::kBranch16, 0, false}},
    {Op::kIreturn, {"ireturn", OperandKind::kNone, -1, false}},
    {Op::kLreturn, {"lreturn", OperandKind::kNone, -1, false}},
    {Op::kAreturn, {"areturn", OperandKind::kNone, -1, false}},
    {Op::kReturn, {"return", OperandKind::kNone, 0, false}},
    {Op::kGetstatic, {"getstatic", OperandKind::kCpIndex, kVariableStack, true}},
    {Op::kPutstatic, {"putstatic", OperandKind::kCpIndex, kVariableStack, true}},
    {Op::kGetfield, {"getfield", OperandKind::kCpIndex, kVariableStack, true}},
    {Op::kPutfield, {"putfield", OperandKind::kCpIndex, kVariableStack, true}},
    {Op::kInvokevirtual, {"invokevirtual", OperandKind::kCpIndex, kVariableStack, true}},
    {Op::kInvokespecial, {"invokespecial", OperandKind::kCpIndex, kVariableStack, true}},
    {Op::kInvokestatic, {"invokestatic", OperandKind::kCpIndex, kVariableStack, true}},
    {Op::kNew, {"new", OperandKind::kCpIndex, 1, false}},
    {Op::kNewarray, {"newarray", OperandKind::kArrayKind, 0, false}},
    {Op::kAnewarray, {"anewarray", OperandKind::kCpIndex, 0, false}},
    {Op::kArraylength, {"arraylength", OperandKind::kNone, 0, false}},
    {Op::kAthrow, {"athrow", OperandKind::kNone, -1, false}},
    {Op::kCheckcast, {"checkcast", OperandKind::kCpIndex, 0, false}},
    {Op::kInstanceof, {"instanceof", OperandKind::kCpIndex, 0, false}},
    {Op::kMonitorenter, {"monitorenter", OperandKind::kNone, -1, false}},
    {Op::kMonitorexit, {"monitorexit", OperandKind::kNone, -1, false}},
    {Op::kIfnull, {"ifnull", OperandKind::kBranch16, -1, false}},
    {Op::kIfnonnull, {"ifnonnull", OperandKind::kBranch16, -1, false}},
    // Quick forms mirror their base form's operand shape so decoded-stream
    // tooling (disassembly of prepared code) stays uniform. DecodeCode rejects
    // them before consulting this table, so they remain wire-invalid.
    {Op::kLdcQuick, {"ldc_quick", OperandKind::kCpIndex, 1, false}},
    {Op::kGetfieldQuick, {"getfield_quick", OperandKind::kCpIndex, kVariableStack, true}},
    {Op::kPutfieldQuick, {"putfield_quick", OperandKind::kCpIndex, kVariableStack, true}},
    {Op::kGetstaticQuick, {"getstatic_quick", OperandKind::kCpIndex, kVariableStack, true}},
    {Op::kPutstaticQuick, {"putstatic_quick", OperandKind::kCpIndex, kVariableStack, true}},
    {Op::kInvokevirtualQuick,
     {"invokevirtual_quick", OperandKind::kCpIndex, kVariableStack, true}},
    {Op::kInvokespecialQuick,
     {"invokespecial_quick", OperandKind::kCpIndex, kVariableStack, true}},
    {Op::kInvokestaticQuick,
     {"invokestatic_quick", OperandKind::kCpIndex, kVariableStack, true}},
    {Op::kNewQuick, {"new_quick", OperandKind::kCpIndex, 1, false}},
    {Op::kAnewarrayQuick, {"anewarray_quick", OperandKind::kCpIndex, 0, false}},
    {Op::kCheckcastQuick, {"checkcast_quick", OperandKind::kCpIndex, 0, false}},
    {Op::kInstanceofQuick, {"instanceof_quick", OperandKind::kCpIndex, 0, false}},
};

const std::unordered_map<uint8_t, const OpInfo*>& Table() {
  static const auto* map = [] {
    auto* m = new std::unordered_map<uint8_t, const OpInfo*>();
    for (const auto& e : kTable) {
      (*m)[static_cast<uint8_t>(e.op)] = &e.info;
    }
    return m;
  }();
  return *map;
}

}  // namespace

const OpInfo* GetOpInfo(Op op) {
  auto it = Table().find(static_cast<uint8_t>(op));
  return it == Table().end() ? nullptr : it->second;
}

int InstructionLength(Op op) {
  const OpInfo* info = GetOpInfo(op);
  if (info == nullptr) {
    return -1;
  }
  switch (info->operands) {
    case OperandKind::kNone:
      return 1;
    case OperandKind::kI8:
    case OperandKind::kU8:
    case OperandKind::kArrayKind:
      return 2;
    case OperandKind::kI16:
    case OperandKind::kCpIndex:
    case OperandKind::kBranch16:
    case OperandKind::kLocalIncr:
      return 3;
  }
  return -1;
}

bool IsBranch(Op op) {
  const OpInfo* info = GetOpInfo(op);
  return info != nullptr && info->operands == OperandKind::kBranch16;
}

bool IsConditionalBranch(Op op) { return IsBranch(op) && op != Op::kGoto; }

bool IsReturn(Op op) {
  return op == Op::kIreturn || op == Op::kLreturn || op == Op::kAreturn || op == Op::kReturn;
}

bool IsTerminator(Op op) { return IsReturn(op) || op == Op::kGoto || op == Op::kAthrow; }

bool IsInvoke(Op op) {
  return op == Op::kInvokevirtual || op == Op::kInvokespecial || op == Op::kInvokestatic;
}

bool IsFieldAccess(Op op) {
  return op == Op::kGetfield || op == Op::kPutfield || op == Op::kGetstatic ||
         op == Op::kPutstatic;
}

bool IsQuickOp(Op op) {
  uint8_t raw = static_cast<uint8_t>(op);
  return raw >= static_cast<uint8_t>(Op::kLdcQuick) &&
         raw <= static_cast<uint8_t>(Op::kInstanceofQuick);
}

}  // namespace dvm
