
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/verifier/assumptions.cc" "src/verifier/CMakeFiles/dvm_verifier.dir/assumptions.cc.o" "gcc" "src/verifier/CMakeFiles/dvm_verifier.dir/assumptions.cc.o.d"
  "/root/repo/src/verifier/link_checker.cc" "src/verifier/CMakeFiles/dvm_verifier.dir/link_checker.cc.o" "gcc" "src/verifier/CMakeFiles/dvm_verifier.dir/link_checker.cc.o.d"
  "/root/repo/src/verifier/typestate.cc" "src/verifier/CMakeFiles/dvm_verifier.dir/typestate.cc.o" "gcc" "src/verifier/CMakeFiles/dvm_verifier.dir/typestate.cc.o.d"
  "/root/repo/src/verifier/verifier.cc" "src/verifier/CMakeFiles/dvm_verifier.dir/verifier.cc.o" "gcc" "src/verifier/CMakeFiles/dvm_verifier.dir/verifier.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bytecode/CMakeFiles/dvm_bytecode.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dvm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
