// Tests for the deployment-variant mechanisms: the signature redirect
// protocol, proxy replication, the reflection service, and synchronization
// elision.
#include <gtest/gtest.h>

#include "src/bytecode/builder.h"
#include "src/bytecode/serializer.h"
#include "src/dvm/redirect_client.h"
#include "src/optimizer/sync_elide.h"
#include "src/runtime/syslib.h"
#include "src/services/reflect_service.h"
#include "src/services/verify_service.h"

namespace dvm {
namespace {

ClassFile MustBuild(ClassBuilder& cb) {
  auto built = cb.Build();
  EXPECT_TRUE(built.ok()) << (built.ok() ? "" : built.error().ToString());
  return std::move(built).value();
}

ClassFile TrivialApp(const std::string& name) {
  ClassBuilder cb(name, "java/lang/Object");
  MethodBuilder& m = cb.AddMethod(AccessFlags::kPublic | AccessFlags::kStatic, "main", "()V");
  m.PushString("ran").InvokeStatic("java/lang/System", "println", "(Ljava/lang/String;)V");
  m.Emit(Op::kReturn);
  return MustBuild(cb);
}

SecurityPolicy OpenPolicy() {
  return *ParseSecurityPolicy(R"(
      <policy version="1">
        <domain sid="user" code="app/*"/>
        <allow sid="user" operation="*" target="*"/>
      </policy>)");
}

// --- redirect protocol -----------------------------------------------------------

class RedirectTest : public ::testing::Test {
 protected:
  RedirectTest() {
    origin_.AddClassFile(TrivialApp("app/Main"));
    DvmServerConfig config;
    config.policy = OpenPolicy();
    config.proxy.sign_output = true;
    server_ = std::make_unique<DvmServer>(std::move(config), &origin_);
  }

  MapClassProvider origin_;
  std::unique_ptr<DvmServer> server_;
};

TEST_F(RedirectTest, UnsignedDirectCodeRedirectsToProxy) {
  // The direct source serves raw, unsigned classes (an untrusted mirror).
  MapClassProvider direct;
  direct.AddClassFile(TrivialApp("app/Main"));
  InstallSystemLibrary(direct);

  RedirectingClient client(server_.get(), &direct, DvmMachineConfig(), MakeEthernet10Mb());
  auto out = client.RunApp("app/Main");
  ASSERT_TRUE(out.ok()) << out.error().ToString();
  EXPECT_FALSE(out->threw);
  EXPECT_EQ(client.direct_hits(), 0u);
  EXPECT_GT(client.redirects(), 0u);
  EXPECT_GT(client.rejected_signatures(), 0u);
}

TEST_F(RedirectTest, ValidlySignedDirectCodeIsAcceptedWithoutProxy) {
  // Populate the direct source with proxy-signed bytes (e.g. a peer cache).
  MapClassProvider direct;
  std::vector<std::string> names = {"app/Main", "java/lang/Object", "java/lang/String"};
  for (const auto& name : names) {
    auto response = server_->proxy().HandleRequest(name);
    ASSERT_TRUE(response.ok());
    direct.Add(name, response->data);
  }

  RedirectingClient client(server_.get(), &direct, DvmMachineConfig(), MakeEthernet10Mb());
  auto out = client.RunApp("app/Main");
  ASSERT_TRUE(out.ok()) << out.error().ToString();
  EXPECT_FALSE(out->threw) << out->exception_class;
  EXPECT_GE(client.direct_hits(), names.size() - 1);  // app + preseeded lib classes
  EXPECT_EQ(client.rejected_signatures(), 0u);
}

TEST_F(RedirectTest, TamperedDirectCodeRedirects) {
  auto response = server_->proxy().HandleRequest("app/Main");
  ASSERT_TRUE(response.ok());
  Bytes tampered = response->data;
  tampered[tampered.size() / 2] ^= 0x40;
  MapClassProvider direct;
  direct.Add("app/Main", tampered);

  RedirectingClient client(server_.get(), &direct, DvmMachineConfig(), MakeEthernet10Mb());
  auto out = client.RunApp("app/Main");
  ASSERT_TRUE(out.ok());
  EXPECT_FALSE(out->threw);
  EXPECT_GE(client.rejected_signatures(), 1u);
  // The app still ran "ran" — via the redirect, with authentic code.
  ASSERT_EQ(client.machine().printed().size(), 1u);
}

// --- proxy replication -------------------------------------------------------------

TEST(ProxyClusterTest, RoutesStablyAndSharesNothing) {
  MapClassProvider origin;
  InstallSystemLibrary(origin);
  origin.AddClassFile(TrivialApp("app/A"));
  origin.AddClassFile(TrivialApp("app/B"));
  origin.AddClassFile(TrivialApp("app/C"));
  std::vector<ClassFile> library = BuildSystemLibrary();
  MapClassEnv env;
  for (const auto& cls : library) {
    env.Add(&cls);
  }

  ProxyCluster cluster(3, ProxyConfig{}, &env, &origin);
  for (size_t i = 0; i < cluster.size(); i++) {
    cluster.replica(i).AddFilter(std::make_unique<VerificationFilter>());
  }

  // Same class always routes to the same replica (cache affinity).
  DvmProxy& first = cluster.Route("app/A");
  EXPECT_EQ(&cluster.Route("app/A"), &first);

  ASSERT_TRUE(cluster.HandleRequest("app/A").ok());
  auto hit = cluster.HandleRequest("app/A");
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->cache_hit);

  // Work spreads across replicas for distinct classes.
  ASSERT_TRUE(cluster.HandleRequest("app/B").ok());
  ASSERT_TRUE(cluster.HandleRequest("app/C").ok());
  size_t replicas_used = 0;
  for (size_t i = 0; i < cluster.size(); i++) {
    replicas_used += cluster.replica(i).requests_served() > 0 ? 1 : 0;
  }
  EXPECT_GE(replicas_used, 2u);
  EXPECT_GT(cluster.total_cpu_nanos(), 0u);
}

// --- reflection service ---------------------------------------------------------------

TEST(ReflectionServiceTest, AttributeRoundTrips) {
  ClassBuilder cb("refl/C", "java/lang/Object");
  cb.AddField(AccessFlags::kPublic, "x", "I");
  cb.AddField(AccessFlags::kPublic | AccessFlags::kStatic, "y", "J");
  cb.AddMethod(AccessFlags::kStatic, "f", "(I)I").LoadLocal("I", 0).Emit(Op::kIreturn);
  ClassFile cls = MustBuild(cb);

  ReflectionFilter filter;
  FilterContext ctx;
  MapClassEnv env;
  ctx.env = &env;
  ASSERT_TRUE(filter.Apply(cls, ctx).ok());
  EXPECT_EQ(filter.classes_annotated(), 1u);

  const Attribute* attr = cls.FindAttribute(kAttrReflectionInfo);
  ASSERT_NE(attr, nullptr);
  auto info = DecodeReflectionInfo(attr->data);
  ASSERT_TRUE(info.ok()) << info.error().ToString();
  ASSERT_EQ(info->fields.size(), 2u);
  EXPECT_EQ(info->fields[0], (std::pair<std::string, std::string>{"x", "I"}));
  ASSERT_EQ(info->methods.size(), 1u);
  EXPECT_EQ(info->methods[0].second, "(I)I");
}

TEST(ReflectionServiceTest, SelfDescribingClassesSpeedUpDynamicChecks) {
  // Build an app whose main() needs a dynamic field check against app/Target.
  auto build_app = [] {
    ClassBuilder cb("app/UsesTarget", "java/lang/Object");
    MethodBuilder& m = cb.AddMethod(AccessFlags::kPublic | AccessFlags::kStatic,
                                    "main", "()V");
    m.GetStatic("app/Target", "value", "I").Emit(Op::kPop).Emit(Op::kReturn);
    return cb.Build().value();
  };
  auto build_target = [](bool annotate) {
    ClassBuilder cb("app/Target", "java/lang/Object");
    cb.AddField(AccessFlags::kPublic | AccessFlags::kStatic, "value", "I");
    ClassFile cls = cb.Build().value();
    if (annotate) {
      cls.SetAttribute(kAttrReflectionInfo, EncodeReflectionInfo(cls));
    }
    return cls;
  };

  auto verify_nanos = [&](bool annotate) {
    std::vector<ClassFile> library = BuildSystemLibrary();
    MapClassEnv env;
    for (const auto& cls : library) {
      env.Add(&cls);
    }
    VerificationFilter filter;
    FilterContext ctx;
    ctx.env = &env;
    ClassFile app = build_app();
    EXPECT_TRUE(filter.Apply(app, ctx).ok());

    MapClassProvider provider;
    InstallSystemLibrary(provider);
    provider.AddClassFile(app);
    provider.AddClassFile(build_target(annotate));
    Machine machine({}, &provider);
    InstallVerifierRuntime(machine);
    auto out = machine.RunMain("app/UsesTarget");
    EXPECT_TRUE(out.ok());
    EXPECT_FALSE(out->threw);
    return machine.ServiceNanos("verify");
  };

  uint64_t fast = verify_nanos(/*annotate=*/true);
  uint64_t slow = verify_nanos(/*annotate=*/false);
  EXPECT_GT(slow, 5 * fast);  // 15 us reflective walk vs 0.9 us table lookup
}

// --- synchronization elision -------------------------------------------------------------

// A method that allocates a private lock object and synchronizes on it.
ClassFile BuildSyncHeavy(bool escaping) {
  ClassBuilder cb("sync/Worker", "java/lang/Object");
  cb.AddField(AccessFlags::kPublic | AccessFlags::kStatic, "leak", "Ljava/lang/Object;");
  cb.AddDefaultConstructor();
  MethodBuilder& m = cb.AddMethod(AccessFlags::kPublic | AccessFlags::kStatic, "work",
                                  "(I)I");
  Label loop = m.NewLabel(), done = m.NewLabel();
  m.New("java/lang/Object").Emit(Op::kDup);
  m.InvokeSpecial("java/lang/Object", "<init>", "()V");
  m.StoreLocal("Ljava/lang/Object;", 1);
  if (escaping) {
    m.LoadLocal("Ljava/lang/Object;", 1);
    m.PutStatic("sync/Worker", "leak", "Ljava/lang/Object;");
  }
  m.PushInt(0).StoreLocal("I", 2);
  m.Bind(loop).LoadLocal("I", 0).Branch(Op::kIfle, done);
  m.LoadLocal("Ljava/lang/Object;", 1).Emit(Op::kMonitorenter);
  m.LoadLocal("I", 2).PushInt(3).Emit(Op::kIadd).StoreLocal("I", 2);
  m.LoadLocal("Ljava/lang/Object;", 1).Emit(Op::kMonitorexit);
  m.Emit(Op::kIinc, 0, -1).Branch(Op::kGoto, loop);
  m.Bind(done).LoadLocal("I", 2).Emit(Op::kIreturn);
  return MustBuild(cb);
}

int RunWork(const ClassFile& cls, int arg) {
  MapClassProvider provider;
  InstallSystemLibrary(provider);
  provider.AddClassFile(cls);
  Machine machine({}, &provider);
  auto out = machine.CallStatic("sync/Worker", "work", "(I)I", {Value::Int(arg)});
  EXPECT_TRUE(out.ok()) << (out.ok() ? "" : out.error().ToString());
  EXPECT_FALSE(out->threw);
  return out->value.AsInt();
}

TEST(SyncElideTest, ElidesMonitorsOnNonEscapingObjects) {
  ClassFile cls = BuildSyncHeavy(/*escaping=*/false);
  int before = RunWork(cls, 10);

  SyncElideFilter filter;
  FilterContext ctx;
  MapClassEnv env;
  ctx.env = &env;
  auto outcome = filter.Apply(cls, ctx);
  ASSERT_TRUE(outcome.ok()) << outcome.error().ToString();
  EXPECT_TRUE(outcome->modified);
  EXPECT_GT(filter.stats().monitors_elided, 0u);

  // Semantics preserved, monitors gone.
  EXPECT_EQ(RunWork(cls, 10), before);
  auto decoded = DecodeCode(cls.FindMethod("work", "(I)I")->code->code);
  ASSERT_TRUE(decoded.ok());
  for (const auto& instr : *decoded) {
    EXPECT_NE(instr.op, Op::kMonitorenter);
    EXPECT_NE(instr.op, Op::kMonitorexit);
  }
}

TEST(SyncElideTest, KeepsMonitorsOnEscapingObjects) {
  ClassFile cls = BuildSyncHeavy(/*escaping=*/true);
  SyncElideFilter filter;
  FilterContext ctx;
  MapClassEnv env;
  ctx.env = &env;
  auto outcome = filter.Apply(cls, ctx);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(filter.stats().monitors_elided, 0u);
  auto decoded = DecodeCode(cls.FindMethod("work", "(I)I")->code->code);
  ASSERT_TRUE(decoded.ok());
  bool has_monitor = false;
  for (const auto& instr : *decoded) {
    has_monitor |= instr.op == Op::kMonitorenter;
  }
  EXPECT_TRUE(has_monitor);
}

TEST(SyncElideTest, KeepsMonitorsOnParameters) {
  // Locking a caller-supplied object must never be elided.
  ClassBuilder cb("sync/Worker", "java/lang/Object");
  MethodBuilder& m = cb.AddMethod(AccessFlags::kPublic | AccessFlags::kStatic, "work",
                                  "(Ljava/lang/Object;)V");
  m.Emit(Op::kAload, 0).Emit(Op::kMonitorenter);
  m.Emit(Op::kAload, 0).Emit(Op::kMonitorexit);
  m.Emit(Op::kReturn);
  ClassFile cls = MustBuild(cb);
  SyncElideFilter filter;
  FilterContext ctx;
  MapClassEnv env;
  ctx.env = &env;
  auto outcome = filter.Apply(cls, ctx);
  ASSERT_TRUE(outcome.ok());
  // Parameter locals have no fresh-allocation store: nothing elided.
  EXPECT_EQ(filter.stats().monitors_elided, 0u);
}

TEST(SyncElideTest, AnalysisFindsExactInstructionSet) {
  ClassFile cls = BuildSyncHeavy(/*escaping=*/false);
  auto decoded = DecodeCode(cls.FindMethod("work", "(I)I")->code->code);
  ASSERT_TRUE(decoded.ok());
  auto elidable = FindElidableMonitorOps(*decoded);
  ASSERT_TRUE(elidable.ok());
  // One aload+monitorenter pair and one aload+monitorexit pair.
  EXPECT_EQ(elidable->size(), 4u);
}

// --- code-version inventory ---------------------------------------------------------

TEST(CodeVersionTest, ConsoleTracksServedDigestsAndChanges) {
  MapClassProvider origin;
  origin.AddClassFile(TrivialApp("app/Main"));
  DvmServerConfig config;
  config.policy = OpenPolicy();
  config.proxy.enable_cache = false;  // force re-serving through the pipeline
  DvmServer server(std::move(config), &origin);

  ASSERT_TRUE(server.proxy().HandleRequest("app/Main").ok());
  ASSERT_EQ(server.console().code_versions().count("app/Main"), 1u);
  std::string first_digest = server.console().code_versions().at("app/Main");
  EXPECT_EQ(first_digest.size(), 32u);  // md5 hex

  // Same bytes re-served: no version change recorded.
  ASSERT_TRUE(server.proxy().HandleRequest("app/Main").ok());
  EXPECT_EQ(server.console().code_version_changes(), 0u);

  // A policy update changes the rewrite; the console flags the new version.
  SecurityPolicy altered = OpenPolicy();
  SecurityHook hook;
  hook.class_pattern = "app/*";
  hook.method_pattern = "main";
  hook.operation = "app.run";
  altered.hooks.push_back(hook);
  server.UpdateSecurityPolicy(std::move(altered));
  ASSERT_TRUE(server.proxy().HandleRequest("app/Main").ok());
  EXPECT_EQ(server.console().code_version_changes(), 1u);
  EXPECT_NE(server.console().code_versions().at("app/Main"), first_digest);
  bool saw_change_event = false;
  for (const auto& event : server.console().log()) {
    saw_change_event |= event.kind == "code-version-change";
  }
  EXPECT_TRUE(saw_change_event);
}

// --- per-platform compilation ---------------------------------------------------------

TEST(PlatformCompilationTest, ClientsReceiveTheirOwnNativeFormat) {
  MapClassProvider origin;
  origin.AddClassFile(TrivialApp("app/Main"));
  DvmServerConfig config;
  config.policy = OpenPolicy();
  config.enable_compiler = true;
  config.enable_audit = false;
  DvmServer server(std::move(config), &origin);

  auto stamp_for = [&server](const std::string& platform) {
    auto response = server.proxy().HandleRequest("app/Main", platform);
    EXPECT_TRUE(response.ok());
    auto parsed = ReadClassFile(response->data);
    EXPECT_TRUE(parsed.ok());
    const Attribute* attr = parsed->FindAttribute(kAttrCompiledStamp);
    EXPECT_NE(attr, nullptr);
    return std::string(attr->data.begin(), attr->data.end());
  };

  EXPECT_EQ(stamp_for("x86"), "x86");
  EXPECT_EQ(stamp_for("alpha"), "alpha");

  // Distinct cache entries: an alpha request after an x86 one is NOT a hit.
  auto again = server.proxy().HandleRequest("app/Main", "x86");
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->cache_hit);
  EXPECT_EQ(server.proxy().cache().entries(), 2u);

  // End to end: an alpha DvmClient runs compiled-for-alpha code.
  DvmClient alpha_client(&server, DvmMachineConfig(), MakeEthernet10Mb(), "u", "h",
                         "alpha");
  auto out = alpha_client.RunApp("app/Main");
  ASSERT_TRUE(out.ok()) << out.error().ToString();
  EXPECT_FALSE(out->threw);
  RuntimeClass* loaded = alpha_client.machine().registry().FindLoaded("app/Main");
  ASSERT_NE(loaded, nullptr);
  const Attribute* attr = loaded->file.FindAttribute(kAttrCompiledStamp);
  ASSERT_NE(attr, nullptr);
  EXPECT_EQ(std::string(attr->data.begin(), attr->data.end()), "alpha");
}

}  // namespace
}  // namespace dvm
