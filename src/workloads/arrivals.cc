#include "src/workloads/arrivals.h"

#include <algorithm>
#include <cmath>

namespace dvm {

double ArrivalGenerator::RateAt(SimTime now) const {
  if (config_.surge_duration == 0 || now < config_.surge_at ||
      now >= config_.surge_at + config_.surge_duration) {
    return config_.base_per_second;
  }
  // Linear decay from surge_factor back to 1x across the window.
  double progress = static_cast<double>(now - config_.surge_at) /
                    static_cast<double>(config_.surge_duration);
  double factor = config_.surge_factor + (1.0 - config_.surge_factor) * progress;
  return config_.base_per_second * std::max(factor, 1.0);
}

SimTime ArrivalGenerator::Next() {
  double rate = RateAt(last_);
  // Exponential gap at the instantaneous rate (thinning a proper
  // time-varying Poisson process is overkill for a load model; the rate
  // changes slowly relative to the gaps).
  double u = rng_.NextDouble();
  double gap_s = -std::log(1.0 - std::min(u, 0.999999999)) / rate;
  if (rng_.Chance(config_.tail_fraction)) {
    gap_s *= rng_.NextLognormal(1.0, config_.tail_sigma);
  }
  SimTime gap = SaturatingNanos(gap_s * 1e9);
  last_ += std::max<SimTime>(gap, 1);  // strictly increasing
  return last_;
}

}  // namespace dvm
