// Interpreter microbenchmarks: host wall-clock cost per executed bytecode for
// the quickened/threaded engine vs. the reference switch interpreter
// (DESIGN.md §11), and — with --tier — the tier-1 baseline-compiled engine
// (DESIGN.md §16) on top of both. Five dispatch-heavy kernels isolate the
// costs the quickening overhaul attacks: raw dispatch (tight int loop),
// invokevirtual resolution + frame setup (virtual-call chain), field access
// resolution (get/put churn), exception-table unwinding, and a long loop
// sized to tier up mid-run at a backedge (on-stack replacement).
//
// Unlike the figure benchmarks, this one measures REAL nanoseconds, not the
// virtual clock — the virtual clock is engine-invariant by design.
//
// Flags:
//   --json [path]   also write machine-readable results (default
//                   BENCH_interp.json in the working directory)
//   --no-quicken    only run the reference engine
//   --tier          also measure the tiered engine (quickened + baseline
//                   compiler at the default hotness thresholds)
//   --check         exit 1 unless the quickened engine beats the reference
//                   engine on the dispatch and throw kernels; with --tier,
//                   additionally requires the tiered engine to beat the
//                   pure-quickened engine on int_loop and fig5_jlex and the
//                   tierup_loop kernel to demonstrate at least one OSR entry
//   --profile [prefix]  run the kernels once with the virtual-clock sampling
//                   profiler attached and write byte-deterministic artifacts:
//                   <prefix>.collapsed (flamegraph folded stacks) and
//                   <prefix>.pprof.txt, plus the always-on hot-method table on
//                   stdout. Exits 1 unless the top-3 sampled leaf methods are
//                   the known kernel hot spots.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/bytecode/builder.h"
#include "src/runtime/interp.h"
#include "src/runtime/machine.h"
#include "src/runtime/profile.h"
#include "src/runtime/syslib.h"

namespace dvm {
namespace {

constexpr int kLoopIterations = 300'000;
constexpr int kCallIterations = 100'000;
constexpr int kFieldIterations = 150'000;
constexpr int kThrowIterations = 30'000;
// Sized so a cold run crosses the default OSR threshold (10'000 backedges)
// mid-loop: the first execution starts interpreted and enters compiled code
// at a loop backedge rather than at method entry.
constexpr int kTierupIterations = 60'000;

// s = 0; for (i = 0; i < n; i++) s += i ^ (s << 1); return s — pure stack
// arithmetic and branches, the dispatch-loop worst case.
void AddIntLoop(ClassBuilder& cb) {
  MethodBuilder& m = cb.AddMethod(AccessFlags::kStatic, "intLoop", "()I");
  Label loop = m.NewLabel(), done = m.NewLabel();
  m.PushInt(0).StoreLocal("I", 0);  // s
  m.PushInt(0).StoreLocal("I", 1);  // i
  m.Bind(loop);
  m.LoadLocal("I", 1).PushInt(kLoopIterations).Branch(Op::kIfIcmpge, done);
  m.LoadLocal("I", 0).LoadLocal("I", 1);
  m.LoadLocal("I", 0).PushInt(1).Emit(Op::kIshl).Emit(Op::kIxor);
  m.Emit(Op::kIadd).StoreLocal("I", 0);
  m.Emit(Op::kIinc, 1, 1).Branch(Op::kGoto, loop);
  m.Bind(done).LoadLocal("I", 0).Emit(Op::kIreturn);
}

// for (i = 0; i < n; i++) s = node.step(s) — a monomorphic invokevirtual per
// iteration; exercises the receiver cache and the sliced call frames.
void AddCallChain(ClassBuilder& cb) {
  MethodBuilder& m = cb.AddMethod(AccessFlags::kStatic, "callChain", "()I");
  Label loop = m.NewLabel(), done = m.NewLabel();
  m.New("bench/Node").Emit(Op::kDup).InvokeSpecial("bench/Node", "<init>", "()V");
  m.StoreLocal("L", 0);             // node
  m.PushInt(0).StoreLocal("I", 1);  // s
  m.PushInt(0).StoreLocal("I", 2);  // i
  m.Bind(loop);
  m.LoadLocal("I", 2).PushInt(kCallIterations).Branch(Op::kIfIcmpge, done);
  m.LoadLocal("L", 0).LoadLocal("I", 1);
  m.InvokeVirtual("bench/Node", "step", "(I)I").StoreLocal("I", 1);
  m.Emit(Op::kIinc, 2, 1).Branch(Op::kGoto, loop);
  m.Bind(done).LoadLocal("I", 1).Emit(Op::kIreturn);
}

// for (i = 0; i < n; i++) node.value = node.value + i — a getfield and a
// putfield per iteration through the same two sites.
void AddFieldChurn(ClassBuilder& cb) {
  MethodBuilder& m = cb.AddMethod(AccessFlags::kStatic, "fieldChurn", "()I");
  Label loop = m.NewLabel(), done = m.NewLabel();
  m.New("bench/Node").Emit(Op::kDup).InvokeSpecial("bench/Node", "<init>", "()V");
  m.StoreLocal("L", 0);
  m.PushInt(0).StoreLocal("I", 1);  // i
  m.Bind(loop);
  m.LoadLocal("I", 1).PushInt(kFieldIterations).Branch(Op::kIfIcmpge, done);
  m.LoadLocal("L", 0);
  m.LoadLocal("L", 0).GetField("bench/Node", "value", "I");
  m.LoadLocal("I", 1).Emit(Op::kIadd);
  m.PutField("bench/Node", "value", "I");
  m.Emit(Op::kIinc, 1, 1).Branch(Op::kGoto, loop);
  m.Bind(done).LoadLocal("L", 0).GetField("bench/Node", "value", "I").Emit(Op::kIreturn);
}

// for (i = 0; i < n; i++) { try { throw } catch { s++ } } — allocation, athrow
// and handler-table dispatch per iteration.
void AddThrowCatch(ClassBuilder& cb) {
  MethodBuilder& m = cb.AddMethod(AccessFlags::kStatic, "throwCatch", "()I");
  Label loop = m.NewLabel(), done = m.NewLabel();
  Label start = m.NewLabel(), end = m.NewLabel(), handler = m.NewLabel(), next = m.NewLabel();
  m.PushInt(0).StoreLocal("I", 0);  // s
  m.PushInt(0).StoreLocal("I", 1);  // i
  m.Bind(loop);
  m.LoadLocal("I", 1).PushInt(kThrowIterations).Branch(Op::kIfIcmpge, done);
  m.Bind(start);
  m.New("java/lang/RuntimeException").Emit(Op::kDup);
  m.InvokeSpecial("java/lang/RuntimeException", "<init>", "()V");
  m.Emit(Op::kAthrow);
  m.Bind(end);
  m.Bind(handler).Emit(Op::kPop);
  m.Emit(Op::kIinc, 0, 1);
  m.Bind(next);
  m.Emit(Op::kIinc, 1, 1).Branch(Op::kGoto, loop);
  m.Bind(done).LoadLocal("I", 0).Emit(Op::kIreturn);
  m.AddHandler(start, end, handler, "java/lang/RuntimeException");
}

// s = 0; for (i = 0; i < n; i++) s = (s + i) ^ (i << 1) — the same shape as
// intLoop, but its point is the cold run: with the default thresholds the
// backedge counter crosses tier_osr_threshold mid-loop and the frame is
// replaced on-stack, so the bulk of even the FIRST execution runs compiled.
void AddTierUpLoop(ClassBuilder& cb) {
  MethodBuilder& m = cb.AddMethod(AccessFlags::kStatic, "tierUpLoop", "()I");
  Label loop = m.NewLabel(), done = m.NewLabel();
  m.PushInt(0).StoreLocal("I", 0);  // s
  m.PushInt(0).StoreLocal("I", 1);  // i
  m.Bind(loop);
  m.LoadLocal("I", 1).PushInt(kTierupIterations).Branch(Op::kIfIcmpge, done);
  m.LoadLocal("I", 0).LoadLocal("I", 1).Emit(Op::kIadd);
  m.LoadLocal("I", 1).PushInt(1).Emit(Op::kIshl).Emit(Op::kIxor);
  m.StoreLocal("I", 0);
  m.Emit(Op::kIinc, 1, 1).Branch(Op::kGoto, loop);
  m.Bind(done).LoadLocal("I", 0).Emit(Op::kIreturn);
}

struct Kernel {
  std::string name;
  std::string method;
};

const std::vector<Kernel>& Kernels() {
  static const std::vector<Kernel> kernels = {
      {"int_loop", "intLoop"},
      {"virtual_calls", "callChain"},
      {"field_churn", "fieldChurn"},
      {"throw_catch", "throwCatch"},
      {"tierup_loop", "tierUpLoop"},
  };
  return kernels;
}

void InstallBenchClasses(MapClassProvider& provider) {
  ClassBuilder node("bench/Node", "java/lang/Object");
  node.AddField(AccessFlags::kPublic, "value", "I");
  node.AddDefaultConstructor();
  MethodBuilder& step = node.AddMethod(AccessFlags::kPublic, "step", "(I)I");
  step.LoadLocal("I", 1).PushInt(3).Emit(Op::kIadd);
  step.LoadLocal("L", 0).GetField("bench/Node", "value", "I").Emit(Op::kIxor);
  step.Emit(Op::kIreturn);
  provider.AddClassFile(node.Build().value());

  ClassBuilder cb("bench/Kernels", "java/lang/Object");
  AddIntLoop(cb);
  AddCallChain(cb);
  AddFieldChurn(cb);
  AddThrowCatch(cb);
  AddTierUpLoop(cb);
  provider.AddClassFile(cb.Build().value());
}

struct Measurement {
  double ns_per_op = 0;     // host nanoseconds per executed bytecode
  double millis = 0;        // host milliseconds for the measured run
  uint64_t instructions = 0;
  uint64_t osr_entries = 0;   // OSR entries over both runs (tiered engine only)
  uint64_t tier_compiles = 0; // baseline compiles over both runs
};

// The three execution tiers under measurement. Tiering is on by default in
// the quickened engine, so the pure-quickened row must zero the thresholds.
enum class Engine { kReference, kQuick, kTiered };

MachineConfig ConfigFor(Engine engine) {
  MachineConfig config;
  config.quicken = engine != Engine::kReference;
  if (engine == Engine::kQuick) {
    config.tier_invocation_threshold = 0;
    config.tier_osr_threshold = 0;
  }
  return config;
}

// One warm-up run installs the quick forms (and faults in the prepared code
// for the reference engine); the second run is timed. Under the tiered engine
// the warm-up run is also where hot-method detection fires: tierup_loop OSRs
// mid-warm-up, and by the timed run every kernel enters compiled code.
Measurement MeasureKernel(Engine engine, const Kernel& kernel) {
  MapClassProvider provider;
  InstallSystemLibrary(provider);
  InstallBenchClasses(provider);
  Machine machine(ConfigFor(engine), &provider);

  auto warm = machine.CallStatic("bench/Kernels", kernel.method, "()I");
  if (!warm.ok() || warm->threw) {
    std::fprintf(stderr, "kernel %s failed: %s\n", kernel.name.c_str(),
                 warm.ok() ? warm->exception_class.c_str() : warm.error().ToString().c_str());
    std::abort();
  }
  // Best of three timed repetitions: host-time benchmarks on a shared machine
  // jitter far more than the engine deltas under measurement.
  Measurement out;
  out.ns_per_op = 1e18;
  for (int rep = 0; rep < 3; rep++) {
    uint64_t before = machine.counters().instructions;
    auto t0 = std::chrono::steady_clock::now();
    auto run = machine.CallStatic("bench/Kernels", kernel.method, "()I");
    auto t1 = std::chrono::steady_clock::now();
    if (!run.ok() || run->threw || run->value.num != warm->value.num) {
      std::fprintf(stderr, "kernel %s diverged between runs\n", kernel.name.c_str());
      std::abort();
    }
    uint64_t instructions = machine.counters().instructions - before;
    double nanos = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
    double ns_per_op = nanos / static_cast<double>(instructions);
    if (ns_per_op < out.ns_per_op) {
      out.ns_per_op = ns_per_op;
      out.millis = nanos / 1e6;
      out.instructions = instructions;
    }
  }
  out.osr_entries = machine.counters().osr_entries;
  out.tier_compiles = machine.counters().tier_compiles;
  return out;
}

// Full Figure 5 application (synthetic JLex) under each engine: the
// end-to-end "measurable win on the paper's workloads" number, as opposed to
// the isolated kernels above.
Measurement MeasureFig5App(Engine engine) {
  AppBundle app = BuildJlexApp(/*work_scale=*/2);
  MapClassProvider provider;
  InstallSystemLibrary(provider);
  app.InstallInto(&provider);
  Machine machine(ConfigFor(engine), &provider);

  // Under the tiered engine one execution is not enough to get hot: each
  // module's step kernel accumulates ~4.8k backedges per run, below the
  // default 10k threshold. Three warm-ups carry every hot method across it,
  // so the timed run measures steady-state tiered execution.
  const int warm_runs = engine == Engine::kTiered ? 3 : 1;
  Result<CallOutcome> warm = machine.RunMain(app.main_class);
  for (int i = 1; i < warm_runs && warm.ok() && !warm->threw; i++) {
    warm = machine.RunMain(app.main_class);
  }
  if (!warm.ok() || warm->threw) {
    std::fprintf(stderr, "fig5 app failed under engine=%d\n", static_cast<int>(engine));
    std::abort();
  }
  Measurement out;
  out.ns_per_op = 1e18;
  for (int rep = 0; rep < 3; rep++) {
    uint64_t before = machine.counters().instructions;
    auto t0 = std::chrono::steady_clock::now();
    auto run = machine.RunMain(app.main_class);
    auto t1 = std::chrono::steady_clock::now();
    if (!run.ok() || run->threw) {
      std::abort();
    }
    uint64_t instructions = machine.counters().instructions - before;
    double nanos = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
    double ns_per_op = nanos / static_cast<double>(instructions);
    if (ns_per_op < out.ns_per_op) {
      out.ns_per_op = ns_per_op;
      out.millis = nanos / 1e6;
      out.instructions = instructions;
    }
  }
  out.osr_entries = machine.counters().osr_entries;
  out.tier_compiles = machine.counters().tier_compiles;
  return out;
}

// The leaf frame of each sampled stack, with samples accumulated per method —
// "where is virtual time actually spent", the flamegraph's top edge.
std::vector<std::pair<std::string, uint64_t>> LeafHotList(const std::string& collapsed) {
  std::map<std::string, uint64_t> leaves;
  size_t pos = 0;
  while (pos < collapsed.size()) {
    size_t eol = collapsed.find('\n', pos);
    if (eol == std::string::npos) {
      eol = collapsed.size();
    }
    std::string line = collapsed.substr(pos, eol - pos);
    pos = eol + 1;
    size_t space = line.rfind(' ');
    if (space == std::string::npos) {
      continue;
    }
    uint64_t count = std::strtoull(line.c_str() + space + 1, nullptr, 10);
    std::string stack = line.substr(0, space);
    size_t semi = stack.rfind(';');
    std::string leaf = semi == std::string::npos ? stack : stack.substr(semi + 1);
    leaves[leaf] += count;
  }
  std::vector<std::pair<std::string, uint64_t>> sorted(leaves.begin(), leaves.end());
  std::stable_sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) {
      return a.second > b.second;
    }
    return a.first < b.first;
  });
  return sorted;
}

// --profile mode: run every kernel once on one machine with the sampling
// profiler attached, dump the byte-deterministic artifacts, and verify the
// sampled hot list names the known kernel hot spots.
int RunProfileMode(bool quicken, const std::string& prefix) {
  MapClassProvider provider;
  InstallSystemLibrary(provider);
  InstallBenchClasses(provider);
  MachineConfig config;
  config.quicken = quicken;
  Machine machine(config, &provider);
  ExecutionProfiler profiler;
  machine.SetProfiler(&profiler);
  for (const Kernel& kernel : Kernels()) {
    auto run = machine.CallStatic("bench/Kernels", kernel.method, "()I");
    if (!run.ok() || run->threw) {
      std::fprintf(stderr, "profile kernel %s failed\n", kernel.name.c_str());
      return 1;
    }
  }
  machine.SetProfiler(nullptr);

  std::string collapsed = profiler.CollapsedStacks();
  std::string pprof = profiler.PprofText();
  std::string collapsed_path = prefix + ".collapsed";
  std::string pprof_path = prefix + ".pprof.txt";
  {
    std::ofstream out(collapsed_path, std::ios::binary);
    out << collapsed;
  }
  {
    std::ofstream out(pprof_path, std::ios::binary);
    out << pprof;
  }

  std::printf("profile: engine=%s samples=%llu period_nanos=%llu virtual_nanos=%llu\n",
              quicken ? "quickened" : "reference",
              static_cast<unsigned long long>(profiler.samples()),
              static_cast<unsigned long long>(profiler.sample_period_nanos()),
              static_cast<unsigned long long>(machine.virtual_nanos()));
  std::printf("wrote %s (%zu bytes), %s (%zu bytes)\n\n", collapsed_path.c_str(),
              collapsed.size(), pprof_path.c_str(), pprof.size());

  std::vector<std::pair<std::string, uint64_t>> hot = LeafHotList(collapsed);
  std::printf("sampled leaf methods:\n");
  for (size_t i = 0; i < hot.size() && i < 8; i++) {
    std::printf("  %-40s %llu\n", hot[i].first.c_str(),
                static_cast<unsigned long long>(hot[i].second));
  }
  std::printf("\n%s\n",
              MethodProfileTable(CollectMethodProfile(machine.registry()), 10).c_str());

  // The kernels' virtual-time budget makes these three the provable top-3:
  // intLoop 300k iterations of pure dispatch, fieldChurn 150k field round
  // trips, and Node.step — the leaf of 100k monomorphic invokevirtuals
  // (samples land at method entry, so the callee owns the invoke cost).
  const char* expected[] = {"bench/Kernels.intLoop", "bench/Kernels.fieldChurn",
                            "bench/Node.step"};
  for (const char* want : expected) {
    bool found = false;
    for (size_t i = 0; i < hot.size() && i < 3; i++) {
      if (hot[i].first == want) {
        found = true;
        break;
      }
    }
    if (!found) {
      std::fprintf(stderr, "PROFILE CHECK FAILED: %s not in sampled top-3\n", want);
      return 1;
    }
  }
  std::printf("profile check passed: top-3 sampled methods match kernel hot spots\n");
  return 0;
}

}  // namespace
}  // namespace dvm

int main(int argc, char** argv) {
  using namespace dvm;
  bool json = false;
  bool check = false;
  bool quickened_engine = true;
  bool tiered_engine = false;
  bool profile = false;
  std::string json_path = "BENCH_interp.json";
  std::string profile_prefix = "PROFILE_interp";
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        json_path = argv[++i];
      }
    } else if (std::strcmp(argv[i], "--no-quicken") == 0) {
      quickened_engine = false;
    } else if (std::strcmp(argv[i], "--tier") == 0) {
      tiered_engine = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--profile") == 0) {
      profile = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        profile_prefix = argv[++i];
      }
    }
  }
  if (!quickened_engine) {
    tiered_engine = false;  // tiering rides the quickened engine
  }

  if (profile) {
    return RunProfileMode(quickened_engine, profile_prefix);
  }

  bench::PrintHeader(tiered_engine
                         ? "Interpreter microbenchmarks: tiered vs quickened vs reference"
                         : "Interpreter microbenchmarks: quickened vs reference engine",
                     "client-side execution cost underlying Figures 7-9");
  std::printf("dispatch mode: %s (DVM_THREADED_DISPATCH %s)\n\n",
              InterpreterDispatchMode(),
              std::strcmp(InterpreterDispatchMode(), "threaded") == 0 ? "on" : "off");
  if (tiered_engine) {
    bench::PrintRow({"kernel", "quick ns/op", "tier ns/op", "ref ns/op", "quick x",
                     "tier x", "osr"});
  } else {
    bench::PrintRow({"kernel", "quick ns/op", "ref ns/op", "speedup", "instrs"});
  }

  double dispatch_speedup = 0;
  double throw_speedup = 0;
  double tier_int_loop_gain = 0;   // tiered over pure-quickened, int_loop
  double tier_fig5_gain = 0;       // tiered over pure-quickened, fig5_jlex
  uint64_t tierup_osr_entries = 0;
  std::string rows;

  // Shared per-row reporting: prints the table row and appends the JSON row.
  auto report = [&](const std::string& name, const Measurement& quick,
                    const Measurement& tiered, const Measurement& reference) {
    double speedup =
        quickened_engine && quick.ns_per_op > 0 ? reference.ns_per_op / quick.ns_per_op : 0;
    double tiered_speedup =
        tiered_engine && tiered.ns_per_op > 0 ? reference.ns_per_op / tiered.ns_per_op : 0;
    if (tiered_engine) {
      bench::PrintRow({name, bench::FmtDouble(quick.ns_per_op, 2),
                       bench::FmtDouble(tiered.ns_per_op, 2),
                       bench::FmtDouble(reference.ns_per_op, 2),
                       bench::FmtDouble(speedup, 2) + "x",
                       bench::FmtDouble(tiered_speedup, 2) + "x",
                       std::to_string(tiered.osr_entries)});
    } else {
      bench::PrintRow({name,
                       quickened_engine ? bench::FmtDouble(quick.ns_per_op, 2) : "-",
                       bench::FmtDouble(reference.ns_per_op, 2),
                       quickened_engine ? bench::FmtDouble(speedup, 2) + "x" : "-",
                       std::to_string(reference.instructions)});
    }
    if (!rows.empty()) {
      rows += ",\n";
    }
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "    {\"kernel\": \"%s\", \"quickened_ns_per_op\": %.3f, "
                  "\"tiered_ns_per_op\": %.3f, \"reference_ns_per_op\": %.3f, "
                  "\"speedup\": %.3f, \"tiered_speedup\": %.3f, "
                  "\"osr_entries\": %llu, \"instructions\": %llu}",
                  name.c_str(), quick.ns_per_op, tiered.ns_per_op,
                  reference.ns_per_op, speedup, tiered_speedup,
                  static_cast<unsigned long long>(tiered.osr_entries),
                  static_cast<unsigned long long>(reference.instructions));
    rows += buf;
    return speedup;
  };

  for (const Kernel& kernel : Kernels()) {
    Measurement quick{};
    if (quickened_engine) {
      quick = MeasureKernel(Engine::kQuick, kernel);
    }
    Measurement tiered{};
    if (tiered_engine) {
      tiered = MeasureKernel(Engine::kTiered, kernel);
    }
    Measurement reference = MeasureKernel(Engine::kReference, kernel);
    double speedup = report(kernel.name, quick, tiered, reference);
    if (kernel.name == "int_loop") {
      dispatch_speedup = speedup;
      if (tiered_engine && tiered.ns_per_op > 0) {
        tier_int_loop_gain = quick.ns_per_op / tiered.ns_per_op;
      }
    } else if (kernel.name == "throw_catch") {
      throw_speedup = speedup;
    } else if (kernel.name == "tierup_loop") {
      tierup_osr_entries = tiered.osr_entries;
    }
  }

  {
    Measurement quick{};
    if (quickened_engine) {
      quick = MeasureFig5App(Engine::kQuick);
    }
    Measurement tiered{};
    if (tiered_engine) {
      tiered = MeasureFig5App(Engine::kTiered);
    }
    Measurement reference = MeasureFig5App(Engine::kReference);
    report("fig5_jlex", quick, tiered, reference);
    if (tiered_engine && tiered.ns_per_op > 0) {
      tier_fig5_gain = quick.ns_per_op / tiered.ns_per_op;
    }
  }

  if (json) {
    std::ofstream out(json_path);
    out << "{\n  \"benchmark\": \"bench_interp\",\n  \"dispatch_mode\": \""
        << InterpreterDispatchMode() << "\",\n  \"tiered\": "
        << (tiered_engine ? "true" : "false") << ",\n  \"kernels\": [\n"
        << rows << "\n  ]\n}\n";
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  if (check && quickened_engine) {
    if (dispatch_speedup <= 1.0) {
      std::fprintf(stderr,
                   "PERF CHECK FAILED: quickened engine not faster on int_loop "
                   "(speedup %.3fx)\n",
                   dispatch_speedup);
      return 1;
    }
    // The (pc, class) handler-walk memo must keep the quickened engine ahead
    // on the unwind-heavy kernel too.
    if (throw_speedup <= 1.0) {
      std::fprintf(stderr,
                   "PERF CHECK FAILED: quickened engine not faster on throw_catch "
                   "(speedup %.3fx)\n",
                   throw_speedup);
      return 1;
    }
  }
  // Gate thresholds sit below steady measurements (int_loop ~1.7x, fig5_jlex
  // ~1.45x over pure-quickened on the CI hosts) to absorb shared-machine
  // noise while still failing on a real dispatch-loop regression.
  if (check && tiered_engine) {
    if (tier_int_loop_gain < 1.4) {
      std::fprintf(stderr,
                   "PERF CHECK FAILED: tiered engine below 1.4x over quickened "
                   "on int_loop (%.3fx)\n",
                   tier_int_loop_gain);
      return 1;
    }
    if (tier_fig5_gain < 1.25) {
      std::fprintf(stderr,
                   "PERF CHECK FAILED: tiered engine below 1.25x over quickened "
                   "on fig5_jlex (%.3fx)\n",
                   tier_fig5_gain);
      return 1;
    }
    if (tierup_osr_entries == 0) {
      std::fprintf(stderr,
                   "TIER CHECK FAILED: tierup_loop recorded no on-stack "
                   "replacement under the default thresholds\n");
      return 1;
    }
    std::printf("tier check passed: int_loop %.2fx, fig5_jlex %.2fx over "
                "quickened; tierup_loop OSR entries %llu\n",
                tier_int_loop_gain, tier_fig5_gain,
                static_cast<unsigned long long>(tierup_osr_entries));
  }
  return 0;
}
