// Fleet metrics aggregation: periodic per-replica StatsRegistry snapshots
// shipped over the ControlPlane mesh to the AdministrationConsole.
//
// Each replica snapshots its registry (counters plus log-bucketed histograms,
// which merge exactly bucket-by-bucket) and sends it as a control-plane
// message to the replica hosting the console, paying the mesh's modeled
// bandwidth and latency for the serialized size. Partitioned or lossy links
// drop snapshots exactly like any other control message — the console's
// divergence view then shows the dark replica aging out, which is the signal,
// not a bug. The console keeps the latest snapshot per replica; FleetMerged()
// is the exact union (ISSUE 8 acceptance: fleet export == merge of
// per-replica snapshots).
#ifndef SRC_SERVICES_FLEET_METRICS_H_
#define SRC_SERVICES_FLEET_METRICS_H_

#include <cstddef>
#include <cstdint>

#include "src/services/monitor_service.h"
#include "src/simnet/multicast.h"
#include "src/support/stats.h"

namespace dvm {

struct FleetMetricsConfig {
  // Mesh node the console is attached to; snapshots from other replicas pay
  // one control-plane hop, the local replica's snapshot is ingested directly.
  size_t console_replica = 0;
};

class FleetMetricsPublisher {
 public:
  // `plane` may be null for single-process setups: every snapshot is then
  // ingested directly with zero transit time.
  FleetMetricsPublisher(ControlPlane* plane, AdministrationConsole* console,
                        FleetMetricsConfig config = {})
      : plane_(plane), console_(console), config_(config) {}

  // Snapshots `stats` as of virtual time `now` on `replica` and ships it to
  // the console. Returns true when the snapshot was delivered (false = the
  // mesh dropped it; the console keeps serving the previous one).
  bool Publish(size_t replica, const StatsRegistry& stats, uint64_t now);
  // Pre-taken snapshot variant (callers that need to stamp extra counters).
  bool PublishSnapshot(size_t replica, StatsSnapshot snapshot, uint64_t now);

  uint64_t published() const { return published_; }
  uint64_t delivered() const { return delivered_; }
  uint64_t dropped() const { return published_ - delivered_; }
  uint64_t bytes_shipped() const { return bytes_shipped_; }

 private:
  ControlPlane* plane_;
  AdministrationConsole* console_;
  FleetMetricsConfig config_;
  uint64_t published_ = 0;
  uint64_t delivered_ = 0;
  uint64_t bytes_shipped_ = 0;
};

}  // namespace dvm

#endif  // SRC_SERVICES_FLEET_METRICS_H_
