// Constant pool for DVM class files. Mirrors the JVM constant pool but flattens
// NameAndType into the Field/Method reference entries. Index 0 is reserved as
// "no entry" (e.g. the superclass slot of the root class).
#ifndef SRC_BYTECODE_CONSTANT_POOL_H_
#define SRC_BYTECODE_CONSTANT_POOL_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/support/result.h"

namespace dvm {

enum class CpTag : uint8_t {
  kUnused = 0,  // slot 0 placeholder
  kUtf8 = 1,
  kInteger = 3,
  kLong = 5,
  kClass = 7,    // name_index -> Utf8
  kString = 8,   // utf8_index -> Utf8
  kFieldRef = 9,  // class_index -> Class, name/desc -> Utf8
  kMethodRef = 10,
};

struct CpEntry {
  CpTag tag = CpTag::kUnused;
  std::string utf8;      // kUtf8
  int32_t int_value = 0;  // kInteger
  int64_t long_value = 0;  // kLong
  uint16_t ref1 = 0;  // kClass: name; kString: utf8; kFieldRef/kMethodRef: class
  uint16_t ref2 = 0;  // kFieldRef/kMethodRef: member name
  uint16_t ref3 = 0;  // kFieldRef/kMethodRef: descriptor
};

// Resolved view of a field or method reference.
struct MemberRef {
  std::string class_name;
  std::string member_name;
  std::string descriptor;

  std::string ToString() const { return class_name + "." + member_name + ":" + descriptor; }
};

class ConstantPool {
 public:
  ConstantPool() { entries_.push_back(CpEntry{}); }

  // Interning adders: return the existing index when an equal entry exists.
  uint16_t AddUtf8(const std::string& s);
  uint16_t AddInteger(int32_t v);
  uint16_t AddLong(int64_t v);
  uint16_t AddClass(const std::string& class_name);
  uint16_t AddString(const std::string& s);
  uint16_t AddFieldRef(const std::string& class_name, const std::string& field_name,
                       const std::string& descriptor);
  uint16_t AddMethodRef(const std::string& class_name, const std::string& method_name,
                        const std::string& descriptor);

  // Raw append for the deserializer (no interning).
  Status AppendRaw(CpEntry entry);

  size_t size() const { return entries_.size(); }
  const CpEntry& entry(uint16_t index) const { return entries_[index]; }
  // In-place access for tooling that deliberately corrupts entries (the fuzz
  // mutator). Interning keys are NOT updated; do not mix with the adders.
  CpEntry& mutable_entry(uint16_t index) { return entries_[index]; }
  bool IsValidIndex(uint16_t index) const { return index > 0 && index < entries_.size(); }
  bool HasTag(uint16_t index, CpTag tag) const {
    return IsValidIndex(index) && entries_[index].tag == tag;
  }

  // Checked accessors used by the verifier and the interpreter.
  Result<std::string> Utf8At(uint16_t index) const;
  Result<int32_t> IntegerAt(uint16_t index) const;
  Result<int64_t> LongAt(uint16_t index) const;
  Result<std::string> ClassNameAt(uint16_t index) const;
  Result<std::string> StringAt(uint16_t index) const;
  Result<MemberRef> FieldRefAt(uint16_t index) const;
  Result<MemberRef> MethodRefAt(uint16_t index) const;

  // Structural self-check: every cross-reference points at an entry of the right
  // tag. This is part of verification phase 1.
  Status Validate() const;

 private:
  uint16_t AddEntry(CpEntry entry, uint64_t intern_key);
  Result<MemberRef> MemberRefAt(uint16_t index, CpTag tag) const;

  std::vector<CpEntry> entries_;
  std::unordered_map<uint64_t, uint16_t> intern_;
};

}  // namespace dvm

#endif  // SRC_BYTECODE_CONSTANT_POOL_H_
