// Lightweight statistics accumulators for the benchmark harnesses: running
// mean/stddev (Welford) and percentile extraction over stored samples, plus
// thread-safe named counters and log-bucketed latency histograms
// (StatsRegistry) that the concurrent proxy request path uses to surface
// per-stage work, coalescing, lock traffic, and tail latency.
#ifndef SRC_SUPPORT_STATS_H_
#define SRC_SUPPORT_STATS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace dvm {

// Constant-space running mean / variance.
class RunningStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Stores samples; supports exact percentiles. Used where the paper reports
// averages of five runs and standard deviations.
class SampleSet {
 public:
  void Add(double x) { samples_.push_back(x); }
  size_t count() const { return samples_.size(); }
  double Mean() const;
  double Stddev() const;
  // p in [0, 100]; linear interpolation between closest ranks.
  double Percentile(double p) const;
  double Min() const;
  double Max() const;

 private:
  std::vector<double> samples_;
};

// A single monotonically increasing counter, safe to bump from any thread.
class StatCounter {
 public:
  void Add(uint64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Log-bucketed histogram with lock-free recording: 64 buckets whose inclusive
// upper bounds grow by ~1.5x per step (1, 2, 3, 4, 5, 7, 11, ... ~1e11), so a
// nanosecond-scale latency distribution spanning six decades fits with bounded
// relative error. Percentiles interpolate within the winning bucket and are
// accurate to one bucket width (asserted against exact SampleSet percentiles
// in trace_test).
class Histogram {
 public:
  static constexpr size_t kBuckets = 64;

  // A consistent copy of the histogram state; all queries run on snapshots so
  // hot paths never take a lock.
  struct Snapshot {
    std::array<uint64_t, kBuckets> counts{};
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t min = 0;
    uint64_t max = 0;

    // p in [0, 100]; linear interpolation within the bucket holding the rank,
    // clamped to the observed [min, max].
    double Percentile(double p) const;
    double Mean() const { return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count); }

    // Exact merge: bucket counts are additive, so merging two snapshots yields
    // byte-identical state to recording both streams into one histogram. This
    // is what lets per-replica histograms ship to the console and aggregate
    // fleet-wide without approximation.
    void Merge(const Snapshot& other);
    // Per-bucket difference `this - earlier` for two snapshots of the same
    // monotonically growing histogram (counts/count/sum subtract; min/max stay
    // cumulative, Prometheus-style).
    Snapshot Delta(const Snapshot& earlier) const;
  };

  void Record(uint64_t value);
  Snapshot TakeSnapshot() const;
  void Reset();

  // Inclusive upper bound of bucket `i` (the last bucket absorbs any larger
  // value); index of the bucket holding `value`; width of that bucket — the
  // percentile error bound at `value`.
  static uint64_t BucketBound(size_t i);
  static size_t BucketFor(uint64_t value);
  static uint64_t BucketWidth(uint64_t value);

 private:
  std::array<std::atomic<uint64_t>, kBuckets> counts_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{std::numeric_limits<uint64_t>::max()};
  std::atomic<uint64_t> max_{0};
};

// A point-in-time copy of an entire StatsRegistry: name-sorted counters and
// histogram snapshots. Serializable (for shipping over the control plane),
// exactly mergeable (fleet aggregation), and differencable (burn-rate windows
// for SLO monitors).
struct StatsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;

  // Counter value / histogram snapshot by name (0 / empty when absent).
  uint64_t CounterValue(const std::string& name) const;
  Histogram::Snapshot HistogramFor(const std::string& name) const;

  // Exact union: counters add, histogram buckets add; names present in only
  // one side carry through. Merge(a, b) == snapshot of a registry that
  // recorded both streams.
  void Merge(const StatsSnapshot& other);
  // Windowed difference `this - earlier` for two snapshots of the same
  // registry (counters and histogram buckets subtract, clamped at zero for
  // names the earlier snapshot lacks; histogram min/max stay cumulative).
  StatsSnapshot Delta(const StatsSnapshot& earlier) const;

  // Wire size in bytes for control-plane byte accounting: name lengths plus
  // 8 bytes per counter and the fixed histogram payload.
  uint64_t SerializedSize() const;
};

// Registry of named counters. Counter() returns a reference that stays valid
// for the registry's lifetime, so hot paths resolve a counter once and then
// bump it lock-free; only creation and snapshotting take the registry mutex.
class StatsRegistry {
 public:
  StatCounter& Counter(const std::string& name);
  // 0 when the counter does not exist.
  uint64_t Value(const std::string& name) const;
  // Name-sorted (map order) view of every counter.
  std::vector<std::pair<std::string, uint64_t>> Snapshot() const;

  // Named histogram; like Counter(), the reference stays valid for the
  // registry's lifetime so hot paths record lock-free after one lookup.
  Histogram& Histo(const std::string& name);
  // Empty snapshot when the histogram does not exist.
  Histogram::Snapshot HistogramSnapshot(const std::string& name) const;
  // Name-sorted view of every histogram.
  std::vector<std::pair<std::string, Histogram::Snapshot>> HistogramSnapshots() const;

  // Consistent copy of every counter and histogram in one structure.
  StatsSnapshot FullSnapshot() const;

  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<StatCounter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace dvm

#endif  // SRC_SUPPORT_STATS_H_
