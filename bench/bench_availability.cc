// Availability under faults: the repo's first robustness trajectory numbers.
// The paper's answer to "the proxy is a single point of failure" is
// replication (§2); this bench measures what that buys when replicas actually
// die and links actually drop. Sweeps replica-kill schedules and per-link
// drop rates over a redirecting client fetching an applet population through
// a 3-replica rendezvous-routed cluster, and reports p50/p99 fetch latency,
// success rate, and the failover/timeout/fail-closed counters.
//
// Acceptance properties demonstrated:
//   - one replica killed mid-run: success stays 100% via failover, p99
//     inflation bounded by the request deadline + backoff;
//   - all replicas down: verification-dependent fetches fail closed (zero
//     unverified classes served), fail-closed counter == rejection count;
//   - identical seeds reproduce identical fault traces and virtual clocks.
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/dvm/redirect_client.h"
#include "src/runtime/syslib.h"
#include "src/services/slo_monitor.h"
#include "src/services/verify_service.h"
#include "src/simnet/fault.h"
#include "src/support/stats.h"
#include "src/workloads/applets.h"

using namespace dvm;
using namespace dvm::bench;

namespace {

constexpr size_t kReplicas = 3;

struct Scenario {
  MapClassProvider* origin;
  MapClassEnv* env;
  DvmServer* server;
  std::vector<std::string> classes;
};

struct RunResult {
  size_t attempts = 0;
  size_t successes = 0;
  // Snapshot of the log-bucketed fetch-latency histogram (nanos); quantiles
  // are accurate to one bucket width (~2-4% relative error).
  Histogram::Snapshot latency;
  uint64_t timeouts = 0;
  uint64_t retries = 0;
  uint64_t failovers = 0;
  uint64_t fail_closed = 0;
  uint64_t dropped = 0;
  uint64_t trace_fingerprint = 0;
  uint64_t final_nanos = 0;
  // Burn-rate SLO monitor output: every ALERT/CLEAR with its virtual
  // timestamp. Byte-compared across same-seed runs.
  std::string slo_log;
  size_t slo_alerts = 0;
};

// SLO monitor settings: evaluate a burn-rate window every 16 fetches. The
// healthy fetch path costs ~1.4s p99 (verification pipeline + 10 Mb/s access
// link), and the log-bucketed histogram quantizes that window's p99 up to at
// most ~2.1s — so the ceiling sits at 3s: no healthy window can page, only a
// multi-second degradation can. The success rule pages when a window's
// success ratio drops below 99% (ppm scale).
constexpr size_t kSloWindow = 16;
constexpr uint64_t kP99CeilingNanos = 3 * kSecond;
constexpr uint64_t kMinSuccessPpm = 990'000;

// Fetches every class once through a fresh cluster + client under `plan`.
RunResult RunSweep(Scenario& s, const FaultPlan& plan) {
  ProxyCluster cluster(kReplicas, ProxyConfig{}, s.env, s.origin);
  for (size_t i = 0; i < cluster.size(); i++) {
    cluster.replica(i).AddFilter(std::make_unique<VerificationFilter>());
  }
  FaultInjector injector(plan);
  cluster.SetFaultInjector(&injector);

  RedirectingClient client(s.server, nullptr, DvmMachineConfig(), MakeEthernet10Mb());
  client.UseCluster(&cluster);

  RunResult result;
  StatsRegistry stats;
  Histogram& latency = stats.Histo("bench.fetch_nanos");
  StatCounter& fetch_ok = stats.Counter("bench.fetch_ok");
  StatCounter& fetch_total = stats.Counter("bench.fetch_total");
  AdministrationConsole console;
  SloMonitor slo("client", &console);
  slo.AddRule(P99CeilingRule("fetch-p99", "bench.fetch_nanos", kP99CeilingNanos,
                             /*min_events=*/kSloWindow / 2));
  slo.AddRule(MinSuccessRule("fetch-success", "bench.fetch_ok", "bench.fetch_total",
                             kMinSuccessPpm, /*min_events=*/kSloWindow / 2));
  slo.Evaluate(stats.FullSnapshot(), client.machine().virtual_nanos());
  for (const auto& name : s.classes) {
    uint64_t before = client.machine().virtual_nanos();
    auto bytes = client.FetchClass(name);
    uint64_t after = client.machine().virtual_nanos();
    result.attempts++;
    fetch_total.Add();
    if (bytes.ok()) {
      result.successes++;
      latency.Record(after - before);
      fetch_ok.Add();
    }
    if (result.attempts % kSloWindow == 0) {
      slo.Evaluate(stats.FullSnapshot(), after);
    }
  }
  slo.Evaluate(stats.FullSnapshot(), client.machine().virtual_nanos());
  result.slo_log = slo.TransitionLog();
  for (const auto& event : console.log()) {
    result.slo_alerts += event.kind == "slo-alert" ? 1 : 0;
  }
  result.latency = latency.TakeSnapshot();
  result.timeouts = client.timeouts();
  result.retries = client.retries();
  result.failovers = client.failovers();
  result.fail_closed = client.fail_closed_rejections();
  result.dropped = injector.dropped();
  result.trace_fingerprint = injector.TraceFingerprint();
  result.final_nanos = client.machine().virtual_nanos();
  return result;
}

std::string Pct(size_t num, size_t den) {
  return FmtDouble(den == 0 ? 0.0 : 100.0 * static_cast<double>(num) / den, 1) + "%";
}

void PrintResult(const std::string& label, const RunResult& r) {
  PrintRow({label, Pct(r.successes, r.attempts),
            FmtHistPct(r.latency, 50, 1e6), FmtHistPct(r.latency, 99, 1e6),
            std::to_string(r.timeouts), std::to_string(r.retries),
            std::to_string(r.failovers), std::to_string(r.fail_closed)},
           12);
}

}  // namespace

int main() {
  PrintHeader("Availability under replica failures and message loss",
              "Section 2 replication claim, made falsifiable");

  auto applets = BuildAppletPopulation(40, /*seed=*/31);
  MapClassProvider origin;
  InstallSystemLibrary(origin);
  std::vector<std::string> classes;
  for (const auto& applet : applets) {
    applet.InstallInto(&origin);
    for (const auto& name : applet.ClassNames()) {
      classes.push_back(name);
    }
  }
  std::vector<ClassFile> library = BuildSystemLibrary();
  MapClassEnv env;
  for (const auto& cls : library) {
    env.Add(&cls);
  }
  DvmServerConfig server_config;
  server_config.policy = PermissivePolicy();
  server_config.proxy.sign_output = true;
  DvmServer server(std::move(server_config), &origin);

  Scenario scenario{&origin, &env, &server, classes};

  std::printf("\n%zu classes, %zu replicas, verification pipeline, fail-closed policy\n\n",
              classes.size(), kReplicas);
  PrintRow({"Scenario", "Success", "p50(ms)", "p99(ms)", "Timeout", "Retry", "Failover",
            "FailClosed"},
           12);

  // Baseline: no faults.
  FaultPlan healthy;
  healthy.seed = 97;
  RunResult baseline = RunSweep(scenario, healthy);
  PrintResult("baseline", baseline);

  // One replica killed mid-run (at half the baseline's virtual duration).
  FaultPlan kill_one = healthy;
  kill_one.replica_outages[1] = {{baseline.final_nanos / 2, kSimTimeForever}};
  RunResult killed = RunSweep(scenario, kill_one);
  PrintResult("kill-1@mid", killed);

  // Two replicas killed mid-run: the last survivor absorbs everything.
  FaultPlan kill_two = kill_one;
  kill_two.replica_outages[2] = {{baseline.final_nanos / 2, kSimTimeForever}};
  RunResult killed2 = RunSweep(scenario, kill_two);
  PrintResult("kill-2@mid", killed2);

  // Message-drop sweep on the client's access link.
  for (double drop : {0.05, 0.20, 0.40}) {
    FaultPlan lossy = healthy;
    lossy.links["client-proxy"] = LinkFaults{drop, 0, 2 * kMillisecond};
    RunResult r = RunSweep(scenario, lossy);
    PrintResult("drop-" + FmtDouble(drop, 2), r);
  }

  // Total outage: every replica down from t=0.
  FaultPlan blackout = healthy;
  for (size_t i = 0; i < kReplicas; i++) {
    blackout.replica_outages[i] = {{0, kSimTimeForever}};
  }
  RunResult dark = RunSweep(scenario, blackout);
  PrintResult("all-down", dark);

  bool ok = true;

  std::printf("\nChecks:\n");
  bool failover_ok = killed.successes == killed.attempts && killed.failovers > 0;
  std::printf("  kill-1 success rate stays 100%% via failover: %s\n",
              failover_ok ? "PASS" : "FAIL");
  ok &= failover_ok;

  double p99_inflation =
      (killed.latency.Percentile(99) - baseline.latency.Percentile(99)) / 1e6;
  bool p99_ok = p99_inflation < 600.0;  // deadline (250 ms) + backoff + slack
  std::printf("  kill-1 p99 inflation bounded (%.1f ms < 600 ms): %s\n", p99_inflation,
              p99_ok ? "PASS" : "FAIL");
  ok &= p99_ok;

  bool closed_ok = dark.successes == 0 && dark.fail_closed == dark.attempts;
  std::printf("  all-down fails closed (0 unverified classes executed, "
              "%llu rejections == %zu attempts): %s\n",
              static_cast<unsigned long long>(dark.fail_closed), dark.attempts,
              closed_ok ? "PASS" : "FAIL");
  ok &= closed_ok;

  bool slo_quiet = baseline.slo_alerts == 0;
  std::printf("  baseline trips no SLO alerts: %s\n", slo_quiet ? "PASS" : "FAIL");
  ok &= slo_quiet;

  bool slo_burn = dark.slo_alerts > 0 &&
                  dark.slo_log.find("ALERT fetch-success") != std::string::npos;
  std::printf("  all-down trips the fetch-success burn-rate alert: %s\n",
              slo_burn ? "PASS" : "FAIL");
  ok &= slo_burn;
  if (!dark.slo_log.empty()) {
    std::printf("  all-down SLO transitions (virtual nanos):\n%s", dark.slo_log.c_str());
  }

  RunResult killed_again = RunSweep(scenario, kill_one);
  bool deterministic = killed_again.trace_fingerprint == killed.trace_fingerprint &&
                       killed_again.final_nanos == killed.final_nanos &&
                       killed_again.slo_log == killed.slo_log;
  std::printf("  identical seed reproduces identical trace, clock, and SLO log: %s\n",
              deterministic ? "PASS" : "FAIL");
  ok &= deterministic;

  std::printf("\nRendezvous routing redistributes only the dead replica's shard; the\n"
              "deadline + capped backoff bound each fetch's worst case; verification\n"
              "and security fail closed by construction, so an outage can delay code\n"
              "but never let unverified code run.\n");
  return ok ? 0 : 1;
}
