// Shared scaffolding for the figure/table reproduction binaries: fixed-width
// table printing and the standard experiment wiring (origin + server + client
// in the three architectures the paper compares).
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "src/dvm/dvm.h"
#include "src/support/stats.h"
#include "src/workloads/apps.h"

namespace dvm {
namespace bench {

inline void PrintHeader(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

inline void PrintRow(const std::vector<std::string>& cells, int width = 14) {
  for (const auto& cell : cells) {
    std::printf("%-*s", width, cell.c_str());
  }
  std::printf("\n");
}

inline std::string FmtSeconds(uint64_t nanos) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", static_cast<double>(nanos) / 1e9);
  return buf;
}

inline std::string FmtMillis(uint64_t nanos) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", static_cast<double>(nanos) / 1e6);
  return buf;
}

inline std::string FmtDouble(double v, int precision = 2) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

// Percentile cell from a latency histogram snapshot: the raw recorded unit is
// divided by `scale` for display (1e6 for nanos -> ms). "-" when no samples
// were recorded, matching the SampleSet-era table output.
inline std::string FmtHistPct(const Histogram::Snapshot& snap, double p, double scale,
                              int precision = 1) {
  if (snap.count == 0) {
    return "-";
  }
  return FmtDouble(snap.Percentile(p) / scale, precision);
}

// The permissive organization policy used by the end-to-end benchmarks: the
// paper's Figure 6 policy "forces the DVM services to parse every class and
// examine every instruction" while permitting the accesses the apps perform.
inline SecurityPolicy PermissivePolicy() {
  auto policy = ParseSecurityPolicy(R"(
    <policy version="1">
      <domain sid="user" code="app/*"/>
      <domain sid="user" code="ui/*"/>
      <domain sid="user" code="applet/*"/>
      <allow sid="user" operation="*" target="*"/>
      <hook class="java/io/File" method="open" operation="file.open" target-arg="0"/>
      <hook class="java/lang/System" method="getProperty" operation="property.get"/>
    </policy>)");
  if (!policy.ok()) {
    std::abort();
  }
  return std::move(policy).value();
}

struct EndToEndResult {
  uint64_t total_nanos = 0;
  uint64_t verify_nanos = 0;
  uint64_t security_nanos = 0;
  uint64_t transfer_nanos = 0;
  uint64_t dynamic_checks = 0;
  std::vector<std::string> printed;
};

// Runs `app` on a monolithic client (local verification + stack introspection
// security, null proxy).
inline EndToEndResult RunMonolithic(const AppBundle& app) {
  MapClassProvider origin;
  app.InstallInto(&origin);
  MonolithicClient client(&origin, PermissivePolicy(), MonolithicMachineConfig(),
                          MakeEthernet10Mb());
  auto out = client.RunApp(app.main_class);
  if (!out.ok() || out->threw) {
    std::fprintf(stderr, "monolithic run failed for %s\n", app.name.c_str());
    std::abort();
  }
  EndToEndResult result;
  result.total_nanos = client.machine().virtual_nanos();
  result.verify_nanos = client.machine().ServiceNanos("verify");
  result.security_nanos = client.machine().ServiceNanos("security");
  result.transfer_nanos = client.transfer_nanos();
  result.dynamic_checks = client.machine().counters().dynamic_verify_checks;
  result.printed = client.machine().printed();
  return result;
}

// Runs `app` as a DVM client of `server` (which must already serve the app's
// classes). Use a fresh server for "uncached" numbers, a warmed one for
// "cached" numbers.
inline EndToEndResult RunDvmClient(const AppBundle& app, DvmServer* server) {
  DvmClient client(server, DvmMachineConfig(), MakeEthernet10Mb());
  auto out = client.RunApp(app.main_class);
  if (!out.ok() || out->threw) {
    std::fprintf(stderr, "dvm run failed for %s: %s\n", app.name.c_str(),
                 out.ok() ? out->exception_class.c_str() : out.error().ToString().c_str());
    std::abort();
  }
  EndToEndResult result;
  result.total_nanos = client.machine().virtual_nanos();
  result.verify_nanos = client.machine().ServiceNanos("verify");
  result.security_nanos = client.machine().ServiceNanos("security");
  result.transfer_nanos = client.transfer_nanos();
  result.dynamic_checks = client.machine().counters().dynamic_verify_checks;
  result.printed = client.machine().printed();
  return result;
}

// One-shot uncached DVM execution.
inline EndToEndResult RunDvmFresh(const AppBundle& app, DvmServerConfig config = {}) {
  MapClassProvider origin;
  app.InstallInto(&origin);
  config.policy = PermissivePolicy();
  DvmServer server(std::move(config), &origin);
  return RunDvmClient(app, &server);
}

}  // namespace bench
}  // namespace dvm

#endif  // BENCH_BENCH_UTIL_H_
