# Empty compiler generated dependencies file for mobile_code.
# This may be replaced when dependencies are built.
