// Shared client retry policy: capped exponential backoff and the timeout
// avoid-list TTL. Extracted from RedirectingClient so the pooled million-
// client simulation (ClientPool) runs the *same* policy the full-VM client
// runs — the flash-crowd numbers measure the production backoff behavior,
// not a bench-only approximation.
#ifndef SRC_DVM_RETRY_H_
#define SRC_DVM_RETRY_H_

#include <algorithm>

#include "src/simnet/sim.h"

namespace dvm {

// How long a request timeout keeps a replica out of a client's rotation.
inline constexpr SimTime kReplicaAvoidTtl = 2 * kSecond;

// Capped exponential backoff progression.
inline SimTime NextBackoff(SimTime current, SimTime cap) {
  return std::min<SimTime>(current * 2, cap);
}

// Backoff actually waited for this attempt: the exponential schedule, raised
// to the server's retry-after hint when the rejection carried one (admission
// control's drain estimate beats blind exponential growth).
inline SimTime EffectiveBackoff(SimTime backoff, SimTime retry_after) {
  return std::max(backoff, retry_after);
}

}  // namespace dvm

#endif  // SRC_DVM_RETRY_H_
