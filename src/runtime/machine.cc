#include "src/runtime/machine.h"

#include <cstdlib>

#include "src/runtime/interp.h"
#include "src/runtime/stack_security.h"
#include "src/runtime/syslib.h"
#include "src/runtime/tiered.h"
#include "src/verifier/verifier.h"

namespace dvm {

void NativeRegistry::Register(const std::string& class_name, const std::string& method_name,
                              const std::string& descriptor, NativeFn fn) {
  fns_[class_name + "." + method_name + ":" + descriptor] = std::move(fn);
}

const NativeFn* NativeRegistry::Find(const std::string& class_name,
                                     const std::string& method_name,
                                     const std::string& descriptor) const {
  auto it = fns_.find(class_name + "." + method_name + ":" + descriptor);
  return it == fns_.end() ? nullptr : &it->second;
}

int SimFileSystem::Open(const std::string& path) {
  if (!Exists(path)) {
    return -1;
  }
  handles_.push_back(Handle{path, 0});
  return static_cast<int>(handles_.size() - 1);
}

int SimFileSystem::Read(int handle) {
  if (handle < 0 || static_cast<size_t>(handle) >= handles_.size()) {
    return -1;
  }
  Handle& h = handles_[static_cast<size_t>(handle)];
  const std::string* contents = Get(h.path);
  if (contents == nullptr || h.pos >= contents->size()) {
    return -1;
  }
  return static_cast<uint8_t>((*contents)[h.pos++]);
}

const std::string* SimFileSystem::PathOf(int handle) const {
  if (handle < 0 || static_cast<size_t>(handle) >= handles_.size()) {
    return nullptr;
  }
  return &handles_[static_cast<size_t>(handle)].path;
}

Machine::Machine(MachineConfig config, ClassProvider* provider)
    : config_(config), heap_(config.heap_capacity_bytes), registry_(provider) {
  if (const char* env = std::getenv("DVM_TIER_THRESHOLD")) {
    uint64_t threshold = std::strtoull(env, nullptr, 10);
    config_.tier_invocation_threshold = threshold;
    config_.tier_osr_threshold = threshold;
  }
  if (const char* env = std::getenv("DVM_TIER_FORCE_DEOPT")) {
    config_.tier_force_deopt = env[0] != '\0' && env[0] != '0';
  }
  registry_.on_load = [this](RuntimeClass& cls) { return OnClassLoad(cls); };
  if (config_.stack_introspection_security) {
    stack_security_ = std::make_unique<StackIntrospectionSecurity>();
  }
  RegisterSystemNatives(*this);
}

Machine::~Machine() = default;

Status Machine::OnClassLoad(RuntimeClass& cls) {
  counters_.classes_loaded++;
  AddNanos(config_.cost.nanos_per_class_load);

  // System-library classes load through the trusted boot path on real JVMs and
  // skip verification there too; only application code is verified locally.
  if (config_.verify_on_load && !IsSystemClass(cls.name)) {
    // Monolithic client: full phases 1-3 locally, against the classes loaded so
    // far. Residual link assumptions are discharged at first active use.
    auto verified = VerifyClass(cls.file, registry_);
    if (!verified.ok()) {
      return verified.error();
    }
    uint64_t check_cost =
        verified->stats.TotalStaticChecks() * config_.cost.nanos_per_static_verify_check;
    AddNanos(check_cost);
    AddServiceNanos("verify", check_cost);
    if (!verified->assumptions.empty()) {
      pending_link_checks_[cls.name] = std::move(verified->assumptions);
    }
  }
  if (on_class_loaded) {
    on_class_loaded(cls);
  }
  return Status::Ok();
}

std::vector<Assumption>* Machine::PendingLinkChecks(const std::string& class_name) {
  auto it = pending_link_checks_.find(class_name);
  return it == pending_link_checks_.end() ? nullptr : &it->second;
}

void Machine::ClearPendingLinkChecks(const std::string& class_name) {
  pending_link_checks_.erase(class_name);
}

void Machine::RetireTieredCode(PreparedMethod* prepared) {
  if (prepared == nullptr || prepared->tier_code == nullptr) {
    return;
  }
  prepared->tier_code->invalidated = true;
  retired_tiers_.push_back(std::move(prepared->tier_code));
  prepared->tier_failed = true;
}

void Machine::DiscardTieredCode() {
  for (const std::string& name : registry_.loaded_order()) {
    RuntimeClass* cls = registry_.FindLoaded(name);
    if (cls == nullptr) {
      continue;
    }
    for (auto& [id, prepared] : cls->prepared) {
      if (prepared->tier_code != nullptr) {
        prepared->tier_code->invalidated = true;
        retired_tiers_.push_back(std::move(prepared->tier_code));
      }
      // Unlike a megamorphic retirement, redefinition permits re-tiering once
      // the method runs hot again under the new code.
      prepared->tier_failed = false;
    }
  }
}

void Machine::AddServiceNanos(const std::string& service, uint64_t n) {
  service_nanos_[service] += n;
}

uint64_t Machine::ServiceNanos(const std::string& service) const {
  auto it = service_nanos_.find(service);
  return it == service_nanos_.end() ? 0 : it->second;
}

Result<ObjRef> Machine::NewString(const std::string& value) {
  if (heap_.NeedsGc(value.size() + 32)) {
    CollectGarbage();
  }
  counters_.allocations++;
  AddNanos(config_.cost.nanos_per_alloc);
  return heap_.AllocString(value);
}

Result<ObjRef> Machine::InternString(const std::string& value) {
  auto it = interned_strings_.find(value);
  if (it != interned_strings_.end()) {
    return it->second;
  }
  DVM_ASSIGN_OR_RETURN(ObjRef ref, NewString(value));
  interned_strings_[value] = ref;
  return ref;
}

Result<std::string> Machine::StringValue(ObjRef ref) const {
  const HeapObject* obj = heap_.Get(ref);
  if (obj == nullptr || obj->kind != HeapObject::Kind::kString) {
    return Error{ErrorCode::kRuntimeError, "not a string object"};
  }
  return obj->str;
}

Result<ObjRef> Machine::AllocInstance(RuntimeClass* cls) {
  size_t fields = cls->total_instance_fields;
  if (heap_.NeedsGc(fields * 8 + 32)) {
    CollectGarbage();
  }
  counters_.allocations++;
  AddNanos(config_.cost.nanos_per_alloc);
  return heap_.AllocInstance(cls->name, cls->name_sym, cls->field_template);
}

namespace {
// GC-trigger sizing shared by every array path. Kept identical across the
// typed helpers so the collection schedule does not depend on which engine or
// opcode form performed the allocation.
inline size_t ArrayTriggerBytes(int32_t length) {
  return static_cast<size_t>(length < 0 ? 0 : length) * 8 + 32;
}
}  // namespace

Result<ObjRef> Machine::AllocIntArray(int32_t length) {
  if (heap_.NeedsGc(ArrayTriggerBytes(length))) {
    CollectGarbage();
  }
  counters_.allocations++;
  AddNanos(config_.cost.nanos_per_alloc);
  return heap_.AllocIntArray(length);
}

Result<ObjRef> Machine::AllocLongArray(int32_t length) {
  if (heap_.NeedsGc(ArrayTriggerBytes(length))) {
    CollectGarbage();
  }
  counters_.allocations++;
  AddNanos(config_.cost.nanos_per_alloc);
  return heap_.AllocLongArray(length);
}

Result<ObjRef> Machine::AllocRefArray(const std::string& descriptor,
                                      uint32_t descriptor_sym, int32_t length) {
  if (heap_.NeedsGc(ArrayTriggerBytes(length))) {
    CollectGarbage();
  }
  counters_.allocations++;
  AddNanos(config_.cost.nanos_per_alloc);
  return heap_.AllocRefArray(descriptor, length, descriptor_sym);
}

Result<ObjRef> Machine::AllocArray(const std::string& descriptor, int32_t length) {
  if (descriptor == "[I") {
    return AllocIntArray(length);
  }
  if (descriptor == "[J") {
    return AllocLongArray(length);
  }
  return AllocRefArray(descriptor, 0, length);
}

void Machine::CollectGarbage() {
  std::vector<ObjRef> roots;
  // Statics of every loaded class.
  for (const auto& name : registry_.loaded_order()) {
    RuntimeClass* cls = registry_.FindLoaded(name);
    if (cls == nullptr) {
      continue;
    }
    for (const Value& v : cls->statics) {
      if (v.kind == Value::Kind::kRef && !v.IsNullRef()) {
        roots.push_back(v.AsRef());
      }
    }
  }
  if (pending_exception_ != kNullRef) {
    roots.push_back(pending_exception_);
  }
  for (const auto& [text, ref] : interned_strings_) {
    roots.push_back(ref);
  }
  if (frame_root_provider_) {
    frame_root_provider_(&roots);
  }
  heap_.Collect(roots);
  counters_.gc_runs++;
}

void Machine::ThrowGuest(const std::string& exception_class, const std::string& message) {
  counters_.exceptions_thrown++;
  // Materialize the exception object. Failures here (exception class missing)
  // degrade to a plain Throwable-shaped string object so the machine never
  // aborts while reporting a guest error.
  ObjRef message_ref = kNullRef;
  if (auto str = NewString(message); str.ok()) {
    message_ref = str.value();
  }
  auto cls = registry_.GetClass(exception_class);
  if (cls.ok()) {
    if (auto obj = AllocInstance(cls.value()); obj.ok()) {
      // Throwable declares "message" as its first field; subclasses inherit it.
      const RuntimeClass* owner = cls.value()->FindFieldOwner("message");
      if (owner != nullptr) {
        auto slot = owner->own_field_slots.find("message");
        if (slot != owner->own_field_slots.end()) {
          heap_.Get(obj.value())->fields[slot->second] = Value::Ref(message_ref);
        }
      }
      pending_exception_ = obj.value();
      return;
    }
  }
  // Fallback: a bare string masquerading as the exception payload.
  if (auto fallback = heap_.AllocString(exception_class + ": " + message); fallback.ok()) {
    pending_exception_ = fallback.value();
  }
}

ObjRef Machine::TakePendingException() {
  ObjRef out = pending_exception_;
  pending_exception_ = kNullRef;
  return out;
}

Result<CallOutcome> Machine::CallStatic(const std::string& class_name,
                                        const std::string& method_name,
                                        const std::string& descriptor,
                                        std::vector<Value> args) {
  Interpreter interp(*this);
  return interp.RunStatic(class_name, method_name, descriptor, std::move(args));
}

Result<CallOutcome> Machine::RunMain(const std::string& class_name) {
  return CallStatic(class_name, "main", "()V");
}

}  // namespace dvm
