// Per-machine runtime counters and the virtual cost model.
//
// Every experiment in the paper reports wall-clock seconds on a 200 MHz
// PentiumPro. Our reproduction runs on a simulator, so time inside a client VM
// is *virtual*: the interpreter and the native library charge nanoseconds to
// the machine according to CostModel. This keeps all benchmarks deterministic
// and lets monolithic and DVM configurations differ only in where service work
// happens — the paper's own methodology ("identical software and hardware
// platforms, but under different service architectures").
#ifndef SRC_RUNTIME_COUNTERS_H_
#define SRC_RUNTIME_COUNTERS_H_

#include <cstdint>

namespace dvm {

struct RuntimeCounters {
  uint64_t instructions = 0;
  uint64_t method_invocations = 0;
  uint64_t native_calls = 0;
  uint64_t allocations = 0;
  uint64_t allocated_bytes = 0;
  uint64_t gc_runs = 0;
  uint64_t classes_loaded = 0;
  uint64_t exceptions_thrown = 0;
  // Interpreter quickening: instruction sites rewritten to their quick form.
  // Engine-internal; excluded from cross-engine differential comparisons.
  uint64_t quickened_sites = 0;
  // Tier-1 baseline compiler (DESIGN.md §16). All engine-internal, like
  // quickened_sites: the virtual clock and the architectural counters above
  // are invariant across tiers.
  uint64_t tier_compiles = 0;   // local baseline compiles
  uint64_t tier_installs = 0;   // proxy-compiled blobs installed at Prepare
  uint64_t tier_deopts = 0;     // bailouts back to the interpreter
  uint64_t osr_entries = 0;     // on-stack replacements at loop backedges
  // Service-specific dynamic work, attributed by the service natives.
  uint64_t dynamic_verify_checks = 0;
  uint64_t security_checks = 0;
  uint64_t audit_events = 0;
  uint64_t profile_events = 0;
};

// Calibrated against the paper's testbed (200 MHz PentiumPro, Sun JDK 1.2
// interpreter): roughly 10M bytecodes/s => 100 ns per interpreted instruction.
struct CostModel {
  uint64_t nanos_per_instr = 100;
  // Quickened/translated code (network compiler output) runs ~4x faster,
  // comparable to a simple template JIT.
  uint64_t nanos_per_instr_compiled = 25;
  uint64_t nanos_per_invoke = 400;        // frame setup/teardown
  // Monitor acquisition/release (uncontended CAS + bookkeeping on a 1999 JVM).
  uint64_t nanos_per_monitor_op = 1'400;
  uint64_t nanos_per_alloc = 300;         // allocation fast path
  uint64_t nanos_per_native_call = 200;   // JNI-style transition
  uint64_t nanos_per_class_load = 150000; // parse + layout, per class
  // Client-side verification costs (monolithic mode): dominated by the
  // dataflow pass, charged per check performed.
  uint64_t nanos_per_static_verify_check = 2'600;
  // The DVM dynamic component: descriptor lookup + string comparison against
  // a class's self-describing ReflectionInfo attribute (section 4.3)...
  uint64_t nanos_per_link_check = 900;
  // ...and the fallback when the target class carries no such attribute: a
  // slow reflective walk of the library interface (the paper's anecdote).
  uint64_t nanos_per_link_check_slow = 15'000;
};

}  // namespace dvm

#endif  // SRC_RUNTIME_COUNTERS_H_
