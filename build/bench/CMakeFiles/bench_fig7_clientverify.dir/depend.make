# Empty dependencies file for bench_fig7_clientverify.
# This may be replaced when dependencies are built.
