#include "src/bytecode/serializer.h"

#include <cstdio>
#include <cstdlib>

namespace dvm {
namespace {

Error TooBig(const char* what, size_t actual, size_t limit) {
  return Error{ErrorCode::kParseError, std::string(what) + " count " + std::to_string(actual) +
                                           " exceeds limit " + std::to_string(limit)};
}

Status CheckStr(const std::string& s, const char* what) {
  if (s.size() > 0xFFFF) {
    return TooBig(what, s.size(), 0xFFFF);
  }
  return Status::Ok();
}

Status WriteAttributes(ByteWriter& w, const std::vector<Attribute>& attrs) {
  if (attrs.size() > kMaxAttrCount) {
    return TooBig("attribute", attrs.size(), kMaxAttrCount);
  }
  w.U16(static_cast<uint16_t>(attrs.size()));
  for (const auto& a : attrs) {
    DVM_RETURN_IF_ERROR(CheckStr(a.name, "attribute name length"));
    if (a.data.size() > kMaxAttrDataLen) {
      return TooBig("attribute data length", a.data.size(), kMaxAttrDataLen);
    }
    w.Str(a.name);
    w.U32(static_cast<uint32_t>(a.data.size()));
    w.Raw(a.data);
  }
  return Status::Ok();
}

Result<std::vector<Attribute>> ReadAttributes(ByteReader& r) {
  DVM_ASSIGN_OR_RETURN(uint16_t count, r.U16());
  std::vector<Attribute> attrs;
  attrs.reserve(count);
  for (uint16_t i = 0; i < count; i++) {
    Attribute a;
    DVM_ASSIGN_OR_RETURN(a.name, r.Str());
    DVM_ASSIGN_OR_RETURN(uint32_t len, r.U32());
    if (len > kMaxAttrDataLen) {
      return TooBig("attribute data length", len, kMaxAttrDataLen);
    }
    DVM_ASSIGN_OR_RETURN(a.data, r.Raw(len));
    attrs.push_back(std::move(a));
  }
  return attrs;
}

}  // namespace

Result<Bytes> WriteClassFile(const ClassFile& cls) {
  ByteWriter w;
  w.U32(ClassFile::kMagic);
  w.U16(ClassFile::kVersion);

  const ConstantPool& pool = cls.pool();
  // A pool past 65535 entries cannot be represented in the u16 count field;
  // with a u16 loop counter it previously spun forever instead of failing.
  if (pool.size() > kMaxPoolEntries) {
    return TooBig("constant pool", pool.size(), kMaxPoolEntries);
  }
  w.U16(static_cast<uint16_t>(pool.size()));
  for (size_t i = 1; i < pool.size(); i++) {
    const CpEntry& e = pool.entry(static_cast<uint16_t>(i));
    w.U8(static_cast<uint8_t>(e.tag));
    switch (e.tag) {
      case CpTag::kUtf8:
        DVM_RETURN_IF_ERROR(CheckStr(e.utf8, "utf8 constant length"));
        w.Str(e.utf8);
        break;
      case CpTag::kInteger:
        w.I32(e.int_value);
        break;
      case CpTag::kLong:
        w.I64(e.long_value);
        break;
      case CpTag::kClass:
      case CpTag::kString:
        w.U16(e.ref1);
        break;
      case CpTag::kFieldRef:
      case CpTag::kMethodRef:
        w.U16(e.ref1);
        w.U16(e.ref2);
        w.U16(e.ref3);
        break;
      case CpTag::kUnused:
        break;
    }
  }

  w.U16(cls.access_flags);
  w.U16(cls.this_class);
  w.U16(cls.super_class);
  if (cls.interfaces.size() > kMaxMemberCount) {
    return TooBig("interface", cls.interfaces.size(), kMaxMemberCount);
  }
  w.U16(static_cast<uint16_t>(cls.interfaces.size()));
  for (uint16_t iface : cls.interfaces) {
    w.U16(iface);
  }

  if (cls.fields.size() > kMaxMemberCount) {
    return TooBig("field", cls.fields.size(), kMaxMemberCount);
  }
  w.U16(static_cast<uint16_t>(cls.fields.size()));
  for (const auto& f : cls.fields) {
    DVM_RETURN_IF_ERROR(CheckStr(f.name, "field name length"));
    DVM_RETURN_IF_ERROR(CheckStr(f.descriptor, "field descriptor length"));
    w.U16(f.access_flags);
    w.Str(f.name);
    w.Str(f.descriptor);
    DVM_RETURN_IF_ERROR(WriteAttributes(w, f.attributes));
  }

  if (cls.methods.size() > kMaxMemberCount) {
    return TooBig("method", cls.methods.size(), kMaxMemberCount);
  }
  w.U16(static_cast<uint16_t>(cls.methods.size()));
  for (const auto& m : cls.methods) {
    DVM_RETURN_IF_ERROR(CheckStr(m.name, "method name length"));
    DVM_RETURN_IF_ERROR(CheckStr(m.descriptor, "method descriptor length"));
    w.U16(m.access_flags);
    w.Str(m.name);
    w.Str(m.descriptor);
    w.U8(m.code.has_value() ? 1 : 0);
    if (m.code.has_value()) {
      const CodeAttr& c = *m.code;
      if (c.code.size() > kMaxCodeLen) {
        return TooBig("code length", c.code.size(), kMaxCodeLen);
      }
      if (c.handlers.size() > kMaxHandlerCount) {
        return TooBig("exception handler", c.handlers.size(), kMaxHandlerCount);
      }
      w.U16(c.max_stack);
      w.U16(c.max_locals);
      w.U32(static_cast<uint32_t>(c.code.size()));
      w.Raw(c.code);
      w.U16(static_cast<uint16_t>(c.handlers.size()));
      for (const auto& h : c.handlers) {
        w.U16(h.start_pc);
        w.U16(h.end_pc);
        w.U16(h.handler_pc);
        w.U16(h.catch_type);
      }
    }
    DVM_RETURN_IF_ERROR(WriteAttributes(w, m.attributes));
  }

  DVM_RETURN_IF_ERROR(WriteAttributes(w, cls.attributes));
  return w.Take();
}

Bytes MustWriteClassFile(const ClassFile& cls) {
  Result<Bytes> wire = WriteClassFile(cls);
  if (!wire.ok()) {
    std::fprintf(stderr, "MustWriteClassFile(%s): %s\n", cls.name().c_str(),
                 wire.error().ToString().c_str());
    std::abort();
  }
  return std::move(wire).value();
}

Result<ClassFile> ReadClassFile(const Bytes& data) {
  ByteReader r(data);
  DVM_ASSIGN_OR_RETURN(uint32_t magic, r.U32());
  if (magic != ClassFile::kMagic) {
    return Error{ErrorCode::kParseError, "bad class file magic"};
  }
  DVM_ASSIGN_OR_RETURN(uint16_t version, r.U16());
  if (version != ClassFile::kVersion) {
    return Error{ErrorCode::kParseError, "unsupported class file version"};
  }

  ClassFile cls;
  DVM_ASSIGN_OR_RETURN(uint16_t cp_count, r.U16());
  for (uint16_t i = 1; i < cp_count; i++) {
    DVM_ASSIGN_OR_RETURN(uint8_t tag_raw, r.U8());
    CpEntry e;
    e.tag = static_cast<CpTag>(tag_raw);
    switch (e.tag) {
      case CpTag::kUtf8: {
        DVM_ASSIGN_OR_RETURN(e.utf8, r.Str());
        break;
      }
      case CpTag::kInteger: {
        DVM_ASSIGN_OR_RETURN(e.int_value, r.I32());
        break;
      }
      case CpTag::kLong: {
        DVM_ASSIGN_OR_RETURN(e.long_value, r.I64());
        break;
      }
      case CpTag::kClass:
      case CpTag::kString: {
        DVM_ASSIGN_OR_RETURN(e.ref1, r.U16());
        break;
      }
      case CpTag::kFieldRef:
      case CpTag::kMethodRef: {
        DVM_ASSIGN_OR_RETURN(e.ref1, r.U16());
        DVM_ASSIGN_OR_RETURN(e.ref2, r.U16());
        DVM_ASSIGN_OR_RETURN(e.ref3, r.U16());
        break;
      }
      default:
        return Error{ErrorCode::kParseError,
                     "unknown constant pool tag " + std::to_string(tag_raw)};
    }
    DVM_RETURN_IF_ERROR(cls.pool().AppendRaw(std::move(e)));
  }

  DVM_ASSIGN_OR_RETURN(cls.access_flags, r.U16());
  DVM_ASSIGN_OR_RETURN(cls.this_class, r.U16());
  DVM_ASSIGN_OR_RETURN(cls.super_class, r.U16());
  DVM_ASSIGN_OR_RETURN(uint16_t iface_count, r.U16());
  for (uint16_t i = 0; i < iface_count; i++) {
    DVM_ASSIGN_OR_RETURN(uint16_t iface, r.U16());
    cls.interfaces.push_back(iface);
  }

  DVM_ASSIGN_OR_RETURN(uint16_t field_count, r.U16());
  for (uint16_t i = 0; i < field_count; i++) {
    FieldInfo f;
    DVM_ASSIGN_OR_RETURN(f.access_flags, r.U16());
    DVM_ASSIGN_OR_RETURN(f.name, r.Str());
    DVM_ASSIGN_OR_RETURN(f.descriptor, r.Str());
    DVM_ASSIGN_OR_RETURN(f.attributes, ReadAttributes(r));
    cls.fields.push_back(std::move(f));
  }

  DVM_ASSIGN_OR_RETURN(uint16_t method_count, r.U16());
  for (uint16_t i = 0; i < method_count; i++) {
    MethodInfo m;
    DVM_ASSIGN_OR_RETURN(m.access_flags, r.U16());
    DVM_ASSIGN_OR_RETURN(m.name, r.Str());
    DVM_ASSIGN_OR_RETURN(m.descriptor, r.Str());
    DVM_ASSIGN_OR_RETURN(uint8_t has_code, r.U8());
    // Strict 0/1: any other value would parse but re-serialize differently,
    // breaking the Write(Read(b)) == b contract this format promises.
    if (has_code > 1) {
      return Error{ErrorCode::kParseError, "has_code flag must be 0 or 1"};
    }
    if (has_code != 0) {
      CodeAttr c;
      DVM_ASSIGN_OR_RETURN(c.max_stack, r.U16());
      DVM_ASSIGN_OR_RETURN(c.max_locals, r.U16());
      DVM_ASSIGN_OR_RETURN(uint32_t code_len, r.U32());
      // Explicit ceiling so a 4 GB claim fails identically on every stream
      // size; ByteReader::Raw additionally bounds it by the bytes remaining.
      if (code_len > kMaxCodeLen) {
        return TooBig("code length", code_len, kMaxCodeLen);
      }
      DVM_ASSIGN_OR_RETURN(c.code, r.Raw(code_len));
      DVM_ASSIGN_OR_RETURN(uint16_t handler_count, r.U16());
      for (uint16_t h = 0; h < handler_count; h++) {
        ExceptionHandler handler;
        DVM_ASSIGN_OR_RETURN(handler.start_pc, r.U16());
        DVM_ASSIGN_OR_RETURN(handler.end_pc, r.U16());
        DVM_ASSIGN_OR_RETURN(handler.handler_pc, r.U16());
        DVM_ASSIGN_OR_RETURN(handler.catch_type, r.U16());
        c.handlers.push_back(handler);
      }
      m.code = std::move(c);
    }
    DVM_ASSIGN_OR_RETURN(m.attributes, ReadAttributes(r));
    cls.methods.push_back(std::move(m));
  }

  DVM_ASSIGN_OR_RETURN(cls.attributes, ReadAttributes(r));
  if (!r.AtEnd()) {
    return Error{ErrorCode::kParseError, "trailing bytes after class file"};
  }
  return cls;
}

}  // namespace dvm
