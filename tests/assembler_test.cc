#include <gtest/gtest.h>

#include "src/bytecode/assembler.h"
#include "src/bytecode/builder.h"
#include "src/runtime/machine.h"
#include "src/runtime/syslib.h"
#include "src/verifier/verifier.h"
#include "src/workloads/apps.h"

namespace dvm {
namespace {

const char* kFibAsm = R"(
; iterative fibonacci
.class asm/Fib extends java/lang/Object flags public
.method fib (I)I flags public static
  iconst_0
  istore 1
  iconst_1
  istore 2
loop:
  iload 0
  ifle done
  iload 1
  iload 2
  iadd
  istore 3
  iload 2
  istore 1
  iload 3
  istore 2
  iinc 0 -1
  goto loop
done:
  iload 1
  ireturn
.end
)";

CallOutcome RunClass(const ClassFile& cls, const std::string& method,
                     const std::string& desc, std::vector<Value> args) {
  MapClassProvider provider;
  InstallSystemLibrary(provider);
  provider.AddClassFile(cls);
  Machine machine({}, &provider);
  auto out = machine.CallStatic(cls.name(), method, desc, std::move(args));
  EXPECT_TRUE(out.ok()) << (out.ok() ? "" : out.error().ToString());
  return out.ok() ? out.value() : CallOutcome{};
}

TEST(AssemblerTest, AssemblesAndRunsFibonacci) {
  auto cls = AssembleText(kFibAsm);
  ASSERT_TRUE(cls.ok()) << cls.error().ToString();
  EXPECT_EQ(cls->name(), "asm/Fib");
  CallOutcome out = RunClass(*cls, "fib", "(I)I", {Value::Int(10)});
  EXPECT_FALSE(out.threw);
  EXPECT_EQ(out.value.AsInt(), 55);
}

TEST(AssemblerTest, HandlesStringsFieldsAndInvokes) {
  auto cls = AssembleText(R"(
.class asm/Greeter extends java/lang/Object
.field greeting Ljava/lang/String; flags public static
.method main ()V flags public static
  ldc "hi \"there\"\n"
  putstatic asm/Greeter greeting Ljava/lang/String;
  getstatic asm/Greeter greeting Ljava/lang/String;
  invokestatic java/lang/System println (Ljava/lang/String;)V
  return
.end
)");
  ASSERT_TRUE(cls.ok()) << cls.error().ToString();
  MapClassProvider provider;
  InstallSystemLibrary(provider);
  provider.AddClassFile(*cls);
  Machine machine({}, &provider);
  auto out = machine.RunMain("asm/Greeter");
  ASSERT_TRUE(out.ok());
  EXPECT_FALSE(out->threw);
  ASSERT_EQ(machine.printed().size(), 1u);
  EXPECT_EQ(machine.printed()[0], "hi \"there\"\n");
}

TEST(AssemblerTest, HandlesExceptionHandlers) {
  auto cls = AssembleText(R"(
.class asm/Catcher extends java/lang/Object
.method f (I)I flags public static
try_start:
  bipush 100
  iload 0
  idiv
  ireturn
try_end:
handler:
  pop
  bipush -1
  ireturn
.handler try_start try_end handler java/lang/ArithmeticException
.end
)");
  ASSERT_TRUE(cls.ok()) << cls.error().ToString();
  EXPECT_EQ(RunClass(*cls, "f", "(I)I", {Value::Int(4)}).value.AsInt(), 25);
  EXPECT_EQ(RunClass(*cls, "f", "(I)I", {Value::Int(0)}).value.AsInt(), -1);
}

TEST(AssemblerTest, HandlesLongsArraysAndNatives) {
  auto cls = AssembleText(R"(
.class asm/Mixed extends java/lang/Object
.method now ()J flags public static native
.end
.method sum ()J flags public static
  bipush 3
  newarray long
  astore 0
  aload 0
  iconst_0
  ldc 5000000000L
  lastore
  aload 0
  iconst_0
  laload
  lreturn
.end
)");
  ASSERT_TRUE(cls.ok()) << cls.error().ToString();
  EXPECT_TRUE(cls->FindMethod("now", "()J")->IsNative());
  CallOutcome out = RunClass(*cls, "sum", "()J", {});
  EXPECT_EQ(out.value.AsLong(), 5'000'000'000LL);
}

TEST(AssemblerTest, RejectsMalformedInput) {
  EXPECT_FALSE(AssembleText("iload 0\n").ok());                       // before .class
  EXPECT_FALSE(AssembleText(".class a/B\n.method f ()V\n").ok());     // missing .end
  EXPECT_FALSE(AssembleText(".class a/B\n.method f ()V\n  frobnicate\n.end\n").ok());
  EXPECT_FALSE(AssembleText(".class a/B\n.method f ()V\n  goto nowhere\n  return\n.end\n")
                   .ok());                                            // unbound label
  EXPECT_FALSE(AssembleText(".class a/B\n.field x Q\n").ok());        // bad descriptor
  EXPECT_FALSE(AssembleText(".class a/B\n.method f ()V flags sparkly\n.end\n").ok());
  EXPECT_FALSE(AssembleText(".class a/B\n.method f ()V\n  ldc \"unterminated\n.end\n")
                   .ok());
  EXPECT_FALSE(AssembleText("").ok());                                // no class at all
}

TEST(AssemblerTest, TextRoundTripPreservesSemantics) {
  auto original = AssembleText(kFibAsm);
  ASSERT_TRUE(original.ok());
  std::string emitted = ToAssembly(*original);
  auto again = AssembleText(emitted);
  ASSERT_TRUE(again.ok()) << again.error().ToString() << "\n" << emitted;
  EXPECT_EQ(RunClass(*again, "fib", "(I)I", {Value::Int(10)}).value.AsInt(), 55);
  // Second emission is a fixed point.
  EXPECT_EQ(ToAssembly(*again), emitted);
}

TEST(AssemblerTest, RoundTripsGeneratedWorkloadClasses) {
  // The generated applications exercise every operand form; each class must
  // survive class -> text -> class and still verify.
  std::vector<ClassFile> library = BuildSystemLibrary();
  AppBundle app = BuildCassowaryApp(1);
  MapClassEnv env;
  for (const auto& cls : library) {
    env.Add(&cls);
  }
  for (const auto& cls : app.classes) {
    env.Add(&cls);
  }
  int round_tripped = 0;
  for (const auto& cls : app.classes) {
    std::string text = ToAssembly(cls);
    auto back = AssembleText(text);
    ASSERT_TRUE(back.ok()) << cls.name() << ": " << back.error().ToString();
    EXPECT_EQ(back->name(), cls.name());
    EXPECT_EQ(back->methods.size(), cls.methods.size());
    auto verified = VerifyClass(*back, env);
    EXPECT_TRUE(verified.ok()) << cls.name() << ": "
                               << (verified.ok() ? "" : verified.error().ToString());
    round_tripped++;
  }
  EXPECT_EQ(round_tripped, 34);
}

TEST(AssemblerTest, RoundTripsSystemLibrary) {
  for (const ClassFile& cls : BuildSystemLibrary()) {
    std::string text = ToAssembly(cls);
    auto back = AssembleText(text);
    ASSERT_TRUE(back.ok()) << cls.name() << ": " << back.error().ToString();
    EXPECT_EQ(back->name(), cls.name());
    EXPECT_EQ(back->fields.size(), cls.fields.size());
    EXPECT_EQ(back->methods.size(), cls.methods.size());
  }
}

}  // namespace
}  // namespace dvm
