// Structure-aware class-file mutator. Unlike a blind bit-flipper, it parses
// the seed when possible and perturbs the places where the format's safety
// arguments live: constant-pool cross-references, opcode/operand bytes,
// exception-handler ranges, declared stack/local budgets, and table counts.
// Unparseable seeds fall back to raw byte mutations (truncation, splices,
// flips) so the parser's own error paths stay exercised.
//
// Everything is driven by an explicit seeded PRNG — the same (seed, input)
// pair always yields the same mutant, which keeps fuzz runs and minimized
// crashers reproducible.
#ifndef FUZZ_MUTATOR_H_
#define FUZZ_MUTATOR_H_

#include <cstdint>

#include "src/support/bytes.h"

namespace dvm {
namespace fuzz {

// splitmix64: tiny, seedable, and good enough for mutation scheduling.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  // Uniform-ish in [0, bound); bound must be > 0.
  uint32_t Below(uint32_t bound) { return static_cast<uint32_t>(Next() % bound); }
  bool Coin() { return (Next() & 1) != 0; }

 private:
  uint64_t state_;
};

// Produces one mutant of `data`. Structure-aware when `data` parses as a
// class file; raw byte-level otherwise. Never returns an empty vector.
Bytes MutateClassBytes(const Bytes& data, Rng& rng);

// Produces one mutant of a serialized verification certificate
// (verifier/certificate.h). Structure-aware when the input parses: it tampers
// with the places the proof's soundness lives — assertion indices, frame slot
// types (including sound-looking widenings that only the validator's
// exactness check can catch), dropped/duplicated assertions, and the
// assumption list — and falls back to raw byte mutations otherwise. May
// return bytes equal to the input when the drawn mutation is a no-op; callers
// wanting guaranteed-different mutants should compare and redraw.
Bytes MutateCertificateBytes(const Bytes& cert, Rng& rng);

// Seed inputs available without any corpus on disk: the serialized system
// library plus a small builder-assembled application class. Used by the
// standalone driver when no corpus directory is supplied and by `dvm_fuzz gen`.
std::vector<Bytes> BuiltinSeeds();

}  // namespace fuzz
}  // namespace dvm

#endif  // FUZZ_MUTATOR_H_
