#include <gtest/gtest.h>

#include "src/bytecode/builder.h"
#include "src/bytecode/serializer.h"
#include "src/optimizer/repartition.h"
#include "src/runtime/machine.h"
#include "src/runtime/syslib.h"
#include "src/verifier/verifier.h"

namespace dvm {
namespace {

ClassFile MustBuild(ClassBuilder& cb) {
  auto built = cb.Build();
  EXPECT_TRUE(built.ok()) << (built.ok() ? "" : built.error().ToString());
  return std::move(built).value();
}

// A class with one hot method, one cold static method and one cold instance
// method that touches a field.
ClassFile BuildSplittable() {
  ClassBuilder cb("opt/Widget", "java/lang/Object");
  cb.AddField(AccessFlags::kPublic, "value", "I");
  cb.AddDefaultConstructor();

  MethodBuilder& hot = cb.AddMethod(AccessFlags::kStatic | AccessFlags::kPublic, "hot",
                                    "(I)I");
  hot.LoadLocal("I", 0).PushInt(1).Emit(Op::kIadd).Emit(Op::kIreturn);

  MethodBuilder& cold = cb.AddMethod(AccessFlags::kStatic | AccessFlags::kPublic,
                                     "coldStatic", "(I)I");
  cold.LoadLocal("I", 0).PushInt(100).Emit(Op::kImul).Emit(Op::kIreturn);

  MethodBuilder& inst = cb.AddMethod(AccessFlags::kPublic, "coldBump", "(I)I");
  inst.Emit(Op::kAload, 0).Emit(Op::kDup).GetField("opt/Widget", "value", "I");
  inst.Emit(Op::kIload, 1).Emit(Op::kIadd).PutField("opt/Widget", "value", "I");
  inst.Emit(Op::kAload, 0).GetField("opt/Widget", "value", "I").Emit(Op::kIreturn);
  return MustBuild(cb);
}

// Driver that exercises all three methods through the original names.
ClassFile BuildDriver() {
  ClassBuilder cb("opt/Driver", "java/lang/Object");
  MethodBuilder& m = cb.AddMethod(AccessFlags::kStatic | AccessFlags::kPublic, "go", "(I)I");
  m.LoadLocal("I", 0).InvokeStatic("opt/Widget", "hot", "(I)I").StoreLocal("I", 1);
  m.LoadLocal("I", 1).InvokeStatic("opt/Widget", "coldStatic", "(I)I").StoreLocal("I", 1);
  m.New("opt/Widget").Emit(Op::kDup).InvokeSpecial("opt/Widget", "<init>", "()V");
  m.StoreLocal("Lopt/Widget;", 2);
  m.LoadLocal("Lopt/Widget;", 2).LoadLocal("I", 1).InvokeVirtual("opt/Widget", "coldBump",
                                                                 "(I)I");
  m.Emit(Op::kIreturn);
  return MustBuild(cb);
}

struct SplitResult {
  ClassFile hot;
  std::vector<ClassFile> extra;
  RepartitionStats stats;
};

SplitResult Split(const TransferProfile& profile) {
  RepartitionFilter filter(&profile);
  ClassFile cls = BuildSplittable();
  MapClassEnv env;
  FilterContext ctx;
  ctx.env = &env;
  auto outcome = filter.Apply(cls, ctx);
  EXPECT_TRUE(outcome.ok()) << (outcome.ok() ? "" : outcome.error().ToString());
  SplitResult result{std::move(cls), {}, filter.stats()};
  if (outcome.ok()) {
    for (auto& extra : outcome->extra_classes) {
      result.extra.push_back(std::move(extra));
    }
  }
  return result;
}

TEST(RepartitionTest, SplitsColdMethodsIntoCompanionClass) {
  TransferProfile profile;
  profile.MarkUsed("opt/Widget", "hot");
  SplitResult result = Split(profile);

  EXPECT_EQ(result.stats.classes_split, 1u);
  EXPECT_EQ(result.stats.methods_moved, 2u);
  ASSERT_EQ(result.extra.size(), 1u);
  EXPECT_EQ(result.extra[0].name(), "opt/Widget$cold");
  // Cold class holds static implementations; instance method gained a receiver.
  EXPECT_NE(result.extra[0].FindMethod("coldStatic", "(I)I"), nullptr);
  EXPECT_NE(result.extra[0].FindMethod("coldBump", "(Lopt/Widget;I)I"), nullptr);
  // Hot class keeps stubs under the original signatures.
  EXPECT_NE(result.hot.FindMethod("coldStatic", "(I)I"), nullptr);
  EXPECT_NE(result.hot.FindMethod("coldBump", "(I)I"), nullptr);
  // Hot class shrank.
  EXPECT_LT(result.stats.hot_bytes, result.stats.hot_bytes + result.stats.cold_bytes);
}

TEST(RepartitionTest, NoProfileMeansNoSplit) {
  TransferProfile profile;  // knows nothing about opt/Widget
  SplitResult result = Split(profile);
  EXPECT_EQ(result.stats.classes_split, 0u);
  EXPECT_TRUE(result.extra.empty());
}

TEST(RepartitionTest, SplitClassesExecuteCorrectly) {
  TransferProfile profile;
  profile.MarkUsed("opt/Widget", "hot");
  SplitResult result = Split(profile);
  ASSERT_EQ(result.extra.size(), 1u);

  MapClassProvider provider;
  InstallSystemLibrary(provider);
  provider.AddClassFile(result.hot);
  provider.AddClassFile(result.extra[0]);
  provider.AddClassFile(BuildDriver());

  Machine machine({}, &provider);
  auto out = machine.CallStatic("opt/Driver", "go", "(I)I", {Value::Int(4)});
  ASSERT_TRUE(out.ok()) << out.error().ToString();
  ASSERT_FALSE(out->threw) << out->exception_class << ": " << out->exception_message;
  // hot(4)=5; coldStatic(5)=500; coldBump(500)=500.
  EXPECT_EQ(out->value.AsInt(), 500);
  // The cold class was actually faulted in.
  EXPECT_NE(machine.registry().FindLoaded("opt/Widget$cold"), nullptr);
}

TEST(RepartitionTest, ColdClassLoadsLazily) {
  TransferProfile profile;
  profile.MarkUsed("opt/Widget", "hot");
  SplitResult result = Split(profile);

  MapClassProvider provider;
  InstallSystemLibrary(provider);
  provider.AddClassFile(result.hot);
  provider.AddClassFile(result.extra[0]);

  ClassBuilder cb("opt/HotOnly", "java/lang/Object");
  MethodBuilder& m = cb.AddMethod(AccessFlags::kStatic | AccessFlags::kPublic, "go", "(I)I");
  m.LoadLocal("I", 0).InvokeStatic("opt/Widget", "hot", "(I)I").Emit(Op::kIreturn);
  provider.AddClassFile(MustBuild(cb));

  Machine machine({}, &provider);
  auto out = machine.CallStatic("opt/HotOnly", "go", "(I)I", {Value::Int(1)});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->value.AsInt(), 2);
  // Only the hot path ran: the cold class must not have been fetched.
  EXPECT_EQ(machine.registry().FindLoaded("opt/Widget$cold"), nullptr);
}

TEST(RepartitionTest, BothHalvesVerify) {
  TransferProfile profile;
  profile.MarkUsed("opt/Widget", "hot");
  SplitResult result = Split(profile);
  ASSERT_EQ(result.extra.size(), 1u);

  ClassBuilder obj_cb("java/lang/Object", "");
  obj_cb.AddDefaultConstructor();
  ClassFile object = obj_cb.Build().value();
  MapClassEnv env;
  env.Add(&object);
  env.Add(&result.hot);
  env.Add(&result.extra[0]);

  auto hot_ok = VerifyClass(result.hot, env);
  EXPECT_TRUE(hot_ok.ok()) << (hot_ok.ok() ? "" : hot_ok.error().ToString());
  auto cold_ok = VerifyClass(result.extra[0], env);
  EXPECT_TRUE(cold_ok.ok()) << (cold_ok.ok() ? "" : cold_ok.error().ToString());
}

TEST(RepartitionTest, TranspileRemapsConstants) {
  ClassBuilder cb("opt/Src", "java/lang/Object");
  MethodBuilder& m = cb.AddMethod(AccessFlags::kStatic | AccessFlags::kPublic, "f",
                                  "()Ljava/lang/String;");
  m.PushString("payload").Emit(Op::kAreturn);
  ClassFile src = MustBuild(cb);

  ConstantPool target;
  auto remapped = TranspileCode(src.FindMethod("f", "()Ljava/lang/String;")->code->code,
                                src.pool(), target);
  ASSERT_TRUE(remapped.ok()) << remapped.error().ToString();
  auto decoded = DecodeCode(remapped.value());
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ((*decoded)[0].op, Op::kLdc);
  auto str = target.StringAt(static_cast<uint16_t>((*decoded)[0].a));
  ASSERT_TRUE(str.ok());
  EXPECT_EQ(str.value(), "payload");
}

TEST(RepartitionTest, ProfileFromTagsParses) {
  TransferProfile profile(std::vector<std::string>{"a/B.main", "a/B.helper", "c/D.run"});
  EXPECT_TRUE(profile.IsUsed("a/B", "main"));
  EXPECT_TRUE(profile.IsUsed("c/D", "run"));
  EXPECT_FALSE(profile.IsUsed("a/B", "other"));
  EXPECT_TRUE(profile.HasDataFor("a/B"));
  EXPECT_FALSE(profile.HasDataFor("x/Y"));
}

}  // namespace
}  // namespace dvm
