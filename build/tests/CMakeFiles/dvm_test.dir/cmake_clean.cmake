file(REMOVE_RECURSE
  "CMakeFiles/dvm_test.dir/dvm_test.cc.o"
  "CMakeFiles/dvm_test.dir/dvm_test.cc.o.d"
  "dvm_test"
  "dvm_test.pdb"
  "dvm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
