// JDK 1.2-style stack-introspection access control — the monolithic baseline
// that Figure 9 compares the DVM security service against.
//
// Every loaded class carries a security domain (RuntimeClass::security_domain;
// empty = trusted system code). A checked operation walks the entire guest call
// stack and requires every frame's domain to hold the permission, mirroring
// [Gong & Schemers 98]. The walk itself is cheap; the expensive parts in the
// JDK (permission object construction, file path canonicalization) are charged
// by the call sites in natives.cc with constants calibrated to Figure 9.
#ifndef SRC_RUNTIME_STACK_SECURITY_H_
#define SRC_RUNTIME_STACK_SECURITY_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>

namespace dvm {

class Machine;

class StackIntrospectionSecurity {
 public:
  // Grants `permission` (glob pattern allowed, e.g. "file.*") to a domain.
  void Grant(const std::string& domain, const std::string& permission);
  // Marks a domain fully trusted.
  void GrantAll(const std::string& domain);

  // Walks the machine's guest call stack. Returns true when every frame's
  // domain holds the permission. Charges per-frame walk time; callers add the
  // operation-specific overhead themselves.
  bool Check(Machine& machine, const std::string& permission);

  uint64_t checks_performed() const { return checks_; }

 private:
  bool DomainHolds(const std::string& domain, const std::string& permission) const;

  std::map<std::string, std::set<std::string>> grants_;
  std::set<std::string> all_granted_;
  uint64_t checks_ = 0;
};

}  // namespace dvm

#endif  // SRC_RUNTIME_STACK_SECURITY_H_
