file(REMOVE_RECURSE
  "CMakeFiles/dvm_bytecode.dir/assembler.cc.o"
  "CMakeFiles/dvm_bytecode.dir/assembler.cc.o.d"
  "CMakeFiles/dvm_bytecode.dir/builder.cc.o"
  "CMakeFiles/dvm_bytecode.dir/builder.cc.o.d"
  "CMakeFiles/dvm_bytecode.dir/classfile.cc.o"
  "CMakeFiles/dvm_bytecode.dir/classfile.cc.o.d"
  "CMakeFiles/dvm_bytecode.dir/code.cc.o"
  "CMakeFiles/dvm_bytecode.dir/code.cc.o.d"
  "CMakeFiles/dvm_bytecode.dir/constant_pool.cc.o"
  "CMakeFiles/dvm_bytecode.dir/constant_pool.cc.o.d"
  "CMakeFiles/dvm_bytecode.dir/descriptor.cc.o"
  "CMakeFiles/dvm_bytecode.dir/descriptor.cc.o.d"
  "CMakeFiles/dvm_bytecode.dir/disasm.cc.o"
  "CMakeFiles/dvm_bytecode.dir/disasm.cc.o.d"
  "CMakeFiles/dvm_bytecode.dir/opcodes.cc.o"
  "CMakeFiles/dvm_bytecode.dir/opcodes.cc.o.d"
  "CMakeFiles/dvm_bytecode.dir/serializer.cc.o"
  "CMakeFiles/dvm_bytecode.dir/serializer.cc.o.d"
  "CMakeFiles/dvm_bytecode.dir/stack_effect.cc.o"
  "CMakeFiles/dvm_bytecode.dir/stack_effect.cc.o.d"
  "libdvm_bytecode.a"
  "libdvm_bytecode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvm_bytecode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
