#include "src/verifier/dataflow.h"

#include <set>

namespace dvm {
namespace {

constexpr const char* kObject = "java/lang/Object";
constexpr const char* kThrowable = "java/lang/Throwable";

Error Verr(const std::string& message) { return Error{ErrorCode::kVerifyError, message}; }

}  // namespace

// ---------------------------------------------------------------------------
// Phase 2: instruction integrity.
// ---------------------------------------------------------------------------

Result<MethodCode> Phase2(const ClassFile& cls, const MethodInfo& method, VerifyStats* stats) {
  const CodeAttr& code = *method.code;
  auto check = [&stats] { stats->phase2_checks++; };

  check();
  if (code.code.empty()) {
    return Verr("empty code in " + method.Id());
  }

  // The dataflow entry frame writes one local slot per receiver + parameter;
  // a hostile max_locals smaller than that would make those writes land out
  // of bounds, so it is rejected here before any frame is materialized.
  check();
  auto sig = ParseMethodDescriptor(method.descriptor);
  if (!sig.ok()) {
    return Verr("method " + method.Id() + " has malformed descriptor");
  }
  size_t entry_slots = (method.IsStatic() ? 0 : 1) + sig->params.size();
  if (entry_slots > code.max_locals) {
    return Verr("max_locals " + std::to_string(code.max_locals) + " cannot hold " +
                std::to_string(entry_slots) + " parameter slots in " + method.Id());
  }

  // DecodeCode performs opcode validity, truncation and branch-boundary checks.
  check();
  DVM_ASSIGN_OR_RETURN(std::vector<Instr> instrs, DecodeCode(code.code));
  stats->instructions_verified += instrs.size();

  MethodCode mc;
  mc.offsets = CodeByteOffsets(instrs);
  for (size_t i = 0; i < instrs.size(); i++) {
    mc.off_to_ix[mc.offsets[i]] = static_cast<uint32_t>(i);
  }

  const ConstantPool& pool = cls.pool();
  for (size_t i = 0; i < instrs.size(); i++) {
    const Instr& instr = instrs[i];
    const OpInfo* info = GetOpInfo(instr.op);
    switch (info->operands) {
      case OperandKind::kU8:
      case OperandKind::kLocalIncr:
        check();
        if (instr.a >= code.max_locals) {
          return Verr("local index " + std::to_string(instr.a) + " out of bounds in " +
                      method.Id());
        }
        break;
      case OperandKind::kArrayKind:
        check();
        if (instr.a != static_cast<int>(ArrayKind::kInt) &&
            instr.a != static_cast<int>(ArrayKind::kLong)) {
          return Verr("bad newarray kind in " + method.Id());
        }
        break;
      case OperandKind::kCpIndex: {
        check();
        uint16_t index = static_cast<uint16_t>(instr.a);
        bool ok = false;
        if (instr.op == Op::kLdc) {
          ok = pool.HasTag(index, CpTag::kInteger) || pool.HasTag(index, CpTag::kLong) ||
               pool.HasTag(index, CpTag::kString);
        } else if (IsInvoke(instr.op)) {
          ok = pool.HasTag(index, CpTag::kMethodRef);
        } else if (IsFieldAccess(instr.op)) {
          ok = pool.HasTag(index, CpTag::kFieldRef);
        } else {  // new / anewarray / checkcast / instanceof
          ok = pool.HasTag(index, CpTag::kClass);
        }
        if (!ok) {
          return Verr(std::string(info->name) + " references wrong constant pool tag in " +
                      method.Id());
        }
        break;
      }
      default:
        break;
    }
    // Control may not fall off the end of the method.
    check();
    if (i + 1 == instrs.size() && !IsTerminator(instr.op)) {
      return Verr("control falls off the end of " + method.Id());
    }
  }

  for (const auto& h : code.handlers) {
    check();
    if (!mc.off_to_ix.count(h.start_pc) || !mc.off_to_ix.count(h.handler_pc) ||
        (h.end_pc != mc.offsets.back() && !mc.off_to_ix.count(h.end_pc)) ||
        h.start_pc >= h.end_pc) {
      return Verr("exception handler has invalid code range in " + method.Id());
    }
    check();
    if (h.catch_type != 0 && !pool.HasTag(h.catch_type, CpTag::kClass)) {
      return Verr("exception handler catch type is not a ClassRef in " + method.Id());
    }
  }

  mc.instrs = std::move(instrs);
  return mc;
}

Status CheckSuperclass(const ClassFile& cls, const ClassEnv& env, uint64_t* checks,
                       std::vector<Assumption>* assumptions) {
  std::string super = cls.super_name();
  if (super.empty()) {
    return Status::Ok();
  }
  (*checks)++;
  const ClassFile* super_cls = env.Lookup(super);
  if (super_cls == nullptr) {
    Assumption a;
    a.kind = AssumptionKind::kClassExists;
    a.scope = AssumptionScope::kClass;
    a.target_class = super;
    assumptions->push_back(std::move(a));
  } else if ((super_cls->access_flags & AccessFlags::kFinal) != 0) {
    return Error{ErrorCode::kVerifyError, cls.name() + " extends final class " + super};
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Phase 3: the abstract transfer function.
// ---------------------------------------------------------------------------

AbstractInterpreter::AbstractInterpreter(const ClassFile& cls, const MethodInfo& method,
                                         const MethodCode& mc, const ClassEnv& env,
                                         uint64_t* checks, std::vector<Assumption>* assumptions)
    : cls_(cls), method_(method), mc_(mc), env_(env), checks_(checks),
      assumptions_(assumptions),
      // Phase 2 already rejected malformed descriptors.
      sig_(ParseMethodDescriptor(method.descriptor).value()) {}

void AbstractInterpreter::Assume(Assumption a) {
  a.method_id = method_.Id();
  assumptions_->push_back(std::move(a));
}

void AbstractInterpreter::AssumeClass(const std::string& class_name) {
  Assumption a;
  a.kind = AssumptionKind::kClassExists;
  a.scope = AssumptionScope::kMethod;
  a.target_class = class_name;
  Assume(std::move(a));
}

Error AbstractInterpreter::Fail(size_t index, const std::string& message) const {
  return Verr(cls_.name() + "." + method_.Id() + " @" + std::to_string(index) + ": " + message);
}

Result<VType> AbstractInterpreter::Pop(Frame& frame, size_t index) {
  Check();
  if (frame.stack.empty()) {
    return Fail(index, "operand stack underflow");
  }
  VType t = frame.stack.back();
  frame.stack.pop_back();
  return t;
}

Status AbstractInterpreter::PopKind(Frame& frame, size_t index, VType::Kind kind,
                                    const char* what) {
  DVM_ASSIGN_OR_RETURN(VType t, Pop(frame, index));
  Check();
  if (t.kind != kind) {
    return Fail(index, std::string("expected ") + what + ", found " + t.ToString());
  }
  return Status::Ok();
}

Status AbstractInterpreter::PopRefLike(Frame& frame, size_t index, VType* out) {
  DVM_ASSIGN_OR_RETURN(VType t, Pop(frame, index));
  Check();
  if (!t.IsRefLike()) {
    return Fail(index, "expected reference, found " + t.ToString());
  }
  *out = std::move(t);
  return Status::Ok();
}

Status AbstractInterpreter::PopAssignable(Frame& frame, size_t index, const std::string& desc) {
  DVM_ASSIGN_OR_RETURN(VType t, Pop(frame, index));
  Check();
  VType want = VType::FromDescriptor(desc);
  switch (want.kind) {
    case VType::Kind::kInt:
    case VType::Kind::kLong:
      if (t.kind != want.kind) {
        return Fail(index, "expected " + want.ToString() + ", found " + t.ToString());
      }
      return Status::Ok();
    case VType::Kind::kRef: {
      if (!t.IsRefLike()) {
        return Fail(index, "expected reference " + want.name + ", found " + t.ToString());
      }
      switch (IsAssignable(t, want.name, env_)) {
        case Assignability::kYes:
          return Status::Ok();
        case Assignability::kNo:
          return Fail(index, t.ToString() + " is not assignable to " + want.name);
        case Assignability::kUnknown: {
          Assumption a;
          a.kind = AssumptionKind::kAssignable;
          a.scope = AssumptionScope::kMethod;
          a.target_class = t.name;
          a.expected_class = want.name;
          Assume(std::move(a));
          return Status::Ok();
        }
      }
      return Status::Ok();
    }
    default:
      return Fail(index, "unusable expected type " + desc);
  }
}

Status AbstractInterpreter::Push(Frame& frame, size_t index, VType t) {
  Check();
  if (frame.stack.size() >= method_.code->max_stack) {
    return Fail(index, "operand stack overflow (max_stack=" +
                           std::to_string(method_.code->max_stack) + ")");
  }
  frame.stack.push_back(std::move(t));
  return Status::Ok();
}

Result<VType> AbstractInterpreter::GetLocal(const Frame& frame, size_t index, int slot,
                                            VType::Kind want, const char* what) {
  Check();
  const VType& t = frame.locals[static_cast<size_t>(slot)];
  if (t.kind != want) {
    return Fail(index, std::string("local ") + std::to_string(slot) + " is not " + what +
                           " (found " + t.ToString() + ")");
  }
  return t;
}

Status AbstractInterpreter::ResolveField(size_t index, const MemberRef& ref, bool want_static) {
  Check();
  const ClassFile* target = env_.Lookup(ref.class_name);
  if (target == nullptr) {
    Assumption a;
    a.kind = AssumptionKind::kFieldExists;
    a.scope = AssumptionScope::kMethod;
    a.target_class = ref.class_name;
    a.member_name = ref.member_name;
    a.descriptor = ref.descriptor;
    Assume(std::move(a));
    return Status::Ok();
  }
  // Search the class and its known ancestors. The visited set cuts hierarchy
  // cycles a hostile class can smuggle in (A extends B extends A).
  std::set<std::string> visited;
  visited.insert(ref.class_name);
  const ClassFile* current = target;
  while (current != nullptr) {
    const FieldInfo* field = current->FindField(ref.member_name);
    if (field != nullptr) {
      Check();
      if (field->descriptor != ref.descriptor) {
        return Fail(index, "field " + ref.ToString() + " has descriptor " + field->descriptor);
      }
      Check();
      if (field->IsStatic() != want_static) {
        return Fail(index, "field " + ref.ToString() +
                               (want_static ? " is not static" : " is static"));
      }
      return Status::Ok();
    }
    std::string super = current->super_name();
    if (super.empty() || !visited.insert(super).second) {
      return Fail(index, "field " + ref.ToString() + " does not exist");
    }
    current = env_.Lookup(super);
    if (current == nullptr) {
      // Field may be inherited from a class outside the environment.
      Assumption a;
      a.kind = AssumptionKind::kFieldExists;
      a.scope = AssumptionScope::kMethod;
      a.target_class = super;
      a.member_name = ref.member_name;
      a.descriptor = ref.descriptor;
      Assume(std::move(a));
      return Status::Ok();
    }
  }
  return Status::Ok();
}

Status AbstractInterpreter::ResolveMethod(size_t index, const MemberRef& ref, Op op) {
  Check();
  const ClassFile* target = env_.Lookup(ref.class_name);
  if (target == nullptr) {
    Assumption a;
    a.kind = AssumptionKind::kMethodExists;
    a.scope = AssumptionScope::kMethod;
    a.target_class = ref.class_name;
    a.member_name = ref.member_name;
    a.descriptor = ref.descriptor;
    Assume(std::move(a));
    return Status::Ok();
  }
  std::set<std::string> visited;
  visited.insert(ref.class_name);
  const ClassFile* current = target;
  while (current != nullptr) {
    const MethodInfo* m = current->FindMethod(ref.member_name, ref.descriptor);
    if (m != nullptr) {
      Check();
      bool want_static = op == Op::kInvokestatic;
      if (m->IsStatic() != want_static) {
        return Fail(index, "method " + ref.ToString() +
                               (want_static ? " is not static" : " is static"));
      }
      return Status::Ok();
    }
    std::string super = current->super_name();
    if (super.empty() || !visited.insert(super).second) {
      return Fail(index, "method " + ref.ToString() + " does not exist");
    }
    current = env_.Lookup(super);
    if (current == nullptr) {
      Assumption a;
      a.kind = AssumptionKind::kMethodExists;
      a.scope = AssumptionScope::kMethod;
      a.target_class = super;
      a.member_name = ref.member_name;
      a.descriptor = ref.descriptor;
      Assume(std::move(a));
      return Status::Ok();
    }
  }
  return Status::Ok();
}

Frame AbstractInterpreter::EntryFrame() const {
  Frame frame;
  frame.locals.assign(method_.code->max_locals, VType::Top());
  size_t slot = 0;
  if (!method_.IsStatic()) {
    frame.locals[slot++] = VType::Ref(cls_.name());
  }
  for (const auto& param : sig_.params) {
    frame.locals[slot++] = VType::FromDescriptor(param);
  }
  return frame;
}

Result<std::vector<AbstractInterpreter::HandlerEdge>> AbstractInterpreter::HandlerEdges(
    size_t index, const Frame& frame) {
  std::vector<HandlerEdge> edges;
  uint32_t offset = mc_.offsets[index];
  for (const auto& h : method_.code->handlers) {
    if (offset < h.start_pc || offset >= h.end_pc) {
      continue;
    }
    // The thrown reference needs a stack slot; a handler in a max_stack=0
    // method used to sneak past the Push() overflow check because the entry
    // frame was built with a raw push_back.
    Check();
    if (method_.code->max_stack < 1) {
      return Fail(index, "exception handler needs stack room for the thrown reference "
                         "(max_stack=0)");
    }
    std::string catch_class = kThrowable;
    if (h.catch_type != 0) {
      auto name = cls_.pool().ClassNameAt(h.catch_type);
      if (name.ok()) {
        catch_class = name.value();
      }
    }
    // A catch type that provably isn't a Throwable can never be thrown; the
    // handler entry state it would imply is a fiction.
    Check();
    if (catch_class != kThrowable) {
      switch (IsAssignable(VType::Ref(catch_class), kThrowable, env_)) {
        case Assignability::kYes:
          break;
        case Assignability::kNo:
          return Fail(index, "handler catches non-throwable " + catch_class);
        case Assignability::kUnknown: {
          Assumption a;
          a.kind = AssumptionKind::kAssignable;
          a.scope = AssumptionScope::kMethod;
          a.target_class = catch_class;
          a.expected_class = kThrowable;
          Assume(std::move(a));
          break;
        }
      }
    }
    HandlerEdge edge;
    edge.target = mc_.off_to_ix.at(h.handler_pc);
    edge.frame.locals = frame.locals;
    edge.frame.stack.push_back(VType::Ref(catch_class));
    edges.push_back(std::move(edge));
  }
  return edges;
}

Result<AbstractInterpreter::StepResult> AbstractInterpreter::Step(size_t index, Frame frame) {
  const Instr& instr = mc_.instrs[index];
  const ConstantPool& pool = cls_.pool();

  StepResult out;
  out.fallthrough = !IsTerminator(instr.op);
  if (IsBranch(instr.op)) {
    out.branch_target = static_cast<size_t>(instr.a);
  }

  switch (instr.op) {
    case Op::kNop:
      break;
    case Op::kAconstNull:
      DVM_RETURN_IF_ERROR(Push(frame, index, VType::Null()));
      break;
    case Op::kIconst0:
    case Op::kIconst1:
    case Op::kBipush:
    case Op::kSipush:
      DVM_RETURN_IF_ERROR(Push(frame, index, VType::Int()));
      break;
    case Op::kLdc: {
      uint16_t cp_index = static_cast<uint16_t>(instr.a);
      if (pool.HasTag(cp_index, CpTag::kInteger)) {
        DVM_RETURN_IF_ERROR(Push(frame, index, VType::Int()));
      } else if (pool.HasTag(cp_index, CpTag::kLong)) {
        DVM_RETURN_IF_ERROR(Push(frame, index, VType::Long()));
      } else {
        DVM_RETURN_IF_ERROR(Push(frame, index, VType::Ref("java/lang/String")));
      }
      break;
    }
    case Op::kIload: {
      DVM_ASSIGN_OR_RETURN(VType t, GetLocal(frame, index, instr.a, VType::Kind::kInt, "int"));
      DVM_RETURN_IF_ERROR(Push(frame, index, t));
      break;
    }
    case Op::kLload: {
      DVM_ASSIGN_OR_RETURN(VType t, GetLocal(frame, index, instr.a, VType::Kind::kLong, "long"));
      DVM_RETURN_IF_ERROR(Push(frame, index, t));
      break;
    }
    case Op::kAload: {
      Check();
      const VType& t = frame.locals[static_cast<size_t>(instr.a)];
      if (!t.IsRefLike() && t.kind != VType::Kind::kUninit) {
        return Fail(index, "aload of non-reference local " + std::to_string(instr.a));
      }
      DVM_RETURN_IF_ERROR(Push(frame, index, t));
      break;
    }
    case Op::kIstore:
      DVM_RETURN_IF_ERROR(PopKind(frame, index, VType::Kind::kInt, "int"));
      frame.locals[static_cast<size_t>(instr.a)] = VType::Int();
      break;
    case Op::kLstore:
      DVM_RETURN_IF_ERROR(PopKind(frame, index, VType::Kind::kLong, "long"));
      frame.locals[static_cast<size_t>(instr.a)] = VType::Long();
      break;
    case Op::kAstore: {
      DVM_ASSIGN_OR_RETURN(VType t, Pop(frame, index));
      Check();
      if (!t.IsRefLike() && t.kind != VType::Kind::kUninit) {
        return Fail(index, "astore of non-reference " + t.ToString());
      }
      frame.locals[static_cast<size_t>(instr.a)] = t;
      break;
    }
    case Op::kIaload:
    case Op::kLaload: {
      DVM_RETURN_IF_ERROR(PopKind(frame, index, VType::Kind::kInt, "int index"));
      VType arr;
      DVM_RETURN_IF_ERROR(PopRefLike(frame, index, &arr));
      const char* want = instr.op == Op::kIaload ? "[I" : "[J";
      Check();
      if (arr.kind == VType::Kind::kRef && arr.name != want) {
        return Fail(index, "array load type mismatch: " + arr.ToString());
      }
      DVM_RETURN_IF_ERROR(
          Push(frame, index, instr.op == Op::kIaload ? VType::Int() : VType::Long()));
      break;
    }
    case Op::kAaload: {
      DVM_RETURN_IF_ERROR(PopKind(frame, index, VType::Kind::kInt, "int index"));
      VType arr;
      DVM_RETURN_IF_ERROR(PopRefLike(frame, index, &arr));
      Check();
      VType element = VType::Ref(kObject);
      if (arr.kind == VType::Kind::kRef) {
        if (!arr.IsArray() || arr.name.size() < 2 ||
            (arr.name[1] != 'L' && arr.name[1] != '[')) {
          return Fail(index, "aaload on non-reference array " + arr.ToString());
        }
        element = VType::FromDescriptor(ArrayElementDescriptor(arr.name));
      }
      DVM_RETURN_IF_ERROR(Push(frame, index, element));
      break;
    }
    case Op::kIastore:
    case Op::kLastore: {
      DVM_RETURN_IF_ERROR(PopKind(frame, index,
                                  instr.op == Op::kIastore ? VType::Kind::kInt
                                                           : VType::Kind::kLong,
                                  "array element value"));
      DVM_RETURN_IF_ERROR(PopKind(frame, index, VType::Kind::kInt, "int index"));
      VType arr;
      DVM_RETURN_IF_ERROR(PopRefLike(frame, index, &arr));
      const char* want = instr.op == Op::kIastore ? "[I" : "[J";
      Check();
      if (arr.kind == VType::Kind::kRef && arr.name != want) {
        return Fail(index, "array store type mismatch: " + arr.ToString());
      }
      break;
    }
    case Op::kAastore: {
      VType value;
      DVM_RETURN_IF_ERROR(PopRefLike(frame, index, &value));
      DVM_RETURN_IF_ERROR(PopKind(frame, index, VType::Kind::kInt, "int index"));
      VType arr;
      DVM_RETURN_IF_ERROR(PopRefLike(frame, index, &arr));
      Check();
      if (arr.kind == VType::Kind::kRef) {
        if (!arr.IsArray()) {
          return Fail(index, "aastore on non-array " + arr.ToString());
        }
        std::string elem_desc = ArrayElementDescriptor(arr.name);
        if (elem_desc[0] == 'L') {
          switch (IsAssignable(value, ClassNameFromDescriptor(elem_desc), env_)) {
            case Assignability::kYes:
              break;
            case Assignability::kNo:
              return Fail(index, value.ToString() + " not storable into " + arr.name);
            case Assignability::kUnknown: {
              Assumption a;
              a.kind = AssumptionKind::kAssignable;
              a.scope = AssumptionScope::kMethod;
              a.target_class = value.name;
              a.expected_class = ClassNameFromDescriptor(elem_desc);
              Assume(std::move(a));
              break;
            }
          }
        }
      }
      break;
    }
    case Op::kPop:
      DVM_RETURN_IF_ERROR(Pop(frame, index));
      break;
    case Op::kDup: {
      DVM_ASSIGN_OR_RETURN(VType t, Pop(frame, index));
      DVM_RETURN_IF_ERROR(Push(frame, index, t));
      DVM_RETURN_IF_ERROR(Push(frame, index, t));
      break;
    }
    case Op::kDupX1: {
      DVM_ASSIGN_OR_RETURN(VType v1, Pop(frame, index));
      DVM_ASSIGN_OR_RETURN(VType v2, Pop(frame, index));
      DVM_RETURN_IF_ERROR(Push(frame, index, v1));
      DVM_RETURN_IF_ERROR(Push(frame, index, v2));
      DVM_RETURN_IF_ERROR(Push(frame, index, v1));
      break;
    }
    case Op::kSwap: {
      DVM_ASSIGN_OR_RETURN(VType v1, Pop(frame, index));
      DVM_ASSIGN_OR_RETURN(VType v2, Pop(frame, index));
      DVM_RETURN_IF_ERROR(Push(frame, index, v1));
      DVM_RETURN_IF_ERROR(Push(frame, index, v2));
      break;
    }
    case Op::kIadd:
    case Op::kIsub:
    case Op::kImul:
    case Op::kIdiv:
    case Op::kIrem:
    case Op::kIshl:
    case Op::kIshr:
    case Op::kIushr:
    case Op::kIand:
    case Op::kIor:
    case Op::kIxor:
      DVM_RETURN_IF_ERROR(PopKind(frame, index, VType::Kind::kInt, "int"));
      DVM_RETURN_IF_ERROR(PopKind(frame, index, VType::Kind::kInt, "int"));
      DVM_RETURN_IF_ERROR(Push(frame, index, VType::Int()));
      break;
    case Op::kLadd:
    case Op::kLsub:
    case Op::kLmul:
    case Op::kLdiv:
    case Op::kLrem:
      DVM_RETURN_IF_ERROR(PopKind(frame, index, VType::Kind::kLong, "long"));
      DVM_RETURN_IF_ERROR(PopKind(frame, index, VType::Kind::kLong, "long"));
      DVM_RETURN_IF_ERROR(Push(frame, index, VType::Long()));
      break;
    case Op::kIneg:
      DVM_RETURN_IF_ERROR(PopKind(frame, index, VType::Kind::kInt, "int"));
      DVM_RETURN_IF_ERROR(Push(frame, index, VType::Int()));
      break;
    case Op::kLneg:
      DVM_RETURN_IF_ERROR(PopKind(frame, index, VType::Kind::kLong, "long"));
      DVM_RETURN_IF_ERROR(Push(frame, index, VType::Long()));
      break;
    case Op::kIinc: {
      DVM_ASSIGN_OR_RETURN(VType t, GetLocal(frame, index, instr.a, VType::Kind::kInt, "int"));
      (void)t;
      break;
    }
    case Op::kI2l:
      DVM_RETURN_IF_ERROR(PopKind(frame, index, VType::Kind::kInt, "int"));
      DVM_RETURN_IF_ERROR(Push(frame, index, VType::Long()));
      break;
    case Op::kL2i:
      DVM_RETURN_IF_ERROR(PopKind(frame, index, VType::Kind::kLong, "long"));
      DVM_RETURN_IF_ERROR(Push(frame, index, VType::Int()));
      break;
    case Op::kLcmp:
      DVM_RETURN_IF_ERROR(PopKind(frame, index, VType::Kind::kLong, "long"));
      DVM_RETURN_IF_ERROR(PopKind(frame, index, VType::Kind::kLong, "long"));
      DVM_RETURN_IF_ERROR(Push(frame, index, VType::Int()));
      break;
    case Op::kIfeq:
    case Op::kIfne:
    case Op::kIflt:
    case Op::kIfge:
    case Op::kIfgt:
    case Op::kIfle:
      DVM_RETURN_IF_ERROR(PopKind(frame, index, VType::Kind::kInt, "int"));
      break;
    case Op::kIfIcmpeq:
    case Op::kIfIcmpne:
    case Op::kIfIcmplt:
    case Op::kIfIcmpge:
    case Op::kIfIcmpgt:
    case Op::kIfIcmple:
      DVM_RETURN_IF_ERROR(PopKind(frame, index, VType::Kind::kInt, "int"));
      DVM_RETURN_IF_ERROR(PopKind(frame, index, VType::Kind::kInt, "int"));
      break;
    case Op::kIfAcmpeq:
    case Op::kIfAcmpne: {
      VType a, b;
      DVM_RETURN_IF_ERROR(PopRefLike(frame, index, &a));
      DVM_RETURN_IF_ERROR(PopRefLike(frame, index, &b));
      break;
    }
    case Op::kIfnull:
    case Op::kIfnonnull: {
      VType t;
      DVM_RETURN_IF_ERROR(PopRefLike(frame, index, &t));
      break;
    }
    case Op::kGoto:
      break;
    case Op::kIreturn:
      Check();
      if (sig_.return_type != "I") {
        return Fail(index, "ireturn from method returning " + sig_.return_type);
      }
      DVM_RETURN_IF_ERROR(PopKind(frame, index, VType::Kind::kInt, "int"));
      break;
    case Op::kLreturn:
      Check();
      if (sig_.return_type != "J") {
        return Fail(index, "lreturn from method returning " + sig_.return_type);
      }
      DVM_RETURN_IF_ERROR(PopKind(frame, index, VType::Kind::kLong, "long"));
      break;
    case Op::kAreturn: {
      Check();
      if (!IsReferenceDescriptor(sig_.return_type)) {
        return Fail(index, "areturn from method returning " + sig_.return_type);
      }
      DVM_RETURN_IF_ERROR(PopAssignable(frame, index, sig_.return_type));
      break;
    }
    case Op::kReturn:
      Check();
      if (sig_.return_type != "V") {
        return Fail(index, "return from non-void method");
      }
      break;
    case Op::kGetstatic:
    case Op::kGetfield: {
      MemberRef ref = pool.FieldRefAt(static_cast<uint16_t>(instr.a)).value();
      if (instr.op == Op::kGetfield) {
        VType obj;
        DVM_RETURN_IF_ERROR(PopRefLike(frame, index, &obj));
      }
      DVM_RETURN_IF_ERROR(ResolveField(index, ref, instr.op == Op::kGetstatic));
      DVM_RETURN_IF_ERROR(Push(frame, index, VType::FromDescriptor(ref.descriptor)));
      break;
    }
    case Op::kPutstatic:
    case Op::kPutfield: {
      MemberRef ref = pool.FieldRefAt(static_cast<uint16_t>(instr.a)).value();
      DVM_RETURN_IF_ERROR(PopAssignable(frame, index, ref.descriptor));
      if (instr.op == Op::kPutfield) {
        VType obj;
        DVM_RETURN_IF_ERROR(PopRefLike(frame, index, &obj));
      }
      DVM_RETURN_IF_ERROR(ResolveField(index, ref, instr.op == Op::kPutstatic));
      break;
    }
    case Op::kInvokestatic:
    case Op::kInvokevirtual:
    case Op::kInvokespecial: {
      MemberRef ref = pool.MethodRefAt(static_cast<uint16_t>(instr.a)).value();
      DVM_ASSIGN_OR_RETURN(MethodSignature callee, ParseMethodDescriptor(ref.descriptor));
      // Arguments are popped right-to-left.
      for (size_t p = callee.params.size(); p > 0; p--) {
        DVM_RETURN_IF_ERROR(PopAssignable(frame, index, callee.params[p - 1]));
      }
      if (instr.op != Op::kInvokestatic) {
        DVM_ASSIGN_OR_RETURN(VType receiver, Pop(frame, index));
        Check();
        if (instr.op == Op::kInvokespecial && ref.member_name == "<init>" &&
            receiver.kind == VType::Kind::kUninit) {
          // Constructor call initializes every copy of this Uninit value.
          Check();
          if (receiver.name != ref.class_name) {
            return Fail(index, "constructor class mismatch: " + receiver.ToString() + " vs " +
                                   ref.class_name);
          }
          VType initialized = VType::Ref(receiver.name);
          for (auto& local : frame.locals) {
            if (local == receiver) {
              local = initialized;
            }
          }
          for (auto& entry : frame.stack) {
            if (entry == receiver) {
              entry = initialized;
            }
          }
        } else if (!receiver.IsRefLike()) {
          return Fail(index, "invoke on non-reference " + receiver.ToString());
        }
      }
      DVM_RETURN_IF_ERROR(ResolveMethod(index, ref, instr.op));
      if (!callee.ReturnsVoid()) {
        DVM_RETURN_IF_ERROR(Push(frame, index, VType::FromDescriptor(callee.return_type)));
      }
      break;
    }
    case Op::kNew: {
      std::string class_name = pool.ClassNameAt(static_cast<uint16_t>(instr.a)).value();
      Check();
      if (!env_.IsKnown(class_name)) {
        AssumeClass(class_name);
      }
      DVM_RETURN_IF_ERROR(
          Push(frame, index, VType::Uninit(class_name, static_cast<int>(index))));
      break;
    }
    case Op::kNewarray:
      DVM_RETURN_IF_ERROR(PopKind(frame, index, VType::Kind::kInt, "array length"));
      DVM_RETURN_IF_ERROR(Push(
          frame, index,
          VType::Ref(instr.a == static_cast<int>(ArrayKind::kLong) ? "[J" : "[I")));
      break;
    case Op::kAnewarray: {
      std::string element = pool.ClassNameAt(static_cast<uint16_t>(instr.a)).value();
      Check();
      if (element[0] != '[' && !env_.IsKnown(element)) {
        AssumeClass(element);
      }
      DVM_RETURN_IF_ERROR(PopKind(frame, index, VType::Kind::kInt, "array length"));
      DVM_RETURN_IF_ERROR(
          Push(frame, index, VType::Ref("[" + DescriptorFromClassName(element))));
      break;
    }
    case Op::kArraylength: {
      VType arr;
      DVM_RETURN_IF_ERROR(PopRefLike(frame, index, &arr));
      Check();
      if (arr.kind == VType::Kind::kRef && !arr.IsArray()) {
        return Fail(index, "arraylength on non-array " + arr.ToString());
      }
      DVM_RETURN_IF_ERROR(Push(frame, index, VType::Int()));
      break;
    }
    case Op::kAthrow: {
      VType t;
      DVM_RETURN_IF_ERROR(PopRefLike(frame, index, &t));
      if (t.kind == VType::Kind::kRef) {
        switch (IsAssignable(t, kThrowable, env_)) {
          case Assignability::kYes:
            break;
          case Assignability::kNo:
            return Fail(index, "athrow of non-throwable " + t.ToString());
          case Assignability::kUnknown: {
            Assumption a;
            a.kind = AssumptionKind::kAssignable;
            a.scope = AssumptionScope::kMethod;
            a.target_class = t.name;
            a.expected_class = kThrowable;
            Assume(std::move(a));
            break;
          }
        }
      }
      break;
    }
    case Op::kCheckcast: {
      std::string class_name = pool.ClassNameAt(static_cast<uint16_t>(instr.a)).value();
      VType t;
      DVM_RETURN_IF_ERROR(PopRefLike(frame, index, &t));
      Check();
      if (class_name[0] != '[' && !env_.IsKnown(class_name)) {
        AssumeClass(class_name);
      }
      DVM_RETURN_IF_ERROR(Push(frame, index,
                               class_name[0] == '[' ? VType::Ref(class_name)
                                                    : VType::Ref(class_name)));
      break;
    }
    case Op::kInstanceof: {
      std::string class_name = pool.ClassNameAt(static_cast<uint16_t>(instr.a)).value();
      VType t;
      DVM_RETURN_IF_ERROR(PopRefLike(frame, index, &t));
      Check();
      if (class_name[0] != '[' && !env_.IsKnown(class_name)) {
        AssumeClass(class_name);
      }
      DVM_RETURN_IF_ERROR(Push(frame, index, VType::Int()));
      break;
    }
    case Op::kMonitorenter:
    case Op::kMonitorexit: {
      VType t;
      DVM_RETURN_IF_ERROR(PopRefLike(frame, index, &t));
      break;
    }
    // Quick forms are runtime-internal rewrites; a class file carrying one is
    // hostile or corrupt and must never reach the execution engine.
    case Op::kLdcQuick:
    case Op::kGetfieldQuick:
    case Op::kPutfieldQuick:
    case Op::kGetstaticQuick:
    case Op::kPutstaticQuick:
    case Op::kInvokevirtualQuick:
    case Op::kInvokespecialQuick:
    case Op::kInvokestaticQuick:
    case Op::kNewQuick:
    case Op::kAnewarrayQuick:
    case Op::kCheckcastQuick:
    case Op::kInstanceofQuick:
      return Fail(index, "quick opcode in class file");
  }

  out.frame = std::move(frame);
  return out;
}

}  // namespace dvm
