// Binary (de)serialization of class files — the wire format that the proxy
// parses, rewrites and regenerates, and that the network simulator charges
// transfer time for. WriteClassFile(ReadClassFile(b)) == b for well-formed b.
#ifndef SRC_BYTECODE_SERIALIZER_H_
#define SRC_BYTECODE_SERIALIZER_H_

#include "src/bytecode/classfile.h"
#include "src/support/bytes.h"
#include "src/support/result.h"

namespace dvm {

Bytes WriteClassFile(const ClassFile& cls);
Result<ClassFile> ReadClassFile(const Bytes& data);

}  // namespace dvm

#endif  // SRC_BYTECODE_SERIALIZER_H_
