#include "src/runtime/interp.h"

#include <algorithm>

#include "src/bytecode/descriptor.h"
#include "src/runtime/profile.h"
#include "src/runtime/tiered.h"
#include "src/support/interner.h"
#include "src/verifier/link_checker.h"

// Computed-goto dispatch needs the GNU labels-as-values extension; elsewhere
// (or when DVM_THREADED_DISPATCH is off) the quickened engine falls back to a
// portable switch loop with identical semantics.
#if defined(DVM_THREADED_DISPATCH) && (defined(__GNUC__) || defined(__clang__))
#define DVM_INTERP_COMPUTED_GOTO 1
#else
#define DVM_INTERP_COMPUTED_GOTO 0
#endif

namespace dvm {
namespace {

Error HostErr(const std::string& message) { return Error{ErrorCode::kRuntimeError, message}; }

}  // namespace

const char* InterpreterDispatchMode() {
#if DVM_INTERP_COMPUTED_GOTO
  return "threaded";
#else
  return "switch";
#endif
}

Interpreter::Interpreter(Machine& machine) : machine_(machine) {
  const MachineConfig& config = machine_.config();
  tier_invocation_threshold_ = config.tier_invocation_threshold;
  tier_osr_threshold_ = config.tier_osr_threshold;
  tier_force_deopt_ = config.tier_force_deopt;
  // Tiering rides the quickened engine; the reference engine stays the oracle.
  tier_enabled_ = config.quicken &&
                  (tier_invocation_threshold_ != 0 || tier_osr_threshold_ != 0);
  if (!tier_enabled_) {
    tier_invocation_threshold_ = 0;
    tier_osr_threshold_ = 0;
  }
  previous_root_provider_ = machine_.frame_root_provider();
  machine_.SetFrameRootProvider([this](std::vector<ObjRef>* roots) {
    if (previous_root_provider_) {
      previous_root_provider_(roots);
    }
    CollectFrameRoots(roots);
  });
}

Interpreter::~Interpreter() { machine_.SetFrameRootProvider(previous_root_provider_); }

void Interpreter::CollectFrameRoots(std::vector<ObjRef>* roots) const {
  auto add = [roots](const Value& v) {
    if (v.kind == Value::Kind::kRef && !v.IsNullRef()) {
      roots->push_back(v.AsRef());
    }
  };
  const Value* base = arena_.data();
  for (const auto& frame : frames_) {
    // Locals occupy [locals_base, stack_base); live stack is [stack_base, sp).
    for (uint32_t i = frame.locals_base; i < frame.stack_base; i++) {
      add(base[i]);
    }
    for (uint32_t i = frame.stack_base; i < frame.sp; i++) {
      add(base[i]);
    }
  }
  if (has_return_value_) {
    add(return_value_);
  }
  if (rooted_values_ != nullptr) {
    for (const Value& v : *rooted_values_) {
      add(v);
    }
  }
}

Result<PreparedMethod*> Interpreter::Prepare(RuntimeClass* cls, const MethodInfo* method) {
  auto it = cls->prepared.find(method->Id());
  if (it != cls->prepared.end()) {
    return it->second.get();
  }
  auto prepared = std::make_unique<PreparedMethod>();
  prepared->method = method;
  prepared->compiled = cls->file.FindAttribute(kAttrCompiledStamp) != nullptr;
  DVM_ASSIGN_OR_RETURN(prepared->code, DecodeCode(method->code->code));
  prepared->cache.resize(prepared->code.size());

  std::vector<uint32_t> offsets = CodeByteOffsets(prepared->code);
  auto index_of = [&offsets](uint16_t byte_pc) -> int64_t {
    for (size_t i = 0; i < offsets.size(); i++) {
      if (offsets[i] == byte_pc) {
        return static_cast<int64_t>(i);
      }
    }
    return -1;
  };
  for (const auto& h : method->code->handlers) {
    int64_t start = index_of(h.start_pc);
    int64_t end = index_of(h.end_pc);
    int64_t handler = index_of(h.handler_pc);
    if (start < 0 || end < 0 || handler < 0) {
      return HostErr("exception handler not on instruction boundary in " + method->Id());
    }
    PreparedMethod::Handler entry;
    entry.start_ix = static_cast<uint32_t>(start);
    entry.end_ix = static_cast<uint32_t>(end);
    entry.handler_ix = static_cast<uint32_t>(handler);
    if (h.catch_type != 0) {
      DVM_ASSIGN_OR_RETURN(entry.catch_class, cls->file.pool().ClassNameAt(h.catch_type));
    }
    prepared->handlers.push_back(std::move(entry));
  }

  // Proxy-compiled tier-1 code (DESIGN.md §16): install the shipped blob
  // instead of compiling locally, but only when the machine trusts the class
  // channel (the DVM client behind the signed rewrite-cache artifact chain).
  // Every blob is proof-checked against this method's bytecode before use;
  // checksum or validation failure falls back to local tiering silently.
  if (tier_enabled_ && machine_.config().trust_tiered_artifacts) {
    if (const Attribute* attr = cls->file.FindAttribute(kAttrTieredCode)) {
      if (auto entries = UnpackTieredAttribute(attr->data); entries.ok()) {
        for (const auto& [id, blob] : entries.value()) {
          if (id != method->Id()) {
            continue;
          }
          auto parsed = ParseTieredBlob(blob);
          if (parsed.ok() && parsed.value()->checksum == Fnv1a(method->code->code) &&
              ValidateTieredMethod(*parsed.value(), prepared->code, cls->file.pool(),
                                   method->code->max_stack, method->code->max_locals)
                  .ok()) {
            prepared->tier_code = std::move(parsed.value());
            machine_.counters().tier_installs++;
          }
          break;
        }
      }
    }
  }

  PreparedMethod* out = prepared.get();
  cls->prepared[method->Id()] = std::move(prepared);
  return out;
}

void Interpreter::ProfileMethodEntry() {
  ExecutionProfiler* prof = machine_.profiler();
  if (prof != nullptr && prof->SampleDue(machine_.virtual_nanos())) {
    prof->TakeSample(machine_, machine_.virtual_nanos());
    machine_.counters().profile_events++;
  }
}

void Interpreter::ProfileBackedge(PreparedMethod* prepared) {
  prepared->backedges++;
  ExecutionProfiler* prof = machine_.profiler();
  if (prof != nullptr && prof->SampleDue(machine_.virtual_nanos())) {
    prof->TakeSample(machine_, machine_.virtual_nanos());
    machine_.counters().profile_events++;
  }
}

void Interpreter::EnsureArena(size_t slots) {
  if (arena_.size() < slots) {
    size_t grown = arena_.size() < 1024 ? size_t{1024} : arena_.size() * 2;
    arena_.resize(std::max(grown, slots));
  }
}

Status Interpreter::PushFrame(RuntimeClass* cls, const MethodInfo* method,
                              const std::vector<Value>& args) {
  if (frames_.size() >= machine_.config().max_frames) {
    machine_.ThrowGuest("java/lang/StackOverflowError", "frame limit reached");
    return Status::Ok();
  }
  if (!method->code.has_value()) {
    return HostErr("method has no code body: " + cls->name + "." + method->Id());
  }
  DVM_ASSIGN_OR_RETURN(PreparedMethod * prepared, Prepare(cls, method));
  uint32_t base = frames_.empty() ? 0 : frames_.back().stack_limit;
  uint32_t locals_count = method->code->max_locals;
  ExecFrame frame;
  frame.cls = cls;
  frame.method = method;
  frame.prepared = prepared;
  frame.locals_base = base;
  frame.stack_base = base + locals_count;
  frame.stack_limit = frame.stack_base + method->code->max_stack;
  frame.sp = frame.stack_base;
  frame.pc = 0;
  EnsureArena(frame.stack_limit);
  Value* locals = arena_.data() + base;
  for (uint32_t i = 0; i < locals_count; i++) {
    locals[i] = i < args.size() ? args[i] : Value::Null();
  }
  frames_.push_back(frame);
  machine_.call_stack().push_back(FrameInfo{cls, method});
  machine_.counters().method_invocations++;
  prepared->invocations++;
  machine_.AddNanos(machine_.config().cost.nanos_per_invoke);
  ProfileMethodEntry();
  if (tier_enabled_) {
    MaybeTierOnEntry(frames_.back());
  }
  return Status::Ok();
}

Status Interpreter::PushFrameSliced(RuntimeClass* cls, const MethodInfo* method,
                                    uint32_t argc) {
  ExecFrame& caller = frames_.back();
  uint32_t args_start = caller.sp - argc;  // caller validated the depth
  caller.sp = args_start;
  if (frames_.size() >= machine_.config().max_frames) {
    machine_.ThrowGuest("java/lang/StackOverflowError", "frame limit reached");
    return Status::Ok();
  }
  if (!method->code.has_value()) {
    return HostErr("method has no code body: " + cls->name + "." + method->Id());
  }
  DVM_ASSIGN_OR_RETURN(PreparedMethod * prepared, Prepare(cls, method));
  uint32_t max_locals = method->code->max_locals;
  uint32_t locals_count = std::max(max_locals, argc);
  ExecFrame frame;
  frame.cls = cls;
  frame.method = method;
  frame.prepared = prepared;
  frame.locals_base = args_start;
  frame.stack_base = args_start + locals_count;
  frame.stack_limit = frame.stack_base + method->code->max_stack;
  frame.sp = frame.stack_base;
  frame.pc = 0;
  EnsureArena(frame.stack_limit);
  Value* locals = arena_.data() + args_start;
  // Null-fill the non-argument locals, and drop any argument slots beyond
  // max_locals (the reference engine never copies them either, so the GC root
  // set stays identical across engines).
  for (uint32_t i = std::min(argc, max_locals); i < locals_count; i++) {
    locals[i] = Value::Null();
  }
  frames_.push_back(frame);
  machine_.call_stack().push_back(FrameInfo{cls, method});
  machine_.counters().method_invocations++;
  prepared->invocations++;
  machine_.AddNanos(machine_.config().cost.nanos_per_invoke);
  ProfileMethodEntry();
  if (tier_enabled_) {
    MaybeTierOnEntry(frames_.back());
  }
  return Status::Ok();
}

Status Interpreter::EnsureInitialized(RuntimeClass* cls) {
  if (cls->init_state != InitState::kUninitialized) {
    return Status::Ok();
  }
  cls->init_state = InitState::kInitializing;
  if (cls->super != nullptr) {
    DVM_RETURN_IF_ERROR(EnsureInitialized(cls->super));
    if (machine_.HasPendingException()) {
      cls->init_state = InitState::kUninitialized;
      return Status::Ok();
    }
  }

  // Monolithic clients discharge the verifier's link assumptions here, at
  // first active use — the same laziness the DVM gets via injected preambles.
  if (auto* pending = machine_.PendingLinkChecks(cls->name)) {
    LinkCheckStats stats;
    Status status = Status::Ok();
    for (const auto& assumption : *pending) {
      // Force-load the classes each assumption talks about, then check.
      (void)machine_.registry().GetClass(assumption.target_class);
      status = CheckAssumption(assumption, machine_.registry(), &stats);
      if (!status.ok()) {
        break;
      }
    }
    uint64_t cost = stats.dynamic_checks * machine_.config().cost.nanos_per_link_check;
    machine_.AddNanos(cost);
    machine_.AddServiceNanos("verify", cost);
    machine_.counters().dynamic_verify_checks += stats.dynamic_checks;
    machine_.ClearPendingLinkChecks(cls->name);
    if (!status.ok()) {
      cls->init_state = InitState::kInitialized;  // poisoned; never re-checked
      machine_.ThrowGuest("java/lang/VerifyError", status.error().message);
      return Status::Ok();
    }
  }

  const MethodInfo* clinit = cls->file.FindMethod("<clinit>", "()V");
  if (clinit != nullptr && clinit->code.has_value()) {
    Interpreter nested(machine_);
    DVM_ASSIGN_OR_RETURN(CallOutcome outcome, nested.RunMethod(cls, clinit, {}));
    if (outcome.threw) {
      cls->init_state = InitState::kInitialized;
      machine_.ThrowGuest("java/lang/ExceptionInInitializerError",
                          outcome.exception_class + ": " + outcome.exception_message);
      return Status::Ok();
    }
  }
  cls->init_state = InitState::kInitialized;
  return Status::Ok();
}

Result<CallOutcome> Interpreter::RunStatic(const std::string& class_name,
                                           const std::string& method_name,
                                           const std::string& descriptor,
                                           std::vector<Value> args) {
  DVM_ASSIGN_OR_RETURN(RuntimeClass * cls, machine_.registry().GetClass(class_name));
  const RuntimeClass::MethodEntry* entry =
      cls->FindMethodEntry(InternSymbol(method_name), InternSymbol(descriptor));
  if (entry == nullptr) {
    return HostErr("no such method: " + class_name + "." + method_name + ":" + descriptor);
  }
  if (!entry->method->IsStatic()) {
    return HostErr("method is not static: " + method_name);
  }
  return RunMethod(entry->owner, entry->method, std::move(args));
}

Result<CallOutcome> Interpreter::RunMethod(RuntimeClass* cls, const MethodInfo* method,
                                           std::vector<Value> args) {
  // Root the caller-supplied args while <clinit> (and any GC it triggers) runs.
  rooted_values_ = &args;
  Status init = EnsureInitialized(cls);
  rooted_values_ = nullptr;
  DVM_RETURN_IF_ERROR(init);
  if (!machine_.HasPendingException()) {
    if (method->IsNative()) {
      DVM_RETURN_IF_ERROR(CallNative(cls, method, std::move(args)));
      if (!machine_.HasPendingException()) {
        CallOutcome outcome;
        if (has_return_value_) {
          outcome.value = return_value_;
        }
        return outcome;
      }
    } else {
      DVM_RETURN_IF_ERROR(PushFrame(cls, method, args));
    }
  }
  return Loop();
}

Result<CallOutcome> Interpreter::Loop() {
  const bool quicken = machine_.config().quicken;
  while (true) {
    if (machine_.HasPendingException()) {
      DVM_ASSIGN_OR_RETURN(bool handled, DispatchPendingException());
      if (!handled) {
        ObjRef exception = machine_.TakePendingException();
        CallOutcome outcome;
        outcome.threw = true;
        outcome.value = Value::Ref(exception);
        const HeapObject* obj = machine_.heap().Get(exception);
        if (obj != nullptr) {
          if (obj->kind == HeapObject::Kind::kString) {
            outcome.exception_class = "java/lang/Throwable";
            outcome.exception_message = obj->str;
          } else {
            outcome.exception_class = obj->class_name;
            RuntimeClass* cls = machine_.registry().FindLoaded(obj->class_name);
            const RuntimeClass* owner =
                cls != nullptr ? cls->FindFieldOwner("message") : nullptr;
            if (owner != nullptr) {
              auto slot = owner->own_field_slots.find("message");
              if (slot != owner->own_field_slots.end() &&
                  slot->second < obj->fields.size()) {
                Value message = obj->fields[slot->second];
                if (message.kind == Value::Kind::kRef && !message.IsNullRef()) {
                  auto str = machine_.StringValue(message.AsRef());
                  if (str.ok()) {
                    outcome.exception_message = str.value();
                  }
                }
              }
            }
          }
        }
        return outcome;
      }
      continue;
    }
    if (frames_.empty()) {
      CallOutcome outcome;
      if (has_return_value_) {
        outcome.value = return_value_;
      }
      return outcome;
    }
    if (quicken) {
      // Both quickened-family engines do their own budget accounting.
      if (frames_.back().compiled_active) {
        DVM_RETURN_IF_ERROR(RunCompiled());
      } else {
        DVM_RETURN_IF_ERROR(RunQuick());
      }
    } else {
      if (machine_.counters().instructions >= machine_.config().max_instructions) {
        return HostErr("instruction budget exceeded");
      }
      DVM_RETURN_IF_ERROR(Step());
    }
  }
}

Result<bool> Interpreter::DispatchPendingException() {
  ObjRef exception = machine_.TakePendingException();
  std::string exception_class = "java/lang/Throwable";
  const HeapObject* obj = machine_.heap().Get(exception);
  if (obj != nullptr && obj->kind == HeapObject::Kind::kInstance) {
    exception_class = obj->class_name;
  }

  // Handler-walk memo (quickened engine only, host-time optimization): keyed
  // by (fault instruction, exception class symbol). Entries are recorded only
  // from walks where every subclass query resolved cleanly, so a memoized
  // answer can never change (the class hierarchy is append-only) and the
  // virtual clock is unaffected (subclass walks over loaded chains are free).
  const bool memoize = machine_.config().quicken;
  const uint64_t memo_sym = memoize ? InternSymbol(exception_class) : 0;

  while (!frames_.empty()) {
    ExecFrame& frame = frames_.back();
    // Throwing always deoptimizes: any compiled frame the unwind examines
    // resumes interpreted (its pc is synced at every potential throw point).
    if (frame.compiled_active) {
      frame.compiled_active = false;
      machine_.counters().tier_deopts++;
    }
    uint32_t fault_ix = frame.pc == 0 ? 0 : frame.pc - 1;
    int32_t handler_ix = -1;
    bool clean = true;
    const uint64_t memo_key = (static_cast<uint64_t>(fault_ix) << 32) | memo_sym;
    auto memo_it = memoize ? frame.prepared->handler_memo.find(memo_key)
                           : frame.prepared->handler_memo.end();
    if (memoize && memo_it != frame.prepared->handler_memo.end()) {
      handler_ix = memo_it->second;
    } else {
      for (size_t hi = 0; hi < frame.prepared->handlers.size(); hi++) {
        const auto& h = frame.prepared->handlers[hi];
        if (fault_ix < h.start_ix || fault_ix >= h.end_ix) {
          continue;
        }
        bool matches = h.catch_class.empty();
        if (!matches) {
          auto is_sub = machine_.registry().IsSubclass(exception_class, h.catch_class);
          clean = clean && is_sub.ok();
          matches = is_sub.ok() && is_sub.value();
        }
        if (matches) {
          handler_ix = static_cast<int32_t>(hi);
          break;
        }
      }
      if (memoize && clean) {
        frame.prepared->handler_memo.emplace(memo_key, handler_ix);
      }
    }
    if (handler_ix >= 0) {
      const auto& h = frame.prepared->handlers[static_cast<size_t>(handler_ix)];
      frame.sp = frame.stack_base;
      if (frame.sp >= frame.stack_limit) {
        // max_stack == 0 with a live handler: the exception slot still needs
        // a home (the verifier only meters explicit pushes).
        EnsureArena(frame.sp + 1);
        frame.stack_limit = frame.sp + 1;
      }
      arena_[frame.sp++] = Value::Ref(exception);
      frame.pc = h.handler_ix;
      return true;
    }
    frames_.pop_back();
    machine_.call_stack().pop_back();
  }
  // No handler anywhere: re-arm so Loop can report it.
  machine_.SetPendingExceptionObject(exception);
  return false;
}

Status Interpreter::CallNative(RuntimeClass* owner, const MethodInfo* method,
                               std::vector<Value> args) {
  const NativeFn* fn =
      machine_.natives().Find(owner->name, method->name, method->descriptor);
  if (fn == nullptr && method->name.rfind("__dvmSecured$", 0) == 0) {
    // The security service wraps hooked natives by renaming them; the
    // implementation stays bound under the original name.
    fn = machine_.natives().Find(owner->name, method->name.substr(13), method->descriptor);
  }
  if (fn == nullptr) {
    return HostErr("unbound native method " + owner->name + "." + method->Id());
  }
  machine_.counters().native_calls++;
  machine_.AddNanos(machine_.config().cost.nanos_per_native_call);
  // The args vector lives outside the arena; root it for the duration of the
  // native call (which may allocate and collect).
  rooted_values_ = &args;
  Result<Value> call = (*fn)(machine_, args);
  rooted_values_ = nullptr;
  if (!call.ok()) {
    return call.error();
  }
  Value result = call.value();
  if (machine_.HasPendingException()) {
    return Status::Ok();
  }
  auto sig = ParseMethodDescriptor(method->descriptor);
  if (sig.ok() && !sig->ReturnsVoid()) {
    if (!frames_.empty()) {
      ExecFrame& caller = frames_.back();
      if (caller.sp >= caller.stack_limit) {
        return HostErr("operand stack overflow in " + caller.method->Id());
      }
      arena_[caller.sp++] = result;
    } else {
      return_value_ = result;
      has_return_value_ = true;
    }
  }
  return Status::Ok();
}

// Resolves the field site at `site_ix` of frame `f` into its inline cache.
// Returns false when a guest exception (NoSuchFieldError, <clinit> failure) is
// now pending. Shared by both engines; the quickened engine additionally
// rewrites the opcode afterwards. For statics the owner is initialized before
// the cache is installed, so cache presence implies initialization.
Result<bool> Interpreter::ResolveFieldSite(ExecFrame& f, uint32_t site_ix, bool is_static) {
  InlineCache& ic = f.prepared->cache[site_ix];
  if (ic.field_owner != nullptr) {
    return true;
  }
  const ConstantPool& pool = f.cls->file.pool();
  const Instr& site = f.prepared->code[site_ix];
  DVM_ASSIGN_OR_RETURN(MemberRef ref, pool.FieldRefAt(static_cast<uint16_t>(site.a)));
  DVM_ASSIGN_OR_RETURN(RuntimeClass * ref_cls, machine_.registry().GetClass(ref.class_name));
  RuntimeClass* owner = nullptr;
  for (RuntimeClass* c = ref_cls; c != nullptr; c = c->super) {
    const auto& slots = is_static ? c->static_slots : c->own_field_slots;
    if (slots.count(ref.member_name) > 0) {
      owner = c;
      break;
    }
  }
  if (owner == nullptr) {
    machine_.ThrowGuest("java/lang/NoSuchFieldError", ref.ToString());
    return false;
  }
  if (is_static) {
    DVM_RETURN_IF_ERROR(EnsureInitialized(owner));
    if (machine_.HasPendingException()) {
      return false;
    }
    ic.field_slot = owner->static_slots[ref.member_name];
  } else {
    ic.field_slot = owner->own_field_slots.at(ref.member_name);
  }
  ic.field_owner = owner;  // set last: presence implies initialized
  return true;
}

Status Interpreter::Invoke(Op op, uint16_t cp_index, InlineCache& ic) {
  ExecFrame& caller = frames_.back();
  const ConstantPool& pool = caller.cls->file.pool();

  // Quicken the call shape (argument slots, result arity) on first execution.
  if (ic.arg_count < 0) {
    DVM_ASSIGN_OR_RETURN(MemberRef ref, pool.MethodRefAt(cp_index));
    DVM_ASSIGN_OR_RETURN(MethodSignature sig, ParseMethodDescriptor(ref.descriptor));
    ic.arg_count = sig.ArgSlots() + (op == Op::kInvokestatic ? 0 : 1);
    ic.has_result = !sig.ReturnsVoid();
  }
  uint32_t arg_count = static_cast<uint32_t>(ic.arg_count);
  if (caller.sp - caller.stack_base < arg_count) {
    return HostErr("operand stack underflow on invoke in " + caller.method->Id());
  }
  std::vector<Value> args(arena_.begin() + static_cast<ptrdiff_t>(caller.sp - arg_count),
                          arena_.begin() + static_cast<ptrdiff_t>(caller.sp));
  caller.sp -= arg_count;

  if (op != Op::kInvokestatic && args[0].IsNullRef()) {
    machine_.ThrowGuest("java/lang/NullPointerException", "invoke on null receiver");
    return Status::Ok();
  }

  RuntimeClass* owner = nullptr;
  const MethodInfo* method = nullptr;

  if (op == Op::kInvokevirtual) {
    const HeapObject* receiver = machine_.heap().Get(args[0].AsRef());
    if (receiver == nullptr) {
      return HostErr("dangling receiver reference");
    }
    if (ic.invoke_method != nullptr && ic.receiver_class == receiver->class_name) {
      // Monomorphic fast path.
      ic.hits++;
      owner = ic.invoke_owner;
      method = ic.invoke_method;
    } else {
      ic.misses++;
      if (ic.receiver_sym != 0 && ic.receiver_sym != receiver->class_sym) {
        ic.transitions++;
      }
      DVM_ASSIGN_OR_RETURN(MemberRef ref, pool.MethodRefAt(cp_index));
      uint32_t method_sym = InternSymbol(ref.member_name);
      uint32_t desc_sym = InternSymbol(ref.descriptor);
      std::string dynamic_class = receiver->class_name;
      if (!dynamic_class.empty() && dynamic_class[0] == '[') {
        dynamic_class = "java/lang/Object";
      }
      DVM_ASSIGN_OR_RETURN(RuntimeClass * dispatch_cls,
                           machine_.registry().GetClass(dynamic_class));
      const RuntimeClass::MethodEntry* entry =
          dispatch_cls->FindMethodEntry(method_sym, desc_sym);
      if (entry == nullptr) {
        // Fall back to the static type (e.g. interface-typed receivers).
        DVM_ASSIGN_OR_RETURN(RuntimeClass * ref_cls,
                             machine_.registry().GetClass(ref.class_name));
        entry = ref_cls->FindMethodEntry(method_sym, desc_sym);
      }
      if (entry == nullptr) {
        machine_.ThrowGuest("java/lang/NoSuchMethodError", ref.ToString());
        return Status::Ok();
      }
      owner = entry->owner;
      method = entry->method;
      if (method->IsStatic()) {
        machine_.ThrowGuest("java/lang/IncompatibleClassChangeError",
                            ref.ToString() + " is static");
        return Status::Ok();
      }
      // Install the monomorphic cache entry (last receiver type wins).
      ic.invoke_owner = owner;
      ic.invoke_method = method;
      ic.receiver_class = receiver->class_name;
      ic.receiver_sym = receiver->class_sym;
    }
  } else if (ic.invoke_method != nullptr) {
    // invokestatic / invokespecial resolve statically: cache is always valid
    // (and for statics implies the owner finished initialization).
    owner = ic.invoke_owner;
    method = ic.invoke_method;
  } else {
    DVM_ASSIGN_OR_RETURN(MemberRef ref, pool.MethodRefAt(cp_index));
    DVM_ASSIGN_OR_RETURN(RuntimeClass * ref_cls,
                         machine_.registry().GetClass(ref.class_name));
    const RuntimeClass::MethodEntry* entry =
        ref_cls->FindMethodEntry(InternSymbol(ref.member_name), InternSymbol(ref.descriptor));
    if (entry == nullptr) {
      machine_.ThrowGuest("java/lang/NoSuchMethodError", ref.ToString());
      return Status::Ok();
    }
    owner = entry->owner;
    method = entry->method;
    if (op == Op::kInvokestatic) {
      if (!method->IsStatic()) {
        machine_.ThrowGuest("java/lang/IncompatibleClassChangeError",
                            ref.ToString() + " is not static");
        return Status::Ok();
      }
      DVM_RETURN_IF_ERROR(EnsureInitialized(owner));
      if (machine_.HasPendingException()) {
        return Status::Ok();
      }
    } else if (method->IsStatic()) {
      machine_.ThrowGuest("java/lang/IncompatibleClassChangeError",
                          ref.ToString() + " is static");
      return Status::Ok();
    }
    ic.invoke_owner = owner;
    ic.invoke_method = method;
  }

  if (method->IsAbstract()) {
    machine_.ThrowGuest("java/lang/AbstractMethodError", owner->name + "." + method->Id());
    return Status::Ok();
  }
  if (method->IsNative()) {
    return CallNative(owner, method, std::move(args));
  }
  return PushFrame(owner, method, args);
}

Status Interpreter::Step() {
  ExecFrame& f = frames_.back();
  if (f.pc >= f.prepared->code.size()) {
    return HostErr("pc escaped method body in " + f.method->Id());
  }
  const Instr instr = f.prepared->code[f.pc];
  f.pc++;
  machine_.counters().instructions++;
  machine_.AddNanos(f.prepared->compiled ? machine_.config().cost.nanos_per_instr_compiled
                                         : machine_.config().cost.nanos_per_instr);

  const ConstantPool& pool = f.cls->file.pool();
  Value* base = arena_.data();
  Value* locals = base + f.locals_base;

  auto stack_size = [&]() { return f.sp - f.stack_base; };
  auto pop = [&]() { return base[--f.sp]; };
  auto push = [&](const Value& v) -> Status {
    if (f.sp >= f.stack_limit) {
      return HostErr("operand stack overflow in " + f.method->Id());
    }
    base[f.sp++] = v;
    return Status::Ok();
  };
  auto underflow_guard = [&](uint32_t need) -> Status {
    if (stack_size() < need) {
      return HostErr("operand stack underflow in " + f.method->Id());
    }
    return Status::Ok();
  };
  auto local_guard = [&](int32_t index) -> Status {
    if (static_cast<uint32_t>(index) >= f.method->code->max_locals) {
      return HostErr("local index out of range in " + f.method->Id());
    }
    return Status::Ok();
  };

  switch (instr.op) {
    case Op::kNop:
      break;
    case Op::kAconstNull:
      DVM_RETURN_IF_ERROR(push(Value::Null()));
      break;
    case Op::kIconst0:
      DVM_RETURN_IF_ERROR(push(Value::Int(0)));
      break;
    case Op::kIconst1:
      DVM_RETURN_IF_ERROR(push(Value::Int(1)));
      break;
    case Op::kBipush:
    case Op::kSipush:
      DVM_RETURN_IF_ERROR(push(Value::Int(instr.a)));
      break;
    case Op::kLdc: {
      uint16_t index = static_cast<uint16_t>(instr.a);
      if (pool.HasTag(index, CpTag::kInteger)) {
        DVM_RETURN_IF_ERROR(push(Value::Int(pool.IntegerAt(index).value())));
      } else if (pool.HasTag(index, CpTag::kLong)) {
        DVM_RETURN_IF_ERROR(push(Value::Long(pool.LongAt(index).value())));
      } else if (pool.HasTag(index, CpTag::kString)) {
        DVM_ASSIGN_OR_RETURN(ObjRef str,
                             machine_.InternString(pool.StringAt(index).value()));
        DVM_RETURN_IF_ERROR(push(Value::Ref(str)));
      } else {
        return HostErr("ldc on unsupported constant");
      }
      break;
    }
    case Op::kIload:
    case Op::kLload:
    case Op::kAload:
      DVM_RETURN_IF_ERROR(local_guard(instr.a));
      DVM_RETURN_IF_ERROR(push(locals[static_cast<size_t>(instr.a)]));
      break;
    case Op::kIstore:
    case Op::kLstore:
    case Op::kAstore: {
      DVM_RETURN_IF_ERROR(underflow_guard(1));
      DVM_RETURN_IF_ERROR(local_guard(instr.a));
      locals[static_cast<size_t>(instr.a)] = pop();
      break;
    }
    case Op::kIaload:
    case Op::kLaload:
    case Op::kAaload: {
      DVM_RETURN_IF_ERROR(underflow_guard(2));
      int32_t index = pop().AsInt();
      Value array_ref = pop();
      if (array_ref.IsNullRef()) {
        machine_.ThrowGuest("java/lang/NullPointerException", "array load on null");
        break;
      }
      HeapObject* array = machine_.heap().Get(array_ref.AsRef());
      if (array == nullptr) {
        return HostErr("dangling array reference");
      }
      if (index < 0 || index >= array->ArrayLength()) {
        machine_.ThrowGuest("java/lang/ArrayIndexOutOfBoundsException",
                            std::to_string(index));
        break;
      }
      if (instr.op == Op::kIaload) {
        DVM_RETURN_IF_ERROR(push(Value::Int(array->ints[static_cast<size_t>(index)])));
      } else if (instr.op == Op::kLaload) {
        DVM_RETURN_IF_ERROR(push(Value::Long(array->longs[static_cast<size_t>(index)])));
      } else {
        DVM_RETURN_IF_ERROR(push(Value::Ref(array->refs[static_cast<size_t>(index)])));
      }
      break;
    }
    case Op::kIastore:
    case Op::kLastore:
    case Op::kAastore: {
      DVM_RETURN_IF_ERROR(underflow_guard(3));
      Value value = pop();
      int32_t index = pop().AsInt();
      Value array_ref = pop();
      if (array_ref.IsNullRef()) {
        machine_.ThrowGuest("java/lang/NullPointerException", "array store on null");
        break;
      }
      HeapObject* array = machine_.heap().Get(array_ref.AsRef());
      if (array == nullptr) {
        return HostErr("dangling array reference");
      }
      if (index < 0 || index >= array->ArrayLength()) {
        machine_.ThrowGuest("java/lang/ArrayIndexOutOfBoundsException",
                            std::to_string(index));
        break;
      }
      if (instr.op == Op::kIastore) {
        array->ints[static_cast<size_t>(index)] = value.AsInt();
      } else if (instr.op == Op::kLastore) {
        array->longs[static_cast<size_t>(index)] = value.AsLong();
      } else {
        array->refs[static_cast<size_t>(index)] = value.AsRef();
      }
      break;
    }
    case Op::kPop:
      DVM_RETURN_IF_ERROR(underflow_guard(1));
      pop();
      break;
    case Op::kDup: {
      DVM_RETURN_IF_ERROR(underflow_guard(1));
      DVM_RETURN_IF_ERROR(push(base[f.sp - 1]));
      break;
    }
    case Op::kDupX1: {
      DVM_RETURN_IF_ERROR(underflow_guard(2));
      Value v1 = pop();
      Value v2 = pop();
      DVM_RETURN_IF_ERROR(push(v1));
      DVM_RETURN_IF_ERROR(push(v2));
      DVM_RETURN_IF_ERROR(push(v1));
      break;
    }
    case Op::kSwap: {
      DVM_RETURN_IF_ERROR(underflow_guard(2));
      std::swap(base[f.sp - 1], base[f.sp - 2]);
      break;
    }
    case Op::kIadd:
    case Op::kIsub:
    case Op::kImul:
    case Op::kIand:
    case Op::kIor:
    case Op::kIxor:
    case Op::kIshl:
    case Op::kIshr:
    case Op::kIushr: {
      DVM_RETURN_IF_ERROR(underflow_guard(2));
      int32_t b = pop().AsInt();
      int32_t a = pop().AsInt();
      int32_t r = 0;
      switch (instr.op) {
        case Op::kIadd:
          r = static_cast<int32_t>(static_cast<uint32_t>(a) + static_cast<uint32_t>(b));
          break;
        case Op::kIsub:
          r = static_cast<int32_t>(static_cast<uint32_t>(a) - static_cast<uint32_t>(b));
          break;
        case Op::kImul:
          r = static_cast<int32_t>(static_cast<uint32_t>(a) * static_cast<uint32_t>(b));
          break;
        case Op::kIand:
          r = a & b;
          break;
        case Op::kIor:
          r = a | b;
          break;
        case Op::kIxor:
          r = a ^ b;
          break;
        case Op::kIshl:
          r = static_cast<int32_t>(static_cast<uint32_t>(a) << (b & 31));
          break;
        case Op::kIshr:
          r = a >> (b & 31);
          break;
        case Op::kIushr:
          r = static_cast<int32_t>(static_cast<uint32_t>(a) >> (b & 31));
          break;
        default:
          break;
      }
      DVM_RETURN_IF_ERROR(push(Value::Int(r)));
      break;
    }
    case Op::kIdiv:
    case Op::kIrem: {
      DVM_RETURN_IF_ERROR(underflow_guard(2));
      int32_t b = pop().AsInt();
      int32_t a = pop().AsInt();
      if (b == 0) {
        machine_.ThrowGuest("java/lang/ArithmeticException", "/ by zero");
        break;
      }
      int64_t wide = instr.op == Op::kIdiv ? static_cast<int64_t>(a) / b
                                           : static_cast<int64_t>(a) % b;
      DVM_RETURN_IF_ERROR(push(Value::Int(static_cast<int32_t>(wide))));
      break;
    }
    case Op::kLadd:
    case Op::kLsub:
    case Op::kLmul: {
      DVM_RETURN_IF_ERROR(underflow_guard(2));
      uint64_t b = static_cast<uint64_t>(pop().AsLong());
      uint64_t a = static_cast<uint64_t>(pop().AsLong());
      uint64_t r = instr.op == Op::kLadd ? a + b : instr.op == Op::kLsub ? a - b : a * b;
      DVM_RETURN_IF_ERROR(push(Value::Long(static_cast<int64_t>(r))));
      break;
    }
    case Op::kLdiv:
    case Op::kLrem: {
      DVM_RETURN_IF_ERROR(underflow_guard(2));
      int64_t b = pop().AsLong();
      int64_t a = pop().AsLong();
      if (b == 0) {
        machine_.ThrowGuest("java/lang/ArithmeticException", "/ by zero");
        break;
      }
      // INT64_MIN / -1 overflows (hardware trap on x86); the JVM defines it as
      // INT64_MIN with remainder 0, and there is no wider type to widen into.
      if (a == INT64_MIN && b == -1) {
        DVM_RETURN_IF_ERROR(push(Value::Long(instr.op == Op::kLdiv ? INT64_MIN : 0)));
        break;
      }
      DVM_RETURN_IF_ERROR(push(Value::Long(instr.op == Op::kLdiv ? a / b : a % b)));
      break;
    }
    case Op::kIneg: {
      DVM_RETURN_IF_ERROR(underflow_guard(1));
      int32_t a = pop().AsInt();
      DVM_RETURN_IF_ERROR(push(Value::Int(static_cast<int32_t>(-static_cast<uint32_t>(a)))));
      break;
    }
    case Op::kLneg: {
      DVM_RETURN_IF_ERROR(underflow_guard(1));
      int64_t a = pop().AsLong();
      DVM_RETURN_IF_ERROR(push(Value::Long(static_cast<int64_t>(-static_cast<uint64_t>(a)))));
      break;
    }
    case Op::kIinc: {
      DVM_RETURN_IF_ERROR(local_guard(instr.a));
      Value& local = locals[static_cast<size_t>(instr.a)];
      // Unsigned add: iinc at INT32_MAX wraps per JVM semantics, not UB.
      local = Value::Int(static_cast<int32_t>(static_cast<uint32_t>(local.AsInt()) +
                                              static_cast<uint32_t>(instr.b)));
      break;
    }
    case Op::kI2l: {
      DVM_RETURN_IF_ERROR(underflow_guard(1));
      DVM_RETURN_IF_ERROR(push(Value::Long(pop().AsInt())));
      break;
    }
    case Op::kL2i: {
      DVM_RETURN_IF_ERROR(underflow_guard(1));
      DVM_RETURN_IF_ERROR(push(Value::Int(static_cast<int32_t>(pop().AsLong()))));
      break;
    }
    case Op::kLcmp: {
      DVM_RETURN_IF_ERROR(underflow_guard(2));
      int64_t b = pop().AsLong();
      int64_t a = pop().AsLong();
      DVM_RETURN_IF_ERROR(push(Value::Int(a < b ? -1 : a > b ? 1 : 0)));
      break;
    }
    case Op::kIfeq:
    case Op::kIfne:
    case Op::kIflt:
    case Op::kIfge:
    case Op::kIfgt:
    case Op::kIfle: {
      DVM_RETURN_IF_ERROR(underflow_guard(1));
      int32_t v = pop().AsInt();
      bool taken = false;
      switch (instr.op) {
        case Op::kIfeq:
          taken = v == 0;
          break;
        case Op::kIfne:
          taken = v != 0;
          break;
        case Op::kIflt:
          taken = v < 0;
          break;
        case Op::kIfge:
          taken = v >= 0;
          break;
        case Op::kIfgt:
          taken = v > 0;
          break;
        case Op::kIfle:
          taken = v <= 0;
          break;
        default:
          break;
      }
      if (taken) {
        uint32_t target = static_cast<uint32_t>(instr.a);
        if (target < f.pc) {
          ProfileBackedge(f.prepared);
        }
        f.pc = target;
      }
      break;
    }
    case Op::kIfIcmpeq:
    case Op::kIfIcmpne:
    case Op::kIfIcmplt:
    case Op::kIfIcmpge:
    case Op::kIfIcmpgt:
    case Op::kIfIcmple: {
      DVM_RETURN_IF_ERROR(underflow_guard(2));
      int32_t b = pop().AsInt();
      int32_t a = pop().AsInt();
      bool taken = false;
      switch (instr.op) {
        case Op::kIfIcmpeq:
          taken = a == b;
          break;
        case Op::kIfIcmpne:
          taken = a != b;
          break;
        case Op::kIfIcmplt:
          taken = a < b;
          break;
        case Op::kIfIcmpge:
          taken = a >= b;
          break;
        case Op::kIfIcmpgt:
          taken = a > b;
          break;
        case Op::kIfIcmple:
          taken = a <= b;
          break;
        default:
          break;
      }
      if (taken) {
        uint32_t target = static_cast<uint32_t>(instr.a);
        if (target < f.pc) {
          ProfileBackedge(f.prepared);
        }
        f.pc = target;
      }
      break;
    }
    case Op::kIfAcmpeq:
    case Op::kIfAcmpne: {
      DVM_RETURN_IF_ERROR(underflow_guard(2));
      ObjRef b = pop().AsRef();
      ObjRef a = pop().AsRef();
      bool taken = instr.op == Op::kIfAcmpeq ? a == b : a != b;
      if (taken) {
        uint32_t target = static_cast<uint32_t>(instr.a);
        if (target < f.pc) {
          ProfileBackedge(f.prepared);
        }
        f.pc = target;
      }
      break;
    }
    case Op::kIfnull:
    case Op::kIfnonnull: {
      DVM_RETURN_IF_ERROR(underflow_guard(1));
      bool is_null = pop().IsNullRef();
      if ((instr.op == Op::kIfnull) == is_null) {
        uint32_t target = static_cast<uint32_t>(instr.a);
        if (target < f.pc) {
          ProfileBackedge(f.prepared);
        }
        f.pc = target;
      }
      break;
    }
    case Op::kGoto: {
      uint32_t target = static_cast<uint32_t>(instr.a);
      if (target < f.pc) {
        ProfileBackedge(f.prepared);
      }
      f.pc = target;
      break;
    }
    case Op::kIreturn:
    case Op::kLreturn:
    case Op::kAreturn:
    case Op::kReturn: {
      Value result = Value::Null();
      bool has_result = instr.op != Op::kReturn;
      if (has_result) {
        DVM_RETURN_IF_ERROR(underflow_guard(1));
        result = pop();
      }
      frames_.pop_back();
      machine_.call_stack().pop_back();
      if (frames_.empty()) {
        return_value_ = result;
        has_return_value_ = has_result;
      } else if (has_result) {
        ExecFrame& caller = frames_.back();
        if (caller.sp >= caller.stack_limit) {
          return HostErr("operand stack overflow in " + caller.method->Id());
        }
        arena_[caller.sp++] = result;
      }
      break;
    }
    case Op::kGetstatic:
    case Op::kPutstatic: {
      InlineCache& ic = f.prepared->cache[f.pc - 1];
      DVM_ASSIGN_OR_RETURN(bool resolved, ResolveFieldSite(f, f.pc - 1, /*is_static=*/true));
      if (!resolved) {
        break;
      }
      if (instr.op == Op::kGetstatic) {
        DVM_RETURN_IF_ERROR(push(ic.field_owner->statics[ic.field_slot]));
      } else {
        DVM_RETURN_IF_ERROR(underflow_guard(1));
        ic.field_owner->statics[ic.field_slot] = pop();
      }
      break;
    }
    case Op::kGetfield:
    case Op::kPutfield: {
      InlineCache& ic = f.prepared->cache[f.pc - 1];
      Value value = Value::Null();
      if (instr.op == Op::kPutfield) {
        DVM_RETURN_IF_ERROR(underflow_guard(2));
        value = pop();
      } else {
        DVM_RETURN_IF_ERROR(underflow_guard(1));
      }
      Value obj_ref = pop();
      if (obj_ref.IsNullRef()) {
        machine_.ThrowGuest("java/lang/NullPointerException", "field access on null");
        break;
      }
      HeapObject* obj = machine_.heap().Get(obj_ref.AsRef());
      if (obj == nullptr || obj->kind != HeapObject::Kind::kInstance) {
        return HostErr("field access on non-instance");
      }
      DVM_ASSIGN_OR_RETURN(bool resolved, ResolveFieldSite(f, f.pc - 1, /*is_static=*/false));
      if (!resolved) {
        break;
      }
      if (ic.field_slot >= obj->fields.size()) {
        return HostErr("field slot out of range in " + f.method->Id());
      }
      if (instr.op == Op::kGetfield) {
        DVM_RETURN_IF_ERROR(push(obj->fields[ic.field_slot]));
      } else {
        obj->fields[ic.field_slot] = value;
      }
      break;
    }
    case Op::kInvokestatic:
    case Op::kInvokevirtual:
    case Op::kInvokespecial: {
      InlineCache& ic = f.prepared->cache[f.pc - 1];
      DVM_RETURN_IF_ERROR(Invoke(instr.op, static_cast<uint16_t>(instr.a), ic));
      break;
    }
    case Op::kNew: {
      DVM_ASSIGN_OR_RETURN(std::string class_name,
                           pool.ClassNameAt(static_cast<uint16_t>(instr.a)));
      DVM_ASSIGN_OR_RETURN(RuntimeClass * cls, machine_.registry().GetClass(class_name));
      DVM_RETURN_IF_ERROR(EnsureInitialized(cls));
      if (machine_.HasPendingException()) {
        break;
      }
      auto obj = machine_.AllocInstance(cls);
      if (!obj.ok()) {
        machine_.ThrowGuest("java/lang/OutOfMemoryError", obj.error().message);
        break;
      }
      DVM_RETURN_IF_ERROR(push(Value::Ref(obj.value())));
      break;
    }
    case Op::kNewarray: {
      DVM_RETURN_IF_ERROR(underflow_guard(1));
      int32_t length = pop().AsInt();
      if (length < 0) {
        machine_.ThrowGuest("java/lang/NegativeArraySizeException", std::to_string(length));
        break;
      }
      auto arr = instr.a == static_cast<int>(ArrayKind::kLong)
                     ? machine_.AllocLongArray(length)
                     : machine_.AllocIntArray(length);
      if (!arr.ok()) {
        machine_.ThrowGuest("java/lang/OutOfMemoryError", arr.error().message);
        break;
      }
      DVM_RETURN_IF_ERROR(push(Value::Ref(arr.value())));
      break;
    }
    case Op::kAnewarray: {
      DVM_ASSIGN_OR_RETURN(std::string element,
                           pool.ClassNameAt(static_cast<uint16_t>(instr.a)));
      DVM_RETURN_IF_ERROR(underflow_guard(1));
      int32_t length = pop().AsInt();
      if (length < 0) {
        machine_.ThrowGuest("java/lang/NegativeArraySizeException", std::to_string(length));
        break;
      }
      auto arr = machine_.AllocRefArray("[" + DescriptorFromClassName(element), 0, length);
      if (!arr.ok()) {
        machine_.ThrowGuest("java/lang/OutOfMemoryError", arr.error().message);
        break;
      }
      DVM_RETURN_IF_ERROR(push(Value::Ref(arr.value())));
      break;
    }
    case Op::kArraylength: {
      DVM_RETURN_IF_ERROR(underflow_guard(1));
      Value arr_ref = pop();
      if (arr_ref.IsNullRef()) {
        machine_.ThrowGuest("java/lang/NullPointerException", "arraylength on null");
        break;
      }
      const HeapObject* arr = machine_.heap().Get(arr_ref.AsRef());
      if (arr == nullptr || arr->ArrayLength() < 0) {
        return HostErr("arraylength on non-array");
      }
      DVM_RETURN_IF_ERROR(push(Value::Int(arr->ArrayLength())));
      break;
    }
    case Op::kAthrow: {
      DVM_RETURN_IF_ERROR(underflow_guard(1));
      Value exception = pop();
      if (exception.IsNullRef()) {
        machine_.ThrowGuest("java/lang/NullPointerException", "athrow on null");
        break;
      }
      machine_.counters().exceptions_thrown++;
      machine_.SetPendingExceptionObject(exception.AsRef());
      break;
    }
    case Op::kCheckcast: {
      DVM_ASSIGN_OR_RETURN(std::string target,
                           pool.ClassNameAt(static_cast<uint16_t>(instr.a)));
      DVM_RETURN_IF_ERROR(underflow_guard(1));
      Value v = base[f.sp - 1];
      if (!v.IsNullRef()) {
        const HeapObject* obj = machine_.heap().Get(v.AsRef());
        if (obj == nullptr) {
          return HostErr("checkcast on dangling reference");
        }
        auto is_sub = machine_.registry().IsSubclass(obj->class_name, target);
        if (!is_sub.ok() || !is_sub.value()) {
          pop();
          machine_.ThrowGuest("java/lang/ClassCastException",
                              obj->class_name + " -> " + target);
        }
      }
      break;
    }
    case Op::kInstanceof: {
      DVM_ASSIGN_OR_RETURN(std::string target,
                           pool.ClassNameAt(static_cast<uint16_t>(instr.a)));
      DVM_RETURN_IF_ERROR(underflow_guard(1));
      Value v = pop();
      if (v.IsNullRef()) {
        DVM_RETURN_IF_ERROR(push(Value::Int(0)));
        break;
      }
      const HeapObject* obj = machine_.heap().Get(v.AsRef());
      if (obj == nullptr) {
        return HostErr("instanceof on dangling reference");
      }
      auto is_sub = machine_.registry().IsSubclass(obj->class_name, target);
      DVM_RETURN_IF_ERROR(push(Value::Int(is_sub.ok() && is_sub.value() ? 1 : 0)));
      break;
    }
    case Op::kMonitorenter:
    case Op::kMonitorexit: {
      DVM_RETURN_IF_ERROR(underflow_guard(1));
      Value v = pop();
      if (v.IsNullRef()) {
        machine_.ThrowGuest("java/lang/NullPointerException", "monitor on null");
        break;
      }
      // Single simulated thread: always uncontended, but acquisition itself
      // is far from free (the point of the sync-elision optimizer).
      machine_.AddNanos(machine_.config().cost.nanos_per_monitor_op);
      break;
    }
    case Op::kLdcQuick:
    case Op::kGetfieldQuick:
    case Op::kPutfieldQuick:
    case Op::kGetstaticQuick:
    case Op::kPutstaticQuick:
    case Op::kInvokevirtualQuick:
    case Op::kInvokespecialQuick:
    case Op::kInvokestaticQuick:
    case Op::kNewQuick:
    case Op::kAnewarrayQuick:
    case Op::kCheckcastQuick:
    case Op::kInstanceofQuick:
      // The reference engine never rewrites sites, and prepared code is
      // per-machine, so quick forms cannot legitimately appear here.
      return HostErr("quick opcode reached the reference engine in " + f.method->Id());
  }
  return Status::Ok();
}

Status Interpreter::InvokeResolved(RuntimeClass* owner, const MethodInfo* method,
                                   uint32_t argc) {
  ExecFrame& caller = frames_.back();
  if (method->IsAbstract()) {
    caller.sp -= argc;
    machine_.ThrowGuest("java/lang/AbstractMethodError", owner->name + "." + method->Id());
    return Status::Ok();
  }
  if (method->IsNative()) {
    std::vector<Value> args(arena_.begin() + static_cast<ptrdiff_t>(caller.sp - argc),
                            arena_.begin() + static_cast<ptrdiff_t>(caller.sp));
    caller.sp -= argc;
    return CallNative(owner, method, std::move(args));
  }
  return PushFrameSliced(owner, method, argc);
}

Status Interpreter::QuickInvokeSlow(Op op, uint32_t site_ix) {
  ExecFrame& caller = frames_.back();  // sp/pc synced by the caller
  Instr& site = caller.prepared->code[site_ix];
  InlineCache& ic = caller.prepared->cache[site_ix];
  const ConstantPool& pool = caller.cls->file.pool();
  uint16_t cp_index = static_cast<uint16_t>(site.a);

  if (ic.arg_count < 0) {
    DVM_ASSIGN_OR_RETURN(MemberRef ref, pool.MethodRefAt(cp_index));
    DVM_ASSIGN_OR_RETURN(MethodSignature sig, ParseMethodDescriptor(ref.descriptor));
    ic.arg_count = sig.ArgSlots() + (op == Op::kInvokestatic ? 0 : 1);
    ic.has_result = !sig.ReturnsVoid();
  }
  uint32_t argc = static_cast<uint32_t>(ic.arg_count);
  if (caller.sp - caller.stack_base < argc) {
    return HostErr("operand stack underflow on invoke in " + caller.method->Id());
  }
  // Args stay live on the caller's stack (rooted) throughout resolution and
  // any <clinit> it triggers; they are only consumed at the actual transfer.
  const Value* args = arena_.data() + (caller.sp - argc);

  if (op != Op::kInvokestatic && args[0].IsNullRef()) {
    caller.sp -= argc;
    machine_.ThrowGuest("java/lang/NullPointerException", "invoke on null receiver");
    return Status::Ok();
  }

  RuntimeClass* owner = nullptr;
  const MethodInfo* method = nullptr;

  if (op == Op::kInvokevirtual) {
    const HeapObject* receiver = machine_.heap().Get(args[0].AsRef());
    if (receiver == nullptr) {
      return HostErr("dangling receiver reference");
    }
    // Any slow-path entry (cold or after a quickened fast-path failure) is a
    // monomorphic cache miss; a receiver symbol change is the transition the
    // megamorphic threshold watches.
    ic.misses++;
    if (ic.receiver_sym != 0 && ic.receiver_sym != receiver->class_sym) {
      ic.transitions++;
    }
    DVM_ASSIGN_OR_RETURN(MemberRef ref, pool.MethodRefAt(cp_index));
    uint32_t method_sym = InternSymbol(ref.member_name);
    uint32_t desc_sym = InternSymbol(ref.descriptor);
    std::string dynamic_class = receiver->class_name;
    if (!dynamic_class.empty() && dynamic_class[0] == '[') {
      dynamic_class = "java/lang/Object";
    }
    DVM_ASSIGN_OR_RETURN(RuntimeClass * dispatch_cls,
                         machine_.registry().GetClass(dynamic_class));
    const RuntimeClass::MethodEntry* entry =
        dispatch_cls->FindMethodEntry(method_sym, desc_sym);
    if (entry == nullptr) {
      // Fall back to the static type (e.g. interface-typed receivers).
      DVM_ASSIGN_OR_RETURN(RuntimeClass * ref_cls,
                           machine_.registry().GetClass(ref.class_name));
      entry = ref_cls->FindMethodEntry(method_sym, desc_sym);
    }
    if (entry == nullptr) {
      caller.sp -= argc;
      machine_.ThrowGuest("java/lang/NoSuchMethodError", ref.ToString());
      return Status::Ok();
    }
    owner = entry->owner;
    method = entry->method;
    if (method->IsStatic()) {
      caller.sp -= argc;
      machine_.ThrowGuest("java/lang/IncompatibleClassChangeError",
                          ref.ToString() + " is static");
      return Status::Ok();
    }
    // Install / refresh the monomorphic cache entry (last receiver type wins).
    ic.invoke_owner = owner;
    ic.invoke_method = method;
    ic.receiver_class = receiver->class_name;
    ic.receiver_sym = receiver->class_sym;
    if (site.op != Op::kInvokevirtualQuick) {
      site.op = Op::kInvokevirtualQuick;
      machine_.counters().quickened_sites++;
    }
  } else {
    DVM_ASSIGN_OR_RETURN(MemberRef ref, pool.MethodRefAt(cp_index));
    DVM_ASSIGN_OR_RETURN(RuntimeClass * ref_cls,
                         machine_.registry().GetClass(ref.class_name));
    const RuntimeClass::MethodEntry* entry =
        ref_cls->FindMethodEntry(InternSymbol(ref.member_name), InternSymbol(ref.descriptor));
    if (entry == nullptr) {
      caller.sp -= argc;
      machine_.ThrowGuest("java/lang/NoSuchMethodError", ref.ToString());
      return Status::Ok();
    }
    owner = entry->owner;
    method = entry->method;
    if (op == Op::kInvokestatic) {
      if (!method->IsStatic()) {
        caller.sp -= argc;
        machine_.ThrowGuest("java/lang/IncompatibleClassChangeError",
                            ref.ToString() + " is not static");
        return Status::Ok();
      }
      DVM_RETURN_IF_ERROR(EnsureInitialized(owner));
      if (machine_.HasPendingException()) {
        caller.sp -= argc;
        return Status::Ok();
      }
      ic.invoke_owner = owner;
      ic.invoke_method = method;
      // Rewritten only after initialization succeeds: the quick form implies
      // an initialized owner.
      site.op = Op::kInvokestaticQuick;
      machine_.counters().quickened_sites++;
    } else {
      if (method->IsStatic()) {
        caller.sp -= argc;
        machine_.ThrowGuest("java/lang/IncompatibleClassChangeError",
                            ref.ToString() + " is static");
        return Status::Ok();
      }
      ic.invoke_owner = owner;
      ic.invoke_method = method;
      site.op = Op::kInvokespecialQuick;
      machine_.counters().quickened_sites++;
    }
  }
  return InvokeResolved(owner, method, argc);
}

// X-macro over every opcode the quickened engine handles; used to populate the
// computed-goto jump table. A missing handler label is a compile error.
#define DVM_INTERP_OPS(X)                                                      \
  X(kNop) X(kAconstNull) X(kIconst0) X(kIconst1) X(kBipush) X(kSipush)         \
  X(kLdc) X(kIload) X(kLload) X(kAload) X(kIstore) X(kLstore) X(kAstore)       \
  X(kIaload) X(kLaload) X(kAaload) X(kIastore) X(kLastore) X(kAastore)         \
  X(kPop) X(kDup) X(kDupX1) X(kSwap)                                           \
  X(kIadd) X(kIsub) X(kImul) X(kIand) X(kIor) X(kIxor) X(kIshl) X(kIshr)       \
  X(kIushr) X(kIdiv) X(kIrem) X(kLadd) X(kLsub) X(kLmul) X(kLdiv) X(kLrem)     \
  X(kIneg) X(kLneg) X(kIinc) X(kI2l) X(kL2i) X(kLcmp)                          \
  X(kIfeq) X(kIfne) X(kIflt) X(kIfge) X(kIfgt) X(kIfle)                        \
  X(kIfIcmpeq) X(kIfIcmpne) X(kIfIcmplt) X(kIfIcmpge) X(kIfIcmpgt)             \
  X(kIfIcmple) X(kIfAcmpeq) X(kIfAcmpne) X(kIfnull) X(kIfnonnull) X(kGoto)     \
  X(kIreturn) X(kLreturn) X(kAreturn) X(kReturn)                               \
  X(kGetstatic) X(kPutstatic) X(kGetfield) X(kPutfield)                        \
  X(kInvokestatic) X(kInvokevirtual) X(kInvokespecial)                         \
  X(kNew) X(kNewarray) X(kAnewarray) X(kArraylength) X(kAthrow)                \
  X(kCheckcast) X(kInstanceof) X(kMonitorenter) X(kMonitorexit)                \
  X(kLdcQuick) X(kGetfieldQuick) X(kPutfieldQuick) X(kGetstaticQuick)          \
  X(kPutstaticQuick) X(kInvokevirtualQuick) X(kInvokespecialQuick)             \
  X(kInvokestaticQuick) X(kNewQuick) X(kAnewarrayQuick) X(kCheckcastQuick)     \
  X(kInstanceofQuick)

// The hot loop keeps pc, sp and the frame's arena pointers in locals; QSYNC
// writes sp/pc back to the frame before anything that can GC, throw, push or
// pop frames. QTHROW and the invoke/return handlers exit back to Loop(), which
// owns exception dispatch and outcome extraction for both engines.
#define QSYNC()                                   \
  do {                                            \
    f->sp = static_cast<uint32_t>(sp - base);     \
    f->pc = pc;                                   \
  } while (0)
#define QHOST(msg)   \
  do {               \
    QSYNC();         \
    return HostErr(msg); \
  } while (0)
#define QTHROW(cls_, msg_)                \
  do {                                    \
    QSYNC();                              \
    machine_.ThrowGuest((cls_), (msg_));  \
    return Status::Ok();                  \
  } while (0)
#define QNEED(n)                                                              \
  do {                                                                        \
    if (sp - floor < static_cast<ptrdiff_t>(n))                               \
      QHOST("operand stack underflow in " + f->method->Id());                 \
  } while (0)
#define QROOM()                                                               \
  do {                                                                        \
    if (sp >= ceil) QHOST("operand stack overflow in " + f->method->Id());    \
  } while (0)
#define QLOCAL(ix)                                                            \
  do {                                                                        \
    if (static_cast<uint32_t>(ix) >= max_locals)                              \
      QHOST("local index out of range in " + f->method->Id());                \
  } while (0)
// Taken branch: pc is already past the branch instruction, so a target below
// it is a backward edge — the loop-trip evidence the tier-up profile counts,
// and a profiler poll point (mirrored in the reference engine's Step).
#define QBRANCH(target_expr)                                                  \
  do {                                                                        \
    uint32_t target_ = (target_expr);                                         \
    if (target_ < pc) {                                                       \
      ProfileBackedge(f->prepared);                                           \
      /* OSR tier-up: a branch target is always a span head in compiled */    \
      /* code, so a hot loop can enter its compiled form mid-execution. */    \
      if (tier_osr_threshold_ != 0 &&                                         \
          f->prepared->backedges >= tier_osr_threshold_) {                    \
        QSYNC();                                                              \
        f->pc = target_;                                                      \
        if (MaybeOsr(*f)) return Status::Ok();                                \
      }                                                                       \
    }                                                                         \
    pc = target_;                                                             \
  } while (0)

Status Interpreter::RunQuick() {
  RuntimeCounters& counters = machine_.counters();
  const uint64_t budget = machine_.config().max_instructions;

  ExecFrame* f = nullptr;
  const Instr* code = nullptr;
  uint32_t code_size = 0;
  Value* base = nullptr;
  Value* locals = nullptr;
  Value* floor = nullptr;
  Value* ceil = nullptr;
  Value* sp = nullptr;
  uint32_t pc = 0;
  uint32_t max_locals = 0;
  uint64_t step_nanos = 0;
  Instr inst;

  auto reload = [&]() {
    f = &frames_.back();
    code = f->prepared->code.data();
    code_size = static_cast<uint32_t>(f->prepared->code.size());
    base = arena_.data();
    locals = base + f->locals_base;
    floor = base + f->stack_base;
    ceil = base + f->stack_limit;
    sp = base + f->sp;
    pc = f->pc;
    max_locals = f->method->code->max_locals;
    step_nanos = f->prepared->compiled ? machine_.config().cost.nanos_per_instr_compiled
                                       : machine_.config().cost.nanos_per_instr;
  };
  reload();

#if DVM_INTERP_COMPUTED_GOTO
  // Per-call jump table of label addresses (function-local, so no shared
  // mutable state for TSan to worry about). Unlisted byte values fall through
  // to the unhandled-opcode exit.
  const void* jump[256];
  for (int i = 0; i < 256; i++) {
    jump[i] = &&L_unhandled;
  }
#define DVM_FILL(name) jump[static_cast<uint8_t>(Op::name)] = &&L_##name;
  DVM_INTERP_OPS(DVM_FILL)
#undef DVM_FILL

// Accounting order matches the reference engine exactly: budget check, pc
// escape check, then the instruction is counted and charged.
#define QFETCH()                                                              \
  do {                                                                        \
    if (counters.instructions >= budget) QHOST("instruction budget exceeded"); \
    if (pc >= code_size) QHOST("pc escaped method body in " + f->method->Id()); \
    counters.instructions++;                                                  \
    machine_.AddNanos(step_nanos);                                            \
    inst = code[pc];                                                          \
    pc++;                                                                     \
    goto* jump[static_cast<uint8_t>(inst.op)];                                \
  } while (0)
#define OP(name) L_##name:
#define NEXT() QFETCH()

  QFETCH();
#else
#define OP(name) case Op::name:
#define NEXT() continue

  for (;;) {
    if (counters.instructions >= budget) QHOST("instruction budget exceeded");
    if (pc >= code_size) QHOST("pc escaped method body in " + f->method->Id());
    counters.instructions++;
    machine_.AddNanos(step_nanos);
    inst = code[pc];
    pc++;
    switch (inst.op) {
#endif

  OP(kNop) {} NEXT();

  OP(kAconstNull) {
    QROOM();
    *sp++ = Value::Null();
  } NEXT();

  OP(kIconst0) {
    QROOM();
    *sp++ = Value::Int(0);
  } NEXT();

  OP(kIconst1) {
    QROOM();
    *sp++ = Value::Int(1);
  } NEXT();

  OP(kBipush) OP(kSipush) {
    QROOM();
    *sp++ = Value::Int(inst.a);
  } NEXT();

  OP(kLdc) {
    // Slow path: materialize the constant once, park it in the cache slot and
    // rewrite the site to ldc_quick.
    const ConstantPool& pool = f->cls->file.pool();
    uint16_t index = static_cast<uint16_t>(inst.a);
    Value v;
    if (pool.HasTag(index, CpTag::kInteger)) {
      v = Value::Int(pool.IntegerAt(index).value());
    } else if (pool.HasTag(index, CpTag::kLong)) {
      v = Value::Long(pool.LongAt(index).value());
    } else if (pool.HasTag(index, CpTag::kString)) {
      QSYNC();  // interning may allocate and collect
      auto str = machine_.InternString(pool.StringAt(index).value());
      if (!str.ok()) {
        return str.error();
      }
      v = Value::Ref(str.value());
    } else {
      QHOST("ldc on unsupported constant");
    }
    InlineCache& ic = f->prepared->cache[pc - 1];
    ic.const_value = v;  // interned strings are machine roots; safe to cache
    f->prepared->code[pc - 1].op = Op::kLdcQuick;
    counters.quickened_sites++;
    QROOM();
    *sp++ = v;
  } NEXT();

  OP(kLdcQuick) {
    QROOM();
    *sp++ = f->prepared->cache[pc - 1].const_value;
  } NEXT();

  OP(kIload) OP(kLload) OP(kAload) {
    QLOCAL(inst.a);
    QROOM();
    *sp++ = locals[static_cast<size_t>(inst.a)];
  } NEXT();

  OP(kIstore) OP(kLstore) OP(kAstore) {
    QNEED(1);
    QLOCAL(inst.a);
    locals[static_cast<size_t>(inst.a)] = *--sp;
  } NEXT();

  OP(kIaload) OP(kLaload) OP(kAaload) {
    QNEED(2);
    int32_t index = (--sp)->AsInt();
    Value array_ref = *--sp;
    if (array_ref.IsNullRef()) {
      QTHROW("java/lang/NullPointerException", "array load on null");
    }
    HeapObject* array = machine_.heap().Get(array_ref.AsRef());
    if (array == nullptr) {
      QHOST("dangling array reference");
    }
    if (index < 0 || index >= array->ArrayLength()) {
      QTHROW("java/lang/ArrayIndexOutOfBoundsException", std::to_string(index));
    }
    if (inst.op == Op::kIaload) {
      *sp++ = Value::Int(array->ints[static_cast<size_t>(index)]);
    } else if (inst.op == Op::kLaload) {
      *sp++ = Value::Long(array->longs[static_cast<size_t>(index)]);
    } else {
      *sp++ = Value::Ref(array->refs[static_cast<size_t>(index)]);
    }
  } NEXT();

  OP(kIastore) OP(kLastore) OP(kAastore) {
    QNEED(3);
    Value value = *--sp;
    int32_t index = (--sp)->AsInt();
    Value array_ref = *--sp;
    if (array_ref.IsNullRef()) {
      QTHROW("java/lang/NullPointerException", "array store on null");
    }
    HeapObject* array = machine_.heap().Get(array_ref.AsRef());
    if (array == nullptr) {
      QHOST("dangling array reference");
    }
    if (index < 0 || index >= array->ArrayLength()) {
      QTHROW("java/lang/ArrayIndexOutOfBoundsException", std::to_string(index));
    }
    if (inst.op == Op::kIastore) {
      array->ints[static_cast<size_t>(index)] = value.AsInt();
    } else if (inst.op == Op::kLastore) {
      array->longs[static_cast<size_t>(index)] = value.AsLong();
    } else {
      array->refs[static_cast<size_t>(index)] = value.AsRef();
    }
  } NEXT();

  OP(kPop) {
    QNEED(1);
    --sp;
  } NEXT();

  OP(kDup) {
    QNEED(1);
    QROOM();
    *sp = sp[-1];
    sp++;
  } NEXT();

  OP(kDupX1) {
    QNEED(2);
    QROOM();
    Value v1 = sp[-1];
    Value v2 = sp[-2];
    sp[-2] = v1;
    sp[-1] = v2;
    *sp++ = v1;
  } NEXT();

  OP(kSwap) {
    QNEED(2);
    std::swap(sp[-1], sp[-2]);
  } NEXT();

  OP(kIadd) OP(kIsub) OP(kImul) OP(kIand) OP(kIor) OP(kIxor) OP(kIshl)
  OP(kIshr) OP(kIushr) {
    QNEED(2);
    int32_t b = (--sp)->AsInt();
    int32_t a = (--sp)->AsInt();
    int32_t r = 0;
    switch (inst.op) {
      case Op::kIadd:
        r = static_cast<int32_t>(static_cast<uint32_t>(a) + static_cast<uint32_t>(b));
        break;
      case Op::kIsub:
        r = static_cast<int32_t>(static_cast<uint32_t>(a) - static_cast<uint32_t>(b));
        break;
      case Op::kImul:
        r = static_cast<int32_t>(static_cast<uint32_t>(a) * static_cast<uint32_t>(b));
        break;
      case Op::kIand:
        r = a & b;
        break;
      case Op::kIor:
        r = a | b;
        break;
      case Op::kIxor:
        r = a ^ b;
        break;
      case Op::kIshl:
        r = static_cast<int32_t>(static_cast<uint32_t>(a) << (b & 31));
        break;
      case Op::kIshr:
        r = a >> (b & 31);
        break;
      case Op::kIushr:
        r = static_cast<int32_t>(static_cast<uint32_t>(a) >> (b & 31));
        break;
      default:
        break;
    }
    *sp++ = Value::Int(r);
  } NEXT();

  OP(kIdiv) OP(kIrem) {
    QNEED(2);
    int32_t b = (--sp)->AsInt();
    int32_t a = (--sp)->AsInt();
    if (b == 0) {
      QTHROW("java/lang/ArithmeticException", "/ by zero");
    }
    int64_t wide = inst.op == Op::kIdiv ? static_cast<int64_t>(a) / b
                                        : static_cast<int64_t>(a) % b;
    *sp++ = Value::Int(static_cast<int32_t>(wide));
  } NEXT();

  OP(kLadd) OP(kLsub) OP(kLmul) {
    QNEED(2);
    uint64_t b = static_cast<uint64_t>((--sp)->AsLong());
    uint64_t a = static_cast<uint64_t>((--sp)->AsLong());
    uint64_t r = inst.op == Op::kLadd ? a + b : inst.op == Op::kLsub ? a - b : a * b;
    *sp++ = Value::Long(static_cast<int64_t>(r));
  } NEXT();

  OP(kLdiv) OP(kLrem) {
    QNEED(2);
    int64_t b = (--sp)->AsLong();
    int64_t a = (--sp)->AsLong();
    if (b == 0) {
      QTHROW("java/lang/ArithmeticException", "/ by zero");
    }
    // INT64_MIN / -1 overflows (hardware trap on x86); the JVM defines it as
    // INT64_MIN with remainder 0, and there is no wider type to widen into.
    if (a == INT64_MIN && b == -1) {
      *sp++ = Value::Long(inst.op == Op::kLdiv ? INT64_MIN : 0);
    } else {
      *sp++ = Value::Long(inst.op == Op::kLdiv ? a / b : a % b);
    }
  } NEXT();

  OP(kIneg) {
    QNEED(1);
    sp[-1] = Value::Int(static_cast<int32_t>(-static_cast<uint32_t>(sp[-1].AsInt())));
  } NEXT();

  OP(kLneg) {
    QNEED(1);
    sp[-1] = Value::Long(static_cast<int64_t>(-static_cast<uint64_t>(sp[-1].AsLong())));
  } NEXT();

  OP(kIinc) {
    QLOCAL(inst.a);
    Value& local = locals[static_cast<size_t>(inst.a)];
    // Unsigned add: iinc at INT32_MAX wraps per JVM semantics, not UB.
    local = Value::Int(static_cast<int32_t>(static_cast<uint32_t>(local.AsInt()) +
                                            static_cast<uint32_t>(inst.b)));
  } NEXT();

  OP(kI2l) {
    QNEED(1);
    sp[-1] = Value::Long(sp[-1].AsInt());
  } NEXT();

  OP(kL2i) {
    QNEED(1);
    sp[-1] = Value::Int(static_cast<int32_t>(sp[-1].AsLong()));
  } NEXT();

  OP(kLcmp) {
    QNEED(2);
    int64_t b = (--sp)->AsLong();
    int64_t a = (--sp)->AsLong();
    *sp++ = Value::Int(a < b ? -1 : a > b ? 1 : 0);
  } NEXT();

  OP(kIfeq) OP(kIfne) OP(kIflt) OP(kIfge) OP(kIfgt) OP(kIfle) {
    QNEED(1);
    int32_t v = (--sp)->AsInt();
    bool taken = false;
    switch (inst.op) {
      case Op::kIfeq:
        taken = v == 0;
        break;
      case Op::kIfne:
        taken = v != 0;
        break;
      case Op::kIflt:
        taken = v < 0;
        break;
      case Op::kIfge:
        taken = v >= 0;
        break;
      case Op::kIfgt:
        taken = v > 0;
        break;
      case Op::kIfle:
        taken = v <= 0;
        break;
      default:
        break;
    }
    if (taken) {
      QBRANCH(static_cast<uint32_t>(inst.a));
    }
  } NEXT();

  OP(kIfIcmpeq) OP(kIfIcmpne) OP(kIfIcmplt) OP(kIfIcmpge) OP(kIfIcmpgt)
  OP(kIfIcmple) {
    QNEED(2);
    int32_t b = (--sp)->AsInt();
    int32_t a = (--sp)->AsInt();
    bool taken = false;
    switch (inst.op) {
      case Op::kIfIcmpeq:
        taken = a == b;
        break;
      case Op::kIfIcmpne:
        taken = a != b;
        break;
      case Op::kIfIcmplt:
        taken = a < b;
        break;
      case Op::kIfIcmpge:
        taken = a >= b;
        break;
      case Op::kIfIcmpgt:
        taken = a > b;
        break;
      case Op::kIfIcmple:
        taken = a <= b;
        break;
      default:
        break;
    }
    if (taken) {
      QBRANCH(static_cast<uint32_t>(inst.a));
    }
  } NEXT();

  OP(kIfAcmpeq) OP(kIfAcmpne) {
    QNEED(2);
    ObjRef b = (--sp)->AsRef();
    ObjRef a = (--sp)->AsRef();
    bool taken = inst.op == Op::kIfAcmpeq ? a == b : a != b;
    if (taken) {
      QBRANCH(static_cast<uint32_t>(inst.a));
    }
  } NEXT();

  OP(kIfnull) OP(kIfnonnull) {
    QNEED(1);
    bool is_null = (--sp)->IsNullRef();
    if ((inst.op == Op::kIfnull) == is_null) {
      QBRANCH(static_cast<uint32_t>(inst.a));
    }
  } NEXT();

  OP(kGoto) {
    QBRANCH(static_cast<uint32_t>(inst.a));
  } NEXT();

  OP(kIreturn) OP(kLreturn) OP(kAreturn) {
    QNEED(1);
    Value result = *--sp;
    frames_.pop_back();
    machine_.call_stack().pop_back();
    if (frames_.empty()) {
      return_value_ = result;
      has_return_value_ = true;
      return Status::Ok();
    }
    ExecFrame& caller = frames_.back();
    if (caller.sp >= caller.stack_limit) {
      return HostErr("operand stack overflow in " + caller.method->Id());
    }
    arena_[caller.sp++] = result;
    if (caller.compiled_active) {
      return Status::Ok();  // resume the compiled caller via Loop
    }
    reload();
  } NEXT();

  OP(kReturn) {
    frames_.pop_back();
    machine_.call_stack().pop_back();
    if (frames_.empty()) {
      return_value_ = Value::Null();
      has_return_value_ = false;
      return Status::Ok();
    }
    if (frames_.back().compiled_active) {
      return Status::Ok();  // resume the compiled caller via Loop
    }
    reload();
  } NEXT();

  OP(kGetstatic) {
    QSYNC();  // resolution may run <clinit>
    DVM_ASSIGN_OR_RETURN(bool resolved, ResolveFieldSite(*f, pc - 1, /*is_static=*/true));
    if (!resolved) {
      return Status::Ok();
    }
    f->prepared->code[pc - 1].op = Op::kGetstaticQuick;
    counters.quickened_sites++;
    InlineCache& ic = f->prepared->cache[pc - 1];
    QROOM();
    *sp++ = ic.field_owner->statics[ic.field_slot];
  } NEXT();

  OP(kGetstaticQuick) {
    const InlineCache& ic = f->prepared->cache[pc - 1];
    QROOM();
    *sp++ = ic.field_owner->statics[ic.field_slot];
  } NEXT();

  OP(kPutstatic) {
    QSYNC();  // resolution may run <clinit>; the value stays rooted on-stack
    DVM_ASSIGN_OR_RETURN(bool resolved, ResolveFieldSite(*f, pc - 1, /*is_static=*/true));
    if (!resolved) {
      return Status::Ok();
    }
    f->prepared->code[pc - 1].op = Op::kPutstaticQuick;
    counters.quickened_sites++;
    InlineCache& ic = f->prepared->cache[pc - 1];
    QNEED(1);
    ic.field_owner->statics[ic.field_slot] = *--sp;
  } NEXT();

  OP(kPutstaticQuick) {
    const InlineCache& ic = f->prepared->cache[pc - 1];
    QNEED(1);
    ic.field_owner->statics[ic.field_slot] = *--sp;
  } NEXT();

  OP(kGetfield) {
    QNEED(1);
    Value obj_ref = *--sp;
    if (obj_ref.IsNullRef()) {
      QTHROW("java/lang/NullPointerException", "field access on null");
    }
    HeapObject* obj = machine_.heap().Get(obj_ref.AsRef());
    if (obj == nullptr || obj->kind != HeapObject::Kind::kInstance) {
      QHOST("field access on non-instance");
    }
    QSYNC();
    DVM_ASSIGN_OR_RETURN(bool resolved, ResolveFieldSite(*f, pc - 1, /*is_static=*/false));
    if (!resolved) {
      return Status::Ok();
    }
    InlineCache& ic = f->prepared->cache[pc - 1];
    Instr& site = f->prepared->code[pc - 1];
    site.op = Op::kGetfieldQuick;
    site.a = static_cast<int32_t>(ic.field_slot);  // resolved slot in-line
    counters.quickened_sites++;
    if (ic.field_slot >= obj->fields.size()) {
      QHOST("field slot out of range in " + f->method->Id());
    }
    *sp++ = obj->fields[ic.field_slot];
  } NEXT();

  OP(kGetfieldQuick) {
    QNEED(1);
    Value obj_ref = *--sp;
    if (obj_ref.IsNullRef()) {
      QTHROW("java/lang/NullPointerException", "field access on null");
    }
    HeapObject* obj = machine_.heap().Get(obj_ref.AsRef());
    if (obj == nullptr || obj->kind != HeapObject::Kind::kInstance) {
      QHOST("field access on non-instance");
    }
    uint32_t slot = static_cast<uint32_t>(inst.a);
    if (slot >= obj->fields.size()) {
      QHOST("field slot out of range in " + f->method->Id());
    }
    *sp++ = obj->fields[slot];
  } NEXT();

  OP(kPutfield) {
    QNEED(2);
    Value value = *--sp;
    Value obj_ref = *--sp;
    if (obj_ref.IsNullRef()) {
      QTHROW("java/lang/NullPointerException", "field access on null");
    }
    HeapObject* obj = machine_.heap().Get(obj_ref.AsRef());
    if (obj == nullptr || obj->kind != HeapObject::Kind::kInstance) {
      QHOST("field access on non-instance");
    }
    QSYNC();
    DVM_ASSIGN_OR_RETURN(bool resolved, ResolveFieldSite(*f, pc - 1, /*is_static=*/false));
    if (!resolved) {
      return Status::Ok();
    }
    InlineCache& ic = f->prepared->cache[pc - 1];
    Instr& site = f->prepared->code[pc - 1];
    site.op = Op::kPutfieldQuick;
    site.a = static_cast<int32_t>(ic.field_slot);
    counters.quickened_sites++;
    if (ic.field_slot >= obj->fields.size()) {
      QHOST("field slot out of range in " + f->method->Id());
    }
    obj->fields[ic.field_slot] = value;
  } NEXT();

  OP(kPutfieldQuick) {
    QNEED(2);
    Value value = *--sp;
    Value obj_ref = *--sp;
    if (obj_ref.IsNullRef()) {
      QTHROW("java/lang/NullPointerException", "field access on null");
    }
    HeapObject* obj = machine_.heap().Get(obj_ref.AsRef());
    if (obj == nullptr || obj->kind != HeapObject::Kind::kInstance) {
      QHOST("field access on non-instance");
    }
    uint32_t slot = static_cast<uint32_t>(inst.a);
    if (slot >= obj->fields.size()) {
      QHOST("field slot out of range in " + f->method->Id());
    }
    obj->fields[slot] = value;
  } NEXT();

  OP(kInvokestatic) OP(kInvokevirtual) OP(kInvokespecial) {
    QSYNC();
    DVM_RETURN_IF_ERROR(QuickInvokeSlow(inst.op, pc - 1));
    if (machine_.HasPendingException() || frames_.empty() ||
        frames_.back().compiled_active) {
      return Status::Ok();  // exit to Loop; a compiled callee re-enters there
    }
    reload();
  } NEXT();

  OP(kInvokestaticQuick) {
    const InlineCache& ic = f->prepared->cache[pc - 1];
    uint32_t argc = static_cast<uint32_t>(ic.arg_count);
    if (sp - floor < static_cast<ptrdiff_t>(argc)) {
      QHOST("operand stack underflow on invoke in " + f->method->Id());
    }
    QSYNC();
    DVM_RETURN_IF_ERROR(InvokeResolved(ic.invoke_owner, ic.invoke_method, argc));
    if (machine_.HasPendingException() || frames_.empty() ||
        frames_.back().compiled_active) {
      return Status::Ok();  // exit to Loop; a compiled callee re-enters there
    }
    reload();
  } NEXT();

  OP(kInvokespecialQuick) {
    const InlineCache& ic = f->prepared->cache[pc - 1];
    uint32_t argc = static_cast<uint32_t>(ic.arg_count);
    if (sp - floor < static_cast<ptrdiff_t>(argc)) {
      QHOST("operand stack underflow on invoke in " + f->method->Id());
    }
    if (sp[-static_cast<ptrdiff_t>(argc)].IsNullRef()) {
      sp -= argc;
      QTHROW("java/lang/NullPointerException", "invoke on null receiver");
    }
    QSYNC();
    DVM_RETURN_IF_ERROR(InvokeResolved(ic.invoke_owner, ic.invoke_method, argc));
    if (machine_.HasPendingException() || frames_.empty() ||
        frames_.back().compiled_active) {
      return Status::Ok();  // exit to Loop; a compiled callee re-enters there
    }
    reload();
  } NEXT();

  OP(kInvokevirtualQuick) {
    InlineCache& ic = f->prepared->cache[pc - 1];
    uint32_t argc = static_cast<uint32_t>(ic.arg_count);
    if (sp - floor < static_cast<ptrdiff_t>(argc)) {
      QHOST("operand stack underflow on invoke in " + f->method->Id());
    }
    Value receiver = sp[-static_cast<ptrdiff_t>(argc)];
    if (receiver.IsNullRef()) {
      sp -= argc;
      QTHROW("java/lang/NullPointerException", "invoke on null receiver");
    }
    const HeapObject* obj = machine_.heap().Get(receiver.AsRef());
    if (obj == nullptr) {
      QHOST("dangling receiver reference");
    }
    QSYNC();
    if (obj->class_sym == ic.receiver_sym) {
      // Monomorphic hit: one integer compare, no constant-pool access.
      ic.hits++;
      DVM_RETURN_IF_ERROR(InvokeResolved(ic.invoke_owner, ic.invoke_method, argc));
    } else {
      DVM_RETURN_IF_ERROR(QuickInvokeSlow(Op::kInvokevirtual, pc - 1));
    }
    if (machine_.HasPendingException() || frames_.empty() ||
        frames_.back().compiled_active) {
      return Status::Ok();  // exit to Loop; a compiled callee re-enters there
    }
    reload();
  } NEXT();

  OP(kNew) {
    QSYNC();  // class load + <clinit> + allocation may all run here
    const ConstantPool& pool = f->cls->file.pool();
    DVM_ASSIGN_OR_RETURN(std::string class_name,
                         pool.ClassNameAt(static_cast<uint16_t>(inst.a)));
    DVM_ASSIGN_OR_RETURN(RuntimeClass * cls, machine_.registry().GetClass(class_name));
    DVM_RETURN_IF_ERROR(EnsureInitialized(cls));
    if (machine_.HasPendingException()) {
      return Status::Ok();
    }
    f->prepared->cache[pc - 1].klass = cls;
    f->prepared->code[pc - 1].op = Op::kNewQuick;
    counters.quickened_sites++;
    auto obj = machine_.AllocInstance(cls);
    if (!obj.ok()) {
      QTHROW("java/lang/OutOfMemoryError", obj.error().message);
    }
    QROOM();
    *sp++ = Value::Ref(obj.value());
  } NEXT();

  OP(kNewQuick) {
    QSYNC();  // allocation may collect
    auto obj = machine_.AllocInstance(f->prepared->cache[pc - 1].klass);
    if (!obj.ok()) {
      QTHROW("java/lang/OutOfMemoryError", obj.error().message);
    }
    QROOM();
    *sp++ = Value::Ref(obj.value());
  } NEXT();

  OP(kNewarray) {
    QNEED(1);
    int32_t length = (--sp)->AsInt();
    if (length < 0) {
      QTHROW("java/lang/NegativeArraySizeException", std::to_string(length));
    }
    QSYNC();
    auto arr = inst.a == static_cast<int>(ArrayKind::kLong)
                   ? machine_.AllocLongArray(length)
                   : machine_.AllocIntArray(length);
    if (!arr.ok()) {
      QTHROW("java/lang/OutOfMemoryError", arr.error().message);
    }
    *sp++ = Value::Ref(arr.value());
  } NEXT();

  OP(kAnewarray) {
    const ConstantPool& pool = f->cls->file.pool();
    DVM_ASSIGN_OR_RETURN(std::string element,
                         pool.ClassNameAt(static_cast<uint16_t>(inst.a)));
    QNEED(1);
    int32_t length = (--sp)->AsInt();
    if (length < 0) {
      QTHROW("java/lang/NegativeArraySizeException", std::to_string(length));
    }
    InlineCache& ic = f->prepared->cache[pc - 1];
    ic.array_desc = "[" + DescriptorFromClassName(element);
    ic.array_desc_sym = InternSymbol(ic.array_desc);
    f->prepared->code[pc - 1].op = Op::kAnewarrayQuick;
    counters.quickened_sites++;
    QSYNC();
    auto arr = machine_.AllocRefArray(ic.array_desc, ic.array_desc_sym, length);
    if (!arr.ok()) {
      QTHROW("java/lang/OutOfMemoryError", arr.error().message);
    }
    *sp++ = Value::Ref(arr.value());
  } NEXT();

  OP(kAnewarrayQuick) {
    QNEED(1);
    int32_t length = (--sp)->AsInt();
    if (length < 0) {
      QTHROW("java/lang/NegativeArraySizeException", std::to_string(length));
    }
    const InlineCache& ic = f->prepared->cache[pc - 1];
    QSYNC();
    auto arr = machine_.AllocRefArray(ic.array_desc, ic.array_desc_sym, length);
    if (!arr.ok()) {
      QTHROW("java/lang/OutOfMemoryError", arr.error().message);
    }
    *sp++ = Value::Ref(arr.value());
  } NEXT();

  OP(kArraylength) {
    QNEED(1);
    Value arr_ref = *--sp;
    if (arr_ref.IsNullRef()) {
      QTHROW("java/lang/NullPointerException", "arraylength on null");
    }
    const HeapObject* arr = machine_.heap().Get(arr_ref.AsRef());
    if (arr == nullptr || arr->ArrayLength() < 0) {
      QHOST("arraylength on non-array");
    }
    *sp++ = Value::Int(arr->ArrayLength());
  } NEXT();

  OP(kAthrow) {
    QNEED(1);
    Value exception = *--sp;
    if (exception.IsNullRef()) {
      QTHROW("java/lang/NullPointerException", "athrow on null");
    }
    counters.exceptions_thrown++;
    QSYNC();
    machine_.SetPendingExceptionObject(exception.AsRef());
    return Status::Ok();
  } NEXT();

  OP(kCheckcast) {
    const ConstantPool& pool = f->cls->file.pool();
    DVM_ASSIGN_OR_RETURN(std::string target,
                         pool.ClassNameAt(static_cast<uint16_t>(inst.a)));
    QNEED(1);
    InlineCache& ic = f->prepared->cache[pc - 1];
    ic.cast_target = target;
    ic.cast_target_sym = InternSymbol(target);
    f->prepared->code[pc - 1].op = Op::kCheckcastQuick;
    counters.quickened_sites++;
    Value v = sp[-1];
    if (!v.IsNullRef()) {
      const HeapObject* obj = machine_.heap().Get(v.AsRef());
      if (obj == nullptr) {
        QHOST("checkcast on dangling reference");
      }
      auto is_sub = machine_.registry().IsSubclassSym(obj->class_sym, ic.cast_target_sym);
      if (!is_sub.ok() || !is_sub.value()) {
        --sp;
        QTHROW("java/lang/ClassCastException", obj->class_name + " -> " + ic.cast_target);
      }
    }
  } NEXT();

  OP(kCheckcastQuick) {
    QNEED(1);
    const InlineCache& ic = f->prepared->cache[pc - 1];
    Value v = sp[-1];
    if (!v.IsNullRef()) {
      const HeapObject* obj = machine_.heap().Get(v.AsRef());
      if (obj == nullptr) {
        QHOST("checkcast on dangling reference");
      }
      auto is_sub = machine_.registry().IsSubclassSym(obj->class_sym, ic.cast_target_sym);
      if (!is_sub.ok() || !is_sub.value()) {
        --sp;
        QTHROW("java/lang/ClassCastException", obj->class_name + " -> " + ic.cast_target);
      }
    }
  } NEXT();

  OP(kInstanceof) {
    const ConstantPool& pool = f->cls->file.pool();
    DVM_ASSIGN_OR_RETURN(std::string target,
                         pool.ClassNameAt(static_cast<uint16_t>(inst.a)));
    QNEED(1);
    InlineCache& ic = f->prepared->cache[pc - 1];
    ic.cast_target = target;
    ic.cast_target_sym = InternSymbol(target);
    f->prepared->code[pc - 1].op = Op::kInstanceofQuick;
    counters.quickened_sites++;
    Value v = *--sp;
    if (v.IsNullRef()) {
      *sp++ = Value::Int(0);
    } else {
      const HeapObject* obj = machine_.heap().Get(v.AsRef());
      if (obj == nullptr) {
        QHOST("instanceof on dangling reference");
      }
      auto is_sub = machine_.registry().IsSubclassSym(obj->class_sym, ic.cast_target_sym);
      *sp++ = Value::Int(is_sub.ok() && is_sub.value() ? 1 : 0);
    }
  } NEXT();

  OP(kInstanceofQuick) {
    QNEED(1);
    const InlineCache& ic = f->prepared->cache[pc - 1];
    Value v = *--sp;
    if (v.IsNullRef()) {
      *sp++ = Value::Int(0);
    } else {
      const HeapObject* obj = machine_.heap().Get(v.AsRef());
      if (obj == nullptr) {
        QHOST("instanceof on dangling reference");
      }
      auto is_sub = machine_.registry().IsSubclassSym(obj->class_sym, ic.cast_target_sym);
      *sp++ = Value::Int(is_sub.ok() && is_sub.value() ? 1 : 0);
    }
  } NEXT();

  OP(kMonitorenter) OP(kMonitorexit) {
    QNEED(1);
    Value v = *--sp;
    if (v.IsNullRef()) {
      QTHROW("java/lang/NullPointerException", "monitor on null");
    }
    // Single simulated thread: always uncontended, but acquisition itself
    // is far from free (the point of the sync-elision optimizer).
    machine_.AddNanos(machine_.config().cost.nanos_per_monitor_op);
  } NEXT();

#if DVM_INTERP_COMPUTED_GOTO
L_unhandled:
  QHOST("unhandled opcode in prepared code of " + f->method->Id());
#else
    default:
      QHOST("unhandled opcode in prepared code of " + f->method->Id());
    }
  }
#endif
}

#undef OP
#undef NEXT
#undef QFETCH
#undef QSYNC
#undef QHOST
#undef QTHROW
#undef QNEED
#undef QROOM
#undef QLOCAL

}  // namespace dvm
