// The mobile-code repartitioning optimizer (paper section 5).
//
// Java's transfer units (classes / archives) do not match the dynamic
// execution path: 10-30% of downloaded code is never invoked. This service
// uses a first-use profile collected by the profiling service to split each
// class at *method granularity*: methods on the startup path stay in the
// original ("hot") class; the rest move to a lazily-loaded companion class
// ("<name>$cold"), leaving small forwarding stubs behind. Clients and origin
// servers need no modification — a stub invocation faults the cold class in
// through the ordinary class-loading path.
#ifndef SRC_OPTIMIZER_REPARTITION_H_
#define SRC_OPTIMIZER_REPARTITION_H_

#include <set>
#include <string>
#include <vector>

#include "src/rewrite/filter.h"

namespace dvm {

// Methods observed in use (typically: during application startup), as
// "class.method" tags produced by the profiling service.
class TransferProfile {
 public:
  TransferProfile() = default;
  explicit TransferProfile(const std::vector<std::string>& first_use_tags);

  void MarkUsed(const std::string& class_name, const std::string& method_name);
  bool IsUsed(const std::string& class_name, const std::string& method_name) const;
  bool HasDataFor(const std::string& class_name) const;

 private:
  std::set<std::string> used_;      // "class.method"
  std::set<std::string> classes_;  // classes with any profile data
};

struct RepartitionStats {
  uint64_t classes_split = 0;
  uint64_t methods_moved = 0;
  uint64_t hot_bytes = 0;
  uint64_t cold_bytes = 0;
};

class RepartitionFilter : public CodeFilter {
 public:
  explicit RepartitionFilter(const TransferProfile* profile) : profile_(profile) {}

  std::string name() const override { return "repartitioner"; }
  Result<FilterOutcome> Apply(ClassFile& cls, const FilterContext& ctx) override;

  const RepartitionStats& stats() const { return stats_; }

 private:
  const TransferProfile* profile_;
  RepartitionStats stats_;
};

// Re-encodes `code` from one class's constant pool into another's, remapping
// every constant-pool operand. Shared with tests.
Result<Bytes> TranspileCode(const Bytes& code, const ConstantPool& from, ConstantPool& to);

}  // namespace dvm

#endif  // SRC_OPTIMIZER_REPARTITION_H_
