// Proof-carrying verification certificates (ROADMAP: "certificates instead of
// re-checking"). The proxy that rewrites a class runs the full phase-3
// fixpoint once and emits the typestate frame at every merge point; a replica
// receiving the artifact re-checks it against the certificate in ONE forward
// pass — no worklist, no frame merging into a fixpoint — and gets the same
// accept/reject verdict and the same link-time assumptions the full verifier
// would produce.
//
// Validation is fail-closed and exact:
//   * every control-flow edge's frame must fit (⊑) the asserted frame at its
//     target, so the certificate is a sound proof outline;
//   * the join of the edges flowing into each assertion must EQUAL the
//     asserted frame, so a tampered certificate that widens (or narrows, or
//     invents) an assertion is rejected even though a wider frame would still
//     be sound — byte-identical verdicts require the true fixpoint;
//   * the assumptions derived while stepping must equal the certificate's
//     list, so phase-4 dynamic checks are unchanged.
#ifndef SRC_VERIFIER_CERTIFICATE_H_
#define SRC_VERIFIER_CERTIFICATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/support/bytes.h"
#include "src/support/result.h"
#include "src/verifier/assumptions.h"
#include "src/verifier/class_env.h"
#include "src/verifier/typestate.h"
#include "src/verifier/verifier.h"

namespace dvm {

// The typestate frame the fixpoint computed on entry to one merge point.
struct FrameAssertion {
  uint32_t index = 0;  // instruction index (not byte offset)
  Frame frame;

  bool operator==(const FrameAssertion& other) const = default;
};

// Assertions for one code-bearing method, indices strictly increasing.
struct MethodCertificate {
  std::string method_id;
  std::vector<FrameAssertion> assertions;

  bool operator==(const MethodCertificate& other) const = default;
};

struct ClassCertificate {
  std::string class_name;
  // One entry per code-bearing method, in declaration order.
  std::vector<MethodCertificate> methods;
  // The class's deduplicated link-time assumptions (phase-4 work), exactly as
  // VerifyClass reports them.
  std::vector<Assumption> assumptions;
};

bool operator==(const ClassCertificate& a, const ClassCertificate& b);

// Canonical big-endian encoding: serialize ∘ parse is the identity on valid
// certificate bytes, and parse rejects anything serialize cannot produce
// (trailing bytes, out-of-range type kinds, non-monotonic assertion indices,
// stray name/site payloads on kinds that carry none).
Bytes SerializeCertificate(const ClassCertificate& cert);
Result<ClassCertificate> ParseCertificate(const Bytes& data);

// Work accounting for the one-pass validator. Phases 1-2 still run (they are
// linear and cheap); `verify.phase3_checks` stays untouched — the whole point
// — and `validate_checks` counts the per-edge fit checks plus the shared
// transfer function's work.
struct ValidateStats {
  VerifyStats verify;  // phase 1 + 2 only
  uint64_t validate_checks = 0;
  uint64_t instructions_validated = 0;

  uint64_t TotalChecks() const {
    return verify.phase1_checks + verify.phase2_checks + validate_checks;
  }
};

// Checks `cls` against `cert` in a single forward pass per method. Ok() means
// the class is exactly as safe as the full verifier would find it, with
// cert.assumptions as its phase-4 obligations. Any mismatch — a frame that
// does not fit, an assertion that is not the exact join of its incoming
// edges, an unreachable or missing assertion, an assumption-list difference —
// is a verification failure.
Status ValidateCertificate(const ClassFile& cls, const ClassEnv& env,
                           const ClassCertificate& cert, ValidateStats* stats);

}  // namespace dvm

#endif  // SRC_VERIFIER_CERTIFICATE_H_
