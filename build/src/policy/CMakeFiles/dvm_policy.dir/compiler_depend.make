# Empty compiler generated dependencies file for dvm_policy.
# This may be replaced when dependencies are built.
