// Minimal leveled logging. Experiments run quietly by default; set the level to
// kDebug when tracing a pipeline or an interpreter run.
#ifndef SRC_SUPPORT_LOGGING_H_
#define SRC_SUPPORT_LOGGING_H_

#include <sstream>
#include <string>

namespace dvm {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();
void LogMessage(LogLevel level, const std::string& message);

// Stream-style logging helper: DVM_LOG(kInfo) << "loaded " << n << " classes";
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

#define DVM_LOG(level) ::dvm::LogLine(::dvm::LogLevel::level)

}  // namespace dvm

#endif  // SRC_SUPPORT_LOGGING_H_
