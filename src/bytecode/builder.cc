#include "src/bytecode/builder.h"

#include <deque>

#include "src/bytecode/descriptor.h"
#include "src/bytecode/stack_effect.h"

namespace dvm {

MethodBuilder::MethodBuilder(ClassBuilder* owner, uint16_t access_flags, std::string name,
                             std::string descriptor)
    : owner_(owner),
      access_flags_(access_flags),
      name_(std::move(name)),
      descriptor_(std::move(descriptor)) {}

MethodBuilder& MethodBuilder::Emit(Op op) { return Emit(op, 0, 0); }
MethodBuilder& MethodBuilder::Emit(Op op, int32_t a) { return Emit(op, a, 0); }

MethodBuilder& MethodBuilder::Emit(Op op, int32_t a, int32_t b) {
  const OpInfo* info = GetOpInfo(op);
  if (info != nullptr &&
      (info->operands == OperandKind::kU8 || info->operands == OperandKind::kLocalIncr)) {
    max_local_ = std::max(max_local_, a);
  }
  instrs_.push_back(Instr{op, a, b});
  return *this;
}

Label MethodBuilder::NewLabel() {
  Label label{static_cast<int>(label_positions_.size())};
  label_positions_.push_back(-1);
  return label;
}

MethodBuilder& MethodBuilder::Bind(Label label) {
  label_positions_[static_cast<size_t>(label.id)] = static_cast<int>(instrs_.size());
  return *this;
}

MethodBuilder& MethodBuilder::Branch(Op op, Label target) {
  pending_branches_.emplace_back(instrs_.size(), target.id);
  instrs_.push_back(Instr{op, -1, 0});
  return *this;
}

MethodBuilder& MethodBuilder::PushInt(int32_t v) {
  if (v == 0) {
    return Emit(Op::kIconst0);
  }
  if (v == 1) {
    return Emit(Op::kIconst1);
  }
  if (v >= -128 && v <= 127) {
    return Emit(Op::kBipush, v);
  }
  if (v >= -32768 && v <= 32767) {
    return Emit(Op::kSipush, v);
  }
  return Emit(Op::kLdc, owner_->pool().AddInteger(v));
}

MethodBuilder& MethodBuilder::PushLong(int64_t v) {
  return Emit(Op::kLdc, owner_->pool().AddLong(v));
}

MethodBuilder& MethodBuilder::PushString(const std::string& s) {
  return Emit(Op::kLdc, owner_->pool().AddString(s));
}

MethodBuilder& MethodBuilder::PushNull() { return Emit(Op::kAconstNull); }

MethodBuilder& MethodBuilder::LoadLocal(const std::string& type_desc, int index) {
  Op op = type_desc == "I" ? Op::kIload : type_desc == "J" ? Op::kLload : Op::kAload;
  return Emit(op, index);
}

MethodBuilder& MethodBuilder::StoreLocal(const std::string& type_desc, int index) {
  Op op = type_desc == "I" ? Op::kIstore : type_desc == "J" ? Op::kLstore : Op::kAstore;
  return Emit(op, index);
}

MethodBuilder& MethodBuilder::GetStatic(const std::string& cls, const std::string& field,
                                        const std::string& desc) {
  return Emit(Op::kGetstatic, owner_->pool().AddFieldRef(cls, field, desc));
}

MethodBuilder& MethodBuilder::PutStatic(const std::string& cls, const std::string& field,
                                        const std::string& desc) {
  return Emit(Op::kPutstatic, owner_->pool().AddFieldRef(cls, field, desc));
}

MethodBuilder& MethodBuilder::GetField(const std::string& cls, const std::string& field,
                                       const std::string& desc) {
  return Emit(Op::kGetfield, owner_->pool().AddFieldRef(cls, field, desc));
}

MethodBuilder& MethodBuilder::PutField(const std::string& cls, const std::string& field,
                                       const std::string& desc) {
  return Emit(Op::kPutfield, owner_->pool().AddFieldRef(cls, field, desc));
}

MethodBuilder& MethodBuilder::InvokeStatic(const std::string& cls, const std::string& method,
                                           const std::string& desc) {
  return Emit(Op::kInvokestatic, owner_->pool().AddMethodRef(cls, method, desc));
}

MethodBuilder& MethodBuilder::InvokeVirtual(const std::string& cls, const std::string& method,
                                            const std::string& desc) {
  return Emit(Op::kInvokevirtual, owner_->pool().AddMethodRef(cls, method, desc));
}

MethodBuilder& MethodBuilder::InvokeSpecial(const std::string& cls, const std::string& method,
                                            const std::string& desc) {
  return Emit(Op::kInvokespecial, owner_->pool().AddMethodRef(cls, method, desc));
}

MethodBuilder& MethodBuilder::New(const std::string& cls) {
  return Emit(Op::kNew, owner_->pool().AddClass(cls));
}

MethodBuilder& MethodBuilder::ANewArray(const std::string& element_cls) {
  return Emit(Op::kAnewarray, owner_->pool().AddClass(element_cls));
}

MethodBuilder& MethodBuilder::CheckCast(const std::string& cls) {
  return Emit(Op::kCheckcast, owner_->pool().AddClass(cls));
}

MethodBuilder& MethodBuilder::InstanceOf(const std::string& cls) {
  return Emit(Op::kInstanceof, owner_->pool().AddClass(cls));
}

MethodBuilder& MethodBuilder::AddHandler(Label start, Label end, Label handler,
                                         const std::string& catch_class) {
  handlers_.push_back(HandlerSpec{start, end, handler, catch_class});
  return *this;
}

Result<uint16_t> MethodBuilder::ComputeMaxStack(const std::vector<Instr>& instrs) const {
  if (instrs.empty()) {
    return static_cast<uint16_t>(0);
  }
  // Breadth-first propagation of stack depth. Depths must agree at merge points
  // for well-formed code; we take the max and let the verifier flag conflicts.
  std::vector<int> depth_at(instrs.size(), -1);
  std::deque<size_t> work;

  auto schedule = [&](size_t index, int depth) {
    if (index >= instrs.size()) {
      return;
    }
    if (depth_at[index] < depth) {
      depth_at[index] = depth;
      work.push_back(index);
    }
  };

  schedule(0, 0);
  // Exception handlers start with exactly the thrown reference on the stack.
  for (const auto& h : handlers_) {
    int pos = label_positions_[static_cast<size_t>(h.handler.id)];
    if (pos >= 0) {
      schedule(static_cast<size_t>(pos), 1);
    }
  }

  int max_depth = 0;
  while (!work.empty()) {
    size_t index = work.front();
    work.pop_front();
    int depth = depth_at[index];
    const Instr& instr = instrs[index];
    DVM_ASSIGN_OR_RETURN(int delta, StackDelta(instr, owner_->pool()));
    DVM_ASSIGN_OR_RETURN(int pops, StackPops(instr, owner_->pool()));
    if (depth < pops) {
      return Error{ErrorCode::kInvalidArgument,
                   "builder: stack underflow at instruction " + std::to_string(index) + " in " +
                       name_};
    }
    int next = depth + delta;
    max_depth = std::max(max_depth, std::max(depth, next));
    if (IsBranch(instr.op)) {
      schedule(static_cast<size_t>(instr.a), next);
    }
    if (!IsTerminator(instr.op)) {
      schedule(index + 1, next);
    }
  }
  if (max_depth > 0xFFFF) {
    return Error{ErrorCode::kCapacity, "max stack exceeds 65535"};
  }
  return static_cast<uint16_t>(max_depth);
}

Status MethodBuilder::Done() {
  if (done_) {
    return Error{ErrorCode::kInvalidArgument, "MethodBuilder::Done called twice"};
  }
  done_ = true;

  // Resolve branches.
  std::vector<Instr> instrs = instrs_;
  for (const auto& [index, label_id] : pending_branches_) {
    int pos = label_positions_[static_cast<size_t>(label_id)];
    if (pos < 0) {
      return Error{ErrorCode::kInvalidArgument,
                   "unbound label in method " + name_ + descriptor_};
    }
    if (static_cast<size_t>(pos) >= instrs.size()) {
      return Error{ErrorCode::kInvalidArgument,
                   "label bound past end of method " + name_ + descriptor_};
    }
    instrs[index].a = pos;
  }

  DVM_ASSIGN_OR_RETURN(Bytes encoded, EncodeCode(instrs));
  DVM_ASSIGN_OR_RETURN(uint16_t max_stack, ComputeMaxStack(instrs));

  DVM_ASSIGN_OR_RETURN(MethodSignature sig, ParseMethodDescriptor(descriptor_));
  int arg_slots = sig.ArgSlots() + ((access_flags_ & AccessFlags::kStatic) != 0 ? 0 : 1);
  uint16_t max_locals = static_cast<uint16_t>(std::max(max_local_ + 1, arg_slots));

  std::vector<uint32_t> offsets = CodeByteOffsets(instrs);
  CodeAttr code;
  code.max_stack = max_stack;
  code.max_locals = max_locals;
  code.code = std::move(encoded);
  for (const auto& h : handlers_) {
    int start = label_positions_[static_cast<size_t>(h.start.id)];
    int end = label_positions_[static_cast<size_t>(h.end.id)];
    int handler = label_positions_[static_cast<size_t>(h.handler.id)];
    if (start < 0 || end < 0 || handler < 0) {
      return Error{ErrorCode::kInvalidArgument, "unbound handler label in " + name_};
    }
    ExceptionHandler entry;
    entry.start_pc = static_cast<uint16_t>(offsets[static_cast<size_t>(start)]);
    entry.end_pc = static_cast<uint16_t>(offsets[static_cast<size_t>(end)]);
    entry.handler_pc = static_cast<uint16_t>(offsets[static_cast<size_t>(handler)]);
    entry.catch_type =
        h.catch_class.empty() ? 0 : owner_->pool().AddClass(h.catch_class);
    code.handlers.push_back(entry);
  }

  MethodInfo method;
  method.access_flags = access_flags_;
  method.name = name_;
  method.descriptor = descriptor_;
  method.code = std::move(code);
  owner_->class_file_.methods.push_back(std::move(method));
  return Status::Ok();
}

ClassBuilder::ClassBuilder(const std::string& name, const std::string& super_name,
                           uint16_t access_flags) {
  class_file_.access_flags = access_flags;
  class_file_.this_class = class_file_.pool().AddClass(name);
  class_file_.super_class = super_name.empty() ? 0 : class_file_.pool().AddClass(super_name);
}

ClassBuilder& ClassBuilder::AddInterface(const std::string& iface_name) {
  class_file_.interfaces.push_back(class_file_.pool().AddClass(iface_name));
  return *this;
}

ClassBuilder& ClassBuilder::AddField(uint16_t access_flags, const std::string& name,
                                     const std::string& descriptor) {
  FieldInfo f;
  f.access_flags = access_flags;
  f.name = name;
  f.descriptor = descriptor;
  class_file_.fields.push_back(std::move(f));
  return *this;
}

MethodBuilder& ClassBuilder::AddMethod(uint16_t access_flags, const std::string& name,
                                       const std::string& descriptor) {
  pending_methods_.emplace_back(new MethodBuilder(this, access_flags, name, descriptor));
  return *pending_methods_.back();
}

ClassBuilder& ClassBuilder::AddNativeMethod(uint16_t access_flags, const std::string& name,
                                            const std::string& descriptor) {
  MethodInfo m;
  m.access_flags = static_cast<uint16_t>(access_flags | AccessFlags::kNative);
  m.name = name;
  m.descriptor = descriptor;
  class_file_.methods.push_back(std::move(m));
  return *this;
}

ClassBuilder& ClassBuilder::AddAbstractMethod(uint16_t access_flags, const std::string& name,
                                              const std::string& descriptor) {
  MethodInfo m;
  m.access_flags = static_cast<uint16_t>(access_flags | AccessFlags::kAbstract);
  m.name = name;
  m.descriptor = descriptor;
  class_file_.methods.push_back(std::move(m));
  return *this;
}

ClassBuilder& ClassBuilder::AddDefaultConstructor() {
  std::string super = class_file_.super_name();
  MethodBuilder& ctor = AddMethod(AccessFlags::kPublic, "<init>", "()V");
  ctor.Emit(Op::kAload, 0);
  if (!super.empty()) {
    ctor.InvokeSpecial(super, "<init>", "()V");
  } else {
    ctor.Emit(Op::kPop);
  }
  ctor.Emit(Op::kReturn);
  return *this;
}

Result<ClassFile> ClassBuilder::Build() {
  if (built_) {
    return Error{ErrorCode::kInvalidArgument, "ClassBuilder::Build called twice"};
  }
  built_ = true;
  for (auto& mb : pending_methods_) {
    if (!mb->done_) {
      DVM_RETURN_IF_ERROR(mb->Done());
    }
  }
  pending_methods_.clear();
  return std::move(class_file_);
}

}  // namespace dvm
