#include "src/optimizer/repartition.h"

#include "src/bytecode/builder.h"
#include "src/bytecode/code.h"
#include "src/bytecode/descriptor.h"
#include "src/bytecode/serializer.h"
#include "src/rewrite/method_editor.h"
#include "src/runtime/syslib.h"

namespace dvm {
namespace {

constexpr const char* kColdSuffix = "$cold";

// Remaps one constant-pool index from `from` into `to`.
Result<uint16_t> RemapCpIndex(uint16_t index, const ConstantPool& from, ConstantPool& to) {
  if (from.HasTag(index, CpTag::kInteger)) {
    return to.AddInteger(from.IntegerAt(index).value());
  }
  if (from.HasTag(index, CpTag::kLong)) {
    return to.AddLong(from.LongAt(index).value());
  }
  if (from.HasTag(index, CpTag::kString)) {
    return to.AddString(from.StringAt(index).value());
  }
  if (from.HasTag(index, CpTag::kClass)) {
    return to.AddClass(from.ClassNameAt(index).value());
  }
  if (from.HasTag(index, CpTag::kFieldRef)) {
    MemberRef ref = from.FieldRefAt(index).value();
    return to.AddFieldRef(ref.class_name, ref.member_name, ref.descriptor);
  }
  if (from.HasTag(index, CpTag::kMethodRef)) {
    MemberRef ref = from.MethodRefAt(index).value();
    return to.AddMethodRef(ref.class_name, ref.member_name, ref.descriptor);
  }
  return Error{ErrorCode::kInternal, "cannot remap constant pool entry " +
                                         std::to_string(index)};
}

// Builds the stub that remains in the hot class, forwarding to the static
// cold-class implementation.
Result<MethodInfo> BuildForwardingStub(const MethodInfo& original,
                                       const std::string& class_name,
                                       const std::string& cold_class,
                                       const std::string& cold_descriptor,
                                       ConstantPool& pool) {
  DVM_ASSIGN_OR_RETURN(MethodSignature sig, ParseMethodDescriptor(original.descriptor));
  std::vector<Instr> body;
  int slot = 0;
  if (!original.IsStatic()) {
    body.push_back({Op::kAload, slot++, 0});
  }
  for (const auto& param : sig.params) {
    Op load = param == "I" ? Op::kIload : param == "J" ? Op::kLload : Op::kAload;
    body.push_back({load, slot++, 0});
  }
  body.push_back({Op::kInvokestatic,
                  pool.AddMethodRef(cold_class, original.name, cold_descriptor), 0});
  if (sig.ReturnsVoid()) {
    body.push_back({Op::kReturn, 0, 0});
  } else if (sig.return_type == "I") {
    body.push_back({Op::kIreturn, 0, 0});
  } else if (sig.return_type == "J") {
    body.push_back({Op::kLreturn, 0, 0});
  } else {
    body.push_back({Op::kAreturn, 0, 0});
  }

  DVM_ASSIGN_OR_RETURN(Bytes encoded, EncodeCode(body));
  DVM_ASSIGN_OR_RETURN(uint16_t max_stack, ComputeMaxStackDepth(body, pool, {}));
  MethodInfo stub;
  stub.access_flags = original.access_flags;
  stub.name = original.name;
  stub.descriptor = original.descriptor;
  CodeAttr code;
  code.max_stack = max_stack;
  code.max_locals = static_cast<uint16_t>(slot);
  code.code = std::move(encoded);
  stub.code = std::move(code);
  return stub;
}

}  // namespace

TransferProfile::TransferProfile(const std::vector<std::string>& first_use_tags) {
  for (const auto& tag : first_use_tags) {
    size_t dot = tag.rfind('.');
    if (dot != std::string::npos) {
      MarkUsed(tag.substr(0, dot), tag.substr(dot + 1));
    }
  }
}

void TransferProfile::MarkUsed(const std::string& class_name,
                               const std::string& method_name) {
  used_.insert(class_name + "." + method_name);
  classes_.insert(class_name);
}

bool TransferProfile::IsUsed(const std::string& class_name,
                             const std::string& method_name) const {
  return used_.count(class_name + "." + method_name) > 0;
}

bool TransferProfile::HasDataFor(const std::string& class_name) const {
  return classes_.count(class_name) > 0;
}

Result<Bytes> TranspileCode(const Bytes& code, const ConstantPool& from, ConstantPool& to) {
  DVM_ASSIGN_OR_RETURN(std::vector<Instr> instrs, DecodeCode(code));
  for (auto& instr : instrs) {
    const OpInfo* info = GetOpInfo(instr.op);
    if (info != nullptr && info->operands == OperandKind::kCpIndex) {
      DVM_ASSIGN_OR_RETURN(uint16_t remapped,
                           RemapCpIndex(static_cast<uint16_t>(instr.a), from, to));
      instr.a = remapped;
    }
  }
  return EncodeCode(instrs);
}

Result<FilterOutcome> RepartitionFilter::Apply(ClassFile& cls, const FilterContext& ctx) {
  FilterOutcome outcome;
  const std::string class_name = cls.name();
  // Only split classes we have profile data for; without a profile every
  // method would look cold and startup would fault the cold class immediately.
  if (IsSystemClass(class_name) || !profile_->HasDataFor(class_name)) {
    return outcome;
  }

  // Partition. Constructors, initializers and guard-bearing service preambles
  // stay hot: they run on the startup path by construction.
  std::vector<size_t> cold_indices;
  for (size_t i = 0; i < cls.methods.size(); i++) {
    const MethodInfo& m = cls.methods[i];
    if (!m.code.has_value() || m.IsConstructor() || m.IsClassInitializer()) {
      continue;
    }
    if (!profile_->IsUsed(class_name, m.name)) {
      cold_indices.push_back(i);
    }
  }
  if (cold_indices.empty()) {
    return outcome;
  }

  const std::string cold_class = class_name + kColdSuffix;
  ClassBuilder cold_builder(cold_class, "java/lang/Object");
  auto cold_built = cold_builder.Build();
  if (!cold_built.ok()) {
    return cold_built.error();
  }
  ClassFile cold = std::move(cold_built).value();

  for (size_t index : cold_indices) {
    MethodInfo& original = cls.methods[index];
    outcome.checks_performed++;

    // The cold implementation is a static method; instance methods gain the
    // receiver as an explicit first parameter, which keeps the body's local
    // numbering (and therefore its bytecode) unchanged.
    DVM_ASSIGN_OR_RETURN(MethodSignature sig, ParseMethodDescriptor(original.descriptor));
    std::string cold_descriptor = original.descriptor;
    if (!original.IsStatic()) {
      std::vector<std::string> params = sig.params;
      params.insert(params.begin(), DescriptorFromClassName(class_name));
      cold_descriptor = MakeMethodDescriptor(params, sig.return_type);
    }

    MethodInfo moved;
    moved.access_flags = static_cast<uint16_t>(AccessFlags::kPublic | AccessFlags::kStatic);
    moved.name = original.name;
    moved.descriptor = cold_descriptor;
    CodeAttr moved_code;
    moved_code.max_stack = original.code->max_stack;
    moved_code.max_locals = original.code->max_locals;
    DVM_ASSIGN_OR_RETURN(moved_code.code,
                         TranspileCode(original.code->code, cls.pool(), cold.pool()));
    for (const auto& h : original.code->handlers) {
      ExceptionHandler handler = h;
      if (h.catch_type != 0) {
        DVM_ASSIGN_OR_RETURN(handler.catch_type,
                             RemapCpIndex(h.catch_type, cls.pool(), cold.pool()));
      }
      moved_code.handlers.push_back(handler);
    }
    moved.code = std::move(moved_code);
    cold.methods.push_back(std::move(moved));

    DVM_ASSIGN_OR_RETURN(
        MethodInfo stub,
        BuildForwardingStub(original, class_name, cold_class, cold_descriptor, cls.pool()));
    original = std::move(stub);
    stats_.methods_moved++;
  }

  cold.SetAttribute(kAttrServiceStamp, Bytes{'c', 'o', 'l', 'd'});
  cls.SetAttribute(kAttrServiceStamp, Bytes{'r', 'p', 'r', 't'});
  stats_.classes_split++;
  DVM_ASSIGN_OR_RETURN(Bytes hot_wire, WriteClassFile(cls));
  DVM_ASSIGN_OR_RETURN(Bytes cold_wire, WriteClassFile(cold));
  stats_.hot_bytes += hot_wire.size();
  stats_.cold_bytes += cold_wire.size();
  outcome.extra_classes.push_back(std::move(cold));
  outcome.modified = true;
  return outcome;
}

}  // namespace dvm
