// Textual assembly for DVM class files (".dvma"). AssembleText parses the
// line-oriented syntax below into a ClassFile; ToAssembly emits it back, so
// classes round-trip  text -> class -> text  and  class -> text -> class
// with identical semantics. Used by the dvmasm tool and hand-written tests.
//
//   ; comment (also "//")
//   .class app/Hello extends java/lang/Object
//   .interface some/Iface                     ; repeatable
//   .field count I flags public static
//   .method main ()V flags public static
//     ldc "hello world"
//     invokestatic java/lang/System println (Ljava/lang/String;)V
//   label:
//     iload 0
//     ifle end
//     iinc 0 -1
//     goto label
//   end:
//     return
//   .handler try_start try_end catch_target java/lang/Exception
//   .end
//
// Operand forms: locals/immediates are integers; ldc takes an int, a long
// ("42L") or a quoted string; field/method ops take "class name descriptor";
// new/checkcast/instanceof/anewarray take a class name; newarray takes
// "int" or "long"; branches take a label. Flags: public private protected
// static final synchronized native abstract interface.
#ifndef SRC_BYTECODE_ASSEMBLER_H_
#define SRC_BYTECODE_ASSEMBLER_H_

#include <string>

#include "src/bytecode/classfile.h"
#include "src/support/result.h"

namespace dvm {

Result<ClassFile> AssembleText(const std::string& text);
std::string ToAssembly(const ClassFile& cls);

}  // namespace dvm

#endif  // SRC_BYTECODE_ASSEMBLER_H_
