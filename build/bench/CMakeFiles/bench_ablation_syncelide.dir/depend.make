# Empty dependencies file for bench_ablation_syncelide.
# This may be replaced when dependencies are built.
