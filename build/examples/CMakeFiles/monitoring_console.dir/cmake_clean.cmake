file(REMOVE_RECURSE
  "CMakeFiles/monitoring_console.dir/monitoring_console.cpp.o"
  "CMakeFiles/monitoring_console.dir/monitoring_console.cpp.o.d"
  "monitoring_console"
  "monitoring_console.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitoring_console.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
