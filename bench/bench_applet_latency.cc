// Section 4.1.2: overhead of the proxy on applet transfer latency. 100
// synthetic Internet applets; the paper measured 2198 ms average Internet
// download latency (sigma 3752 ms), ~265 ms of uncached proxy processing
// (~12% overhead) and 338 ms for cache hits.
#include "bench/bench_util.h"
#include "src/proxy/proxy.h"
#include "src/runtime/syslib.h"
#include "src/services/monitor_service.h"
#include "src/services/verify_service.h"
#include "src/simnet/sim.h"
#include "src/support/stats.h"
#include "src/workloads/applets.h"

int main() {
  using namespace dvm;
  using namespace dvm::bench;

  PrintHeader("Applet fetch latency through the proxy", "Section 4.1.2");

  // The AltaVista-indexed applets of 1999 skewed small; mean ~20 KB.
  auto applets = BuildAppletPopulation(100, /*seed=*/17, 20'000.0, 16'000.0);

  MapClassProvider origin;
  InstallSystemLibrary(origin);
  for (const auto& applet : applets) {
    applet.InstallInto(&origin);
  }
  std::vector<ClassFile> library = BuildSystemLibrary();
  MapClassEnv library_env;
  for (const auto& cls : library) {
    library_env.Add(&cls);
  }
  DvmProxy proxy({}, &library_env, &origin);
  proxy.AddFilter(std::make_unique<VerificationFilter>());
  proxy.AddFilter(std::make_unique<AuditFilter>());

  // Uncongested wide-area fetches, as in the paper's AltaVista measurement.
  WanModel wan(/*seed=*/17, /*mean_latency_ms=*/2198.0, /*stddev_latency_ms=*/3752.0,
               /*bytes_per_second=*/200'000.0);
  SimLink client_link = MakeEthernet10Mb();

  // Streaming accumulators, not stored samples: RunningStats for exact
  // constant-space mean/stddev, log-bucketed Histograms (recording nanos) for
  // percentiles. Memory stays O(1) however many applets the population grows
  // to — the same discipline the million-client bench depends on.
  RunningStats internet_ms, proxy_ms, cached_ms;
  Histogram internet_hist, proxy_hist, cached_hist;
  for (const auto& applet : applets) {
    uint64_t proxy_cpu = 0, cached_cpu = 0, bytes = 0, origin_bytes = 0;
    for (const auto& cls : applet.ClassNames()) {
      auto response = proxy.HandleRequest(cls);
      if (!response.ok()) {
        std::abort();
      }
      origin_bytes += response->origin_bytes;
      proxy_cpu += response->cpu_nanos;
      bytes += response->data.size();
      auto hit = proxy.HandleRequest(cls);
      if (!hit.ok() || !hit->cache_hit) {
        std::abort();
      }
      cached_cpu += hit->cpu_nanos;
    }
    // One wide-area fetch per applet, as in the paper's measurement.
    uint64_t wan_nanos = wan.FetchDuration(origin_bytes);
    uint64_t lan = client_link.TransmissionTime(bytes) + client_link.latency();
    internet_ms.Add(static_cast<double>(wan_nanos) / 1e6);
    proxy_ms.Add(static_cast<double>(proxy_cpu) / 1e6);
    cached_ms.Add(static_cast<double>(cached_cpu + lan) / 1e6);
    internet_hist.Record(wan_nanos);
    proxy_hist.Record(proxy_cpu);
    cached_hist.Record(cached_cpu + lan);
  }

  Histogram::Snapshot internet_snap = internet_hist.TakeSnapshot();
  Histogram::Snapshot proxy_snap = proxy_hist.TakeSnapshot();
  Histogram::Snapshot cached_snap = cached_hist.TakeSnapshot();
  std::printf("Applets sampled:                 %zu\n",
              static_cast<size_t>(internet_snap.count));
  std::printf("Avg Internet download latency:   %.0f ms (stddev %.0f; paper: 2198/3752)\n",
              internet_ms.mean(), internet_ms.stddev());
  std::printf("  p50/p99:                       %s/%s ms\n",
              FmtHistPct(internet_snap, 50, 1e6, 0).c_str(),
              FmtHistPct(internet_snap, 99, 1e6, 0).c_str());
  std::printf("Avg uncached proxy processing:   %.0f ms (paper: ~265)\n", proxy_ms.mean());
  std::printf("  p50/p99:                       %s/%s ms\n",
              FmtHistPct(proxy_snap, 50, 1e6, 0).c_str(),
              FmtHistPct(proxy_snap, 99, 1e6, 0).c_str());
  std::printf("Proxy overhead over Internet:    %.1f%% (paper: ~12%%)\n",
              proxy_ms.mean() / internet_ms.mean() * 100.0);
  std::printf("Avg cached fetch (proxy+LAN):    %.0f ms (paper: 338; ours is lower —\n"
              "  in-memory cache vs. the paper's on-disk cache + HTTP stack)\n",
              cached_ms.mean());
  std::printf("  p50/p99:                       %s/%s ms\n",
              FmtHistPct(cached_snap, 50, 1e6, 0).c_str(),
              FmtHistPct(cached_snap, 99, 1e6, 0).c_str());
  return 0;
}
