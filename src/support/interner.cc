#include "src/support/interner.h"

#include <deque>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

namespace dvm {
namespace {

struct SymbolTable {
  std::shared_mutex mu;
  // Names live in a deque so references stay stable as the table grows;
  // the map's string_view keys point into it.
  std::deque<std::string> names{std::string()};  // index 0 = kNoSymbol
  std::unordered_map<std::string_view, uint32_t> ids;
};

SymbolTable& Table() {
  static SymbolTable* table = new SymbolTable();
  return *table;
}

}  // namespace

uint32_t InternSymbol(std::string_view s) {
  SymbolTable& t = Table();
  {
    std::shared_lock<std::shared_mutex> lock(t.mu);
    auto it = t.ids.find(s);
    if (it != t.ids.end()) {
      return it->second;
    }
  }
  std::unique_lock<std::shared_mutex> lock(t.mu);
  auto it = t.ids.find(s);
  if (it != t.ids.end()) {
    return it->second;
  }
  uint32_t sym = static_cast<uint32_t>(t.names.size());
  t.names.emplace_back(s);
  t.ids.emplace(std::string_view(t.names.back()), sym);
  return sym;
}

const std::string& SymbolName(uint32_t sym) {
  SymbolTable& t = Table();
  std::shared_lock<std::shared_mutex> lock(t.mu);
  if (sym >= t.names.size()) {
    return t.names[0];
  }
  return t.names[sym];
}

}  // namespace dvm
