file(REMOVE_RECURSE
  "CMakeFiles/verifier_rejection_test.dir/verifier_rejection_test.cc.o"
  "CMakeFiles/verifier_rejection_test.dir/verifier_rejection_test.cc.o.d"
  "verifier_rejection_test"
  "verifier_rejection_test.pdb"
  "verifier_rejection_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verifier_rejection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
