// Deterministic SLO monitoring on the virtual clock.
//
// Burn-rate rules are evaluated over the *delta window* between consecutive
// StatsSnapshot observations of the same registry — the standard multi-window
// burn-rate construction collapsed to one window per evaluation tick. All
// arithmetic is integer (ratios in parts-per-million, latencies in whole
// nanoseconds), and the evaluation trigger is the virtual clock, so two
// same-seed runs fire every alert at provably identical virtual timestamps —
// an alert timeline is a reproducible artifact the replication and
// availability benches can byte-diff.
//
// Alerts are edge-triggered typed events ("slo-alert" on entering violation,
// "slo-clear" on leaving) appended to the AdministrationConsole audit stream,
// the same tamper-resistant channel the paper routes audit events through.
#ifndef SRC_SERVICES_SLO_MONITOR_H_
#define SRC_SERVICES_SLO_MONITOR_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/services/monitor_service.h"
#include "src/support/stats.h"

namespace dvm {

struct SloRule {
  enum class Kind {
    // Delta-window p99 of a histogram must stay at or below threshold nanos.
    kP99Ceiling,
    // numerator/denominator (delta counters) must stay >= threshold ppm.
    kMinRatioPpm,
    // numerator/denominator (delta counters) must stay <= threshold ppm.
    kMaxRatioPpm,
    // reference - metric (cumulative counters, not deltas) must stay <=
    // threshold — e.g. committed minus applied policy epoch (staleness).
    kMaxGap,
  };

  std::string name;
  Kind kind = Kind::kP99Ceiling;
  std::string metric;     // histogram (p99) or numerator / behind counter
  std::string reference;  // denominator counter, or ahead counter for kMaxGap
  uint64_t threshold = 0;
  // Windows with fewer observations than this are skipped (no state change):
  // a burn rate over three requests is noise, not a page.
  uint64_t min_events = 1;
};

// Convenience constructors for the four standard rule shapes.
SloRule P99CeilingRule(std::string name, std::string histogram, uint64_t ceiling_nanos,
                       uint64_t min_events = 1);
SloRule MinSuccessRule(std::string name, std::string success_counter,
                       std::string total_counter, uint64_t min_ppm, uint64_t min_events = 1);
SloRule MaxRateRule(std::string name, std::string event_counter, std::string total_counter,
                    uint64_t max_ppm, uint64_t min_events = 1);
SloRule MaxGapRule(std::string name, std::string behind_counter, std::string ahead_counter,
                   uint64_t max_gap);

// One edge-triggered state transition.
struct SloTransition {
  std::string rule;
  uint64_t at = 0;         // virtual nanos of the evaluation that flipped it
  bool firing = false;     // true = entered violation, false = cleared
  uint64_t observed = 0;   // nanos (p99), ppm (ratios), or absolute gap
  uint64_t threshold = 0;
};

class SloMonitor {
 public:
  // `source` labels emitted audit events (e.g. "replica-0"); `console` may be
  // null (transitions are still recorded locally).
  SloMonitor(std::string source, AdministrationConsole* console)
      : source_(std::move(source)), console_(console) {}

  void AddRule(SloRule rule);

  // Evaluates every rule against the window between `snapshot` and the
  // previous call's snapshot (the first call establishes the baseline and
  // only evaluates kMaxGap rules, which use cumulative values).
  void Evaluate(const StatsSnapshot& snapshot, uint64_t virtual_now);

  bool firing(const std::string& rule) const;
  size_t firing_count() const;
  const std::vector<SloTransition>& transitions() const { return transitions_; }
  uint64_t evaluations() const { return evaluations_; }

  // Deterministic one-line-per-transition rendering ("<nanos> ALERT|CLEAR
  // <rule> observed=<x> threshold=<y>"), byte-diffable across runs.
  std::string TransitionLog() const;

 private:
  struct RuleState {
    SloRule rule;
    bool firing = false;
  };

  void SetState(RuleState& state, bool firing, uint64_t observed, uint64_t now);

  std::string source_;
  AdministrationConsole* console_;
  std::vector<RuleState> rules_;
  StatsSnapshot previous_;
  bool has_previous_ = false;
  uint64_t evaluations_ = 0;
  std::vector<SloTransition> transitions_;
};

}  // namespace dvm

#endif  // SRC_SERVICES_SLO_MONITOR_H_
