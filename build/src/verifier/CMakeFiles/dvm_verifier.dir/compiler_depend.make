# Empty compiler generated dependencies file for dvm_verifier.
# This may be replaced when dependencies are built.
