// Tests for the continuous interpreter profiling plane (ISSUE 8): always-on
// method/backedge/inline-cache counters, megamorphic-site detection, and the
// virtual-clock sampling profiler — including the load-bearing determinism
// property: the same guest program produces byte-identical collapsed-stack and
// pprof exports under the quickened engine and the reference engine, because
// samples trigger on the engine-invariant virtual clock.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/bytecode/builder.h"
#include "src/runtime/machine.h"
#include "src/runtime/profile.h"
#include "src/runtime/syslib.h"

namespace dvm {
namespace {

constexpr int kLoopIterations = 20'000;

// loopy()I — tight counted loop (the backedge + sampling workhorse) that
// calls a monomorphic virtual per 8 iterations so stacks have depth.
void InstallWorkload(MapClassProvider& provider) {
  ClassBuilder node("prof/Node", "java/lang/Object");
  node.AddField(AccessFlags::kPublic, "value", "I");
  node.AddDefaultConstructor();
  MethodBuilder& step = node.AddMethod(AccessFlags::kPublic, "step", "(I)I");
  step.LoadLocal("I", 1).PushInt(3).Emit(Op::kIadd);
  step.LoadLocal("L", 0).GetField("prof/Node", "value", "I").Emit(Op::kIxor);
  step.Emit(Op::kIreturn);
  provider.AddClassFile(node.Build().value());

  ClassBuilder cb("prof/Main", "java/lang/Object");
  MethodBuilder& m = cb.AddMethod(AccessFlags::kStatic, "loopy", "()I");
  Label loop = m.NewLabel(), done = m.NewLabel();
  m.New("prof/Node").Emit(Op::kDup).InvokeSpecial("prof/Node", "<init>", "()V");
  m.StoreLocal("L", 0);
  m.PushInt(0).StoreLocal("I", 1);  // s
  m.PushInt(0).StoreLocal("I", 2);  // i
  m.Bind(loop);
  m.LoadLocal("I", 2).PushInt(kLoopIterations).Branch(Op::kIfIcmpge, done);
  m.LoadLocal("L", 0).LoadLocal("I", 1);
  m.InvokeVirtual("prof/Node", "step", "(I)I").StoreLocal("I", 1);
  m.Emit(Op::kIinc, 2, 1).Branch(Op::kGoto, loop);
  m.Bind(done).LoadLocal("I", 1).Emit(Op::kIreturn);
  provider.AddClassFile(cb.Build().value());
}

// A call site that sees five receiver classes: megamorphic by any threshold.
void InstallPolymorphic(MapClassProvider& provider) {
  ClassBuilder base("poly/Base", "java/lang/Object");
  base.AddDefaultConstructor();
  MethodBuilder& step = base.AddMethod(AccessFlags::kPublic, "step", "()I");
  step.PushInt(0).Emit(Op::kIreturn);
  provider.AddClassFile(base.Build().value());
  for (int i = 0; i < 5; i++) {
    std::string name = "poly/Sub" + std::to_string(i);
    ClassBuilder sub(name, "poly/Base");
    sub.AddDefaultConstructor();
    MethodBuilder& impl = sub.AddMethod(AccessFlags::kPublic, "step", "()I");
    impl.PushInt(i + 1).Emit(Op::kIreturn);
    provider.AddClassFile(sub.Build().value());
  }
  ClassBuilder cb("poly/Main", "java/lang/Object");
  MethodBuilder& call = cb.AddMethod(AccessFlags::kStatic, "call", "(Lpoly/Base;)I");
  call.LoadLocal("L", 0).InvokeVirtual("poly/Base", "step", "()I").Emit(Op::kIreturn);
  MethodBuilder& run = cb.AddMethod(AccessFlags::kStatic, "run", "()I");
  run.PushInt(0).StoreLocal("I", 0);
  for (int i = 0; i < 5; i++) {
    std::string name = "poly/Sub" + std::to_string(i);
    run.New(name).Emit(Op::kDup).InvokeSpecial(name, "<init>", "()V");
    run.InvokeStatic("poly/Main", "call", "(Lpoly/Base;)I");
    run.LoadLocal("I", 0).Emit(Op::kIadd).StoreLocal("I", 0);
  }
  run.LoadLocal("I", 0).Emit(Op::kIreturn);
  provider.AddClassFile(cb.Build().value());
}

const MethodProfileRow* FindRow(const std::vector<MethodProfileRow>& rows,
                                const std::string& prefix) {
  for (const auto& row : rows) {
    if (row.method.rfind(prefix, 0) == 0) {
      return &row;
    }
  }
  return nullptr;
}

TEST(ProfileCounters, InvocationsAndBackedges) {
  for (bool quicken : {true, false}) {
    MapClassProvider provider;
    InstallSystemLibrary(provider);
    InstallWorkload(provider);
    MachineConfig config;
    config.quicken = quicken;
    Machine machine(config, &provider);
    auto run = machine.CallStatic("prof/Main", "loopy", "()I");
    ASSERT_TRUE(run.ok() && !run->threw) << "quicken=" << quicken;

    auto rows = CollectMethodProfile(machine.registry());
    const MethodProfileRow* loopy = FindRow(rows, "prof/Main.loopy");
    const MethodProfileRow* step = FindRow(rows, "prof/Node.step");
    ASSERT_NE(loopy, nullptr);
    ASSERT_NE(step, nullptr);
    EXPECT_EQ(loopy->invocations, 1u) << "quicken=" << quicken;
    EXPECT_EQ(loopy->backedges, static_cast<uint64_t>(kLoopIterations));
    EXPECT_EQ(step->invocations, static_cast<uint64_t>(kLoopIterations));
    // Monomorphic site: one cold miss, then hits all the way.
    EXPECT_EQ(loopy->ic_misses, 1u) << "quicken=" << quicken;
    EXPECT_EQ(loopy->ic_hits, static_cast<uint64_t>(kLoopIterations) - 1);
    EXPECT_EQ(loopy->megamorphic_sites, 0u);
  }
}

TEST(ProfileCounters, MegamorphicSiteDetected) {
  MapClassProvider provider;
  InstallSystemLibrary(provider);
  InstallPolymorphic(provider);
  Machine machine(MachineConfig{}, &provider);
  auto run = machine.CallStatic("poly/Main", "run", "()I");
  ASSERT_TRUE(run.ok() && !run->threw);
  EXPECT_EQ(run->value.num, 1 + 2 + 3 + 4 + 5);

  auto rows = CollectMethodProfile(machine.registry());
  const MethodProfileRow* call = FindRow(rows, "poly/Main.call");
  ASSERT_NE(call, nullptr);
  // Five receivers through one site: every dispatch misses after the first
  // install, and the receiver transitions cross the megamorphic threshold.
  EXPECT_EQ(call->invocations, 5u);
  EXPECT_GE(call->megamorphic_sites, 1u);
  EXPECT_EQ(call->ic_hits, 0u);
}

TEST(ProfileCounters, TableRendersHotMethodsFirst) {
  MapClassProvider provider;
  InstallSystemLibrary(provider);
  InstallWorkload(provider);
  Machine machine(MachineConfig{}, &provider);
  ASSERT_TRUE(machine.CallStatic("prof/Main", "loopy", "()I").ok());
  auto rows = CollectMethodProfile(machine.registry());
  ASSERT_GE(rows.size(), 2u);
  // Sorted by invocations descending: the 20k-call step leads.
  EXPECT_EQ(rows[0].method.rfind("prof/Node.step", 0), 0u);
  std::string table = MethodProfileTable(rows, 5);
  EXPECT_NE(table.find("prof/Node.step"), std::string::npos);
  EXPECT_NE(table.find("invocations"), std::string::npos);
}

struct ProfiledRun {
  std::string collapsed;
  std::string pprof;
  uint64_t samples = 0;
  uint64_t virtual_nanos = 0;
  int64_t result = 0;
};

ProfiledRun RunProfiled(bool quicken) {
  MapClassProvider provider;
  InstallSystemLibrary(provider);
  InstallWorkload(provider);
  MachineConfig config;
  config.quicken = quicken;
  Machine machine(config, &provider);
  ExecutionProfiler profiler;
  machine.SetProfiler(&profiler);
  auto run = machine.CallStatic("prof/Main", "loopy", "()I");
  EXPECT_TRUE(run.ok() && !run->threw);
  ProfiledRun out;
  out.collapsed = profiler.CollapsedStacks();
  out.pprof = profiler.PprofText();
  out.samples = profiler.samples();
  out.virtual_nanos = machine.virtual_nanos();
  out.result = run.ok() ? run->value.num : -1;
  return out;
}

TEST(ProfileSampling, ByteIdenticalAcrossEngines) {
  ProfiledRun quick = RunProfiled(/*quicken=*/true);
  ProfiledRun reference = RunProfiled(/*quicken=*/false);
  EXPECT_GT(quick.samples, 0u);
  EXPECT_EQ(quick.result, reference.result);
  // The virtual clock is engine-invariant, samples trigger on it, and exports
  // sort deterministically — so the profile bytes cannot differ.
  EXPECT_EQ(quick.virtual_nanos, reference.virtual_nanos);
  EXPECT_EQ(quick.samples, reference.samples);
  EXPECT_EQ(quick.collapsed, reference.collapsed);
  EXPECT_EQ(quick.pprof, reference.pprof);
}

TEST(ProfileSampling, RepeatRunsAreByteIdentical) {
  ProfiledRun a = RunProfiled(/*quicken=*/true);
  ProfiledRun b = RunProfiled(/*quicken=*/true);
  EXPECT_EQ(a.collapsed, b.collapsed);
  EXPECT_EQ(a.pprof, b.pprof);
}

TEST(ProfileSampling, StacksShowCallerAndLeaf) {
  ProfiledRun run = RunProfiled(/*quicken=*/true);
  // The loop body spends most virtual time in loopy itself and in step with
  // loopy as caller; both stacks must appear, root-first, semicolon-joined.
  EXPECT_NE(run.collapsed.find("prof/Main.loopy"), std::string::npos);
  EXPECT_NE(run.collapsed.find("prof/Main.loopy;prof/Node.step"), std::string::npos);
  EXPECT_NE(run.pprof.find("period_nanos:"), std::string::npos);
  EXPECT_NE(run.pprof.find("ppm"), std::string::npos);
}

TEST(ProfileSampling, ResetClearsState) {
  MapClassProvider provider;
  InstallSystemLibrary(provider);
  InstallWorkload(provider);
  Machine machine(MachineConfig{}, &provider);
  ExecutionProfiler profiler;
  machine.SetProfiler(&profiler);
  ASSERT_TRUE(machine.CallStatic("prof/Main", "loopy", "()I").ok());
  EXPECT_GT(profiler.samples(), 0u);
  profiler.Reset();
  EXPECT_EQ(profiler.samples(), 0u);
  EXPECT_TRUE(profiler.CollapsedStacks().empty());
}

}  // namespace
}  // namespace dvm
