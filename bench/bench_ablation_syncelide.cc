// Ablation: the transparent synchronization-elision service enabled by the
// tracing data of section 3.3 ([Aldrich et al. 99]). A lock-heavy workload
// runs with and without the optimizer in the pipeline.
#include "bench/bench_util.h"
#include "src/bytecode/builder.h"
#include "src/optimizer/sync_elide.h"
#include "src/runtime/syslib.h"

namespace dvm {
namespace {

// A worker that acquires a method-local lock around every update — the
// conservative-synchronization pattern the Aldrich et al. traces found
// everywhere in real Java code.
ClassFile BuildLockHeavyWorker(int iterations) {
  ClassBuilder cb("app/Locky", "java/lang/Object");
  cb.AddDefaultConstructor();
  MethodBuilder& m = cb.AddMethod(AccessFlags::kPublic | AccessFlags::kStatic, "main", "()V");
  Label loop = m.NewLabel(), done = m.NewLabel();
  m.New("java/lang/Object").Emit(Op::kDup);
  m.InvokeSpecial("java/lang/Object", "<init>", "()V");
  m.StoreLocal("Ljava/lang/Object;", 0);
  m.PushInt(iterations).StoreLocal("I", 1);
  m.PushInt(0).StoreLocal("I", 2);
  m.Bind(loop).LoadLocal("I", 1).Branch(Op::kIfle, done);
  m.LoadLocal("Ljava/lang/Object;", 0).Emit(Op::kMonitorenter);
  m.LoadLocal("I", 2).PushInt(7).Emit(Op::kIadd).StoreLocal("I", 2);
  m.LoadLocal("Ljava/lang/Object;", 0).Emit(Op::kMonitorexit);
  m.Emit(Op::kIinc, 1, -1).Branch(Op::kGoto, loop);
  m.Bind(done);
  m.LoadLocal("I", 2).InvokeStatic("java/lang/Integer", "toString",
                                   "(I)Ljava/lang/String;");
  m.InvokeStatic("java/lang/System", "println", "(Ljava/lang/String;)V");
  m.Emit(Op::kReturn);
  return cb.Build().value();
}

uint64_t Run(const ClassFile& cls, bool elide, uint64_t* monitors_elided) {
  ClassFile copy = cls;
  if (elide) {
    SyncElideFilter filter;
    MapClassEnv env;
    FilterContext ctx;
    ctx.env = &env;
    if (!filter.Apply(copy, ctx).ok()) {
      std::abort();
    }
    *monitors_elided = filter.stats().monitors_elided;
  }
  MapClassProvider provider;
  InstallSystemLibrary(provider);
  provider.AddClassFile(copy);
  MachineConfig config;
  config.max_instructions = ~0ULL;
  Machine machine(config, &provider);
  auto out = machine.RunMain("app/Locky");
  if (!out.ok() || out->threw) {
    std::abort();
  }
  return machine.virtual_nanos();
}

}  // namespace
}  // namespace dvm

int main() {
  using namespace dvm;
  using namespace dvm::bench;

  PrintHeader("Synchronization-elision ablation (lock-heavy worker)",
              "Section 3.3 / [Aldrich et al. 99]");
  PrintRow({"Config", "Runtime(s)", "Improvement"}, 17);

  ClassFile worker = BuildLockHeavyWorker(200'000);
  uint64_t elided = 0;
  uint64_t baseline = Run(worker, /*elide=*/false, &elided);
  uint64_t optimized = Run(worker, /*elide=*/true, &elided);

  PrintRow({"monitors kept", FmtSeconds(baseline), "-"}, 17);
  PrintRow({"monitors elided", FmtSeconds(optimized),
            FmtDouble((1.0 - static_cast<double>(optimized) / baseline) * 100.0, 1) + "%"},
           17);
  std::printf("\nMonitor pairs elided by escape analysis: %llu. The object never\n"
              "escapes its method, so no other thread can ever contend on it.\n",
              static_cast<unsigned long long>(elided));
  return 0;
}
