#include "src/support/logging.h"

#include <atomic>
#include <cstdio>

namespace dvm {
namespace {

// Atomic: SetLogLevel is called while proxy worker threads log concurrently;
// a plain global here was a data race (TSan-visible once workers existed).
std::atomic<LogLevel> g_level{LogLevel::kWarning};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

bool LogEnabled(LogLevel level) {
  return static_cast<int>(level) >=
         static_cast<int>(g_level.load(std::memory_order_relaxed));
}

void LogMessage(LogLevel level, const std::string& message) {
  if (!LogEnabled(level)) {
    return;
  }
  std::fprintf(stderr, "[dvm %s] %s\n", LevelName(level), message.c_str());
}

}  // namespace dvm
