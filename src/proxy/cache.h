// The proxy's rewrite cache: rewritten-class bytes keyed by class name and
// service-configuration version. A hit skips the whole static pipeline, which
// is what makes "DVM cached" *faster* than a monolithic VM in Figure 6.
//
// Concurrent layout: the byte budget is divided over N shards (hash of key →
// shard), each with its own mutex, LRU list and map, so cache-hit traffic from
// many worker threads does not serialize on one lock. Get() copies the entry
// out under the shard lock; returned values are never invalidated by later
// eviction. SingleFlightGroup coalesces concurrent misses on the same key so
// the expensive rewrite pipeline runs once per key.
#ifndef SRC_PROXY_CACHE_H_
#define SRC_PROXY_CACHE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/support/bytes.h"

namespace dvm {

struct CachedClass {
  Bytes main_class;
  std::vector<std::pair<std::string, Bytes>> extra_classes;
  // Security-policy epoch the rewrite ran under. Responses carry it so a
  // client (and the replication layer) can prove an artifact is current.
  uint64_t epoch = 0;
  // Serialized verification certificate (verifier/certificate.h) for the
  // rewritten main class, emitted by the verify filter's fixpoint. Empty when
  // certificate emission failed or the pipeline ran without the verifier;
  // replicas receiving the artifact then fall back to full re-verification.
  Bytes certificate;
};

class RewriteCache {
 public:
  static constexpr size_t kDefaultShards = 8;

  // `num_shards` of 1 gives the classic single-lock LRU (exact global
  // eviction order); the default spreads the byte budget evenly over shards.
  explicit RewriteCache(size_t capacity_bytes, size_t num_shards = kDefaultShards);

  // nullopt on miss. A hit refreshes LRU position and copies the entry out so
  // the caller holds no pointer into a shard.
  std::optional<CachedClass> Get(const std::string& key);
  // Copy-out read that refreshes nothing: no LRU move, no hit/miss counters.
  // Replication equality checks use this so verifying convergence does not
  // perturb eviction order or cache statistics.
  std::optional<CachedClass> Peek(const std::string& key) const;
  void Put(const std::string& key, CachedClass value);
  void Clear();

  size_t size_bytes() const;
  size_t entries() const;
  uint64_t hits() const;
  uint64_t misses() const;
  // Shard mutex acquisitions (Get + Put + Clear), for the contention report.
  uint64_t lock_acquisitions() const { return lock_acquisitions_.load(std::memory_order_relaxed); }
  size_t shard_count() const { return shards_.size(); }

  struct ShardStats {
    size_t entries = 0;
    size_t bytes = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
  };
  std::vector<ShardStats> PerShardStats() const;

 private:
  struct Entry {
    CachedClass value;
    std::list<std::string>::iterator lru_pos;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<std::string> lru;  // front = most recent
    std::map<std::string, Entry> entries;
    size_t size_bytes = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
  };

  static size_t SizeOf(const CachedClass& value);
  // Requires shard.mu held.
  static void EvictTo(Shard& shard, size_t budget);
  Shard& ShardFor(const std::string& key);

  size_t shard_capacity_bytes_;
  mutable std::atomic<uint64_t> lock_acquisitions_{0};
  std::vector<std::unique_ptr<Shard>> shards_;
};

// Miss coalescing: the first caller to Acquire() a key becomes its leader and
// runs the rewrite; every other caller blocks until the leader Release()s,
// then re-checks the cache. Followers loop back to Acquire() if the leader
// failed (or its entry was already evicted), so a key is never stranded.
class SingleFlightGroup {
 public:
  // True: caller is now the leader for `key` and must call Release(key) on
  // every exit path. False: the caller waited out another leader.
  bool Acquire(const std::string& key);
  void Release(const std::string& key);

  // Number of times a caller blocked behind an in-flight rewrite.
  uint64_t coalesced_waits() const { return coalesced_.load(std::memory_order_relaxed); }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::set<std::string> inflight_;
  std::atomic<uint64_t> coalesced_{0};
};

// RAII leader lease so error returns inside the rewrite path release the key.
class SingleFlightLease {
 public:
  SingleFlightLease(SingleFlightGroup* group, std::string key)
      : group_(group), key_(std::move(key)) {}
  ~SingleFlightLease() { group_->Release(key_); }
  SingleFlightLease(const SingleFlightLease&) = delete;
  SingleFlightLease& operator=(const SingleFlightLease&) = delete;

 private:
  SingleFlightGroup* group_;
  std::string key_;
};

}  // namespace dvm

#endif  // SRC_PROXY_CACHE_H_
