file(REMOVE_RECURSE
  "CMakeFiles/dvm_support.dir/bytes.cc.o"
  "CMakeFiles/dvm_support.dir/bytes.cc.o.d"
  "CMakeFiles/dvm_support.dir/logging.cc.o"
  "CMakeFiles/dvm_support.dir/logging.cc.o.d"
  "CMakeFiles/dvm_support.dir/md5.cc.o"
  "CMakeFiles/dvm_support.dir/md5.cc.o.d"
  "CMakeFiles/dvm_support.dir/stats.cc.o"
  "CMakeFiles/dvm_support.dir/stats.cc.o.d"
  "CMakeFiles/dvm_support.dir/strings.cc.o"
  "CMakeFiles/dvm_support.dir/strings.cc.o.d"
  "libdvm_support.a"
  "libdvm_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvm_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
