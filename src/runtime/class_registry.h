// Loaded-class registry: fetches class bytes through a ClassProvider (the
// network in a real deployment, the simulated network in experiments), parses
// them, links superclass chains, and computes field layouts. Loading is lazy —
// a class is fetched the first time something references it, which is what
// makes the paper's deferred link checks (and its repartitioning optimizer)
// profitable.
#ifndef SRC_RUNTIME_CLASS_REGISTRY_H_
#define SRC_RUNTIME_CLASS_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/bytecode/classfile.h"
#include "src/bytecode/code.h"
#include "src/runtime/value.h"
#include "src/support/result.h"
#include "src/verifier/class_env.h"

namespace dvm {

// Source of class bytes. Implementations: in-memory maps (tests, local apps)
// and the simulated network client (charges transfer time per fetch).
class ClassProvider {
 public:
  virtual ~ClassProvider() = default;
  virtual Result<Bytes> FetchClass(const std::string& class_name) = 0;
};

class MapClassProvider : public ClassProvider {
 public:
  void Add(const std::string& class_name, Bytes data) {
    classes_[class_name] = std::move(data);
  }
  void AddClassFile(const ClassFile& cls);
  Result<Bytes> FetchClass(const std::string& class_name) override;
  bool Has(const std::string& class_name) const { return classes_.count(class_name) > 0; }

 private:
  std::map<std::string, Bytes> classes_;
};

struct RuntimeClass;

// Per-instruction resolution cache ("quickening"): after the first execution
// of a field access or invoke, the resolved owner/slot/target is remembered so
// later executions skip constant-pool string resolution. Sound because loaded
// classes are immutable and initialization is monotonic. invokevirtual uses a
// monomorphic last-receiver cache with a slow-path fallback.
struct InlineCache {
  // Field accesses.
  RuntimeClass* field_owner = nullptr;
  uint32_t field_slot = 0;
  // Invokes.
  RuntimeClass* invoke_owner = nullptr;
  const MethodInfo* invoke_method = nullptr;
  std::string receiver_class;  // invokevirtual: cached dynamic receiver type
  int arg_count = -1;          // incl. receiver for instance methods; -1 = unresolved
  bool has_result = false;
};

// Interpreter-ready method body: decoded instructions and handler table
// converted to instruction indices. Built lazily, cached per method.
struct PreparedMethod {
  const MethodInfo* method = nullptr;
  std::vector<Instr> code;
  // Lazily sized to code.size() on first execution; indexed by instruction.
  std::vector<InlineCache> cache;
  // True when the class carries a CompiledStamp (translated ahead of time by
  // the network compiler); such code runs at the compiled-instruction cost.
  bool compiled = false;
  struct Handler {
    uint32_t start_ix = 0;   // [start_ix, end_ix) instruction range
    uint32_t end_ix = 0;
    uint32_t handler_ix = 0;
    std::string catch_class;  // "" = catch all
  };
  std::vector<Handler> handlers;
};

enum class InitState : uint8_t { kUninitialized, kInitializing, kInitialized };

struct RuntimeClass {
  std::string name;
  ClassFile file;
  RuntimeClass* super = nullptr;

  // Instance field layout: slots [0, total_instance_fields) with inherited
  // fields first. own_field_slots maps names declared *by this class*.
  uint32_t field_layout_start = 0;
  uint32_t total_instance_fields = 0;
  std::unordered_map<std::string, uint32_t> own_field_slots;
  std::vector<std::string> own_field_descs;  // parallel to declaration order

  // Statics, declared by this class only.
  std::unordered_map<std::string, uint32_t> static_slots;
  std::vector<Value> statics;

  InitState init_state = InitState::kUninitialized;

  // Per-method prepared code cache, keyed by "name:descriptor".
  std::unordered_map<std::string, std::unique_ptr<PreparedMethod>> prepared;

  // Security identifier assigned by policy (used by both the DTOS-style DVM
  // service and the stack-introspection baseline). Empty = unprivileged.
  std::string security_domain;

  // Walks this chain for a field declared with `name`; nullptr if absent.
  const RuntimeClass* FindFieldOwner(const std::string& field_name) const;
  // Walks this chain for a method; nullptr if absent.
  const RuntimeClass* FindMethodOwner(const std::string& method_name,
                                      const std::string& descriptor) const;
};

class ClassRegistry : public ClassEnv {
 public:
  explicit ClassRegistry(ClassProvider* provider) : provider_(provider) {}

  // Loads (if needed) and links the class and its superclass chain. Does not
  // run <clinit> — initialization is triggered by the interpreter on first
  // active use.
  Result<RuntimeClass*> GetClass(const std::string& class_name);

  // Already-loaded lookup; never triggers a fetch.
  RuntimeClass* FindLoaded(const std::string& class_name);

  // ClassEnv over loaded classes (used by phase-4 checks and checkcast).
  const ClassFile* Lookup(const std::string& class_name) const override;

  // Invoked after parse/link of each newly loaded class, before it becomes
  // visible. The machine installs load-time verification here (monolithic
  // configuration) and accounting. Returning an error aborts the load.
  std::function<Status(RuntimeClass&)> on_load;

  // Environment queries that force loading (used by instanceof/checkcast and
  // the dynamic link checker, which may fault in classes).
  Result<bool> IsSubclass(const std::string& sub, const std::string& super);

  uint64_t loaded_count() const { return loaded_order_.size(); }
  const std::vector<std::string>& loaded_order() const { return loaded_order_; }

 private:
  ClassProvider* provider_;
  std::map<std::string, std::unique_ptr<RuntimeClass>> classes_;
  std::set<std::string> loading_;  // cycle detection
  std::vector<std::string> loaded_order_;
};

}  // namespace dvm

#endif  // SRC_RUNTIME_CLASS_REGISTRY_H_
