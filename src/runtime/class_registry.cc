#include "src/runtime/class_registry.h"

#include "src/bytecode/descriptor.h"
#include "src/bytecode/serializer.h"
#include "src/support/interner.h"

namespace dvm {

void MapClassProvider::AddClassFile(const ClassFile& cls) {
  classes_[cls.name()] = MustWriteClassFile(cls);
}

Result<Bytes> MapClassProvider::FetchClass(const std::string& class_name) {
  auto it = classes_.find(class_name);
  if (it == classes_.end()) {
    return Error{ErrorCode::kNotFound, "class not available: " + class_name};
  }
  return it->second;
}

const RuntimeClass* RuntimeClass::FindFieldOwner(const std::string& field_name) const {
  for (const RuntimeClass* c = this; c != nullptr; c = c->super) {
    if (c->own_field_slots.count(field_name) > 0 || c->static_slots.count(field_name) > 0) {
      return c;
    }
  }
  return nullptr;
}

const RuntimeClass* RuntimeClass::FindMethodOwner(const std::string& method_name,
                                                  const std::string& descriptor) const {
  const MethodEntry* entry =
      FindMethodEntry(InternSymbol(method_name), InternSymbol(descriptor));
  return entry == nullptr ? nullptr : entry->owner;
}

const RuntimeClass::MethodEntry* RuntimeClass::FindMethodEntry(uint32_t method_sym,
                                                               uint32_t desc_sym) const {
  auto it = method_table.find(SymbolPairKey(method_sym, desc_sym));
  return it == method_table.end() ? nullptr : &it->second;
}

RuntimeClass* ClassRegistry::FindLoaded(const std::string& class_name) {
  auto it = classes_.find(class_name);
  return it == classes_.end() ? nullptr : it->second.get();
}

const ClassFile* ClassRegistry::Lookup(const std::string& class_name) const {
  auto it = classes_.find(class_name);
  return it == classes_.end() ? nullptr : &it->second->file;
}

Result<RuntimeClass*> ClassRegistry::GetClass(const std::string& class_name) {
  if (RuntimeClass* loaded = FindLoaded(class_name)) {
    return loaded;
  }
  if (loading_.count(class_name) > 0) {
    return Error{ErrorCode::kLinkError, "circular superclass chain at " + class_name};
  }
  loading_.insert(class_name);

  auto finish = [this, &class_name](auto result) {
    loading_.erase(class_name);
    return result;
  };

  auto fetched = provider_->FetchClass(class_name);
  if (!fetched.ok()) {
    return finish(Result<RuntimeClass*>(fetched.error()));
  }
  auto parsed = ReadClassFile(fetched.value());
  if (!parsed.ok()) {
    return finish(Result<RuntimeClass*>(parsed.error()));
  }
  if (parsed->name() != class_name) {
    return finish(Result<RuntimeClass*>(Error{
        ErrorCode::kLinkError,
        "provider returned class " + parsed->name() + " for request " + class_name}));
  }

  auto rc = std::make_unique<RuntimeClass>();
  rc->name = class_name;
  rc->name_sym = InternSymbol(class_name);
  rc->file = std::move(parsed).value();

  // Link the superclass chain first.
  std::string super_name = rc->file.super_name();
  if (!super_name.empty()) {
    auto super = GetClass(super_name);
    if (!super.ok()) {
      return finish(Result<RuntimeClass*>(super.error()));
    }
    rc->super = super.value();
  }

  // Field layout: inherited slots first, own fields appended. Descriptors are
  // parsed into FieldKind once here; allocation paths use the typed template
  // instead of re-inspecting descriptor strings per object.
  rc->field_layout_start = rc->super != nullptr ? rc->super->total_instance_fields : 0;
  if (rc->super != nullptr) {
    rc->field_kinds = rc->super->field_kinds;
    rc->field_template = rc->super->field_template;
  }
  uint32_t next_instance = rc->field_layout_start;
  for (const auto& f : rc->file.fields) {
    FieldKind kind = FieldKindFor(f.descriptor);
    if (f.IsStatic()) {
      rc->static_slots[f.name] = static_cast<uint32_t>(rc->statics.size());
      rc->statics.push_back(DefaultValueForKind(kind));
    } else {
      rc->own_field_slots[f.name] = next_instance++;
      rc->own_field_descs.push_back(f.descriptor);
      rc->field_kinds.push_back(kind);
      rc->field_template.push_back(DefaultValueForKind(kind));
    }
  }
  rc->total_instance_fields = next_instance;

  // Flattened method table: superclass entries first, own methods overlaid
  // (an override replaces the inherited entry under the same key).
  if (rc->super != nullptr) {
    rc->method_table = rc->super->method_table;
  }
  for (const MethodInfo& m : rc->file.methods) {
    uint64_t key = SymbolPairKey(InternSymbol(m.name), InternSymbol(m.descriptor));
    rc->method_table[key] = RuntimeClass::MethodEntry{rc.get(), &m};
  }

  RuntimeClass* out = rc.get();
  if (on_load) {
    Status s = on_load(*out);
    if (!s.ok()) {
      return finish(Result<RuntimeClass*>(s.error()));
    }
  }
  classes_[class_name] = std::move(rc);
  loaded_order_.push_back(class_name);
  loading_.erase(class_name);
  return out;
}

Result<bool> ClassRegistry::IsSubclass(const std::string& sub, const std::string& super) {
  return IsSubclassSym(InternSymbol(sub), InternSymbol(super));
}

Result<bool> ClassRegistry::IsSubclassSym(uint32_t sub_sym, uint32_t super_sym) {
  uint64_t key = SymbolPairKey(sub_sym, super_sym);
  auto memo = subclass_memo_.find(key);
  if (memo != subclass_memo_.end()) {
    return memo->second;
  }
  bool clean = true;
  auto result = IsSubclassUncached(SymbolName(sub_sym), SymbolName(super_sym), &clean);
  if (result.ok() && clean) {
    subclass_memo_[key] = result.value();
  }
  return result;
}

Result<bool> ClassRegistry::IsSubclassUncached(const std::string& sub,
                                               const std::string& super, bool* clean) {
  if (sub == super || super == "java/lang/Object") {
    return true;
  }
  if (!sub.empty() && sub[0] == '[') {
    if (super.empty() || super[0] != '[') {
      return false;
    }
    std::string se = ArrayElementDescriptor(sub);
    std::string de = ArrayElementDescriptor(super);
    if (se == de) {
      return true;
    }
    if (se.size() > 1 && se[0] == 'L' && de.size() > 1 && de[0] == 'L') {
      return IsSubclassUncached(ClassNameFromDescriptor(se), ClassNameFromDescriptor(de),
                                clean);
    }
    return false;
  }
  // Force-load the chain; instanceof on an unloadable class is a link error.
  auto loaded = GetClass(sub);
  if (!loaded.ok()) {
    *clean = false;
    return loaded.error();
  }
  for (const RuntimeClass* c = loaded.value(); c != nullptr; c = c->super) {
    if (c->name == super) {
      return true;
    }
    for (uint16_t idx : c->file.interfaces) {
      auto name = c->file.pool().ClassNameAt(idx);
      if (!name.ok()) {
        *clean = false;
        continue;
      }
      if (name.value() == super) {
        return true;
      }
      auto via = IsSubclassUncached(name.value(), super, clean);
      if (!via.ok()) {
        *clean = false;
      } else if (via.value()) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace dvm
