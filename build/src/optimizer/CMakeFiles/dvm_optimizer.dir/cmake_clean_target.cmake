file(REMOVE_RECURSE
  "libdvm_optimizer.a"
)
