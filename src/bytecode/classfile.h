// In-memory model of a DVM class file: constant pool, fields, methods with code
// attributes, and generic named attributes. Generic attributes carry service
// annotations (e.g. the proxy's signature attribute and the reflection service's
// self-describing metadata, paper section 4.3).
#ifndef SRC_BYTECODE_CLASSFILE_H_
#define SRC_BYTECODE_CLASSFILE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/bytecode/constant_pool.h"
#include "src/support/bytes.h"

namespace dvm {

// Access and property flags, matching JVM bit positions where they exist.
struct AccessFlags {
  static constexpr uint16_t kPublic = 0x0001;
  static constexpr uint16_t kPrivate = 0x0002;
  static constexpr uint16_t kProtected = 0x0004;
  static constexpr uint16_t kStatic = 0x0008;
  static constexpr uint16_t kFinal = 0x0010;
  static constexpr uint16_t kSynchronized = 0x0020;
  static constexpr uint16_t kNative = 0x0100;
  static constexpr uint16_t kInterface = 0x0200;
  static constexpr uint16_t kAbstract = 0x0400;
};

struct Attribute {
  std::string name;
  Bytes data;
};

// Well-known attribute names.
inline constexpr const char* kAttrSignatureDigest = "dvm.SignatureDigest";
inline constexpr const char* kAttrServiceStamp = "dvm.ServiceStamp";
inline constexpr const char* kAttrReflectionInfo = "dvm.ReflectionInfo";
inline constexpr const char* kAttrSourceApp = "dvm.SourceApp";
// Present when the compilation service translated the class to the client's
// native format; the payload names the target platform.
inline constexpr const char* kAttrCompiledStamp = "dvm.CompiledStamp";
// Tier-1 compiled-code blobs produced by the proxy's CompilerFilter for hot
// methods (DESIGN.md §16): a packed ("name:descriptor" -> blob) map, see
// Pack/UnpackTieredAttribute in src/runtime/tiered.h. Rides the class bytes,
// so the PR 9 digest/certificate/signature chain covers it automatically.
inline constexpr const char* kAttrTieredCode = "dvm.TieredCode";

struct FieldInfo {
  uint16_t access_flags = 0;
  std::string name;
  std::string descriptor;
  std::vector<Attribute> attributes;

  bool IsStatic() const { return (access_flags & AccessFlags::kStatic) != 0; }
};

struct ExceptionHandler {
  uint16_t start_pc = 0;    // [start_pc, end_pc) byte range covered
  uint16_t end_pc = 0;
  uint16_t handler_pc = 0;  // byte offset of the handler
  uint16_t catch_type = 0;  // constant pool ClassRef index, 0 = catch all
};

struct CodeAttr {
  uint16_t max_stack = 0;
  uint16_t max_locals = 0;
  Bytes code;  // encoded instruction stream
  std::vector<ExceptionHandler> handlers;
};

struct MethodInfo {
  uint16_t access_flags = 0;
  std::string name;
  std::string descriptor;
  std::optional<CodeAttr> code;  // absent for native/abstract methods
  std::vector<Attribute> attributes;

  bool IsStatic() const { return (access_flags & AccessFlags::kStatic) != 0; }
  bool IsNative() const { return (access_flags & AccessFlags::kNative) != 0; }
  bool IsAbstract() const { return (access_flags & AccessFlags::kAbstract) != 0; }
  bool IsConstructor() const { return name == "<init>"; }
  bool IsClassInitializer() const { return name == "<clinit>"; }
  std::string Id() const { return name + ":" + descriptor; }
};

class ClassFile {
 public:
  static constexpr uint32_t kMagic = 0xCAFEDA7A;
  static constexpr uint16_t kVersion = 1;

  ConstantPool& pool() { return pool_; }
  const ConstantPool& pool() const { return pool_; }

  uint16_t access_flags = 0;
  uint16_t this_class = 0;   // ClassRef index
  uint16_t super_class = 0;  // ClassRef index, 0 only for the root class
  std::vector<uint16_t> interfaces;  // ClassRef indices
  std::vector<FieldInfo> fields;
  std::vector<MethodInfo> methods;
  std::vector<Attribute> attributes;

  // Convenience accessors; return "" on malformed indices (phase-1 verification
  // rejects those before any other component sees the class).
  std::string name() const;
  std::string super_name() const;

  const MethodInfo* FindMethod(const std::string& method_name,
                               const std::string& descriptor) const;
  MethodInfo* FindMethod(const std::string& method_name, const std::string& descriptor);
  const FieldInfo* FindField(const std::string& field_name) const;

  const Attribute* FindAttribute(const std::string& attr_name) const;
  void SetAttribute(const std::string& attr_name, Bytes data);
  bool RemoveAttribute(const std::string& attr_name);

  bool IsInterface() const { return (access_flags & AccessFlags::kInterface) != 0; }

 private:
  ConstantPool pool_;
};

}  // namespace dvm

#endif  // SRC_BYTECODE_CLASSFILE_H_
