// The transparent network proxy housing the static service components
// (paper sections 2-3). It intercepts class requests, fetches origin bytes,
// parses once, runs the stacked filter pipeline, generates the instrumented
// binary once, optionally signs it, caches the result, and logs an audit
// trail. CPU time per request is accounted so the scaling experiment
// (Figure 10) can queue requests on a simulated single-CPU server.
#ifndef SRC_PROXY_PROXY_H_
#define SRC_PROXY_PROXY_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/proxy/cache.h"
#include "src/proxy/signature.h"
#include "src/rewrite/filter.h"
#include "src/runtime/class_registry.h"
#include "src/verifier/class_env.h"

namespace dvm {

struct ProxyConfig {
  bool enable_cache = true;
  size_t cache_capacity_bytes = 48 * 1024 * 1024;  // of the host's 64 MB
  bool sign_output = false;
  std::string signing_key = "dvm-organization-key";

  // CPU cost model for the proxy host (200 MHz PentiumPro): parsing dominates,
  // then per-check service work, then code generation. Calibrated so an
  // average applet costs ~265 ms to parse and instrument (section 4.1.2).
  uint64_t nanos_per_request_base = 2'500'000;  // HTTP handling, per request
  uint64_t nanos_per_byte_parse = 9'000;
  uint64_t nanos_per_byte_emit = 3'000;
  uint64_t nanos_per_check = 60;
  // Cache hits: connection handling plus a cheap read of the stored rewrite.
  uint64_t nanos_per_hit_base = 600'000;
  uint64_t nanos_per_byte_cached = 200;
  // Workspace held while a request is in flight (memory accounting, Fig. 10).
  size_t workspace_bytes_per_request = 262'144;
  size_t memory_bytes = 64 * 1024 * 1024;
};

// One proxied class response.
struct ProxyResponse {
  Bytes data;
  std::vector<std::pair<std::string, Bytes>> extra_classes;  // e.g. $cold splits
  bool cache_hit = false;
  uint64_t cpu_nanos = 0;      // proxy CPU consumed by this request
  uint64_t origin_bytes = 0;   // bytes fetched from the origin server
};

class DvmProxy {
 public:
  // `origin` supplies untransformed class bytes (the web server / Internet);
  // `library_env` is the trusted system library the verifier can see.
  DvmProxy(ProxyConfig config, const ClassEnv* library_env, ClassProvider* origin);

  // The pipeline points at the internal environment; the proxy is pinned.
  DvmProxy(const DvmProxy&) = delete;
  DvmProxy& operator=(const DvmProxy&) = delete;

  // Adds a static service to the pipeline (order = stacking order).
  void AddFilter(std::unique_ptr<CodeFilter> filter);

  // Invoked for every class version served from the pipeline (not for cache
  // hits) with the served bytes; the administration console uses it to keep
  // the organization's code-version inventory.
  void SetServedObserver(std::function<void(const std::string&, const Bytes&)> observer) {
    served_observer_ = std::move(observer);
  }

  // `platform` is the requesting client's native format (from its handshake);
  // the cache is keyed on (class, platform) so an x86 client and an Alpha
  // client each receive code compiled for their own architecture.
  Result<ProxyResponse> HandleRequest(const std::string& class_name,
                                      const std::string& platform = "");

  // Drops all rewritten state; used when the service configuration (e.g. the
  // security policy) changes and classes must be re-instrumented.
  void InvalidateCache() { cache_.Clear(); }

  const std::vector<std::string>& audit_trail() const { return audit_trail_; }
  const RewriteCache& cache() const { return cache_; }
  uint64_t requests_served() const { return requests_served_; }
  uint64_t total_cpu_nanos() const { return total_cpu_nanos_; }
  const CodeSigner& signer() const { return signer_; }

  // Memory in use with `inflight` concurrent requests: cache + per-request
  // workspaces. The Figure 10 degradation appears when this exceeds
  // config.memory_bytes and the host starts paging.
  size_t MemoryInUse(size_t inflight_requests) const;
  // CPU multiplier under memory pressure (1.0 when resident).
  double ThrashFactor(size_t inflight_requests) const;

 private:
  // Environment the verifier sees: library + every class this proxy parsed.
  class SeenEnv : public ClassEnv {
   public:
    explicit SeenEnv(const ClassEnv* library) : library_(library) {}
    const ClassFile* Lookup(const std::string& class_name) const override;
    void Add(ClassFile cls);

   private:
    const ClassEnv* library_;
    std::map<std::string, std::unique_ptr<ClassFile>> seen_;
  };

  ProxyConfig config_;
  SeenEnv env_;
  ClassProvider* origin_;
  FilterPipeline pipeline_;
  RewriteCache cache_;
  CodeSigner signer_;
  std::vector<std::string> audit_trail_;
  // Classes synthesized by filters (e.g. "$cold" splits): servable on demand
  // without going to the origin, independent of the LRU cache.
  std::map<std::string, Bytes> generated_;
  std::function<void(const std::string&, const Bytes&)> served_observer_;
  uint64_t requests_served_ = 0;
  uint64_t total_cpu_nanos_ = 0;
};

}  // namespace dvm

#endif  // SRC_PROXY_PROXY_H_
