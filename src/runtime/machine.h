// Machine: one client virtual machine instance — heap, class registry, native
// method registry, runtime counters and the virtual clock. A Machine can be
// configured as a *monolithic* client (verification runs locally at class-load
// time, stack-introspection security) or as a *DVM* client (no local verifier;
// the injected service preambles call the dynamic components registered as
// natives). All experiment comparisons run both configurations on this same
// implementation, mirroring the paper's methodology.
#ifndef SRC_RUNTIME_MACHINE_H_
#define SRC_RUNTIME_MACHINE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/runtime/class_registry.h"
#include "src/runtime/counters.h"
#include "src/runtime/heap.h"
#include "src/runtime/value.h"
#include "src/support/result.h"
#include "src/verifier/assumptions.h"

namespace dvm {

class Machine;
class StackIntrospectionSecurity;
class ExecutionProfiler;
struct TieredMethod;

// Native method implementation. `args` includes the receiver at index 0 for
// instance methods. May signal a guest exception via Machine::ThrowGuest and
// return any value (it is discarded); host-level errors abort the run.
using NativeFn = std::function<Result<Value>(Machine&, std::vector<Value>&)>;

class NativeRegistry {
 public:
  void Register(const std::string& class_name, const std::string& method_name,
                const std::string& descriptor, NativeFn fn);
  const NativeFn* Find(const std::string& class_name, const std::string& method_name,
                       const std::string& descriptor) const;

 private:
  std::unordered_map<std::string, NativeFn> fns_;
};

// In-simulation file system: path -> contents, plus open-handle bookkeeping.
// The Fig. 9 microbenchmarks (OpenFile / ReadFile) run against this.
class SimFileSystem {
 public:
  void Put(const std::string& path, std::string contents) {
    files_[path] = std::move(contents);
  }
  bool Exists(const std::string& path) const { return files_.count(path) > 0; }
  const std::string* Get(const std::string& path) const {
    auto it = files_.find(path);
    return it == files_.end() ? nullptr : &it->second;
  }

  // Returns a handle id; -1 when the file does not exist.
  int Open(const std::string& path);
  // Returns next byte or -1 at EOF / bad handle.
  int Read(int handle);
  const std::string* PathOf(int handle) const;

 private:
  struct Handle {
    std::string path;
    size_t pos = 0;
  };
  std::map<std::string, std::string> files_;
  std::vector<Handle> handles_;
};

struct MachineConfig {
  // Monolithic-client behaviour: run verifier phases 1-3 when a class loads and
  // discharge its link assumptions at first active use.
  bool verify_on_load = false;
  // JDK 1.2-style stack-introspection access control (Fig. 9 baseline). The
  // DVM security service is independent of this flag; it arrives via rewriting.
  bool stack_introspection_security = false;
  // Quickened, threaded execution engine (default). When false the machine
  // runs the reference switch-per-Step engine with no opcode rewriting — the
  // `--no-quicken` baseline used by bench_interp and the differential tests.
  // Observable behaviour (outcomes, guest output, counters, virtual clock) is
  // identical between the two engines.
  bool quicken = true;
  // Tier-1 baseline compiler above the quickened engine (DESIGN.md §16).
  // A method tiers up when its invocation count crosses
  // tier_invocation_threshold, or mid-run at a loop backedge (on-stack
  // replacement) when its backedge count crosses tier_osr_threshold. Zero
  // disables that trigger. The environment variables DVM_TIER_THRESHOLD
  // (sets both) and DVM_TIER_FORCE_DEOPT override these at Machine
  // construction, mirroring DVM_EVENT_QUEUE.
  uint64_t tier_invocation_threshold = 10'000;
  uint64_t tier_osr_threshold = 10'000;
  // CI hammer: every compiled activation executes at most one basic-block
  // span before deoptimizing, so mixed compiled/interpreted execution is
  // exercised on every tiered method.
  bool tier_force_deopt = false;
  // Install proxy-compiled code blobs (kAttrTieredCode) at Prepare time.
  // Off by default: only DVM clients that fetched the class through the
  // verified replication channel opt in; machines running raw bytes (fuzz,
  // differential oracles) ignore the attribute entirely.
  bool trust_tiered_artifacts = false;
  size_t heap_capacity_bytes = 64 * 1024 * 1024;
  size_t max_frames = 2048;
  uint64_t max_instructions = 2'000'000'000;  // runaway-loop backstop
  CostModel cost;
};

struct CallOutcome {
  Value value = Value::Null();
  bool threw = false;
  std::string exception_class;
  std::string exception_message;
};

// One entry of the guest call stack, exposed for stack introspection.
struct FrameInfo {
  const RuntimeClass* cls = nullptr;
  const MethodInfo* method = nullptr;
};

class Machine {
 public:
  Machine(MachineConfig config, ClassProvider* provider);
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  // --- execution --------------------------------------------------------------
  // Runs a static method to completion. A guest exception that escapes is
  // reported in the outcome, not as a host error.
  Result<CallOutcome> CallStatic(const std::string& class_name, const std::string& method_name,
                                 const std::string& descriptor,
                                 std::vector<Value> args = {});
  // Convenience: static void main()V of `class_name`.
  Result<CallOutcome> RunMain(const std::string& class_name);

  Result<RuntimeClass*> EnsureLoaded(const std::string& class_name) {
    return registry_.GetClass(class_name);
  }

  // --- components --------------------------------------------------------------
  Heap& heap() { return heap_; }
  ClassRegistry& registry() { return registry_; }
  NativeRegistry& natives() { return natives_; }
  RuntimeCounters& counters() { return counters_; }
  const MachineConfig& config() const { return config_; }

  // --- virtual time ------------------------------------------------------------
  void AddNanos(uint64_t n) { virtual_nanos_ += n; }
  uint64_t virtual_nanos() const { return virtual_nanos_; }
  // Attributed service time (keys: "verify", "security", "audit", "profile").
  void AddServiceNanos(const std::string& service, uint64_t n);
  uint64_t ServiceNanos(const std::string& service) const;

  // --- guest objects -----------------------------------------------------------
  Result<ObjRef> NewString(const std::string& value);
  // Shared constant-pool strings (ldc). Interned objects are GC roots.
  Result<ObjRef> InternString(const std::string& value);
  // Fails unless `ref` is a string object.
  Result<std::string> StringValue(ObjRef ref) const;
  // Allocation helpers that trigger GC against the current roots when needed.
  Result<ObjRef> AllocInstance(RuntimeClass* cls);
  Result<ObjRef> AllocArray(const std::string& descriptor, int32_t length);
  // String-free primitive-array paths (newarray executes no constant-pool
  // resolution, so it should not build a descriptor string per allocation).
  Result<ObjRef> AllocIntArray(int32_t length);
  Result<ObjRef> AllocLongArray(int32_t length);
  // Ref-array path with a precomposed descriptor symbol (anewarray_quick).
  Result<ObjRef> AllocRefArray(const std::string& descriptor, uint32_t descriptor_sym,
                               int32_t length);

  // --- guest exceptions ---------------------------------------------------------
  // Signals a pending guest exception from native code or the interpreter.
  void ThrowGuest(const std::string& exception_class, const std::string& message);
  bool HasPendingException() const { return pending_exception_ != kNullRef; }
  ObjRef TakePendingException();
  void SetPendingExceptionObject(ObjRef exception) { pending_exception_ = exception; }

  // --- introspection & roots ------------------------------------------------------
  // Guest call stack, innermost last. Maintained by the interpreter.
  std::vector<FrameInfo>& call_stack() { return call_stack_; }
  const std::vector<FrameInfo>& call_stack() const { return call_stack_; }
  // Interpreter registers a provider for frame-held references during GC.
  void SetFrameRootProvider(std::function<void(std::vector<ObjRef>*)> provider) {
    frame_root_provider_ = std::move(provider);
  }
  const std::function<void(std::vector<ObjRef>*)>& frame_root_provider() const {
    return frame_root_provider_;
  }
  void CollectGarbage();

  // --- simulated OS resources -----------------------------------------------------
  std::map<std::string, std::string>& properties() { return properties_; }
  SimFileSystem& files() { return files_; }
  std::vector<std::string>& printed() { return printed_; }
  int thread_priority() const { return thread_priority_; }
  void set_thread_priority(int priority) { thread_priority_ = priority; }

  // Present (non-null) when config.stack_introspection_security is set; grants
  // are configured by the experiment harness.
  StackIntrospectionSecurity* stack_security() { return stack_security_.get(); }

  // Optional virtual-clock sampling profiler (not owned). Null = sampling off;
  // the always-on method/site counters are unaffected by this hook.
  void SetProfiler(ExecutionProfiler* profiler) { profiler_ = profiler; }
  ExecutionProfiler* profiler() const { return profiler_; }

  // Invoked after each class finishes loading and linking. Clients use it to
  // assign security domains from the organizational policy.
  std::function<void(RuntimeClass&)> on_class_loaded;

  // Classes loaded through this machine, with per-class verify assumptions kept
  // for first-use link checking (monolithic mode).
  std::vector<Assumption>* PendingLinkChecks(const std::string& class_name);
  void ClearPendingLinkChecks(const std::string& class_name);

  // --- tiered execution -----------------------------------------------------------
  // Moves a method's compiled code to the graveyard (frames still holding a
  // raw pointer keep a valid, invalidated object) and blocks recompilation.
  void RetireTieredCode(PreparedMethod* prepared);
  // Class-redefinition hook: invalidates and retires every compiled method in
  // the registry. Live compiled frames deopt at their next span boundary;
  // methods may tier up again later.
  void DiscardTieredCode();

 private:
  Status OnClassLoad(RuntimeClass& cls);

  MachineConfig config_;
  Heap heap_;
  ClassRegistry registry_;
  NativeRegistry natives_;
  RuntimeCounters counters_;
  uint64_t virtual_nanos_ = 0;
  std::map<std::string, uint64_t> service_nanos_;

  ObjRef pending_exception_ = kNullRef;
  std::vector<FrameInfo> call_stack_;
  std::function<void(std::vector<ObjRef>*)> frame_root_provider_;

  std::map<std::string, std::string> properties_;
  SimFileSystem files_;
  std::vector<std::string> printed_;
  int thread_priority_ = 5;

  std::map<std::string, std::vector<Assumption>> pending_link_checks_;
  std::map<std::string, ObjRef> interned_strings_;
  // Invalidated TieredMethod objects; kept alive until machine teardown so
  // frames entered under the old code can still observe the invalidated flag.
  std::vector<std::unique_ptr<TieredMethod>> retired_tiers_;
  std::unique_ptr<StackIntrospectionSecurity> stack_security_;
  ExecutionProfiler* profiler_ = nullptr;
};

// Installs the java/* native implementations (System, String, Thread, File,
// StringBuilder-lite) into a machine. Called by Machine's constructor.
void RegisterSystemNatives(Machine& machine);

}  // namespace dvm

#endif  // SRC_RUNTIME_MACHINE_H_
