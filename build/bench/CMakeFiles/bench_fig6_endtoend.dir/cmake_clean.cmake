file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_endtoend.dir/bench_fig6_endtoend.cc.o"
  "CMakeFiles/bench_fig6_endtoend.dir/bench_fig6_endtoend.cc.o.d"
  "bench_fig6_endtoend"
  "bench_fig6_endtoend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_endtoend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
