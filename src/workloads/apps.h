// Synthetic benchmark applications standing in for the paper's Java programs
// (Figure 5: JLex, Javacup, Pizza, Instantdb, Cassowary). Each generator emits
// a real, executable DVM bytecode program whose class count and on-the-wire
// size match the paper's table, whose behaviour follows the original's flavour
// (lexer tables, parser fixpoints, per-unit compilation, TPC-A-style keyed
// updates, iterative constraint relaxation), and which carries a realistic
// fraction of never-invoked code (10-30%, section 5).
//
// `work_scale` multiplies the main loop's iteration counts: tests use 1 for
// speed, the Figure 6 benchmark uses larger values to reach paper-scale
// runtimes. All output is deterministic.
#ifndef SRC_WORKLOADS_APPS_H_
#define SRC_WORKLOADS_APPS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/bytecode/classfile.h"
#include "src/runtime/class_registry.h"

namespace dvm {

struct AppBundle {
  std::string name;
  std::string description;
  std::string main_class;
  std::vector<ClassFile> classes;

  uint64_t TotalBytes() const;
  void InstallInto(MapClassProvider* provider) const;
  std::vector<std::string> ClassNames() const;
};

// Tuning knobs for the generic application generator.
struct AppSpec {
  std::string name;            // short tag, used in class names ("jlex")
  std::string description;
  int module_count = 10;       // classes besides Main
  int rounds = 4;              // main-loop repetitions
  int work = 64;               // inner kernel iterations
  int pad_methods = 2;         // never-invoked methods per module
  int pad_instructions = 150;  // straight-line length of each pad method
  // Kernel mix: which archetypes each module carries.
  bool use_arrays = true;
  bool use_objects = true;
  bool use_longs = false;
  bool use_strings = false;
};

// Generic generator; exposed for tests and custom workloads.
AppBundle GenerateApp(const AppSpec& spec);

// The five Figure 5 applications.
AppBundle BuildJlexApp(int work_scale = 1);      // lexical analyzer generator
AppBundle BuildJavacupApp(int work_scale = 1);   // LALR parser generator
AppBundle BuildPizzaApp(int work_scale = 1);     // bytecode-to-native compiler
AppBundle BuildInstantdbApp(int work_scale = 1); // relational DB, TPC-A-like
AppBundle BuildCassowaryApp(int work_scale = 1); // constraint satisfier
std::vector<AppBundle> BuildFig5Apps(int work_scale = 1);

}  // namespace dvm

#endif  // SRC_WORKLOADS_APPS_H_
