#include "src/rewrite/method_editor.h"

#include <deque>

#include "src/bytecode/stack_effect.h"

namespace dvm {

Result<uint16_t> ComputeMaxStackDepth(const std::vector<Instr>& instrs,
                                      const ConstantPool& pool,
                                      const std::vector<uint32_t>& handler_entries) {
  if (instrs.empty()) {
    return static_cast<uint16_t>(0);
  }
  std::vector<int> depth_at(instrs.size(), -1);
  std::deque<size_t> work;
  auto schedule = [&](size_t index, int depth) {
    if (index >= instrs.size()) {
      return;
    }
    if (depth_at[index] < depth) {
      depth_at[index] = depth;
      work.push_back(index);
    }
  };
  schedule(0, 0);
  for (uint32_t entry : handler_entries) {
    schedule(entry, 1);
  }

  int max_depth = 0;
  while (!work.empty()) {
    size_t index = work.front();
    work.pop_front();
    int depth = depth_at[index];
    const Instr& instr = instrs[index];
    DVM_ASSIGN_OR_RETURN(int delta, StackDelta(instr, pool));
    DVM_ASSIGN_OR_RETURN(int pops, StackPops(instr, pool));
    if (depth < pops) {
      return Error{ErrorCode::kInvalidArgument,
                   "rewritten code underflows stack at instruction " + std::to_string(index)};
    }
    int next = depth + delta;
    max_depth = std::max(max_depth, std::max(depth, next));
    if (IsBranch(instr.op)) {
      schedule(static_cast<size_t>(instr.a), next);
    }
    if (!IsTerminator(instr.op)) {
      schedule(index + 1, next);
    }
  }
  if (max_depth > 0xFFFF) {
    return Error{ErrorCode::kCapacity, "max stack exceeds 65535"};
  }
  return static_cast<uint16_t>(max_depth);
}

Result<MethodEditor> MethodEditor::Open(ClassFile* cls, MethodInfo* method) {
  if (!method->code.has_value()) {
    return Error{ErrorCode::kInvalidArgument,
                 "cannot edit bodyless method " + method->Id()};
  }
  MethodEditor editor(cls, method);
  DVM_ASSIGN_OR_RETURN(editor.code_, DecodeCode(method->code->code));

  std::vector<uint32_t> offsets = CodeByteOffsets(editor.code_);
  auto index_of = [&offsets](uint16_t byte_pc) -> int64_t {
    for (size_t i = 0; i < offsets.size(); i++) {
      if (offsets[i] == byte_pc) {
        return static_cast<int64_t>(i);
      }
    }
    return -1;
  };
  for (const auto& h : method->code->handlers) {
    int64_t start = index_of(h.start_pc);
    int64_t end = index_of(h.end_pc);
    int64_t handler = index_of(h.handler_pc);
    if (start < 0 || end < 0 || handler < 0) {
      return Error{ErrorCode::kParseError,
                   "handler not on instruction boundary in " + method->Id()};
    }
    editor.handlers_.push_back(HandlerIx{static_cast<uint32_t>(start),
                                         static_cast<uint32_t>(end),
                                         static_cast<uint32_t>(handler), h.catch_type});
  }
  return editor;
}

ConstantPool& MethodEditor::pool() { return cls_->pool(); }

void MethodEditor::ShiftTargets(size_t at, size_t count) {
  for (auto& instr : code_) {
    if (IsBranch(instr.op) && instr.a >= static_cast<int32_t>(at)) {
      instr.a += static_cast<int32_t>(count);
    }
  }
  for (auto& h : handlers_) {
    if (h.start_ix >= at) {
      h.start_ix += static_cast<uint32_t>(count);
    }
    if (h.end_ix >= at) {
      h.end_ix += static_cast<uint32_t>(count);
    }
    if (h.handler_ix >= at) {
      h.handler_ix += static_cast<uint32_t>(count);
    }
  }
}

Status MethodEditor::InsertBefore(size_t index, const std::vector<Instr>& instrs) {
  if (index > code_.size()) {
    return Error{ErrorCode::kInvalidArgument, "insert position out of range"};
  }
  if (instrs.empty()) {
    return Status::Ok();
  }
  // Pre-existing branches pointing at or beyond `index` move with their
  // instructions. The caller's new branches are already in final coordinates.
  ShiftTargets(index, instrs.size());
  for (const auto& instr : instrs) {
    const OpInfo* info = GetOpInfo(instr.op);
    if (info != nullptr &&
        (info->operands == OperandKind::kU8 || info->operands == OperandKind::kLocalIncr)) {
      max_extra_local_ = std::max(max_extra_local_, instr.a);
    }
  }
  code_.insert(code_.begin() + static_cast<long>(index), instrs.begin(), instrs.end());
  modified_ = true;
  return Status::Ok();
}

Status MethodEditor::Replace(size_t index, const std::vector<Instr>& instrs) {
  if (index >= code_.size() || instrs.empty()) {
    return Error{ErrorCode::kInvalidArgument, "bad replace position"};
  }
  code_[index] = instrs[0];
  modified_ = true;
  if (instrs.size() > 1) {
    return InsertBefore(index + 1, std::vector<Instr>(instrs.begin() + 1, instrs.end()));
  }
  return Status::Ok();
}

Status MethodEditor::Commit() {
  if (!modified_) {
    return Status::Ok();
  }
  DVM_ASSIGN_OR_RETURN(Bytes encoded, EncodeCode(code_));

  std::vector<uint32_t> offsets = CodeByteOffsets(code_);
  std::vector<uint32_t> handler_entries;
  std::vector<ExceptionHandler> new_handlers;
  for (const auto& h : handlers_) {
    ExceptionHandler entry;
    entry.start_pc = static_cast<uint16_t>(offsets[h.start_ix]);
    entry.end_pc = static_cast<uint16_t>(offsets[h.end_ix]);
    entry.handler_pc = static_cast<uint16_t>(offsets[h.handler_ix]);
    entry.catch_type = h.catch_type;
    new_handlers.push_back(entry);
    handler_entries.push_back(h.handler_ix);
  }

  DVM_ASSIGN_OR_RETURN(uint16_t max_stack,
                       ComputeMaxStackDepth(code_, cls_->pool(), handler_entries));

  CodeAttr& attr = *method_->code;
  attr.code = std::move(encoded);
  attr.handlers = std::move(new_handlers);
  attr.max_stack = std::max(attr.max_stack, max_stack);
  attr.max_locals = std::max(attr.max_locals,
                             static_cast<uint16_t>(max_extra_local_ + 1));
  return Status::Ok();
}

}  // namespace dvm
