// FNV-1a string hashing, used for cache keys and interned symbol tables.
#ifndef SRC_SUPPORT_HASH_H_
#define SRC_SUPPORT_HASH_H_

#include <cstdint>
#include <string_view>

namespace dvm {

inline uint64_t Fnv1a(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline uint64_t Fnv1a(const uint8_t* data, size_t len) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < len; i++) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace dvm

#endif  // SRC_SUPPORT_HASH_H_
