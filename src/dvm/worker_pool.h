// A small fixed-size worker pool (std::thread + task queue) for the server
// side of the DVM. Real threads are used for *throughput* — many clients
// fetching through the proxy concurrently — while each request's cost is
// still accounted in virtual CPU nanos, so the paper's simulated-time
// experiments are unaffected by host parallelism.
#ifndef SRC_DVM_WORKER_POOL_H_
#define SRC_DVM_WORKER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dvm {

class WorkerPool {
 public:
  explicit WorkerPool(size_t num_threads);
  ~WorkerPool();  // drains the queue, then joins every worker

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  // Enqueues a task; any worker may run it. Safe from any thread.
  void Submit(std::function<void()> task);
  // Blocks until every submitted task has finished executing.
  void Drain();

  size_t size() const { return threads_.size(); }
  uint64_t tasks_executed() const { return executed_.load(std::memory_order_relaxed); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for tasks / shutdown
  std::condition_variable drain_cv_;  // Drain() waits for quiescence
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;  // tasks popped but not yet finished
  bool stopping_ = false;
  std::atomic<uint64_t> executed_{0};
  std::vector<std::thread> threads_;
};

}  // namespace dvm

#endif  // SRC_DVM_WORKER_POOL_H_
