// dvm_trace: run a scripted workload on the virtual clock and export its
// execution trace (Chrome trace_event JSON, loadable in chrome://tracing or
// https://ui.perfetto.dev) plus a Prometheus-style metrics snapshot of every
// counter and histogram. Because the whole run rides the deterministic
// virtual clock, identical seeds produce byte-identical output files — CI
// runs this twice and diffs the bytes.
//
//   dvm_trace --workload=fig6 --seed=7 --out=trace.json --metrics=metrics.txt
//
// The fig6 workload replays the end-to-end fetch mix: a population of
// Internet applets pulled through a 3-replica signing proxy cluster by a
// redirecting client, with a fault plan (one replica killed mid-run, a lossy
// access link) so the trace shows failover, backoff, deadline waits, and the
// proxy pipeline stages next to healthy cache-hit traffic. The completed
// spans are ingested by the AdministrationConsole (the paper's §3.3 central
// monitoring point) and exported from there.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "src/dvm/redirect_client.h"
#include "src/runtime/syslib.h"
#include "src/services/security_service.h"
#include "src/services/verify_service.h"
#include "src/simnet/fault.h"
#include "src/support/trace.h"
#include "src/workloads/applets.h"

using namespace dvm;

namespace {

struct Options {
  std::string workload = "fig6";
  uint64_t seed = 7;
  std::string out = "-";      // Chrome trace JSON ("-" = stdout)
  std::string metrics;        // Prometheus text (empty = skip, "-" = stdout)
  int applets = 24;
  size_t replicas = 3;
};

void Usage() {
  std::fprintf(stderr,
               "usage: dvm_trace [--workload=fig6] [--seed=N] [--out=FILE|-]\n"
               "                 [--metrics=FILE|-] [--applets=N] [--replicas=N]\n");
}

bool ParseArgs(int argc, char** argv, Options* opts) {
  for (int i = 1; i < argc; i++) {
    std::string arg = argv[i];
    auto eq = arg.find('=');
    std::string key = arg.substr(0, eq);
    std::string value = eq == std::string::npos ? "" : arg.substr(eq + 1);
    if (key == "--workload") {
      opts->workload = value;
    } else if (key == "--seed") {
      opts->seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "--out") {
      opts->out = value;
    } else if (key == "--metrics") {
      opts->metrics = value;
    } else if (key == "--applets") {
      opts->applets = std::atoi(value.c_str());
    } else if (key == "--replicas") {
      opts->replicas = static_cast<size_t>(std::atoi(value.c_str()));
    } else if (key == "--help" || key == "-h") {
      Usage();
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      Usage();
      return false;
    }
  }
  if (opts->workload != "fig6") {
    std::fprintf(stderr, "unknown workload: %s (supported: fig6)\n", opts->workload.c_str());
    return false;
  }
  if (opts->applets < 1 || opts->replicas < 1) {
    std::fprintf(stderr, "--applets and --replicas must be >= 1\n");
    return false;
  }
  return true;
}

SecurityPolicy TracePolicy() {
  auto policy = ParseSecurityPolicy(R"(
    <policy version="1">
      <domain sid="user" code="app/*"/>
      <domain sid="user" code="applet/*"/>
      <allow sid="user" operation="*" target="*"/>
    </policy>)");
  if (!policy.ok()) {
    std::abort();
  }
  return std::move(policy).value();
}

bool WriteOutput(const std::string& path, const std::string& data) {
  if (path == "-") {
    std::fwrite(data.data(), 1, data.size(), stdout);
    return true;
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fwrite(data.data(), 1, data.size(), f);
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!ParseArgs(argc, argv, &opts)) {
    return 2;
  }

  // --- workload setup (all deterministic in opts.seed) -----------------------
  auto applets = BuildAppletPopulation(opts.applets, opts.seed);
  MapClassProvider origin;
  InstallSystemLibrary(origin);
  std::vector<std::string> classes;
  for (const auto& applet : applets) {
    applet.InstallInto(&origin);
    for (const auto& name : applet.ClassNames()) {
      classes.push_back(name);
    }
  }
  std::vector<ClassFile> library = BuildSystemLibrary();
  MapClassEnv library_env;
  for (const auto& cls : library) {
    library_env.Add(&cls);
  }

  DvmServerConfig server_config;
  server_config.policy = TracePolicy();
  server_config.proxy.sign_output = true;
  DvmServer server(std::move(server_config), &origin);

  ProxyCluster cluster(opts.replicas, ProxyConfig{}, &library_env, &origin);
  for (size_t i = 0; i < cluster.size(); i++) {
    cluster.replica(i).AddFilter(std::make_unique<VerificationFilter>());
  }

  // Fault plan: replica 1 (when present) is down for a fixed virtual window
  // mid-run, and the client's access link drops 3% of messages with up to
  // 1 ms of injected delay. Fixed windows + seeded streams keep every
  // decision reproducible.
  FaultPlan plan;
  plan.seed = opts.seed;
  if (opts.replicas > 1) {
    plan.replica_outages[1] = {{3 * kSecond, 10 * kSecond}};
  }
  plan.links["client-proxy"] = LinkFaults{0.03, 0, kMillisecond};
  FaultInjector injector(plan);
  cluster.SetFaultInjector(&injector);

  RedirectingClient client(&server, nullptr, DvmMachineConfig(), MakeEthernet10Mb());
  client.UseCluster(&cluster);
  Tracer tracer;
  client.SetTracer(&tracer);

  // --- scripted fetch mix ----------------------------------------------------
  // Every class once (cold: full pipeline per rendezvous owner), then the
  // first half again (warm: cache hits), the fig6 cold-vs-cached contrast.
  size_t failures = 0;
  for (const auto& name : classes) {
    if (!client.FetchClass(name).ok()) {
      failures++;
    }
  }
  for (size_t i = 0; i < classes.size() / 2; i++) {
    if (!client.FetchClass(classes[i]).ok()) {
      failures++;
    }
  }

  // --- export ----------------------------------------------------------------
  // The console is the trace sink: completed spans are filed centrally next
  // to the audit log, then exported from there.
  AdministrationConsole& console = server.console();
  console.IngestTrace(tracer);

  std::vector<std::pair<std::string, std::string>> metadata = {
      {"workload", opts.workload},
      {"seed", std::to_string(opts.seed)},
      {"classes", std::to_string(classes.size())},
      {"fetches", std::to_string(classes.size() + classes.size() / 2)},
      {"replicas", std::to_string(opts.replicas)},
      {"spans", std::to_string(console.spans_ingested())},
      {"fault_trace_fingerprint", std::to_string(injector.TraceFingerprint())},
  };
  std::string json = ChromeTraceJson(console.trace_spans(), metadata);
  if (!WriteOutput(opts.out, json)) {
    return 1;
  }

  if (!opts.metrics.empty()) {
    std::string text = PrometheusText(client.stats(), {{"actor", "client"}});
    for (size_t i = 0; i < cluster.size(); i++) {
      text += PrometheusText(cluster.replica(i).stats(),
                             {{"actor", "replica" + std::to_string(i)}});
    }
    if (!WriteOutput(opts.metrics, text)) {
      return 1;
    }
  }

  std::fprintf(stderr,
               "dvm_trace: %zu fetches (%zu failed), %llu spans, clock %.3f virtual s, "
               "fingerprint %llu\n",
               classes.size() + classes.size() / 2, failures,
               static_cast<unsigned long long>(console.spans_ingested()),
               static_cast<double>(client.machine().virtual_nanos()) / 1e9,
               static_cast<unsigned long long>(injector.TraceFingerprint()));
  return 0;
}
