// Shared phase-2/phase-3 machinery for the two consumers of the typestate
// lattice: the full fixpoint verifier (verifier.cc) and the one-pass
// certificate validator (certificate.cc). Both drive the SAME abstract
// transfer function over the SAME decoded code, which is what makes their
// accept/reject verdicts — and the link-time assumptions they derive —
// byte-identical by construction rather than by parallel maintenance.
#ifndef SRC_VERIFIER_DATAFLOW_H_
#define SRC_VERIFIER_DATAFLOW_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/bytecode/classfile.h"
#include "src/bytecode/code.h"
#include "src/bytecode/descriptor.h"
#include "src/support/result.h"
#include "src/verifier/assumptions.h"
#include "src/verifier/class_env.h"
#include "src/verifier/typestate.h"
#include "src/verifier/verifier.h"

namespace dvm {

// Decoded method body with the offset maps the dataflow passes index by.
struct MethodCode {
  std::vector<Instr> instrs;
  std::vector<uint32_t> offsets;                     // per-instruction byte offsets + total
  std::unordered_map<uint32_t, uint32_t> off_to_ix;  // byte offset -> instruction index
};

// Phase 1: class file internal consistency (constant pool, descriptor syntax,
// method/field shape rules). Shared verbatim by VerifyClass and the
// certificate validator; bumps stats->phase1_checks.
Status Phase1(const ClassFile& cls, VerifyStats* stats);

// Phase 2: instruction integrity (decode, operand validity, handler ranges,
// fall-off-the-end). Bumps stats->phase2_checks / instructions_verified.
Result<MethodCode> Phase2(const ClassFile& cls, const MethodInfo& method, VerifyStats* stats);

// Class-level inheritance check shared by VerifyClass and the certificate
// validator: extending a known-final class is rejected; an unknown superclass
// becomes a class-scoped existence assumption.
Status CheckSuperclass(const ClassFile& cls, const ClassEnv& env, uint64_t* checks,
                       std::vector<Assumption>* assumptions);

// Abstract execution of one method's instructions over typestate frames. The
// interpreter is stateless between calls apart from its check counter and
// assumption sink — the fixpoint loop and the single validation pass both sit
// on top of it.
class AbstractInterpreter {
 public:
  // Outcome of stepping one instruction: the outgoing frame plus the edges it
  // feeds (an explicit branch target and/or fall-through to index+1).
  struct StepResult {
    Frame frame;
    std::optional<size_t> branch_target;
    bool fallthrough = false;
  };

  // One exception edge: the handler's entry frame (covered instruction's
  // locals, stack exactly [thrown reference]) and its target index.
  struct HandlerEdge {
    size_t target = 0;
    Frame frame;
  };

  // `checks` counts discrete phase-3 checks (the verifier points it at
  // phase3_checks, the validator at its own counter); `assumptions` receives
  // link-time assumptions stamped with this method's id. Both must outlive
  // the interpreter; the sink can be swapped per visit.
  AbstractInterpreter(const ClassFile& cls, const MethodInfo& method, const MethodCode& mc,
                      const ClassEnv& env, uint64_t* checks,
                      std::vector<Assumption>* assumptions);

  // Frame on entry to instruction 0: receiver + parameters in locals.
  Frame EntryFrame() const;

  // Abstractly executes instruction `index` from `frame`. A returned error is
  // a verification failure.
  Result<StepResult> Step(size_t index, Frame frame);

  // Exception edges out of instruction `index` given its entry frame: one per
  // handler covering the pc. Rejects a handler whose thrown reference cannot
  // fit on the operand stack (max_stack == 0) or whose catch type is provably
  // not a Throwable; an unknown catch type becomes an assignability
  // assumption.
  Result<std::vector<HandlerEdge>> HandlerEdges(size_t index, const Frame& frame);

  void set_assumption_sink(std::vector<Assumption>* sink) { assumptions_ = sink; }

 private:
  void Check() { (*checks_)++; }
  void Assume(Assumption a);
  void AssumeClass(const std::string& class_name);
  Error Fail(size_t index, const std::string& message) const;

  Result<VType> Pop(Frame& frame, size_t index);
  Status PopKind(Frame& frame, size_t index, VType::Kind kind, const char* what);
  Status PopRefLike(Frame& frame, size_t index, VType* out);
  Status PopAssignable(Frame& frame, size_t index, const std::string& desc);
  Status Push(Frame& frame, size_t index, VType t);
  Result<VType> GetLocal(const Frame& frame, size_t index, int slot, VType::Kind want,
                         const char* what);
  Status ResolveField(size_t index, const MemberRef& ref, bool want_static);
  Status ResolveMethod(size_t index, const MemberRef& ref, Op op);

  const ClassFile& cls_;
  const MethodInfo& method_;
  const MethodCode& mc_;
  const ClassEnv& env_;
  uint64_t* checks_;
  std::vector<Assumption>* assumptions_;
  MethodSignature sig_;
};

}  // namespace dvm

#endif  // SRC_VERIFIER_DATAFLOW_H_
