# Empty dependencies file for dvm_optimizer.
# This may be replaced when dependencies are built.
