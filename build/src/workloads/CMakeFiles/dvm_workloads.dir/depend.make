# Empty dependencies file for dvm_workloads.
# This may be replaced when dependencies are built.
