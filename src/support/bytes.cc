#include "src/support/bytes.h"

#include <cassert>
#include <cstring>

namespace dvm {

void ByteWriter::U16(uint16_t v) {
  buf_.push_back(static_cast<uint8_t>(v >> 8));
  buf_.push_back(static_cast<uint8_t>(v));
}

void ByteWriter::U32(uint32_t v) {
  buf_.push_back(static_cast<uint8_t>(v >> 24));
  buf_.push_back(static_cast<uint8_t>(v >> 16));
  buf_.push_back(static_cast<uint8_t>(v >> 8));
  buf_.push_back(static_cast<uint8_t>(v));
}

void ByteWriter::U64(uint64_t v) {
  U32(static_cast<uint32_t>(v >> 32));
  U32(static_cast<uint32_t>(v));
}

void ByteWriter::Str(const std::string& s) {
  assert(s.size() <= 0xFFFF);
  U16(static_cast<uint16_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteWriter::Raw(const uint8_t* data, size_t len) {
  buf_.insert(buf_.end(), data, data + len);
}

void ByteWriter::PatchU16(size_t offset, uint16_t v) {
  assert(offset + 2 <= buf_.size());
  buf_[offset] = static_cast<uint8_t>(v >> 8);
  buf_[offset + 1] = static_cast<uint8_t>(v);
}

void ByteWriter::PatchU32(size_t offset, uint32_t v) {
  assert(offset + 4 <= buf_.size());
  buf_[offset] = static_cast<uint8_t>(v >> 24);
  buf_[offset + 1] = static_cast<uint8_t>(v >> 16);
  buf_[offset + 2] = static_cast<uint8_t>(v >> 8);
  buf_[offset + 3] = static_cast<uint8_t>(v);
}

Error ByteReader::Truncated(const char* what) const {
  return Error{ErrorCode::kParseError,
               std::string("truncated stream reading ") + what + " at offset " +
                   std::to_string(pos_)};
}

Result<uint8_t> ByteReader::U8() {
  if (remaining() < 1) {
    return Truncated("u8");
  }
  return data_[pos_++];
}

Result<uint16_t> ByteReader::U16() {
  if (remaining() < 2) {
    return Truncated("u16");
  }
  uint16_t v = static_cast<uint16_t>((data_[pos_] << 8) | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

Result<uint32_t> ByteReader::U32() {
  if (remaining() < 4) {
    return Truncated("u32");
  }
  uint32_t v = (static_cast<uint32_t>(data_[pos_]) << 24) |
               (static_cast<uint32_t>(data_[pos_ + 1]) << 16) |
               (static_cast<uint32_t>(data_[pos_ + 2]) << 8) |
               static_cast<uint32_t>(data_[pos_ + 3]);
  pos_ += 4;
  return v;
}

Result<uint64_t> ByteReader::U64() {
  DVM_ASSIGN_OR_RETURN(uint32_t hi, U32());
  DVM_ASSIGN_OR_RETURN(uint32_t lo, U32());
  return (static_cast<uint64_t>(hi) << 32) | lo;
}

Result<int32_t> ByteReader::I32() {
  DVM_ASSIGN_OR_RETURN(uint32_t v, U32());
  return static_cast<int32_t>(v);
}

Result<int64_t> ByteReader::I64() {
  DVM_ASSIGN_OR_RETURN(uint64_t v, U64());
  return static_cast<int64_t>(v);
}

Result<std::string> ByteReader::Str() {
  // The length is attacker controlled: compare against the bytes actually
  // remaining (overflow-proof form) *before* touching the body.
  DVM_ASSIGN_OR_RETURN(uint16_t len, U16());
  if (remaining() < len) {
    return Truncated("string body");
  }
  std::string s(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return s;
}

Result<Bytes> ByteReader::Raw(size_t len) {
  // Bounds check first, allocation second: a 4 GB length claim in a 100-byte
  // stream must fail fast rather than attempt the allocation. `remaining() <
  // len` cannot overflow, unlike `pos_ + len > size_`.
  if (remaining() < len) {
    return Truncated("raw bytes");
  }
  Bytes out(data_ + pos_, data_ + pos_ + len);
  pos_ += len;
  return out;
}

Status ByteReader::Skip(size_t n) {
  if (remaining() < n) {
    return Truncated("skip");
  }
  pos_ += n;
  return Status::Ok();
}

}  // namespace dvm
