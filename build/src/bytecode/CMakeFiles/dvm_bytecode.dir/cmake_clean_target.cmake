file(REMOVE_RECURSE
  "libdvm_bytecode.a"
)
