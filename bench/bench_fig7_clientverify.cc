// Figure 7: client-side verification overhead. Monolithic clients run the full
// verifier locally (phases 1-3 at load plus first-use link checks); DVM clients
// run only the injected residual checks. Reported as seconds of client time
// attributed to verification.
#include "bench/bench_util.h"

int main() {
  using namespace dvm;
  using namespace dvm::bench;

  PrintHeader("Client-side verification time (seconds)", "Figure 7");
  PrintRow({"App", "Monolithic", "DVM", "Mono/DVM"});

  for (const AppBundle& app : BuildFig5Apps(1)) {
    EndToEndResult mono = RunMonolithic(app);
    EndToEndResult dvm_run = RunDvmFresh(app);
    double ratio = dvm_run.verify_nanos == 0
                       ? 0.0
                       : static_cast<double>(mono.verify_nanos) /
                             static_cast<double>(dvm_run.verify_nanos);
    PrintRow({app.name, FmtSeconds(mono.verify_nanos), FmtSeconds(dvm_run.verify_nanos),
              FmtDouble(ratio, 1) + "x"});
  }
  std::printf("\nPaper shape: DVM clients spend significantly less time verifying;\n"
              "self-verifying applications outrun even Sun's C verifier.\n");
  return 0;
}
