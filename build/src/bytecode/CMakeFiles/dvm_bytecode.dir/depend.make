# Empty dependencies file for dvm_bytecode.
# This may be replaced when dependencies are built.
