// The bytecode interpreter: an explicit-frame stack machine over prepared
// (decoded) method bodies. Guest exceptions unwind through the exception
// tables; class initialization (<clinit>) and monolithic first-use link checks
// run at first active use of a class.
#ifndef SRC_RUNTIME_INTERP_H_
#define SRC_RUNTIME_INTERP_H_

#include <string>
#include <vector>

#include "src/runtime/machine.h"

namespace dvm {

class Interpreter {
 public:
  explicit Interpreter(Machine& machine);
  ~Interpreter();

  Interpreter(const Interpreter&) = delete;
  Interpreter& operator=(const Interpreter&) = delete;

  // Resolves and runs a static method to completion.
  Result<CallOutcome> RunStatic(const std::string& class_name, const std::string& method_name,
                                const std::string& descriptor, std::vector<Value> args);

  // Runs an already-resolved method (used for <clinit> and service callbacks).
  Result<CallOutcome> RunMethod(RuntimeClass* cls, const MethodInfo* method,
                                std::vector<Value> args);

 private:
  struct ExecFrame {
    RuntimeClass* cls = nullptr;
    const MethodInfo* method = nullptr;
    PreparedMethod* prepared = nullptr;
    std::vector<Value> locals;
    std::vector<Value> stack;
    size_t pc = 0;
  };

  Result<PreparedMethod*> Prepare(RuntimeClass* cls, const MethodInfo* method);
  Status PushFrame(RuntimeClass* cls, const MethodInfo* method, std::vector<Value> args);
  Result<CallOutcome> Loop();

  // Ensures <clinit> has run (first active use). Guest failures surface as a
  // pending exception; the return value is a host-level status.
  Status EnsureInitialized(RuntimeClass* cls);

  // Executes one instruction of the top frame. Guest exceptions are signalled
  // through machine_.ThrowGuest; host errors abort the run.
  Status Step();

  // Unwinds the pending guest exception to the nearest matching handler;
  // returns false when no handler exists and the frame stack is empty.
  Result<bool> DispatchPendingException();

  // Invocation helper shared by the three invoke opcodes. `ic` is the
  // quickening cache slot of the invoke instruction.
  Status Invoke(Op op, uint16_t cp_index, InlineCache& ic);
  Status CallNative(RuntimeClass* owner, const MethodInfo* method, std::vector<Value> args);

  void CollectFrameRoots(std::vector<ObjRef>* roots) const;

  Machine& machine_;
  std::vector<ExecFrame> frames_;
  Value return_value_ = Value::Null();
  bool has_return_value_ = false;
  std::function<void(std::vector<ObjRef>*)> previous_root_provider_;
};

}  // namespace dvm

#endif  // SRC_RUNTIME_INTERP_H_
