// Regression tests for the crop of bugs flushed out by the fuzz subsystem
// (fuzz/, DESIGN.md §10). Two halves:
//
//   1. CorpusIsClean replays every checked-in minimized crasher in
//      tests/corpus/ through all three oracles — the same check the CI fuzz
//      smoke job performs, pinned here so a plain `ctest` catches a
//      reintroduction without needing the fuzz harnesses.
//   2. Targeted tests pin the exact semantics of each fix: the kLdiv/kLrem
//      INT64_MIN edge, kIinc wraparound, serializer count validation, and the
//      VerifyError stand-in surviving malformed member descriptors.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "fuzz/oracles.h"
#include "src/bytecode/builder.h"
#include "src/bytecode/serializer.h"
#include "src/runtime/machine.h"
#include "src/runtime/syslib.h"
#include "src/services/verify_service.h"
#include "src/verifier/class_env.h"
#include "src/verifier/verifier.h"

namespace dvm {
namespace {

#ifndef DVM_CORPUS_DIR
#define DVM_CORPUS_DIR "tests/corpus"
#endif

Bytes ReadFileBytes(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return Bytes(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

// Every minimized crasher in the corpus must be handled cleanly by all four
// oracles: round-trip, rewrite totality/idempotence, the differential
// verifier↔interpreter check, and the certificate emit/validate/mutate check.
TEST(FuzzCorpus, CorpusIsClean) {
  std::filesystem::path dir(DVM_CORPUS_DIR);
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << "missing corpus dir " << dir;
  size_t count = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) {
      continue;
    }
    Bytes data = ReadFileBytes(entry.path());
    std::string violation = fuzz::CheckAll(data);
    EXPECT_TRUE(violation.empty()) << entry.path().filename() << ": " << violation;
    count++;
  }
  EXPECT_GE(count, 17u) << "corpus unexpectedly small — regenerate with "
                           "`dvm_fuzz gen-regressions tests/corpus`";
}

// Loads a checked-in corpus input and verifies it against itself plus the
// system library — the environment the proxy's certificate plane uses, which
// is where the verifier bugs below were reachable.
class VerifierBugCrop : public ::testing::Test {
 protected:
  VerifierBugCrop() : library_(BuildSystemLibrary()) {
    for (const ClassFile& cls : library_) {
      lib_env_.Add(&cls);
    }
  }

  Result<VerifiedClass> VerifyCorpusInput(const char* name) {
    Bytes data = ReadFileBytes(std::filesystem::path(DVM_CORPUS_DIR) / name);
    auto parsed = ReadClassFile(data);
    if (!parsed.ok()) {
      return parsed.error();
    }
    cls_ = std::move(parsed).value();
    MapClassEnv self_env;
    self_env.Add(&cls_);
    ChainedClassEnv env(&self_env, &lib_env_);
    return VerifyClass(cls_, env);
  }

  std::vector<ClassFile> library_;
  MapClassEnv lib_env_;
  ClassFile cls_;
};

// A pc reachable normally with an empty stack and as a handler entry with the
// thrown reference: the merge conflict used to be swallowed by a (void) cast
// on the handler-edge merge and the class was accepted. Found by the
// validator-vs-verifier differential oracle.
TEST_F(VerifierBugCrop, HandlerEntryMergeConflictIsRejected) {
  auto result = VerifyCorpusInput("handler_stack_mismatch.bin");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kVerifyError);
  EXPECT_NE(result.error().message.find("inconsistent stack depth"), std::string::npos)
      << result.error().message;
}

// A handler in a max_stack=0 method: the entry frame's thrown reference used
// to be pushed without consulting the declared budget.
TEST_F(VerifierBugCrop, HandlerNeedsStackRoomForThrownReference) {
  auto result = VerifyCorpusInput("handler_overflow.bin");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kVerifyError);
  EXPECT_NE(result.error().message.find("max_stack=0"), std::string::npos)
      << result.error().message;
}

// evil/E extends evil/E: every superclass-chain walk (assignability, field and
// method resolution, certificate merge joins) used to spin forever on the
// cycle. The assertion here is simply that verification *returns*.
TEST_F(VerifierBugCrop, CyclicHierarchyTerminates) {
  auto result = VerifyCorpusInput("cyclic_super_athrow.bin");
  // Verdict is environment-dependent (the cycle widens merges to assumptions);
  // termination without a hang or a crash is the regression being pinned.
  (void)result;
}

// catch_type = java/lang/String: the catch class was never checked assignable
// to Throwable, accepting handlers exception dispatch can never enter.
TEST_F(VerifierBugCrop, CatchTypeMustBeThrowable) {
  auto result = VerifyCorpusInput("catch_nonthrowable.bin");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kVerifyError);
  EXPECT_NE(result.error().message.find("non-throwable"), std::string::npos)
      << result.error().message;
}

class FuzzRegressionTest : public ::testing::Test {
 protected:
  FuzzRegressionTest() { InstallSystemLibrary(provider_); }

  void AddClass(ClassBuilder& cb) {
    auto built = cb.Build();
    ASSERT_TRUE(built.ok()) << built.error().ToString();
    provider_.AddClassFile(built.value());
  }

  Value RunStatic(const std::string& cls, const std::string& method, const std::string& desc) {
    Machine machine({}, &provider_);
    auto result = machine.CallStatic(cls, method, desc, {});
    EXPECT_TRUE(result.ok()) << (result.ok() ? "" : result.error().ToString());
    EXPECT_FALSE(result.ok() && result->threw);
    return result.ok() ? result->value : Value::Int(0);
  }

  MapClassProvider provider_;
};

// INT64_MIN / -1 overflows int64_t — C++ UB, a SIGFPE on x86. JVM semantics:
// the quotient wraps back to INT64_MIN.
TEST_F(FuzzRegressionTest, LdivMinByMinusOneWraps) {
  ClassBuilder cb("app/Ldiv", "java/lang/Object");
  MethodBuilder& m = cb.AddMethod(AccessFlags::kStatic, "f", "()J");
  m.PushLong(INT64_MIN).PushLong(-1).Emit(Op::kLdiv).Emit(Op::kLreturn);
  AddClass(cb);
  EXPECT_EQ(RunStatic("app/Ldiv", "f", "()J").AsLong(), INT64_MIN);
}

// Same edge for the remainder: INT64_MIN % -1 is exactly 0 per JVM semantics.
TEST_F(FuzzRegressionTest, LremMinByMinusOneIsZero) {
  ClassBuilder cb("app/Lrem", "java/lang/Object");
  MethodBuilder& m = cb.AddMethod(AccessFlags::kStatic, "f", "()J");
  m.PushLong(INT64_MIN).PushLong(-1).Emit(Op::kLrem).Emit(Op::kLreturn);
  AddClass(cb);
  EXPECT_EQ(RunStatic("app/Lrem", "f", "()J").AsLong(), 0);
}

// iinc on a local holding INT32_MAX formerly overflowed a signed int (UB);
// it must wrap like every other int32 operation.
TEST_F(FuzzRegressionTest, IincOverflowWraps) {
  ClassBuilder cb("app/Iinc", "java/lang/Object");
  MethodBuilder& m = cb.AddMethod(AccessFlags::kStatic, "f", "()I");
  m.PushInt(INT32_MAX).StoreLocal("I", 0);
  m.Emit(Op::kIinc, 0, 1);
  m.LoadLocal("I", 0).Emit(Op::kIreturn);
  AddClass(cb);
  EXPECT_EQ(RunStatic("app/Iinc", "f", "()I").AsInt(), INT32_MIN);
}

// A constant pool wider than the u16 count field cannot be a wire class file.
// WriteClassFile formerly looped forever (uint16_t counter wrap) and silently
// truncated the count; it must return kParseError instead.
TEST_F(FuzzRegressionTest, WriteRejectsOversizedPool) {
  ClassBuilder cb("app/BigPool", "java/lang/Object");
  ClassFile cls = cb.Build().value();
  for (uint32_t i = 0; cls.pool().size() <= kMaxPoolEntries; i++) {
    cls.pool().AddInteger(static_cast<int32_t>(i));
  }
  auto wire = WriteClassFile(cls);
  ASSERT_FALSE(wire.ok());
  EXPECT_EQ(wire.error().code, ErrorCode::kParseError);
}

// A rejected class whose method descriptor is garbage must still yield a
// buildable VerifyError stand-in — the malformed member is dropped, the rest
// keep their throwing bodies. Formerly a silent std::abort.
TEST_F(FuzzRegressionTest, VerifyErrorStandInSurvivesMalformedDescriptors) {
  ClassBuilder cb("app/Bad", "java/lang/Object");
  cb.AddField(AccessFlags::kStatic, "ok", "I");
  cb.AddMethod(AccessFlags::kStatic, "good", "()V").Emit(Op::kReturn);
  ClassFile cls = cb.Build().value();
  cls.FindMethod("good", "()V")->descriptor = "(\x03";  // malformed on purpose
  FieldInfo bad_field;
  bad_field.access_flags = AccessFlags::kStatic;
  bad_field.name = "bad";
  bad_field.descriptor = "[";
  cls.fields.push_back(std::move(bad_field));

  auto standin = BuildVerifyErrorClass(cls, "rejected");
  ASSERT_TRUE(standin.ok()) << standin.error().ToString();
  EXPECT_EQ(standin->name(), "app/Bad");
  EXPECT_EQ(standin->fields.size(), 1u);  // "ok" kept, "bad" dropped
  EXPECT_EQ(standin->fields[0].name, "ok");
  EXPECT_EQ(standin->methods.size(), 0u);  // the malformed method is dropped
  // The stand-in must itself serialize: it goes back out on the wire.
  EXPECT_TRUE(WriteClassFile(standin.value()).ok());
}

}  // namespace
}  // namespace dvm
