// dvm_top: one-shot "top" for a DVM fleet. Drives a deterministic applet
// workload through a replicated proxy cluster, has every replica publish its
// stats-registry snapshot to the AdministrationConsole (the paper's §3.3
// central monitoring point), runs the applet mix on a profiled interpreter,
// and renders the fleet dashboard: per-replica health and divergence, the
// fleet-merged counters, SLO status, and the sampled hot-method table.
// Everything rides the virtual clock, so identical seeds render byte-identical
// dashboards — CI can diff two runs.
//
//   dvm_top --seed=7 --applets=16 --replicas=3
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "src/dvm/redirect_client.h"
#include "src/runtime/machine.h"
#include "src/runtime/profile.h"
#include "src/runtime/syslib.h"
#include "src/services/fleet_metrics.h"
#include "src/services/security_service.h"
#include "src/services/slo_monitor.h"
#include "src/services/verify_service.h"
#include "src/support/stats.h"
#include "src/workloads/applets.h"

using namespace dvm;

namespace {

struct Options {
  uint64_t seed = 7;
  int applets = 16;
  size_t replicas = 3;
};

void Usage() {
  std::fprintf(stderr, "usage: dvm_top [--seed=N] [--applets=N] [--replicas=N]\n");
}

bool ParseArgs(int argc, char** argv, Options* opts) {
  for (int i = 1; i < argc; i++) {
    std::string arg = argv[i];
    auto eq = arg.find('=');
    std::string key = arg.substr(0, eq);
    std::string value = eq == std::string::npos ? "" : arg.substr(eq + 1);
    if (key == "--seed") {
      opts->seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "--applets") {
      opts->applets = std::atoi(value.c_str());
    } else if (key == "--replicas") {
      opts->replicas = static_cast<size_t>(std::atoi(value.c_str()));
    } else if (key == "--help" || key == "-h") {
      Usage();
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      Usage();
      return false;
    }
  }
  if (opts->applets < 1 || opts->replicas < 1) {
    std::fprintf(stderr, "--applets and --replicas must be >= 1\n");
    return false;
  }
  return true;
}

void PrintCounterRow(const char* name,
                     const std::map<size_t, ReplicaSnapshot>& snaps) {
  std::printf("  %-28s", name);
  for (const auto& [replica, snap] : snaps) {
    std::printf(" %10" PRIu64, snap.stats.CounterValue(name));
  }
  std::printf("\n");
}

SecurityPolicy TopPolicy() {
  auto policy = ParseSecurityPolicy(R"(
    <policy version="1">
      <domain sid="user" code="app/*"/>
      <domain sid="user" code="applet/*"/>
      <allow sid="user" operation="*" target="*"/>
    </policy>)");
  if (!policy.ok()) {
    std::abort();
  }
  return std::move(policy).value();
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!ParseArgs(argc, argv, &opts)) {
    return 2;
  }

  // --- fleet workload (deterministic in seed) --------------------------------
  auto applets = BuildAppletPopulation(opts.applets, opts.seed);
  MapClassProvider origin;
  InstallSystemLibrary(origin);
  std::vector<std::string> classes;
  for (const auto& applet : applets) {
    applet.InstallInto(&origin);
    for (const auto& name : applet.ClassNames()) {
      classes.push_back(name);
    }
  }
  std::vector<ClassFile> library = BuildSystemLibrary();
  MapClassEnv env;
  for (const auto& cls : library) {
    env.Add(&cls);
  }
  DvmServerConfig server_config;
  server_config.policy = TopPolicy();
  server_config.proxy.sign_output = true;
  DvmServer server(std::move(server_config), &origin);

  ProxyCluster cluster(opts.replicas, ProxyConfig{}, &env, &origin);
  for (size_t i = 0; i < cluster.size(); i++) {
    cluster.replica(i).AddFilter(std::make_unique<VerificationFilter>());
  }
  RedirectingClient client(&server, nullptr, DvmMachineConfig(), MakeEthernet10Mb());
  client.UseCluster(&cluster);

  AdministrationConsole console;
  FleetMetricsPublisher publisher(nullptr, &console);
  SloMonitor slo("client", &console);
  slo.AddRule(P99CeilingRule("fetch-p99", "redirect.fetch_nanos",
                             /*ceiling=*/150 * kMillisecond, /*min_events=*/4));

  size_t failures = 0;
  auto publish_round = [&] {
    uint64_t now = client.machine().virtual_nanos();
    for (size_t i = 0; i < cluster.size(); i++) {
      publisher.Publish(i, cluster.replica(i).stats(), now);
    }
    slo.Evaluate(client.stats().FullSnapshot(), now);
  };
  // Cold pass (full pipeline on each rendezvous owner), then a warm pass over
  // the first half (cache hits) — with a fleet snapshot round after each.
  for (const auto& name : classes) {
    failures += client.FetchClass(name).ok() ? 0 : 1;
  }
  publish_round();
  for (size_t i = 0; i < classes.size() / 2; i++) {
    failures += client.FetchClass(classes[i]).ok() ? 0 : 1;
  }
  publish_round();

  // --- profiled guest execution ---------------------------------------------
  // The same applet population runs on a local profiled interpreter: the
  // hot-method view a JIT tier would consume.
  MapClassProvider local;
  InstallSystemLibrary(local);
  for (const auto& applet : applets) {
    applet.InstallInto(&local);
  }
  Machine vm(MachineConfig{}, &local);
  ExecutionProfiler profiler;
  vm.SetProfiler(&profiler);
  size_t guest_failures = 0;
  for (const auto& applet : applets) {
    auto run = vm.RunMain(applet.main_class);
    guest_failures += run.ok() && !run->threw ? 0 : 1;
  }
  vm.SetProfiler(nullptr);

  // --- dashboard -------------------------------------------------------------
  uint64_t now = client.machine().virtual_nanos();
  std::printf("dvm_top — fleet snapshot @ virtual %.3fs  seed=%" PRIu64
              "  replicas=%zu  classes=%zu  fetch_failures=%zu\n\n",
              static_cast<double>(now) / 1e9, opts.seed, opts.replicas,
              classes.size(), failures);

  const std::map<size_t, ReplicaSnapshot>& snaps = console.replica_snapshots();
  std::printf("== replicas (%zu reporting) ==\n  %-28s", snaps.size(), "counter");
  for (const auto& [replica, snap] : snaps) {
    std::printf("   replica%zu", replica);
  }
  std::printf("\n");
  for (const char* name : {"proxy.rewrites", "proxy.generated_hits", "proxy.coalesced",
                           "proxy.lock_acquisitions"}) {
    PrintCounterRow(name, snaps);
  }
  std::printf("  %-28s", "snapshot_age_ms");
  for (const auto& [replica, snap] : snaps) {
    std::printf(" %10" PRIu64, (now - snap.taken_at) / kMillisecond);
  }
  std::printf("\n\n== divergence ==\n%s", console.DivergenceView().c_str());

  StatsSnapshot fleet = console.FleetMerged();
  std::printf("\n== fleet (merged, %" PRIu64 " snapshots ingested, %" PRIu64
              " published) ==\n",
              console.snapshots_ingested(), publisher.published());
  for (const auto& [name, value] : fleet.counters) {
    std::printf("  %-40s %12" PRIu64 "\n", name.c_str(), value);
  }

  std::printf("\n== slo ==\n  rules=1 firing=%zu evaluations=%" PRIu64 "\n",
              slo.firing_count(), slo.evaluations());
  std::string transitions = slo.TransitionLog();
  std::printf("%s", transitions.empty() ? "  (no transitions)\n" : transitions.c_str());

  std::printf("\n== hot methods (guest: %d applets, %zu failed, %" PRIu64
              " samples @ %" PRIu64 "ns) ==\n%s",
              opts.applets, guest_failures, profiler.samples(),
              profiler.sample_period_nanos(),
              MethodProfileTable(CollectMethodProfile(vm.registry()), 12).c_str());

  std::printf("\n== console ==\n  audit_events=%" PRIu64 " dropped=%" PRIu64
              " spans=%" PRIu64 " span_drops=%" PRIu64 "\n",
              console.events_received(), console.events_dropped(),
              console.spans_ingested(), console.spans_dropped());
  return 0;
}
