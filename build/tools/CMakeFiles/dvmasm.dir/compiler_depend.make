# Empty compiler generated dependencies file for dvmasm.
# This may be replaced when dependencies are built.
