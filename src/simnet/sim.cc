#include "src/simnet/sim.h"

#include <algorithm>
#include <cassert>

namespace dvm {

void EventQueue::Schedule(SimTime when, Callback callback) {
  assert(when >= now_);
  events_.push_back(Event{when, next_sequence_++, std::move(callback)});
  std::push_heap(events_.begin(), events_.end(), std::greater<>{});
}

bool EventQueue::RunNext() {
  if (events_.empty()) {
    return false;
  }
  std::pop_heap(events_.begin(), events_.end(), std::greater<>{});
  Event event = std::move(events_.back());
  events_.pop_back();
  now_ = event.when;
  event.callback();
  return true;
}

void EventQueue::RunUntilEmpty() {
  while (RunNext()) {
  }
}

SimTime SimLink::Deliver(SimTime start, uint64_t bytes) {
  SimTime begin = std::max(start, busy_until_);
  SimTime transmission = TransmissionTime(bytes);
  busy_until_ = begin + transmission;
  bytes_carried_ += bytes;
  return busy_until_ + latency_;
}

SimTime CpuServer::Execute(SimTime ready, SimTime cpu) {
  SimTime begin = std::max(ready, busy_until_);
  busy_until_ = begin + cpu;
  busy_time_ += cpu;
  jobs_++;
  return busy_until_;
}

SimLink MakeEthernet10Mb() {
  // 10 Mb/s shared Ethernet, sub-millisecond LAN latency.
  return SimLink::FromBitsPerSecond(10e6, 500'000);
}

SimLink MakeModem(double kilobits_per_s) {
  // Wireless / dial-up links of section 5: high latency, low bandwidth.
  return SimLink::FromBitsPerSecond(kilobits_per_s * 1000.0, 100 * kMillisecond);
}

}  // namespace dvm
