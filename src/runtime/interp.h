// The bytecode interpreter: an explicit-frame stack machine over prepared
// (decoded) method bodies. Guest exceptions unwind through the exception
// tables; class initialization (<clinit>) and monolithic first-use link checks
// run at first active use of a class.
//
// Two engines share one frame/unwind substrate:
//  - the quickened engine (MachineConfig::quicken, default): lazily rewrites
//    resolved sites to runtime-internal quick opcodes, dispatches via
//    computed-goto threading (DVM_THREADED_DISPATCH; portable switch fallback
//    otherwise), and passes call arguments by slicing the caller's operand
//    stack into the callee's locals inside one contiguous value arena;
//  - the reference engine: the original switch-per-Step interpreter with
//    per-invoke argument vectors and no opcode rewriting, kept as the
//    `--no-quicken` baseline and differential-testing oracle.
// Observable behaviour (outcomes, guest output, counters, the virtual clock)
// is identical between the two.
#ifndef SRC_RUNTIME_INTERP_H_
#define SRC_RUNTIME_INTERP_H_

#include <string>
#include <vector>

#include "src/runtime/machine.h"

namespace dvm {

// "threaded" when compiled with computed-goto dispatch, "switch" otherwise.
const char* InterpreterDispatchMode();

class Interpreter {
 public:
  explicit Interpreter(Machine& machine);
  ~Interpreter();

  Interpreter(const Interpreter&) = delete;
  Interpreter& operator=(const Interpreter&) = delete;

  // Resolves and runs a static method to completion.
  Result<CallOutcome> RunStatic(const std::string& class_name, const std::string& method_name,
                                const std::string& descriptor, std::vector<Value> args);

  // Runs an already-resolved method (used for <clinit> and service callbacks).
  Result<CallOutcome> RunMethod(RuntimeClass* cls, const MethodInfo* method,
                                std::vector<Value> args);

 private:
  // Frames index into arena_ instead of owning vectors: a frame's slots are
  // [locals_base, stack_base) for locals and [stack_base, stack_limit) for the
  // operand stack, with sp the next free stack slot. A callee pushed by the
  // quickened engine overlaps the caller's popped argument slots (its
  // locals_base is the caller's sp after the args), so invocation copies
  // nothing and allocates nothing.
  struct ExecFrame {
    RuntimeClass* cls = nullptr;
    const MethodInfo* method = nullptr;
    PreparedMethod* prepared = nullptr;
    uint32_t locals_base = 0;
    uint32_t stack_base = 0;
    uint32_t stack_limit = 0;
    uint32_t sp = 0;
    uint32_t pc = 0;  // instruction index
    // Tier-1 execution state (DESIGN.md §16). While compiled_active, cpc
    // indexes tcode->code and pc is only authoritative at span boundaries;
    // deoptimization clears the flag with pc pointing at the resume point.
    // tcode pins the TieredMethod this frame entered with (the graveyard
    // keeps it alive across invalidation).
    uint32_t cpc = 0;
    bool compiled_active = false;
    // Forced-deopt ladder: 0 = fresh, 1 = charged one span, 2 = deopted
    // (blocks re-activation for this frame under tier_force_deopt).
    uint8_t tier_state = 0;
    TieredMethod* tcode = nullptr;
  };

  Result<PreparedMethod*> Prepare(RuntimeClass* cls, const MethodInfo* method);
  // External entry: allocates a fresh frame at the arena top and copies args.
  Status PushFrame(RuntimeClass* cls, const MethodInfo* method,
                   const std::vector<Value>& args);
  // Quickened call path: the top `argc` caller stack slots become the callee's
  // first locals in place.
  Status PushFrameSliced(RuntimeClass* cls, const MethodInfo* method, uint32_t argc);
  void EnsureArena(size_t slots);
  Result<CallOutcome> Loop();

  // Ensures <clinit> has run (first active use). Guest failures surface as a
  // pending exception; the return value is a host-level status.
  Status EnsureInitialized(RuntimeClass* cls);

  // Reference engine: executes one instruction of the top frame. Guest
  // exceptions are signalled through machine_.ThrowGuest; host errors abort.
  Status Step();
  // Quickened engine: runs until a guest exception is pending, the frame
  // stack empties, a host error occurs, or the top frame becomes
  // compiled-active (tier-up at a call or OSR point).
  Status RunQuick();
  // Tier-1 engine: runs the top frame's compiled form until it deoptimizes,
  // returns into an interpreted caller, throws, or the stack empties.
  // Compiled->compiled calls and returns stay inside this loop.
  Status RunCompiled();

  // Entry tier-up: activates (compiling if needed) the freshly pushed top
  // frame when the method is hot or already has live compiled code.
  void MaybeTierOnEntry(ExecFrame& frame);
  // OSR: called from a taken backward branch with frame state synced and
  // frame.pc at the branch target. Returns true when the frame switched to
  // compiled execution (the caller must exit to Loop).
  bool MaybeOsr(ExecFrame& frame);
  // Compiles `prepared` if eligible (needs the owning class for its constant
  // pool); records tier_failed on refusal.
  TieredMethod* EnsureTierCode(RuntimeClass* cls, PreparedMethod* prepared);

  // Unwinds the pending guest exception to the nearest matching handler;
  // returns false when no handler exists and the frame stack is empty.
  Result<bool> DispatchPendingException();

  // Resolves a field site into its inline cache (shared by both engines).
  // Returns false when a guest exception is now pending.
  Result<bool> ResolveFieldSite(ExecFrame& f, uint32_t site_ix, bool is_static);

  // Reference-engine invocation helper shared by the three invoke opcodes.
  // `ic` is the quickening cache slot of the invoke instruction.
  Status Invoke(Op op, uint16_t cp_index, InlineCache& ic);
  // Quickened-engine slow path: resolves the site at `site_ix` of the top
  // frame, installs the quick form, and performs the call. Expects the top
  // frame's sp/pc to be synced.
  Status QuickInvokeSlow(Op op, uint32_t site_ix);
  // Transfers control to an already-resolved target: abstract check, native
  // trampoline, or sliced frame push. Args are the top `argc` caller slots.
  Status InvokeResolved(RuntimeClass* owner, const MethodInfo* method, uint32_t argc);
  Status CallNative(RuntimeClass* owner, const MethodInfo* method, std::vector<Value> args);

  void CollectFrameRoots(std::vector<ObjRef>* roots) const;

  // Profiler polls, shared by both engines so samples land at identical
  // virtual times: at method entry (after the invoke cost is charged) and at
  // taken backward branches. No-ops when no profiler is attached.
  void ProfileMethodEntry();
  void ProfileBackedge(PreparedMethod* prepared);

  Machine& machine_;
  // Tier-1 configuration, cached from MachineConfig at construction so the hot
  // paths (frame push, backedge) test plain members. tier_enabled_ is false
  // when the quickened engine is off or both thresholds are zero.
  bool tier_enabled_ = false;
  bool tier_force_deopt_ = false;
  uint64_t tier_invocation_threshold_ = 0;
  uint64_t tier_osr_threshold_ = 0;
  std::vector<ExecFrame> frames_;
  // One contiguous backing store for every frame's locals and operand stack.
  std::vector<Value> arena_;
  Value return_value_ = Value::Null();
  bool has_return_value_ = false;
  // Values held outside the arena (native-call arguments, external entry args
  // during <clinit>) that must stay visible to the collector.
  const std::vector<Value>* rooted_values_ = nullptr;
  std::function<void(std::vector<ObjRef>*)> previous_root_provider_;
};

}  // namespace dvm

#endif  // SRC_RUNTIME_INTERP_H_
