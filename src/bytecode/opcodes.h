// DVM instruction set. A stack-machine subset of the JVM instruction set, with
// numeric values mirroring the JVM where an equivalent opcode exists so the code
// is recognizable to anyone who has read the Java VM specification. Differences
// from the JVM (documented in DESIGN.md): longs occupy a single operand-stack
// slot and a single local slot; there are no floating point types (workloads use
// fixed-point arithmetic); switches compile to branch chains.
#ifndef SRC_BYTECODE_OPCODES_H_
#define SRC_BYTECODE_OPCODES_H_

#include <cstdint>
#include <string_view>

namespace dvm {

enum class Op : uint8_t {
  kNop = 0x00,
  kAconstNull = 0x01,
  kIconst0 = 0x03,  // matches JVM iconst_0
  kIconst1 = 0x04,
  kBipush = 0x10,  // operand: i8 immediate
  kSipush = 0x11,  // operand: i16 immediate
  kLdc = 0x12,     // operand: u16 constant pool index (Integer, Long, or String)

  kIload = 0x15,  // operand: u8 local index
  kLload = 0x16,
  kAload = 0x19,
  kIstore = 0x36,
  kLstore = 0x37,
  kAstore = 0x3a,

  kIaload = 0x2e,
  kLaload = 0x2f,
  kAaload = 0x32,
  kIastore = 0x4f,
  kLastore = 0x50,
  kAastore = 0x53,

  kPop = 0x57,
  kDup = 0x59,
  kDupX1 = 0x5a,
  kSwap = 0x5f,

  kIadd = 0x60,
  kLadd = 0x61,
  kIsub = 0x64,
  kLsub = 0x65,
  kImul = 0x68,
  kLmul = 0x69,
  kIdiv = 0x6c,
  kLdiv = 0x6d,
  kIrem = 0x70,
  kLrem = 0x71,
  kIneg = 0x74,
  kLneg = 0x75,
  kIshl = 0x78,
  kIshr = 0x7a,
  kIushr = 0x7c,
  kIand = 0x7e,
  kIor = 0x80,
  kIxor = 0x82,
  kIinc = 0x84,  // operands: u8 local index, i8 increment

  kI2l = 0x85,
  kL2i = 0x88,
  kLcmp = 0x94,

  kIfeq = 0x99,  // all branches: i16 byte offset relative to instruction start
  kIfne = 0x9a,
  kIflt = 0x9b,
  kIfge = 0x9c,
  kIfgt = 0x9d,
  kIfle = 0x9e,
  kIfIcmpeq = 0x9f,
  kIfIcmpne = 0xa0,
  kIfIcmplt = 0xa1,
  kIfIcmpge = 0xa2,
  kIfIcmpgt = 0xa3,
  kIfIcmple = 0xa4,
  kIfAcmpeq = 0xa5,
  kIfAcmpne = 0xa6,
  kGoto = 0xa7,

  kIreturn = 0xac,
  kLreturn = 0xad,
  kAreturn = 0xb0,
  kReturn = 0xb1,

  kGetstatic = 0xb2,  // operand: u16 FieldRef index
  kPutstatic = 0xb3,
  kGetfield = 0xb4,
  kPutfield = 0xb5,
  kInvokevirtual = 0xb6,  // operand: u16 MethodRef index
  kInvokespecial = 0xb7,
  kInvokestatic = 0xb8,

  kNew = 0xbb,       // operand: u16 ClassRef index
  kNewarray = 0xbc,  // operand: u8 element kind (ArrayKind)
  kAnewarray = 0xbd, // operand: u16 ClassRef index (element class)
  kArraylength = 0xbe,
  kAthrow = 0xbf,
  kCheckcast = 0xc0,   // operand: u16 ClassRef index
  kInstanceof = 0xc1,  // operand: u16 ClassRef index
  kMonitorenter = 0xc2,
  kMonitorexit = 0xc3,
  kIfnull = 0xc6,
  kIfnonnull = 0xc7,

  // --- quick forms (runtime-internal) ------------------------------------------
  // Installed by the interpreter's lazy quickening pass into *decoded* method
  // bodies after the first execution resolves a site; the resolved payload
  // lives in the instruction's InlineCache slot (or, for field quicks, in the
  // rewritten slot operand). They are never valid on the wire: DecodeCode and
  // verification phase 2 reject class files that contain these byte values,
  // and EncodeCode refuses to emit them.
  kLdcQuick = 0xd3,             // a = cp index; value pre-materialized in IC
  kGetfieldQuick = 0xd4,        // a = resolved instance-field slot
  kPutfieldQuick = 0xd5,        // a = resolved instance-field slot
  kGetstaticQuick = 0xd6,       // owner+slot in IC (presence implies initialized)
  kPutstaticQuick = 0xd7,
  kInvokevirtualQuick = 0xd8,   // monomorphic {receiver_sym, owner, method} in IC
  kInvokespecialQuick = 0xd9,   // direct {owner, method} in IC
  kInvokestaticQuick = 0xda,    // direct {owner, method} in IC, owner initialized
  kNewQuick = 0xdb,             // resolved initialized RuntimeClass in IC
  kAnewarrayQuick = 0xdc,       // precomposed array descriptor in IC
  kCheckcastQuick = 0xdd,       // resolved target class name in IC
  kInstanceofQuick = 0xde,      // resolved target class name in IC
};

// Primitive element kinds for kNewarray.
enum class ArrayKind : uint8_t {
  kInt = 10,   // JVM T_INT
  kLong = 11,  // JVM T_LONG
};

// Shape of an instruction's operand bytes.
enum class OperandKind : uint8_t {
  kNone,       // no operands
  kI8,         // one signed byte immediate
  kI16,        // one signed 16-bit immediate
  kU8,         // one local-variable index
  kCpIndex,    // u16 constant pool index
  kBranch16,   // i16 relative branch offset
  kLocalIncr,  // u8 local index + i8 increment (iinc)
  kArrayKind,  // u8 ArrayKind
};

struct OpInfo {
  std::string_view name;
  OperandKind operands;
  // Net operand-stack effect where it is fixed; kVariableStack for invokes/field ops
  // whose effect depends on the referenced descriptor.
  int stack_delta;
  bool variable_stack;
};

constexpr int kVariableStack = 127;

// Returns metadata for an opcode, or nullptr if the byte is not a valid opcode.
const OpInfo* GetOpInfo(Op op);
inline const OpInfo* GetOpInfo(uint8_t raw) { return GetOpInfo(static_cast<Op>(raw)); }

// Length in bytes of an encoded instruction (opcode + operands).
int InstructionLength(Op op);

bool IsBranch(Op op);
bool IsConditionalBranch(Op op);
bool IsReturn(Op op);
// True when control cannot fall through to the next instruction.
bool IsTerminator(Op op);
bool IsInvoke(Op op);
bool IsFieldAccess(Op op);
// True for the runtime-internal quick forms (0xd3..0xde). Quick opcodes must
// never appear in on-the-wire class files.
bool IsQuickOp(Op op);
inline bool IsQuickOp(uint8_t raw) { return IsQuickOp(static_cast<Op>(raw)); }

}  // namespace dvm

#endif  // SRC_BYTECODE_OPCODES_H_
