// Top-level facade: a DvmServer wires the proxy, the static service pipeline,
// the security server and the administration console together; DvmClient and
// MonolithicClient are the two client configurations every experiment
// compares (paper section 4: "identical software and hardware platforms, but
// under different service architectures").
#ifndef SRC_DVM_DVM_H_
#define SRC_DVM_DVM_H_

#include <future>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/dvm/availability.h"
#include "src/dvm/worker_pool.h"
#include "src/optimizer/repartition.h"
#include "src/proxy/proxy.h"
#include "src/runtime/machine.h"
#include "src/services/monitor_service.h"
#include "src/services/security_service.h"
#include "src/simnet/sim.h"

namespace dvm {

class ProxyCluster;

// Provider chaining: first provider wins, used to layer application origin
// servers over the system library boot image.
class ChainedClassProvider : public ClassProvider {
 public:
  ChainedClassProvider(ClassProvider* first, ClassProvider* second)
      : first_(first), second_(second) {}
  Result<Bytes> FetchClass(const std::string& class_name) override;

 private:
  ClassProvider* first_;
  ClassProvider* second_;
};

struct DvmServerConfig {
  bool enable_verification = true;
  bool enable_security = true;
  bool enable_audit = true;
  bool enable_profile = false;
  bool enable_compiler = false;
  // Reflection service (section 4.3): attach self-describing member tables so
  // the client's dynamic verifier avoids slow reflective lookups.
  bool enable_reflection = true;
  // When set, the repartitioning optimizer runs with this profile (section 5).
  std::optional<TransferProfile> repartition_profile;

  SecurityPolicy policy;
  ProxyConfig proxy;
  // Organization-wide outage behavior per service class (fail-closed vs
  // fail-open). Verification and security are structurally pinned closed;
  // monitoring/profiling-only deployments may opt open. Redirecting clients
  // copy this into their RedirectConfig.
  AvailabilityPolicy availability;
  std::string target_platform = "x86";
  // Server-side request workers. 0 = serve synchronously on the caller's
  // thread (the classic configuration); N > 0 starts N real threads so many
  // clients can fetch concurrently (HandleRequestAsync).
  size_t proxy_worker_threads = 0;
};

// The organization-wide server side: proxy + static services + policy server +
// administration console.
class DvmServer {
 public:
  // `origin` serves untransformed application classes (the web servers the
  // clients would have fetched from directly). Must outlive the server.
  DvmServer(DvmServerConfig config, ClassProvider* origin);

  DvmProxy& proxy() { return *proxy_; }
  SecurityServer& security_server() { return security_server_; }
  AdministrationConsole& console() { return console_; }
  const SecurityPolicy& policy() const { return security_server_.policy(); }
  const DvmServerConfig& config() const { return config_; }

  // Registers the replicated proxy cluster this server fronts (not owned,
  // may be null to detach). Once attached, UpdateSecurityPolicy applies
  // cluster-wide instead of touching only the server's own proxy.
  void AttachCluster(ProxyCluster* cluster) { cluster_ = cluster; }
  ProxyCluster* cluster() const { return cluster_; }

  // Single point of control: installing a new policy invalidates every
  // client's enforcement cache and the proxy's rewrite cache (including the
  // filter-synthesized class map — both embed the old policy's hooks). With
  // an attached cluster the update is cluster-wide: a 2PC epoch round when
  // replication is enabled (false = the round aborted and the fleet fails
  // closed until a retry commits), otherwise a synchronous invalidation of
  // every replica. `now` is the virtual time the update is issued at.
  bool UpdateSecurityPolicy(SecurityPolicy policy, SimTime now = 0);

  // Concurrent entry point: runs the request on the server's worker pool and
  // returns a future. With no pool configured the request is served inline on
  // the caller's thread and the future is already ready. Virtual-clock cost
  // accounting is identical to HandleRequest — threads buy throughput only.
  std::future<Result<ProxyResponse>> HandleRequestAsync(const std::string& class_name,
                                                        const std::string& platform = "");

  // Starts (or resizes) the worker pool; idempotent for an equal size. Only
  // call while no requests are in flight.
  void StartWorkers(size_t num_threads);
  WorkerPool* workers() { return workers_.get(); }

 private:
  DvmServerConfig config_;
  std::vector<ClassFile> library_classes_;
  MapClassEnv library_env_;
  MapClassProvider library_provider_;
  ChainedClassProvider chained_origin_;
  SecurityServer security_server_;
  AdministrationConsole console_;
  std::unique_ptr<DvmProxy> proxy_;
  std::unique_ptr<WorkerPool> workers_;
  ProxyCluster* cluster_ = nullptr;
};

// A client VM attached to a DvmServer through a simulated link. Fetches
// classes through the proxy (charging transfer + proxy time to the machine's
// virtual clock) and installs the dynamic service components.
class DvmClient : public ClassProvider {
 public:
  // `platform` is the client's native format, reported to the server during
  // the monitoring handshake (section 3.4) and attached to every class request
  // so the compilation service can translate per architecture.
  DvmClient(DvmServer* server, MachineConfig machine_config, SimLink link,
            std::string user = "user", std::string host = "client",
            std::string platform = "x86");

  Machine& machine() { return *machine_; }
  EnforcementManager& enforcement() { return *enforcement_; }
  AuditSession& audit() { return *audit_; }
  ProfileCollector* profiler() { return profiler_.get(); }

  // Launches static void main()V of `main_class`, assigning the thread's
  // security identifier from the organization policy.
  Result<CallOutcome> RunApp(const std::string& main_class);

  // ClassProvider: fetch via the proxy, charging virtual time.
  Result<Bytes> FetchClass(const std::string& class_name) override;

  uint64_t transfer_nanos() const { return transfer_nanos_; }
  uint64_t classes_fetched() const { return classes_fetched_; }
  uint64_t bytes_fetched() const { return bytes_fetched_; }
  const std::string& platform() const { return platform_; }

 private:
  DvmServer* server_;
  SimLink link_;
  std::string platform_;
  uint64_t transfer_nanos_ = 0;
  uint64_t classes_fetched_ = 0;
  uint64_t bytes_fetched_ = 0;
  std::unique_ptr<Machine> machine_;
  std::unique_ptr<EnforcementManager> enforcement_;
  std::unique_ptr<AuditSession> audit_;
  std::unique_ptr<ProfileCollector> profiler_;
};

// The baseline: a monolithic VM whose services all run locally. Classes flow
// through a null proxy (no filters) so network conditions are identical.
class MonolithicClient : public ClassProvider {
 public:
  // `origin` as in DvmServer. Grants in `policy` are translated onto the
  // stack-introspection security manager.
  MonolithicClient(ClassProvider* origin, const SecurityPolicy& policy,
                   MachineConfig machine_config, SimLink link);

  Machine& machine() { return *machine_; }
  DvmProxy& null_proxy() { return *null_proxy_; }

  Result<CallOutcome> RunApp(const std::string& main_class);
  Result<Bytes> FetchClass(const std::string& class_name) override;

  uint64_t transfer_nanos() const { return transfer_nanos_; }

 private:
  std::vector<ClassFile> library_classes_;
  MapClassEnv library_env_;
  MapClassProvider library_provider_;
  std::unique_ptr<ChainedClassProvider> chained_origin_;
  std::unique_ptr<DvmProxy> null_proxy_;
  SecurityPolicy policy_;
  SimLink link_;
  uint64_t transfer_nanos_ = 0;
  std::unique_ptr<Machine> machine_;
};

// Shared helper: installs a MachineConfig appropriate for each architecture.
MachineConfig MonolithicMachineConfig();
MachineConfig DvmMachineConfig();

}  // namespace dvm

#endif  // SRC_DVM_DVM_H_
