file(REMOVE_RECURSE
  "CMakeFiles/dvm_simnet.dir/sim.cc.o"
  "CMakeFiles/dvm_simnet.dir/sim.cc.o.d"
  "libdvm_simnet.a"
  "libdvm_simnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvm_simnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
