// Small string helpers shared across modules.
#ifndef SRC_SUPPORT_STRINGS_H_
#define SRC_SUPPORT_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace dvm {

std::vector<std::string> Split(std::string_view s, char sep);
std::string Join(const std::vector<std::string>& parts, std::string_view sep);
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);
std::string Trim(std::string_view s);

// Simple glob with '*' wildcard (any run of characters). Used by the security
// policy's resource patterns, e.g. "/tmp/*" or "java.io.*".
bool GlobMatch(std::string_view pattern, std::string_view text);

}  // namespace dvm

#endif  // SRC_SUPPORT_STRINGS_H_
