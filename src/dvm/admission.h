// Admission control and priority-aware load shedding for the proxy tier.
//
// The flash-crowd scenario (one applet goes viral, 10^6 clients fetch it at
// once) is exactly the overload Malkhi & Reiter's remote playground faces:
// without admission control the request queue grows without bound, every
// request's latency goes to the queue length, and the service collapses for
// everyone. The production defense is a bounded queue with backpressure, a
// token bucket smoothing the admit rate, and *priority-aware* shedding.
//
// Shedding is structurally subordinate to the fail-closed availability policy
// from PR 2: a service class that MustFailClosed (verification, security) is
// never shed — unverified code must never run, so verification traffic rides
// through any overload and only pays queueing delay. Observability traffic
// (monitoring, profiling) sheds first; compilation/optimization shed later.
// Rejections are ErrorCode-typed (kOverloaded) and carry a retry-after hint
// that the client backoff path honors. See DESIGN.md §12.
#ifndef SRC_DVM_ADMISSION_H_
#define SRC_DVM_ADMISSION_H_

#include <array>
#include <cstdint>

#include "src/dvm/availability.h"
#include "src/simnet/sim.h"
#include "src/support/stats.h"

namespace dvm {

// Shed order: lower tiers shed first as the bounded queue fills. Pinned
// fail-closed services are beyond any tier — structurally unsheddable.
enum class ShedTier : uint8_t {
  kShedFirst = 0,     // monitoring, profiling: observability only
  kShedLater = 1,     // compilation, optimization: quality-of-service
  kUnsheddable = 2,   // verification, security: never shed (fail-closed)
};

ShedTier ShedTierFor(ServiceClass service);

struct AdmissionConfig {
  // Token bucket: sustained admission rate and burst headroom. The bucket
  // smooths arrival spikes; the queue bound caps standing backlog.
  double tokens_per_second = 4000.0;
  double burst = 400.0;
  // Bounded request queue (admitted but not yet completed requests).
  size_t queue_capacity = 1024;
  // Fraction of queue_capacity each sheddable tier may occupy: observability
  // traffic is turned away at half-full, quality-of-service traffic near
  // full. Unsheddable traffic ignores the bound entirely.
  double shed_first_fill = 0.5;
  double shed_later_fill = 0.9;
  // Ceiling on the retry-after hint. An honest drain estimate during a deep
  // overload can run to minutes; a client told to wait that long camps out and
  // then lands in the served-latency tail. Past this horizon the client
  // should fail fast (exhaust its retry budget) rather than outwait the storm.
  SimTime max_retry_after = 2 * kSecond;
};

// Virtual-time token bucket + bounded queue, one per proxy replica. Pure
// discrete-event model state: all methods take the current virtual time and
// the class is single-threaded like the rest of simnet.
class AdmissionController {
 public:
  struct Decision {
    bool admitted = true;
    // When rejected: how long the client should wait before retrying (time
    // until a token accrues, plus expected queue drain when over the bound).
    SimTime retry_after = 0;
  };

  explicit AdmissionController(AdmissionConfig config);

  // Admission decision for one request of `service` offered at `now`.
  // Unsheddable services are always admitted. Sheddable services are rejected
  // when their tier's queue-fill bound is exceeded or no token is available.
  Decision Offer(ServiceClass service, SimTime now);

  // Marks one admitted request finished, freeing its queue slot.
  void Complete(SimTime now);

  size_t queue_depth() const { return queue_depth_; }
  uint64_t admitted() const { return admitted_; }
  uint64_t shed_total() const { return shed_total_; }
  uint64_t shed_for(ShedTier tier) const {
    return shed_by_tier_[static_cast<size_t>(tier)];
  }
  const AdmissionConfig& config() const { return config_; }

 private:
  void Refill(SimTime now);

  AdmissionConfig config_;
  double tokens_;
  SimTime last_refill_ = 0;
  size_t queue_depth_ = 0;
  uint64_t admitted_ = 0;
  uint64_t shed_total_ = 0;
  std::array<uint64_t, 3> shed_by_tier_{};
};

}  // namespace dvm

#endif  // SRC_DVM_ADMISSION_H_
