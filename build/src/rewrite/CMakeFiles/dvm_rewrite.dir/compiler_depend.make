# Empty compiler generated dependencies file for dvm_rewrite.
# This may be replaced when dependencies are built.
