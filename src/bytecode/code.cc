#include "src/bytecode/code.h"

#include <unordered_map>

namespace dvm {

Result<std::vector<Instr>> DecodeCode(const Bytes& code) {
  std::vector<Instr> instrs;
  // Byte offset of each decoded instruction, for branch target mapping.
  std::unordered_map<uint32_t, uint32_t> offset_to_index;
  struct PendingBranch {
    size_t instr_index;
    uint32_t target_offset;
  };
  std::vector<PendingBranch> pending;

  size_t pos = 0;
  while (pos < code.size()) {
    uint32_t offset = static_cast<uint32_t>(pos);
    Op op = static_cast<Op>(code[pos]);
    if (IsQuickOp(op)) {
      // Quick forms are installed by the interpreter's quickening pass into
      // decoded code only; a class file carrying them on the wire is hostile
      // or corrupt (verification phase 2 relies on this rejection).
      return Error{ErrorCode::kVerifyError,
                   "quick opcode 0x" + std::to_string(code[pos]) + " at offset " +
                       std::to_string(pos) + " is runtime-internal"};
    }
    const OpInfo* info = GetOpInfo(op);
    if (info == nullptr) {
      return Error{ErrorCode::kVerifyError,
                   "unknown opcode 0x" + std::to_string(code[pos]) + " at offset " +
                       std::to_string(pos)};
    }
    int len = InstructionLength(op);
    if (pos + static_cast<size_t>(len) > code.size()) {
      return Error{ErrorCode::kVerifyError,
                   "truncated instruction at offset " + std::to_string(pos)};
    }
    Instr instr;
    instr.op = op;
    switch (info->operands) {
      case OperandKind::kNone:
        break;
      case OperandKind::kI8:
        instr.a = static_cast<int8_t>(code[pos + 1]);
        break;
      case OperandKind::kU8:
      case OperandKind::kArrayKind:
        instr.a = code[pos + 1];
        break;
      case OperandKind::kI16: {
        instr.a = static_cast<int16_t>((code[pos + 1] << 8) | code[pos + 2]);
        break;
      }
      case OperandKind::kCpIndex:
        instr.a = (code[pos + 1] << 8) | code[pos + 2];
        break;
      case OperandKind::kBranch16: {
        int16_t rel = static_cast<int16_t>((code[pos + 1] << 8) | code[pos + 2]);
        int64_t target = static_cast<int64_t>(offset) + rel;
        if (target < 0 || target >= static_cast<int64_t>(code.size())) {
          return Error{ErrorCode::kVerifyError,
                       "branch at offset " + std::to_string(pos) + " escapes method body"};
        }
        pending.push_back({instrs.size(), static_cast<uint32_t>(target)});
        break;
      }
      case OperandKind::kLocalIncr:
        instr.a = code[pos + 1];
        instr.b = static_cast<int8_t>(code[pos + 2]);
        break;
    }
    offset_to_index[offset] = static_cast<uint32_t>(instrs.size());
    instrs.push_back(instr);
    pos += static_cast<size_t>(len);
  }

  for (const auto& p : pending) {
    auto it = offset_to_index.find(p.target_offset);
    if (it == offset_to_index.end()) {
      return Error{ErrorCode::kVerifyError,
                   "branch targets mid-instruction offset " + std::to_string(p.target_offset)};
    }
    instrs[p.instr_index].a = static_cast<int32_t>(it->second);
  }
  return instrs;
}

std::vector<uint32_t> CodeByteOffsets(const std::vector<Instr>& instrs) {
  std::vector<uint32_t> offsets;
  offsets.reserve(instrs.size() + 1);
  uint32_t pos = 0;
  for (const auto& instr : instrs) {
    offsets.push_back(pos);
    pos += static_cast<uint32_t>(InstructionLength(instr.op));
  }
  offsets.push_back(pos);
  return offsets;
}

Result<Bytes> EncodeCode(const std::vector<Instr>& instrs) {
  std::vector<uint32_t> offsets = CodeByteOffsets(instrs);
  Bytes out;
  out.reserve(offsets.back());
  for (size_t i = 0; i < instrs.size(); i++) {
    const Instr& instr = instrs[i];
    if (IsQuickOp(instr.op)) {
      return Error{ErrorCode::kInternal,
                   "refusing to encode runtime-internal quick opcode"};
    }
    const OpInfo* info = GetOpInfo(instr.op);
    if (info == nullptr) {
      return Error{ErrorCode::kInternal, "encoding unknown opcode"};
    }
    out.push_back(static_cast<uint8_t>(instr.op));
    switch (info->operands) {
      case OperandKind::kNone:
        break;
      case OperandKind::kI8:
        if (instr.a < -128 || instr.a > 127) {
          return Error{ErrorCode::kInvalidArgument, "i8 operand out of range"};
        }
        out.push_back(static_cast<uint8_t>(instr.a));
        break;
      case OperandKind::kU8:
      case OperandKind::kArrayKind:
        if (instr.a < 0 || instr.a > 255) {
          return Error{ErrorCode::kInvalidArgument, "u8 operand out of range"};
        }
        out.push_back(static_cast<uint8_t>(instr.a));
        break;
      case OperandKind::kI16:
        if (instr.a < -32768 || instr.a > 32767) {
          return Error{ErrorCode::kInvalidArgument, "i16 operand out of range"};
        }
        out.push_back(static_cast<uint8_t>(instr.a >> 8));
        out.push_back(static_cast<uint8_t>(instr.a));
        break;
      case OperandKind::kCpIndex:
        if (instr.a < 0 || instr.a > 0xFFFF) {
          return Error{ErrorCode::kInvalidArgument, "cp index out of range"};
        }
        out.push_back(static_cast<uint8_t>(instr.a >> 8));
        out.push_back(static_cast<uint8_t>(instr.a));
        break;
      case OperandKind::kBranch16: {
        if (instr.a < 0 || static_cast<size_t>(instr.a) >= instrs.size()) {
          return Error{ErrorCode::kInvalidArgument,
                       "branch target index out of range: " + std::to_string(instr.a)};
        }
        int64_t rel = static_cast<int64_t>(offsets[static_cast<size_t>(instr.a)]) -
                      static_cast<int64_t>(offsets[i]);
        if (rel < -32768 || rel > 32767) {
          return Error{ErrorCode::kCapacity, "branch displacement exceeds 16 bits"};
        }
        out.push_back(static_cast<uint8_t>(rel >> 8));
        out.push_back(static_cast<uint8_t>(rel));
        break;
      }
      case OperandKind::kLocalIncr:
        if (instr.a < 0 || instr.a > 255 || instr.b < -128 || instr.b > 127) {
          return Error{ErrorCode::kInvalidArgument, "iinc operands out of range"};
        }
        out.push_back(static_cast<uint8_t>(instr.a));
        out.push_back(static_cast<uint8_t>(instr.b));
        break;
    }
  }
  return out;
}

}  // namespace dvm
