file(REMOVE_RECURSE
  "CMakeFiles/dvm_compiler.dir/compiler.cc.o"
  "CMakeFiles/dvm_compiler.dir/compiler.cc.o.d"
  "libdvm_compiler.a"
  "libdvm_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvm_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
