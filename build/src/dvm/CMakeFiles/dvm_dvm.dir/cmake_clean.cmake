file(REMOVE_RECURSE
  "CMakeFiles/dvm_dvm.dir/dvm.cc.o"
  "CMakeFiles/dvm_dvm.dir/dvm.cc.o.d"
  "CMakeFiles/dvm_dvm.dir/redirect_client.cc.o"
  "CMakeFiles/dvm_dvm.dir/redirect_client.cc.o.d"
  "libdvm_dvm.a"
  "libdvm_dvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvm_dvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
