#include "src/bytecode/assembler.h"

#include <map>
#include <sstream>

#include "src/bytecode/builder.h"
#include "src/bytecode/code.h"
#include "src/bytecode/descriptor.h"
#include "src/support/strings.h"

namespace dvm {
namespace {

Error AsmErr(size_t line, const std::string& message) {
  return Error{ErrorCode::kParseError,
               "asm line " + std::to_string(line) + ": " + message};
}

// Splits a line into tokens; double-quoted strings (with \" \\ \n \t escapes)
// become single tokens carrying a marker prefix '\x01' so later stages can
// tell "42" the string from 42 the integer.
Result<std::vector<std::string>> Tokenize(const std::string& line, size_t line_no) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < line.size()) {
    if (line[i] == ' ' || line[i] == '\t') {
      i++;
      continue;
    }
    if (line[i] == '"') {
      std::string value(1, '\x01');
      i++;
      while (i < line.size() && line[i] != '"') {
        if (line[i] == '\\' && i + 1 < line.size()) {
          char c = line[i + 1];
          value.push_back(c == 'n' ? '\n' : c == 't' ? '\t' : c);
          i += 2;
        } else {
          value.push_back(line[i++]);
        }
      }
      if (i >= line.size()) {
        return AsmErr(line_no, "unterminated string literal");
      }
      i++;  // closing quote
      tokens.push_back(std::move(value));
      continue;
    }
    size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') {
      i++;
    }
    tokens.push_back(line.substr(start, i - start));
  }
  return tokens;
}

const std::map<std::string, Op>& OpByName() {
  static const auto* map = [] {
    auto* m = new std::map<std::string, Op>();
    for (int raw = 0; raw < 256; raw++) {
      const OpInfo* info = GetOpInfo(static_cast<uint8_t>(raw));
      if (info != nullptr) {
        (*m)[std::string(info->name)] = static_cast<Op>(raw);
      }
    }
    return m;
  }();
  return *map;
}

Result<uint16_t> ParseFlags(const std::vector<std::string>& tokens, size_t from,
                            size_t line_no) {
  uint16_t flags = 0;
  for (size_t i = from; i < tokens.size(); i++) {
    const std::string& f = tokens[i];
    if (f == "public") {
      flags |= AccessFlags::kPublic;
    } else if (f == "private") {
      flags |= AccessFlags::kPrivate;
    } else if (f == "protected") {
      flags |= AccessFlags::kProtected;
    } else if (f == "static") {
      flags |= AccessFlags::kStatic;
    } else if (f == "final") {
      flags |= AccessFlags::kFinal;
    } else if (f == "synchronized") {
      flags |= AccessFlags::kSynchronized;
    } else if (f == "native") {
      flags |= AccessFlags::kNative;
    } else if (f == "abstract") {
      flags |= AccessFlags::kAbstract;
    } else if (f == "interface") {
      flags |= AccessFlags::kInterface;
    } else {
      return AsmErr(line_no, "unknown flag '" + f + "'");
    }
  }
  return flags;
}

std::string FlagsToString(uint16_t flags) {
  std::vector<std::string> names;
  if (flags & AccessFlags::kPublic) {
    names.push_back("public");
  }
  if (flags & AccessFlags::kPrivate) {
    names.push_back("private");
  }
  if (flags & AccessFlags::kProtected) {
    names.push_back("protected");
  }
  if (flags & AccessFlags::kStatic) {
    names.push_back("static");
  }
  if (flags & AccessFlags::kFinal) {
    names.push_back("final");
  }
  if (flags & AccessFlags::kSynchronized) {
    names.push_back("synchronized");
  }
  if (flags & AccessFlags::kNative) {
    names.push_back("native");
  }
  if (flags & AccessFlags::kAbstract) {
    names.push_back("abstract");
  }
  if (flags & AccessFlags::kInterface) {
    names.push_back("interface");
  }
  return Join(names, " ");
}

Result<int64_t> ParseInt(const std::string& token, size_t line_no) {
  if (token.empty() || token[0] == '\x01') {
    return AsmErr(line_no, "expected integer, found string/empty");
  }
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(token.c_str(), &end, 10);
  if (end == token.c_str() || (*end != '\0' && !(*end == 'L' && end[1] == '\0'))) {
    return AsmErr(line_no, "malformed integer '" + token + "'");
  }
  return static_cast<int64_t>(v);
}

struct PendingHandler {
  std::string start, end, handler, catch_class;
  size_t line_no;
};

class Assembler {
 public:
  Result<ClassFile> Run(const std::string& text);

 private:
  Status HandleDirective(const std::vector<std::string>& tokens, size_t line_no);
  Status HandleInstruction(const std::vector<std::string>& tokens, size_t line_no);
  Status FinishMethod(size_t line_no);
  Result<Label> LabelFor(const std::string& name);

  std::unique_ptr<ClassBuilder> class_builder_;
  MethodBuilder* method_ = nullptr;
  std::map<std::string, Label> labels_;
  std::map<std::string, bool> label_bound_;
  std::vector<PendingHandler> handlers_;
  // True between a native/abstract .method and its .end (no body allowed).
  bool bodyless_open_ = false;
};

Result<Label> Assembler::LabelFor(const std::string& name) {
  auto it = labels_.find(name);
  if (it != labels_.end()) {
    return it->second;
  }
  Label label = method_->NewLabel();
  labels_[name] = label;
  label_bound_[name] = false;
  return label;
}

Status Assembler::FinishMethod(size_t line_no) {
  for (const auto& h : handlers_) {
    auto start = labels_.find(h.start);
    auto end = labels_.find(h.end);
    auto target = labels_.find(h.handler);
    if (start == labels_.end() || end == labels_.end() || target == labels_.end()) {
      return AsmErr(h.line_no, "handler references unknown label");
    }
    method_->AddHandler(start->second, end->second, target->second, h.catch_class);
  }
  for (const auto& [name, bound] : label_bound_) {
    if (!bound) {
      return AsmErr(line_no, "label '" + name + "' referenced but never defined");
    }
  }
  method_ = nullptr;
  labels_.clear();
  label_bound_.clear();
  handlers_.clear();
  return Status::Ok();
}

Status Assembler::HandleDirective(const std::vector<std::string>& tokens, size_t line_no) {
  const std::string& directive = tokens[0];
  if (directive == ".class") {
    if (class_builder_ != nullptr) {
      return AsmErr(line_no, "duplicate .class directive");
    }
    if (tokens.size() < 2) {
      return AsmErr(line_no, ".class requires a name");
    }
    std::string super = "java/lang/Object";
    size_t flags_from = 2;
    if (tokens.size() >= 4 && tokens[2] == "extends") {
      super = tokens[3];
      flags_from = 4;
    }
    uint16_t flags = AccessFlags::kPublic;
    if (flags_from < tokens.size()) {
      if (tokens[flags_from] != "flags") {
        return AsmErr(line_no, "expected 'flags' in .class");
      }
      DVM_ASSIGN_OR_RETURN(flags, ParseFlags(tokens, flags_from + 1, line_no));
    }
    class_builder_ = std::make_unique<ClassBuilder>(tokens[1], super, flags);
    return Status::Ok();
  }
  if (class_builder_ == nullptr) {
    return AsmErr(line_no, "directive before .class");
  }
  if (directive == ".interface") {
    if (tokens.size() != 2) {
      return AsmErr(line_no, ".interface requires a name");
    }
    class_builder_->AddInterface(tokens[1]);
    return Status::Ok();
  }
  if (directive == ".field") {
    if (tokens.size() < 3) {
      return AsmErr(line_no, ".field requires name and descriptor");
    }
    uint16_t flags = AccessFlags::kPublic;
    if (tokens.size() > 3) {
      if (tokens[3] != "flags") {
        return AsmErr(line_no, "expected 'flags' in .field");
      }
      DVM_ASSIGN_OR_RETURN(flags, ParseFlags(tokens, 4, line_no));
    }
    if (!IsValidTypeDescriptor(tokens[2])) {
      return AsmErr(line_no, "malformed field descriptor '" + tokens[2] + "'");
    }
    class_builder_->AddField(flags, tokens[1], tokens[2]);
    return Status::Ok();
  }
  if (directive == ".method") {
    if (method_ != nullptr) {
      return AsmErr(line_no, ".method inside a method (missing .end?)");
    }
    if (tokens.size() < 3) {
      return AsmErr(line_no, ".method requires name and descriptor");
    }
    uint16_t flags = AccessFlags::kPublic;
    if (tokens.size() > 3) {
      if (tokens[3] != "flags") {
        return AsmErr(line_no, "expected 'flags' in .method");
      }
      DVM_ASSIGN_OR_RETURN(flags, ParseFlags(tokens, 4, line_no));
    }
    if (!ParseMethodDescriptor(tokens[2]).ok()) {
      return AsmErr(line_no, "malformed method descriptor '" + tokens[2] + "'");
    }
    if ((flags & AccessFlags::kNative) != 0) {
      class_builder_->AddNativeMethod(flags, tokens[1], tokens[2]);
      method_ = nullptr;
      bodyless_open_ = true;
      return Status::Ok();
    }
    if ((flags & AccessFlags::kAbstract) != 0) {
      class_builder_->AddAbstractMethod(flags, tokens[1], tokens[2]);
      method_ = nullptr;
      bodyless_open_ = true;
      return Status::Ok();
    }
    method_ = &class_builder_->AddMethod(flags, tokens[1], tokens[2]);
    return Status::Ok();
  }
  if (directive == ".handler") {
    if (method_ == nullptr) {
      return AsmErr(line_no, ".handler outside a method");
    }
    if (tokens.size() < 4) {
      return AsmErr(line_no, ".handler requires start end target [class]");
    }
    PendingHandler h;
    h.start = tokens[1];
    h.end = tokens[2];
    h.handler = tokens[3];
    h.catch_class = tokens.size() > 4 ? tokens[4] : "";
    h.line_no = line_no;
    handlers_.push_back(std::move(h));
    return Status::Ok();
  }
  if (directive == ".end") {
    if (method_ != nullptr) {
      return FinishMethod(line_no);
    }
    if (bodyless_open_) {
      bodyless_open_ = false;
      return Status::Ok();
    }
    return AsmErr(line_no, ".end without open method");
  }
  return AsmErr(line_no, "unknown directive '" + directive + "'");
}

Status Assembler::HandleInstruction(const std::vector<std::string>& tokens, size_t line_no) {
  if (method_ == nullptr) {
    return AsmErr(line_no, "instruction outside a method");
  }
  auto it = OpByName().find(tokens[0]);
  if (it == OpByName().end()) {
    return AsmErr(line_no, "unknown instruction '" + tokens[0] + "'");
  }
  Op op = it->second;
  const OpInfo* info = GetOpInfo(op);

  auto need = [&](size_t n) -> Status {
    if (tokens.size() != n + 1) {
      return AsmErr(line_no, std::string(info->name) + " expects " + std::to_string(n) +
                                 " operand(s)");
    }
    return Status::Ok();
  };

  switch (info->operands) {
    case OperandKind::kNone:
      DVM_RETURN_IF_ERROR(need(0));
      method_->Emit(op);
      return Status::Ok();
    case OperandKind::kI8:
    case OperandKind::kI16:
    case OperandKind::kU8: {
      DVM_RETURN_IF_ERROR(need(1));
      DVM_ASSIGN_OR_RETURN(int64_t v, ParseInt(tokens[1], line_no));
      method_->Emit(op, static_cast<int32_t>(v));
      return Status::Ok();
    }
    case OperandKind::kLocalIncr: {
      DVM_RETURN_IF_ERROR(need(2));
      DVM_ASSIGN_OR_RETURN(int64_t local, ParseInt(tokens[1], line_no));
      DVM_ASSIGN_OR_RETURN(int64_t delta, ParseInt(tokens[2], line_no));
      method_->Emit(op, static_cast<int32_t>(local), static_cast<int32_t>(delta));
      return Status::Ok();
    }
    case OperandKind::kArrayKind: {
      DVM_RETURN_IF_ERROR(need(1));
      if (tokens[1] == "int") {
        method_->Emit(op, static_cast<int>(ArrayKind::kInt));
      } else if (tokens[1] == "long") {
        method_->Emit(op, static_cast<int>(ArrayKind::kLong));
      } else {
        return AsmErr(line_no, "newarray expects 'int' or 'long'");
      }
      return Status::Ok();
    }
    case OperandKind::kBranch16: {
      DVM_RETURN_IF_ERROR(need(1));
      DVM_ASSIGN_OR_RETURN(Label target, LabelFor(tokens[1]));
      method_->Branch(op, target);
      return Status::Ok();
    }
    case OperandKind::kCpIndex: {
      ConstantPool& pool = class_builder_->pool();
      if (op == Op::kLdc) {
        DVM_RETURN_IF_ERROR(need(1));
        const std::string& t = tokens[1];
        if (!t.empty() && t[0] == '\x01') {
          method_->Emit(op, pool.AddString(t.substr(1)));
        } else if (EndsWith(t, "L")) {
          DVM_ASSIGN_OR_RETURN(int64_t v, ParseInt(t, line_no));
          method_->Emit(op, pool.AddLong(v));
        } else {
          DVM_ASSIGN_OR_RETURN(int64_t v, ParseInt(t, line_no));
          method_->Emit(op, pool.AddInteger(static_cast<int32_t>(v)));
        }
        return Status::Ok();
      }
      if (IsFieldAccess(op)) {
        DVM_RETURN_IF_ERROR(need(3));
        if (!IsValidTypeDescriptor(tokens[3])) {
          return AsmErr(line_no, "malformed field descriptor '" + tokens[3] + "'");
        }
        method_->Emit(op, pool.AddFieldRef(tokens[1], tokens[2], tokens[3]));
        return Status::Ok();
      }
      if (IsInvoke(op)) {
        DVM_RETURN_IF_ERROR(need(3));
        if (!ParseMethodDescriptor(tokens[3]).ok()) {
          return AsmErr(line_no, "malformed method descriptor '" + tokens[3] + "'");
        }
        method_->Emit(op, pool.AddMethodRef(tokens[1], tokens[2], tokens[3]));
        return Status::Ok();
      }
      // new / anewarray / checkcast / instanceof
      DVM_RETURN_IF_ERROR(need(1));
      method_->Emit(op, pool.AddClass(tokens[1]));
      return Status::Ok();
    }
  }
  return AsmErr(line_no, "unhandled operand kind");
}

Result<ClassFile> Assembler::Run(const std::string& text) {
  std::istringstream stream(text);
  std::string raw_line;
  size_t line_no = 0;
  while (std::getline(stream, raw_line)) {
    line_no++;
    std::string line = Trim(raw_line);
    if (line.empty() || line[0] == ';' || line[0] == '#') {
      continue;
    }
    DVM_ASSIGN_OR_RETURN(std::vector<std::string> tokens, Tokenize(line, line_no));
    if (tokens.empty()) {
      continue;
    }
    if (tokens[0][0] == '.') {
      DVM_RETURN_IF_ERROR(HandleDirective(tokens, line_no));
      continue;
    }
    if (tokens.size() == 1 && EndsWith(tokens[0], ":")) {
      if (method_ == nullptr) {
        return AsmErr(line_no, "label outside a method");
      }
      std::string name = tokens[0].substr(0, tokens[0].size() - 1);
      DVM_ASSIGN_OR_RETURN(Label label, LabelFor(name));
      method_->Bind(label);
      label_bound_[name] = true;
      continue;
    }
    DVM_RETURN_IF_ERROR(HandleInstruction(tokens, line_no));
  }
  if (method_ != nullptr) {
    return AsmErr(line_no, "missing .end at end of input");
  }
  if (class_builder_ == nullptr) {
    return AsmErr(line_no, "no .class directive found");
  }
  return class_builder_->Build();
}

}  // namespace

Result<ClassFile> AssembleText(const std::string& text) { return Assembler().Run(text); }

std::string ToAssembly(const ClassFile& cls) {
  std::ostringstream out;
  out << ".class " << cls.name();
  if (!cls.super_name().empty()) {
    out << " extends " << cls.super_name();
  }
  if (cls.access_flags != 0) {
    out << " flags " << FlagsToString(cls.access_flags);
  }
  out << "\n";
  for (uint16_t iface : cls.interfaces) {
    auto name = cls.pool().ClassNameAt(iface);
    if (name.ok()) {
      out << ".interface " << name.value() << "\n";
    }
  }
  for (const auto& f : cls.fields) {
    out << ".field " << f.name << " " << f.descriptor << " flags "
        << FlagsToString(f.access_flags) << "\n";
  }

  for (const auto& m : cls.methods) {
    out << ".method " << m.name << " " << m.descriptor << " flags "
        << FlagsToString(m.access_flags) << "\n";
    if (m.code.has_value()) {
      auto decoded = DecodeCode(m.code->code);
      if (decoded.ok()) {
        const auto& instrs = decoded.value();
        std::vector<uint32_t> offsets = CodeByteOffsets(instrs);
        // Collect label positions: branch targets and handler boundaries.
        std::map<size_t, std::string> labels;
        auto label_at = [&labels](size_t index) {
          auto it = labels.find(index);
          if (it == labels.end()) {
            it = labels.emplace(index, "L" + std::to_string(labels.size())).first;
          }
          return it->second;
        };
        for (const auto& instr : instrs) {
          if (IsBranch(instr.op)) {
            label_at(static_cast<size_t>(instr.a));
          }
        }
        struct HandlerIx {
          size_t start, end, handler;
          std::string catch_class;
        };
        std::vector<HandlerIx> handler_ixs;
        for (const auto& h : m.code->handlers) {
          HandlerIx ix{0, 0, 0, ""};
          for (size_t i = 0; i < offsets.size(); i++) {
            if (offsets[i] == h.start_pc) {
              ix.start = i;
            }
            if (offsets[i] == h.end_pc) {
              ix.end = i;
            }
            if (offsets[i] == h.handler_pc) {
              ix.handler = i;
            }
          }
          if (h.catch_type != 0) {
            auto name = cls.pool().ClassNameAt(h.catch_type);
            if (name.ok()) {
              ix.catch_class = name.value();
            }
          }
          label_at(ix.start);
          label_at(ix.end);
          label_at(ix.handler);
          handler_ixs.push_back(std::move(ix));
        }

        const ConstantPool& pool = cls.pool();
        for (size_t i = 0; i <= instrs.size(); i++) {
          if (labels.count(i)) {
            out << labels[i] << ":\n";
          }
          if (i == instrs.size()) {
            break;
          }
          const Instr& instr = instrs[i];
          const OpInfo* info = GetOpInfo(instr.op);
          out << "  " << info->name;
          switch (info->operands) {
            case OperandKind::kNone:
              break;
            case OperandKind::kI8:
            case OperandKind::kI16:
            case OperandKind::kU8:
              out << " " << instr.a;
              break;
            case OperandKind::kLocalIncr:
              out << " " << instr.a << " " << instr.b;
              break;
            case OperandKind::kArrayKind:
              out << (instr.a == static_cast<int>(ArrayKind::kLong) ? " long" : " int");
              break;
            case OperandKind::kBranch16:
              out << " " << labels[static_cast<size_t>(instr.a)];
              break;
            case OperandKind::kCpIndex: {
              uint16_t index = static_cast<uint16_t>(instr.a);
              if (pool.HasTag(index, CpTag::kInteger)) {
                out << " " << pool.IntegerAt(index).value();
              } else if (pool.HasTag(index, CpTag::kLong)) {
                out << " " << pool.LongAt(index).value() << "L";
              } else if (pool.HasTag(index, CpTag::kString)) {
                std::string value = pool.StringAt(index).value();
                out << " \"";
                for (char c : value) {
                  if (c == '"' || c == '\\') {
                    out << '\\' << c;
                  } else if (c == '\n') {
                    out << "\\n";
                  } else if (c == '\t') {
                    out << "\\t";
                  } else {
                    out << c;
                  }
                }
                out << "\"";
              } else if (pool.HasTag(index, CpTag::kClass)) {
                out << " " << pool.ClassNameAt(index).value();
              } else if (pool.HasTag(index, CpTag::kFieldRef)) {
                MemberRef ref = pool.FieldRefAt(index).value();
                out << " " << ref.class_name << " " << ref.member_name << " "
                    << ref.descriptor;
              } else if (pool.HasTag(index, CpTag::kMethodRef)) {
                MemberRef ref = pool.MethodRefAt(index).value();
                out << " " << ref.class_name << " " << ref.member_name << " "
                    << ref.descriptor;
              }
              break;
            }
          }
          out << "\n";
        }
        for (const auto& ix : handler_ixs) {
          out << ".handler " << labels[ix.start] << " " << labels[ix.end] << " "
              << labels[ix.handler];
          if (!ix.catch_class.empty()) {
            out << " " << ix.catch_class;
          }
          out << "\n";
        }
      }
    }
    out << ".end\n";
  }
  return out.str();
}

}  // namespace dvm
