// Process-global string interner. A symbol id is a dense, stable, non-zero
// uint32_t assigned to a string for the lifetime of the process; equal strings
// always map to the same id, so comparing two symbols is an integer compare.
// The runtime uses symbols for class names, method names and descriptors to
// replace the std::string compares on the interpreter's hot resolution paths
// (monomorphic inline caches, method lookup, subtype tests).
#ifndef SRC_SUPPORT_INTERNER_H_
#define SRC_SUPPORT_INTERNER_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace dvm {

inline constexpr uint32_t kNoSymbol = 0;

// Returns the symbol for `s`, interning it on first use. Thread-safe;
// lookups of already-interned strings take a shared lock only.
uint32_t InternSymbol(std::string_view s);

// The string a symbol was interned from. Returns an empty string for
// kNoSymbol or an id that was never handed out. Thread-safe.
const std::string& SymbolName(uint32_t sym);

// Packs a (name, descriptor) symbol pair into one map key.
inline uint64_t SymbolPairKey(uint32_t a, uint32_t b) {
  return (static_cast<uint64_t>(a) << 32) | b;
}

}  // namespace dvm

#endif  // SRC_SUPPORT_INTERNER_H_
