// Decoded instruction stream. The on-disk form is a byte stream with relative
// branch offsets; the decoded form is a vector of Instr whose branch operands are
// instruction *indices*, which is what the verifier's dataflow pass and the
// binary rewriter operate on. Encode/Decode round-trip exactly.
#ifndef SRC_BYTECODE_CODE_H_
#define SRC_BYTECODE_CODE_H_

#include <cstdint>
#include <vector>

#include "src/bytecode/opcodes.h"
#include "src/support/bytes.h"
#include "src/support/result.h"

namespace dvm {

struct Instr {
  Op op = Op::kNop;
  // Operand meaning by OperandKind:
  //   kI8/kI16:    a = immediate value
  //   kU8:         a = local variable index
  //   kCpIndex:    a = constant pool index
  //   kBranch16:   a = target instruction index (decoded) — see Decode/Encode
  //   kLocalIncr:  a = local index, b = signed increment
  //   kArrayKind:  a = ArrayKind value
  int32_t a = 0;
  int32_t b = 0;

  bool operator==(const Instr& other) const = default;
};

// Decodes an instruction stream. Checks that every opcode is known, that no
// instruction is truncated, and that every branch lands on an instruction
// boundary within the method (these are the instruction-integrity checks of
// verification phase 2; the decoder performs them because nothing downstream
// can operate on code that fails them).
Result<std::vector<Instr>> DecodeCode(const Bytes& code);

// Encodes a decoded stream back to bytes. Fails if a branch displacement does
// not fit in 16 bits (methods that large are rejected at build time).
Result<Bytes> EncodeCode(const std::vector<Instr>& instrs);

// Byte offset of each instruction in the encoding of `instrs`, plus one final
// entry holding the total encoded size. Used to remap exception tables and line
// metadata after rewriting.
std::vector<uint32_t> CodeByteOffsets(const std::vector<Instr>& instrs);

}  // namespace dvm

#endif  // SRC_BYTECODE_CODE_H_
