#include "src/dvm/replication.h"

#include <algorithm>

#include "src/support/hash.h"

namespace dvm {

ReplicationCoordinator::ReplicationCoordinator(ProxyCluster* cluster, ReplicationConfig config)
    : cluster_(cluster),
      config_(config),
      control_(cluster->size(), config.control),
      logs_(cluster->size()),
      applied_seq_(cluster->size(), 0),
      applied_epoch_(cluster->size(), 0),
      stale_(cluster->size(), false),
      c_rounds_(stats_.Counter("repl.rounds")),
      c_commits_(stats_.Counter("repl.commits")),
      c_aborts_(stats_.Counter("repl.aborts")),
      c_naks_(stats_.Counter("repl.naks")),
      c_timeouts_(stats_.Counter("repl.timeouts")),
      c_stale_marks_(stats_.Counter("repl.stale_marks")),
      c_artifact_pushes_(stats_.Counter("repl.artifact_pushes")),
      c_epoch_commits_(stats_.Counter("repl.epoch_commits")),
      c_rejoins_(stats_.Counter("repl.rejoins")),
      c_replayed_records_(stats_.Counter("repl.replayed_records")),
      c_replay_bytes_(stats_.Counter("repl.replay_bytes")) {
  control_.SetFaultInjector(cluster->fault_injector());
}

bool ReplicationCoordinator::InSync(size_t index) const {
  return !stale_[index] && applied_seq_[index] == cluster_log_.last_sequence();
}

bool ReplicationCoordinator::CanServe(size_t index, SimTime now) const {
  if (!cluster_->ReplicaUp(index, now)) {
    return false;
  }
  // A pending proposal means the organization already decided to change the
  // policy; until the fleet commits, no replica can prove the rewrites it
  // would serve are current.
  if (epoch_pending_) {
    return false;
  }
  return InSync(index);
}

void ReplicationCoordinator::AppendLog(size_t index, const CommitRecord& record) {
  // The in-sync invariant keeps member logs in lockstep with the cluster log,
  // so Append's re-stamped sequence equals record.sequence.
  logs_[index].Append(record);
  applied_seq_[index] = record.sequence;
  if (record.type == CommitRecordType::kEpoch) {
    applied_epoch_[index] = record.epoch;
  }
}

RoundResult ReplicationCoordinator::RunRound(size_t coordinator, CommitRecord record,
                                             SimTime now, bool apply_at_coordinator) {
  c_rounds_.Add();
  RoundResult result;

  std::vector<size_t> members;
  for (size_t i = 0; i < cluster_->size(); i++) {
    if (cluster_->ReplicaUp(i, now) && InSync(i)) {
      members.push_back(i);
    }
  }
  result.participants = members.size();

  // Phase 1: multicast prepare (payload rides along), collect votes. Any
  // lost/late leg or NAK aborts; the coordinator stops waiting at the vote
  // deadline either way.
  const SimTime deadline = now + config_.control.vote_timeout;
  uint64_t prepare_bytes = config_.prepare_bytes;
  if (record.type == CommitRecordType::kArtifact) {
    prepare_bytes += CommitRecordBytes(record);
  }
  bool abort = false;
  bool timed_out = false;
  SimTime votes_done = now;
  std::vector<size_t> prepared;  // peers that received the prepare (in doubt on a lost decision)
  for (size_t m : members) {
    if (m == coordinator) {
      continue;
    }
    ControlDelivery prep = control_.Send(coordinator, m, prepare_bytes, now);
    if (!prep.delivered || prep.at > deadline) {
      abort = true;
      timed_out = true;
      c_timeouts_.Add();
      continue;
    }
    prepared.push_back(m);
    bool nak = force_nak_.erase(m) > 0;
    if (nak) {
      c_naks_.Add();
    }
    ControlDelivery vote = control_.Send(m, coordinator, config_.vote_bytes, prep.at);
    if (!vote.delivered || vote.at > deadline) {
      abort = true;
      timed_out = true;
      c_timeouts_.Add();
      continue;
    }
    votes_done = std::max(votes_done, vote.at);
    if (nak) {
      abort = true;
    } else {
      result.acks++;
    }
  }
  if (timed_out) {
    votes_done = deadline;  // the coordinator waited out the missing votes
  }

  result.committed = !abort;
  if (result.committed) {
    cluster_log_.Append(record);
    record = cluster_log_.records().back();  // now carrying its final sequence
  }

  // Phase 2: multicast the decision to every peer that voted. A peer that
  // ACKed the prepare but loses the decision is in doubt — it can neither
  // apply nor forget — so it goes stale and fails closed until Rejoin
  // replays the outcome from the log.
  result.completed_at = votes_done;
  for (size_t m : prepared) {
    ControlDelivery decision = control_.Send(coordinator, m, config_.decision_bytes, votes_done);
    if (!decision.delivered) {
      stale_[m] = true;
      c_stale_marks_.Add();
      continue;
    }
    result.completed_at = std::max(result.completed_at, decision.at);
    if (result.committed) {
      cluster_->replica(m).ApplyCommitRecord(record);
      AppendLog(m, record);
    }
  }
  if (result.committed) {
    if (apply_at_coordinator) {
      cluster_->replica(coordinator).ApplyCommitRecord(record);
    }
    AppendLog(coordinator, record);
    c_commits_.Add();
  } else {
    c_aborts_.Add();
  }
  return result;
}

RoundResult ReplicationCoordinator::CommitPolicyEpoch(SimTime now) {
  const uint64_t proposed = epoch_pending_ ? pending_epoch_ : committed_epoch_ + 1;
  // The proposal is pending from this moment: even if the round aborts, the
  // fleet fails closed until a retry commits (a client must never read an
  // old-epoch rewrite after the organization decided to change the policy).
  epoch_pending_ = true;
  pending_epoch_ = proposed;

  RoundResult result;
  result.epoch = proposed;
  size_t coordinator = cluster_->size();
  for (size_t i = 0; i < cluster_->size(); i++) {
    if (cluster_->ReplicaUp(i, now) && InSync(i)) {
      coordinator = i;
      break;
    }
  }
  if (coordinator == cluster_->size()) {
    c_rounds_.Add();
    c_aborts_.Add();
    result.completed_at = now;
    return result;  // no live in-sync replica can coordinate
  }

  CommitRecord record;
  record.type = CommitRecordType::kEpoch;
  record.epoch = proposed;
  RoundResult round = RunRound(coordinator, std::move(record), now,
                               /*apply_at_coordinator=*/true);
  round.epoch = proposed;
  if (round.committed) {
    committed_epoch_ = proposed;
    epoch_pending_ = false;
    c_epoch_commits_.Add();
  }
  return round;
}

RoundResult ReplicationCoordinator::ReplicateArtifact(size_t source,
                                                      const std::string& class_name,
                                                      const std::string& platform,
                                                      SimTime now) {
  RoundResult result;
  result.epoch = committed_epoch_;
  result.completed_at = now;
  if (epoch_pending_ || !cluster_->ReplicaUp(source, now) || !InSync(source)) {
    return result;
  }
  const std::string key = DvmProxy::RewriteCacheKey(class_name, platform);
  std::optional<CachedClass> cached = cluster_->replica(source).cache().Peek(key);
  if (!cached.has_value() || cached->epoch != committed_epoch_) {
    return result;  // nothing current to push
  }
  if (!pushed_.emplace(key, cached->epoch).second) {
    result.committed = true;  // already replicated at this epoch
    return result;
  }

  CommitRecord record;
  record.type = CommitRecordType::kArtifact;
  record.epoch = cached->epoch;
  record.cache_key = key;
  record.class_name = class_name;
  record.main_class = std::move(cached->main_class);
  record.extra_classes = std::move(cached->extra_classes);
  // The proof travels with the artifact: receivers validate in one pass
  // instead of trusting the push (or re-running the fixpoint).
  record.certificate = std::move(cached->certificate);
  RoundResult round = RunRound(source, std::move(record), now,
                               /*apply_at_coordinator=*/false);
  round.epoch = committed_epoch_;
  if (round.committed) {
    c_artifact_pushes_.Add();
  } else {
    // An aborted push may be retried (e.g. after a partition heals).
    pushed_.erase({key, committed_epoch_});
  }
  return round;
}

size_t ReplicationCoordinator::Rejoin(size_t index, SimTime now) {
  (void)now;  // catch-up is a reliable bulk transfer; it draws no fault streams
  c_rejoins_.Add();
  size_t replayed = 0;
  for (const CommitRecord& record : cluster_log_.records()) {
    if (record.sequence <= applied_seq_[index]) {
      continue;
    }
    cluster_->replica(index).ApplyCommitRecord(record);
    AppendLog(index, record);
    c_replayed_records_.Add();
    c_replay_bytes_.Add(CommitRecordBytes(record));
    replayed++;
  }
  stale_[index] = false;
  return replayed;
}

uint64_t ReplicationCoordinator::Fingerprint() const {
  uint64_t h = 0xcbf29ce484222325ULL;
  auto fold = [&h](uint64_t value) { h = (h ^ value) * 0x100000001b3ULL; };
  fold(cluster_log_.Digest());
  fold(committed_epoch_);
  fold(epoch_pending_ ? pending_epoch_ : 0);
  for (size_t i = 0; i < logs_.size(); i++) {
    fold(logs_[i].Digest());
    fold(applied_seq_[i]);
    fold(applied_epoch_[i]);
    fold(stale_[i] ? 1 : 0);
  }
  fold(control_.messages());
  fold(control_.dropped());
  fold(control_.bytes_carried());
  return h;
}

}  // namespace dvm
