// Binary (de)serialization of class files — the wire format that the proxy
// parses, rewrites and regenerates, and that the network simulator charges
// transfer time for. WriteClassFile(ReadClassFile(b)) == b for well-formed b.
//
// Both directions are hardened against hostile input (and hostile in-memory
// shapes produced by mutation): every count is validated against its field
// width before it is written, and every attacker-controlled length is checked
// against the bytes actually remaining before anything is allocated.
#ifndef SRC_BYTECODE_SERIALIZER_H_
#define SRC_BYTECODE_SERIALIZER_H_

#include "src/bytecode/classfile.h"
#include "src/support/bytes.h"
#include "src/support/result.h"

namespace dvm {

// Hard parse/serialize limits. A class file violating any of them is rejected
// with kParseError before the offending structure is materialized. The values
// are far above anything the builder or the workloads produce, but small
// enough that a hostile length claim cannot drive a large allocation.
inline constexpr size_t kMaxPoolEntries = 0xFFFF;     // u16 count field
inline constexpr size_t kMaxMemberCount = 0xFFFF;     // fields/methods/interfaces
inline constexpr size_t kMaxHandlerCount = 0xFFFF;    // per-method handler table
inline constexpr size_t kMaxAttrCount = 0xFFFF;       // per-owner attribute table
inline constexpr uint32_t kMaxCodeLen = 1u << 20;     // 1 MiB of bytecode per method
inline constexpr uint32_t kMaxAttrDataLen = 1u << 24; // 16 MiB per attribute payload

// Serializes a class. Returns kParseError when any table exceeds its count
// field width (e.g. a constant pool past 65535 entries, which previously
// wrapped a u16 loop counter into an infinite loop) or a string constant
// exceeds its u16 length prefix.
Result<Bytes> WriteClassFile(const ClassFile& cls);

// Serialization for classes the caller constructed itself (builder output,
// workload generators, test fixtures) where a failure is a programming error:
// aborts with a diagnostic instead of returning. Never use on classes derived
// from untrusted bytes.
Bytes MustWriteClassFile(const ClassFile& cls);

Result<ClassFile> ReadClassFile(const Bytes& data);

}  // namespace dvm

#endif  // SRC_BYTECODE_SERIALIZER_H_
