// The transparent network proxy housing the static service components
// (paper sections 2-3). It intercepts class requests, fetches origin bytes,
// parses once, runs the stacked filter pipeline, generates the instrumented
// binary once, optionally signs it, caches the result, and logs an audit
// trail. CPU time per request is accounted so the scaling experiment
// (Figure 10) can queue requests on a simulated single-CPU server.
//
// Concurrency model (see DESIGN.md "Concurrent proxy architecture"):
// HandleRequest is safe to call from many threads. Per-request state lives in
// an explicit RequestContext rather than proxy members; the rewrite cache is
// sharded; concurrent misses on one (class, platform) key are coalesced so
// the filter pipeline runs once; and because the stacked filters keep their
// own statistics, the rewrite stage itself is a serialized critical section —
// cache hits and generated-class serves proceed in parallel around it.
#ifndef SRC_PROXY_PROXY_H_
#define SRC_PROXY_PROXY_H_

#include <atomic>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "src/proxy/cache.h"
#include "src/proxy/commit_log.h"
#include "src/proxy/signature.h"
#include "src/rewrite/filter.h"
#include "src/runtime/class_registry.h"
#include "src/support/stats.h"
#include "src/support/trace.h"
#include "src/verifier/class_env.h"

namespace dvm {

struct ProxyConfig {
  bool enable_cache = true;
  size_t cache_capacity_bytes = 48 * 1024 * 1024;  // of the host's 64 MB
  size_t cache_shards = RewriteCache::kDefaultShards;
  bool sign_output = false;
  std::string signing_key = "dvm-organization-key";
  // The audit trail is a capped ring (oldest entries dropped, with a counter)
  // so a long-lived proxy does not grow without bound.
  size_t audit_trail_capacity = 4096;

  // CPU cost model for the proxy host (200 MHz PentiumPro): parsing dominates,
  // then per-check service work, then code generation. Calibrated so an
  // average applet costs ~265 ms to parse and instrument (section 4.1.2).
  uint64_t nanos_per_request_base = 2'500'000;  // HTTP handling, per request
  uint64_t nanos_per_byte_parse = 9'000;
  uint64_t nanos_per_byte_emit = 3'000;
  // Per signed byte when sign_output is on (default 0: signing cost is folded
  // into the emit stage's post-signature serialized size, as calibrated).
  uint64_t nanos_per_byte_sign = 0;
  uint64_t nanos_per_check = 60;
  // Cache hits: connection handling plus a cheap read of the stored rewrite.
  uint64_t nanos_per_hit_base = 600'000;
  uint64_t nanos_per_byte_cached = 200;
  // Workspace held while a request is in flight (memory accounting, Fig. 10).
  size_t workspace_bytes_per_request = 262'144;
  size_t memory_bytes = 64 * 1024 * 1024;
};

// One proxied class response.
struct ProxyResponse {
  Bytes data;
  std::vector<std::pair<std::string, Bytes>> extra_classes;  // e.g. $cold splits
  bool cache_hit = false;
  // True when this request blocked behind another request already rewriting
  // the same (class, platform) key and was then served its result.
  bool coalesced = false;
  uint64_t cpu_nanos = 0;      // proxy CPU consumed by this request
  uint64_t origin_bytes = 0;   // bytes fetched from the origin server
  // Security-policy epoch the served artifact was rewritten under. Stamped
  // from the *sampled* epoch at rewrite start (not the current one), so a
  // policy change racing a rewrite can never forge epoch currency.
  uint64_t epoch = 0;
};

// Per-request state, threaded explicitly through the request path instead of
// being mutated on the proxy mid-flight (which is what made the old
// single-threaded HandleRequest impossible to run concurrently). The
// virtual-CPU breakdown sums to ProxyResponse::cpu_nanos.
struct RequestContext {
  std::string class_name;
  std::string platform;
  std::string cache_key;

  // Virtual-CPU timing breakdown per stage of the static pipeline.
  uint64_t connection_nanos = 0;  // request handling / cached read
  uint64_t parse_nanos = 0;
  uint64_t filter_nanos = 0;
  uint64_t emit_nanos = 0;
  uint64_t sign_nanos = 0;

  bool cache_hit = false;
  bool coalesced = false;

  // Tracing (off when trace.tracer is null): Commit converts the stage nanos
  // above into child spans under trace.parent, starting at trace.at.
  TraceContext trace;

  // Audit events produced while serving; flushed to the proxy's audit ring in
  // one locked append when the request commits.
  std::vector<std::string> audit_events;

  uint64_t TotalNanos() const {
    return connection_nanos + parse_nanos + filter_nanos + emit_nanos + sign_nanos;
  }
};

// Bounded audit log: a capped ring buffer that counts what it drops.
class AuditRing {
 public:
  explicit AuditRing(size_t capacity) : capacity_(capacity) {}

  void Push(std::string event);
  void PushAll(std::vector<std::string> events);
  // Oldest → newest.
  std::vector<std::string> Snapshot() const;
  size_t size() const;
  size_t capacity() const { return capacity_; }
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  uint64_t lock_acquisitions() const {
    return lock_acquisitions_.load(std::memory_order_relaxed);
  }

 private:
  size_t capacity_;
  mutable std::mutex mu_;
  mutable std::atomic<uint64_t> lock_acquisitions_{0};
  std::deque<std::string> ring_;
  std::atomic<uint64_t> dropped_{0};
};

class DvmProxy {
 public:
  // `origin` supplies untransformed class bytes (the web server / Internet);
  // `library_env` is the trusted system library the verifier can see.
  DvmProxy(ProxyConfig config, const ClassEnv* library_env, ClassProvider* origin);

  // The pipeline points at the internal environment; the proxy is pinned.
  DvmProxy(const DvmProxy&) = delete;
  DvmProxy& operator=(const DvmProxy&) = delete;

  // Adds a static service to the pipeline (order = stacking order). Not
  // thread-safe; configure the pipeline before serving requests.
  void AddFilter(std::unique_ptr<CodeFilter> filter);

  // Invoked for every class version served from the pipeline (not for cache
  // hits) with the served bytes; the administration console uses it to keep
  // the organization's code-version inventory. Called under the rewrite
  // critical section, so one invocation at a time.
  void SetServedObserver(std::function<void(const std::string&, const Bytes&)> observer) {
    served_observer_ = std::move(observer);
  }

  // `platform` is the requesting client's native format (from its handshake);
  // the cache is keyed on (class, platform) so an x86 client and an Alpha
  // client each receive code compiled for their own architecture.
  // Safe to call concurrently from many worker threads.
  // With an active `trace`, the request emits a "proxy <class>" span under
  // trace.parent whose stage children (connection/parse/filter/emit/sign) sum
  // exactly to the response's cpu_nanos.
  Result<ProxyResponse> HandleRequest(const std::string& class_name,
                                      const std::string& platform = "",
                                      const TraceContext& trace = {});

  // Drops all rewritten state — the LRU cache AND the filter-synthesized
  // class map — used when the service configuration (e.g. the security
  // policy) changes and classes must be re-instrumented. Synthesized classes
  // embed the old policy's hooks too, so serving them stale was a bug.
  // Bumps the cache generation *before* clearing, so an in-flight rewrite
  // that started under the old configuration refuses to publish afterward
  // (the invalidate / single-flight race — see Rewrite()).
  void InvalidateCache();

  // The canonical rewrite-cache key for (class, platform); the replication
  // layer uses it to address pushed artifacts.
  static std::string RewriteCacheKey(const std::string& class_name, const std::string& platform) {
    return class_name + "\x1f" + platform;
  }

  // Security-policy epoch this replica last applied. 0 until the cluster
  // commits its first epoch.
  uint64_t policy_epoch() const { return policy_epoch_.load(std::memory_order_relaxed); }

  // Applies a committed policy epoch: invalidates all rewritten state (the
  // new policy's hooks differ), then advances the epoch stamp. Used both on
  // the live 2PC commit path and during log replay.
  void ApplyPolicyEpoch(uint64_t epoch);

  // Replays one commit-log record into this replica: kEpoch records apply the
  // epoch (invalidate + advance), kArtifact records install the pushed bytes
  // into the rewrite cache and the synthesized-class map without running the
  // pipeline. In-order replay of a peer's log converges the replica to
  // byte-identical state.
  //
  // An artifact carrying a verification certificate is validated against it
  // in one pass (certificate.h) before installing; a certificate that does
  // not prove the pushed bytes is rejected fail-closed (no install, counted
  // in proxy.cert_rejects, audited as REPL-REJECT). Certificate-less
  // artifacts install on the pusher's authority as before. Artifacts carrying
  // pre-compiled tier-1 blobs (kAttrTieredCode) are additionally byte-diffed
  // against a local recompile of the pushed bytecode; a blob this replica
  // cannot reproduce rejects the artifact the same way (proxy.tier_blob_rejects).
  void ApplyCommitRecord(const CommitRecord& record);

  // Artifacts installed via ApplyCommitRecord (pushed or replayed), as
  // opposed to locally rewritten.
  uint64_t replicated_installs() const {
    return replicated_installs_.load(std::memory_order_relaxed);
  }

  std::vector<std::string> audit_trail() const { return audit_.Snapshot(); }
  const AuditRing& audit_ring() const { return audit_; }
  const RewriteCache& cache() const { return cache_; }
  uint64_t requests_served() const { return requests_served_.load(std::memory_order_relaxed); }
  uint64_t total_cpu_nanos() const { return total_cpu_nanos_.load(std::memory_order_relaxed); }
  const CodeSigner& signer() const { return signer_; }
  // Requests that blocked behind an identical in-flight rewrite.
  uint64_t coalesced_requests() const { return flights_.coalesced_waits(); }
  // Named counters: proxy.{connection,parse,filter,emit,sign}_nanos,
  // proxy.coalesced, proxy.rewrites, proxy.generated_hits,
  // proxy.lock_acquisitions (audit + generated + env + pipeline locks); the
  // certificate plane: proxy.cert_emits / cert_emit_checks /
  // cert_emit_failures (fixpoint side) and proxy.cert_validations /
  // cert_validate_checks / cert_rejects / cert_missing (one-pass install
  // side); the tiered-code plane: proxy.tier_blob_checks /
  // tier_blob_rejects (recompile-and-byte-diff of pushed kAttrTieredCode
  // blobs); plus the proxy.request_cpu_nanos histogram (per-request CPU,
  // p50/p99/max).
  const StatsRegistry& stats() const { return stats_; }

  // Memory in use with `inflight` concurrent requests: cache + per-request
  // workspaces. The Figure 10 degradation appears when this exceeds
  // config.memory_bytes and the host starts paging.
  size_t MemoryInUse(size_t inflight_requests) const;
  // CPU multiplier under memory pressure (1.0 when resident).
  double ThrashFactor(size_t inflight_requests) const;

 private:
  // Environment the verifier sees: library + every class this proxy parsed.
  // Reader/writer locked: filters Lookup concurrently, the rewrite path Adds.
  class SeenEnv : public ClassEnv {
   public:
    explicit SeenEnv(const ClassEnv* library) : library_(library) {}
    const ClassFile* Lookup(const std::string& class_name) const override;
    void Add(ClassFile cls);
    void SetLockCounter(StatCounter* counter) { lock_counter_ = counter; }

   private:
    const ClassEnv* library_;
    mutable std::shared_mutex mu_;
    StatCounter* lock_counter_ = nullptr;
    std::map<std::string, std::unique_ptr<ClassFile>> seen_;
  };

  // Serves a cache hit, filling the context's timing/audit state.
  std::optional<ProxyResponse> TryServeFromCache(RequestContext& ctx);
  // Serves a filter-synthesized class (e.g. a "$cold" split).
  std::optional<ProxyResponse> TryServeGenerated(RequestContext& ctx);
  // The miss path: fetch origin bytes, parse, run the stacked services, emit,
  // sign, publish synthesized classes, and populate the cache.
  Result<ProxyResponse> Rewrite(RequestContext& ctx);
  // Runs the full verifier over the final artifact (main + companions against
  // the system library) and serializes its stack-map certificate. The emitted
  // certificate is self-validated before leaving the proxy; any failure —
  // including the rare fixpoint frame a one-pass join cannot reproduce —
  // degrades to "no certificate" (empty return) rather than a bad proof.
  Bytes EmitCertificate(const Bytes& main_bytes,
                        const std::vector<std::pair<std::string, Bytes>>& extras);
  // One-pass check of a pushed artifact against its certificate.
  bool ValidatePushedArtifact(const CommitRecord& record);
  // Byte-diff check of pushed tier-1 code blobs (kAttrTieredCode): every blob
  // must equal what this replica's own BaselineCompile produces from the
  // pushed bytecode. BaselineCompile is a pure function of (code, pool), so
  // any divergence means the blob does not correspond to the class bytes.
  bool ValidateTieredBlobs(const CommitRecord& record);
  // Commits accounting (stage counters, audit ring, CPU totals) and stamps
  // the context's flags onto the response.
  ProxyResponse Commit(RequestContext& ctx, ProxyResponse response);

  ProxyConfig config_;
  SeenEnv env_;
  // The trusted library alone (no proxy-seen classes): certificates are
  // emitted and validated against artifact + library only, so every replica
  // reaches the same verdict regardless of what it happened to parse first.
  const ClassEnv* library_env_;
  ClassProvider* origin_;
  FilterPipeline pipeline_;
  RewriteCache cache_;
  CodeSigner signer_;
  AuditRing audit_;
  SingleFlightGroup flights_;

  // The stacked filters carry their own statistics (verifier counts, profile
  // instrumentation totals, ...), so pipeline execution — and the observer
  // callback fed from it — is one critical section. Hits bypass this lock.
  std::mutex rewrite_mu_;
  // Classes synthesized by filters (e.g. "$cold" splits): servable on demand
  // without going to the origin, independent of the LRU cache.
  std::mutex generated_mu_;
  std::map<std::string, Bytes> generated_;

  std::function<void(const std::string&, const Bytes&)> served_observer_;
  std::atomic<uint64_t> requests_served_{0};
  std::atomic<uint64_t> total_cpu_nanos_{0};

  // Replication / staleness state. cache_generation_ advances on every
  // invalidation; a rewrite samples it at entry and publishes only if it is
  // unchanged at install time.
  std::atomic<uint64_t> policy_epoch_{0};
  std::atomic<uint64_t> cache_generation_{0};
  std::atomic<uint64_t> replicated_installs_{0};

  StatsRegistry stats_;
  StatCounter& c_connection_nanos_;
  StatCounter& c_parse_nanos_;
  StatCounter& c_filter_nanos_;
  StatCounter& c_emit_nanos_;
  StatCounter& c_sign_nanos_;
  StatCounter& c_coalesced_;
  StatCounter& c_rewrites_;
  StatCounter& c_generated_hits_;
  StatCounter& c_lock_acquisitions_;
  StatCounter& c_stale_rewrite_skips_;
  StatCounter& c_cert_emits_;
  StatCounter& c_cert_emit_checks_;
  StatCounter& c_cert_emit_failures_;
  StatCounter& c_cert_validations_;
  StatCounter& c_cert_validate_checks_;
  StatCounter& c_cert_rejects_;
  StatCounter& c_cert_missing_;
  StatCounter& c_tier_blob_checks_;
  StatCounter& c_tier_blob_rejects_;
  Histogram& h_request_cpu_nanos_;
};

}  // namespace dvm

#endif  // SRC_PROXY_PROXY_H_
