#include "src/workloads/apps.h"

#include "src/bytecode/builder.h"
#include "src/bytecode/serializer.h"

namespace dvm {
namespace {

constexpr uint16_t kPubStatic = AccessFlags::kPublic | AccessFlags::kStatic;

std::string ModuleName(const std::string& tag, int index) {
  return "app/" + tag + "/M" + std::to_string(index);
}

ClassFile Must(Result<ClassFile> r) {
  if (!r.ok()) {
    std::abort();  // generators are driven by constants; failure is a bug
  }
  return std::move(r).value();
}

// --- kernel emitters -----------------------------------------------------------

// int step(int n): multiplicative hash loop (lexer-table flavour).
void EmitStepKernel(MethodBuilder& m, int seed) {
  Label loop = m.NewLabel(), done = m.NewLabel();
  m.PushInt(seed).StoreLocal("I", 1);           // a = seed
  m.PushInt(0).StoreLocal("I", 2);              // i = 0
  m.Bind(loop);
  m.LoadLocal("I", 2).LoadLocal("I", 0).Branch(Op::kIfIcmpge, done);
  m.LoadLocal("I", 1).PushInt(31).Emit(Op::kImul).LoadLocal("I", 2).Emit(Op::kIadd);
  m.StoreLocal("I", 1);
  m.LoadLocal("I", 1).LoadLocal("I", 1).PushInt(3).Emit(Op::kIshr).Emit(Op::kIxor);
  m.StoreLocal("I", 1);
  m.Emit(Op::kIinc, 2, 1).Branch(Op::kGoto, loop);
  m.Bind(done).LoadLocal("I", 1).Emit(Op::kIreturn);
}

// int table(int n): transition-table fill + reduction (parser-fixpoint flavour).
void EmitTableKernel(MethodBuilder& m) {
  Label fill = m.NewLabel(), fill_done = m.NewLabel();
  Label sum = m.NewLabel(), sum_done = m.NewLabel();
  m.PushInt(64).Emit(Op::kNewarray, static_cast<int>(ArrayKind::kInt)).StoreLocal("[I", 1);
  m.PushInt(0).StoreLocal("I", 2);
  m.Bind(fill);
  m.LoadLocal("I", 2).LoadLocal("I", 0).Branch(Op::kIfIcmpge, fill_done);
  m.LoadLocal("[I", 1).LoadLocal("I", 2).PushInt(63).Emit(Op::kIand);
  m.LoadLocal("[I", 1).LoadLocal("I", 2).PushInt(7).Emit(Op::kImul).PushInt(63)
      .Emit(Op::kIand).Emit(Op::kIaload);
  m.LoadLocal("I", 2).Emit(Op::kIadd).Emit(Op::kIastore);
  m.Emit(Op::kIinc, 2, 1).Branch(Op::kGoto, fill);
  m.Bind(fill_done);
  m.PushInt(0).StoreLocal("I", 3).PushInt(0).StoreLocal("I", 2);
  m.Bind(sum);
  m.LoadLocal("I", 2).PushInt(64).Branch(Op::kIfIcmpge, sum_done);
  m.LoadLocal("I", 3).LoadLocal("[I", 1).LoadLocal("I", 2).Emit(Op::kIaload)
      .Emit(Op::kIadd).StoreLocal("I", 3);
  m.Emit(Op::kIinc, 2, 1).Branch(Op::kGoto, sum);
  m.Bind(sum_done).LoadLocal("I", 3).Emit(Op::kIreturn);
}

// int objwork(int n): allocate an instance, mix field-free arithmetic with
// periodic virtual calls (real Java code averages tens of instructions per
// invocation; a call every iteration would be pathologically call-dense).
void EmitObjKernel(MethodBuilder& m, const std::string& cls) {
  Label arith = m.NewLabel(), arith_done = m.NewLabel();
  Label calls = m.NewLabel(), calls_done = m.NewLabel();
  m.New(cls).Emit(Op::kDup).InvokeSpecial(cls, "<init>", "()V");
  m.StoreLocal("L" + cls + ";", 1);
  // Arithmetic phase: n iterations on a local accumulator.
  m.PushInt(1).StoreLocal("I", 2);
  m.PushInt(0).StoreLocal("I", 3);
  m.Bind(arith);
  m.LoadLocal("I", 3).LoadLocal("I", 0).Branch(Op::kIfIcmpge, arith_done);
  m.LoadLocal("I", 2).PushInt(17).Emit(Op::kImul).LoadLocal("I", 3).Emit(Op::kIadd)
      .StoreLocal("I", 2);
  m.Emit(Op::kIinc, 3, 1).Branch(Op::kGoto, arith);
  m.Bind(arith_done);
  // Call phase: n/8 virtual calls through the accessor.
  m.LoadLocal("I", 0).PushInt(3).Emit(Op::kIshr).StoreLocal("I", 3);
  m.Bind(calls);
  m.LoadLocal("I", 3).Branch(Op::kIfle, calls_done);
  m.LoadLocal("L" + cls + ";", 1).LoadLocal("I", 3).InvokeVirtual(cls, "bump", "(I)I");
  m.Emit(Op::kPop);
  m.Emit(Op::kIinc, 3, -1).Branch(Op::kGoto, calls);
  m.Bind(calls_done);
  m.LoadLocal("L" + cls + ";", 1).LoadLocal("I", 2).PushInt(255).Emit(Op::kIand)
      .InvokeVirtual(cls, "bump", "(I)I");
  m.Emit(Op::kIreturn);
}

// long ledger(int n): 64-bit keyed-update loop (TPC-A flavour).
void EmitLedgerKernel(MethodBuilder& m) {
  Label loop = m.NewLabel(), done = m.NewLabel();
  m.PushLong(1).StoreLocal("J", 1);
  m.PushInt(0).StoreLocal("I", 2);
  m.Bind(loop);
  m.LoadLocal("I", 2).LoadLocal("I", 0).Branch(Op::kIfIcmpge, done);
  m.LoadLocal("J", 1).PushLong(6364136223846793005LL).Emit(Op::kLmul);
  m.LoadLocal("I", 2).Emit(Op::kI2l).Emit(Op::kLadd).StoreLocal("J", 1);
  m.Emit(Op::kIinc, 2, 1).Branch(Op::kGoto, loop);
  m.Bind(done).LoadLocal("J", 1).Emit(Op::kLreturn);
}

// int strwork(int n): bounded string building (codegen flavour).
void EmitStringKernel(MethodBuilder& m) {
  Label loop = m.NewLabel(), done = m.NewLabel();
  m.PushString("x").StoreLocal("Ljava/lang/String;", 1);
  m.LoadLocal("I", 0).PushInt(7).Emit(Op::kIand).PushInt(1).Emit(Op::kIadd)
      .StoreLocal("I", 2);
  m.Bind(loop);
  m.LoadLocal("I", 2).Branch(Op::kIfle, done);
  m.LoadLocal("Ljava/lang/String;", 1).PushString("ab");
  m.InvokeVirtual("java/lang/String", "concat", "(Ljava/lang/String;)Ljava/lang/String;");
  m.StoreLocal("Ljava/lang/String;", 1);
  m.Emit(Op::kIinc, 2, -1).Branch(Op::kGoto, loop);
  m.Bind(done);
  m.LoadLocal("Ljava/lang/String;", 1).InvokeVirtual("java/lang/String", "length", "()I");
  m.Emit(Op::kIreturn);
}

// Straight-line padding: realistic-looking never-invoked code that inflates
// the class to its Figure 5 wire size (the 10-30% unused fraction of mobile
// code that section 5 measures).
void EmitPadMethod(MethodBuilder& m, int instructions, int seed) {
  m.LoadLocal("I", 0).StoreLocal("I", 1);
  int emitted = 0;
  uint32_t value = static_cast<uint32_t>(seed);
  while (emitted < instructions) {
    value = value * 1103515245u + 12345u;
    m.LoadLocal("I", 1).PushInt((value >> 16) & 0x7F).Emit(Op::kIadd).StoreLocal("I", 1);
    emitted += 4;
  }
  m.LoadLocal("I", 1).Emit(Op::kIreturn);
}

ClassFile BuildModule(const AppSpec& spec, int index) {
  const std::string name = ModuleName(spec.name, index);
  ClassBuilder cb(name, "java/lang/Object");
  cb.AddField(AccessFlags::kPublic, "acc", "I");
  cb.AddField(kPubStatic, "total", "I");
  cb.AddDefaultConstructor();

  // int bump(int x) { acc += x; return acc; }
  MethodBuilder& bump = cb.AddMethod(AccessFlags::kPublic, "bump", "(I)I");
  bump.Emit(Op::kAload, 0).Emit(Op::kDup).GetField(name, "acc", "I");
  bump.Emit(Op::kIload, 1).Emit(Op::kIadd).PutField(name, "acc", "I");
  bump.Emit(Op::kAload, 0).GetField(name, "acc", "I").Emit(Op::kIreturn);

  EmitStepKernel(cb.AddMethod(kPubStatic, "step", "(I)I"), index * 2654435761 + 17);
  if (spec.use_arrays) {
    EmitTableKernel(cb.AddMethod(kPubStatic, "table", "(I)I"));
  }
  if (spec.use_objects) {
    EmitObjKernel(cb.AddMethod(kPubStatic, "objwork", "(I)I"), name);
  }
  if (spec.use_longs) {
    EmitLedgerKernel(cb.AddMethod(kPubStatic, "ledger", "(I)J"));
  }
  if (spec.use_strings) {
    EmitStringKernel(cb.AddMethod(kPubStatic, "strwork", "(I)I"));
  }

  // int run(int n): own kernels, then the next module in the chain.
  MethodBuilder& run = cb.AddMethod(kPubStatic, "run", "(I)I");
  run.LoadLocal("I", 0).InvokeStatic(name, "step", "(I)I").StoreLocal("I", 1);
  if (spec.use_arrays) {
    run.LoadLocal("I", 1).LoadLocal("I", 0).InvokeStatic(name, "table", "(I)I")
        .Emit(Op::kIadd).StoreLocal("I", 1);
  }
  if (spec.use_objects) {
    run.LoadLocal("I", 1).LoadLocal("I", 0).InvokeStatic(name, "objwork", "(I)I")
        .Emit(Op::kIadd).StoreLocal("I", 1);
  }
  if (spec.use_longs) {
    run.LoadLocal("I", 1).LoadLocal("I", 0).InvokeStatic(name, "ledger", "(I)J")
        .Emit(Op::kL2i).Emit(Op::kIadd).StoreLocal("I", 1);
  }
  if (spec.use_strings) {
    run.LoadLocal("I", 1).LoadLocal("I", 0).InvokeStatic(name, "strwork", "(I)I")
        .Emit(Op::kIadd).StoreLocal("I", 1);
  }
  if (index + 1 < spec.module_count) {
    run.LoadLocal("I", 1).LoadLocal("I", 0)
        .InvokeStatic(ModuleName(spec.name, index + 1), "run", "(I)I")
        .Emit(Op::kIadd).StoreLocal("I", 1);
  }
  run.GetStatic(name, "total", "I").LoadLocal("I", 1).Emit(Op::kIadd)
      .PutStatic(name, "total", "I");
  run.LoadLocal("I", 1).Emit(Op::kIreturn);

  for (int p = 0; p < spec.pad_methods; p++) {
    EmitPadMethod(cb.AddMethod(kPubStatic, "pad" + std::to_string(p), "(I)I"),
                  spec.pad_instructions, index * 31 + p);
  }
  return Must(cb.Build());
}

ClassFile BuildMainClass(const AppSpec& spec) {
  ClassBuilder cb("app/" + spec.name + "/Main", "java/lang/Object");
  MethodBuilder& m = cb.AddMethod(kPubStatic, "main", "()V");
  Label loop = m.NewLabel(), done = m.NewLabel();
  m.PushInt(0).StoreLocal("I", 0);  // acc
  m.PushInt(0).StoreLocal("I", 1);  // round
  m.Bind(loop);
  m.LoadLocal("I", 1).PushInt(spec.rounds).Branch(Op::kIfIcmpge, done);
  m.LoadLocal("I", 0).PushInt(spec.work)
      .InvokeStatic(ModuleName(spec.name, 0), "run", "(I)I").Emit(Op::kIxor)
      .StoreLocal("I", 0);
  m.Emit(Op::kIinc, 1, 1).Branch(Op::kGoto, loop);
  m.Bind(done);
  m.LoadLocal("I", 0).InvokeStatic("java/lang/Integer", "toString", "(I)Ljava/lang/String;");
  m.InvokeStatic("java/lang/System", "println", "(Ljava/lang/String;)V");
  m.Emit(Op::kReturn);
  return Must(cb.Build());
}

}  // namespace

uint64_t AppBundle::TotalBytes() const {
  uint64_t bytes = 0;
  for (const auto& cls : classes) {
    bytes += MustWriteClassFile(cls).size();
  }
  return bytes;
}

void AppBundle::InstallInto(MapClassProvider* provider) const {
  for (const auto& cls : classes) {
    provider->AddClassFile(cls);
  }
}

std::vector<std::string> AppBundle::ClassNames() const {
  std::vector<std::string> names;
  names.reserve(classes.size());
  for (const auto& cls : classes) {
    names.push_back(cls.name());
  }
  return names;
}

AppBundle GenerateApp(const AppSpec& spec) {
  AppBundle bundle;
  bundle.name = spec.name;
  bundle.description = spec.description;
  bundle.main_class = "app/" + spec.name + "/Main";
  bundle.classes.push_back(BuildMainClass(spec));
  for (int i = 0; i < spec.module_count; i++) {
    bundle.classes.push_back(BuildModule(spec, i));
  }
  return bundle;
}

AppBundle BuildJlexApp(int work_scale) {
  AppSpec spec;
  spec.name = "jlex";
  spec.description = "Lexical analyzer generator";
  spec.module_count = 19;  // + Main = 20 classes (Figure 5)
  spec.rounds = 2 * work_scale;
  spec.work = 1200;
  spec.pad_methods = 5;
  spec.pad_instructions = 400;
  spec.use_longs = false;
  spec.use_strings = false;
  return GenerateApp(spec);
}

AppBundle BuildJavacupApp(int work_scale) {
  AppSpec spec;
  spec.name = "javacup";
  spec.description = "LALR parser generator";
  spec.module_count = 34;  // + Main = 35
  spec.rounds = 2 * work_scale;
  spec.work = 1300;
  spec.pad_methods = 5;
  spec.pad_instructions = 310;
  spec.use_strings = true;
  return GenerateApp(spec);
}

AppBundle BuildPizzaApp(int work_scale) {
  AppSpec spec;
  spec.name = "pizza";
  spec.description = "Bytecode to native compiler";
  spec.module_count = 240;  // + Main = 241
  spec.rounds = 2 * work_scale;
  spec.work = 1100;
  spec.pad_methods = 5;
  spec.pad_instructions = 260;
  spec.use_strings = true;
  return GenerateApp(spec);
}

AppBundle BuildInstantdbApp(int work_scale) {
  AppSpec spec;
  spec.name = "instantdb";
  spec.description = "Relational database with a TPC-A like workload";
  spec.module_count = 69;  // + Main = 70
  spec.rounds = 4 * work_scale;
  spec.work = 1500;
  spec.pad_methods = 6;
  spec.pad_instructions = 330;
  spec.use_longs = true;
  return GenerateApp(spec);
}

AppBundle BuildCassowaryApp(int work_scale) {
  AppSpec spec;
  spec.name = "cassowary";
  spec.description = "Constraint satisfier";
  spec.module_count = 33;  // + Main = 34
  spec.rounds = 4 * work_scale;
  spec.work = 1400;
  spec.pad_methods = 3;
  spec.pad_instructions = 330;
  return GenerateApp(spec);
}

std::vector<AppBundle> BuildFig5Apps(int work_scale) {
  std::vector<AppBundle> apps;
  apps.push_back(BuildJlexApp(work_scale));
  apps.push_back(BuildJavacupApp(work_scale));
  apps.push_back(BuildPizzaApp(work_scale));
  apps.push_back(BuildInstantdbApp(work_scale));
  apps.push_back(BuildCassowaryApp(work_scale));
  return apps;
}

}  // namespace dvm
