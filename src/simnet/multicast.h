// Control-plane mesh for proxy replication. The paper answers the "proxy is a
// single point of failure" concern with a replicated service (§2); PR 2 gave
// the replicas failover routing, and this layer gives them a way to *talk to
// each other*: a full N×N mesh of point-to-point SimLinks over which one
// replica multicasts prepare / vote / commit messages to its peers.
//
// Fault integration is deliberately layered:
//   1. ReplicaUp / LinkUp (pure, no stream draw) — a replica inside its
//      scheduled outage window is off the mesh entirely (cannot send or
//      receive), and scheduled partitions cut a link for a window of virtual
//      time; neither shifts any RNG stream, so a test can partition exactly
//      one control link and every other link's drop/delay trace stays
//      byte-identical.
//   2. ShouldDrop / ExtraDelay (seeded per-link streams) — probabilistic loss
//      and jitter, recorded in the injector's trace fingerprint.
// Messages on a link serialize FIFO through the underlying SimLink, so a
// prepare burst to a slow peer queues exactly like data traffic would.
#ifndef SRC_SIMNET_MULTICAST_H_
#define SRC_SIMNET_MULTICAST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/simnet/fault.h"
#include "src/simnet/sim.h"

namespace dvm {

struct ControlPlaneConfig {
  // Replica-to-replica links: same class as the paper's 100 Mb/s uplinks, with
  // a LAN-scale 200 µs one-way latency.
  double bytes_per_second = 100e6 / 8.0;
  SimTime latency = 200'000;
  // How long a 2PC coordinator waits for votes before declaring a live peer
  // unresponsive and aborting the round.
  SimTime vote_timeout = 50 * kMillisecond;
};

// Outcome of offering one message to the mesh.
struct ControlDelivery {
  bool delivered = false;
  // Receiver-side completion time when delivered; meaningless otherwise.
  SimTime at = 0;
};

class ControlPlane {
 public:
  explicit ControlPlane(size_t replicas, ControlPlaneConfig config = {});

  // Canonical name of the directed link from→to ("ctrl-0-2"). FaultPlans
  // address control links by this name (drop probability, delay, partitions).
  static std::string LinkName(size_t from, size_t to);

  // Optional; without an injector every send is delivered (no partitions, no
  // loss). Not owned.
  void SetFaultInjector(FaultInjector* faults) { faults_ = faults; }

  // Offers `bytes` on the from→to link at `now`. Partition windows are
  // checked first (pure) so a partitioned link consumes no stream draws; a
  // live link then draws its drop decision and, when delivered, its extra
  // delay, and the message serializes through the link FIFO.
  ControlDelivery Send(size_t from, size_t to, uint64_t bytes, SimTime now);

  size_t replicas() const { return replicas_; }
  const ControlPlaneConfig& config() const { return config_; }
  uint64_t messages() const { return messages_; }
  uint64_t dropped() const { return dropped_; }
  uint64_t bytes_carried() const { return bytes_carried_; }

 private:
  SimLink& Link(size_t from, size_t to) { return links_[from * replicas_ + to]; }

  size_t replicas_;
  ControlPlaneConfig config_;
  FaultInjector* faults_ = nullptr;
  std::vector<SimLink> links_;  // row-major [from][to]
  std::vector<std::string> link_names_;
  uint64_t messages_ = 0;
  uint64_t dropped_ = 0;
  uint64_t bytes_carried_ = 0;
};

}  // namespace dvm

#endif  // SRC_SIMNET_MULTICAST_H_
