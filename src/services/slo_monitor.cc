#include "src/services/slo_monitor.h"

#include <cinttypes>
#include <cstdio>

namespace dvm {

SloRule P99CeilingRule(std::string name, std::string histogram, uint64_t ceiling_nanos,
                       uint64_t min_events) {
  SloRule rule;
  rule.name = std::move(name);
  rule.kind = SloRule::Kind::kP99Ceiling;
  rule.metric = std::move(histogram);
  rule.threshold = ceiling_nanos;
  rule.min_events = min_events;
  return rule;
}

SloRule MinSuccessRule(std::string name, std::string success_counter,
                       std::string total_counter, uint64_t min_ppm, uint64_t min_events) {
  SloRule rule;
  rule.name = std::move(name);
  rule.kind = SloRule::Kind::kMinRatioPpm;
  rule.metric = std::move(success_counter);
  rule.reference = std::move(total_counter);
  rule.threshold = min_ppm;
  rule.min_events = min_events;
  return rule;
}

SloRule MaxRateRule(std::string name, std::string event_counter, std::string total_counter,
                    uint64_t max_ppm, uint64_t min_events) {
  SloRule rule;
  rule.name = std::move(name);
  rule.kind = SloRule::Kind::kMaxRatioPpm;
  rule.metric = std::move(event_counter);
  rule.reference = std::move(total_counter);
  rule.threshold = max_ppm;
  rule.min_events = min_events;
  return rule;
}

SloRule MaxGapRule(std::string name, std::string behind_counter, std::string ahead_counter,
                   uint64_t max_gap) {
  SloRule rule;
  rule.name = std::move(name);
  rule.kind = SloRule::Kind::kMaxGap;
  rule.metric = std::move(behind_counter);
  rule.reference = std::move(ahead_counter);
  rule.threshold = max_gap;
  return rule;
}

void SloMonitor::AddRule(SloRule rule) {
  RuleState state;
  state.rule = std::move(rule);
  rules_.push_back(std::move(state));
}

void SloMonitor::SetState(RuleState& state, bool firing, uint64_t observed, uint64_t now) {
  if (firing == state.firing) {
    return;
  }
  state.firing = firing;
  SloTransition transition;
  transition.rule = state.rule.name;
  transition.at = now;
  transition.firing = firing;
  transition.observed = observed;
  transition.threshold = state.rule.threshold;
  transitions_.push_back(transition);
  if (console_ != nullptr) {
    AuditEvent event;
    event.kind = firing ? "slo-alert" : "slo-clear";
    char buf[96];
    std::snprintf(buf, sizeof(buf), " observed=%" PRIu64 " threshold=%" PRIu64
                  " at=%" PRIu64, observed, state.rule.threshold, now);
    event.detail = source_ + " " + state.rule.name + buf;
    console_->Append(std::move(event));
  }
}

void SloMonitor::Evaluate(const StatsSnapshot& snapshot, uint64_t virtual_now) {
  evaluations_++;
  StatsSnapshot window;
  if (has_previous_) {
    window = snapshot.Delta(previous_);
  }
  for (RuleState& state : rules_) {
    const SloRule& rule = state.rule;
    switch (rule.kind) {
      case SloRule::Kind::kP99Ceiling: {
        if (!has_previous_) {
          break;
        }
        Histogram::Snapshot h = window.HistogramFor(rule.metric);
        if (h.count < rule.min_events) {
          break;  // too little traffic in the window to judge
        }
        uint64_t p99 = static_cast<uint64_t>(h.Percentile(99.0));
        SetState(state, p99 > rule.threshold, p99, virtual_now);
        break;
      }
      case SloRule::Kind::kMinRatioPpm:
      case SloRule::Kind::kMaxRatioPpm: {
        if (!has_previous_) {
          break;
        }
        uint64_t denom = window.CounterValue(rule.reference);
        if (denom < rule.min_events) {
          break;
        }
        uint64_t ppm = window.CounterValue(rule.metric) * 1'000'000 / denom;
        bool firing = rule.kind == SloRule::Kind::kMinRatioPpm ? ppm < rule.threshold
                                                               : ppm > rule.threshold;
        SetState(state, firing, ppm, virtual_now);
        break;
      }
      case SloRule::Kind::kMaxGap: {
        // Cumulative, not windowed: staleness is an instantaneous property.
        uint64_t behind = snapshot.CounterValue(rule.metric);
        uint64_t ahead = snapshot.CounterValue(rule.reference);
        uint64_t gap = ahead > behind ? ahead - behind : 0;
        SetState(state, gap > rule.threshold, gap, virtual_now);
        break;
      }
    }
  }
  previous_ = snapshot;
  has_previous_ = true;
}

bool SloMonitor::firing(const std::string& rule) const {
  for (const RuleState& state : rules_) {
    if (state.rule.name == rule) {
      return state.firing;
    }
  }
  return false;
}

size_t SloMonitor::firing_count() const {
  size_t n = 0;
  for (const RuleState& state : rules_) {
    n += state.firing ? 1 : 0;
  }
  return n;
}

std::string SloMonitor::TransitionLog() const {
  std::string out;
  char buf[64];
  for (const SloTransition& t : transitions_) {
    std::snprintf(buf, sizeof(buf), "%" PRIu64 " ", t.at);
    out += buf;
    out += t.firing ? "ALERT " : "CLEAR ";
    out += t.rule;
    std::snprintf(buf, sizeof(buf), " observed=%" PRIu64 " threshold=%" PRIu64 "\n",
                  t.observed, t.threshold);
    out += buf;
  }
  return out;
}

}  // namespace dvm
