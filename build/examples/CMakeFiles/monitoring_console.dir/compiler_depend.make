# Empty compiler generated dependencies file for monitoring_console.
# This may be replaced when dependencies are built.
