#include "src/simnet/sim.h"

#include <algorithm>
#include <cassert>

namespace dvm {

void EventQueue::Schedule(SimTime when, Callback callback) {
  assert(when >= now_);
  events_.push_back(Event{when, next_sequence_++, std::move(callback)});
  std::push_heap(events_.begin(), events_.end(), std::greater<>{});
}

bool EventQueue::RunNext() {
  if (events_.empty()) {
    return false;
  }
  std::pop_heap(events_.begin(), events_.end(), std::greater<>{});
  Event event = std::move(events_.back());
  events_.pop_back();
  now_ = event.when;
  event.callback();
  return true;
}

void EventQueue::RunUntilEmpty() {
  while (RunNext()) {
  }
}

SimTime SimLink::Deliver(SimTime start, uint64_t bytes) {
  return Deliver(start, bytes, TraceContext{});
}

SimTime SimLink::Deliver(SimTime start, uint64_t bytes, const TraceContext& trace) {
  SimTime begin = std::max(start, busy_until_);
  SimTime transmission = TransmissionTime(bytes);
  SimTime done = begin + transmission;
  SimTime arrival = done + latency_;
  if (trace.active()) {
    SpanId deliver = trace.tracer->Begin("link.deliver", trace.parent, start, "link");
    trace.tracer->Annotate(deliver, "bytes", std::to_string(bytes));
    if (begin > start) {
      trace.tracer->Emit("queue", deliver, start, begin, "link");
    }
    trace.tracer->Emit("transmit", deliver, begin, done, "link");
    if (latency_ > 0) {
      trace.tracer->Emit("propagate", deliver, done, arrival, "link");
    }
    trace.tracer->End(deliver, arrival);
  }
  busy_until_ = done;
  bytes_carried_ += bytes;
  return arrival;
}

SimTime CpuServer::Execute(SimTime ready, SimTime cpu) {
  SimTime begin = std::max(ready, busy_until_);
  busy_until_ = begin + cpu;
  busy_time_ += cpu;
  jobs_++;
  return busy_until_;
}

SimLink MakeEthernet10Mb() {
  // 10 Mb/s shared Ethernet, sub-millisecond LAN latency.
  return SimLink::FromBitsPerSecond(10e6, 500'000);
}

SimLink MakeModem(double kilobits_per_s) {
  // Wireless / dial-up links of section 5: high latency, low bandwidth.
  return SimLink::FromBitsPerSecond(kilobits_per_s * 1000.0, 100 * kMillisecond);
}

}  // namespace dvm
