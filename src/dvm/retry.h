// Shared client retry policy: capped exponential backoff and the timeout
// avoid-list TTL. Extracted from RedirectingClient so the pooled million-
// client simulation (ClientPool) runs the *same* policy the full-VM client
// runs — the flash-crowd numbers measure the production backoff behavior,
// not a bench-only approximation.
#ifndef SRC_DVM_RETRY_H_
#define SRC_DVM_RETRY_H_

#include <algorithm>

#include "src/simnet/sim.h"

namespace dvm {

// How long a request timeout keeps a replica out of a client's rotation.
//
// Avoid-list policy (one documented behavior for every rejection kind):
//   * Timeout / dead replica — avoid for kReplicaAvoidTtl. The client has no
//     information beyond "it didn't answer"; a long quarantine is the only
//     safe read.
//   * kOverloaded shed — avoid until now + the rejection's retry-after hint.
//     The server published its own drain estimate, so the quarantine is
//     exactly the overload horizon: the retry lands on a different replica's
//     controller while this one drains, and the replica re-enters rotation
//     the moment its hint expires.
//   * Stale epoch (replication fail-closed) — avoid for kReplicaAvoidTtl;
//     the replica stays refused until an operator-driven Rejoin anyway.
inline constexpr SimTime kReplicaAvoidTtl = 2 * kSecond;

// Capped exponential backoff progression.
inline SimTime NextBackoff(SimTime current, SimTime cap) {
  return std::min<SimTime>(current * 2, cap);
}

// Backoff actually waited for this attempt: the exponential schedule, raised
// to the server's retry-after hint when the rejection carried one (admission
// control's drain estimate beats blind exponential growth), then capped at
// the per-attempt request deadline — a hint, however large, may steer the
// client away from a replica (via the avoid list) but must never make the
// next attempt unschedulable within its own deadline budget.
inline SimTime EffectiveBackoff(SimTime backoff, SimTime retry_after,
                                SimTime deadline_cap = kSimTimeForever) {
  return std::min(std::max(backoff, retry_after), deadline_cap);
}

}  // namespace dvm

#endif  // SRC_DVM_RETRY_H_
