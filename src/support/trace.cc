#include "src/support/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace dvm {

SpanId Tracer::Begin(std::string name, SpanId parent, uint64_t start_nanos,
                     std::string category, uint64_t track) {
  std::lock_guard<std::mutex> lock(mu_);
  Span span;
  span.id = next_id_++;
  span.parent = parent;
  span.name = std::move(name);
  span.category = std::move(category);
  span.start_nanos = start_nanos;
  if (track != 0) {
    span.track = track;
  } else if (parent != 0) {
    auto it = open_.find(parent);
    span.track = it != open_.end() ? it->second.track : 1;
  }
  SpanId id = span.id;
  open_.emplace(id, std::move(span));
  return id;
}

void Tracer::Annotate(SpanId id, std::string key, std::string value) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = open_.find(id);
  if (it != open_.end()) {
    it->second.annotations.emplace_back(std::move(key), std::move(value));
  }
}

void Tracer::End(SpanId id, uint64_t end_nanos) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = open_.find(id);
  if (it == open_.end()) {
    return;
  }
  it->second.end_nanos = end_nanos;
  finished_.push_back(std::move(it->second));
  open_.erase(it);
}

SpanId Tracer::Emit(std::string name, SpanId parent, uint64_t start_nanos, uint64_t end_nanos,
                    std::string category, uint64_t track) {
  SpanId id = Begin(std::move(name), parent, start_nanos, std::move(category), track);
  End(id, end_nanos);
  return id;
}

std::vector<Span> Tracer::Finished() const {
  std::vector<Span> spans;
  {
    std::lock_guard<std::mutex> lock(mu_);
    spans = finished_;
  }
  std::sort(spans.begin(), spans.end(), [](const Span& a, const Span& b) {
    return a.start_nanos != b.start_nanos ? a.start_nanos < b.start_nanos : a.id < b.id;
  });
  return spans;
}

size_t Tracer::finished_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return finished_.size();
}

size_t Tracer::open_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return open_.size();
}

void Tracer::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  next_id_ = 1;
  open_.clear();
  finished_.clear();
}

namespace {

void AppendJsonEscaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

// Microseconds with fixed 3-digit nanosecond remainder: integer math only, so
// output bytes never depend on floating-point formatting.
std::string FmtMicros(uint64_t nanos) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03" PRIu64, nanos / 1000, nanos % 1000);
  return buf;
}

std::string LabelBlock(const std::vector<std::pair<std::string, std::string>>& labels,
                       const std::string& le = "") {
  if (labels.empty() && le.empty()) {
    return "";
  }
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) {
      out += ",";
    }
    out += key + "=\"" + value + "\"";
    first = false;
  }
  if (!le.empty()) {
    if (!first) {
      out += ",";
    }
    out += "le=\"" + le + "\"";
  }
  out += "}";
  return out;
}

std::string MetricName(const std::string& name) {
  std::string out = "dvm_";
  for (char c : name) {
    out += (c == '.' || c == '-' || c == ' ') ? '_' : c;
  }
  return out;
}

}  // namespace

std::string ChromeTraceJson(const std::vector<Span>& spans,
                            const std::vector<std::pair<std::string, std::string>>& metadata) {
  std::string out;
  out.reserve(spans.size() * 160 + 256);
  out += "{\n\"displayTimeUnit\": \"ns\",\n\"otherData\": {";
  for (size_t i = 0; i < metadata.size(); i++) {
    if (i > 0) {
      out += ", ";
    }
    out += "\"";
    AppendJsonEscaped(out, metadata[i].first);
    out += "\": \"";
    AppendJsonEscaped(out, metadata[i].second);
    out += "\"";
  }
  out += "},\n\"traceEvents\": [\n";
  char buf[96];
  for (size_t i = 0; i < spans.size(); i++) {
    const Span& span = spans[i];
    out += "{\"name\":\"";
    AppendJsonEscaped(out, span.name);
    out += "\",\"cat\":\"";
    AppendJsonEscaped(out, span.category.empty() ? "span" : span.category);
    out += "\",\"ph\":\"X\",\"ts\":";
    out += FmtMicros(span.start_nanos);
    out += ",\"dur\":";
    out += FmtMicros(span.duration_nanos());
    std::snprintf(buf, sizeof(buf), ",\"pid\":1,\"tid\":%" PRIu64 ",\"args\":{", span.track);
    out += buf;
    std::snprintf(buf, sizeof(buf), "\"span\":\"%" PRIu64 "\",\"parent\":\"%" PRIu64 "\"",
                  span.id, span.parent);
    out += buf;
    for (const auto& [key, value] : span.annotations) {
      out += ",\"";
      AppendJsonEscaped(out, key);
      out += "\":\"";
      AppendJsonEscaped(out, value);
      out += "\"";
    }
    out += "}}";
    if (i + 1 < spans.size()) {
      out += ",";
    }
    out += "\n";
  }
  out += "]\n}\n";
  return out;
}

std::string PrometheusText(const StatsRegistry& stats,
                           const std::vector<std::pair<std::string, std::string>>& labels) {
  return PrometheusText(stats.FullSnapshot(), labels);
}

std::string PrometheusText(const StatsSnapshot& snapshot,
                           const std::vector<std::pair<std::string, std::string>>& labels) {
  std::string out;
  char buf[64];
  for (const auto& [name, value] : snapshot.counters) {
    std::string metric = MetricName(name);
    out += "# TYPE " + metric + " counter\n";
    std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", value);
    out += metric + LabelBlock(labels) + buf;
  }
  for (const auto& [name, snap] : snapshot.histograms) {
    std::string metric = MetricName(name);
    out += "# TYPE " + metric + " histogram\n";
    uint64_t cumulative = 0;
    size_t last = snap.count == 0 ? 0 : Histogram::BucketFor(snap.max) + 1;
    for (size_t i = 0; i < last; i++) {
      cumulative += snap.counts[i];
      std::snprintf(buf, sizeof(buf), "%" PRIu64, Histogram::BucketBound(i));
      std::string le = buf;
      std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", cumulative);
      out += metric + "_bucket" + LabelBlock(labels, le) + buf;
    }
    std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", snap.count);
    out += metric + "_bucket" + LabelBlock(labels, "+Inf") + buf;
    std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", snap.sum);
    out += metric + "_sum" + LabelBlock(labels) + buf;
    std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", snap.count);
    out += metric + "_count" + LabelBlock(labels) + buf;
  }
  return out;
}

void BoundedSpanRing::Push(Span span) {
  std::lock_guard<std::mutex> lock(mu_);
  ingested_.fetch_add(1, std::memory_order_relaxed);
  if (capacity_ == 0) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (ring_.size() == capacity_) {
    ring_.pop_front();
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  ring_.push_back(std::move(span));
}

std::vector<Span> BoundedSpanRing::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<Span>(ring_.begin(), ring_.end());
}

size_t BoundedSpanRing::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

}  // namespace dvm
