# Empty compiler generated dependencies file for dvmdump.
# This may be replaced when dependencies are built.
