#include "fuzz/mutator.h"

#include "src/bytecode/builder.h"
#include "src/bytecode/serializer.h"
#include "src/runtime/syslib.h"
#include "src/verifier/certificate.h"

namespace dvm {
namespace fuzz {
namespace {

constexpr CpTag kAllTags[] = {CpTag::kUtf8,   CpTag::kInteger,  CpTag::kLong,
                              CpTag::kClass,  CpTag::kString,   CpTag::kFieldRef,
                              CpTag::kMethodRef};

// Indices of methods that carry code, or empty.
std::vector<size_t> CodeMethods(const ClassFile& cls) {
  std::vector<size_t> out;
  for (size_t i = 0; i < cls.methods.size(); i++) {
    if (cls.methods[i].code.has_value()) {
      out.push_back(i);
    }
  }
  return out;
}

// Constant-pool splice: redirect a cross-reference or swap an entry's tag so
// downstream consumers see a well-formed pool whose edges are wrong.
void SplicePool(ClassFile& cls, Rng& rng) {
  ConstantPool& pool = cls.pool();
  if (pool.size() < 2) {
    return;
  }
  uint16_t index = static_cast<uint16_t>(1 + rng.Below(static_cast<uint32_t>(pool.size() - 1)));
  CpEntry& e = pool.mutable_entry(index);
  switch (rng.Below(3)) {
    case 0:
      e.tag = kAllTags[rng.Below(7)];
      break;
    case 1:
      e.ref1 = static_cast<uint16_t>(rng.Next());
      break;
    default:
      e.ref2 = static_cast<uint16_t>(rng.Next());
      e.ref3 = static_cast<uint16_t>(rng.Next());
      break;
  }
}

// Opcode / operand byte flips inside a method body.
void FlipCode(ClassFile& cls, Rng& rng) {
  auto methods = CodeMethods(cls);
  if (methods.empty()) {
    return;
  }
  CodeAttr& code = *cls.methods[methods[rng.Below(static_cast<uint32_t>(methods.size()))]].code;
  if (code.code.empty()) {
    return;
  }
  uint32_t flips = 1 + rng.Below(4);
  for (uint32_t i = 0; i < flips; i++) {
    size_t pos = rng.Below(static_cast<uint32_t>(code.code.size()));
    if (rng.Coin()) {
      code.code[pos] ^= static_cast<uint8_t>(1u << rng.Below(8));
    } else {
      code.code[pos] = static_cast<uint8_t>(rng.Next());
    }
  }
}

// Exception-handler perturbation: inverted ranges, mid-instruction pcs,
// dangling catch types — the inputs the phase-2 handler checks exist for.
void PerturbHandlers(ClassFile& cls, Rng& rng) {
  auto methods = CodeMethods(cls);
  if (methods.empty()) {
    return;
  }
  CodeAttr& code = *cls.methods[methods[rng.Below(static_cast<uint32_t>(methods.size()))]].code;
  if (code.handlers.empty() || rng.Below(4) == 0) {
    ExceptionHandler h;
    h.start_pc = static_cast<uint16_t>(rng.Next());
    h.end_pc = static_cast<uint16_t>(rng.Next());
    h.handler_pc = static_cast<uint16_t>(rng.Next());
    h.catch_type = rng.Coin() ? 0 : static_cast<uint16_t>(rng.Next());
    code.handlers.push_back(h);
    return;
  }
  ExceptionHandler& h = code.handlers[rng.Below(static_cast<uint32_t>(code.handlers.size()))];
  switch (rng.Below(4)) {
    case 0:
      std::swap(h.start_pc, h.end_pc);  // inverted range
      break;
    case 1:
      h.handler_pc = static_cast<uint16_t>(h.handler_pc + 1);  // mid-instruction
      break;
    case 2:
      h.end_pc = static_cast<uint16_t>(rng.Next());  // overlap / escape the body
      break;
    default:
      h.catch_type = static_cast<uint16_t>(rng.Next());
      break;
  }
}

// Declared-budget perturbation: max_stack/max_locals lies and flag flips.
void PerturbCounts(ClassFile& cls, Rng& rng) {
  auto methods = CodeMethods(cls);
  if (methods.empty()) {
    cls.access_flags = static_cast<uint16_t>(rng.Next());
    return;
  }
  MethodInfo& m = cls.methods[methods[rng.Below(static_cast<uint32_t>(methods.size()))]];
  switch (rng.Below(4)) {
    case 0:
      m.code->max_stack = static_cast<uint16_t>(rng.Below(4));
      break;
    case 1:
      m.code->max_locals = static_cast<uint16_t>(rng.Below(4));
      break;
    case 2:
      m.access_flags = static_cast<uint16_t>(rng.Next());
      break;
    default:
      cls.this_class = static_cast<uint16_t>(rng.Next());
      break;
  }
}

// Table surgery: drop or duplicate members.
void PerturbTables(ClassFile& cls, Rng& rng) {
  if (!cls.methods.empty() && rng.Coin()) {
    size_t index = rng.Below(static_cast<uint32_t>(cls.methods.size()));
    if (rng.Coin()) {
      cls.methods.push_back(cls.methods[index]);  // duplicate id
    } else {
      cls.methods.erase(cls.methods.begin() + static_cast<long>(index));
    }
    return;
  }
  if (!cls.fields.empty()) {
    cls.fields.push_back(cls.fields[rng.Below(static_cast<uint32_t>(cls.fields.size()))]);
  } else {
    cls.interfaces.push_back(static_cast<uint16_t>(rng.Next()));
  }
}

Bytes MutateRaw(const Bytes& data, Rng& rng) {
  Bytes out = data;
  if (out.empty()) {
    out.push_back(static_cast<uint8_t>(rng.Next()));
    return out;
  }
  switch (rng.Below(5)) {
    case 0: {  // bit flip
      size_t pos = rng.Below(static_cast<uint32_t>(out.size()));
      out[pos] ^= static_cast<uint8_t>(1u << rng.Below(8));
      break;
    }
    case 1: {  // random byte
      out[rng.Below(static_cast<uint32_t>(out.size()))] = static_cast<uint8_t>(rng.Next());
      break;
    }
    case 2: {  // truncate: parser must fail closed at every prefix
      out.resize(1 + rng.Below(static_cast<uint32_t>(out.size())));
      break;
    }
    case 3: {  // u16 length-field tweak
      if (out.size() >= 2) {
        size_t pos = rng.Below(static_cast<uint32_t>(out.size() - 1));
        uint16_t v = static_cast<uint16_t>(rng.Next());
        out[pos] = static_cast<uint8_t>(v >> 8);
        out[pos + 1] = static_cast<uint8_t>(v);
      }
      break;
    }
    default: {  // splice one region over another
      size_t len = 1 + rng.Below(static_cast<uint32_t>(std::min<size_t>(out.size(), 16)));
      size_t src = rng.Below(static_cast<uint32_t>(out.size() - len + 1));
      size_t dst = rng.Below(static_cast<uint32_t>(out.size() - len + 1));
      std::copy(out.begin() + static_cast<long>(src),
                out.begin() + static_cast<long>(src + len),
                out.begin() + static_cast<long>(dst));
      break;
    }
  }
  return out;
}

}  // namespace

Bytes MutateClassBytes(const Bytes& data, Rng& rng) {
  // A quarter of the time mutate raw bytes even when the seed parses, so the
  // parser-level error paths stay covered alongside the semantic ones.
  if (rng.Below(4) != 0) {
    auto parsed = ReadClassFile(data);
    if (parsed.ok()) {
      ClassFile cls = std::move(parsed).value();
      switch (rng.Below(5)) {
        case 0:
          SplicePool(cls, rng);
          break;
        case 1:
          FlipCode(cls, rng);
          break;
        case 2:
          PerturbHandlers(cls, rng);
          break;
        case 3:
          PerturbCounts(cls, rng);
          break;
        default:
          PerturbTables(cls, rng);
          break;
      }
      auto wire = WriteClassFile(cls);
      if (wire.ok()) {
        return std::move(wire).value();
      }
      // Mutation pushed a table past its width — fall through to raw bytes.
    }
  }
  return MutateRaw(data, rng);
}

namespace {

// Picks a method certificate that actually has assertions, or nullptr.
MethodCertificate* AssertedMethod(ClassCertificate& cert, Rng& rng) {
  std::vector<MethodCertificate*> candidates;
  for (MethodCertificate& m : cert.methods) {
    if (!m.assertions.empty()) {
      candidates.push_back(&m);
    }
  }
  if (candidates.empty()) {
    return nullptr;
  }
  return candidates[rng.Below(static_cast<uint32_t>(candidates.size()))];
}

// Tampers with one frame slot. Widening to Top looks sound (every edge frame
// still fits) — only the validator's exact-join check can reject it, which is
// exactly what this mutation probes.
void PerturbSlot(VType& slot, Rng& rng) {
  switch (rng.Below(4)) {
    case 0:
      slot = VType::Top();
      break;
    case 1:
      slot = slot.kind == VType::Kind::kInt ? VType::Long() : VType::Int();
      break;
    case 2:
      slot = VType::Ref(slot.kind == VType::Kind::kRef ? slot.name + "X" : "java/lang/Object");
      break;
    default:
      slot = VType::Null();
      break;
  }
}

}  // namespace

Bytes MutateCertificateBytes(const Bytes& cert, Rng& rng) {
  if (rng.Below(4) != 0) {
    auto parsed = ParseCertificate(cert);
    if (parsed.ok()) {
      ClassCertificate c = std::move(parsed).value();
      MethodCertificate* m = AssertedMethod(c, rng);
      switch (rng.Below(8)) {
        case 0:
          c.class_name += "X";
          break;
        case 1:  // shift an assertion to a neighboring pc
          if (m != nullptr) {
            FrameAssertion& a = m->assertions[rng.Below(static_cast<uint32_t>(m->assertions.size()))];
            a.index = rng.Coin() ? a.index + 1 : (a.index > 0 ? a.index - 1 : a.index + 2);
          }
          break;
        case 2:  // tamper a locals slot
          if (m != nullptr) {
            Frame& f = m->assertions[rng.Below(static_cast<uint32_t>(m->assertions.size()))].frame;
            if (!f.locals.empty()) {
              PerturbSlot(f.locals[rng.Below(static_cast<uint32_t>(f.locals.size()))], rng);
            }
          }
          break;
        case 3:  // tamper a stack slot, or fake a deeper stack
          if (m != nullptr) {
            Frame& f = m->assertions[rng.Below(static_cast<uint32_t>(m->assertions.size()))].frame;
            if (!f.stack.empty() && rng.Coin()) {
              PerturbSlot(f.stack[rng.Below(static_cast<uint32_t>(f.stack.size()))], rng);
            } else {
              f.stack.push_back(VType::Int());
            }
          }
          break;
        case 4:  // drop an assertion (an edge then lands on a bare pc)
          if (m != nullptr) {
            m->assertions.erase(m->assertions.begin() +
                                rng.Below(static_cast<uint32_t>(m->assertions.size())));
          }
          break;
        case 5:  // invent an assertion at an unasserted pc
          if (m != nullptr) {
            FrameAssertion extra = m->assertions.back();
            extra.index += 1 + rng.Below(3);
            m->assertions.push_back(std::move(extra));
          }
          break;
        case 6:  // drop or duplicate a link-time assumption
          if (!c.assumptions.empty()) {
            size_t index = rng.Below(static_cast<uint32_t>(c.assumptions.size()));
            if (rng.Coin()) {
              c.assumptions.erase(c.assumptions.begin() + static_cast<long>(index));
            } else {
              c.assumptions.push_back(c.assumptions[index]);
            }
          }
          break;
        default:  // retarget an assumption (phase-4 would check the wrong class)
          if (!c.assumptions.empty()) {
            c.assumptions[rng.Below(static_cast<uint32_t>(c.assumptions.size()))].target_class += "X";
          }
          break;
      }
      return SerializeCertificate(c);
    }
  }
  return MutateRaw(cert, rng);
}

std::vector<Bytes> BuiltinSeeds() {
  std::vector<Bytes> seeds;
  for (const ClassFile& cls : BuildSystemLibrary()) {
    seeds.push_back(MustWriteClassFile(cls));
  }

  // One application-shaped class: fields, a loop, arrays, a handler.
  ClassBuilder cb("fuzz/Seed", "java/lang/Object");
  cb.AddField(AccessFlags::kStatic, "total", "I");
  cb.AddDefaultConstructor();
  MethodBuilder& m = cb.AddMethod(AccessFlags::kPublic | AccessFlags::kStatic, "run", "()I");
  Label loop = m.NewLabel();
  Label done = m.NewLabel();
  m.PushInt(10).StoreLocal("I", 0);
  m.Bind(loop);
  m.LoadLocal("I", 0).Branch(Op::kIfeq, done);
  m.LoadLocal("I", 0).GetStatic("fuzz/Seed", "total", "I").Emit(Op::kIadd);
  m.PutStatic("fuzz/Seed", "total", "I");
  m.Emit(Op::kIinc, 0, -1).Branch(Op::kGoto, loop);
  m.Bind(done);
  m.PushInt(4).Emit(Op::kNewarray, static_cast<int>(ArrayKind::kInt));
  m.Emit(Op::kArraylength).Emit(Op::kIreturn);
  if (m.Done().ok()) {
    auto built = cb.Build();
    if (built.ok()) {
      seeds.push_back(MustWriteClassFile(built.value()));
    }
  }
  return seeds;
}

}  // namespace fuzz
}  // namespace dvm
