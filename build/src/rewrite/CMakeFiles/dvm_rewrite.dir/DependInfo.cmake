
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rewrite/filter.cc" "src/rewrite/CMakeFiles/dvm_rewrite.dir/filter.cc.o" "gcc" "src/rewrite/CMakeFiles/dvm_rewrite.dir/filter.cc.o.d"
  "/root/repo/src/rewrite/method_editor.cc" "src/rewrite/CMakeFiles/dvm_rewrite.dir/method_editor.cc.o" "gcc" "src/rewrite/CMakeFiles/dvm_rewrite.dir/method_editor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bytecode/CMakeFiles/dvm_bytecode.dir/DependInfo.cmake"
  "/root/repo/build/src/verifier/CMakeFiles/dvm_verifier.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dvm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
