// Open-loop arrival processes for population-scale load generation.
//
// The closed-loop benches (one client, fetch after fetch) measure latency
// under zero contention; a service tier's failure mode only appears under
// open-loop load, where arrivals do not slow down because the server did.
// ArrivalGenerator produces deterministic, heavy-tailed arrival times: base
// traffic is exponential inter-arrival (Poisson) with a lognormal
// multiplicative jitter — calibrated against the same lognormal family the
// paper measured for applet fetch latency (section 4.1.2) — and a flash-crowd
// window multiplies the rate while one applet goes viral.
#ifndef SRC_WORKLOADS_ARRIVALS_H_
#define SRC_WORKLOADS_ARRIVALS_H_

#include <cstdint>

#include "src/simnet/sim.h"
#include "src/support/rng.h"

namespace dvm {

struct ArrivalConfig {
  uint64_t seed = 1;
  // Sustained background arrival rate.
  double base_per_second = 1000.0;
  // Flash crowd: during [surge_at, surge_at + surge_duration) the rate is
  // multiplied by surge_factor, decaying linearly back to 1x over the window.
  SimTime surge_at = kSimTimeForever;
  SimTime surge_duration = 0;
  double surge_factor = 1.0;
  // Heavy tail: fraction of gaps stretched by a lognormal factor (mean 1,
  // stddev `tail_sigma`), so bursts cluster the way real populations do.
  double tail_fraction = 0.1;
  double tail_sigma = 3.0;
};

class ArrivalGenerator {
 public:
  explicit ArrivalGenerator(ArrivalConfig config) : config_(config), rng_(config.seed) {}

  // Arrival time of the next client, strictly after the previous one.
  // Deterministic for a given config/seed and call count.
  SimTime Next();

  double RateAt(SimTime now) const;

 private:
  ArrivalConfig config_;
  Rng rng_;
  SimTime last_ = 0;
};

}  // namespace dvm

#endif  // SRC_WORKLOADS_ARRIVALS_H_
