// Tier-1 baseline compiler (DESIGN.md §16): compiles hot methods from decoded
// bytecode into a linear superinstruction form executed by a register-style
// dispatch loop (Interpreter::RunCompiled) that bypasses per-instruction
// decode. The compiled form is segmented into basic-block *spans*; each span
// head carries the span's instruction charge so the virtual clock and the
// architectural counters advance exactly as the interpreter would, and every
// span head doubles as a deoptimization point (compiled-pc -> bytecode-pc).
//
// BaselineCompile is a deterministic pure function of (code, pool): the proxy
// and every replica produce byte-identical blobs for the same method, which is
// what lets replicas validate a pushed artifact's blob by recompiling and
// byte-comparing (the PR 9 proof-check philosophy applied to compiled code).
#ifndef SRC_RUNTIME_TIERED_H_
#define SRC_RUNTIME_TIERED_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/bytecode/code.h"
#include "src/bytecode/constant_pool.h"
#include "src/support/result.h"

namespace dvm {

// Compiled opcodes. Pure ops have self-described stack effects and execute
// without any per-instruction bookkeeping; checked ops synchronize the frame
// and re-dispatch through the live bytecode site (so lazy quickening and the
// inline caches stay authoritative), and always terminate a span.
enum class TOp : uint8_t {
  kNop = 0,
  kConstI,    // push int immediate a
  kConstL,    // push long consts[a]
  kConstNull, // push null reference
  kLoad,      // push locals[a]
  kStore,     // locals[a] = pop
  kIinc,      // int locals[a] += b (wrapping)
  kPop,
  kDup,
  kDupX1,
  kSwap,
  kIAlu,      // int binop `sub` over the top two slots
  kLAlu,      // long binop `sub`
  kIneg,
  kLneg,
  kI2l,
  kL2i,
  kLcmp,
  // Fused superinstructions (pure, within one span):
  kAluLL,     // push locals[a] `sub` locals[b]
  kAluLC,     // push locals[a] `sub` imm b
  kAluLLS,    // locals[c] = locals[a] `sub` locals[b]
  kAluLCS,    // locals[c] = locals[a] `sub` imm b
  // Branches (span terminators; targets are compiled indices):
  kGoto,      // ci = a
  kBrI,       // pop v; if (cond sub)(v, 0) ci = a
  kBrII,      // pop r, l; if (icmp sub)(l, r) ci = a
  kBrA,       // reference conds (ifnull/ifnonnull/if_acmpeq/ne) via sub; ci = a
  kBrLL,      // if (icmp sub)(locals[a], locals[b]) ci = c   (fused)
  kBrLC,      // if (icmp sub)(locals[a], imm b) ci = c       (fused)
  // Checked ops (span terminators):
  kDivRem,    // idiv/irem/ldiv/lrem via sub
  kArrLoad,   // iaload/laload/aaload via sub
  kArrStore,  // iastore/lastore/aastore via sub
  kArrLen,
  kField,     // get/put field/static; dispatches on the live (quickened) site
  kInvoke,    // a = argc incl. receiver, b = 1 if a result is pushed
  kNew,
  kNewArray,  // a = ArrayKind
  kANewArray,
  kRet,       // return forms via sub
  kLastTOp = kRet,
};

// Set on branches whose source target precedes the branch (taken => backedge
// profile tick, mirroring the interpreter's QBRANCH exactly).
inline constexpr uint16_t kTierFlagBackward = 1;

struct CInstr {
  TOp op = TOp::kNop;
  uint8_t sub = 0;     // source Op byte for ALU / branch-cond / checked dispatch
  uint16_t flags = 0;
  int32_t a = 0;
  int32_t b = 0;
  int32_t c = 0;
  // First covered source-instruction index. Span heads deopt here on budget
  // exhaustion; checked ops resume the interpreter at bc + 1.
  uint32_t bc = 0;
  // Span head: number of source instructions in the span (charged in bulk
  // before the span executes, matching the interpreter's fetch-time charging).
  // Interior instructions carry 0.
  uint32_t charge = 0;
};

struct TieredMethod {
  std::vector<CInstr> code;
  std::vector<int64_t> consts;     // long constant table (kConstL)
  // bytecode index -> compiled index, one entry per span head. Every branch
  // target and every deopt resume point is a span head.
  std::unordered_map<uint32_t, uint32_t> entry;
  uint32_t checksum = 0;           // Fnv1a over the method's encoded bytes
  uint32_t max_stack = 0;
  uint32_t max_locals = 0;
  uint32_t source_len = 0;         // decoded source instruction count
  // Set on megamorphic transition or class redefinition; compiled frames
  // observe it at span boundaries and deoptimize.
  bool invalidated = false;
};

// Compiles decoded bytecode to tiered form. Returns nullptr when the method
// uses a construct outside the tier-1 subset (athrow, monitors, checkcast/
// instanceof, string constants, unreachable code, ...) or fails the
// stack-depth analysis; such methods stay on the quickened interpreter.
std::unique_ptr<TieredMethod> BaselineCompile(const std::vector<Instr>& code,
                                              const ConstantPool& pool,
                                              uint32_t max_stack, uint32_t max_locals);

// Blob form carried by the kAttrTieredCode class attribute.
Bytes SerializeTieredMethod(const TieredMethod& t);
Result<std::unique_ptr<TieredMethod>> ParseTieredBlob(const Bytes& blob);

// Proof-checks a parsed blob against the method it claims to accelerate:
// abstract interpretation over the compiled form validating stack depths,
// local indices, branch targets, span charges and per-site agreement with the
// live bytecode (checked ops must name the site's op family; invoke arity is
// re-derived from the pool). A blob that passes cannot move sp or a local
// index out of bounds at runtime.
Status ValidateTieredMethod(const TieredMethod& t, const std::vector<Instr>& code,
                            const ConstantPool& pool, uint32_t max_stack,
                            uint32_t max_locals);

// FNV-1a over raw bytes; ties a blob to the exact encoded method body.
uint32_t Fnv1a(const Bytes& data);

// kAttrTieredCode payload: sorted list of ("name:descriptor", blob).
Bytes PackTieredAttribute(const std::vector<std::pair<std::string, Bytes>>& blobs);
Result<std::vector<std::pair<std::string, Bytes>>> UnpackTieredAttribute(const Bytes& data);

// Maps quick forms to their raw source op (identity for raw ops). Compiling
// from a partially quickened body and from pristine bytecode must produce the
// same blob.
Op NormalizeQuickOp(Op op);

}  // namespace dvm

#endif  // SRC_RUNTIME_TIERED_H_
