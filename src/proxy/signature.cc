#include "src/proxy/signature.h"

#include "src/bytecode/serializer.h"

namespace dvm {

Md5Digest CodeSigner::Sign(const Bytes& data) const {
  Md5 md5;
  md5.Update(key_);
  md5.Update(data);
  md5.Update(key_);
  return md5.Finish();
}

Status CodeSigner::AttachSignature(ClassFile* cls) const {
  cls->RemoveAttribute(kAttrSignatureDigest);
  DVM_ASSIGN_OR_RETURN(Bytes wire, WriteClassFile(*cls));
  Md5Digest digest = Sign(wire);
  cls->SetAttribute(kAttrSignatureDigest, Bytes(digest.begin(), digest.end()));
  return Status::Ok();
}

Result<Bytes> CodeSigner::SignedBytes(ClassFile cls) const {
  DVM_RETURN_IF_ERROR(AttachSignature(&cls));
  return WriteClassFile(cls);
}

Status CodeSigner::VerifyClassBytes(const Bytes& data) const {
  DVM_ASSIGN_OR_RETURN(ClassFile cls, ReadClassFile(data));
  const Attribute* attr = cls.FindAttribute(kAttrSignatureDigest);
  if (attr == nullptr || attr->data.size() != 16) {
    return Error{ErrorCode::kSecurityError, "class " + cls.name() + " is unsigned"};
  }
  Md5Digest claimed;
  std::copy(attr->data.begin(), attr->data.end(), claimed.begin());
  cls.RemoveAttribute(kAttrSignatureDigest);
  DVM_ASSIGN_OR_RETURN(Bytes unsigned_wire, WriteClassFile(cls));
  Md5Digest actual = Sign(unsigned_wire);
  if (claimed != actual) {
    return Error{ErrorCode::kSecurityError,
                 "signature mismatch on class " + cls.name() + " (code was modified)"};
  }
  return Status::Ok();
}

}  // namespace dvm
