#include <gtest/gtest.h>

#include "src/runtime/machine.h"
#include "src/support/stats.h"
#include "src/runtime/syslib.h"
#include "src/verifier/verifier.h"
#include "src/workloads/applets.h"
#include "src/workloads/apps.h"
#include "src/workloads/graphical.h"

namespace dvm {
namespace {

// Shared verification helper: every class of the bundle must pass the static
// verifier when the whole bundle plus the library is visible.
void ExpectBundleVerifies(const AppBundle& bundle) {
  static const std::vector<ClassFile> library = BuildSystemLibrary();
  MapClassEnv env;
  for (const auto& cls : library) {
    env.Add(&cls);
  }
  for (const auto& cls : bundle.classes) {
    env.Add(&cls);
  }
  for (const auto& cls : bundle.classes) {
    auto verified = VerifyClass(cls, env);
    ASSERT_TRUE(verified.ok()) << cls.name() << ": "
                               << (verified.ok() ? "" : verified.error().ToString());
  }
}

CallOutcome RunBundle(const AppBundle& bundle) {
  MapClassProvider provider;
  InstallSystemLibrary(provider);
  bundle.InstallInto(&provider);
  Machine machine({}, &provider);
  auto out = machine.RunMain(bundle.main_class);
  EXPECT_TRUE(out.ok()) << (out.ok() ? "" : out.error().ToString());
  EXPECT_FALSE(out->threw) << out->exception_class << ": " << out->exception_message;
  EXPECT_EQ(machine.printed().size(), 1u);
  return out.ok() ? out.value() : CallOutcome{};
}

struct Fig5Case {
  const char* name;
  AppBundle (*build)(int);
  int classes;       // Figure 5 class count
  uint64_t size_kb;  // Figure 5 wire size
};

class Fig5AppTest : public ::testing::TestWithParam<Fig5Case> {};

TEST_P(Fig5AppTest, MatchesFigure5ShapeAndRuns) {
  const Fig5Case& param = GetParam();
  AppBundle bundle = param.build(1);
  EXPECT_EQ(bundle.classes.size(), static_cast<size_t>(param.classes));

  // Wire size within ~40% of the paper's table.
  double size_kb = static_cast<double>(bundle.TotalBytes()) / 1024.0;
  EXPECT_GT(size_kb, static_cast<double>(param.size_kb) * 0.6) << size_kb;
  EXPECT_LT(size_kb, static_cast<double>(param.size_kb) * 1.4) << size_kb;

  ExpectBundleVerifies(bundle);
  RunBundle(bundle);
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, Fig5AppTest,
    ::testing::Values(Fig5Case{"jlex", BuildJlexApp, 20, 91},
                      Fig5Case{"javacup", BuildJavacupApp, 35, 130},
                      Fig5Case{"pizza", BuildPizzaApp, 241, 825},
                      Fig5Case{"instantdb", BuildInstantdbApp, 70, 312},
                      Fig5Case{"cassowary", BuildCassowaryApp, 34, 85}),
    [](const ::testing::TestParamInfo<Fig5Case>& info) { return info.param.name; });

TEST(WorkloadsTest, AppsAreDeterministic) {
  AppBundle a = BuildJlexApp(1);
  AppBundle b = BuildJlexApp(1);
  ASSERT_EQ(a.classes.size(), b.classes.size());
  EXPECT_EQ(a.TotalBytes(), b.TotalBytes());

  auto run = [](const AppBundle& bundle) {
    MapClassProvider provider;
    InstallSystemLibrary(provider);
    bundle.InstallInto(&provider);
    Machine machine({}, &provider);
    auto out = machine.RunMain(bundle.main_class);
    EXPECT_TRUE(out.ok());
    return machine.printed();
  };
  EXPECT_EQ(run(a), run(b));
}

TEST(WorkloadsTest, WorkScaleIncreasesRuntime) {
  auto time_of = [](int scale) {
    AppBundle bundle = BuildCassowaryApp(scale);
    MapClassProvider provider;
    InstallSystemLibrary(provider);
    bundle.InstallInto(&provider);
    Machine machine({}, &provider);
    EXPECT_TRUE(machine.RunMain(bundle.main_class).ok());
    return machine.virtual_nanos();
  };
  EXPECT_GT(time_of(3), 2 * time_of(1));
}

TEST(WorkloadsTest, GraphicalAppsRunAndCarryColdCode) {
  for (const auto& spec : GraphicalAppSpecs()) {
    AppBundle bundle = GenerateGraphicalApp(spec);
    EXPECT_EQ(bundle.classes.size(), static_cast<size_t>(spec.class_count + 1));
    ExpectBundleVerifies(bundle);
    RunBundle(bundle);
    // Cold code in the 10-30% band the paper measured (section 5).
    double cold_fraction =
        static_cast<double>(spec.cold_instructions) /
        static_cast<double>(spec.cold_instructions + spec.hot_instructions);
    EXPECT_GT(cold_fraction, 0.08);
    EXPECT_LT(cold_fraction, 0.40);
  }
}

TEST(WorkloadsTest, GraphicalSuiteSpansSizes) {
  auto apps = BuildGraphicalApps();
  ASSERT_EQ(apps.size(), 6u);
  uint64_t largest = apps.front().TotalBytes();
  uint64_t smallest = apps.back().TotalBytes();
  EXPECT_GT(largest, 4 * smallest);  // a real size spread, like the 1999 suite
}

TEST(WorkloadsTest, AppletPopulationShape) {
  auto applets = BuildAppletPopulation(100, 7);
  ASSERT_EQ(applets.size(), 100u);
  RunningStats sizes;
  for (const auto& applet : applets) {
    sizes.Add(static_cast<double>(applet.TotalBytes()));
    EXPECT_GE(applet.classes.size(), 2u);  // Main + >=1 part
  }
  // Mean in the tens of KB with real spread.
  EXPECT_GT(sizes.mean(), 30'000.0);
  EXPECT_LT(sizes.mean(), 120'000.0);
  EXPECT_GT(sizes.stddev(), 10'000.0);
}

TEST(WorkloadsTest, AppletsAreRunnable) {
  auto applets = BuildAppletPopulation(5, 11);
  for (const auto& applet : applets) {
    MapClassProvider provider;
    InstallSystemLibrary(provider);
    applet.InstallInto(&provider);
    Machine machine({}, &provider);
    auto out = machine.RunMain(applet.main_class);
    ASSERT_TRUE(out.ok()) << out.error().ToString();
    EXPECT_FALSE(out->threw);
  }
}

TEST(WorkloadsTest, AppletPopulationDeterministicPerSeed) {
  auto a = BuildAppletPopulation(10, 3);
  auto b = BuildAppletPopulation(10, 3);
  auto c = BuildAppletPopulation(10, 4);
  uint64_t total_a = 0, total_b = 0, total_c = 0;
  for (int i = 0; i < 10; i++) {
    total_a += a[static_cast<size_t>(i)].TotalBytes();
    total_b += b[static_cast<size_t>(i)].TotalBytes();
    total_c += c[static_cast<size_t>(i)].TotalBytes();
  }
  EXPECT_EQ(total_a, total_b);
  EXPECT_NE(total_a, total_c);
}

}  // namespace
}  // namespace dvm
