// Figure 6: end-to-end application performance under monolithic and
// distributed virtual machines (first bar: monolithic services in the client;
// second: uncached DVM execution through a fresh proxy; third: subsequent
// execution served from the proxy's rewrite cache).
//
// Expected shape (paper): DVM uncached ~11% slower than monolithic on average;
// DVM cached faster than monolithic.
#include <cstdlib>

#include "bench/bench_util.h"

int main() {
  using namespace dvm;
  using namespace dvm::bench;

  // Per-app work scales calibrated so each run lands near its Figure 6
  // runtime on the simulated 200 MHz client (jlex ~10 s ... pizza ~105 s).
  // DVM_FIG6_PERCENT=10 runs a 10x-shorter smoke version.
  int percent = 100;
  if (const char* env = std::getenv("DVM_FIG6_PERCENT")) {
    percent = std::max(1, std::atoi(env));
  }
  struct ScaledApp {
    AppBundle (*build)(int);
    int scale;
  };
  const ScaledApp scaled[] = {{BuildJlexApp, 40},      {BuildJavacupApp, 36},
                              {BuildPizzaApp, 36},     {BuildInstantdbApp, 25},
                              {BuildCassowaryApp, 29}};

  PrintHeader("Application performance: monolithic vs DVM vs DVM cached (seconds)",
              "Figure 6");
  PrintRow({"App", "Monolithic", "DVM", "DVMcached", "DVM/mono", "cached/mono"});

  double overhead_sum = 0;
  int count = 0;
  for (const ScaledApp& entry : scaled) {
    AppBundle app = entry.build(std::max(1, entry.scale * percent / 100));
    EndToEndResult mono = RunMonolithic(app);

    // Uncached: fresh server, first client pays the rewrite.
    MapClassProvider origin;
    app.InstallInto(&origin);
    DvmServerConfig config;
    config.policy = PermissivePolicy();
    DvmServer server(std::move(config), &origin);
    EndToEndResult uncached = RunDvmClient(app, &server);
    // Cached: same server, second client.
    EndToEndResult cached = RunDvmClient(app, &server);

    if (mono.printed != uncached.printed || mono.printed != cached.printed) {
      std::fprintf(stderr, "output mismatch on %s\n", app.name.c_str());
      return 1;
    }

    double ratio_uncached =
        static_cast<double>(uncached.total_nanos) / static_cast<double>(mono.total_nanos);
    double ratio_cached =
        static_cast<double>(cached.total_nanos) / static_cast<double>(mono.total_nanos);
    overhead_sum += ratio_uncached - 1.0;
    count++;
    PrintRow({app.name, FmtSeconds(mono.total_nanos), FmtSeconds(uncached.total_nanos),
              FmtSeconds(cached.total_nanos), FmtDouble(ratio_uncached),
              FmtDouble(ratio_cached)});
  }
  std::printf("\nAverage uncached DVM overhead: %.1f%% (paper: ~11%%)\n",
              overhead_sum / count * 100.0);
  return 0;
}
