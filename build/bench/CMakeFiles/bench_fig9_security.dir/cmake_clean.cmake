file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_security.dir/bench_fig9_security.cc.o"
  "CMakeFiles/bench_fig9_security.dir/bench_fig9_security.cc.o.d"
  "bench_fig9_security"
  "bench_fig9_security.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
