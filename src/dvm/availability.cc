#include "src/dvm/availability.h"

namespace dvm {

const char* ServiceClassName(ServiceClass service) {
  switch (service) {
    case ServiceClass::kVerification:
      return "verification";
    case ServiceClass::kSecurity:
      return "security";
    case ServiceClass::kCompilation:
      return "compilation";
    case ServiceClass::kOptimization:
      return "optimization";
    case ServiceClass::kMonitoring:
      return "monitoring";
    case ServiceClass::kProfiling:
      return "profiling";
  }
  return "unknown";
}

Status AvailabilityPolicy::SetMode(ServiceClass service, AvailabilityMode mode) {
  if (mode == AvailabilityMode::kFailOpen && MustFailClosed(service)) {
    return Error{ErrorCode::kInvalidArgument,
                 std::string(ServiceClassName(service)) + " service must fail closed"};
  }
  modes_[service] = mode;
  return Status::Ok();
}

AvailabilityMode AvailabilityPolicy::ModeFor(ServiceClass service) const {
  if (MustFailClosed(service)) {
    return AvailabilityMode::kFailClosed;
  }
  auto it = modes_.find(service);
  return it != modes_.end() ? it->second : AvailabilityMode::kFailClosed;
}

AvailabilityMode AvailabilityPolicy::EffectiveMode(
    const std::vector<ServiceClass>& required) const {
  for (ServiceClass service : required) {
    if (ModeFor(service) == AvailabilityMode::kFailClosed) {
      return AvailabilityMode::kFailClosed;
    }
  }
  return AvailabilityMode::kFailOpen;
}

}  // namespace dvm
