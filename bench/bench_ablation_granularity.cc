// Ablation: repartitioning granularity. Java's native transfer unit is the
// class (lazy class loading already skips entirely-unused classes); the
// section 5 service splits at METHOD granularity. This ablation separates the
// two effects: startup bytes under (a) whole-bundle push, (b) lazy classes
// only, (c) lazy classes + method-granularity splitting.
#include "bench/bench_util.h"
#include "src/workloads/graphical.h"

int main() {
  using namespace dvm;
  using namespace dvm::bench;

  PrintHeader("Repartitioning granularity ablation (startup bytes over the link)",
              "Section 5 design choice");
  PrintRow({"App", "AllBytes", "LazyClass", "MethodGran", "Saved%"}, 13);

  for (const AppBundle& app : BuildGraphicalApps()) {
    // (a) whole bundle size (what a JAR-style push would transfer).
    uint64_t all_bytes = app.TotalBytes();

    // (b) lazy class loading through a plain DVM server.
    MapClassProvider base_origin;
    app.InstallInto(&base_origin);
    DvmServerConfig base_config;
    base_config.enable_audit = false;
    base_config.policy = PermissivePolicy();
    DvmServer base_server(std::move(base_config), &base_origin);
    uint64_t lazy_bytes;
    TransferProfile profile;
    {
      DvmServerConfig profile_config;
      profile_config.enable_audit = false;
      profile_config.enable_profile = true;
      profile_config.policy = PermissivePolicy();
      MapClassProvider profile_origin;
      app.InstallInto(&profile_origin);
      DvmServer profile_server(std::move(profile_config), &profile_origin);
      DvmClient profile_client(&profile_server, DvmMachineConfig(), MakeEthernet10Mb());
      if (!profile_client.RunApp(app.main_class).ok()) {
        return 1;
      }
      profile = TransferProfile(profile_client.profiler()->first_use_order());

      DvmClient client(&base_server, DvmMachineConfig(), MakeEthernet10Mb());
      if (!client.RunApp(app.main_class).ok()) {
        return 1;
      }
      lazy_bytes = client.bytes_fetched();
    }

    // (c) method-granularity splitting on top of lazy loading.
    MapClassProvider opt_origin;
    app.InstallInto(&opt_origin);
    DvmServerConfig opt_config;
    opt_config.enable_audit = false;
    opt_config.repartition_profile = profile;
    opt_config.policy = PermissivePolicy();
    DvmServer opt_server(std::move(opt_config), &opt_origin);
    uint64_t split_bytes;
    {
      DvmClient client(&opt_server, DvmMachineConfig(), MakeEthernet10Mb());
      if (!client.RunApp(app.main_class).ok()) {
        return 1;
      }
      split_bytes = client.bytes_fetched();
    }

    double saved = (1.0 - static_cast<double>(split_bytes) /
                              static_cast<double>(lazy_bytes)) * 100.0;
    PrintRow({app.name, std::to_string(all_bytes), std::to_string(lazy_bytes),
              std::to_string(split_bytes), FmtDouble(saved, 1) + "%"},
             13);
  }
  std::printf("\nClass granularity cannot shed the unused halves of classes that ARE\n"
              "touched at startup; method granularity can (the section 5 insight).\n");
  return 0;
}
