#include "src/support/md5.h"

#include <cstring>

namespace dvm {
namespace {

constexpr uint32_t kShift[64] = {7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
                                 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
                                 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
                                 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};

// K[i] = floor(2^32 * abs(sin(i + 1))), from RFC 1321.
constexpr uint32_t kSine[64] = {
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613,
    0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193,
    0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d,
    0x02441453, 0xd8a1e681, 0xe7d3fbc8, 0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed,
    0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122,
    0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
    0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665, 0xf4292244,
    0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb,
    0xeb86d391};

uint32_t RotL(uint32_t x, uint32_t c) { return (x << c) | (x >> (32 - c)); }

}  // namespace

Md5::Md5() : a_(0x67452301), b_(0xefcdab89), c_(0x98badcfe), d_(0x10325476) {}

void Md5::ProcessBlock(const uint8_t block[64]) {
  uint32_t m[16];
  for (int i = 0; i < 16; i++) {
    m[i] = static_cast<uint32_t>(block[i * 4]) | (static_cast<uint32_t>(block[i * 4 + 1]) << 8) |
           (static_cast<uint32_t>(block[i * 4 + 2]) << 16) |
           (static_cast<uint32_t>(block[i * 4 + 3]) << 24);
  }
  uint32_t a = a_, b = b_, c = c_, d = d_;
  for (int i = 0; i < 64; i++) {
    uint32_t f;
    int g;
    if (i < 16) {
      f = (b & c) | (~b & d);
      g = i;
    } else if (i < 32) {
      f = (d & b) | (~d & c);
      g = (5 * i + 1) % 16;
    } else if (i < 48) {
      f = b ^ c ^ d;
      g = (3 * i + 5) % 16;
    } else {
      f = c ^ (b | ~d);
      g = (7 * i) % 16;
    }
    uint32_t tmp = d;
    d = c;
    c = b;
    b = b + RotL(a + f + kSine[i] + m[g], kShift[i]);
    a = tmp;
  }
  a_ += a;
  b_ += b;
  c_ += c;
  d_ += d;
}

void Md5::Update(const uint8_t* data, size_t len) {
  total_len_ += len;
  while (len > 0) {
    size_t take = std::min(len, sizeof(buffer_) - buffer_len_);
    std::memcpy(buffer_ + buffer_len_, data, take);
    buffer_len_ += take;
    data += take;
    len -= take;
    if (buffer_len_ == sizeof(buffer_)) {
      ProcessBlock(buffer_);
      buffer_len_ = 0;
    }
  }
}

Md5Digest Md5::Finish() {
  uint64_t bit_len = total_len_ * 8;
  uint8_t pad = 0x80;
  Update(&pad, 1);
  uint8_t zero = 0;
  while (buffer_len_ != 56) {
    Update(&zero, 1);
  }
  uint8_t len_bytes[8];
  for (int i = 0; i < 8; i++) {
    len_bytes[i] = static_cast<uint8_t>(bit_len >> (8 * i));
  }
  // Bypass Update's total_len_ accounting for the trailer.
  std::memcpy(buffer_ + 56, len_bytes, 8);
  ProcessBlock(buffer_);

  Md5Digest out;
  uint32_t words[4] = {a_, b_, c_, d_};
  for (int w = 0; w < 4; w++) {
    for (int i = 0; i < 4; i++) {
      out[w * 4 + i] = static_cast<uint8_t>(words[w] >> (8 * i));
    }
  }
  return out;
}

Md5Digest Md5::Hash(const Bytes& data) {
  Md5 md5;
  md5.Update(data);
  return md5.Finish();
}

std::string Md5::ToHex(const Md5Digest& digest) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(32);
  for (uint8_t byte : digest) {
    out.push_back(kHex[byte >> 4]);
    out.push_back(kHex[byte & 0xF]);
  }
  return out;
}

}  // namespace dvm
