#include "src/verifier/link_checker.h"

#include "src/bytecode/descriptor.h"

namespace dvm {
namespace {

constexpr const char* kObject = "java/lang/Object";

Error LinkErr(const std::string& message) { return Error{ErrorCode::kLinkError, message}; }

Result<const ClassFile*> Require(const std::string& class_name, const ClassEnv& env) {
  const ClassFile* cls = env.Lookup(class_name);
  if (cls == nullptr) {
    return LinkErr("class not found: " + class_name);
  }
  return cls;
}

}  // namespace

Result<bool> IsSubclassOf(const std::string& sub, const std::string& super,
                          const ClassEnv& env) {
  if (super == kObject || sub == super) {
    return true;
  }
  // Arrays: assignable to Object only (element covariance is resolved
  // statically; the runtime sees exact array types).
  if (!sub.empty() && sub[0] == '[') {
    if (super.empty() || super[0] != '[') {
      return false;
    }
    std::string se = ArrayElementDescriptor(sub);
    std::string de = ArrayElementDescriptor(super);
    if (se == de) {
      return true;
    }
    if (se.size() > 1 && se[0] == 'L' && de.size() > 1 && de[0] == 'L') {
      return IsSubclassOf(ClassNameFromDescriptor(se), ClassNameFromDescriptor(de), env);
    }
    return false;
  }

  std::string current = sub;
  while (true) {
    DVM_ASSIGN_OR_RETURN(const ClassFile* cls, Require(current, env));
    for (uint16_t idx : cls->interfaces) {
      auto name = cls->pool().ClassNameAt(idx);
      if (name.ok()) {
        if (name.value() == super) {
          return true;
        }
        if (env.IsKnown(name.value())) {
          auto via_iface = IsSubclassOf(name.value(), super, env);
          if (via_iface.ok() && via_iface.value()) {
            return true;
          }
        }
      }
    }
    std::string parent = cls->super_name();
    if (parent.empty()) {
      return false;
    }
    if (parent == super) {
      return true;
    }
    current = parent;
  }
}

Status CheckAssumption(const Assumption& assumption, const ClassEnv& env,
                       LinkCheckStats* stats) {
  stats->dynamic_checks++;
  switch (assumption.kind) {
    case AssumptionKind::kClassExists: {
      DVM_ASSIGN_OR_RETURN(const ClassFile* cls, Require(assumption.target_class, env));
      (void)cls;
      return Status::Ok();
    }
    case AssumptionKind::kFieldExists: {
      // Walk the superclass chain, matching name and descriptor exactly — the
      // "descriptor lookup and string comparison" of the paper.
      std::string current = assumption.target_class;
      while (true) {
        DVM_ASSIGN_OR_RETURN(const ClassFile* cls, Require(current, env));
        const FieldInfo* field = cls->FindField(assumption.member_name);
        if (field != nullptr) {
          stats->dynamic_checks++;
          if (field->descriptor != assumption.descriptor) {
            return LinkErr("field " + assumption.target_class + "." + assumption.member_name +
                           " has descriptor " + field->descriptor + ", expected " +
                           assumption.descriptor);
          }
          return Status::Ok();
        }
        std::string parent = cls->super_name();
        if (parent.empty()) {
          return LinkErr("field not found: " + assumption.target_class + "." +
                         assumption.member_name);
        }
        current = parent;
      }
    }
    case AssumptionKind::kMethodExists: {
      std::string current = assumption.target_class;
      while (true) {
        DVM_ASSIGN_OR_RETURN(const ClassFile* cls, Require(current, env));
        if (cls->FindMethod(assumption.member_name, assumption.descriptor) != nullptr) {
          stats->dynamic_checks++;
          return Status::Ok();
        }
        std::string parent = cls->super_name();
        if (parent.empty()) {
          return LinkErr("method not found: " + assumption.target_class + "." +
                         assumption.member_name + ":" + assumption.descriptor);
        }
        current = parent;
      }
    }
    case AssumptionKind::kAssignable: {
      DVM_ASSIGN_OR_RETURN(bool ok,
                           IsSubclassOf(assumption.target_class, assumption.expected_class, env));
      if (!ok) {
        return LinkErr(assumption.target_class + " is not assignable to " +
                       assumption.expected_class);
      }
      return Status::Ok();
    }
  }
  return Error{ErrorCode::kInternal, "unknown assumption kind"};
}

Status CheckAssumptions(const std::vector<Assumption>& assumptions, const ClassEnv& env,
                        LinkCheckStats* stats) {
  for (const auto& a : assumptions) {
    DVM_RETURN_IF_ERROR(CheckAssumption(a, env, stats));
  }
  return Status::Ok();
}

}  // namespace dvm
