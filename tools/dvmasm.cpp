// dvmasm: assemble .dvma text into a .dvmc class file, or disassemble back.
//
//   dvmasm <in.dvma> <out.dvmc>       assemble
//   dvmasm -d <in.dvmc> [out.dvma]    disassemble (stdout when no output file)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "src/bytecode/assembler.h"
#include "src/bytecode/serializer.h"

using namespace dvm;

namespace {

bool ReadFileBytes(const char* path, Bytes* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  out->assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  return true;
}

bool ReadFileText(const char* path, std::string* out) {
  std::ifstream in(path);
  if (!in) {
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3 && std::strcmp(argv[1], "-d") == 0) {
    Bytes data;
    if (!ReadFileBytes(argv[2], &data)) {
      std::fprintf(stderr, "dvmasm: cannot read %s\n", argv[2]);
      return 1;
    }
    auto cls = ReadClassFile(data);
    if (!cls.ok()) {
      std::fprintf(stderr, "dvmasm: %s\n", cls.error().ToString().c_str());
      return 1;
    }
    std::string text = ToAssembly(*cls);
    if (argc >= 4) {
      std::ofstream out(argv[3]);
      out << text;
    } else {
      std::fputs(text.c_str(), stdout);
    }
    return 0;
  }

  if (argc != 3) {
    std::fprintf(stderr, "usage: dvmasm <in.dvma> <out.dvmc>\n"
                         "       dvmasm -d <in.dvmc> [out.dvma]\n");
    return 2;
  }
  std::string text;
  if (!ReadFileText(argv[1], &text)) {
    std::fprintf(stderr, "dvmasm: cannot read %s\n", argv[1]);
    return 1;
  }
  auto cls = AssembleText(text);
  if (!cls.ok()) {
    std::fprintf(stderr, "dvmasm: %s\n", cls.error().ToString().c_str());
    return 1;
  }
  Bytes data = MustWriteClassFile(*cls);
  std::ofstream out(argv[2], std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "dvmasm: cannot write %s\n", argv[2]);
    return 1;
  }
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  std::printf("dvmasm: wrote %s (%zu bytes, class %s)\n", argv[2], data.size(),
              cls->name().c_str());
  return 0;
}
