// Implementations of the java/* native methods, including the security-checked
// system resource accesses measured in Figure 9. Baseline operation costs and
// JDK-style check overheads are calibrated to the paper's numbers (200 MHz
// PentiumPro, Sun JDK 1.2); the *mechanisms* (stack walk, handle table) are
// implemented for real.
#include <cstdlib>

#include "src/runtime/machine.h"
#include "src/runtime/stack_security.h"

namespace dvm {
namespace {

// Figure 9 "Baseline (no check)" column, in nanoseconds.
constexpr uint64_t kGetPropertyBaseNanos = 2'000;        // 0.0020 ms
constexpr uint64_t kOpenFileBaseNanos = 1'406'000;       // 1.406 ms
constexpr uint64_t kSetPriorityBaseNanos = 63'800;       // 0.0638 ms
constexpr uint64_t kReadFileBaseNanos = 14'100;          // 0.0141 ms

// Figure 9 "JDK (overhead)" column: what stack-introspection checking adds on
// top of the baseline. OpenFile is dominated by permission-object path
// canonicalization; thread priority is a trivial flag test.
constexpr uint64_t kJdkPropertyCheckNanos = 46'800;      // 0.0468 ms
constexpr uint64_t kJdkOpenFileCheckNanos = 7'224'000;   // 7.224 ms
constexpr uint64_t kJdkSetPriorityCheckNanos = 700;      // 0.0007 ms

// Runs a JDK-style stack-introspection check when that baseline is enabled.
// Returns false (and raises SecurityException) when access is denied. In DVM
// configurations this is a no-op: checks arrive via injected Enforcer calls.
bool JdkCheck(Machine& m, const std::string& permission, uint64_t overhead_nanos) {
  StackIntrospectionSecurity* security = m.stack_security();
  if (security == nullptr) {
    return true;
  }
  m.AddNanos(overhead_nanos);
  m.AddServiceNanos("security", overhead_nanos);
  if (!security->Check(m, permission)) {
    m.ThrowGuest("java/lang/SecurityException", "access denied: " + permission);
    return false;
  }
  return true;
}

Result<std::string> ArgString(Machine& m, const std::vector<Value>& args, size_t index) {
  if (index >= args.size()) {
    return Error{ErrorCode::kRuntimeError, "native argument index out of range"};
  }
  return m.StringValue(args[index].AsRef());
}

void RegisterObjectNatives(Machine& m) {
  m.natives().Register("java/lang/Object", "hashCode", "()I",
                       [](Machine& machine, std::vector<Value>& args) -> Result<Value> {
                         (void)machine;
                         return Value::Int(static_cast<int32_t>(args[0].AsRef() * 2654435761u));
                       });
}

void RegisterStringNatives(Machine& m) {
  m.natives().Register(
      "java/lang/String", "length", "()I",
      [](Machine& machine, std::vector<Value>& args) -> Result<Value> {
        DVM_ASSIGN_OR_RETURN(std::string s, machine.StringValue(args[0].AsRef()));
        return Value::Int(static_cast<int32_t>(s.size()));
      });
  m.natives().Register(
      "java/lang/String", "charAt", "(I)I",
      [](Machine& machine, std::vector<Value>& args) -> Result<Value> {
        DVM_ASSIGN_OR_RETURN(std::string s, machine.StringValue(args[0].AsRef()));
        int32_t index = args[1].AsInt();
        if (index < 0 || static_cast<size_t>(index) >= s.size()) {
          machine.ThrowGuest("java/lang/ArrayIndexOutOfBoundsException",
                             "string index " + std::to_string(index));
          return Value::Int(0);
        }
        return Value::Int(static_cast<uint8_t>(s[static_cast<size_t>(index)]));
      });
  m.natives().Register(
      "java/lang/String", "concat", "(Ljava/lang/String;)Ljava/lang/String;",
      [](Machine& machine, std::vector<Value>& args) -> Result<Value> {
        DVM_ASSIGN_OR_RETURN(std::string a, machine.StringValue(args[0].AsRef()));
        if (args[1].IsNullRef()) {
          machine.ThrowGuest("java/lang/NullPointerException", "concat(null)");
          return Value::Null();
        }
        DVM_ASSIGN_OR_RETURN(std::string b, machine.StringValue(args[1].AsRef()));
        DVM_ASSIGN_OR_RETURN(ObjRef out, machine.NewString(a + b));
        return Value::Ref(out);
      });
  m.natives().Register(
      "java/lang/String", "equalsStr", "(Ljava/lang/String;)I",
      [](Machine& machine, std::vector<Value>& args) -> Result<Value> {
        DVM_ASSIGN_OR_RETURN(std::string a, machine.StringValue(args[0].AsRef()));
        if (args[1].IsNullRef()) {
          return Value::Int(0);
        }
        auto b = machine.StringValue(args[1].AsRef());
        return Value::Int(b.ok() && b.value() == a ? 1 : 0);
      });
  m.natives().Register(
      "java/lang/String", "hashCode", "()I",
      [](Machine& machine, std::vector<Value>& args) -> Result<Value> {
        DVM_ASSIGN_OR_RETURN(std::string s, machine.StringValue(args[0].AsRef()));
        int32_t h = 0;
        for (char c : s) {
          h = 31 * h + static_cast<uint8_t>(c);
        }
        return Value::Int(h);
      });
}

void RegisterIntegerNatives(Machine& m) {
  m.natives().Register(
      "java/lang/Integer", "toString", "(I)Ljava/lang/String;",
      [](Machine& machine, std::vector<Value>& args) -> Result<Value> {
        DVM_ASSIGN_OR_RETURN(ObjRef out, machine.NewString(std::to_string(args[0].AsInt())));
        return Value::Ref(out);
      });
  m.natives().Register(
      "java/lang/Integer", "parseInt", "(Ljava/lang/String;)I",
      [](Machine& machine, std::vector<Value>& args) -> Result<Value> {
        DVM_ASSIGN_OR_RETURN(std::string s, ArgString(machine, args, 0));
        char* end = nullptr;
        long v = std::strtol(s.c_str(), &end, 10);
        if (end == s.c_str() || *end != '\0') {
          machine.ThrowGuest("java/lang/NumberFormatException", s);
          return Value::Int(0);
        }
        return Value::Int(static_cast<int32_t>(v));
      });
}

void RegisterSystemClassNatives(Machine& m) {
  m.natives().Register(
      "java/lang/System", "println", "(Ljava/lang/String;)V",
      [](Machine& machine, std::vector<Value>& args) -> Result<Value> {
        std::string line = "null";
        if (!args[0].IsNullRef()) {
          DVM_ASSIGN_OR_RETURN(line, machine.StringValue(args[0].AsRef()));
        }
        machine.printed().push_back(line);
        return Value::Null();
      });
  m.natives().Register(
      "java/lang/System", "currentTimeMillis", "()J",
      [](Machine& machine, std::vector<Value>& args) -> Result<Value> {
        (void)args;
        return Value::Long(static_cast<int64_t>(machine.virtual_nanos() / 1'000'000));
      });
  m.natives().Register(
      "java/lang/System", "getProperty", "(Ljava/lang/String;)Ljava/lang/String;",
      [](Machine& machine, std::vector<Value>& args) -> Result<Value> {
        machine.AddNanos(kGetPropertyBaseNanos);
        DVM_ASSIGN_OR_RETURN(std::string key, ArgString(machine, args, 0));
        if (!JdkCheck(machine, "property.get." + key, kJdkPropertyCheckNanos)) {
          return Value::Null();
        }
        auto it = machine.properties().find(key);
        if (it == machine.properties().end()) {
          return Value::Null();
        }
        DVM_ASSIGN_OR_RETURN(ObjRef out, machine.NewString(it->second));
        return Value::Ref(out);
      });
  m.natives().Register(
      "java/lang/System", "setProperty", "(Ljava/lang/String;Ljava/lang/String;)V",
      [](Machine& machine, std::vector<Value>& args) -> Result<Value> {
        machine.AddNanos(kGetPropertyBaseNanos);
        DVM_ASSIGN_OR_RETURN(std::string key, ArgString(machine, args, 0));
        if (!JdkCheck(machine, "property.set." + key, kJdkPropertyCheckNanos)) {
          return Value::Null();
        }
        DVM_ASSIGN_OR_RETURN(std::string value, ArgString(machine, args, 1));
        machine.properties()[key] = value;
        return Value::Null();
      });
}

void RegisterThreadNatives(Machine& m) {
  m.natives().Register(
      "java/lang/Thread", "setPriority", "(I)V",
      [](Machine& machine, std::vector<Value>& args) -> Result<Value> {
        machine.AddNanos(kSetPriorityBaseNanos);
        if (!JdkCheck(machine, "thread.setPriority", kJdkSetPriorityCheckNanos)) {
          return Value::Null();
        }
        machine.set_thread_priority(args[0].AsInt());
        return Value::Null();
      });
  m.natives().Register(
      "java/lang/Thread", "getPriority", "()I",
      [](Machine& machine, std::vector<Value>& args) -> Result<Value> {
        (void)args;
        return Value::Int(machine.thread_priority());
      });
  m.natives().Register(
      "java/lang/Thread", "sleep", "(J)V",
      [](Machine& machine, std::vector<Value>& args) -> Result<Value> {
        int64_t millis = args[0].AsLong();
        if (millis > 0) {
          machine.AddNanos(static_cast<uint64_t>(millis) * 1'000'000);
        }
        return Value::Null();
      });
}

void RegisterFileNatives(Machine& m) {
  m.natives().Register(
      "java/io/File", "open", "(Ljava/lang/String;)I",
      [](Machine& machine, std::vector<Value>& args) -> Result<Value> {
        machine.AddNanos(kOpenFileBaseNanos);
        DVM_ASSIGN_OR_RETURN(std::string path, ArgString(machine, args, 0));
        if (!JdkCheck(machine, "file.open." + path, kJdkOpenFileCheckNanos)) {
          return Value::Int(-1);
        }
        return Value::Int(machine.files().Open(path));
      });
  m.natives().Register(
      "java/io/File", "read", "(I)I",
      [](Machine& machine, std::vector<Value>& args) -> Result<Value> {
        machine.AddNanos(kReadFileBaseNanos);
        // Deliberately NOT guarded by the stack-introspection baseline: the
        // JDK imposes checks only on object creation, so a leaked handle
        // bypasses them (Figure 9, "Read File: N/A"). The DVM security service
        // protects this path via an injected Enforcer call instead.
        return Value::Int(machine.files().Read(args[0].AsInt()));
      });
  m.natives().Register(
      "java/io/File", "exists", "(Ljava/lang/String;)I",
      [](Machine& machine, std::vector<Value>& args) -> Result<Value> {
        DVM_ASSIGN_OR_RETURN(std::string path, ArgString(machine, args, 0));
        return Value::Int(machine.files().Exists(path) ? 1 : 0);
      });
}

}  // namespace

void RegisterSystemNatives(Machine& machine) {
  RegisterObjectNatives(machine);
  RegisterStringNatives(machine);
  RegisterIntegerNatives(machine);
  RegisterSystemClassNatives(machine);
  RegisterThreadNatives(machine);
  RegisterFileNatives(machine);
}

}  // namespace dvm
