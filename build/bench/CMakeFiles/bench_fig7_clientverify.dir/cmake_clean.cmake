file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_clientverify.dir/bench_fig7_clientverify.cc.o"
  "CMakeFiles/bench_fig7_clientverify.dir/bench_fig7_clientverify.cc.o.d"
  "bench_fig7_clientverify"
  "bench_fig7_clientverify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_clientverify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
