// Differential tests for the quickened execution engine (DESIGN.md §11).
//
// The quickened engine (threaded dispatch, quick opcodes, sliced call frames)
// and the reference switch interpreter must be observably identical: same
// CallOutcomes, same guest output, same thrown-exception sequences, same
// runtime counters (quickened_sites excepted — it is engine-internal) and the
// same virtual clock. These tests pin that equivalence over every synthetic
// workload application and the fuzz regression corpus, plus targeted
// regressions: invokevirtual null-receiver ordering at a quickened site,
// inline-cache correctness across class redefinition through the proxy's
// InvalidateCache, the verifier rejecting on-the-wire quick opcodes, and the
// disassembler's quick-form annotations.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "fuzz/oracles.h"
#include "src/bytecode/builder.h"
#include "src/bytecode/disasm.h"
#include "src/bytecode/serializer.h"
#include "src/proxy/proxy.h"
#include "src/runtime/interp.h"
#include "src/runtime/machine.h"
#include "src/runtime/syslib.h"
#include "src/verifier/class_env.h"
#include "src/verifier/verifier.h"
#include "src/workloads/applets.h"
#include "src/workloads/apps.h"
#include "src/workloads/graphical.h"

namespace dvm {
namespace {

#ifndef DVM_CORPUS_DIR
#define DVM_CORPUS_DIR "tests/corpus"
#endif

MachineConfig EngineConfig(bool quicken) {
  MachineConfig config;
  config.quicken = quicken;
  return config;
}

// Runs `main_class.main()V` under both engines and asserts every observable
// is identical. Returns the quickened machine's quickened-site count so
// callers can additionally assert the quick paths actually ran.
uint64_t RunBothEngines(const AppBundle& bundle) {
  MapClassProvider provider_quick;
  InstallSystemLibrary(provider_quick);
  bundle.InstallInto(&provider_quick);
  MapClassProvider provider_ref;
  InstallSystemLibrary(provider_ref);
  bundle.InstallInto(&provider_ref);

  Machine quick(EngineConfig(true), &provider_quick);
  Machine reference(EngineConfig(false), &provider_ref);

  auto qo = quick.RunMain(bundle.main_class);
  auto ro = reference.RunMain(bundle.main_class);
  EXPECT_EQ(qo.ok(), ro.ok()) << bundle.name;
  if (qo.ok() && ro.ok()) {
    EXPECT_EQ(qo->threw, ro->threw) << bundle.name;
    EXPECT_EQ(qo->exception_class, ro->exception_class) << bundle.name;
    EXPECT_EQ(qo->exception_message, ro->exception_message) << bundle.name;
    EXPECT_EQ(static_cast<int>(qo->value.kind), static_cast<int>(ro->value.kind))
        << bundle.name;
    if (qo->value.kind != Value::Kind::kRef) {
      EXPECT_EQ(qo->value.num, ro->value.num) << bundle.name;
    }
  }
  EXPECT_EQ(quick.printed(), reference.printed()) << bundle.name;
  EXPECT_EQ(quick.virtual_nanos(), reference.virtual_nanos()) << bundle.name;

  const RuntimeCounters& qc = quick.counters();
  const RuntimeCounters& rc = reference.counters();
  EXPECT_EQ(qc.instructions, rc.instructions) << bundle.name;
  EXPECT_EQ(qc.method_invocations, rc.method_invocations) << bundle.name;
  EXPECT_EQ(qc.native_calls, rc.native_calls) << bundle.name;
  EXPECT_EQ(qc.allocations, rc.allocations) << bundle.name;
  EXPECT_EQ(qc.allocated_bytes, rc.allocated_bytes) << bundle.name;
  EXPECT_EQ(qc.gc_runs, rc.gc_runs) << bundle.name;
  EXPECT_EQ(qc.classes_loaded, rc.classes_loaded) << bundle.name;
  EXPECT_EQ(qc.exceptions_thrown, rc.exceptions_thrown) << bundle.name;
  // The one deliberate difference: the reference engine never quickens.
  EXPECT_EQ(rc.quickened_sites, 0u) << bundle.name;
  return qc.quickened_sites;
}

TEST(QuickenDifferential, Fig5AppsAreEngineIdentical) {
  for (const AppBundle& bundle : BuildFig5Apps(/*work_scale=*/1)) {
    uint64_t quickened = RunBothEngines(bundle);
    EXPECT_GT(quickened, 0u) << bundle.name << " never exercised a quick path";
  }
}

TEST(QuickenDifferential, GraphicalAppsAreEngineIdentical) {
  for (const AppBundle& bundle : BuildGraphicalApps()) {
    RunBothEngines(bundle);
  }
}

TEST(QuickenDifferential, AppletPopulationIsEngineIdentical) {
  for (const AppBundle& bundle : BuildAppletPopulation(/*count=*/12, /*seed=*/7)) {
    RunBothEngines(bundle);
  }
}

// Every minimized fuzz crasher replays through the dual-engine differential
// oracle: hostile inputs must exercise the quick paths without divergence.
TEST(QuickenDifferential, FuzzCorpusIsEngineIdentical) {
  std::filesystem::path dir(DVM_CORPUS_DIR);
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << "missing corpus dir " << dir;
  size_t count = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) {
      continue;
    }
    std::ifstream in(entry.path(), std::ios::binary);
    Bytes data{std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
    std::string violation = fuzz::CheckDifferential(data);
    EXPECT_TRUE(violation.empty()) << entry.path().filename() << ": " << violation;
    count++;
  }
  EXPECT_GE(count, 13u);
}

class QuickenRegressionTest : public ::testing::Test {
 protected:
  QuickenRegressionTest() { InstallSystemLibrary(provider_); }

  void AddClass(ClassBuilder& cb) {
    auto built = cb.Build();
    ASSERT_TRUE(built.ok()) << built.error().ToString();
    provider_.AddClassFile(built.value());
  }

  MapClassProvider provider_;
};

// invokevirtual on a null receiver must raise NullPointerException through a
// site that has ALREADY been quickened: the quick handler's null check runs
// before the inline cache is consulted, so a cache installed by an earlier
// call never masks the NPE (the old engine copied args and consulted the
// cache before the null check).
TEST_F(QuickenRegressionTest, NullReceiverAtQuickenedSite) {
  ClassBuilder target("app/Target", "java/lang/Object");
  target.AddDefaultConstructor();
  target.AddMethod(AccessFlags::kPublic, "m", "()I").PushInt(41).Emit(Op::kIreturn);
  AddClass(target);

  ClassBuilder cb("app/Caller", "java/lang/Object");
  // call(Target t) = t.m() — one shared invokevirtual site.
  MethodBuilder& call = cb.AddMethod(AccessFlags::kStatic, "call", "(Lapp/Target;)I");
  call.LoadLocal("L", 0).InvokeVirtual("app/Target", "m", "()I").Emit(Op::kIreturn);
  // warm() primes the site's monomorphic cache with a live receiver.
  MethodBuilder& warm = cb.AddMethod(AccessFlags::kStatic, "warm", "()I");
  warm.New("app/Target").Emit(Op::kDup)
      .InvokeSpecial("app/Target", "<init>", "()V")
      .InvokeStatic("app/Caller", "call", "(Lapp/Target;)I")
      .Emit(Op::kIreturn);
  // trip() sends null through the now-quickened site.
  MethodBuilder& trip = cb.AddMethod(AccessFlags::kStatic, "trip", "()I");
  trip.PushNull().InvokeStatic("app/Caller", "call", "(Lapp/Target;)I").Emit(Op::kIreturn);
  AddClass(cb);

  for (bool quicken : {true, false}) {
    Machine machine(EngineConfig(quicken), &provider_);
    auto warm_outcome = machine.CallStatic("app/Caller", "warm", "()I");
    ASSERT_TRUE(warm_outcome.ok()) << warm_outcome.error().ToString();
    ASSERT_FALSE(warm_outcome->threw);
    EXPECT_EQ(warm_outcome->value.AsInt(), 41);

    auto trip_outcome = machine.CallStatic("app/Caller", "trip", "()I");
    ASSERT_TRUE(trip_outcome.ok()) << trip_outcome.error().ToString();
    EXPECT_TRUE(trip_outcome->threw) << "quicken=" << quicken;
    EXPECT_EQ(trip_outcome->exception_class, "java/lang/NullPointerException");
    EXPECT_EQ(trip_outcome->exception_message, "invoke on null receiver");
  }
}

// A polymorphic site must re-resolve on an inline-cache miss: after warming
// the cache with one receiver class, dispatching a subclass through the same
// quickened site must call the override, not the cached target.
TEST_F(QuickenRegressionTest, CacheMissRedispatchesOnReceiverChange) {
  ClassBuilder base("app/Base", "java/lang/Object");
  base.AddDefaultConstructor();
  base.AddMethod(AccessFlags::kPublic, "m", "()I").PushInt(1).Emit(Op::kIreturn);
  AddClass(base);
  ClassBuilder sub("app/Sub", "app/Base");
  sub.AddDefaultConstructor();
  sub.AddMethod(AccessFlags::kPublic, "m", "()I").PushInt(2).Emit(Op::kIreturn);
  AddClass(sub);

  ClassBuilder cb("app/Poly", "java/lang/Object");
  MethodBuilder& call = cb.AddMethod(AccessFlags::kStatic, "call", "(Lapp/Base;)I");
  call.LoadLocal("L", 0).InvokeVirtual("app/Base", "m", "()I").Emit(Op::kIreturn);
  MethodBuilder& go = cb.AddMethod(AccessFlags::kStatic, "go", "()I");
  // call(new Base()) * 10 + call(new Sub()) == 12 iff dispatch is correct.
  go.New("app/Base").Emit(Op::kDup).InvokeSpecial("app/Base", "<init>", "()V")
      .InvokeStatic("app/Poly", "call", "(Lapp/Base;)I")
      .PushInt(10).Emit(Op::kImul)
      .New("app/Sub").Emit(Op::kDup).InvokeSpecial("app/Sub", "<init>", "()V")
      .InvokeStatic("app/Poly", "call", "(Lapp/Base;)I")
      .Emit(Op::kIadd).Emit(Op::kIreturn);
  AddClass(cb);

  for (bool quicken : {true, false}) {
    Machine machine(EngineConfig(quicken), &provider_);
    auto outcome = machine.CallStatic("app/Poly", "go", "()I");
    ASSERT_TRUE(outcome.ok()) << outcome.error().ToString();
    ASSERT_FALSE(outcome->threw);
    EXPECT_EQ(outcome->value.AsInt(), 12) << "quicken=" << quicken;
  }
}

// Inline-cache correctness across class redefinition: a client that loads a
// class through the proxy, then a second client after the origin redefined it
// and the proxy's InvalidateCache dropped the stale rewrite, must each see
// their own version — per-machine quickening state (and the process-global
// symbol interner) must not leak resolution results between the two.
TEST(QuickenProxyTest, InlineCachesSurviveClassRedefinition) {
  auto build_version = [](int result) {
    ClassBuilder target("app/Svc", "java/lang/Object");
    target.AddDefaultConstructor();
    target.AddMethod(AccessFlags::kPublic, "answer", "()I").PushInt(result).Emit(Op::kIreturn);
    auto built = target.Build();
    EXPECT_TRUE(built.ok());
    return WriteClassFile(built.value()).value();
  };
  ClassBuilder cb("app/Main", "java/lang/Object");
  MethodBuilder& go = cb.AddMethod(AccessFlags::kStatic, "go", "()I");
  go.New("app/Svc").Emit(Op::kDup).InvokeSpecial("app/Svc", "<init>", "()V")
      .InvokeVirtual("app/Svc", "answer", "()I").Emit(Op::kIreturn);
  Bytes main_bytes = WriteClassFile(cb.Build().value()).value();

  // Origin server whose app/Svc can be redefined between requests.
  MapClassProvider origin;
  origin.Add("app/Main", main_bytes);
  origin.Add("app/Svc", build_version(7));

  std::vector<ClassFile> syslib = BuildSystemLibrary();
  MapClassEnv library_env;
  for (const ClassFile& cls : syslib) {
    library_env.Add(&cls);
  }
  DvmProxy proxy({}, &library_env, &origin);

  // A provider view that pulls every class through the proxy.
  struct ProxyProvider : ClassProvider {
    DvmProxy* proxy;
    MapClassProvider* syslib_provider;
    Result<Bytes> FetchClass(const std::string& class_name) override {
      if (syslib_provider->Has(class_name)) {
        return syslib_provider->FetchClass(class_name);
      }
      DVM_ASSIGN_OR_RETURN(ProxyResponse response, proxy->HandleRequest(class_name));
      return response.data;
    }
  };
  MapClassProvider syslib_provider;
  InstallSystemLibrary(syslib_provider);
  ProxyProvider through_proxy;
  through_proxy.proxy = &proxy;
  through_proxy.syslib_provider = &syslib_provider;

  MachineConfig config;
  config.quicken = true;
  Machine first(config, &through_proxy);
  auto v1 = first.CallStatic("app/Main", "go", "()I");
  ASSERT_TRUE(v1.ok()) << v1.error().ToString();
  EXPECT_EQ(v1->value.AsInt(), 7);

  // Redefine the class at the origin and drop the proxy's cached rewrite.
  origin.Add("app/Svc", build_version(13));
  proxy.InvalidateCache();

  Machine second(config, &through_proxy);
  auto v2 = second.CallStatic("app/Main", "go", "()I");
  ASSERT_TRUE(v2.ok()) << v2.error().ToString();
  EXPECT_EQ(v2->value.AsInt(), 13);

  // The first client's quickened state still dispatches to ITS version.
  auto v1_again = first.CallStatic("app/Main", "go", "()I");
  ASSERT_TRUE(v1_again.ok()) << v1_again.error().ToString();
  EXPECT_EQ(v1_again->value.AsInt(), 7);
  EXPECT_GT(first.counters().quickened_sites, 0u);
  EXPECT_GT(second.counters().quickened_sites, 0u);
}

// Quick forms are runtime-internal: a class file carrying one on the wire
// must be rejected by verification, never reach an engine.
TEST(QuickenVerifierTest, WireQuickOpcodeIsRejected) {
  ClassBuilder cb("app/Hostile", "java/lang/Object");
  cb.AddMethod(AccessFlags::kStatic, "f", "()I").PushInt(3).Emit(Op::kIreturn);
  ClassFile cls = cb.Build().value();
  // Patch the first code byte to getfield_quick (0xd4).
  MethodInfo* f = cls.FindMethod("f", "()I");
  ASSERT_NE(f, nullptr);
  ASSERT_TRUE(f->code.has_value());
  f->code->code[0] = 0xd4;

  MapClassEnv env;
  auto verified = VerifyClass(cls, env);
  ASSERT_FALSE(verified.ok());
  EXPECT_EQ(verified.error().code, ErrorCode::kVerifyError);
}

TEST(QuickenDisasmTest, QuickFormsAreAnnotated) {
  // Field quick forms annotate the resolved slot, not a constant-pool index.
  EXPECT_EQ(DisassembleInstr(nullptr, Instr{Op::kGetfieldQuick, 5, 0}),
            "getfield_quick #5 (slot)");
  EXPECT_EQ(DisassembleInstr(nullptr, Instr{Op::kPutfieldQuick, 2, 0}),
            "putfield_quick #2 (slot)");
  // Cache-resident payloads print their site index.
  std::string ldc = DisassembleInstr(nullptr, Instr{Op::kLdcQuick, 9, 0});
  EXPECT_NE(ldc.find("ldc_quick"), std::string::npos) << ldc;
  std::string iv = DisassembleInstr(nullptr, Instr{Op::kInvokevirtualQuick, 4, 0});
  EXPECT_NE(iv.find("invokevirtual_quick"), std::string::npos) << iv;
}

TEST(QuickenDispatchTest, DispatchModeMatchesBuildConfiguration) {
#if defined(DVM_THREADED_DISPATCH) && (defined(__GNUC__) || defined(__clang__))
  EXPECT_STREQ(InterpreterDispatchMode(), "threaded");
#else
  EXPECT_STREQ(InterpreterDispatchMode(), "switch");
#endif
}

}  // namespace
}  // namespace dvm
