file(REMOVE_RECURSE
  "libdvm_compiler.a"
)
