#include "src/runtime/guestlib.h"

#include "src/bytecode/builder.h"

namespace dvm {
namespace {

constexpr uint16_t kPub = AccessFlags::kPublic;
constexpr const char* kVec = "java/util/Vector";
constexpr const char* kMap = "java/util/IntMap";
constexpr const char* kObjArr = "[Ljava/lang/Object;";

ClassFile Must(Result<ClassFile> r) {
  if (!r.ok()) {
    std::abort();
  }
  return std::move(r).value();
}

}  // namespace

ClassFile BuildGuestVector() {
  ClassBuilder cb(kVec, "java/lang/Object");
  cb.AddField(kPub, "elements", kObjArr);
  cb.AddField(kPub, "count", "I");

  // Vector() { elements = new Object[8]; count = 0; }
  {
    MethodBuilder& m = cb.AddMethod(kPub, "<init>", "()V");
    m.Emit(Op::kAload, 0).InvokeSpecial("java/lang/Object", "<init>", "()V");
    m.Emit(Op::kAload, 0).PushInt(8).ANewArray("java/lang/Object");
    m.PutField(kVec, "elements", kObjArr);
    m.Emit(Op::kAload, 0).PushInt(0).PutField(kVec, "count", "I");
    m.Emit(Op::kReturn);
  }

  // int size() { return count; }
  {
    MethodBuilder& m = cb.AddMethod(kPub, "size", "()I");
    m.Emit(Op::kAload, 0).GetField(kVec, "count", "I").Emit(Op::kIreturn);
  }

  // void add(Object o) { if (count == elements.length) grow; elements[count++] = o; }
  {
    MethodBuilder& m = cb.AddMethod(kPub, "add", "(Ljava/lang/Object;)V");
    Label store = m.NewLabel(), copy = m.NewLabel(), copy_done = m.NewLabel();
    m.Emit(Op::kAload, 0).GetField(kVec, "count", "I");
    m.Emit(Op::kAload, 0).GetField(kVec, "elements", kObjArr).Emit(Op::kArraylength);
    m.Branch(Op::kIfIcmpne, store);
    // grow: Object[] bigger = new Object[count * 2]; copy; elements = bigger;
    m.Emit(Op::kAload, 0).GetField(kVec, "count", "I").PushInt(2).Emit(Op::kImul);
    m.ANewArray("java/lang/Object").StoreLocal(kObjArr, 2);
    m.PushInt(0).StoreLocal("I", 3);
    m.Bind(copy);
    m.LoadLocal("I", 3).Emit(Op::kAload, 0).GetField(kVec, "count", "I");
    m.Branch(Op::kIfIcmpge, copy_done);
    m.LoadLocal(kObjArr, 2).LoadLocal("I", 3);
    m.Emit(Op::kAload, 0).GetField(kVec, "elements", kObjArr);
    m.LoadLocal("I", 3).Emit(Op::kAaload).Emit(Op::kAastore);
    m.Emit(Op::kIinc, 3, 1).Branch(Op::kGoto, copy);
    m.Bind(copy_done);
    m.Emit(Op::kAload, 0).LoadLocal(kObjArr, 2).PutField(kVec, "elements", kObjArr);
    m.Bind(store);
    m.Emit(Op::kAload, 0).GetField(kVec, "elements", kObjArr);
    m.Emit(Op::kAload, 0).GetField(kVec, "count", "I");
    m.Emit(Op::kAload, 1).Emit(Op::kAastore);
    m.Emit(Op::kAload, 0).Emit(Op::kDup).GetField(kVec, "count", "I");
    m.PushInt(1).Emit(Op::kIadd).PutField(kVec, "count", "I");
    m.Emit(Op::kReturn);
  }

  // Object get(int i) { bounds-check; return elements[i]; }
  {
    MethodBuilder& m = cb.AddMethod(kPub, "get", "(I)Ljava/lang/Object;");
    Label bad = m.NewLabel();
    m.Emit(Op::kIload, 1).Branch(Op::kIflt, bad);
    m.Emit(Op::kIload, 1).Emit(Op::kAload, 0).GetField(kVec, "count", "I");
    m.Branch(Op::kIfIcmpge, bad);
    m.Emit(Op::kAload, 0).GetField(kVec, "elements", kObjArr);
    m.Emit(Op::kIload, 1).Emit(Op::kAaload).Emit(Op::kAreturn);
    m.Bind(bad);
    m.New("java/lang/ArrayIndexOutOfBoundsException").Emit(Op::kDup);
    m.InvokeSpecial("java/lang/ArrayIndexOutOfBoundsException", "<init>", "()V");
    m.Emit(Op::kAthrow);
  }

  // void set(int i, Object o) { bounds-check; elements[i] = o; }
  {
    MethodBuilder& m = cb.AddMethod(kPub, "set", "(ILjava/lang/Object;)V");
    Label bad = m.NewLabel();
    m.Emit(Op::kIload, 1).Branch(Op::kIflt, bad);
    m.Emit(Op::kIload, 1).Emit(Op::kAload, 0).GetField(kVec, "count", "I");
    m.Branch(Op::kIfIcmpge, bad);
    m.Emit(Op::kAload, 0).GetField(kVec, "elements", kObjArr);
    m.Emit(Op::kIload, 1).Emit(Op::kAload, 2).Emit(Op::kAastore);
    m.Emit(Op::kReturn);
    m.Bind(bad);
    m.New("java/lang/ArrayIndexOutOfBoundsException").Emit(Op::kDup);
    m.InvokeSpecial("java/lang/ArrayIndexOutOfBoundsException", "<init>", "()V");
    m.Emit(Op::kAthrow);
  }
  return Must(cb.Build());
}

ClassFile BuildGuestIntMap() {
  ClassBuilder cb(kMap, "java/lang/Object");
  cb.AddField(kPub, "keys", "[I");
  cb.AddField(kPub, "values", "[I");
  cb.AddField(kPub, "flags", "[I");  // 1 = slot occupied
  cb.AddField(kPub, "count", "I");
  cb.AddField(kPub, "cap", "I");

  // Shared helper for the constructor and grow(): allocate tables of `cap`.
  auto emit_alloc_tables = [](MethodBuilder& m) {
    m.Emit(Op::kAload, 0).Emit(Op::kAload, 0).GetField(kMap, "cap", "I");
    m.Emit(Op::kNewarray, static_cast<int>(ArrayKind::kInt)).PutField(kMap, "keys", "[I");
    m.Emit(Op::kAload, 0).Emit(Op::kAload, 0).GetField(kMap, "cap", "I");
    m.Emit(Op::kNewarray, static_cast<int>(ArrayKind::kInt)).PutField(kMap, "values", "[I");
    m.Emit(Op::kAload, 0).Emit(Op::kAload, 0).GetField(kMap, "cap", "I");
    m.Emit(Op::kNewarray, static_cast<int>(ArrayKind::kInt)).PutField(kMap, "flags", "[I");
    m.Emit(Op::kAload, 0).PushInt(0).PutField(kMap, "count", "I");
  };

  // IntMap() { cap = 16; alloc tables; }
  {
    MethodBuilder& m = cb.AddMethod(kPub, "<init>", "()V");
    m.Emit(Op::kAload, 0).InvokeSpecial("java/lang/Object", "<init>", "()V");
    m.Emit(Op::kAload, 0).PushInt(16).PutField(kMap, "cap", "I");
    emit_alloc_tables(m);
    m.Emit(Op::kReturn);
  }

  // int size() { return count; }
  {
    MethodBuilder& m = cb.AddMethod(kPub, "size", "()I");
    m.Emit(Op::kAload, 0).GetField(kMap, "count", "I").Emit(Op::kIreturn);
  }

  // void put(int k, int v)
  {
    MethodBuilder& m = cb.AddMethod(kPub, "put", "(II)V");
    Label probe = m.NewLabel(), empty = m.NewLabel(), write = m.NewLabel();
    Label no_grow = m.NewLabel();
    // if ((count + 1) * 4 >= cap * 3) grow();
    m.Emit(Op::kAload, 0).GetField(kMap, "count", "I").PushInt(1).Emit(Op::kIadd);
    m.PushInt(4).Emit(Op::kImul);
    m.Emit(Op::kAload, 0).GetField(kMap, "cap", "I").PushInt(3).Emit(Op::kImul);
    m.Branch(Op::kIfIcmplt, no_grow);
    m.Emit(Op::kAload, 0).InvokeVirtual(kMap, "grow", "()V");
    m.Bind(no_grow);
    // idx = (k * -1640531527) & (cap - 1)
    m.Emit(Op::kIload, 1).PushInt(-1640531527).Emit(Op::kImul);
    m.Emit(Op::kAload, 0).GetField(kMap, "cap", "I").PushInt(1).Emit(Op::kIsub);
    m.Emit(Op::kIand).StoreLocal("I", 3);
    m.Bind(probe);
    // if (!flags[idx]) -> empty slot
    m.Emit(Op::kAload, 0).GetField(kMap, "flags", "[I").LoadLocal("I", 3);
    m.Emit(Op::kIaload).Branch(Op::kIfeq, empty);
    // if (keys[idx] == k) -> overwrite value
    m.Emit(Op::kAload, 0).GetField(kMap, "keys", "[I").LoadLocal("I", 3);
    m.Emit(Op::kIaload).Emit(Op::kIload, 1).Branch(Op::kIfIcmpeq, write);
    // idx = (idx + 1) & (cap - 1)
    m.LoadLocal("I", 3).PushInt(1).Emit(Op::kIadd);
    m.Emit(Op::kAload, 0).GetField(kMap, "cap", "I").PushInt(1).Emit(Op::kIsub);
    m.Emit(Op::kIand).StoreLocal("I", 3);
    m.Branch(Op::kGoto, probe);
    m.Bind(empty);
    m.Emit(Op::kAload, 0).GetField(kMap, "flags", "[I").LoadLocal("I", 3).PushInt(1)
        .Emit(Op::kIastore);
    m.Emit(Op::kAload, 0).GetField(kMap, "keys", "[I").LoadLocal("I", 3)
        .Emit(Op::kIload, 1).Emit(Op::kIastore);
    m.Emit(Op::kAload, 0).Emit(Op::kDup).GetField(kMap, "count", "I").PushInt(1)
        .Emit(Op::kIadd).PutField(kMap, "count", "I");
    m.Bind(write);
    m.Emit(Op::kAload, 0).GetField(kMap, "values", "[I").LoadLocal("I", 3)
        .Emit(Op::kIload, 2).Emit(Op::kIastore);
    m.Emit(Op::kReturn);
  }

  // int get(int k, int fallback)
  {
    MethodBuilder& m = cb.AddMethod(kPub, "get", "(II)I");
    Label probe = m.NewLabel(), missing = m.NewLabel(), found = m.NewLabel();
    m.Emit(Op::kIload, 1).PushInt(-1640531527).Emit(Op::kImul);
    m.Emit(Op::kAload, 0).GetField(kMap, "cap", "I").PushInt(1).Emit(Op::kIsub);
    m.Emit(Op::kIand).StoreLocal("I", 3);
    m.Bind(probe);
    m.Emit(Op::kAload, 0).GetField(kMap, "flags", "[I").LoadLocal("I", 3);
    m.Emit(Op::kIaload).Branch(Op::kIfeq, missing);
    m.Emit(Op::kAload, 0).GetField(kMap, "keys", "[I").LoadLocal("I", 3);
    m.Emit(Op::kIaload).Emit(Op::kIload, 1).Branch(Op::kIfIcmpeq, found);
    m.LoadLocal("I", 3).PushInt(1).Emit(Op::kIadd);
    m.Emit(Op::kAload, 0).GetField(kMap, "cap", "I").PushInt(1).Emit(Op::kIsub);
    m.Emit(Op::kIand).StoreLocal("I", 3);
    m.Branch(Op::kGoto, probe);
    m.Bind(found);
    m.Emit(Op::kAload, 0).GetField(kMap, "values", "[I").LoadLocal("I", 3);
    m.Emit(Op::kIaload).Emit(Op::kIreturn);
    m.Bind(missing);
    m.Emit(Op::kIload, 2).Emit(Op::kIreturn);
  }

  // void grow(): double cap, reallocate, reinsert every occupied slot.
  {
    MethodBuilder& m = cb.AddMethod(kPub, "grow", "()V");
    Label rehash = m.NewLabel(), next = m.NewLabel(), done = m.NewLabel();
    // Stash old tables in locals.
    m.Emit(Op::kAload, 0).GetField(kMap, "keys", "[I").StoreLocal("[I", 1);
    m.Emit(Op::kAload, 0).GetField(kMap, "values", "[I").StoreLocal("[I", 2);
    m.Emit(Op::kAload, 0).GetField(kMap, "flags", "[I").StoreLocal("[I", 3);
    m.Emit(Op::kAload, 0).GetField(kMap, "cap", "I").StoreLocal("I", 4);
    // cap *= 2; fresh tables; count = 0.
    m.Emit(Op::kAload, 0).LoadLocal("I", 4).PushInt(2).Emit(Op::kImul)
        .PutField(kMap, "cap", "I");
    emit_alloc_tables(m);
    // for (i = 0; i < oldCap; i++) if (oldFlags[i]) put(oldKeys[i], oldValues[i]);
    m.PushInt(0).StoreLocal("I", 5);
    m.Bind(rehash);
    m.LoadLocal("I", 5).LoadLocal("I", 4).Branch(Op::kIfIcmpge, done);
    m.LoadLocal("[I", 3).LoadLocal("I", 5).Emit(Op::kIaload).Branch(Op::kIfeq, next);
    m.Emit(Op::kAload, 0);
    m.LoadLocal("[I", 1).LoadLocal("I", 5).Emit(Op::kIaload);
    m.LoadLocal("[I", 2).LoadLocal("I", 5).Emit(Op::kIaload);
    m.InvokeVirtual(kMap, "put", "(II)V");
    m.Bind(next);
    m.Emit(Op::kIinc, 5, 1).Branch(Op::kGoto, rehash);
    m.Bind(done);
    m.Emit(Op::kReturn);
  }
  return Must(cb.Build());
}

}  // namespace dvm
