file(REMOVE_RECURSE
  "CMakeFiles/dvm_verifier.dir/assumptions.cc.o"
  "CMakeFiles/dvm_verifier.dir/assumptions.cc.o.d"
  "CMakeFiles/dvm_verifier.dir/link_checker.cc.o"
  "CMakeFiles/dvm_verifier.dir/link_checker.cc.o.d"
  "CMakeFiles/dvm_verifier.dir/typestate.cc.o"
  "CMakeFiles/dvm_verifier.dir/typestate.cc.o.d"
  "CMakeFiles/dvm_verifier.dir/verifier.cc.o"
  "CMakeFiles/dvm_verifier.dir/verifier.cc.o.d"
  "libdvm_verifier.a"
  "libdvm_verifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvm_verifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
