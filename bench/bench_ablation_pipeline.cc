// Ablation: the parse-once/generate-once filter pipeline (section 3's "parsing
// and code generation are performed only once for all static services") versus
// naive service composition where each service re-parses and re-emits the
// class. Reported as proxy CPU under the paper's cost model.
#include "bench/bench_util.h"
#include "src/bytecode/serializer.h"
#include "src/runtime/syslib.h"
#include "src/services/monitor_service.h"
#include "src/services/security_service.h"
#include "src/services/verify_service.h"

int main() {
  using namespace dvm;
  using namespace dvm::bench;

  PrintHeader("Pipeline ablation: shared parse/emit vs per-service parse/emit",
              "Section 3 design choice");

  AppBundle app = BuildJavacupApp(1);
  std::vector<ClassFile> library = BuildSystemLibrary();
  MapClassEnv env;
  for (const auto& cls : library) {
    env.Add(&cls);
  }
  SecurityPolicy policy = PermissivePolicy();

  ProxyConfig cost;  // use its constants for accounting
  auto parse_cost = [&](size_t bytes) { return bytes * cost.nanos_per_byte_parse; };
  auto emit_cost = [&](size_t bytes) { return bytes * cost.nanos_per_byte_emit; };

  auto make_filters = [&]() {
    std::vector<std::unique_ptr<CodeFilter>> filters;
    filters.push_back(std::make_unique<VerificationFilter>());
    filters.push_back(std::make_unique<SecurityFilter>(&policy));
    filters.push_back(std::make_unique<AuditFilter>());
    return filters;
  };

  // Shared: one parse, all filters, one emit.
  uint64_t shared_nanos = 0;
  {
    auto filters = make_filters();
    for (const ClassFile& cls : app.classes) {
      Bytes wire = MustWriteClassFile(cls);
      shared_nanos += parse_cost(wire.size());
      auto parsed = ReadClassFile(wire);
      if (!parsed.ok()) {
        return 1;
      }
      ClassFile current = std::move(parsed).value();
      for (auto& filter : filters) {
        FilterContext ctx;
        ctx.env = &env;
        auto outcome = filter->Apply(current, ctx);
        if (!outcome.ok()) {
          return 1;
        }
        if (outcome->replacement.has_value()) {
          current = std::move(*outcome->replacement);
        }
      }
      shared_nanos += emit_cost(MustWriteClassFile(current).size());
    }
  }

  // Naive: every service parses its input bytes and emits output bytes.
  uint64_t naive_nanos = 0;
  {
    auto filters = make_filters();
    for (const ClassFile& cls : app.classes) {
      Bytes wire = MustWriteClassFile(cls);
      for (auto& filter : filters) {
        naive_nanos += parse_cost(wire.size());
        auto parsed = ReadClassFile(wire);
        if (!parsed.ok()) {
          return 1;
        }
        ClassFile current = std::move(parsed).value();
        FilterContext ctx;
        ctx.env = &env;
        auto outcome = filter->Apply(current, ctx);
        if (!outcome.ok()) {
          return 1;
        }
        if (outcome->replacement.has_value()) {
          current = std::move(*outcome->replacement);
        }
        wire = MustWriteClassFile(current);
        naive_nanos += emit_cost(wire.size());
      }
    }
  }

  PrintRow({"Composition", "ProxyCPU(s)", "Relative"}, 24);
  PrintRow({"shared parse/emit", FmtSeconds(shared_nanos), "1.00x"}, 24);
  PrintRow({"per-service parse/emit", FmtSeconds(naive_nanos),
            FmtDouble(static_cast<double>(naive_nanos) / shared_nanos) + "x"}, 24);
  std::printf("\nStacking three services behind one parser amortizes the dominant\n"
              "per-byte costs — the paper's internal filtering API design.\n");
  return 0;
}
