// Textual disassembly of class files, for debugging, the administration
// console's audit views, and golden tests of the rewriting services.
#ifndef SRC_BYTECODE_DISASM_H_
#define SRC_BYTECODE_DISASM_H_

#include <string>

#include "src/bytecode/classfile.h"

namespace dvm {

// One line per instruction: "  12: invokestatic dvm/rt/RTVerifier.CheckField:(...)V".
std::string DisassembleMethod(const ClassFile& cls, const MethodInfo& method);
// Full class listing: header, fields, then every method body.
std::string DisassembleClass(const ClassFile& cls);

}  // namespace dvm

#endif  // SRC_BYTECODE_DISASM_H_
