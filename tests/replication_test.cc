// Tests for the replicated proxy control plane (src/dvm/replication.h):
// 2PC epoch and artifact rounds over the ControlPlane mesh, fleet-wide
// fail-closed on abort, 2PC in-doubt (lost decision) staleness, commit-log
// recovery by replay, replay idempotence, and same-seed determinism — plus
// the cluster-wide UpdateSecurityPolicy entry point with and without
// replication enabled.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/bytecode/builder.h"
#include "src/dvm/redirect_client.h"
#include "src/dvm/replication.h"
#include "src/policy/xml.h"
#include "src/proxy/proxy.h"
#include "src/runtime/syslib.h"
#include "src/services/verify_service.h"
#include "src/simnet/fault.h"
#include "src/simnet/multicast.h"
#include "src/simnet/sim.h"

namespace dvm {
namespace {

ClassFile TrivialApp(const std::string& name) {
  ClassBuilder cb(name, "java/lang/Object");
  MethodBuilder& m = cb.AddMethod(AccessFlags::kPublic | AccessFlags::kStatic, "main", "()V");
  m.PushString("ran").InvokeStatic("java/lang/System", "println", "(Ljava/lang/String;)V");
  m.Emit(Op::kReturn);
  auto built = cb.Build();
  EXPECT_TRUE(built.ok());
  return std::move(built).value();
}

SecurityPolicy OpenPolicy() {
  return *ParseSecurityPolicy(R"(
      <policy version="1">
        <domain sid="user" code="app/*"/>
        <allow sid="user" operation="*" target="*"/>
      </policy>)");
}

std::string Cls(int i) { return "app/C" + std::to_string(i); }

class ReplicationTest : public ::testing::Test {
 protected:
  ReplicationTest() : library_(BuildSystemLibrary()) {
    InstallSystemLibrary(origin_);
    for (int i = 0; i < 12; i++) {
      origin_.AddClassFile(TrivialApp(Cls(i)));
    }
    origin_.AddClassFile(TrivialApp("app/Main"));
    for (const auto& cls : library_) {
      env_.Add(&cls);
    }
    DvmServerConfig config;
    config.policy = OpenPolicy();
    config.proxy.sign_output = true;
    server_ = std::make_unique<DvmServer>(std::move(config), &origin_);
    cluster_ = std::make_unique<ProxyCluster>(3, ProxyConfig{}, &env_, &origin_);
    for (size_t i = 0; i < cluster_->size(); i++) {
      cluster_->replica(i).AddFilter(std::make_unique<VerificationFilter>());
    }
  }

  uint64_t TotalRewrites() const {
    uint64_t total = 0;
    for (size_t i = 0; i < cluster_->size(); i++) {
      total += cluster_->replica(i).stats().Value("proxy.rewrites");
    }
    return total;
  }

  MapClassProvider origin_;
  std::vector<ClassFile> library_;
  MapClassEnv env_;
  std::unique_ptr<DvmServer> server_;
  std::unique_ptr<ProxyCluster> cluster_;
};

TEST_F(ReplicationTest, ArtifactPushConvergesPeerCaches) {
  cluster_->EnableReplication();
  ReplicationCoordinator* repl = cluster_->replication();

  RedirectingClient client(server_.get(), nullptr, DvmMachineConfig(), MakeEthernet10Mb());
  client.UseCluster(cluster_.get());
  ASSERT_TRUE(client.FetchClass("app/Main").ok());
  EXPECT_EQ(repl->stats().Value("repl.artifact_pushes"), 1u);

  // The serving replica rewrote once; the committed push installed the same
  // bytes into both peers.
  const std::string key = DvmProxy::RewriteCacheKey("app/Main", "");
  const size_t source = cluster_->RankReplicas("app/Main")[0];
  auto src = cluster_->replica(source).cache().Peek(key);
  ASSERT_TRUE(src.has_value());
  for (size_t i = 0; i < cluster_->size(); i++) {
    auto got = cluster_->replica(i).cache().Peek(key);
    ASSERT_TRUE(got.has_value()) << "replica " << i;
    EXPECT_EQ(got->main_class, src->main_class) << "replica " << i;
    EXPECT_EQ(got->epoch, src->epoch) << "replica " << i;
    if (i != source) {
      EXPECT_EQ(cluster_->replica(i).replicated_installs(), 1u);
    }
  }
  EXPECT_EQ(TotalRewrites(), 1u);

  // One rewrite serves the whole fleet: kill the source and the failover
  // replica answers from its pushed copy without re-running the pipeline.
  cluster_->SetReplicaUp(source, false);
  ASSERT_TRUE(client.FetchClass("app/Main").ok());
  EXPECT_EQ(TotalRewrites(), 1u);
  EXPECT_EQ(client.stale_epoch_rejections(), 0u);
}

TEST_F(ReplicationTest, EpochCommitInvalidatesEveryReplica) {
  cluster_->EnableReplication();
  ReplicationCoordinator* repl = cluster_->replication();
  server_->AttachCluster(cluster_.get());

  RedirectingClient client(server_.get(), nullptr, DvmMachineConfig(), MakeEthernet10Mb());
  client.UseCluster(cluster_.get());
  for (int i = 0; i < 6; i++) {
    ASSERT_TRUE(client.FetchClass(Cls(i)).ok());
  }

  // Cluster-wide policy update: one 2PC epoch round, every replica
  // invalidated and advanced in the same decision.
  ASSERT_TRUE(server_->UpdateSecurityPolicy(OpenPolicy(), client.machine().virtual_nanos()));
  EXPECT_EQ(repl->committed_epoch(), 1u);
  EXPECT_FALSE(repl->epoch_pending());
  EXPECT_EQ(repl->stats().Value("repl.epoch_commits"), 1u);
  for (size_t i = 0; i < cluster_->size(); i++) {
    EXPECT_EQ(cluster_->replica(i).policy_epoch(), 1u) << "replica " << i;
    EXPECT_EQ(cluster_->replica(i).cache().entries(), 0u) << "replica " << i;
  }

  // A client failing over right after the update can only ever see a
  // new-epoch rewrite: old artifacts are gone fleet-wide.
  ASSERT_TRUE(client.FetchClass(Cls(6)).ok());
  EXPECT_EQ(client.stale_epoch_rejections(), 0u);
  const std::string key = DvmProxy::RewriteCacheKey(Cls(6), "");
  auto entry = cluster_->replica(cluster_->RankReplicas(Cls(6))[0]).cache().Peek(key);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->epoch, 1u);
}

TEST_F(ReplicationTest, PartitionDuringPrepareAbortsFleetWide) {
  // Cut the coordinator's control link to replica 1 for the first second: the
  // prepare leg is lost, the vote deadline passes, the round aborts.
  FaultPlan plan;
  plan.seed = 7;
  plan.links[ControlPlane::LinkName(0, 1)].outages.push_back({0, 1 * kSecond});
  FaultInjector injector(plan);
  cluster_->SetFaultInjector(&injector);
  cluster_->EnableReplication();
  ReplicationCoordinator* repl = cluster_->replication();

  RoundResult round = repl->CommitPolicyEpoch(500 * kMillisecond);
  EXPECT_FALSE(round.committed);
  EXPECT_EQ(round.participants, 3u);
  EXPECT_TRUE(repl->epoch_pending());
  EXPECT_EQ(repl->committed_epoch(), 0u);
  EXPECT_EQ(repl->stats().Value("repl.aborts"), 1u);
  EXPECT_EQ(repl->stats().Value("repl.timeouts"), 1u);

  // Abort is fleet-wide fail-closed: even the replicas that voted ACK cannot
  // prove which policy is current, so nobody serves.
  for (size_t i = 0; i < cluster_->size(); i++) {
    EXPECT_FALSE(repl->CanServe(i, 600 * kMillisecond)) << "replica " << i;
  }

  // A client sees typed unavailability — stale-epoch refusals at every
  // replica, then the fail-closed verdict — never an old-epoch artifact.
  RedirectingClient client(server_.get(), nullptr, DvmMachineConfig(), MakeEthernet10Mb());
  client.UseCluster(cluster_.get());
  auto bytes = client.FetchClass("app/Main");
  ASSERT_FALSE(bytes.ok());
  EXPECT_EQ(bytes.error().code, ErrorCode::kUnavailable);
  EXPECT_GT(client.stale_epoch_rejections(), 0u);
  EXPECT_EQ(client.fail_closed_rejections(), 1u);
  EXPECT_EQ(TotalRewrites(), 0u);  // no replica served anything

  // After the partition heals, retrying commits the *same* pending proposal
  // and reopens the fleet.
  RoundResult retry = repl->CommitPolicyEpoch(2 * kSecond);
  EXPECT_TRUE(retry.committed);
  EXPECT_EQ(retry.epoch, round.epoch);
  EXPECT_FALSE(repl->epoch_pending());
  EXPECT_EQ(repl->committed_epoch(), 1u);
  for (size_t i = 0; i < cluster_->size(); i++) {
    EXPECT_TRUE(repl->CanServe(i, 2 * kSecond)) << "replica " << i;
  }
}

TEST_F(ReplicationTest, LostDecisionMarksAckedPeerStaleUntilRejoin) {
  // Open a partition on ctrl-0-1 *between* the prepare (sent at t=0, arrives
  // ~215 us) and the decision (sent after the votes, ~420 us): replica 1 ACKs
  // the prepare and then never learns the outcome — classic 2PC in-doubt.
  FaultPlan plan;
  plan.seed = 9;
  plan.links[ControlPlane::LinkName(0, 1)].outages.push_back({300'000, kSimTimeForever});
  FaultInjector injector(plan);
  cluster_->SetFaultInjector(&injector);
  cluster_->EnableReplication();
  ReplicationCoordinator* repl = cluster_->replication();

  RoundResult round = repl->CommitPolicyEpoch(0);
  ASSERT_TRUE(round.committed);  // every member voted ACK before the cut
  EXPECT_EQ(round.acks, 2u);
  EXPECT_EQ(repl->committed_epoch(), 1u);
  EXPECT_EQ(repl->stats().Value("repl.stale_marks"), 1u);

  // The in-doubt replica fails closed; the rest of the fleet is current.
  EXPECT_TRUE(repl->stale(1));
  EXPECT_FALSE(repl->InSync(1));
  EXPECT_FALSE(repl->CanServe(1, kSecond));
  EXPECT_EQ(repl->applied_epoch(1), 0u);
  EXPECT_TRUE(repl->CanServe(0, kSecond));
  EXPECT_TRUE(repl->CanServe(2, kSecond));
  EXPECT_EQ(repl->applied_epoch(2), 1u);

  // Clients keep succeeding: fetches routed at the stale replica are refused
  // fast and fail over; rounds exclude it, so pushes commit between 0 and 2.
  RedirectingClient client(server_.get(), nullptr, DvmMachineConfig(), MakeEthernet10Mb());
  client.UseCluster(cluster_.get());
  std::vector<std::string> fetched;
  for (int i = 0; i < 12; i++) {
    ASSERT_TRUE(client.FetchClass(Cls(i)).ok()) << Cls(i);
    fetched.push_back(Cls(i));
  }
  EXPECT_GT(client.stale_epoch_rejections(), 0u);
  const uint64_t rewrites_on_1 = cluster_->replica(1).stats().Value("proxy.rewrites");
  EXPECT_EQ(rewrites_on_1, 0u);

  // Rejoin replays the log suffix — the epoch it missed plus every pushed
  // artifact — instead of re-running the pipeline.
  size_t replayed = repl->Rejoin(1, 2 * kSecond);
  EXPECT_EQ(replayed, repl->cluster_log().records().size());
  EXPECT_FALSE(repl->stale(1));
  EXPECT_TRUE(repl->InSync(1));
  EXPECT_TRUE(repl->CanServe(1, 2 * kSecond));
  EXPECT_EQ(repl->applied_epoch(1), repl->committed_epoch());
  EXPECT_EQ(repl->replica_log(1).Digest(), repl->cluster_log().Digest());
  EXPECT_EQ(cluster_->replica(1).stats().Value("proxy.rewrites"), rewrites_on_1);
  EXPECT_GT(cluster_->replica(1).replicated_installs(), 0u);

  // Byte-identical convergence with the replicas that stayed in the rounds.
  for (const std::string& name : fetched) {
    const std::string key = DvmProxy::RewriteCacheKey(name, "");
    auto a = cluster_->replica(2).cache().Peek(key);
    auto b = cluster_->replica(1).cache().Peek(key);
    ASSERT_TRUE(a.has_value()) << name;
    ASSERT_TRUE(b.has_value()) << name;
    EXPECT_EQ(a->main_class, b->main_class) << name;
    EXPECT_EQ(a->epoch, b->epoch) << name;
  }

  // Replay is idempotent: a second rejoin finds nothing to do.
  EXPECT_EQ(repl->Rejoin(1, 3 * kSecond), 0u);
  EXPECT_EQ(repl->replica_log(1).Digest(), repl->cluster_log().Digest());
}

TEST_F(ReplicationTest, OutageReplicaCatchesUpByLogReplay) {
  FaultPlan plan;
  plan.seed = 11;
  plan.replica_outages[2].push_back({0, 10 * kSecond});
  FaultInjector injector(plan);
  cluster_->SetFaultInjector(&injector);
  cluster_->EnableReplication();
  ReplicationCoordinator* repl = cluster_->replication();

  // Pre-epoch artifact (committed between the two live members), then an
  // epoch bump that invalidates it, then two post-epoch artifacts — a log
  // whose *order* matters for convergence.
  ASSERT_TRUE(cluster_->replica(0).HandleRequest(Cls(0)).ok());
  EXPECT_TRUE(repl->ReplicateArtifact(0, Cls(0), "", 1 * kMillisecond).committed);
  EXPECT_TRUE(repl->CommitPolicyEpoch(2 * kMillisecond).committed);
  ASSERT_TRUE(cluster_->replica(0).HandleRequest(Cls(1)).ok());
  EXPECT_TRUE(repl->ReplicateArtifact(0, Cls(1), "", 3 * kMillisecond).committed);
  ASSERT_TRUE(cluster_->replica(1).HandleRequest(Cls(2)).ok());
  EXPECT_TRUE(repl->ReplicateArtifact(1, Cls(2), "", 4 * kMillisecond).committed);
  ASSERT_EQ(repl->cluster_log().records().size(), 4u);

  // Back up after the outage window, but behind the log: fails closed.
  EXPECT_FALSE(repl->InSync(2));
  EXPECT_FALSE(repl->CanServe(2, 11 * kSecond));

  size_t replayed = repl->Rejoin(2, 11 * kSecond);
  EXPECT_EQ(replayed, 4u);
  EXPECT_EQ(repl->stats().Value("repl.replayed_records"), 4u);
  EXPECT_TRUE(repl->CanServe(2, 11 * kSecond));
  EXPECT_EQ(repl->applied_epoch(2), repl->committed_epoch());
  EXPECT_EQ(repl->replica_log(2).Digest(), repl->cluster_log().Digest());

  // Recovery never ran the pipeline: every artifact arrived as an install.
  EXPECT_EQ(cluster_->replica(2).stats().Value("proxy.rewrites"), 0u);
  EXPECT_EQ(cluster_->replica(2).replicated_installs(), 3u);

  // Ordered replay reproduced the epoch invalidation: the pre-epoch artifact
  // is absent everywhere, the post-epoch artifacts are byte-identical.
  EXPECT_FALSE(cluster_->replica(2).cache().Peek(DvmProxy::RewriteCacheKey(Cls(0), ""))
                   .has_value());
  for (int i = 1; i <= 2; i++) {
    const std::string key = DvmProxy::RewriteCacheKey(Cls(i), "");
    auto a = cluster_->replica(0).cache().Peek(key);
    auto b = cluster_->replica(2).cache().Peek(key);
    ASSERT_TRUE(a.has_value()) << Cls(i);
    ASSERT_TRUE(b.has_value()) << Cls(i);
    EXPECT_EQ(a->main_class, b->main_class) << Cls(i);
    EXPECT_EQ(a->epoch, b->epoch) << Cls(i);
  }

  EXPECT_EQ(repl->Rejoin(2, 12 * kSecond), 0u);
}

TEST_F(ReplicationTest, NakVoteAbortsRoundAndRetryCommits) {
  cluster_->EnableReplication();
  ReplicationCoordinator* repl = cluster_->replication();

  repl->ForceNakOnce(1);
  RoundResult round = repl->CommitPolicyEpoch(0);
  EXPECT_FALSE(round.committed);
  EXPECT_EQ(repl->stats().Value("repl.naks"), 1u);
  EXPECT_TRUE(repl->epoch_pending());
  // A NAK is an answered round, not an in-doubt one: the voter saw the abort
  // decision and stays in sync — but the fleet still fails closed until the
  // proposal commits.
  EXPECT_TRUE(repl->InSync(1));
  EXPECT_FALSE(repl->CanServe(2, kMillisecond));

  RoundResult retry = repl->CommitPolicyEpoch(kMillisecond);
  EXPECT_TRUE(retry.committed);
  EXPECT_EQ(retry.epoch, round.epoch);
  EXPECT_EQ(repl->committed_epoch(), 1u);
  EXPECT_TRUE(repl->CanServe(2, 2 * kMillisecond));
}

TEST_F(ReplicationTest, PolicyUpdateWithoutReplicationClearsEveryReplica) {
  // The pre-replication cluster path: AttachCluster makes UpdateSecurityPolicy
  // invalidate every replica synchronously (the old bug invalidated only the
  // server's own proxy, leaving replicas serving old-policy rewrites).
  server_->AttachCluster(cluster_.get());
  for (size_t i = 0; i < cluster_->size(); i++) {
    ASSERT_TRUE(cluster_->replica(i).HandleRequest(Cls(static_cast<int>(i))).ok());
    EXPECT_GT(cluster_->replica(i).cache().entries(), 0u);
  }

  ASSERT_TRUE(server_->UpdateSecurityPolicy(OpenPolicy()));
  for (size_t i = 0; i < cluster_->size(); i++) {
    EXPECT_EQ(cluster_->replica(i).cache().entries(), 0u) << "replica " << i;
  }

  // Failover right after the update cannot surface a pre-update artifact:
  // whichever replica answers has to rewrite fresh.
  const uint64_t rewrites_before = TotalRewrites();
  RedirectingClient client(server_.get(), nullptr, DvmMachineConfig(), MakeEthernet10Mb());
  client.UseCluster(cluster_.get());
  ASSERT_TRUE(client.FetchClass(Cls(0)).ok());
  EXPECT_EQ(TotalRewrites(), rewrites_before + 1);
}

// Builds a fresh 3-replica cluster over a lossy, jittery control mesh, runs a
// fixed script (pushes, epoch rounds with retries, rejoins), and returns the
// coordinator fingerprint. Same seed must give bit-identical control-plane
// state.
uint64_t RunLossyScenario(uint64_t seed) {
  MapClassProvider origin;
  InstallSystemLibrary(origin);
  for (int i = 0; i < 6; i++) {
    origin.AddClassFile(TrivialApp(Cls(i)));
  }
  std::vector<ClassFile> library = BuildSystemLibrary();
  MapClassEnv env;
  for (const auto& cls : library) {
    env.Add(&cls);
  }
  ProxyCluster cluster(3, ProxyConfig{}, &env, &origin);
  for (size_t i = 0; i < cluster.size(); i++) {
    cluster.replica(i).AddFilter(std::make_unique<VerificationFilter>());
  }
  FaultPlan plan;
  plan.seed = seed;
  plan.default_link = LinkFaults{0.2, 0, kMillisecond};
  FaultInjector injector(plan);
  cluster.SetFaultInjector(&injector);
  cluster.EnableReplication();
  ReplicationCoordinator* repl = cluster.replication();

  SimTime now = kMillisecond;
  for (int i = 0; i < 3; i++) {
    const size_t source = static_cast<size_t>(i) % cluster.size();
    (void)cluster.replica(source).HandleRequest(Cls(i));
    repl->ReplicateArtifact(source, Cls(i), "", now);
    now += kMillisecond;
  }
  for (int attempt = 0; attempt < 4; attempt++) {
    if (repl->CommitPolicyEpoch(now).committed) {
      break;
    }
    now += 100 * kMillisecond;
  }
  for (size_t r = 0; r < cluster.size(); r++) {
    if (!repl->InSync(r)) {
      repl->Rejoin(r, now);
    }
  }
  return repl->Fingerprint();
}

TEST(ReplicationDeterminismTest, SameSeedRunsProduceIdenticalFingerprints) {
  const uint64_t a = RunLossyScenario(5);
  const uint64_t b = RunLossyScenario(5);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace dvm
