// Continuous interpreter profiling (the paper's profiling service made real,
// and the profile feed for the planned template JIT).
//
// Two independent mechanisms:
//
//  1. Always-on counters, zero-allocation, compiled into both engines:
//     PreparedMethod::invocations/backedges and per-site InlineCache
//     hits/misses/transitions. CollectMethodProfile() walks every prepared
//     method of every loaded class and renders the tier-up view (hot methods,
//     loopy methods, megamorphic sites).
//
//  2. Virtual-clock sampled call-stack profiles (ExecutionProfiler). The
//     interpreter polls the profiler at method entry and taken backedges;
//     when the virtual clock passes the next sample deadline, the guest call
//     stack is folded into a map keyed by the root-first frame path. Because
//     the trigger is the deterministic virtual clock — not a wall timer —
//     identical seeds produce byte-identical profiles, across both dispatch
//     modes and both event-queue backends.
//
// Exports are byte-deterministic text: collapsed-stack lines (flamegraph.pl /
// speedscope input) and a pprof-style plain-text profile (integer math only).
#ifndef SRC_RUNTIME_PROFILE_H_
#define SRC_RUNTIME_PROFILE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dvm {

class Machine;
class ClassRegistry;

struct ProfilerConfig {
  // Virtual nanoseconds between samples. The interpreter's cost model charges
  // ~100ns per instruction, so the default samples roughly every thousand
  // instructions — dense enough that kernel hot loops dominate the profile,
  // sparse enough that sampling stays off the fast path. The default is
  // PRIME: a tight guest loop has a constant virtual cost per iteration, and
  // any period it divides would phase-lock every sample onto the same poll
  // site (one stack absorbs 100% of samples). A prime period steps the
  // sample phase through the loop body instead.
  uint64_t sample_period_nanos = 99'991;
};

// A sampled call-stack profile over the virtual clock. Not thread-safe: one
// profiler belongs to one Machine (one guest thread of execution).
class ExecutionProfiler {
 public:
  explicit ExecutionProfiler(ProfilerConfig config = {});

  // Cheap poll inlined into the interpreter's method-entry/backedge paths.
  bool SampleDue(uint64_t virtual_now) const { return virtual_now >= next_sample_at_; }
  // Folds the machine's current guest stack into the profile and advances the
  // deadline by whole periods past `virtual_now`, so sampling stays
  // phase-locked to the virtual clock no matter how late the poll fired.
  void TakeSample(const Machine& machine, uint64_t virtual_now);

  uint64_t samples() const { return samples_; }
  uint64_t sample_period_nanos() const { return config_.sample_period_nanos; }

  // Collapsed-stack ("folded") lines: `root;caller;leaf count\n`, sorted by
  // stack path. Feed to flamegraph.pl or speedscope as-is.
  std::string CollapsedStacks() const;
  // pprof-style plain text: a header, then one line per unique stack with its
  // sample count and virtual-time share in parts-per-million (integer math
  // only, so the bytes never depend on floating-point formatting).
  std::string PprofText() const;

  void Reset();

 private:
  ProfilerConfig config_;
  uint64_t next_sample_at_;
  uint64_t samples_ = 0;
  // Stack path -> sample count. std::map iteration is name-sorted, which
  // makes every export deterministic without a sort pass.
  std::map<std::string, uint64_t> stacks_;
};

// One row of the always-on method profile, aggregated from PreparedMethod and
// its inline-cache sites.
struct MethodProfileRow {
  std::string method;  // "pkg/Class.name:descriptor"
  uint64_t invocations = 0;
  uint64_t backedges = 0;
  uint64_t ic_hits = 0;
  uint64_t ic_misses = 0;
  uint64_t megamorphic_sites = 0;
};

// Sites with at least this many receiver transitions count as megamorphic.
inline constexpr uint64_t kMegamorphicThreshold = 4;

// Every prepared method of every loaded class, sorted by invocations
// descending (ties broken by name, so the order is deterministic).
std::vector<MethodProfileRow> CollectMethodProfile(ClassRegistry& registry);

// Fixed-width text table of the top `top_n` rows — the `dvm_top` hot-method
// view and the bench_interp --profile artifact.
std::string MethodProfileTable(const std::vector<MethodProfileRow>& rows, size_t top_n);

}  // namespace dvm

#endif  // SRC_RUNTIME_PROFILE_H_
