#include "src/dvm/worker_pool.h"

namespace dvm {

WorkerPool::WorkerPool(size_t num_threads) {
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; i++) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void WorkerPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void WorkerPool::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drain_cv_.wait(lock, [&] { return queue_.empty() && in_flight_ == 0; });
}

void WorkerPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping and nothing left to run
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      in_flight_++;
    }
    task();
    executed_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(mu_);
      in_flight_--;
      if (queue_.empty() && in_flight_ == 0) {
        drain_cv_.notify_all();
      }
    }
  }
}

}  // namespace dvm
