file(REMOVE_RECURSE
  "libdvm_rewrite.a"
)
