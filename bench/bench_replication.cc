// Control-plane replication under partition and rejoin: what the 2PC
// epoch/artifact rounds and the commit log buy when a replica actually misses
// a policy update. An EventQueue drives a fixed schedule over an applet
// population fetched through a 3-replica cluster:
//
//   warm          — every class rewritten once, artifacts pushed fleet-wide;
//   (outage)      — replica 2 goes dark for a scheduled window;
//   epoch commit  — the policy epoch advances by a 2PC round among the
//                   live members (the dark replica misses it);
//   re-instrument — the fleet re-rewrites under the new epoch;
//   rejoin-probe  — replica 2 is back up but *behind*: with replication it
//                   fails closed (stale-epoch refusals, clients fail over);
//                   the no-replication baseline silently serves its stale
//                   old-policy cache — the bug the epoch gate exists to stop;
//   rejoin        — replica 2 replays the commit-log suffix (baseline: the
//                   operator flushes its cache and it recomputes);
//   post-rejoin   — steady state: with replication every replica serves the
//                   replayed artifacts with zero new rewrites.
//
// --check gates: 100% fetch success in both modes; byte-identical artifacts,
// equal epochs and equal log digests on every replica after rejoin; the
// behind-epoch replica fails closed (stale refusals > 0, zero stale serves)
// while the baseline demonstrably serves stale; recovery is replay, not
// recompute (0 post-rejoin rewrites vs > 0 baseline); and a same-seed rerun
// reproduces bit-identical control-plane and fault-trace fingerprints.
//
// A second scenario exercises the warm fleet (DESIGN.md §16): a profiling
// client tiers up locally and its method profile names the fleet's hot set;
// the replicas' CompilerFilters attach baseline-compiled blobs under a new
// policy epoch; receiving replicas recompile-and-byte-diff every pushed blob
// before install; and a fresh client then installs the shipped tiers with
// zero local compiles while printing byte-identical program output.
// Stdout is byte-deterministic for a given seed; the CI replication-smoke job
// diffs it across the timer-wheel and binary-heap EventQueue backends.
#include <cinttypes>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/bytecode/serializer.h"
#include "src/compiler/compiler.h"
#include "src/dvm/redirect_client.h"
#include "src/dvm/replication.h"
#include "src/runtime/profile.h"
#include "src/runtime/syslib.h"
#include "src/support/hash.h"
#include "src/verifier/verifier.h"
#include "src/services/fleet_metrics.h"
#include "src/services/slo_monitor.h"
#include "src/services/verify_service.h"
#include "src/simnet/fault.h"
#include "src/support/trace.h"
#include "src/workloads/applets.h"

using namespace dvm;
using namespace dvm::bench;

namespace {

constexpr size_t kReplicas = 3;
constexpr size_t kLagger = 2;  // the replica that misses the epoch

// Queue-time schedule. Client fetch phases fast-forward the client's virtual
// clock to the phase start, and every phase is placed so the client's clock
// never crosses the next boundary mid-phase (rewrite CPU + transfers +
// timeout charges stay well inside the gaps).
constexpr SimTime kWarmAt = 1 * kMillisecond;
constexpr SimTime kOutageStart = 60 * kSecond;
constexpr SimTime kEpochAt = 70 * kSecond;
constexpr SimTime kRefetchAt = 71 * kSecond;
constexpr SimTime kOutageEnd = 200 * kSecond;
constexpr SimTime kProbeAt = 210 * kSecond;
constexpr SimTime kRejoinAt = 220 * kSecond;
constexpr SimTime kPostAt = 221 * kSecond;

struct Options {
  uint64_t seed = 23;
  int applets = 10;
  bool check = false;
};

struct Scenario {
  MapClassProvider* origin;
  MapClassEnv* env;
  DvmServer* server;
  std::vector<std::string> classes;
  std::vector<std::string> mains;
};

struct RunOutcome {
  uint64_t attempts = 0;
  uint64_t successes = 0;
  bool epoch_committed = false;
  uint64_t committed_epoch = 0;
  size_t replayed = 0;
  uint64_t total_rewrites = 0;
  uint64_t postrejoin_rewrites = 0;
  uint64_t stale_epoch_rejections = 0;
  // Cache hits served by the lagging replica while it was behind the epoch:
  // stale old-policy artifacts. Zero with replication (it fails closed).
  uint64_t stale_serves = 0;
  bool artifacts_identical = true;
  bool epochs_equal = true;
  bool logs_equal = true;
  // Proof-carrying artifacts (replicated mode only): every pushed commit
  // record must carry a certificate, every install must proof-check, and the
  // lagger's one-pass replay validation must beat re-running the full
  // verifier over the same artifacts (measured in discrete checks).
  bool certs_on_every_artifact = true;
  uint64_t cert_validations = 0;
  uint64_t cert_rejects = 0;
  uint64_t cert_missing = 0;
  uint64_t lagger_validate_checks = 0;
  uint64_t reverify_checks = 0;
  uint64_t control_fingerprint = 0;
  uint64_t trace_fingerprint = 0;
  // Fleet observability (replicated mode only): the console's merged
  // Prometheus export must equal a by-hand merge of the per-replica
  // snapshots, partition windows must drop snapshots (divergence is the
  // signal), and the epoch-staleness SLO transition log is byte-compared
  // across same-seed runs.
  std::string slo_log;
  bool fleet_merge_ok = false;
  uint64_t snapshots_published = 0;
  uint64_t snapshots_dropped = 0;
  size_t slo_firing_at_end = 0;
};

// Runs the schedule with or without the replication layer; appends one table
// row per client phase to `rows`.
RunOutcome Run(Scenario& s, const Options& opt, bool replicated,
               std::vector<std::vector<std::string>>* rows) {
  ProxyCluster cluster(kReplicas, ProxyConfig{}, s.env, s.origin);
  for (size_t i = 0; i < cluster.size(); i++) {
    cluster.replica(i).AddFilter(std::make_unique<VerificationFilter>());
  }
  FaultPlan plan;
  plan.seed = opt.seed;
  plan.replica_outages[kLagger].push_back({kOutageStart, kOutageEnd});
  FaultInjector injector(plan);
  cluster.SetFaultInjector(&injector);
  if (replicated) {
    cluster.EnableReplication();
  }
  ReplicationCoordinator* repl = cluster.replication();

  RedirectingClient client(s.server, nullptr, DvmMachineConfig(), MakeEthernet10Mb());
  client.UseCluster(&cluster);

  RunOutcome out;
  EventQueue queue;

  // Fleet observability plane: each replica periodically snapshots its stats
  // registry (stamped with its policy epoch) and ships it to the console on
  // replica 0 over the same control mesh the 2PC rounds use — so the outage
  // window drops snapshots exactly like it drops votes. The lagging replica
  // runs an epoch-staleness SLO monitor against its own snapshots.
  AdministrationConsole console;
  FleetMetricsPublisher publisher(replicated ? &repl->control_plane() : nullptr,
                                  &console);
  SloMonitor slo("replica-2", &console);
  if (replicated) {
    slo.AddRule(MaxGapRule("policy-epoch-staleness", "repl.policy_epoch",
                           "repl.committed_epoch", /*max_gap=*/0));
  }
  auto stamped_snapshot = [&](size_t i) {
    StatsSnapshot snap = cluster.replica(i).stats().FullSnapshot();
    // "repl.*" sorts after every "proxy.*" counter, so the vector stays
    // name-sorted for exact Merge/Delta.
    snap.counters.emplace_back("repl.committed_epoch", repl->committed_epoch());
    snap.counters.emplace_back("repl.policy_epoch", cluster.replica(i).policy_epoch());
    return snap;
  };
  auto publish_fleet = [&](SimTime now) {
    if (!replicated) {
      return;
    }
    for (size_t i = 0; i < cluster.size(); i++) {
      StatsSnapshot snap = stamped_snapshot(i);
      if (i == kLagger) {
        slo.Evaluate(snap, now);
      }
      publisher.PublishSnapshot(i, std::move(snap), now);
    }
  };

  auto total_rewrites = [&] {
    uint64_t total = 0;
    for (size_t i = 0; i < cluster.size(); i++) {
      total += cluster.replica(i).stats().Value("proxy.rewrites");
    }
    return total;
  };
  auto total_hits = [&] {
    uint64_t total = 0;
    for (size_t i = 0; i < cluster.size(); i++) {
      total += cluster.replica(i).cache().hits();
    }
    return total;
  };
  auto sync_clock = [&](SimTime now) {
    if (client.machine().virtual_nanos() < now) {
      client.machine().AddNanos(now - client.machine().virtual_nanos());
    }
  };
  auto fetch_all = [&](const std::string& label) {
    const uint64_t rw0 = total_rewrites();
    const uint64_t hit0 = total_hits();
    const uint64_t stale0 = client.stale_epoch_rejections();
    const uint64_t to0 = client.timeouts();
    uint64_t ok = 0;
    for (const auto& name : s.classes) {
      out.attempts++;
      if (client.FetchClass(name).ok()) {
        ok++;
        out.successes++;
      }
    }
    rows->push_back({(replicated ? "repl/" : "base/") + label,
                     std::to_string(s.classes.size()), std::to_string(ok),
                     std::to_string(total_rewrites() - rw0), std::to_string(total_hits() - hit0),
                     std::to_string(client.stale_epoch_rejections() - stale0),
                     std::to_string(client.timeouts() - to0)});
  };

  queue.Schedule(kWarmAt, [&] {
    sync_clock(kWarmAt);
    fetch_all("warm");
    publish_fleet(kWarmAt);
  });
  queue.Schedule(kEpochAt, [&] {
    if (replicated) {
      out.epoch_committed = repl->CommitPolicyEpoch(queue.now()).committed;
    } else {
      // The pre-replication world: the invalidation reaches the replicas that
      // are up; the dark one keeps its old-policy cache and nobody can tell.
      for (size_t i = 0; i < cluster.size(); i++) {
        if (cluster.ReplicaUp(i, queue.now())) {
          cluster.replica(i).InvalidateCache();
        }
      }
      out.epoch_committed = true;
    }
    publish_fleet(kEpochAt);
  });
  queue.Schedule(kRefetchAt, [&] {
    sync_clock(kRefetchAt);
    fetch_all("re-instrument");
    publish_fleet(kRefetchAt);
  });
  queue.Schedule(kProbeAt, [&] {
    sync_clock(kProbeAt);
    const uint64_t lagger_hits = cluster.replica(kLagger).cache().hits();
    fetch_all("rejoin-probe");
    out.stale_serves = cluster.replica(kLagger).cache().hits() - lagger_hits;
    publish_fleet(kProbeAt);
  });
  queue.Schedule(kRejoinAt, [&] {
    if (replicated) {
      out.replayed = repl->Rejoin(kLagger, queue.now());
    } else {
      // No commit log: the only remedy for a possibly-stale cache is a flush,
      // after which every artifact is recomputed on demand.
      cluster.replica(kLagger).InvalidateCache();
    }
    publish_fleet(kRejoinAt);
  });
  queue.Schedule(kPostAt, [&] {
    sync_clock(kPostAt);
    const uint64_t rw0 = total_rewrites();
    fetch_all("post-rejoin");
    out.postrejoin_rewrites = total_rewrites() - rw0;
    publish_fleet(kPostAt);
  });
  queue.RunUntilEmpty();

  if (replicated) {
    // Final round already ran with every link up, so the console's merged
    // view must now be exactly the union of the live registries.
    StatsSnapshot manual;
    for (size_t i = 0; i < cluster.size(); i++) {
      manual.Merge(stamped_snapshot(i));
    }
    out.fleet_merge_ok =
        console.FleetPrometheus() == PrometheusText(manual, {{"scope", "fleet"}});
    out.slo_log = slo.TransitionLog();
    out.snapshots_published = publisher.published();
    out.snapshots_dropped = publisher.dropped();
    out.slo_firing_at_end = slo.firing_count();
  }

  out.total_rewrites = total_rewrites();
  out.stale_epoch_rejections = client.stale_epoch_rejections();
  out.trace_fingerprint = injector.TraceFingerprint();
  if (replicated) {
    out.committed_epoch = repl->committed_epoch();
    out.control_fingerprint = repl->Fingerprint();
    for (size_t i = 0; i < cluster.size(); i++) {
      out.epochs_equal &= cluster.replica(i).policy_epoch() == repl->committed_epoch();
      out.logs_equal &= repl->replica_log(i).Digest() == repl->cluster_log().Digest();
    }
    for (const auto& name : s.classes) {
      const std::string key = DvmProxy::RewriteCacheKey(name, "");
      auto reference = cluster.replica(0).cache().Peek(key);
      if (!reference.has_value()) {
        out.artifacts_identical = false;
        continue;
      }
      for (size_t i = 1; i < cluster.size(); i++) {
        auto got = cluster.replica(i).cache().Peek(key);
        out.artifacts_identical &= got.has_value() &&
                                   got->main_class == reference->main_class &&
                                   got->epoch == reference->epoch;
      }
    }

    // Certificate plane accounting. The lagger proof-checked every artifact
    // it installed — the warm pushes live, the missed suffix during replay —
    // which is exactly the set of kArtifact records in the cluster log, so
    // re-running the full verifier over those same records prices what the
    // replay would have cost without certificates.
    for (size_t i = 0; i < cluster.size(); i++) {
      out.cert_validations += cluster.replica(i).stats().Value("proxy.cert_validations");
      out.cert_rejects += cluster.replica(i).stats().Value("proxy.cert_rejects");
      out.cert_missing += cluster.replica(i).stats().Value("proxy.cert_missing");
    }
    out.lagger_validate_checks =
        cluster.replica(kLagger).stats().Value("proxy.cert_validate_checks");
    for (const CommitRecord& record : repl->cluster_log().records()) {
      if (record.type != CommitRecordType::kArtifact) {
        continue;
      }
      out.certs_on_every_artifact &= !record.certificate.empty();
      auto main = ReadClassFile(record.main_class);
      if (!main.ok()) {
        out.certs_on_every_artifact = false;
        continue;
      }
      std::vector<ClassFile> companions;
      companions.reserve(record.extra_classes.size());
      for (const auto& [name, bytes] : record.extra_classes) {
        auto parsed = ReadClassFile(bytes);
        if (parsed.ok()) {
          companions.push_back(std::move(parsed).value());
        }
      }
      MapClassEnv artifact_env;
      for (const ClassFile& companion : companions) {
        artifact_env.Add(&companion);
      }
      artifact_env.Add(&main.value());
      ChainedClassEnv reverify_env(&artifact_env, s.env);
      auto reverified = VerifyClass(main.value(), reverify_env);
      if (reverified.ok()) {
        out.reverify_checks += reverified->stats.TotalStaticChecks();
      }
    }
  }
  return out;
}

// Warm-fleet scenario: profile-guided tier-1 pre-compilation at the proxies.
// A low threshold makes even the modest applet kernels tier up during the
// profiling pass; the fresh client keeps the production default, so the only
// compiled code it can run is what the fleet shipped.
constexpr uint64_t kProfileTierThreshold = 8;

struct WarmFleetOutcome {
  bool all_ok = true;                   // every applet ran to completion
  uint64_t hot_methods = 0;             // rows fed to the compiler filters
  uint64_t profile_tier_compiles = 0;   // profiling client's local compiles
  uint64_t tier_blobs = 0;              // blobs attached by rewriting replicas
  uint64_t blob_checks = 0;             // replica recompile-and-byte-diff runs
  uint64_t blob_rejects = 0;
  uint64_t tier_installs = 0;           // fresh client: shipped tiers installed
  uint64_t tier_compiles = 0;           // fresh client: local compiles (0!)
  size_t artifacts_compared = 0;
  bool artifacts_identical = true;      // incl. the kAttrTieredCode attribute
  bool outputs_identical = true;        // self-tiered vs shipped-tier printing
  uint64_t output_digest = 0;
};

WarmFleetOutcome WarmFleet(Scenario& s) {
  WarmFleetOutcome out;
  ProxyCluster cluster(kReplicas, ProxyConfig{}, s.env, s.origin);
  std::vector<CompilerFilter*> compilers;
  for (size_t i = 0; i < cluster.size(); i++) {
    cluster.replica(i).AddFilter(std::make_unique<VerificationFilter>());
    auto compiler = std::make_unique<CompilerFilter>("");
    compilers.push_back(compiler.get());
    cluster.replica(i).AddFilter(std::move(compiler));
  }
  cluster.EnableReplication();

  auto run_apps = [&](RedirectingClient& client, SimTime start_at) {
    // Clients join the fleet at distinct points on the shared virtual
    // timeline: control-mesh links are FIFOs, so a client operating "before"
    // traffic that is already queued would see its rounds time out.
    if (client.machine().virtual_nanos() < start_at) {
      client.machine().AddNanos(start_at - client.machine().virtual_nanos());
    }
    std::string transcript;
    for (const auto& main : s.mains) {
      auto result = client.RunApp(main);
      transcript += main;
      transcript += " => ";
      transcript += result.ok()
                        ? (result->threw ? result->exception_class : result->value.ToString())
                        : result.error().message;
      transcript += '\n';
      const bool ok = result.ok() && !result->threw;
      if (!ok) {
        std::fprintf(stderr,
                     "warm fleet: %s failed: %s (timeouts=%llu stale=%llu failovers=%llu)\n",
                     main.c_str(),
                     result.ok() ? result->exception_class.c_str()
                                 : result.error().message.c_str(),
                     (unsigned long long)client.timeouts(),
                     (unsigned long long)client.stale_epoch_rejections(),
                     (unsigned long long)client.failovers());
      }
      out.all_ok &= ok;
    }
    for (const auto& line : client.machine().printed()) {
      transcript += line;
      transcript += '\n';
    }
    return transcript;
  };

  // Profiling pass: the client tiers up locally, and its always-on method
  // counters become the fleet's hot-set feedback.
  MachineConfig profile_config = DvmMachineConfig();
  profile_config.tier_invocation_threshold = kProfileTierThreshold;
  profile_config.tier_osr_threshold = kProfileTierThreshold;
  RedirectingClient profiler(s.server, nullptr, profile_config, MakeEthernet10Mb());
  profiler.UseCluster(&cluster);
  const std::string profiled_output = run_apps(profiler, 0);
  out.profile_tier_compiles = profiler.machine().counters().tier_compiles;

  // The hot set is exactly the set of methods the profiling machine compiled:
  // final counters over the deterministic workload reproduce every tier-up
  // decision, so the fresh client below finds a shipped blob wherever it
  // would have compiled.
  std::map<std::string, std::set<std::string>> hot;
  for (const MethodProfileRow& row : CollectMethodProfile(profiler.machine().registry())) {
    if (row.invocations < kProfileTierThreshold && row.backedges < kProfileTierThreshold) {
      continue;
    }
    const size_t dot = row.method.find('.');  // class names use '/', so the
    if (dot == std::string::npos) {           // first '.' splits class from id
      continue;
    }
    hot[row.method.substr(0, dot)].insert(row.method.substr(dot + 1));
    out.hot_methods++;
  }
  for (CompilerFilter* compiler : compilers) {
    compiler->SetHotMethods(hot);
  }

  // Hot-set push is a policy change: a 2PC epoch round invalidates every
  // replica, so the next fetch re-rewrites with blobs attached and replicates
  // the new artifacts fleet-wide.
  // The push must land after the profiling pass's last artifact replication:
  // the control mesh is a FIFO of SimLinks, so a 2PC round scheduled before
  // the queued artifact pushes drain would blow the vote deadline and abort.
  const SimTime hot_push_at = profiler.machine().virtual_nanos() + 1 * kSecond;
  cluster.CommitPolicyUpdate(hot_push_at);

  // Fresh fleet client: trusts the signed artifact chain, production tier
  // thresholds. Every tier it runs must have come off the wire.
  MachineConfig fresh_config = DvmMachineConfig();
  fresh_config.trust_tiered_artifacts = true;
  RedirectingClient fresh(s.server, nullptr, fresh_config, MakeEthernet10Mb());
  fresh.UseCluster(&cluster);
  const std::string fresh_output = run_apps(fresh, hot_push_at + 1 * kSecond);
  out.tier_installs = fresh.machine().counters().tier_installs;
  out.tier_compiles = fresh.machine().counters().tier_compiles;
  out.outputs_identical = fresh_output == profiled_output;
  out.output_digest = Fnv1a(fresh_output);

  for (size_t i = 0; i < cluster.size(); i++) {
    out.blob_checks += cluster.replica(i).stats().Value("proxy.tier_blob_checks");
    out.blob_rejects += cluster.replica(i).stats().Value("proxy.tier_blob_rejects");
    out.tier_blobs += compilers[i]->stats().tier_blobs;
  }
  for (const auto& name : s.classes) {
    const std::string key = DvmProxy::RewriteCacheKey(name, "");
    auto reference = cluster.replica(0).cache().Peek(key);
    if (!reference.has_value()) {
      continue;  // class never reached by the applet mains
    }
    out.artifacts_compared++;
    for (size_t i = 1; i < cluster.size(); i++) {
      auto got = cluster.replica(i).cache().Peek(key);
      out.artifacts_identical &= got.has_value() &&
                                 got->main_class == reference->main_class &&
                                 got->epoch == reference->epoch;
    }
  }
  return out;
}

bool Gate(const char* what, bool pass) {
  std::printf("  %-68s %s\n", what, pass ? "PASS" : "FAIL");
  return pass;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; i++) {
    if (std::sscanf(argv[i], "--seed=%" PRIu64, &opt.seed) == 1) continue;
    if (std::sscanf(argv[i], "--applets=%d", &opt.applets) == 1) continue;
    if (std::strcmp(argv[i], "--check") == 0) {
      opt.check = true;
      continue;
    }
    std::fprintf(stderr, "unknown flag %s\n", argv[i]);
    return 2;
  }

  PrintHeader("Replicated control plane: partition, rejoin, and log replay",
              "Section 2 replication claim — policy epochs made consistent");

  auto applets = BuildAppletPopulation(opt.applets, opt.seed);
  MapClassProvider origin;
  InstallSystemLibrary(origin);
  std::vector<std::string> classes;
  std::vector<std::string> mains;
  for (const auto& applet : applets) {
    applet.InstallInto(&origin);
    mains.push_back(applet.main_class);
    for (const auto& name : applet.ClassNames()) {
      classes.push_back(name);
    }
  }
  std::vector<ClassFile> library = BuildSystemLibrary();
  MapClassEnv env;
  for (const auto& cls : library) {
    env.Add(&cls);
  }
  DvmServerConfig server_config;
  server_config.policy = PermissivePolicy();
  server_config.proxy.sign_output = true;
  DvmServer server(std::move(server_config), &origin);
  Scenario scenario{&origin, &env, &server, classes, mains};

  std::printf("\n%zu classes, %zu replicas, replica %zu dark [%" PRIu64 "s, %" PRIu64
              "s), seed=%" PRIu64 "\n"
              "event_queue=%s\n\n",
              classes.size(), kReplicas, kLagger, kOutageStart / kSecond,
              kOutageEnd / kSecond, opt.seed,
              EventQueue::DefaultBackend() == EventQueue::Backend::kHeap ? "heap" : "wheel");

  std::vector<std::vector<std::string>> rows;
  RunOutcome repl = Run(scenario, opt, /*replicated=*/true, &rows);
  RunOutcome base = Run(scenario, opt, /*replicated=*/false, &rows);

  PrintRow({"Phase", "Fetches", "OK", "Rewrites", "Hits", "StaleRej", "Timeouts"}, 20);
  for (const auto& row : rows) {
    PrintRow(row, 20);
  }

  std::printf("\nreplicated: epoch=%" PRIu64 " replayed=%zu rewrites=%" PRIu64
              " post_rejoin_rewrites=%" PRIu64 " stale_refusals=%" PRIu64
              " stale_serves=%" PRIu64 "\n",
              repl.committed_epoch, repl.replayed, repl.total_rewrites,
              repl.postrejoin_rewrites, repl.stale_epoch_rejections, repl.stale_serves);
  std::printf("baseline:   rewrites=%" PRIu64 " post_rejoin_rewrites=%" PRIu64
              " stale_serves=%" PRIu64 "\n",
              base.total_rewrites, base.postrejoin_rewrites, base.stale_serves);
  std::printf("control_fingerprint=%016" PRIx64 " trace_fingerprint=%016" PRIx64 "\n",
              repl.control_fingerprint, repl.trace_fingerprint);
  std::printf("certificates: validations=%" PRIu64 " rejects=%" PRIu64 " missing=%" PRIu64
              " lagger_validate_checks=%" PRIu64 " reverify_checks=%" PRIu64 "\n",
              repl.cert_validations, repl.cert_rejects, repl.cert_missing,
              repl.lagger_validate_checks, repl.reverify_checks);
  std::printf("fleet: snapshots=%" PRIu64 " dropped_in_partition=%" PRIu64 "\n",
              repl.snapshots_published, repl.snapshots_dropped);
  std::printf("slo transitions (virtual nanos):\n%s", repl.slo_log.c_str());

  WarmFleetOutcome warm = WarmFleet(scenario);
  std::printf("\nwarm fleet: hot_methods=%" PRIu64 " profile_tier_compiles=%" PRIu64
              " tier_blobs=%" PRIu64 " blob_checks=%" PRIu64 " blob_rejects=%" PRIu64 "\n"
              "fresh client: tier_installs=%" PRIu64 " tier_compiles=%" PRIu64
              " artifacts_compared=%zu output_digest=%016" PRIx64 "\n",
              warm.hot_methods, warm.profile_tier_compiles, warm.tier_blobs,
              warm.blob_checks, warm.blob_rejects, warm.tier_installs,
              warm.tier_compiles, warm.artifacts_compared, warm.output_digest);

  bool ok = true;
  std::printf("\nChecks:\n");
  ok &= Gate("every fetch succeeds in both modes",
             repl.successes == repl.attempts && base.successes == base.attempts);
  ok &= Gate("2PC epoch round commits among the live members",
             repl.epoch_committed && repl.committed_epoch == 1);
  ok &= Gate("after rejoin: same committed epoch on every replica", repl.epochs_equal);
  ok &= Gate("after rejoin: equal commit-log digests on every replica", repl.logs_equal);
  ok &= Gate("after rejoin: byte-identical artifacts on every replica",
             repl.artifacts_identical);
  ok &= Gate("behind-epoch replica fails closed (refusals > 0, 0 stale serves)",
             repl.stale_epoch_rejections > 0 && repl.stale_serves == 0);
  ok &= Gate("baseline demonstrably serves stale old-policy artifacts",
             base.stale_serves > 0);
  ok &= Gate("recovery is log replay, not recompute (0 post-rejoin rewrites)",
             repl.replayed > 0 && repl.postrejoin_rewrites == 0 &&
                 base.postrejoin_rewrites > 0);
  ok &= Gate("replication does fewer total rewrites than flush-and-recompute",
             repl.total_rewrites < base.total_rewrites);
  ok &= Gate("every pushed artifact carries a verification certificate",
             repl.certs_on_every_artifact);
  ok &= Gate("every replicated install proof-checked (0 rejects, 0 missing)",
             repl.cert_validations > 0 && repl.cert_rejects == 0 &&
                 repl.cert_missing == 0);
  ok &= Gate("one-pass replay validation beats full re-verification",
             repl.lagger_validate_checks > 0 &&
                 repl.lagger_validate_checks < repl.reverify_checks);
  ok &= Gate("fleet-merged Prometheus equals merge of per-replica snapshots",
             repl.fleet_merge_ok);
  ok &= Gate("partition drops snapshots (console keeps the stale view)",
             repl.snapshots_dropped > 0 &&
                 repl.snapshots_dropped < repl.snapshots_published);
  ok &= Gate("epoch-staleness SLO fired during the miss and cleared on rejoin",
             repl.slo_log.find("ALERT policy-epoch-staleness") != std::string::npos &&
                 repl.slo_log.find("CLEAR policy-epoch-staleness") != std::string::npos &&
                 repl.slo_firing_at_end == 0);
  ok &= Gate("warm fleet: every applet completes in both tier deployments",
             warm.all_ok);
  ok &= Gate("warm fleet: profiling pass tiers locally and names a hot set",
             warm.profile_tier_compiles > 0 && warm.hot_methods > 0);
  ok &= Gate("warm fleet: replicas attach tiered blobs for the profiled set",
             warm.tier_blobs > 0);
  ok &= Gate("warm fleet: every pushed blob recompile-verified (0 rejects)",
             warm.blob_checks > 0 && warm.blob_rejects == 0);
  ok &= Gate("warm fleet: fresh client installs shipped tiers, 0 local compiles",
             warm.tier_installs > 0 && warm.tier_compiles == 0);
  ok &= Gate("warm fleet: tiered artifacts byte-identical on every replica",
             warm.artifacts_compared > 0 && warm.artifacts_identical);
  ok &= Gate("warm fleet: shipped-tier output matches the self-tiered run",
             warm.outputs_identical);

  if (opt.check) {
    std::vector<std::vector<std::string>> rerun_rows;
    RunOutcome again = Run(scenario, opt, /*replicated=*/true, &rerun_rows);
    ok &= Gate("same seed reproduces identical control + trace fingerprints",
               again.control_fingerprint == repl.control_fingerprint &&
                   again.trace_fingerprint == repl.trace_fingerprint &&
                   again.successes == repl.successes);
    ok &= Gate("SLO transitions at identical virtual timestamps on rerun",
               again.slo_log == repl.slo_log && !repl.slo_log.empty());
    WarmFleetOutcome warm_again = WarmFleet(scenario);
    ok &= Gate("warm fleet reproduces identical output digest and tier counts",
               warm_again.output_digest == warm.output_digest &&
                   warm_again.tier_installs == warm.tier_installs &&
                   warm_again.blob_checks == warm.blob_checks);
  }

  std::printf("\nA policy change is a fleet-wide commit: either every in-sync replica\n"
              "re-instruments under the new epoch, or the round aborts and the fleet\n"
              "fails closed. A replica that misses the round cannot prove currency,\n"
              "so it refuses until the commit log replays it back to byte-identical\n"
              "state — no stale hook sets, and no redundant re-rewriting either.\n");
  return ok ? 0 : 1;
}
