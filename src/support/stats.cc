#include "src/support/stats.h"

#include <algorithm>
#include <cmath>

namespace dvm {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  count_++;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double SampleSet::Mean() const {
  if (samples_.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double s : samples_) {
    sum += s;
  }
  return sum / static_cast<double>(samples_.size());
}

double SampleSet::Stddev() const {
  if (samples_.size() < 2) {
    return 0.0;
  }
  double mean = Mean();
  double m2 = 0.0;
  for (double s : samples_) {
    m2 += (s - mean) * (s - mean);
  }
  return std::sqrt(m2 / static_cast<double>(samples_.size() - 1));
}

double SampleSet::Percentile(double p) const {
  if (samples_.empty()) {
    return 0.0;
  }
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  if (p <= 0.0) {
    return sorted.front();
  }
  if (p >= 100.0) {
    return sorted.back();
  }
  double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) {
    return sorted.back();
  }
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double SampleSet::Min() const {
  return samples_.empty() ? 0.0 : *std::min_element(samples_.begin(), samples_.end());
}

double SampleSet::Max() const {
  return samples_.empty() ? 0.0 : *std::max_element(samples_.begin(), samples_.end());
}

namespace {

// Bucket bounds: start at 1 and grow by 1.5x, bumped by at least 1 so the
// low buckets stay distinct (1, 2, 3, 4, 5, 7, 11, 17, 25, ...). The last
// bound is ~1.04e11 — nanosecond values up to ~104 virtual seconds resolve,
// larger ones clamp into the final bucket.
std::array<uint64_t, Histogram::kBuckets> MakeBounds() {
  std::array<uint64_t, Histogram::kBuckets> bounds{};
  double x = 1.0;
  uint64_t prev = 0;
  for (size_t i = 0; i < Histogram::kBuckets; i++) {
    auto v = static_cast<uint64_t>(x);
    if (v <= prev) {
      v = prev + 1;
    }
    bounds[i] = v;
    prev = v;
    x *= 1.5;
  }
  return bounds;
}

const std::array<uint64_t, Histogram::kBuckets>& Bounds() {
  static const std::array<uint64_t, Histogram::kBuckets> bounds = MakeBounds();
  return bounds;
}

}  // namespace

uint64_t Histogram::BucketBound(size_t i) {
  return Bounds()[i < kBuckets ? i : kBuckets - 1];
}

size_t Histogram::BucketFor(uint64_t value) {
  const auto& bounds = Bounds();
  auto it = std::lower_bound(bounds.begin(), bounds.end(), value);
  return it == bounds.end() ? kBuckets - 1 : static_cast<size_t>(it - bounds.begin());
}

uint64_t Histogram::BucketWidth(uint64_t value) {
  size_t i = BucketFor(value);
  return i == 0 ? 1 : BucketBound(i) - BucketBound(i - 1);
}

void Histogram::Record(uint64_t value) {
  counts_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen && !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen && !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::TakeSnapshot() const {
  Snapshot snap;
  for (size_t i = 0; i < kBuckets; i++) {
    snap.counts[i] = counts_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  uint64_t min = min_.load(std::memory_order_relaxed);
  snap.min = min == std::numeric_limits<uint64_t>::max() ? 0 : min;
  snap.max = max_.load(std::memory_order_relaxed);
  return snap;
}

void Histogram::Reset() {
  for (auto& c : counts_) {
    c.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<uint64_t>::max(), std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

double Histogram::Snapshot::Percentile(double p) const {
  if (count == 0) {
    return 0.0;
  }
  if (p <= 0.0) {
    return static_cast<double>(min);
  }
  if (p >= 100.0) {
    return static_cast<double>(max);
  }
  double rank = p / 100.0 * static_cast<double>(count - 1);
  uint64_t consumed = 0;
  for (size_t i = 0; i < kBuckets; i++) {
    uint64_t c = counts[i];
    if (c == 0) {
      continue;
    }
    if (rank < static_cast<double>(consumed + c)) {
      double lo = i == 0 ? 0.0 : static_cast<double>(BucketBound(i - 1));
      double hi = static_cast<double>(BucketBound(i));
      double frac = (rank - static_cast<double>(consumed)) / static_cast<double>(c);
      double value = lo + (hi - lo) * frac;
      value = std::max(value, static_cast<double>(min));
      value = std::min(value, static_cast<double>(max));
      return value;
    }
    consumed += c;
  }
  return static_cast<double>(max);
}

void Histogram::Snapshot::Merge(const Snapshot& other) {
  for (size_t i = 0; i < kBuckets; i++) {
    counts[i] += other.counts[i];
  }
  if (other.count > 0) {
    min = count == 0 ? other.min : std::min(min, other.min);
    max = count == 0 ? other.max : std::max(max, other.max);
  }
  count += other.count;
  sum += other.sum;
}

Histogram::Snapshot Histogram::Snapshot::Delta(const Snapshot& earlier) const {
  Snapshot out = *this;
  for (size_t i = 0; i < kBuckets; i++) {
    out.counts[i] -= std::min(out.counts[i], earlier.counts[i]);
  }
  out.count -= std::min(out.count, earlier.count);
  out.sum -= std::min(out.sum, earlier.sum);
  return out;
}

namespace {

// Generic name-sorted-vector union/difference: both operands are sorted by
// name (map iteration order), so a single linear merge suffices.
template <typename V, typename Combine>
std::vector<std::pair<std::string, V>> MergeSorted(
    const std::vector<std::pair<std::string, V>>& a,
    const std::vector<std::pair<std::string, V>>& b, Combine combine) {
  std::vector<std::pair<std::string, V>> out;
  out.reserve(a.size() + b.size());
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() || j < b.size()) {
    if (j == b.size() || (i < a.size() && a[i].first < b[j].first)) {
      out.push_back(a[i++]);
    } else if (i == a.size() || b[j].first < a[i].first) {
      out.push_back(b[j++]);
    } else {
      out.emplace_back(a[i].first, combine(a[i].second, b[j].second));
      i++;
      j++;
    }
  }
  return out;
}

}  // namespace

uint64_t StatsSnapshot::CounterValue(const std::string& name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) {
      return v;
    }
  }
  return 0;
}

Histogram::Snapshot StatsSnapshot::HistogramFor(const std::string& name) const {
  for (const auto& [n, snap] : histograms) {
    if (n == name) {
      return snap;
    }
  }
  return Histogram::Snapshot{};
}

void StatsSnapshot::Merge(const StatsSnapshot& other) {
  counters = MergeSorted(counters, other.counters,
                         [](uint64_t a, uint64_t b) { return a + b; });
  histograms = MergeSorted(histograms, other.histograms,
                           [](const Histogram::Snapshot& a, const Histogram::Snapshot& b) {
                             Histogram::Snapshot merged = a;
                             merged.Merge(b);
                             return merged;
                           });
}

StatsSnapshot StatsSnapshot::Delta(const StatsSnapshot& earlier) const {
  StatsSnapshot out;
  out.counters.reserve(counters.size());
  size_t j = 0;
  for (const auto& [name, now] : counters) {
    while (j < earlier.counters.size() && earlier.counters[j].first < name) {
      j++;  // names only the earlier snapshot has contribute nothing
    }
    uint64_t then =
        (j < earlier.counters.size() && earlier.counters[j].first == name)
            ? earlier.counters[j].second
            : 0;
    out.counters.emplace_back(name, now - std::min(now, then));
  }
  out.histograms.reserve(histograms.size());
  j = 0;
  for (const auto& [name, now] : histograms) {
    while (j < earlier.histograms.size() && earlier.histograms[j].first < name) {
      j++;
    }
    if (j < earlier.histograms.size() && earlier.histograms[j].first == name) {
      out.histograms.emplace_back(name, now.Delta(earlier.histograms[j].second));
    } else {
      out.histograms.emplace_back(name, now);
    }
  }
  return out;
}

uint64_t StatsSnapshot::SerializedSize() const {
  uint64_t bytes = 16;  // header: counter count + histogram count
  for (const auto& [name, value] : counters) {
    (void)value;
    bytes += 4 + name.size() + 8;
  }
  for (const auto& [name, snap] : histograms) {
    (void)snap;
    bytes += 4 + name.size() + Histogram::kBuckets * 8 + 4 * 8;
  }
  return bytes;
}

StatCounter& StatsRegistry::Counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) {
    slot = std::make_unique<StatCounter>();
  }
  return *slot;
}

uint64_t StatsRegistry::Value(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

std::vector<std::pair<std::string, uint64_t>> StatsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, counter->value());
  }
  return out;
}

Histogram& StatsRegistry::Histo(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>();
  }
  return *slot;
}

Histogram::Snapshot StatsRegistry::HistogramSnapshot(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? Histogram::Snapshot{} : it->second->TakeSnapshot();
}

std::vector<std::pair<std::string, Histogram::Snapshot>> StatsRegistry::HistogramSnapshots()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, Histogram::Snapshot>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    out.emplace_back(name, histogram->TakeSnapshot());
  }
  return out;
}

StatsSnapshot StatsRegistry::FullSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  StatsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms.emplace_back(name, histogram->TakeSnapshot());
  }
  return snap;
}

void StatsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) {
    counter->Reset();
  }
  for (auto& [name, histogram] : histograms_) {
    histogram->Reset();
  }
}

}  // namespace dvm
