# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("bytecode")
subdirs("policy")
subdirs("verifier")
subdirs("runtime")
subdirs("rewrite")
subdirs("services")
subdirs("compiler")
subdirs("optimizer")
subdirs("simnet")
subdirs("proxy")
subdirs("dvm")
subdirs("workloads")
