// The reflection service (paper section 4.3): "an earlier implementation of
// our verifier relied on reflection primitives built into the JVM and was too
// slow. We subsequently developed a reflection service that adds
// self-describing attributes to classes and modified our verifier to use this
// interface rather than the slow library interface in the Sun JDK."
//
// ReflectionFilter attaches a dvm.ReflectionInfo attribute: a compact member
// table (field and method names + descriptors). The RTVerifier dynamic
// component consults it for descriptor lookups; classes without the attribute
// fall back to the slow reflective path (CostModel::nanos_per_link_check_slow).
#ifndef SRC_SERVICES_REFLECT_SERVICE_H_
#define SRC_SERVICES_REFLECT_SERVICE_H_

#include <string>
#include <vector>

#include "src/rewrite/filter.h"

namespace dvm {

// Decoded member table.
struct ReflectionInfo {
  std::vector<std::pair<std::string, std::string>> fields;   // name, descriptor
  std::vector<std::pair<std::string, std::string>> methods;  // name, descriptor
};

// Builds the attribute payload for a class.
Bytes EncodeReflectionInfo(const ClassFile& cls);
Result<ReflectionInfo> DecodeReflectionInfo(const Bytes& data);

class ReflectionFilter : public CodeFilter {
 public:
  std::string name() const override { return "reflection"; }
  Result<FilterOutcome> Apply(ClassFile& cls, const FilterContext& ctx) override;

  uint64_t classes_annotated() const { return classes_annotated_; }

 private:
  uint64_t classes_annotated_ = 0;
};

}  // namespace dvm

#endif  // SRC_SERVICES_REFLECT_SERVICE_H_
