#include "src/dvm/client_pool.h"

#include <cassert>
#include <string>

#include "src/dvm/retry.h"

namespace dvm {

namespace {

// splitmix64 finalizer: per-client replica affinity mixer (same family as the
// rendezvous mixer in redirect_client.cc).
uint64_t Mix64(uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

ClientPool::ClientPool(ClientPoolConfig config, EventQueue* queue,
                       std::vector<CpuServer>* replicas,
                       std::vector<AdmissionController>* admission, StatsRegistry* stats)
    : config_(config), queue_(queue), replicas_(replicas), admission_(admission) {
  assert(!replicas_->empty());
  assert(admission_ == nullptr || admission_->empty() ||
         admission_->size() == replicas_->size());
  assert(config_.backoff_cap < (SimTime{1} << 32) && "backoff column is 32-bit");
  for (size_t i = 0; i < kServiceClasses; i++) {
    latency_[i] = &stats->Histo(std::string("pool.latency.") +
                                ServiceClassName(static_cast<ServiceClass>(i)));
  }
}

SimTime ClientPool::LinkTime() const {
  return SaturatingNanos(static_cast<double>(config_.response_bytes) /
                         config_.link_bytes_per_second * 1e9) +
         config_.link_latency;
}

void ClientPool::Start(uint32_t id, ServiceClass traffic, SimTime arrival) {
  if (traffic_.size() <= id) {
    traffic_.resize(id + 1);
    attempts_.resize(id + 1);
    backoff_ns_.resize(id + 1);
    start_.resize(id + 1);
  }
  traffic_[id] = static_cast<uint8_t>(traffic);
  attempts_[id] = 0;
  backoff_ns_[id] = static_cast<uint32_t>(config_.backoff_base);
  start_[id] = arrival;
  started_[static_cast<size_t>(traffic)]++;
  queue_->Schedule(arrival, &OnAttemptThunk, this, id);
}

void ClientPool::OnAttempt(uint32_t id) {
  SimTime now = queue_->now();
  ServiceClass traffic = static_cast<ServiceClass>(traffic_[id]);
  // Replica affinity by client id, rotating to the next replica on each
  // retry (the pooled analogue of rendezvous failover).
  uint32_t replica = static_cast<uint32_t>(
      (Mix64(id) + attempts_[id]) % replicas_->size());
  issued_++;

  if (admission_ != nullptr && !admission_->empty()) {
    AdmissionController::Decision decision = (*admission_)[replica].Offer(traffic, now);
    if (!decision.admitted) {
      shed_attempts_++;
      attempts_[id]++;
      if (attempts_[id] >= config_.retry_budget) {
        // Typed kOverloaded rejection in the full client; here it is the
        // per-class failure count (only sheddable classes can land here).
        failed_[static_cast<size_t>(traffic)]++;
        return;
      }
      SimTime wait =
          EffectiveBackoff(backoff_ns_[id], decision.retry_after, config_.request_deadline);
      backoff_ns_[id] =
          static_cast<uint32_t>(NextBackoff(backoff_ns_[id], config_.backoff_cap));
      queue_->Schedule(now + wait, &OnAttemptThunk, this, id);
      return;
    }
  }

  // Admitted: the replica's FIFO CPU serves the request; the completion event
  // fires when the CPU finishes (the access-link time is added to the
  // recorded latency arithmetically — each client has a private link).
  SimTime done_cpu = (*replicas_)[replica].Execute(now, config_.service_cpu_nanos);
  queue_->Schedule(done_cpu, &OnCompleteThunk, this,
                   static_cast<uint64_t>(id) | (static_cast<uint64_t>(replica) << 32));
}

void ClientPool::OnComplete(uint32_t id, uint32_t replica) {
  SimTime now = queue_->now();
  if (admission_ != nullptr && !admission_->empty()) {
    (*admission_)[replica].Complete(now);
  }
  size_t traffic = traffic_[id];
  succeeded_[traffic]++;
  SimTime delivered = now + LinkTime();
  latency_[traffic]->Record(delivered - start_[id]);
  if (span_ring_ != nullptr && sampler_.Keep(id)) {
    Span span;
    span.id = id;
    span.name = ServiceClassName(static_cast<ServiceClass>(traffic));
    span.category = "pool";
    span.track = replica + 1;
    span.start_nanos = start_[id];
    span.end_nanos = delivered;
    span.annotations.emplace_back("attempts", std::to_string(attempts_[id] + 1));
    span_ring_->Push(std::move(span));
    spans_sampled_++;
  }
}

}  // namespace dvm
