file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_startup.dir/bench_fig11_startup.cc.o"
  "CMakeFiles/bench_fig11_startup.dir/bench_fig11_startup.cc.o.d"
  "bench_fig11_startup"
  "bench_fig11_startup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_startup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
