#include "src/proxy/proxy.h"

#include "src/bytecode/serializer.h"
#include "src/runtime/syslib.h"

namespace dvm {

const ClassFile* DvmProxy::SeenEnv::Lookup(const std::string& class_name) const {
  auto it = seen_.find(class_name);
  if (it != seen_.end()) {
    return it->second.get();
  }
  return library_->Lookup(class_name);
}

void DvmProxy::SeenEnv::Add(ClassFile cls) {
  std::string name = cls.name();
  seen_[name] = std::make_unique<ClassFile>(std::move(cls));
}

DvmProxy::DvmProxy(ProxyConfig config, const ClassEnv* library_env, ClassProvider* origin)
    : config_(config),
      env_(library_env),
      origin_(origin),
      pipeline_(&env_),
      cache_(config.cache_capacity_bytes),
      signer_(config.signing_key) {}

void DvmProxy::AddFilter(std::unique_ptr<CodeFilter> filter) {
  pipeline_.Add(std::move(filter));
}

Result<ProxyResponse> DvmProxy::HandleRequest(const std::string& class_name,
                                              const std::string& platform) {
  requests_served_++;
  ProxyResponse response;
  const std::string cache_key = class_name + "\x1f" + platform;

  if (config_.enable_cache) {
    if (const CachedClass* cached = cache_.Get(cache_key)) {
      response.data = cached->main_class;
      response.extra_classes = cached->extra_classes;
      response.cache_hit = true;
      // Serving from the cache is cheap relative to rewriting.
      response.cpu_nanos =
          config_.nanos_per_hit_base + response.data.size() * config_.nanos_per_byte_cached;
      total_cpu_nanos_ += response.cpu_nanos;
      audit_trail_.push_back("HIT " + class_name);
      return response;
    }
  }

  // Filter-synthesized classes (cold halves from repartitioning) are served
  // directly; they already went through the pipeline as part of their parent.
  if (auto it = generated_.find(class_name); it != generated_.end()) {
    response.data = it->second;
    response.cpu_nanos =
        config_.nanos_per_hit_base + response.data.size() * config_.nanos_per_byte_cached;
    total_cpu_nanos_ += response.cpu_nanos;
    audit_trail_.push_back("GEN " + class_name);
    return response;
  }

  DVM_ASSIGN_OR_RETURN(Bytes origin_bytes, origin_->FetchClass(class_name));
  response.origin_bytes = origin_bytes.size();

  uint64_t cpu =
      config_.nanos_per_request_base + origin_bytes.size() * config_.nanos_per_byte_parse;

  // Parse once.
  DVM_ASSIGN_OR_RETURN(ClassFile parsed, ReadClassFile(origin_bytes));
  // Record what flowed through so later classes verify against it.
  env_.Add(parsed);

  // Run the stacked static services.
  DVM_ASSIGN_OR_RETURN(PipelineResult result, pipeline_.Run(std::move(parsed), platform));
  cpu += result.checks_performed * config_.nanos_per_check;

  // Generate (and optionally sign) the output binary once.
  if (config_.sign_output) {
    DVM_ASSIGN_OR_RETURN(ClassFile rewritten, ReadClassFile(result.class_bytes));
    result.class_bytes = signer_.SignedBytes(std::move(rewritten));
    for (auto& [name, data] : result.extra_classes) {
      DVM_ASSIGN_OR_RETURN(ClassFile extra, ReadClassFile(data));
      data = signer_.SignedBytes(std::move(extra));
    }
  }
  cpu += result.class_bytes.size() * config_.nanos_per_byte_emit;

  for (const auto& [name, data] : result.extra_classes) {
    generated_[name] = data;
  }
  response.data = result.class_bytes;
  response.extra_classes = result.extra_classes;
  response.cpu_nanos = cpu;
  total_cpu_nanos_ += cpu;
  audit_trail_.push_back((result.modified ? "REWRITE " : "PASS ") + class_name);

  if (config_.enable_cache) {
    CachedClass entry;
    entry.main_class = response.data;
    entry.extra_classes = response.extra_classes;
    cache_.Put(cache_key, std::move(entry));
  }
  if (served_observer_) {
    served_observer_(class_name, response.data);
  }
  return response;
}

size_t DvmProxy::MemoryInUse(size_t inflight_requests) const {
  return cache_.size_bytes() + inflight_requests * config_.workspace_bytes_per_request;
}

double DvmProxy::ThrashFactor(size_t inflight_requests) const {
  size_t in_use = MemoryInUse(inflight_requests);
  if (in_use <= config_.memory_bytes) {
    return 1.0;
  }
  // Past physical memory the host pages; slowdown grows with overcommit.
  double overcommit =
      static_cast<double>(in_use) / static_cast<double>(config_.memory_bytes);
  return 1.0 + 6.0 * (overcommit - 1.0);
}

}  // namespace dvm
