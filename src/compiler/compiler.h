// The network compilation service (paper section 3.4).
//
// A monolithic VM JIT-compiles on the client under severe time pressure; the
// DVM moves translation into the network, where it runs once per platform and
// is amortized across every client in the organization (clients report their
// native format during the remote-administration handshake).
//
// "Native translation" here is quickening: a peephole optimization pass
// (constant folding, strength reduction, redundant-load elimination) plus a
// CompiledStamp attribute. Stamped classes execute at the compiled-instruction
// cost in the runtime's cost model, the same way a template JIT's output would.
#ifndef SRC_COMPILER_COMPILER_H_
#define SRC_COMPILER_COMPILER_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/bytecode/code.h"
#include "src/rewrite/filter.h"

namespace dvm {

struct CompileStats {
  uint64_t methods_compiled = 0;
  uint64_t instructions_processed = 0;
  uint64_t folds = 0;         // constant-folding rewrites applied
  uint64_t reductions = 0;    // strength reductions applied
  uint64_t tier_blobs = 0;    // tier-1 compiled-code blobs attached
  uint64_t tier_refusals = 0; // hot methods outside the tier-1 subset
};

// Peephole-optimizes one decoded method body in place. Exposed for tests and
// the client-side JIT baseline. Safe across branches: a window is only folded
// when no branch targets its interior.
Result<bool> PeepholeOptimize(std::vector<Instr>* code, const ConstantPool& pool,
                              CompileStats* stats);

// Static component: translates every method of every (non-system) class and
// stamps the class for the target platform. The platform is taken from the
// request context when present (clients report their native format in the
// remote-administration handshake, section 3.4); `default_platform` covers
// platform-neutral requests.
class CompilerFilter : public CodeFilter {
 public:
  explicit CompilerFilter(std::string default_platform)
      : target_platform_(std::move(default_platform)) {}

  std::string name() const override { return "compiler"; }
  Result<FilterOutcome> Apply(ClassFile& cls, const FilterContext& ctx) override;

  // Profile-guided tier-1 pre-compilation (DESIGN.md §16): methods named here
  // (class name -> set of "name:descriptor", typically fed from the fleet's
  // MethodProfileTable) get a baseline-compiled blob attached to the class in
  // the kAttrTieredCode attribute. The blob is compiled from the final
  // post-peephole bytecode, so a client installing it sees exactly the code it
  // would have compiled locally.
  void SetHotMethods(std::map<std::string, std::set<std::string>> hot) {
    hot_methods_ = std::move(hot);
  }

  const CompileStats& stats() const { return stats_; }

 private:
  std::string target_platform_;
  std::map<std::string, std::set<std::string>> hot_methods_;
  CompileStats stats_;
};

}  // namespace dvm

#endif  // SRC_COMPILER_COMPILER_H_
