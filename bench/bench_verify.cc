// Certificate emission vs one-pass validation over the Figure 5 workloads:
// what a replica saves by proof-checking a pushed artifact against its
// stack-map certificate instead of re-running the phase-3 dataflow fixpoint.
//
// For every class of every Figure 5 app (verified against the app's own
// classes plus the system library, the proxy's certificate environment) the
// table compares the fixpoint's dataflow checks — which re-count every time
// the worklist revisits an instruction — with the validator's single forward
// pass, and reports the certificate's serialized size.
//
// Gates (exit code): verifier and validator agree on every class; the
// certificate round-trips byte-identically and re-emits byte-identically
// (run-to-run determinism); the validator derives the identical link-time
// assumption list; the one-pass validator visits each instruction at most
// once and spends strictly fewer dataflow checks than the fixpoint overall.
//
// --check     re-runs the whole emission a second time and byte-compares
//             every certificate (the CI cert-smoke job also diffs stdout
//             across event-queue backends and dispatch modes).
// --dump-certs appends one "CERT <class> <bytes> <fnv64>" line per class —
//             a deterministic digest manifest for cross-build byte-diffing.
#include <cinttypes>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/bytecode/builder.h"
#include "src/runtime/syslib.h"
#include "src/support/hash.h"
#include "src/verifier/certificate.h"
#include "src/verifier/verifier.h"

using namespace dvm;
using namespace dvm::bench;

namespace {

struct ClassOutcome {
  std::string name;
  size_t assertions = 0;
  Bytes wire;
  VerifyStats verify;
  ValidateStats validate;
  bool validator_accepts = false;
  bool round_trip_ok = false;
  bool assumptions_match = false;
};

struct AppOutcome {
  std::string app;
  std::vector<ClassOutcome> classes;
};

bool Gate(const char* what, bool pass) {
  std::printf("  %-68s %s\n", what, pass ? "PASS" : "FAIL");
  return pass;
}

// The Fig. 5 generators emit code whose loop frames are stable on first
// visit, so the fixpoint converges in a single pass and certificates can
// only tie it. Real code also widens: a reference that is null on entry and
// bound inside the loop forces the fixpoint to re-run the whole body once
// the loop-head frame changes. These classes model that — each loop body is
// dataflow-processed twice by the fixpoint and once by the validator.
ClassFile WideningClass(int index, int loops, int body_size) {
  ClassBuilder cb("widen/W" + std::to_string(index), "java/lang/Object");
  MethodBuilder& m =
      cb.AddMethod(AccessFlags::kPublic | AccessFlags::kStatic, "run", "()V");
  for (int l = 0; l < loops; l++) {
    m.PushNull().StoreLocal("Ljava/lang/Object;", 0);
    m.PushInt(3).StoreLocal("I", 1);
    Label head = m.NewLabel();
    Label done = m.NewLabel();
    m.Bind(head);
    m.LoadLocal("I", 1).Branch(Op::kIfeq, done);
    for (int i = 0; i < body_size; i++) {
      m.Emit(Op::kIinc, 1, 0);
    }
    // The widening step: local 0 leaves the iteration as a reference, so the
    // head's Null ⊔ Ref merge changes the in-frame and re-queues the body.
    m.GetStatic("widen/Ext", "obj", "Ljava/lang/Object;");
    m.StoreLocal("Ljava/lang/Object;", 0);
    m.Emit(Op::kIinc, 1, -1);
    m.Branch(Op::kGoto, head);
    m.Bind(done);
  }
  m.Emit(Op::kReturn);
  return cb.Build().value();
}

// Emits and validates one class against `env`, recording both sides' stats.
ClassOutcome RunClass(const ClassFile& cls, const ClassEnv& env) {
  ClassOutcome co;
  co.name = cls.name();
  ClassCertificate cert;
  auto verified = VerifyClass(cls, env, &cert);
  if (!verified.ok()) {
    std::fprintf(stderr, "verify failed for %s: %s\n", cls.name().c_str(),
                 verified.error().ToString().c_str());
    std::exit(1);
  }
  co.verify = verified->stats;
  for (const auto& m : cert.methods) {
    co.assertions += m.assertions.size();
  }
  co.wire = SerializeCertificate(cert);

  auto reparsed = ParseCertificate(co.wire);
  co.round_trip_ok = reparsed.ok() && reparsed.value() == cert &&
                     SerializeCertificate(reparsed.value()) == co.wire;
  if (reparsed.ok()) {
    co.validator_accepts =
        ValidateCertificate(cls, env, reparsed.value(), &co.validate).ok();
  }
  co.assumptions_match = cert.assumptions.size() == verified->assumptions.size();
  for (size_t i = 0; co.assumptions_match && i < cert.assumptions.size(); i++) {
    co.assumptions_match = cert.assumptions[i].Key() == verified->assumptions[i].Key();
  }
  return co;
}

// Emits and validates every class of every Fig. 5 app plus the widening
// workload. Emission and validation both run against app + library — the
// deterministic environment the proxy uses, so every replica reaches the
// same verdict.
std::vector<AppOutcome> RunAll(const std::vector<ClassFile>& library, int scale) {
  std::vector<AppOutcome> outcomes;
  for (const AppBundle& app : BuildFig5Apps(scale)) {
    MapClassEnv env;
    for (const ClassFile& cls : library) {
      env.Add(&cls);
    }
    for (const ClassFile& cls : app.classes) {
      env.Add(&cls);
    }
    AppOutcome out;
    out.app = app.name;
    for (const ClassFile& cls : app.classes) {
      out.classes.push_back(RunClass(cls, env));
    }
    outcomes.push_back(std::move(out));
  }

  std::vector<ClassFile> widening;
  for (int i = 0; i < 40; i++) {
    widening.push_back(WideningClass(i, /*loops=*/4, /*body_size=*/250));
  }
  MapClassEnv env;
  for (const ClassFile& cls : library) {
    env.Add(&cls);
  }
  for (const ClassFile& cls : widening) {
    env.Add(&cls);
  }
  AppOutcome out;
  out.app = "widening";
  for (const ClassFile& cls : widening) {
    out.classes.push_back(RunClass(cls, env));
  }
  outcomes.push_back(std::move(out));
  return outcomes;
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false;
  bool dump_certs = false;
  int scale = 1;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--dump-certs") == 0) {
      dump_certs = true;
    } else if (std::sscanf(argv[i], "--scale=%d", &scale) == 1) {
      continue;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }

  PrintHeader("Proof-carrying verification: certificate vs re-verification",
              "Section 3.1 one-pass replica validation (DESIGN.md §15)");

  std::vector<ClassFile> library = BuildSystemLibrary();
  std::vector<AppOutcome> apps = RunAll(library, scale);

  std::printf("\n");
  PrintRow({"App", "Classes", "Asserts", "CertBytes", "FixpointChk", "OnePassChk", "Ratio"});
  uint64_t total_fixpoint = 0, total_onepass = 0;
  uint64_t total_decoded = 0, total_visited = 0;
  size_t total_cert_bytes = 0;
  bool all_accepted = true, all_round_trip = true, all_assumptions = true;
  for (const AppOutcome& app : apps) {
    uint64_t fixpoint = 0, onepass = 0;
    size_t asserts = 0, cert_bytes = 0;
    for (const ClassOutcome& co : app.classes) {
      fixpoint += co.verify.phase3_checks;
      onepass += co.validate.validate_checks;
      total_decoded += co.verify.instructions_verified;
      total_visited += co.validate.instructions_validated;
      asserts += co.assertions;
      cert_bytes += co.wire.size();
      all_accepted &= co.validator_accepts;
      all_round_trip &= co.round_trip_ok;
      all_assumptions &= co.assumptions_match;
    }
    total_fixpoint += fixpoint;
    total_onepass += onepass;
    total_cert_bytes += cert_bytes;
    double ratio = onepass == 0 ? 0.0
                                : static_cast<double>(fixpoint) / static_cast<double>(onepass);
    PrintRow({app.app, std::to_string(app.classes.size()), std::to_string(asserts),
              std::to_string(cert_bytes), std::to_string(fixpoint), std::to_string(onepass),
              FmtDouble(ratio, 2) + "x"});
  }
  double total_ratio = total_onepass == 0
                           ? 0.0
                           : static_cast<double>(total_fixpoint) /
                                 static_cast<double>(total_onepass);
  PrintRow({"TOTAL", "", "", std::to_string(total_cert_bytes),
            std::to_string(total_fixpoint), std::to_string(total_onepass),
            FmtDouble(total_ratio, 2) + "x"});

  if (dump_certs) {
    std::printf("\n");
    for (const AppOutcome& app : apps) {
      for (const ClassOutcome& co : app.classes) {
        std::printf("CERT %s %zu %016" PRIx64 "\n", co.name.c_str(), co.wire.size(),
                    Fnv1a(co.wire.data(), co.wire.size()));
      }
    }
  }

  bool ok = true;
  std::printf("\nChecks:\n");
  ok &= Gate("validator accepts every certificate the verifier emits", all_accepted);
  ok &= Gate("certificate round-trip is byte-identical and content-preserving",
             all_round_trip);
  ok &= Gate("validator derives the identical link-time assumption list",
             all_assumptions);
  ok &= Gate("one-pass: validator visits each instruction at most once",
             total_visited <= total_decoded && total_visited > 0);
  ok &= Gate("validation spends fewer dataflow checks than the fixpoint",
             total_onepass < total_fixpoint);

  if (check) {
    std::vector<AppOutcome> again = RunAll(library, scale);
    bool identical = again.size() == apps.size();
    for (size_t a = 0; identical && a < apps.size(); a++) {
      identical = again[a].classes.size() == apps[a].classes.size();
      for (size_t c = 0; identical && c < apps[a].classes.size(); c++) {
        identical = again[a].classes[c].wire == apps[a].classes[c].wire;
      }
    }
    ok &= Gate("second emission run produces byte-identical certificates", identical);
  }

  std::printf("\nA replica receiving a pushed artifact re-establishes the phase-3\n"
              "verdict in one linear pass over the code, checking each merge edge\n"
              "against the certificate's asserted frame instead of iterating the\n"
              "dataflow to a fixpoint — the certificate is the fixpoint, carried\n"
              "with the artifact and cheaper to check than to recompute.\n");
  return ok ? 0 : 1;
}
