// Environment interfaces the verifier consults about *other* classes.
//
// The key architectural idea (paper section 3.1): the static verifier on the
// proxy does NOT have the client's namespace. It runs phases 1-3 against a
// partial environment (the class under verification plus the standard library
// it ships), records every assumption it had to make about absent classes, and
// defers those to the client's small dynamic component (phase 4).
#ifndef SRC_VERIFIER_CLASS_ENV_H_
#define SRC_VERIFIER_CLASS_ENV_H_

#include <map>
#include <optional>
#include <string>

#include "src/bytecode/classfile.h"

namespace dvm {

// Read-only view of a set of classes. The static service implements this over
// the classes it has seen; the runtime implements it over loaded classes.
class ClassEnv {
 public:
  virtual ~ClassEnv() = default;

  // nullptr when the class is not known to this environment. That is not an
  // error for the static verifier — it records an assumption instead.
  virtual const ClassFile* Lookup(const std::string& class_name) const = 0;

  bool IsKnown(const std::string& class_name) const { return Lookup(class_name) != nullptr; }
};

// Simple map-backed environment, used by the proxy pipeline and tests.
// Does not own the class files it serves.
class MapClassEnv : public ClassEnv {
 public:
  void Add(const ClassFile* cls) { classes_[cls->name()] = cls; }
  const ClassFile* Lookup(const std::string& class_name) const override {
    auto it = classes_.find(class_name);
    return it == classes_.end() ? nullptr : it->second;
  }

 private:
  std::map<std::string, const ClassFile*> classes_;
};

// Environment chaining: first hit wins. Lets the pipeline layer the class under
// verification over the shipped system library.
class ChainedClassEnv : public ClassEnv {
 public:
  ChainedClassEnv(const ClassEnv* first, const ClassEnv* second)
      : first_(first), second_(second) {}
  const ClassFile* Lookup(const std::string& class_name) const override {
    const ClassFile* cls = first_->Lookup(class_name);
    return cls != nullptr ? cls : second_->Lookup(class_name);
  }

 private:
  const ClassEnv* first_;
  const ClassEnv* second_;
};

}  // namespace dvm

#endif  // SRC_VERIFIER_CLASS_ENV_H_
