// Harness: proxy filter pipeline totality/fixpoint oracle. The pipeline must
// fail closed on hostile bytes and must be able to re-process its own output.
#include <cstddef>
#include <cstdint>

#include "fuzz/oracles.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  dvm::fuzz::RequireClean(dvm::fuzz::CheckRewritePipeline(dvm::Bytes(data, data + size)));
  return 0;
}
