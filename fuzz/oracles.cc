#include "fuzz/oracles.h"

#include <cstdio>
#include <cstdlib>

#include "fuzz/mutator.h"
#include "src/bytecode/descriptor.h"
#include "src/bytecode/serializer.h"
#include "src/rewrite/filter.h"
#include "src/runtime/machine.h"
#include "src/runtime/syslib.h"
#include "src/services/verify_service.h"
#include "src/support/hash.h"
#include "src/verifier/certificate.h"
#include "src/verifier/verifier.h"

namespace dvm {
namespace fuzz {
namespace {

// The system library, built once per process and shared by every oracle call.
struct Syslib {
  std::vector<ClassFile> classes;
  MapClassEnv env;

  Syslib() : classes(BuildSystemLibrary()) {
    for (const ClassFile& cls : classes) {
      env.Add(&cls);
    }
  }
};

const Syslib& GetSyslib() {
  static const Syslib* lib = new Syslib();
  return *lib;
}

// Host errors a VERIFIED class may legitimately produce: the verifier runs
// against a partial namespace, so missing classes and unbound natives surface
// at run time, and the harness machine's budgets are deliberately tiny.
bool IsBenignHostError(const Error& e) {
  switch (e.code) {
    case ErrorCode::kNotFound:
    case ErrorCode::kLinkError:
    case ErrorCode::kCapacity:
      return true;
    case ErrorCode::kRuntimeError:
      return e.message.find("instruction budget exceeded") != std::string::npos ||
             e.message.find("unbound native method") != std::string::npos;
    default:
      return false;
  }
}

}  // namespace

std::string CheckRoundTrip(const Bytes& data) {
  auto parsed = ReadClassFile(data);
  if (!parsed.ok()) {
    return "";  // fail-closed: a typed parse error is the correct outcome
  }
  auto wire = WriteClassFile(parsed.value());
  if (!wire.ok()) {
    return "parsed class failed to re-serialize: " + wire.error().ToString();
  }
  if (wire.value() != data) {
    return "Write(Read(b)) != b: " + std::to_string(wire->size()) + " vs " +
           std::to_string(data.size()) + " bytes";
  }
  auto reparsed = ReadClassFile(wire.value());
  if (!reparsed.ok()) {
    return "serialized class failed to re-parse: " + reparsed.error().ToString();
  }
  return "";
}

std::string CheckRewritePipeline(const Bytes& data) {
  FilterPipeline pipeline(&GetSyslib().env);
  pipeline.Add(std::make_unique<VerificationFilter>());

  auto first = pipeline.Run(data);
  if (!first.ok()) {
    return "";  // typed rejection of hostile input is fine
  }
  // The pipeline accepted the input, so its output is proxy-produced: a second
  // pass must be total on it (a typed error here means the proxy emits bytes
  // it cannot itself process). Full byte-idempotence is only required when the
  // first pass changed nothing — a modified class legitimately gains another
  // layer of dynamic-check preambles on re-filtering, because trusting a
  // "previously filtered" stamp on possibly-hostile input would be fail-open.
  auto second = pipeline.Run(first->class_bytes);
  if (!second.ok()) {
    return "pipeline rejected its own output: " + second.error().ToString();
  }
  if (!first->modified && second->class_bytes != first->class_bytes) {
    return "pipeline mutated a class it reported as unmodified: " +
           std::to_string(first->class_bytes.size()) + " -> " +
           std::to_string(second->class_bytes.size()) + " bytes";
  }
  return "";
}

std::string CheckDifferential(const Bytes& data) {
  auto parsed = ReadClassFile(data);
  if (!parsed.ok()) {
    return "";  // fail-closed
  }
  const ClassFile& cls = parsed.value();

  auto verified = VerifyClass(cls, GetSyslib().env);
  if (!verified.ok()) {
    // Rejected: the typed kVerifyError Result IS the fail-closed contract.
    return "";
  }

  // Accepted: the paper's claim is now on the line. Execute every static
  // niladic method under a bounded machine modelling a DVM client (no local
  // verifier). Sanitizers catch memory unsafety; the benign-error filter
  // below catches semantic unsoundness that stays in-bounds. Every method runs
  // on ALL THREE execution engines — the reference interpreter (oracle), the
  // quickened engine, and the quickened engine with tier-1 compilation forced
  // at threshold 1 (every method baseline-compiled, every loop OSR-entered) —
  // in lockstep, so hostile inputs also exercise the quick opcode paths, the
  // baseline compiler's fused superinstructions, and the deopt ladder; any
  // engine divergence is a violation.
  MapClassProvider provider_ref;
  InstallSystemLibrary(provider_ref);
  provider_ref.Add(cls.name(), data);
  MapClassProvider provider_quick;
  InstallSystemLibrary(provider_quick);
  provider_quick.Add(cls.name(), data);
  MapClassProvider provider_tier;
  InstallSystemLibrary(provider_tier);
  provider_tier.Add(cls.name(), data);

  MachineConfig config;
  config.verify_on_load = false;
  config.heap_capacity_bytes = 8 * 1024 * 1024;
  config.max_frames = 64;
  config.max_instructions = 200'000;
  config.quicken = false;
  Machine reference(config, &provider_ref);
  config.quicken = true;
  Machine quick(config, &provider_quick);
  config.tier_invocation_threshold = 1;
  config.tier_osr_threshold = 1;
  Machine tiered(config, &provider_tier);

  struct Engine {
    const char* name;
    Machine* machine;
  };
  Engine engines[] = {{"quickened", &quick}, {"tiered", &tiered}};

  for (const MethodInfo& method : cls.methods) {
    if (!method.IsStatic() || !method.code.has_value()) {
      continue;
    }
    auto sig = ParseMethodDescriptor(method.descriptor);
    if (!sig.ok() || !sig->params.empty()) {
      continue;
    }
    auto baseline = reference.CallStatic(cls.name(), method.name, method.descriptor);
    if (!baseline.ok() && !IsBenignHostError(baseline.error())) {
      return "verifier accepted " + cls.name() + "." + method.Id() +
             " but the reference engine hit host error: " + baseline.error().ToString();
    }
    for (const Engine& engine : engines) {
      auto outcome = engine.machine->CallStatic(cls.name(), method.name, method.descriptor);
      // Guest exceptions (outcome.threw) are safe by construction; only host
      // errors can falsify the invariant.
      if (!outcome.ok() && !IsBenignHostError(outcome.error())) {
        return "verifier accepted " + cls.name() + "." + method.Id() + " but the " +
               engine.name + " engine hit host error: " + outcome.error().ToString();
      }
      if (outcome.ok() != baseline.ok()) {
        return "engine divergence on " + cls.name() + "." + method.Id() + ": " +
               engine.name + " " + (outcome.ok() ? "succeeded" : outcome.error().ToString()) +
               ", reference " + (baseline.ok() ? "succeeded" : baseline.error().ToString());
      }
      if (outcome.ok()) {
        if (outcome->threw != baseline->threw ||
            outcome->exception_class != baseline->exception_class ||
            outcome->exception_message != baseline->exception_message ||
            outcome->value.kind != baseline->value.kind ||
            (outcome->value.kind != Value::Kind::kRef &&
             outcome->value.num != baseline->value.num)) {
          return "engine divergence on " + cls.name() + "." + method.Id() + ": " +
                 engine.name + " and reference outcomes differ";
        }
      } else if (outcome.error().ToString() != baseline.error().ToString()) {
        return "engine divergence on " + cls.name() + "." + method.Id() + ": " + engine.name +
               " error '" + outcome.error().ToString() + "' vs reference '" +
               baseline.error().ToString() + "'";
      }
    }
  }
  for (const Engine& engine : engines) {
    Machine& m = *engine.machine;
    if (m.printed() != reference.printed()) {
      return "engine divergence on " + cls.name() + ": " + engine.name +
             " guest output differs";
    }
    if (m.virtual_nanos() != reference.virtual_nanos()) {
      return "engine divergence on " + cls.name() + ": " + engine.name +
             " virtual clock differs (" + std::to_string(m.virtual_nanos()) + " vs " +
             std::to_string(reference.virtual_nanos()) + ")";
    }
    // Architectural counters only: quickened_sites and the tier_*/osr_entries
    // family are engine-internal by design.
    const RuntimeCounters& ec = m.counters();
    const RuntimeCounters& rc = reference.counters();
    if (ec.instructions != rc.instructions || ec.allocations != rc.allocations ||
        ec.exceptions_thrown != rc.exceptions_thrown || ec.gc_runs != rc.gc_runs ||
        ec.classes_loaded != rc.classes_loaded) {
      return "engine divergence on " + cls.name() + ": " + engine.name +
             " runtime counters differ";
    }
  }
  return "";
}

std::string CheckCertificate(const Bytes& data) {
  auto parsed = ReadClassFile(data);
  if (!parsed.ok()) {
    return "";  // fail-closed
  }
  const ClassFile& cls = parsed.value();

  // The class verifies against ITSELF plus the system library — the same
  // environment the proxy's certificate plane uses. (The old syslib-only
  // environment is why self-referential hierarchies never reached the
  // resolution walks; see the cyclic_super regression.)
  MapClassEnv self_env;
  self_env.Add(&cls);
  ChainedClassEnv env(&self_env, &GetSyslib().env);

  ClassCertificate cert;
  auto verified = VerifyClass(cls, env, &cert);
  if (!verified.ok()) {
    return "";  // rejected classes carry no proof; nothing to differentiate
  }

  Bytes wire = SerializeCertificate(cert);
  auto reparsed = ParseCertificate(wire);
  if (!reparsed.ok()) {
    return "emitted certificate failed to re-parse: " + reparsed.error().ToString();
  }
  if (SerializeCertificate(reparsed.value()) != wire) {
    return "certificate round-trip is not byte-identical";
  }
  if (!(reparsed.value() == cert)) {
    return "certificate round-trip changed content";
  }

  // Differential: the one-pass validator must agree with the fixpoint.
  ValidateStats stats;
  auto validated = ValidateCertificate(cls, env, reparsed.value(), &stats);
  if (!validated.ok()) {
    return "validator rejected the verifier's own certificate for " + cls.name() + ": " +
           validated.error().ToString();
  }

  // Adversary: deterministic structure-aware mutants, every one rejected.
  // (A mutant may parse back to semantically identical content — e.g. a slot
  // "widened" to what it already was — so acceptance is a violation only when
  // the content actually differs.)
  Rng rng(Fnv1a(wire.data(), wire.size()));
  int distinct = 0;
  for (int attempt = 0; attempt < 64 && distinct < 8; attempt++) {
    Bytes mutant = MutateCertificateBytes(wire, rng);
    if (mutant == wire) {
      continue;
    }
    distinct++;
    auto mparsed = ParseCertificate(mutant);
    if (!mparsed.ok()) {
      continue;  // rejected at parse — fail-closed
    }
    if (mparsed.value() == cert) {
      continue;  // differently encoded but same content cannot be detected
    }
    ValidateStats mstats;
    if (ValidateCertificate(cls, env, mparsed.value(), &mstats).ok()) {
      return "validator accepted a tampered certificate for " + cls.name() +
             " (mutation attempt " + std::to_string(attempt) + ")";
    }
  }
  return "";
}

std::string CheckAll(const Bytes& data) {
  std::string v = CheckRoundTrip(data);
  if (v.empty()) {
    v = CheckRewritePipeline(data);
  }
  if (v.empty()) {
    v = CheckDifferential(data);
  }
  if (v.empty()) {
    v = CheckCertificate(data);
  }
  return v;
}

void RequireClean(const std::string& violation) {
  if (!violation.empty()) {
    std::fprintf(stderr, "ORACLE VIOLATION: %s\n", violation.c_str());
    std::abort();
  }
}

}  // namespace fuzz
}  // namespace dvm
