// Tests for proof-carrying verification certificates (verifier/certificate.h)
// and their path through the replicated proxy control plane:
//
//   * canonical serialization round-trips byte-identically;
//   * the one-pass validator agrees with the full fixpoint verifier on every
//     Figure 5 workload class and every checked-in fuzz corpus input, and
//     derives the identical link-time assumption list;
//   * every single-field tampering of a certificate — and every byte-level
//     bit flip that still parses — is rejected;
//   * a replica catching up after an outage validates pushed artifacts
//     against their certificates instead of re-running the rewrite pipeline,
//     and a tampered push is dropped fail-closed.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/bytecode/builder.h"
#include "src/bytecode/serializer.h"
#include "src/dvm/replication.h"
#include "src/proxy/proxy.h"
#include "src/runtime/syslib.h"
#include "src/services/verify_service.h"
#include "src/simnet/fault.h"
#include "src/simnet/sim.h"
#include "src/verifier/certificate.h"
#include "src/verifier/verifier.h"
#include "src/workloads/apps.h"

namespace dvm {
namespace {

#ifndef DVM_CORPUS_DIR
#define DVM_CORPUS_DIR "tests/corpus"
#endif

Bytes ReadFileBytes(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return Bytes(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

// A class with the merge-point shapes certificates exist for: a loop (branch
// target), a conditional join, an exception handler, and calls into classes
// outside the environment (link-time assumptions).
ClassFile BranchyApp() {
  ClassBuilder cb("app/Branchy", "java/lang/Object");
  cb.AddField(AccessFlags::kStatic, "acc", "I");
  cb.AddDefaultConstructor();
  MethodBuilder& m = cb.AddMethod(AccessFlags::kPublic | AccessFlags::kStatic, "run", "()I");
  Label loop = m.NewLabel();
  Label done = m.NewLabel();
  m.PushInt(8).StoreLocal("I", 0);
  m.Bind(loop);
  m.LoadLocal("I", 0).Branch(Op::kIfeq, done);
  m.LoadLocal("I", 0).GetStatic("app/Branchy", "acc", "I").Emit(Op::kIadd);
  m.PutStatic("app/Branchy", "acc", "I");
  m.InvokeStatic("app/Helper", "tick", "()V");  // absent class -> assumption
  m.Emit(Op::kIinc, 0, -1).Branch(Op::kGoto, loop);
  m.Bind(done);
  m.GetStatic("app/Branchy", "acc", "I").Emit(Op::kIreturn);
  return cb.Build().value();
}

class CertificateTest : public ::testing::Test {
 protected:
  CertificateTest() : library_(BuildSystemLibrary()) {
    for (const ClassFile& cls : library_) {
      lib_env_.Add(&cls);
    }
  }

  std::vector<ClassFile> library_;
  MapClassEnv lib_env_;
};

TEST_F(CertificateTest, RoundTripIsByteIdentical) {
  ClassFile cls = BranchyApp();
  MapClassEnv self;
  self.Add(&cls);
  ChainedClassEnv env(&self, &lib_env_);

  ClassCertificate cert;
  auto verified = VerifyClass(cls, env, &cert);
  ASSERT_TRUE(verified.ok()) << verified.error().ToString();
  EXPECT_EQ(cert.class_name, "app/Branchy");
  // The loop head and join are merge points; the helper call is an assumption.
  size_t assertions = 0;
  for (const auto& m : cert.methods) {
    assertions += m.assertions.size();
  }
  EXPECT_GT(assertions, 0u);
  EXPECT_FALSE(cert.assumptions.empty());

  Bytes wire = SerializeCertificate(cert);
  auto reparsed = ParseCertificate(wire);
  ASSERT_TRUE(reparsed.ok()) << reparsed.error().ToString();
  EXPECT_TRUE(reparsed.value() == cert);
  EXPECT_EQ(SerializeCertificate(reparsed.value()), wire);
}

TEST_F(CertificateTest, ParserRejectsTrailingBytesAndBadMagic) {
  ClassFile cls = BranchyApp();
  MapClassEnv self;
  self.Add(&cls);
  ChainedClassEnv env(&self, &lib_env_);
  ClassCertificate cert;
  ASSERT_TRUE(VerifyClass(cls, env, &cert).ok());
  Bytes wire = SerializeCertificate(cert);

  Bytes trailing = wire;
  trailing.push_back(0);
  EXPECT_FALSE(ParseCertificate(trailing).ok());

  Bytes bad_magic = wire;
  bad_magic[0] ^= 0xff;
  EXPECT_FALSE(ParseCertificate(bad_magic).ok());

  EXPECT_FALSE(ParseCertificate(Bytes{}).ok());
}

// The validator must accept the verifier's certificate for every class of
// every Figure 5 application, in one pass, deriving the same assumptions.
TEST_F(CertificateTest, ValidatorAgreesOnFig5Workloads) {
  for (const AppBundle& app : BuildFig5Apps(1)) {
    MapClassEnv app_env;
    for (const ClassFile& cls : app.classes) {
      app_env.Add(&cls);
    }
    ChainedClassEnv env(&app_env, &lib_env_);
    for (const ClassFile& cls : app.classes) {
      ClassCertificate cert;
      auto verified = VerifyClass(cls, env, &cert);
      ASSERT_TRUE(verified.ok()) << app.name << "/" << cls.name() << ": "
                                 << verified.error().ToString();

      auto reparsed = ParseCertificate(SerializeCertificate(cert));
      ASSERT_TRUE(reparsed.ok()) << cls.name();
      ValidateStats stats;
      auto validated = ValidateCertificate(cls, env, reparsed.value(), &stats);
      EXPECT_TRUE(validated.ok()) << app.name << "/" << cls.name() << ": "
                                  << validated.error().ToString();
      EXPECT_GT(stats.instructions_validated, 0u) << cls.name();
      // Identical phase-4 obligations, by list position.
      ASSERT_EQ(cert.assumptions.size(), verified->assumptions.size());
      for (size_t i = 0; i < cert.assumptions.size(); i++) {
        EXPECT_EQ(cert.assumptions[i].Key(), verified->assumptions[i].Key());
      }
    }
  }
}

// Verdict agreement over the checked-in fuzz corpus: whatever the fixpoint
// accepts, the one-pass validator accepts via the emitted certificate.
TEST_F(CertificateTest, ValidatorAgreesOnFuzzCorpus) {
  std::filesystem::path dir(DVM_CORPUS_DIR);
  ASSERT_TRUE(std::filesystem::is_directory(dir));
  size_t accepted = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) {
      continue;
    }
    auto parsed = ReadClassFile(ReadFileBytes(entry.path()));
    if (!parsed.ok()) {
      continue;  // parse rejection is fail-closed; no certificate exists
    }
    const ClassFile& cls = parsed.value();
    MapClassEnv self;
    self.Add(&cls);
    ChainedClassEnv env(&self, &lib_env_);
    ClassCertificate cert;
    if (!VerifyClass(cls, env, &cert).ok()) {
      continue;
    }
    accepted++;
    auto reparsed = ParseCertificate(SerializeCertificate(cert));
    ASSERT_TRUE(reparsed.ok()) << entry.path().filename();
    ValidateStats stats;
    auto validated = ValidateCertificate(cls, env, reparsed.value(), &stats);
    EXPECT_TRUE(validated.ok()) << entry.path().filename() << ": "
                                << validated.error().ToString();
  }
  EXPECT_GT(accepted, 0u) << "corpus has no verifier-accepted inputs to differentiate";
}

// Systematic single-field tampering: every struct-level mutation of the
// certificate must flip the validator to reject.
TEST_F(CertificateTest, EverySingleFieldMutationIsRejected) {
  ClassFile cls = BranchyApp();
  MapClassEnv self;
  self.Add(&cls);
  ChainedClassEnv env(&self, &lib_env_);
  ClassCertificate cert;
  ASSERT_TRUE(VerifyClass(cls, env, &cert).ok());

  auto rejects = [&](const ClassCertificate& mutated, const std::string& what) {
    ValidateStats stats;
    EXPECT_FALSE(ValidateCertificate(cls, env, mutated, &stats).ok()) << what;
  };

  {
    ClassCertificate m = cert;
    m.class_name += "X";
    rejects(m, "class_name");
  }
  for (size_t mi = 0; mi < cert.methods.size(); mi++) {
    {
      ClassCertificate m = cert;
      m.methods[mi].method_id += "X";
      rejects(m, "method_id");
    }
    for (size_t ai = 0; ai < cert.methods[mi].assertions.size(); ai++) {
      const std::string where =
          cert.methods[mi].method_id + " assertion " + std::to_string(ai);
      {
        ClassCertificate m = cert;
        m.methods[mi].assertions[ai].index += 1;
        rejects(m, where + " index");
      }
      {
        ClassCertificate m = cert;
        m.methods[mi].assertions.erase(m.methods[mi].assertions.begin() +
                                       static_cast<long>(ai));
        rejects(m, where + " dropped");
      }
      Frame& frame = cert.methods[mi].assertions[ai].frame;
      for (size_t li = 0; li < frame.locals.size(); li++) {
        if (frame.locals[li] == VType::Top()) {
          continue;  // already the widest element; Top -> Top is no mutation
        }
        ClassCertificate m = cert;
        m.methods[mi].assertions[ai].frame.locals[li] = VType::Top();
        rejects(m, where + " local " + std::to_string(li) + " widened");
      }
      for (size_t si = 0; si < frame.stack.size(); si++) {
        ClassCertificate m = cert;
        m.methods[mi].assertions[ai].frame.stack[si] =
            frame.stack[si] == VType::Int() ? VType::Long() : VType::Int();
        rejects(m, where + " stack " + std::to_string(si) + " retyped");
      }
      {
        ClassCertificate m = cert;
        m.methods[mi].assertions[ai].frame.stack.push_back(VType::Int());
        rejects(m, where + " stack deepened");
      }
    }
  }
  ASSERT_FALSE(cert.assumptions.empty());
  for (size_t i = 0; i < cert.assumptions.size(); i++) {
    {
      ClassCertificate m = cert;
      m.assumptions[i].target_class += "X";
      rejects(m, "assumption " + std::to_string(i) + " retargeted");
    }
    {
      ClassCertificate m = cert;
      m.assumptions.erase(m.assumptions.begin() + static_cast<long>(i));
      rejects(m, "assumption " + std::to_string(i) + " dropped");
    }
  }
  {
    ClassCertificate m = cert;
    m.assumptions.push_back(m.assumptions.front());
    rejects(m, "assumption duplicated");
  }
}

// Byte-level adversary: flip one bit at every position. Whatever still parses
// and differs in content must fail validation.
TEST_F(CertificateTest, EveryParsingBitFlipIsRejected) {
  ClassFile cls = BranchyApp();
  MapClassEnv self;
  self.Add(&cls);
  ChainedClassEnv env(&self, &lib_env_);
  ClassCertificate cert;
  ASSERT_TRUE(VerifyClass(cls, env, &cert).ok());
  Bytes wire = SerializeCertificate(cert);

  size_t parsed_mutants = 0;
  for (size_t pos = 0; pos < wire.size(); pos++) {
    for (int bit = 0; bit < 8; bit++) {
      Bytes mutant = wire;
      mutant[pos] ^= static_cast<uint8_t>(1u << bit);
      auto reparsed = ParseCertificate(mutant);
      if (!reparsed.ok()) {
        continue;  // rejected at parse: fail-closed
      }
      if (reparsed.value() == cert) {
        continue;  // cannot happen with a canonical encoding, but be safe
      }
      parsed_mutants++;
      ValidateStats stats;
      EXPECT_FALSE(ValidateCertificate(cls, env, reparsed.value(), &stats).ok())
          << "bit " << bit << " at byte " << pos << " accepted";
    }
  }
  EXPECT_GT(parsed_mutants, 0u) << "flip battery never produced a parseable mutant";
}

// ---------------------------------------------------------------------------
// Replication path: rejoin validates, never re-verifies; tampering is dropped.
// ---------------------------------------------------------------------------

ClassFile TrivialApp(const std::string& name) {
  ClassBuilder cb(name, "java/lang/Object");
  MethodBuilder& m = cb.AddMethod(AccessFlags::kPublic | AccessFlags::kStatic, "main", "()V");
  m.PushString("ran").InvokeStatic("java/lang/System", "println", "(Ljava/lang/String;)V");
  m.Emit(Op::kReturn);
  return cb.Build().value();
}

class CertificateReplicationTest : public ::testing::Test {
 protected:
  CertificateReplicationTest() : library_(BuildSystemLibrary()) {
    InstallSystemLibrary(origin_);
    for (int i = 0; i < 3; i++) {
      origin_.AddClassFile(TrivialApp("app/C" + std::to_string(i)));
    }
    for (const auto& cls : library_) {
      env_.Add(&cls);
    }
    cluster_ = std::make_unique<ProxyCluster>(3, ProxyConfig{}, &env_, &origin_);
    for (size_t i = 0; i < cluster_->size(); i++) {
      cluster_->replica(i).AddFilter(std::make_unique<VerificationFilter>());
    }
  }

  MapClassProvider origin_;
  std::vector<ClassFile> library_;
  MapClassEnv env_;
  std::unique_ptr<ProxyCluster> cluster_;
};

TEST_F(CertificateReplicationTest, RejoinValidatesInsteadOfReverifying) {
  FaultPlan plan;
  plan.seed = 7;
  plan.replica_outages[2].push_back({0, 10 * kSecond});
  FaultInjector injector(plan);
  cluster_->SetFaultInjector(&injector);
  cluster_->EnableReplication();
  ReplicationCoordinator* repl = cluster_->replication();

  for (int i = 0; i < 3; i++) {
    const std::string name = "app/C" + std::to_string(i);
    ASSERT_TRUE(cluster_->replica(0).HandleRequest(name).ok());
    ASSERT_TRUE(repl->ReplicateArtifact(0, name, "", (i + 1) * kMillisecond).committed);
  }
  // The rewriting replica emitted a proof per artifact; every pushed record
  // carries it (the commit-log digest now covers certificate bytes too).
  EXPECT_EQ(cluster_->replica(0).stats().Value("proxy.cert_emits"), 3u);
  EXPECT_EQ(cluster_->replica(0).stats().Value("proxy.cert_emit_failures"), 0u);
  for (const CommitRecord& record : repl->cluster_log().records()) {
    EXPECT_FALSE(record.certificate.empty());
  }
  // The live peer validated each push as it applied it.
  EXPECT_EQ(cluster_->replica(1).stats().Value("proxy.cert_validations"), 3u);
  EXPECT_EQ(cluster_->replica(1).stats().Value("proxy.cert_rejects"), 0u);

  // The rejoining replica catches up by one-pass validation: no pipeline run,
  // no phase-3 fixpoint, every install proof-checked.
  size_t replayed = repl->Rejoin(2, 11 * kSecond);
  EXPECT_EQ(replayed, 3u);
  const StatsRegistry& stats = cluster_->replica(2).stats();
  EXPECT_EQ(stats.Value("proxy.rewrites"), 0u);
  EXPECT_EQ(stats.Value("proxy.cert_validations"), 3u);
  EXPECT_EQ(stats.Value("proxy.cert_rejects"), 0u);
  EXPECT_EQ(stats.Value("proxy.cert_missing"), 0u);
  EXPECT_GT(stats.Value("proxy.cert_validate_checks"), 0u);
  EXPECT_EQ(cluster_->replica(2).replicated_installs(), 3u);
  // Deterministic fleet-wide: the live peer (push path) and the rejoiner
  // (replay path) spend identical validation work on identical artifacts.
  // (The validator-beats-fixpoint cost claim is bench_replication's gate,
  // measured on branchy workloads where the fixpoint revisits instructions.)
  EXPECT_EQ(stats.Value("proxy.cert_validate_checks"),
            cluster_->replica(1).stats().Value("proxy.cert_validate_checks"));
  EXPECT_EQ(repl->replica_log(2).Digest(), repl->cluster_log().Digest());

  // Byte-identical convergence survived the proof gate.
  for (int i = 0; i < 3; i++) {
    const std::string key = DvmProxy::RewriteCacheKey("app/C" + std::to_string(i), "");
    auto a = cluster_->replica(0).cache().Peek(key);
    auto b = cluster_->replica(2).cache().Peek(key);
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(a->main_class, b->main_class);
    EXPECT_EQ(a->certificate, b->certificate);
  }
}

TEST_F(CertificateReplicationTest, TamperedPushIsDroppedFailClosed) {
  ASSERT_TRUE(cluster_->replica(0).HandleRequest("app/C0").ok());
  const std::string key = DvmProxy::RewriteCacheKey("app/C0", "");
  auto cached = cluster_->replica(0).cache().Peek(key);
  ASSERT_TRUE(cached.has_value());
  ASSERT_FALSE(cached->certificate.empty());

  CommitRecord record;
  record.type = CommitRecordType::kArtifact;
  record.cache_key = key;
  record.class_name = "app/C0";
  record.main_class = cached->main_class;
  record.extra_classes = cached->extra_classes;

  // Certificate tampered: flip a payload byte past the magic/name header.
  record.certificate = cached->certificate;
  record.certificate[record.certificate.size() / 2] ^= 0x01;
  cluster_->replica(1).ApplyCommitRecord(record);
  EXPECT_EQ(cluster_->replica(1).stats().Value("proxy.cert_rejects"), 1u);
  EXPECT_EQ(cluster_->replica(1).replicated_installs(), 0u);
  EXPECT_FALSE(cluster_->replica(1).cache().Peek(key).has_value());

  // Bytes tampered under an honest certificate: the artifact no longer
  // parses, so the proof cannot be checked against it and the install is
  // refused fail-closed.
  record.certificate = cached->certificate;
  record.main_class = cached->main_class;
  record.main_class.pop_back();
  cluster_->replica(1).ApplyCommitRecord(record);
  EXPECT_EQ(cluster_->replica(1).stats().Value("proxy.cert_rejects"), 2u);
  EXPECT_EQ(cluster_->replica(1).replicated_installs(), 0u);
  EXPECT_FALSE(cluster_->replica(1).cache().Peek(key).has_value());

  // The honest record still installs.
  record.main_class = cached->main_class;
  cluster_->replica(1).ApplyCommitRecord(record);
  EXPECT_EQ(cluster_->replica(1).stats().Value("proxy.cert_validations"), 1u);
  EXPECT_EQ(cluster_->replica(1).replicated_installs(), 1u);
  EXPECT_TRUE(cluster_->replica(1).cache().Peek(key).has_value());

  // A certificate-less record keeps the legacy trusted-install path.
  record.certificate.clear();
  record.cache_key = DvmProxy::RewriteCacheKey("app/C1", "");
  record.class_name = "app/C1";
  cluster_->replica(1).ApplyCommitRecord(record);
  EXPECT_EQ(cluster_->replica(1).stats().Value("proxy.cert_missing"), 1u);
  EXPECT_EQ(cluster_->replica(1).replicated_installs(), 2u);
}

}  // namespace
}  // namespace dvm
