// Secure deployment scenario (paper sections 2 + 3.2):
//
// An organization runs untrusted applets behind a DVM proxy. The central
// security policy (a) confines applet file access to /tmp, (b) protects the
// file *read* path — which JDK-style stack introspection cannot do — and the
// administrator then revokes access organization-wide with a single policy
// push, without touching any client.
//
// Build & run:  ./build/examples/secure_deployment
#include <cstdio>

#include "src/bytecode/builder.h"
#include "src/dvm/dvm.h"

using namespace dvm;

namespace {

// An applet that opens and reads files through the system library.
ClassFile BuildFileSnoop() {
  ClassBuilder cb("app/FileSnoop", "java/lang/Object");
  // int snoop(String path): open + read first byte.
  MethodBuilder& m = cb.AddMethod(AccessFlags::kPublic | AccessFlags::kStatic, "snoop",
                                  "(Ljava/lang/String;)I");
  m.Emit(Op::kAload, 0);
  m.InvokeStatic("java/io/File", "open", "(Ljava/lang/String;)I");
  m.InvokeStatic("java/io/File", "read", "(I)I");
  m.Emit(Op::kIreturn);
  return cb.Build().value();
}

const char* kPolicyXml = R"(
<policy version="1">
  <domain sid="applet" code="app/*"/>
  <allow sid="applet" operation="file.open" target="/tmp/*"/>
  <allow sid="applet" operation="file.read" target="java/io/File.read"/>
  <hook class="java/io/File" method="open" operation="file.open" target-arg="0"/>
  <hook class="java/io/File" method="read" operation="file.read"/>
</policy>)";

void Attempt(DvmClient& client, const char* label, const char* path) {
  auto str = client.machine().NewString(path);
  auto out = client.machine().CallStatic("app/FileSnoop", "snoop",
                                         "(Ljava/lang/String;)I",
                                         {Value::Ref(str.value())});
  if (!out.ok()) {
    std::printf("  %-28s host error: %s\n", label, out.error().ToString().c_str());
  } else if (out->threw) {
    std::printf("  %-28s DENIED (%s)\n", label, out->exception_class.c_str());
  } else {
    std::printf("  %-28s allowed, first byte = %d\n", label, out->value.AsInt());
  }
}

}  // namespace

int main() {
  MapClassProvider origin;
  origin.AddClassFile(BuildFileSnoop());

  DvmServerConfig config;
  config.policy = *ParseSecurityPolicy(kPolicyXml);
  config.proxy.sign_output = true;  // untrusted proxy->client path: sign code
  DvmServer server(std::move(config), &origin);

  DvmClient client(&server, DvmMachineConfig(), MakeEthernet10Mb(), "mallory", "kiosk-3");
  client.machine().files().Put("/tmp/notes.txt", "Tmp");
  client.machine().files().Put("/etc/passwd", "Secret");
  client.enforcement().SetThreadSid(server.policy().DomainForClass("app/FileSnoop"));
  // Preload so the demo output isolates the access checks.
  (void)client.machine().EnsureLoaded("app/FileSnoop");

  std::printf("Policy v1: applets may open/read only /tmp/*\n");
  Attempt(client, "read /tmp/notes.txt:", "/tmp/notes.txt");
  Attempt(client, "read /etc/passwd:", "/etc/passwd");

  std::printf("\nEnforcement manager stats: %llu hits, %llu misses, slice downloads: %llu\n",
              static_cast<unsigned long long>(client.enforcement().cache_hits()),
              static_cast<unsigned long long>(client.enforcement().cache_misses()),
              static_cast<unsigned long long>(server.security_server().slice_downloads()));

  // --- single point of control: administrator locks the organization down ------
  std::printf("\nAdministrator pushes policy v2 (deny all) from the security server...\n");
  SecurityPolicy lockdown = server.policy();
  lockdown.version = 2;
  lockdown.rules.clear();
  lockdown.rules.push_back(SecurityRule{"*", "*", "*", /*allow=*/false});
  server.UpdateSecurityPolicy(std::move(lockdown));
  std::printf("Client cache invalidations received: %llu\n",
              static_cast<unsigned long long>(client.enforcement().invalidations()));

  std::printf("\nPolicy v2: everything denied, no client was reconfigured\n");
  Attempt(client, "read /tmp/notes.txt:", "/tmp/notes.txt");

  // --- tamper evidence -----------------------------------------------------------
  auto response = server.proxy().HandleRequest("app/FileSnoop");
  Bytes tampered = response->data;
  tampered[tampered.size() / 2] ^= 0x1;
  auto status = server.proxy().signer().VerifyClassBytes(tampered);
  std::printf("\nTampered class accepted by signature check? %s\n",
              status.ok() ? "YES (bug!)" : "no — redirected back to the service");
  return 0;
}
