// Ablation: proxy replication (section 2: centralization bottlenecks "can be
// addressed by replicated or recoverable server implementations", section 4.2:
// "use replicated proxies"). Total proxy CPU time to rewrite a large
// application population, split across 1..4 replicas routed by class name.
#include "bench/bench_util.h"
#include "src/dvm/redirect_client.h"
#include "src/runtime/syslib.h"
#include "src/services/verify_service.h"
#include "src/workloads/applets.h"

int main() {
  using namespace dvm;
  using namespace dvm::bench;

  PrintHeader("Proxy replication ablation (rewrite a 60-applet population)",
              "Sections 2 / 4.2 design choice");
  PrintRow({"Replicas", "MaxCPU(s)", "TotalCPU(s)", "Speedup"}, 13);

  auto applets = BuildAppletPopulation(60, /*seed=*/23);
  MapClassProvider origin;
  InstallSystemLibrary(origin);
  for (const auto& applet : applets) {
    applet.InstallInto(&origin);
  }
  std::vector<ClassFile> library = BuildSystemLibrary();
  MapClassEnv env;
  for (const auto& cls : library) {
    env.Add(&cls);
  }

  double single_max = 0;
  for (size_t replicas : {1u, 2u, 3u, 4u}) {
    ProxyCluster cluster(replicas, ProxyConfig{}, &env, &origin);
    for (size_t i = 0; i < cluster.size(); i++) {
      cluster.replica(i).AddFilter(std::make_unique<VerificationFilter>());
    }
    for (const auto& applet : applets) {
      for (const auto& cls : applet.ClassNames()) {
        if (!cluster.HandleRequest(cls).ok()) {
          return 1;
        }
      }
    }
    // The wall-clock bound is the busiest replica.
    uint64_t max_cpu = 0;
    for (size_t i = 0; i < cluster.size(); i++) {
      max_cpu = std::max(max_cpu, cluster.replica(i).total_cpu_nanos());
    }
    if (replicas == 1) {
      single_max = static_cast<double>(max_cpu);
    }
    PrintRow({std::to_string(replicas), FmtSeconds(max_cpu),
              FmtSeconds(cluster.total_cpu_nanos()),
              FmtDouble(single_max / static_cast<double>(max_cpu), 2) + "x"},
             13);
  }
  std::printf("\nClass-name routing keeps each replica's cache shard warm; the static\n"
              "services share no mutable state, so replication is embarrassingly\n"
              "parallel (the paper's answer to the bottleneck concern).\n");
  return 0;
}
