// Table-driven sweep of unsafe bytecode sequences the verifier must reject —
// one TEST_P instance per exploit shape. Each case hand-assembles a method
// body (bypassing the builder's own safety checks) and asserts phases 1-3
// refuse it. These are the classic attack patterns from the verifier
// literature ([Dean et al. 97], [McGraw & Felten 99]) the paper's service is
// meant to centralize defenses against.
#include <gtest/gtest.h>

#include "src/bytecode/builder.h"
#include "src/runtime/syslib.h"
#include "src/verifier/verifier.h"

namespace dvm {
namespace {

struct RejectionCase {
  const char* name;
  const char* descriptor;           // method descriptor for `f`
  std::vector<Instr> (*body)(ConstantPool& pool);
  uint16_t max_stack;
  uint16_t max_locals;
};

std::vector<Instr> JustReturn(ConstantPool&) { return {{Op::kReturn, 0, 0}}; }

std::vector<Instr> StackUnderflow(ConstantPool&) {
  return {{Op::kPop, 0, 0}, {Op::kReturn, 0, 0}};
}

std::vector<Instr> StackOverflowBody(ConstantPool&) {
  // Pushes past the declared max_stack of 1.
  return {{Op::kIconst0, 0, 0}, {Op::kIconst0, 0, 0}, {Op::kReturn, 0, 0}};
}

std::vector<Instr> TypeConfusionIntAsRef(ConstantPool& pool) {
  // Use an int as a receiver: iconst_0; invokevirtual Object.hashCode().
  uint16_t m = pool.AddMethodRef("java/lang/Object", "hashCode", "()I");
  return {{Op::kIconst0, 0, 0}, {Op::kInvokevirtual, m, 0}, {Op::kPop, 0, 0},
          {Op::kReturn, 0, 0}};
}

std::vector<Instr> TypeConfusionRefAsInt(ConstantPool& pool) {
  // Arithmetic on a string reference.
  uint16_t s = pool.AddString("x");
  return {{Op::kLdc, s, 0}, {Op::kIconst1, 0, 0}, {Op::kIadd, 0, 0}, {Op::kPop, 0, 0},
          {Op::kReturn, 0, 0}};
}

std::vector<Instr> LongIntMix(ConstantPool& pool) {
  uint16_t l = pool.AddLong(1);
  return {{Op::kLdc, l, 0}, {Op::kIconst1, 0, 0}, {Op::kLadd, 0, 0}, {Op::kPop, 0, 0},
          {Op::kReturn, 0, 0}};
}

std::vector<Instr> UninitializedLocalRead(ConstantPool&) {
  // iload of a never-written local (entry frame marks it Top).
  return {{Op::kIload, 1, 0}, {Op::kPop, 0, 0}, {Op::kReturn, 0, 0}};
}

std::vector<Instr> FallOffEnd(ConstantPool&) {
  return {{Op::kIconst0, 0, 0}, {Op::kPop, 0, 0}};
}

std::vector<Instr> WrongReturnKind(ConstantPool&) {
  // ()V method executing ireturn.
  return {{Op::kIconst0, 0, 0}, {Op::kIreturn, 0, 0}};
}

std::vector<Instr> BranchDepthMismatch(ConstantPool&) {
  // Two paths reach the same join with different stack depths.
  return {
      {Op::kIload, 0, 0},     // 0
      {Op::kIfeq, 3, 0},      // 1: branch to 3 with empty stack
      {Op::kIconst0, 0, 0},   // 2: fall-through pushes
      {Op::kReturn, 0, 0},    // 3: join — depth 0 vs 1
  };
}

std::vector<Instr> UseBeforeInit(ConstantPool& pool) {
  // new without <init>, then used as an argument.
  uint16_t cls = pool.AddClass("java/lang/Object");
  uint16_t m = pool.AddMethodRef("java/lang/Object", "hashCode", "()I");
  return {{Op::kNew, cls, 0}, {Op::kInvokevirtual, m, 0}, {Op::kPop, 0, 0},
          {Op::kReturn, 0, 0}};
}

std::vector<Instr> ArrayTypeConfusion(ConstantPool&) {
  // laload from an int array.
  return {{Op::kBipush, 4, 0},
          {Op::kNewarray, static_cast<int>(ArrayKind::kInt), 0},
          {Op::kIconst0, 0, 0},
          {Op::kLaload, 0, 0},
          {Op::kPop, 0, 0},
          {Op::kReturn, 0, 0}};
}

std::vector<Instr> ArraylengthOnNonArray(ConstantPool& pool) {
  uint16_t s = pool.AddString("x");
  return {{Op::kLdc, s, 0}, {Op::kArraylength, 0, 0}, {Op::kPop, 0, 0},
          {Op::kReturn, 0, 0}};
}

std::vector<Instr> ThrowNonThrowable(ConstantPool& pool) {
  uint16_t s = pool.AddString("x");
  return {{Op::kLdc, s, 0}, {Op::kAthrow, 0, 0}};
}

std::vector<Instr> MonitorOnInt(ConstantPool&) {
  return {{Op::kIconst0, 0, 0}, {Op::kMonitorenter, 0, 0}, {Op::kReturn, 0, 0}};
}

std::vector<Instr> LocalIndexOutOfRange(ConstantPool&) {
  return {{Op::kIload, 50, 0}, {Op::kPop, 0, 0}, {Op::kReturn, 0, 0}};
}

std::vector<Instr> StoreRefReadInt(ConstantPool& pool) {
  // astore a string into local 1, then iload it — the classic pointer-forging
  // primitive.
  uint16_t s = pool.AddString("x");
  return {{Op::kLdc, s, 0},   {Op::kAstore, 1, 0}, {Op::kIload, 1, 0},
          {Op::kPop, 0, 0},   {Op::kReturn, 0, 0}};
}

const RejectionCase kCases[] = {
    {"StackUnderflow", "()V", StackUnderflow, 4, 2},
    {"StackOverflow", "()V", StackOverflowBody, 1, 2},
    {"IntUsedAsReceiver", "()V", TypeConfusionIntAsRef, 4, 2},
    {"RefUsedAsInt", "()V", TypeConfusionRefAsInt, 4, 2},
    {"LongIntMix", "()V", LongIntMix, 4, 2},
    {"UninitializedLocalRead", "()V", UninitializedLocalRead, 4, 2},
    {"FallOffEnd", "()V", FallOffEnd, 4, 2},
    {"WrongReturnKind", "()V", WrongReturnKind, 4, 2},
    {"BranchDepthMismatch", "(I)V", BranchDepthMismatch, 4, 2},
    {"UseBeforeInit", "()V", UseBeforeInit, 4, 2},
    {"ArrayTypeConfusion", "()V", ArrayTypeConfusion, 4, 2},
    {"ArraylengthOnNonArray", "()V", ArraylengthOnNonArray, 4, 2},
    {"ThrowNonThrowable", "()V", ThrowNonThrowable, 4, 2},
    {"MonitorOnInt", "()V", MonitorOnInt, 4, 2},
    {"LocalIndexOutOfRange", "()V", LocalIndexOutOfRange, 4, 2},
    {"StoreRefReadInt", "()V", StoreRefReadInt, 4, 2},
    // Fuzz-found (tests/corpus/entry_frame_oob.bin): three int parameters but
    // max_locals 0 — the verifier formerly wrote the entry frame out of
    // bounds while constructing it.
    {"ParamsExceedMaxLocals", "(III)V", JustReturn, 0, 0},
};

class VerifierRejectionTest : public ::testing::TestWithParam<RejectionCase> {};

TEST_P(VerifierRejectionTest, UnsafeBytecodeIsRejected) {
  const RejectionCase& param = GetParam();

  ClassBuilder cb("evil/E", "java/lang/Object");
  cb.AddMethod(AccessFlags::kStatic | AccessFlags::kPublic, "f", param.descriptor)
      .Emit(Op::kReturn);
  auto built = cb.Build();
  ASSERT_TRUE(built.ok());
  ClassFile cls = std::move(built).value();

  ConstantPool& pool = cls.pool();
  auto body = param.body(pool);
  auto encoded = EncodeCode(body);
  ASSERT_TRUE(encoded.ok()) << encoded.error().ToString();
  MethodInfo* method = cls.FindMethod("f", param.descriptor);
  method->code->code = std::move(encoded).value();
  method->code->max_stack = param.max_stack;
  method->code->max_locals = param.max_locals;

  static const std::vector<ClassFile>* library =
      new std::vector<ClassFile>(BuildSystemLibrary());
  MapClassEnv env;
  for (const auto& lib_cls : *library) {
    env.Add(&lib_cls);
  }
  auto verified = VerifyClass(cls, env);
  ASSERT_FALSE(verified.ok()) << "verifier accepted unsafe pattern " << param.name;
  EXPECT_EQ(verified.error().code, ErrorCode::kVerifyError) << verified.error().ToString();
}

INSTANTIATE_TEST_SUITE_P(Exploits, VerifierRejectionTest, ::testing::ValuesIn(kCases),
                         [](const ::testing::TestParamInfo<RejectionCase>& info) {
                           return info.param.name;
                         });

// ---------------------------------------------------------------------------
// Fuzz-found shapes that don't fit the body-table (they corrupt handlers or
// descriptors rather than the instruction stream). Each mirrors a minimized
// input in tests/corpus/.
// ---------------------------------------------------------------------------

// Hand-assembles evil/E with a raw body and handler table, then verifies it
// against the system library. Returns the verifier's verdict.
Result<VerifiedClass> VerifyHandAssembled(const std::vector<Instr>& body,
                                          std::vector<ExceptionHandler> handlers,
                                          const char* descriptor = "()V") {
  ClassBuilder cb("evil/E", "java/lang/Object");
  cb.AddMethod(AccessFlags::kStatic | AccessFlags::kPublic, "f", descriptor)
      .Emit(Op::kReturn);
  ClassFile cls = cb.Build().value();
  MethodInfo* method = cls.FindMethod("f", descriptor);
  method->code->code = EncodeCode(body).value();
  method->code->max_stack = 4;
  method->code->max_locals = 2;
  method->code->handlers = std::move(handlers);

  static const std::vector<ClassFile>* library =
      new std::vector<ClassFile>(BuildSystemLibrary());
  MapClassEnv env;
  for (const auto& lib_cls : *library) {
    env.Add(&lib_cls);
  }
  return VerifyClass(cls, env);
}

// tests/corpus/handler_inverted.bin: start_pc >= end_pc protects nothing and
// signals a corrupted table.
TEST(VerifierHandlerRejection, InvertedHandlerRange) {
  std::vector<Instr> body = {{Op::kIconst0, 0, 0}, {Op::kPop, 0, 0}, {Op::kReturn, 0, 0}};
  auto verified = VerifyHandAssembled(body, {{/*start=*/2, /*end=*/1, /*handler=*/0, 0}});
  ASSERT_FALSE(verified.ok());
  EXPECT_EQ(verified.error().code, ErrorCode::kVerifyError) << verified.error().ToString();
}

// tests/corpus/handler_mid_instruction.bin: handler_pc lands inside a bipush,
// so dispatching there would re-interpret an operand byte as an opcode.
TEST(VerifierHandlerRejection, HandlerPcMidInstruction) {
  std::vector<Instr> body = {{Op::kBipush, 5, 0}, {Op::kPop, 0, 0}, {Op::kReturn, 0, 0}};
  auto verified = VerifyHandAssembled(body, {{/*start=*/0, /*end=*/3, /*handler=*/1, 0}});
  ASSERT_FALSE(verified.ok());
  EXPECT_EQ(verified.error().code, ErrorCode::kVerifyError) << verified.error().ToString();
}

// tests/corpus/malformed_method_descriptor.bin: a descriptor that does not
// parse must be rejected in phase 1, before any dataflow runs.
TEST(VerifierHandlerRejection, MalformedMethodDescriptor) {
  ClassBuilder cb("evil/E", "java/lang/Object");
  cb.AddMethod(AccessFlags::kStatic | AccessFlags::kPublic, "f", "()V").Emit(Op::kReturn);
  ClassFile cls = cb.Build().value();
  cls.FindMethod("f", "()V")->descriptor = "(\x03";

  static const std::vector<ClassFile>* library =
      new std::vector<ClassFile>(BuildSystemLibrary());
  MapClassEnv env;
  for (const auto& lib_cls : *library) {
    env.Add(&lib_cls);
  }
  auto verified = VerifyClass(cls, env);
  ASSERT_FALSE(verified.ok());
  EXPECT_EQ(verified.error().code, ErrorCode::kVerifyError) << verified.error().ToString();
}

}  // namespace
}  // namespace dvm
