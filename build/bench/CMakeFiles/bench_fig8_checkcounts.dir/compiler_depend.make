# Empty compiler generated dependencies file for bench_fig8_checkcounts.
# This may be replaced when dependencies are built.
