// The six graphical applications of Figures 11/12 (Java WorkShop, Java
// Studio, HotJava, NetCharts, CQ, Animated UI). What matters for the startup
// experiments is their transfer shape: total code size, the number of classes
// touched during startup, and the fraction of each class's code that startup
// never executes (the repartitioning opportunity). Each generated bundle is a
// runnable program whose main() performs exactly the startup phase: it touches
// every class's init path and returns when the application could begin
// processing user requests.
#ifndef SRC_WORKLOADS_GRAPHICAL_H_
#define SRC_WORKLOADS_GRAPHICAL_H_

#include "src/workloads/apps.h"

namespace dvm {

struct GraphicalAppSpec {
  std::string name;
  int class_count = 10;
  int init_work = 40;        // per-class startup computation
  int hot_instructions = 260;   // startup-path code per class (approx bytes/1.5)
  int cold_instructions = 900;  // never-executed code per class
  int cold_methods = 3;
};

AppBundle GenerateGraphicalApp(const GraphicalAppSpec& spec);

// The Figure 11 suite, largest to smallest.
std::vector<AppBundle> BuildGraphicalApps();
// Specs, exposed so benchmarks can report per-app cold fractions.
std::vector<GraphicalAppSpec> GraphicalAppSpecs();

}  // namespace dvm

#endif  // SRC_WORKLOADS_GRAPHICAL_H_
