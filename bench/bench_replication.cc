// Control-plane replication under partition and rejoin: what the 2PC
// epoch/artifact rounds and the commit log buy when a replica actually misses
// a policy update. An EventQueue drives a fixed schedule over an applet
// population fetched through a 3-replica cluster:
//
//   warm          — every class rewritten once, artifacts pushed fleet-wide;
//   (outage)      — replica 2 goes dark for a scheduled window;
//   epoch commit  — the policy epoch advances by a 2PC round among the
//                   live members (the dark replica misses it);
//   re-instrument — the fleet re-rewrites under the new epoch;
//   rejoin-probe  — replica 2 is back up but *behind*: with replication it
//                   fails closed (stale-epoch refusals, clients fail over);
//                   the no-replication baseline silently serves its stale
//                   old-policy cache — the bug the epoch gate exists to stop;
//   rejoin        — replica 2 replays the commit-log suffix (baseline: the
//                   operator flushes its cache and it recomputes);
//   post-rejoin   — steady state: with replication every replica serves the
//                   replayed artifacts with zero new rewrites.
//
// --check gates: 100% fetch success in both modes; byte-identical artifacts,
// equal epochs and equal log digests on every replica after rejoin; the
// behind-epoch replica fails closed (stale refusals > 0, zero stale serves)
// while the baseline demonstrably serves stale; recovery is replay, not
// recompute (0 post-rejoin rewrites vs > 0 baseline); and a same-seed rerun
// reproduces bit-identical control-plane and fault-trace fingerprints.
// Stdout is byte-deterministic for a given seed; the CI replication-smoke job
// diffs it across the timer-wheel and binary-heap EventQueue backends.
#include <cinttypes>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/bytecode/serializer.h"
#include "src/dvm/redirect_client.h"
#include "src/dvm/replication.h"
#include "src/runtime/syslib.h"
#include "src/verifier/verifier.h"
#include "src/services/fleet_metrics.h"
#include "src/services/slo_monitor.h"
#include "src/services/verify_service.h"
#include "src/simnet/fault.h"
#include "src/support/trace.h"
#include "src/workloads/applets.h"

using namespace dvm;
using namespace dvm::bench;

namespace {

constexpr size_t kReplicas = 3;
constexpr size_t kLagger = 2;  // the replica that misses the epoch

// Queue-time schedule. Client fetch phases fast-forward the client's virtual
// clock to the phase start, and every phase is placed so the client's clock
// never crosses the next boundary mid-phase (rewrite CPU + transfers +
// timeout charges stay well inside the gaps).
constexpr SimTime kWarmAt = 1 * kMillisecond;
constexpr SimTime kOutageStart = 60 * kSecond;
constexpr SimTime kEpochAt = 70 * kSecond;
constexpr SimTime kRefetchAt = 71 * kSecond;
constexpr SimTime kOutageEnd = 200 * kSecond;
constexpr SimTime kProbeAt = 210 * kSecond;
constexpr SimTime kRejoinAt = 220 * kSecond;
constexpr SimTime kPostAt = 221 * kSecond;

struct Options {
  uint64_t seed = 23;
  int applets = 10;
  bool check = false;
};

struct Scenario {
  MapClassProvider* origin;
  MapClassEnv* env;
  DvmServer* server;
  std::vector<std::string> classes;
};

struct RunOutcome {
  uint64_t attempts = 0;
  uint64_t successes = 0;
  bool epoch_committed = false;
  uint64_t committed_epoch = 0;
  size_t replayed = 0;
  uint64_t total_rewrites = 0;
  uint64_t postrejoin_rewrites = 0;
  uint64_t stale_epoch_rejections = 0;
  // Cache hits served by the lagging replica while it was behind the epoch:
  // stale old-policy artifacts. Zero with replication (it fails closed).
  uint64_t stale_serves = 0;
  bool artifacts_identical = true;
  bool epochs_equal = true;
  bool logs_equal = true;
  // Proof-carrying artifacts (replicated mode only): every pushed commit
  // record must carry a certificate, every install must proof-check, and the
  // lagger's one-pass replay validation must beat re-running the full
  // verifier over the same artifacts (measured in discrete checks).
  bool certs_on_every_artifact = true;
  uint64_t cert_validations = 0;
  uint64_t cert_rejects = 0;
  uint64_t cert_missing = 0;
  uint64_t lagger_validate_checks = 0;
  uint64_t reverify_checks = 0;
  uint64_t control_fingerprint = 0;
  uint64_t trace_fingerprint = 0;
  // Fleet observability (replicated mode only): the console's merged
  // Prometheus export must equal a by-hand merge of the per-replica
  // snapshots, partition windows must drop snapshots (divergence is the
  // signal), and the epoch-staleness SLO transition log is byte-compared
  // across same-seed runs.
  std::string slo_log;
  bool fleet_merge_ok = false;
  uint64_t snapshots_published = 0;
  uint64_t snapshots_dropped = 0;
  size_t slo_firing_at_end = 0;
};

// Runs the schedule with or without the replication layer; appends one table
// row per client phase to `rows`.
RunOutcome Run(Scenario& s, const Options& opt, bool replicated,
               std::vector<std::vector<std::string>>* rows) {
  ProxyCluster cluster(kReplicas, ProxyConfig{}, s.env, s.origin);
  for (size_t i = 0; i < cluster.size(); i++) {
    cluster.replica(i).AddFilter(std::make_unique<VerificationFilter>());
  }
  FaultPlan plan;
  plan.seed = opt.seed;
  plan.replica_outages[kLagger].push_back({kOutageStart, kOutageEnd});
  FaultInjector injector(plan);
  cluster.SetFaultInjector(&injector);
  if (replicated) {
    cluster.EnableReplication();
  }
  ReplicationCoordinator* repl = cluster.replication();

  RedirectingClient client(s.server, nullptr, DvmMachineConfig(), MakeEthernet10Mb());
  client.UseCluster(&cluster);

  RunOutcome out;
  EventQueue queue;

  // Fleet observability plane: each replica periodically snapshots its stats
  // registry (stamped with its policy epoch) and ships it to the console on
  // replica 0 over the same control mesh the 2PC rounds use — so the outage
  // window drops snapshots exactly like it drops votes. The lagging replica
  // runs an epoch-staleness SLO monitor against its own snapshots.
  AdministrationConsole console;
  FleetMetricsPublisher publisher(replicated ? &repl->control_plane() : nullptr,
                                  &console);
  SloMonitor slo("replica-2", &console);
  if (replicated) {
    slo.AddRule(MaxGapRule("policy-epoch-staleness", "repl.policy_epoch",
                           "repl.committed_epoch", /*max_gap=*/0));
  }
  auto stamped_snapshot = [&](size_t i) {
    StatsSnapshot snap = cluster.replica(i).stats().FullSnapshot();
    // "repl.*" sorts after every "proxy.*" counter, so the vector stays
    // name-sorted for exact Merge/Delta.
    snap.counters.emplace_back("repl.committed_epoch", repl->committed_epoch());
    snap.counters.emplace_back("repl.policy_epoch", cluster.replica(i).policy_epoch());
    return snap;
  };
  auto publish_fleet = [&](SimTime now) {
    if (!replicated) {
      return;
    }
    for (size_t i = 0; i < cluster.size(); i++) {
      StatsSnapshot snap = stamped_snapshot(i);
      if (i == kLagger) {
        slo.Evaluate(snap, now);
      }
      publisher.PublishSnapshot(i, std::move(snap), now);
    }
  };

  auto total_rewrites = [&] {
    uint64_t total = 0;
    for (size_t i = 0; i < cluster.size(); i++) {
      total += cluster.replica(i).stats().Value("proxy.rewrites");
    }
    return total;
  };
  auto total_hits = [&] {
    uint64_t total = 0;
    for (size_t i = 0; i < cluster.size(); i++) {
      total += cluster.replica(i).cache().hits();
    }
    return total;
  };
  auto sync_clock = [&](SimTime now) {
    if (client.machine().virtual_nanos() < now) {
      client.machine().AddNanos(now - client.machine().virtual_nanos());
    }
  };
  auto fetch_all = [&](const std::string& label) {
    const uint64_t rw0 = total_rewrites();
    const uint64_t hit0 = total_hits();
    const uint64_t stale0 = client.stale_epoch_rejections();
    const uint64_t to0 = client.timeouts();
    uint64_t ok = 0;
    for (const auto& name : s.classes) {
      out.attempts++;
      if (client.FetchClass(name).ok()) {
        ok++;
        out.successes++;
      }
    }
    rows->push_back({(replicated ? "repl/" : "base/") + label,
                     std::to_string(s.classes.size()), std::to_string(ok),
                     std::to_string(total_rewrites() - rw0), std::to_string(total_hits() - hit0),
                     std::to_string(client.stale_epoch_rejections() - stale0),
                     std::to_string(client.timeouts() - to0)});
  };

  queue.Schedule(kWarmAt, [&] {
    sync_clock(kWarmAt);
    fetch_all("warm");
    publish_fleet(kWarmAt);
  });
  queue.Schedule(kEpochAt, [&] {
    if (replicated) {
      out.epoch_committed = repl->CommitPolicyEpoch(queue.now()).committed;
    } else {
      // The pre-replication world: the invalidation reaches the replicas that
      // are up; the dark one keeps its old-policy cache and nobody can tell.
      for (size_t i = 0; i < cluster.size(); i++) {
        if (cluster.ReplicaUp(i, queue.now())) {
          cluster.replica(i).InvalidateCache();
        }
      }
      out.epoch_committed = true;
    }
    publish_fleet(kEpochAt);
  });
  queue.Schedule(kRefetchAt, [&] {
    sync_clock(kRefetchAt);
    fetch_all("re-instrument");
    publish_fleet(kRefetchAt);
  });
  queue.Schedule(kProbeAt, [&] {
    sync_clock(kProbeAt);
    const uint64_t lagger_hits = cluster.replica(kLagger).cache().hits();
    fetch_all("rejoin-probe");
    out.stale_serves = cluster.replica(kLagger).cache().hits() - lagger_hits;
    publish_fleet(kProbeAt);
  });
  queue.Schedule(kRejoinAt, [&] {
    if (replicated) {
      out.replayed = repl->Rejoin(kLagger, queue.now());
    } else {
      // No commit log: the only remedy for a possibly-stale cache is a flush,
      // after which every artifact is recomputed on demand.
      cluster.replica(kLagger).InvalidateCache();
    }
    publish_fleet(kRejoinAt);
  });
  queue.Schedule(kPostAt, [&] {
    sync_clock(kPostAt);
    const uint64_t rw0 = total_rewrites();
    fetch_all("post-rejoin");
    out.postrejoin_rewrites = total_rewrites() - rw0;
    publish_fleet(kPostAt);
  });
  queue.RunUntilEmpty();

  if (replicated) {
    // Final round already ran with every link up, so the console's merged
    // view must now be exactly the union of the live registries.
    StatsSnapshot manual;
    for (size_t i = 0; i < cluster.size(); i++) {
      manual.Merge(stamped_snapshot(i));
    }
    out.fleet_merge_ok =
        console.FleetPrometheus() == PrometheusText(manual, {{"scope", "fleet"}});
    out.slo_log = slo.TransitionLog();
    out.snapshots_published = publisher.published();
    out.snapshots_dropped = publisher.dropped();
    out.slo_firing_at_end = slo.firing_count();
  }

  out.total_rewrites = total_rewrites();
  out.stale_epoch_rejections = client.stale_epoch_rejections();
  out.trace_fingerprint = injector.TraceFingerprint();
  if (replicated) {
    out.committed_epoch = repl->committed_epoch();
    out.control_fingerprint = repl->Fingerprint();
    for (size_t i = 0; i < cluster.size(); i++) {
      out.epochs_equal &= cluster.replica(i).policy_epoch() == repl->committed_epoch();
      out.logs_equal &= repl->replica_log(i).Digest() == repl->cluster_log().Digest();
    }
    for (const auto& name : s.classes) {
      const std::string key = DvmProxy::RewriteCacheKey(name, "");
      auto reference = cluster.replica(0).cache().Peek(key);
      if (!reference.has_value()) {
        out.artifacts_identical = false;
        continue;
      }
      for (size_t i = 1; i < cluster.size(); i++) {
        auto got = cluster.replica(i).cache().Peek(key);
        out.artifacts_identical &= got.has_value() &&
                                   got->main_class == reference->main_class &&
                                   got->epoch == reference->epoch;
      }
    }

    // Certificate plane accounting. The lagger proof-checked every artifact
    // it installed — the warm pushes live, the missed suffix during replay —
    // which is exactly the set of kArtifact records in the cluster log, so
    // re-running the full verifier over those same records prices what the
    // replay would have cost without certificates.
    for (size_t i = 0; i < cluster.size(); i++) {
      out.cert_validations += cluster.replica(i).stats().Value("proxy.cert_validations");
      out.cert_rejects += cluster.replica(i).stats().Value("proxy.cert_rejects");
      out.cert_missing += cluster.replica(i).stats().Value("proxy.cert_missing");
    }
    out.lagger_validate_checks =
        cluster.replica(kLagger).stats().Value("proxy.cert_validate_checks");
    for (const CommitRecord& record : repl->cluster_log().records()) {
      if (record.type != CommitRecordType::kArtifact) {
        continue;
      }
      out.certs_on_every_artifact &= !record.certificate.empty();
      auto main = ReadClassFile(record.main_class);
      if (!main.ok()) {
        out.certs_on_every_artifact = false;
        continue;
      }
      std::vector<ClassFile> companions;
      companions.reserve(record.extra_classes.size());
      for (const auto& [name, bytes] : record.extra_classes) {
        auto parsed = ReadClassFile(bytes);
        if (parsed.ok()) {
          companions.push_back(std::move(parsed).value());
        }
      }
      MapClassEnv artifact_env;
      for (const ClassFile& companion : companions) {
        artifact_env.Add(&companion);
      }
      artifact_env.Add(&main.value());
      ChainedClassEnv reverify_env(&artifact_env, s.env);
      auto reverified = VerifyClass(main.value(), reverify_env);
      if (reverified.ok()) {
        out.reverify_checks += reverified->stats.TotalStaticChecks();
      }
    }
  }
  return out;
}

bool Gate(const char* what, bool pass) {
  std::printf("  %-68s %s\n", what, pass ? "PASS" : "FAIL");
  return pass;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; i++) {
    if (std::sscanf(argv[i], "--seed=%" PRIu64, &opt.seed) == 1) continue;
    if (std::sscanf(argv[i], "--applets=%d", &opt.applets) == 1) continue;
    if (std::strcmp(argv[i], "--check") == 0) {
      opt.check = true;
      continue;
    }
    std::fprintf(stderr, "unknown flag %s\n", argv[i]);
    return 2;
  }

  PrintHeader("Replicated control plane: partition, rejoin, and log replay",
              "Section 2 replication claim — policy epochs made consistent");

  auto applets = BuildAppletPopulation(opt.applets, opt.seed);
  MapClassProvider origin;
  InstallSystemLibrary(origin);
  std::vector<std::string> classes;
  for (const auto& applet : applets) {
    applet.InstallInto(&origin);
    for (const auto& name : applet.ClassNames()) {
      classes.push_back(name);
    }
  }
  std::vector<ClassFile> library = BuildSystemLibrary();
  MapClassEnv env;
  for (const auto& cls : library) {
    env.Add(&cls);
  }
  DvmServerConfig server_config;
  server_config.policy = PermissivePolicy();
  server_config.proxy.sign_output = true;
  DvmServer server(std::move(server_config), &origin);
  Scenario scenario{&origin, &env, &server, classes};

  std::printf("\n%zu classes, %zu replicas, replica %zu dark [%" PRIu64 "s, %" PRIu64
              "s), seed=%" PRIu64 "\n"
              "event_queue=%s\n\n",
              classes.size(), kReplicas, kLagger, kOutageStart / kSecond,
              kOutageEnd / kSecond, opt.seed,
              EventQueue::DefaultBackend() == EventQueue::Backend::kHeap ? "heap" : "wheel");

  std::vector<std::vector<std::string>> rows;
  RunOutcome repl = Run(scenario, opt, /*replicated=*/true, &rows);
  RunOutcome base = Run(scenario, opt, /*replicated=*/false, &rows);

  PrintRow({"Phase", "Fetches", "OK", "Rewrites", "Hits", "StaleRej", "Timeouts"}, 20);
  for (const auto& row : rows) {
    PrintRow(row, 20);
  }

  std::printf("\nreplicated: epoch=%" PRIu64 " replayed=%zu rewrites=%" PRIu64
              " post_rejoin_rewrites=%" PRIu64 " stale_refusals=%" PRIu64
              " stale_serves=%" PRIu64 "\n",
              repl.committed_epoch, repl.replayed, repl.total_rewrites,
              repl.postrejoin_rewrites, repl.stale_epoch_rejections, repl.stale_serves);
  std::printf("baseline:   rewrites=%" PRIu64 " post_rejoin_rewrites=%" PRIu64
              " stale_serves=%" PRIu64 "\n",
              base.total_rewrites, base.postrejoin_rewrites, base.stale_serves);
  std::printf("control_fingerprint=%016" PRIx64 " trace_fingerprint=%016" PRIx64 "\n",
              repl.control_fingerprint, repl.trace_fingerprint);
  std::printf("certificates: validations=%" PRIu64 " rejects=%" PRIu64 " missing=%" PRIu64
              " lagger_validate_checks=%" PRIu64 " reverify_checks=%" PRIu64 "\n",
              repl.cert_validations, repl.cert_rejects, repl.cert_missing,
              repl.lagger_validate_checks, repl.reverify_checks);
  std::printf("fleet: snapshots=%" PRIu64 " dropped_in_partition=%" PRIu64 "\n",
              repl.snapshots_published, repl.snapshots_dropped);
  std::printf("slo transitions (virtual nanos):\n%s", repl.slo_log.c_str());

  bool ok = true;
  std::printf("\nChecks:\n");
  ok &= Gate("every fetch succeeds in both modes",
             repl.successes == repl.attempts && base.successes == base.attempts);
  ok &= Gate("2PC epoch round commits among the live members",
             repl.epoch_committed && repl.committed_epoch == 1);
  ok &= Gate("after rejoin: same committed epoch on every replica", repl.epochs_equal);
  ok &= Gate("after rejoin: equal commit-log digests on every replica", repl.logs_equal);
  ok &= Gate("after rejoin: byte-identical artifacts on every replica",
             repl.artifacts_identical);
  ok &= Gate("behind-epoch replica fails closed (refusals > 0, 0 stale serves)",
             repl.stale_epoch_rejections > 0 && repl.stale_serves == 0);
  ok &= Gate("baseline demonstrably serves stale old-policy artifacts",
             base.stale_serves > 0);
  ok &= Gate("recovery is log replay, not recompute (0 post-rejoin rewrites)",
             repl.replayed > 0 && repl.postrejoin_rewrites == 0 &&
                 base.postrejoin_rewrites > 0);
  ok &= Gate("replication does fewer total rewrites than flush-and-recompute",
             repl.total_rewrites < base.total_rewrites);
  ok &= Gate("every pushed artifact carries a verification certificate",
             repl.certs_on_every_artifact);
  ok &= Gate("every replicated install proof-checked (0 rejects, 0 missing)",
             repl.cert_validations > 0 && repl.cert_rejects == 0 &&
                 repl.cert_missing == 0);
  ok &= Gate("one-pass replay validation beats full re-verification",
             repl.lagger_validate_checks > 0 &&
                 repl.lagger_validate_checks < repl.reverify_checks);
  ok &= Gate("fleet-merged Prometheus equals merge of per-replica snapshots",
             repl.fleet_merge_ok);
  ok &= Gate("partition drops snapshots (console keeps the stale view)",
             repl.snapshots_dropped > 0 &&
                 repl.snapshots_dropped < repl.snapshots_published);
  ok &= Gate("epoch-staleness SLO fired during the miss and cleared on rejoin",
             repl.slo_log.find("ALERT policy-epoch-staleness") != std::string::npos &&
                 repl.slo_log.find("CLEAR policy-epoch-staleness") != std::string::npos &&
                 repl.slo_firing_at_end == 0);

  if (opt.check) {
    std::vector<std::vector<std::string>> rerun_rows;
    RunOutcome again = Run(scenario, opt, /*replicated=*/true, &rerun_rows);
    ok &= Gate("same seed reproduces identical control + trace fingerprints",
               again.control_fingerprint == repl.control_fingerprint &&
                   again.trace_fingerprint == repl.trace_fingerprint &&
                   again.successes == repl.successes);
    ok &= Gate("SLO transitions at identical virtual timestamps on rerun",
               again.slo_log == repl.slo_log && !repl.slo_log.empty());
  }

  std::printf("\nA policy change is a fleet-wide commit: either every in-sync replica\n"
              "re-instruments under the new epoch, or the round aborts and the fleet\n"
              "fails closed. A replica that misses the round cannot prove currency,\n"
              "so it refuses until the commit log replays it back to byte-identical\n"
              "state — no stale hook sets, and no redundant re-rewriting either.\n");
  return ok ? 0 : 1;
}
