#include <gtest/gtest.h>

#include "src/bytecode/builder.h"
#include "src/bytecode/serializer.h"
#include "src/rewrite/filter.h"
#include "src/rewrite/method_editor.h"
#include "src/runtime/machine.h"
#include "src/runtime/syslib.h"
#include "src/verifier/verifier.h"

namespace dvm {
namespace {

ClassFile MustBuild(ClassBuilder& cb) {
  auto built = cb.Build();
  EXPECT_TRUE(built.ok()) << (built.ok() ? "" : built.error().ToString());
  return std::move(built).value();
}

// A loop method whose first instruction is a backward-branch target, to
// exercise the "guard runs once" insertion semantics.
ClassFile BuildLoopClass() {
  ClassBuilder cb("rw/Loop", "java/lang/Object");
  MethodBuilder& m = cb.AddMethod(AccessFlags::kStatic | AccessFlags::kPublic, "f", "(I)I");
  Label loop = m.NewLabel(), done = m.NewLabel();
  m.PushInt(0).StoreLocal("I", 1);
  m.Bind(loop);
  m.LoadLocal("I", 0).Branch(Op::kIfle, done);
  m.LoadLocal("I", 1).LoadLocal("I", 0).Emit(Op::kIadd).StoreLocal("I", 1);
  m.Emit(Op::kIinc, 0, -1);
  m.Branch(Op::kGoto, loop);
  m.Bind(done).LoadLocal("I", 1).Emit(Op::kIreturn);
  return MustBuild(cb);
}

int RunF(const ClassFile& cls, int arg) {
  MapClassProvider provider;
  InstallSystemLibrary(provider);
  provider.AddClassFile(cls);
  Machine machine({}, &provider);
  auto out = machine.CallStatic(cls.name(), "f", "(I)I", {Value::Int(arg)});
  EXPECT_TRUE(out.ok()) << (out.ok() ? "" : out.error().ToString());
  EXPECT_FALSE(out->threw) << out->exception_class;
  return out->value.AsInt();
}

TEST(MethodEditorTest, InsertAtEntryPreservesSemantics) {
  ClassFile cls = BuildLoopClass();
  int before = RunF(cls, 10);

  MethodInfo* method = cls.FindMethod("f", "(I)I");
  auto editor = MethodEditor::Open(&cls, method);
  ASSERT_TRUE(editor.ok());
  // Harmless preamble: push + pop.
  ASSERT_TRUE(editor->InsertBefore(0, {{Op::kBipush, 42, 0}, {Op::kPop, 0, 0}}).ok());
  ASSERT_TRUE(editor->Commit().ok());

  EXPECT_EQ(RunF(cls, 10), before);
}

TEST(MethodEditorTest, BackwardBranchSkipsInsertedCode) {
  // Count how many times the preamble executes by making it increment a
  // static counter; a back edge to the old first instruction must not re-run
  // the preamble.
  ClassBuilder cb("rw/Guard", "java/lang/Object");
  cb.AddField(AccessFlags::kStatic | AccessFlags::kPublic, "count", "I");
  MethodBuilder& m = cb.AddMethod(AccessFlags::kStatic | AccessFlags::kPublic, "f", "(I)I");
  Label loop = m.NewLabel(), done = m.NewLabel();
  m.Bind(loop);
  m.LoadLocal("I", 0).Branch(Op::kIfle, done);
  m.Emit(Op::kIinc, 0, -1);
  m.Branch(Op::kGoto, loop);
  m.Bind(done).GetStatic("rw/Guard", "count", "I").Emit(Op::kIreturn);
  ClassFile cls = MustBuild(cb);

  MethodInfo* method = cls.FindMethod("f", "(I)I");
  uint16_t counter = cls.pool().AddFieldRef("rw/Guard", "count", "I");
  auto editor = MethodEditor::Open(&cls, method);
  ASSERT_TRUE(editor.ok());
  ASSERT_TRUE(editor
                  ->InsertBefore(0, {{Op::kGetstatic, counter, 0},
                                     {Op::kIconst1, 0, 0},
                                     {Op::kIadd, 0, 0},
                                     {Op::kPutstatic, counter, 0}})
                  .ok());
  ASSERT_TRUE(editor->Commit().ok());

  // Loop runs 5 iterations; preamble must execute exactly once.
  EXPECT_EQ(RunF(cls, 5), 1);
}

TEST(MethodEditorTest, RewrittenClassStillVerifies) {
  ClassFile cls = BuildLoopClass();
  MethodInfo* method = cls.FindMethod("f", "(I)I");
  auto editor = MethodEditor::Open(&cls, method);
  ASSERT_TRUE(editor.ok());
  ASSERT_TRUE(editor->InsertBefore(0, {{Op::kBipush, 1, 0}, {Op::kPop, 0, 0}}).ok());
  ASSERT_TRUE(editor->Commit().ok());

  ClassBuilder obj_cb("java/lang/Object", "");
  obj_cb.AddDefaultConstructor();
  ClassFile object = MustBuild(obj_cb);
  MapClassEnv env;
  env.Add(&object);
  auto verified = VerifyClass(cls, env);
  EXPECT_TRUE(verified.ok()) << (verified.ok() ? "" : verified.error().ToString());
}

TEST(MethodEditorTest, HandlerRangesShiftWithCode) {
  ClassBuilder cb("rw/Handler", "java/lang/Object");
  MethodBuilder& m = cb.AddMethod(AccessFlags::kStatic | AccessFlags::kPublic, "f", "(I)I");
  Label start = m.NewLabel(), end = m.NewLabel(), handler = m.NewLabel();
  m.Bind(start);
  m.PushInt(10).LoadLocal("I", 0).Emit(Op::kIdiv).Emit(Op::kIreturn);
  m.Bind(end);
  m.Bind(handler);
  m.Emit(Op::kPop).PushInt(-1).Emit(Op::kIreturn);
  m.AddHandler(start, end, handler, "java/lang/ArithmeticException");
  ClassFile cls = MustBuild(cb);

  MethodInfo* method = cls.FindMethod("f", "(I)I");
  auto editor = MethodEditor::Open(&cls, method);
  ASSERT_TRUE(editor.ok());
  ASSERT_TRUE(editor->InsertBefore(0, {{Op::kBipush, 9, 0}, {Op::kPop, 0, 0}}).ok());
  ASSERT_TRUE(editor->Commit().ok());

  EXPECT_EQ(RunF(cls, 2), 5);    // normal path
  EXPECT_EQ(RunF(cls, 0), -1);   // divide by zero caught by shifted handler
}

TEST(MethodEditorTest, MaxStackGrowsWhenNeeded) {
  ClassFile cls = BuildLoopClass();
  MethodInfo* method = cls.FindMethod("f", "(I)I");
  uint16_t old_stack = method->code->max_stack;
  auto editor = MethodEditor::Open(&cls, method);
  ASSERT_TRUE(editor.ok());
  std::vector<Instr> deep;
  for (int i = 0; i < 6; i++) {
    deep.push_back({Op::kBipush, i, 0});
  }
  for (int i = 0; i < 5; i++) {
    deep.push_back({Op::kIadd, 0, 0});
  }
  deep.push_back({Op::kPop, 0, 0});
  ASSERT_TRUE(editor->InsertBefore(0, deep).ok());
  ASSERT_TRUE(editor->Commit().ok());
  EXPECT_GE(method->code->max_stack, 6);
  EXPECT_GT(method->code->max_stack, old_stack);
  EXPECT_EQ(RunF(cls, 4), 10);
}

TEST(MethodEditorTest, ReplaceSwapsInstruction) {
  ClassBuilder cb("rw/Rep", "java/lang/Object");
  MethodBuilder& m = cb.AddMethod(AccessFlags::kStatic | AccessFlags::kPublic, "f", "(I)I");
  m.LoadLocal("I", 0).PushInt(3).Emit(Op::kIadd).Emit(Op::kIreturn);
  ClassFile cls = MustBuild(cb);
  MethodInfo* method = cls.FindMethod("f", "(I)I");
  auto editor = MethodEditor::Open(&cls, method);
  ASSERT_TRUE(editor.ok());
  // Replace iadd (index 2) with isub.
  ASSERT_TRUE(editor->Replace(2, {{Op::kIsub, 0, 0}}).ok());
  ASSERT_TRUE(editor->Commit().ok());
  EXPECT_EQ(RunF(cls, 10), 7);
}

TEST(MethodEditorTest, OpenFailsOnBodylessMethod) {
  ClassBuilder cb("rw/Nat", "java/lang/Object");
  cb.AddNativeMethod(AccessFlags::kStatic, "n", "()V");
  ClassFile cls = MustBuild(cb);
  EXPECT_FALSE(MethodEditor::Open(&cls, cls.FindMethod("n", "()V")).ok());
}

// --- filter pipeline -------------------------------------------------------------

class CountingFilter : public CodeFilter {
 public:
  explicit CountingFilter(std::string tag, std::vector<std::string>* order)
      : tag_(std::move(tag)), order_(order) {}
  std::string name() const override { return tag_; }
  Result<FilterOutcome> Apply(ClassFile& cls, const FilterContext& ctx) override {
    order_->push_back(tag_);
    FilterOutcome outcome;
    outcome.checks_performed = 1;
    return outcome;
  }

 private:
  std::string tag_;
  std::vector<std::string>* order_;
};

class RenamingFilter : public CodeFilter {
 public:
  std::string name() const override { return "renamer"; }
  Result<FilterOutcome> Apply(ClassFile& cls, const FilterContext& ctx) override {
    FilterOutcome outcome;
    ClassBuilder cb("rw/Replaced", "java/lang/Object");
    outcome.replacement = cb.Build().value();
    return outcome;
  }
};

TEST(FilterPipelineTest, RunsFiltersInStackingOrder) {
  std::vector<std::string> order;
  MapClassEnv env;
  FilterPipeline pipeline(&env);
  pipeline.Add(std::make_unique<CountingFilter>("first", &order));
  pipeline.Add(std::make_unique<CountingFilter>("second", &order));

  ClassBuilder cb("rw/P", "java/lang/Object");
  auto result = pipeline.Run(MustBuild(cb));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(order, (std::vector<std::string>{"first", "second"}));
  EXPECT_EQ(result->checks_performed, 2u);
  EXPECT_EQ(result->filters_run.size(), 2u);
  EXPECT_FALSE(result->modified);
}

TEST(FilterPipelineTest, ReplacementClassFlowsThrough) {
  MapClassEnv env;
  FilterPipeline pipeline(&env);
  pipeline.Add(std::make_unique<RenamingFilter>());
  ClassBuilder cb("rw/Original", "java/lang/Object");
  auto result = pipeline.Run(MustBuild(cb));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->class_name, "rw/Replaced");
  EXPECT_TRUE(result->modified);
  auto back = ReadClassFile(result->class_bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->name(), "rw/Replaced");
}

TEST(FilterPipelineTest, ParsesBytesOnce) {
  MapClassEnv env;
  FilterPipeline pipeline(&env);
  ClassBuilder cb("rw/Bytes", "java/lang/Object");
  ClassFile cls = MustBuild(cb);
  auto result = pipeline.Run(MustWriteClassFile(cls));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->class_name, "rw/Bytes");
}

}  // namespace
}  // namespace dvm
