// The observability layer: virtual-clock span tracing, log-bucketed latency
// histograms, the two exporters, and the end-to-end guarantees the layer
// advertises — deterministic traces for identical seeds, and proxy stage
// spans that account for every nanosecond of ProxyResponse::cpu_nanos.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/dvm/redirect_client.h"
#include "src/runtime/syslib.h"
#include "src/services/security_service.h"
#include "src/services/verify_service.h"
#include "src/simnet/fault.h"
#include "src/support/logging.h"
#include "src/support/rng.h"
#include "src/support/stats.h"
#include "src/support/trace.h"
#include "src/workloads/applets.h"

namespace dvm {
namespace {

// --- Tracer -----------------------------------------------------------------------

TEST(TracerTest, ParentChildNestingAndTrackInheritance) {
  Tracer tracer;
  SpanId root = tracer.Begin("fetch", /*parent=*/0, 100, "client", /*track=*/3);
  SpanId child = tracer.Begin("attempt", root, 150, "client");
  SpanId leaf = tracer.Emit("queue", child, 150, 175, "link");
  tracer.Annotate(child, "replica", "1");
  tracer.End(child, 400);
  tracer.End(root, 500);

  std::vector<Span> spans = tracer.Finished();
  ASSERT_EQ(spans.size(), 3u);
  // Sorted by (start, id): root then child then leaf.
  EXPECT_EQ(spans[0].id, root);
  EXPECT_EQ(spans[1].id, child);
  EXPECT_EQ(spans[2].id, leaf);
  EXPECT_EQ(spans[1].parent, root);
  EXPECT_EQ(spans[2].parent, child);
  // track=0 inherits the parent's lane transitively.
  EXPECT_EQ(spans[0].track, 3u);
  EXPECT_EQ(spans[1].track, 3u);
  EXPECT_EQ(spans[2].track, 3u);
  EXPECT_EQ(spans[0].duration_nanos(), 400u);
  ASSERT_EQ(spans[1].annotations.size(), 1u);
  EXPECT_EQ(spans[1].annotations[0].first, "replica");
  EXPECT_EQ(spans[1].annotations[0].second, "1");
}

TEST(TracerTest, EndAndAnnotateOnUnknownIdAreNoOps) {
  Tracer tracer;
  tracer.End(42, 100);
  tracer.Annotate(42, "k", "v");
  EXPECT_EQ(tracer.finished_count(), 0u);
  EXPECT_EQ(tracer.open_count(), 0u);
}

TEST(TracerTest, ThreadedBeginEndKeepsEverySpan) {
  Tracer tracer;
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&tracer, t] {
      for (int i = 0; i < kSpansPerThread; i++) {
        uint64_t at = static_cast<uint64_t>(i) * 10;
        SpanId parent = tracer.Begin("outer " + std::to_string(t), 0, at, "test");
        tracer.Emit("inner", parent, at, at + 5, "test");
        tracer.End(parent, at + 9);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }

  std::vector<Span> spans = tracer.Finished();
  ASSERT_EQ(spans.size(), static_cast<size_t>(kThreads) * kSpansPerThread * 2);
  EXPECT_EQ(tracer.open_count(), 0u);
  // Ids are unique, and every child's parent is a real span.
  std::map<SpanId, const Span*> by_id;
  for (const Span& span : spans) {
    EXPECT_TRUE(by_id.emplace(span.id, &span).second) << "duplicate id " << span.id;
  }
  for (const Span& span : spans) {
    if (span.parent != 0) {
      ASSERT_TRUE(by_id.count(span.parent));
      EXPECT_GE(span.start_nanos, by_id[span.parent]->start_nanos);
    }
  }
}

TEST(SpanScopeTest, OpensAndClosesOnClock) {
  Tracer tracer;
  uint64_t now = 1000;
  {
    SpanScope span(&tracer, [&now] { return now; }, "work", 0, "test");
    EXPECT_NE(span.id(), 0u);
    span.Annotate("k", "v");
    now = 1750;
  }
  std::vector<Span> spans = tracer.Finished();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].start_nanos, 1000u);
  EXPECT_EQ(spans[0].end_nanos, 1750u);

  // Null tracer: every operation is a no-op and id() is 0.
  SpanScope off(nullptr, [] { return uint64_t{0}; }, "off");
  EXPECT_EQ(off.id(), 0u);
  off.Annotate("k", "v");
}

// --- Histogram --------------------------------------------------------------------

TEST(HistogramTest, BucketBoundsGrowAndCover) {
  EXPECT_EQ(Histogram::BucketBound(0), 1u);
  for (size_t i = 1; i < Histogram::kBuckets; i++) {
    EXPECT_GT(Histogram::BucketBound(i), Histogram::BucketBound(i - 1));
  }
  // The top bucket covers any virtual duration the simulation produces
  // (>= 100 virtual seconds in nanos).
  EXPECT_GE(Histogram::BucketBound(Histogram::kBuckets - 1), 100u * 1'000'000'000u);
  EXPECT_EQ(Histogram::BucketFor(0), 0u);
  EXPECT_EQ(Histogram::BucketFor(1), 0u);
  EXPECT_EQ(Histogram::BucketFor(2), 1u);
}

TEST(HistogramTest, CountSumMinMax) {
  Histogram h;
  h.Record(5);
  h.Record(100);
  h.Record(3);
  Histogram::Snapshot snap = h.TakeSnapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_EQ(snap.sum, 108u);
  EXPECT_EQ(snap.min, 3u);
  EXPECT_EQ(snap.max, 100u);
  EXPECT_DOUBLE_EQ(snap.Mean(), 36.0);

  h.Reset();
  snap = h.TakeSnapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, 0u);
  EXPECT_EQ(snap.Percentile(50), 0.0);
}

// Quantile accuracy against the exact SampleSet on a heavy-tailed workload:
// the log-bucketed estimate must land within one bucket width of the truth.
TEST(HistogramTest, PercentilesMatchSampleSetWithinOneBucket) {
  Rng rng(1234);
  Histogram h;
  SampleSet exact;
  for (int i = 0; i < 10'000; i++) {
    uint64_t v = static_cast<uint64_t>(rng.NextLognormal(/*mean=*/50'000.0,
                                                         /*stddev=*/80'000.0));
    h.Record(v);
    exact.Add(static_cast<double>(v));
  }
  Histogram::Snapshot snap = h.TakeSnapshot();
  ASSERT_EQ(snap.count, 10'000u);
  for (double p : {10.0, 50.0, 90.0, 99.0, 99.9}) {
    double estimate = snap.Percentile(p);
    double truth = exact.Percentile(p);
    uint64_t width = Histogram::BucketWidth(static_cast<uint64_t>(truth));
    EXPECT_NEAR(estimate, truth, static_cast<double>(width) + 1.0)
        << "p" << p << ": estimate " << estimate << " truth " << truth
        << " bucket width " << width;
  }
  EXPECT_LE(snap.Percentile(0), static_cast<double>(snap.min) + 1.0);
  EXPECT_GE(snap.Percentile(100), static_cast<double>(snap.max) - 1.0);
}

TEST(HistogramTest, ConcurrentRecordLosesNothing) {
  StatsRegistry stats;
  Histogram& h = stats.Histo("test.latency");
  constexpr int kThreads = 8;
  constexpr int kRecords = 5'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&h] {
      for (int i = 1; i <= kRecords; i++) {
        h.Record(static_cast<uint64_t>(i));
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  Histogram::Snapshot snap = stats.HistogramSnapshot("test.latency");
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads) * kRecords);
  EXPECT_EQ(snap.sum, static_cast<uint64_t>(kThreads) * kRecords * (kRecords + 1) / 2);
  EXPECT_EQ(snap.min, 1u);
  EXPECT_EQ(snap.max, static_cast<uint64_t>(kRecords));
}

// --- exporters --------------------------------------------------------------------

TEST(ChromeTraceJsonTest, GoldenSmallTrace) {
  Tracer tracer;
  SpanId root = tracer.Begin("fetch a/B", 0, 1'000, "client");
  tracer.Emit("queue", root, 1'500, 2'500, "link");
  tracer.Annotate(root, "bytes", "64");
  tracer.End(root, 3'750);

  std::string json = ChromeTraceJson(tracer.Finished(), {{"seed", "7"}});
  const std::string expected =
      "{\n"
      "\"displayTimeUnit\": \"ns\",\n"
      "\"otherData\": {\"seed\": \"7\"},\n"
      "\"traceEvents\": [\n"
      "{\"name\":\"fetch a/B\",\"cat\":\"client\",\"ph\":\"X\",\"ts\":1.000,"
      "\"dur\":2.750,\"pid\":1,\"tid\":1,\"args\":{\"span\":\"1\",\"parent\":\"0\","
      "\"bytes\":\"64\"}},\n"
      "{\"name\":\"queue\",\"cat\":\"link\",\"ph\":\"X\",\"ts\":1.500,"
      "\"dur\":1.000,\"pid\":1,\"tid\":1,\"args\":{\"span\":\"2\",\"parent\":\"1\"}}\n"
      "]\n"
      "}\n";
  EXPECT_EQ(json, expected);
}

TEST(ChromeTraceJsonTest, EscapesSpecialCharacters) {
  Tracer tracer;
  tracer.Emit("quote\" slash\\ tab\t", 0, 0, 1);
  std::string json = ChromeTraceJson(tracer.Finished());
  EXPECT_NE(json.find("quote\\\" slash\\\\ tab\\t"), std::string::npos);
}

TEST(PrometheusTextTest, GoldenCountersAndHistogram) {
  StatsRegistry stats;
  stats.Counter("proxy.requests").Add(3);
  Histogram& h = stats.Histo("proxy.request_cpu_nanos");
  h.Record(2);
  h.Record(4);

  std::string text = PrometheusText(stats, {{"actor", "p0"}});
  const std::string expected =
      "# TYPE dvm_proxy_requests counter\n"
      "dvm_proxy_requests{actor=\"p0\"} 3\n"
      "# TYPE dvm_proxy_request_cpu_nanos histogram\n"
      "dvm_proxy_request_cpu_nanos_bucket{actor=\"p0\",le=\"1\"} 0\n"
      "dvm_proxy_request_cpu_nanos_bucket{actor=\"p0\",le=\"2\"} 1\n"
      "dvm_proxy_request_cpu_nanos_bucket{actor=\"p0\",le=\"3\"} 1\n"
      "dvm_proxy_request_cpu_nanos_bucket{actor=\"p0\",le=\"4\"} 2\n"
      "dvm_proxy_request_cpu_nanos_bucket{actor=\"p0\",le=\"+Inf\"} 2\n"
      "dvm_proxy_request_cpu_nanos_sum{actor=\"p0\"} 6\n"
      "dvm_proxy_request_cpu_nanos_count{actor=\"p0\"} 2\n";
  EXPECT_EQ(text, expected);
}

// --- end-to-end: spans through the real request path ------------------------------

SecurityPolicy TracePolicy() {
  auto policy = ParseSecurityPolicy(R"(
    <policy version="1">
      <domain sid="user" code="app/*"/>
      <domain sid="user" code="applet/*"/>
      <allow sid="user" operation="*" target="*"/>
    </policy>)");
  EXPECT_TRUE(policy.ok());
  return std::move(policy).value();
}

// One fetch-mix run with faults, returning the exported Chrome JSON.
struct TraceRun {
  std::string json;
  uint64_t final_nanos = 0;
  std::vector<Span> spans;
};

TraceRun RunTracedWorkload(uint64_t seed) {
  auto applets = BuildAppletPopulation(4, seed);
  MapClassProvider origin;
  InstallSystemLibrary(origin);
  std::vector<std::string> classes;
  for (const auto& applet : applets) {
    applet.InstallInto(&origin);
    for (const auto& name : applet.ClassNames()) {
      classes.push_back(name);
    }
  }
  std::vector<ClassFile> library = BuildSystemLibrary();
  MapClassEnv library_env;
  for (const auto& cls : library) {
    library_env.Add(&cls);
  }
  DvmServerConfig server_config;
  server_config.policy = TracePolicy();
  server_config.proxy.sign_output = true;
  DvmServer server(std::move(server_config), &origin);

  ProxyCluster cluster(3, ProxyConfig{}, &library_env, &origin);
  for (size_t i = 0; i < cluster.size(); i++) {
    cluster.replica(i).AddFilter(std::make_unique<VerificationFilter>());
  }
  FaultPlan plan;
  plan.seed = seed;
  plan.links["client-proxy"] = LinkFaults{0.05, 0, kMillisecond};
  FaultInjector injector(plan);
  cluster.SetFaultInjector(&injector);

  RedirectingClient client(&server, nullptr, DvmMachineConfig(), MakeEthernet10Mb());
  client.UseCluster(&cluster);
  Tracer tracer;
  client.SetTracer(&tracer);
  for (const auto& name : classes) {
    EXPECT_TRUE(client.FetchClass(name).ok());
  }

  server.console().IngestTrace(tracer);
  TraceRun run;
  run.spans = server.console().trace_spans();
  run.json = ChromeTraceJson(run.spans, {{"seed", std::to_string(seed)}});
  run.final_nanos = client.machine().virtual_nanos();
  return run;
}

TEST(TraceEndToEndTest, IdenticalSeedsProduceByteIdenticalJson) {
  TraceRun first = RunTracedWorkload(7);
  TraceRun second = RunTracedWorkload(7);
  EXPECT_EQ(first.final_nanos, second.final_nanos);
  EXPECT_EQ(first.json, second.json);

  TraceRun other = RunTracedWorkload(8);
  EXPECT_NE(first.json, other.json);
}

TEST(TraceEndToEndTest, FetchSpansNestClientLinkAndProxyStages) {
  TraceRun run = RunTracedWorkload(7);
  ASSERT_FALSE(run.spans.empty());

  std::map<SpanId, const Span*> by_id;
  for (const Span& span : run.spans) {
    by_id[span.id] = &span;
  }
  size_t fetch_roots = 0;
  size_t proxy_spans = 0;
  size_t link_spans = 0;
  for (const Span& span : run.spans) {
    if (span.parent != 0) {
      ASSERT_TRUE(by_id.count(span.parent)) << span.name;
    } else {
      EXPECT_EQ(span.name.rfind("fetch ", 0), 0u) << span.name;
      fetch_roots++;
    }
    if (span.category == "proxy" && span.name.rfind("proxy ", 0) == 0) {
      proxy_spans++;
    }
    if (span.category == "link") {
      link_spans++;
    }
  }
  EXPECT_GT(fetch_roots, 0u);
  EXPECT_GT(proxy_spans, 0u);
  EXPECT_GT(link_spans, 0u);
}

// The acceptance invariant: the proxy's stage child spans, laid end to end,
// account for exactly ProxyResponse::cpu_nanos.
TEST(TraceEndToEndTest, ProxyStageSpansSumToCpuNanos) {
  auto applets = BuildAppletPopulation(2, /*seed=*/3);
  MapClassProvider origin;
  InstallSystemLibrary(origin);
  applets[0].InstallInto(&origin);
  std::vector<ClassFile> library = BuildSystemLibrary();
  MapClassEnv library_env;
  for (const auto& cls : library) {
    library_env.Add(&cls);
  }
  DvmProxy proxy(ProxyConfig{}, &library_env, &origin);
  proxy.AddFilter(std::make_unique<VerificationFilter>());

  Tracer tracer;
  const std::string cls = applets[0].ClassNames()[0];
  auto response = proxy.HandleRequest(cls, "", TraceContext{&tracer, 0, /*at=*/500});
  ASSERT_TRUE(response.ok());

  std::vector<Span> spans = tracer.Finished();
  const Span* request = nullptr;
  for (const Span& span : spans) {
    if (span.name == "proxy " + cls) {
      request = &span;
    }
  }
  ASSERT_NE(request, nullptr);
  EXPECT_EQ(request->start_nanos, 500u);
  EXPECT_EQ(request->duration_nanos(), response->cpu_nanos);

  uint64_t stage_sum = 0;
  uint64_t cursor = request->start_nanos;
  for (const Span& span : spans) {
    if (span.parent != request->id) {
      continue;
    }
    // Stages tile the request span: each starts where the previous ended.
    EXPECT_EQ(span.start_nanos, cursor) << span.name;
    cursor = span.end_nanos;
    stage_sum += span.duration_nanos();
  }
  EXPECT_EQ(stage_sum, response->cpu_nanos);
}

// --- AuditRing wrap/drop regression (satellite) -----------------------------------

TEST(AuditRingTest, WrapKeepsNewestAndCountsDropped) {
  constexpr size_t kCapacity = 16;
  constexpr size_t kOverflow = 5;
  AuditRing ring(kCapacity);
  for (size_t i = 0; i < kCapacity + kOverflow; i++) {
    ring.Push("event-" + std::to_string(i));
  }
  EXPECT_EQ(ring.size(), kCapacity);
  EXPECT_EQ(ring.dropped(), kOverflow);
  std::vector<std::string> events = ring.Snapshot();
  ASSERT_EQ(events.size(), kCapacity);
  // Oldest -> newest, the kOverflow oldest gone.
  EXPECT_EQ(events.front(), "event-" + std::to_string(kOverflow));
  EXPECT_EQ(events.back(), "event-" + std::to_string(kCapacity + kOverflow - 1));
}

// --- logging fast path (satellite) ------------------------------------------------

TEST(LoggingTest, FilteredLogDoesNotEvaluateOperands) {
  LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kWarning);
  EXPECT_TRUE(LogEnabled(LogLevel::kError));
  EXPECT_FALSE(LogEnabled(LogLevel::kDebug));

  int evaluations = 0;
  auto expensive = [&evaluations] {
    evaluations++;
    return std::string("payload");
  };
  DVM_LOG(kDebug) << expensive();
  EXPECT_EQ(evaluations, 0);

  SetLogLevel(saved);
}

TEST(LoggingTest, LevelIsReadableWhileLoggingFromOtherThreads) {
  LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kOff);
  std::atomic<bool> stop{false};
  std::thread logger([&stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      DVM_LOG(kDebug) << "spin";
    }
  });
  for (int i = 0; i < 1'000; i++) {
    SetLogLevel(i % 2 == 0 ? LogLevel::kOff : LogLevel::kError);
  }
  stop.store(true, std::memory_order_relaxed);
  logger.join();
  SetLogLevel(saved);
}

}  // namespace
}  // namespace dvm
