#include "src/runtime/heap.h"

#include <deque>

#include "src/support/interner.h"

namespace dvm {
namespace {

uint32_t IntArraySym() {
  static const uint32_t sym = InternSymbol("[I");
  return sym;
}

uint32_t LongArraySym() {
  static const uint32_t sym = InternSymbol("[J");
  return sym;
}

uint32_t StringSym() {
  static const uint32_t sym = InternSymbol("java/lang/String");
  return sym;
}

}  // namespace

size_t HeapObject::SizeBytes() const {
  size_t base = 32;
  switch (kind) {
    case Kind::kFree:
      return 0;
    case Kind::kInstance:
      return base + fields.size() * 8;
    case Kind::kIntArray:
      return base + ints.size() * 4;
    case Kind::kLongArray:
      return base + longs.size() * 8;
    case Kind::kRefArray:
      return base + refs.size() * 4;
    case Kind::kString:
      return base + str.size();
  }
  return base;
}

int32_t HeapObject::ArrayLength() const {
  switch (kind) {
    case Kind::kIntArray:
      return static_cast<int32_t>(ints.size());
    case Kind::kLongArray:
      return static_cast<int32_t>(longs.size());
    case Kind::kRefArray:
      return static_cast<int32_t>(refs.size());
    default:
      return -1;
  }
}

Status Heap::Reserve(size_t bytes) const {
  if (live_bytes_ + bytes > capacity_bytes_) {
    return Error{ErrorCode::kCapacity, "guest heap exhausted"};
  }
  return Status::Ok();
}

Result<ObjRef> Heap::Place(HeapObject obj) {
  size_t bytes = obj.SizeBytes();
  DVM_RETURN_IF_ERROR(Reserve(bytes));
  stats_.allocations++;
  stats_.allocated_bytes += bytes;
  live_bytes_ += bytes;
  live_objects_++;

  if (!free_list_.empty()) {
    ObjRef ref = free_list_.back();
    free_list_.pop_back();
    objects_[ref] = std::move(obj);
    return ref;
  }
  objects_.push_back(std::move(obj));
  return static_cast<ObjRef>(objects_.size() - 1);
}

Result<ObjRef> Heap::AllocInstance(const std::string& class_name, size_t field_count) {
  HeapObject obj;
  obj.kind = HeapObject::Kind::kInstance;
  obj.class_name = class_name;
  obj.class_sym = InternSymbol(class_name);
  obj.fields.assign(field_count, Value::Null());
  return Place(std::move(obj));
}

Result<ObjRef> Heap::AllocInstance(const std::string& class_name, uint32_t class_sym,
                                   const std::vector<Value>& field_template) {
  HeapObject obj;
  obj.kind = HeapObject::Kind::kInstance;
  obj.class_name = class_name;
  obj.class_sym = class_sym;
  obj.fields = field_template;
  return Place(std::move(obj));
}

// The array allocators check guest-heap capacity BEFORE building the backing
// store: `ldc 2147483647; newarray` is verifier-legal, and sizing the vector
// first would physically allocate gigabytes of host memory only to have
// Place() reject the object afterwards.
Result<ObjRef> Heap::AllocIntArray(int32_t length) {
  if (length < 0) {
    return Error{ErrorCode::kRuntimeError, "negative array size"};
  }
  DVM_RETURN_IF_ERROR(Reserve(32 + static_cast<size_t>(length) * 4));
  HeapObject obj;
  obj.kind = HeapObject::Kind::kIntArray;
  obj.class_name = "[I";
  obj.class_sym = IntArraySym();
  obj.ints.assign(static_cast<size_t>(length), 0);
  return Place(std::move(obj));
}

Result<ObjRef> Heap::AllocLongArray(int32_t length) {
  if (length < 0) {
    return Error{ErrorCode::kRuntimeError, "negative array size"};
  }
  DVM_RETURN_IF_ERROR(Reserve(32 + static_cast<size_t>(length) * 8));
  HeapObject obj;
  obj.kind = HeapObject::Kind::kLongArray;
  obj.class_name = "[J";
  obj.class_sym = LongArraySym();
  obj.longs.assign(static_cast<size_t>(length), 0);
  return Place(std::move(obj));
}

Result<ObjRef> Heap::AllocRefArray(const std::string& descriptor, int32_t length,
                                   uint32_t descriptor_sym) {
  if (length < 0) {
    return Error{ErrorCode::kRuntimeError, "negative array size"};
  }
  DVM_RETURN_IF_ERROR(Reserve(32 + static_cast<size_t>(length) * 4));
  HeapObject obj;
  obj.kind = HeapObject::Kind::kRefArray;
  obj.class_name = descriptor;
  obj.class_sym = descriptor_sym != kNoSymbol ? descriptor_sym : InternSymbol(descriptor);
  obj.refs.assign(static_cast<size_t>(length), kNullRef);
  return Place(std::move(obj));
}

Result<ObjRef> Heap::AllocString(const std::string& value) {
  HeapObject obj;
  obj.kind = HeapObject::Kind::kString;
  obj.class_name = "java/lang/String";
  obj.class_sym = StringSym();
  obj.str = value;
  return Place(std::move(obj));
}

HeapObject* Heap::Get(ObjRef ref) {
  if (ref == kNullRef || ref >= objects_.size() ||
      objects_[ref].kind == HeapObject::Kind::kFree) {
    return nullptr;
  }
  return &objects_[ref];
}

const HeapObject* Heap::Get(ObjRef ref) const {
  return const_cast<Heap*>(this)->Get(ref);
}

void Heap::Mark(ObjRef root) {
  std::deque<ObjRef> work{root};
  while (!work.empty()) {
    ObjRef ref = work.front();
    work.pop_front();
    HeapObject* obj = Get(ref);
    if (obj == nullptr || obj->marked) {
      continue;
    }
    obj->marked = true;
    if (obj->kind == HeapObject::Kind::kInstance) {
      for (const Value& v : obj->fields) {
        if (v.kind == Value::Kind::kRef && !v.IsNullRef()) {
          work.push_back(v.AsRef());
        }
      }
    } else if (obj->kind == HeapObject::Kind::kRefArray) {
      for (ObjRef element : obj->refs) {
        if (element != kNullRef) {
          work.push_back(element);
        }
      }
    }
  }
}

void Heap::Collect(const std::vector<ObjRef>& roots) {
  stats_.gc_runs++;
  for (ObjRef root : roots) {
    Mark(root);
  }
  for (ObjRef ref = 1; ref < objects_.size(); ref++) {
    HeapObject& obj = objects_[ref];
    if (obj.kind == HeapObject::Kind::kFree) {
      continue;
    }
    if (obj.marked) {
      obj.marked = false;
      continue;
    }
    live_bytes_ -= obj.SizeBytes();
    live_objects_--;
    stats_.objects_collected++;
    obj = HeapObject{};
    free_list_.push_back(ref);
  }
}

}  // namespace dvm
