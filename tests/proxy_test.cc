#include <gtest/gtest.h>

#include "src/bytecode/builder.h"
#include "src/bytecode/serializer.h"
#include "src/proxy/cache.h"
#include "src/proxy/proxy.h"
#include "src/proxy/signature.h"
#include "src/runtime/syslib.h"
#include "src/services/verify_service.h"

namespace dvm {
namespace {

ClassFile MustBuild(ClassBuilder& cb) {
  auto built = cb.Build();
  EXPECT_TRUE(built.ok()) << (built.ok() ? "" : built.error().ToString());
  return std::move(built).value();
}

ClassFile SimpleClass(const std::string& name) {
  ClassBuilder cb(name, "java/lang/Object");
  MethodBuilder& m = cb.AddMethod(AccessFlags::kStatic | AccessFlags::kPublic, "main", "()V");
  m.GetStatic("remote/Thing", "x", "I").Emit(Op::kPop).Emit(Op::kReturn);
  return MustBuild(cb);
}

// --- signer -----------------------------------------------------------------------

TEST(CodeSignerTest, SignAndVerifyRoundTrip) {
  CodeSigner signer("org-key");
  ClassBuilder cb("sig/C", "java/lang/Object");
  Bytes signed_bytes = signer.SignedBytes(MustBuild(cb)).value();
  EXPECT_TRUE(signer.VerifyClassBytes(signed_bytes).ok());
}

TEST(CodeSignerTest, DetectsTampering) {
  CodeSigner signer("org-key");
  ClassBuilder cb("sig/C", "java/lang/Object");
  cb.AddField(AccessFlags::kPublic, "f", "I");
  Bytes signed_bytes = signer.SignedBytes(MustBuild(cb)).value();
  // Flip a byte somewhere in the middle (not in the signature itself).
  signed_bytes[signed_bytes.size() / 3] ^= 0x01;
  auto status = signer.VerifyClassBytes(signed_bytes);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, ErrorCode::kSecurityError);
}

TEST(CodeSignerTest, RejectsUnsignedAndWrongKey) {
  CodeSigner signer("org-key");
  ClassBuilder cb("sig/C", "java/lang/Object");
  ClassFile cls = MustBuild(cb);
  EXPECT_FALSE(signer.VerifyClassBytes(MustWriteClassFile(cls)).ok());

  CodeSigner other("evil-key");
  Bytes foreign = other.SignedBytes(std::move(cls)).value();
  EXPECT_FALSE(signer.VerifyClassBytes(foreign).ok());
}

// --- cache ------------------------------------------------------------------------

TEST(RewriteCacheTest, HitMissAccounting) {
  RewriteCache cache(1 << 20);
  EXPECT_FALSE(cache.Get("a").has_value());
  cache.Put("a", CachedClass{Bytes{1, 2, 3}, {}});
  std::optional<CachedClass> hit = cache.Get("a");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->main_class, (Bytes{1, 2, 3}));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

// One shard gives the classic global LRU order, which this test pins down.
TEST(RewriteCacheTest, EvictsLruUnderPressure) {
  RewriteCache cache(400, /*num_shards=*/1);
  cache.Put("a", CachedClass{Bytes(100, 0), {}});
  cache.Put("b", CachedClass{Bytes(100, 0), {}});
  ASSERT_TRUE(cache.Get("a").has_value());  // refresh a
  cache.Put("c", CachedClass{Bytes(100, 0), {}});  // must evict b (LRU)
  EXPECT_TRUE(cache.Get("a").has_value());
  EXPECT_FALSE(cache.Get("b").has_value());
  EXPECT_TRUE(cache.Get("c").has_value());
}

TEST(RewriteCacheTest, OversizeEntriesAreNotCached) {
  RewriteCache cache(100, /*num_shards=*/1);
  cache.Put("big", CachedClass{Bytes(500, 0), {}});
  EXPECT_EQ(cache.entries(), 0u);
}

TEST(RewriteCacheTest, ShardedKeepsEveryShardWithinItsBudget) {
  RewriteCache cache(8 * 400, /*num_shards=*/8);
  for (int i = 0; i < 200; i++) {
    cache.Put("cls/" + std::to_string(i), CachedClass{Bytes(100, 0), {}});
  }
  EXPECT_LE(cache.size_bytes(), 8u * 400u);
  size_t shard_entries = 0;
  for (const auto& shard : cache.PerShardStats()) {
    EXPECT_LE(shard.bytes, 400u);
    shard_entries += shard.entries;
  }
  EXPECT_EQ(shard_entries, cache.entries());
  EXPECT_GT(cache.lock_acquisitions(), 0u);
}

TEST(RewriteCacheTest, ReplacementUpdatesBytes) {
  RewriteCache cache(1 << 20);
  cache.Put("a", CachedClass{Bytes(100, 0), {}});
  size_t first = cache.size_bytes();
  cache.Put("a", CachedClass{Bytes(300, 0), {}});
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_GT(cache.size_bytes(), first);
}

// --- proxy ------------------------------------------------------------------------

class ProxyTest : public ::testing::Test {
 protected:
  ProxyTest() : library_(BuildSystemLibrary()) {
    for (const auto& cls : library_) {
      library_env_.Add(&cls);
    }
    origin_.AddClassFile(SimpleClass("app/One"));
    origin_.AddClassFile(SimpleClass("app/Two"));
    InstallSystemLibrary(origin_);  // clients boot the library through the proxy too
  }

  std::unique_ptr<DvmProxy> MakeProxyPtr(ProxyConfig config = {}) {
    auto proxy = std::make_unique<DvmProxy>(config, &library_env_, &origin_);
    proxy->AddFilter(std::make_unique<VerificationFilter>());
    return proxy;
  }

  std::vector<ClassFile> library_;
  MapClassEnv library_env_;
  MapClassProvider origin_;
};

TEST_F(ProxyTest, RewritesAndCaches) {
  auto proxy_ptr = MakeProxyPtr();
  DvmProxy& proxy = *proxy_ptr;
  auto first = proxy.HandleRequest("app/One");
  ASSERT_TRUE(first.ok()) << first.error().ToString();
  EXPECT_FALSE(first->cache_hit);
  EXPECT_GT(first->cpu_nanos, 0u);

  auto second = proxy.HandleRequest("app/One");
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->cache_hit);
  EXPECT_LT(second->cpu_nanos, first->cpu_nanos / 3);
  EXPECT_EQ(second->data, first->data);
  EXPECT_EQ(proxy.cache().hits(), 1u);

  // The rewritten class carries the verifier's stamp.
  auto parsed = ReadClassFile(first->data);
  ASSERT_TRUE(parsed.ok());
  EXPECT_NE(parsed->FindAttribute(kAttrServiceStamp), nullptr);
}

TEST_F(ProxyTest, CacheDisabledAlwaysRewrites) {
  ProxyConfig config;
  config.enable_cache = false;
  auto proxy_ptr = MakeProxyPtr(config);
  DvmProxy& proxy = *proxy_ptr;
  auto first = proxy.HandleRequest("app/One");
  auto second = proxy.HandleRequest("app/One");
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->cache_hit);
  EXPECT_GT(second->cpu_nanos, first->cpu_nanos / 2);
}

TEST_F(ProxyTest, SigningProducesVerifiableOutput) {
  ProxyConfig config;
  config.sign_output = true;
  auto proxy_ptr = MakeProxyPtr(config);
  DvmProxy& proxy = *proxy_ptr;
  auto response = proxy.HandleRequest("app/One");
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(proxy.signer().VerifyClassBytes(response->data).ok());
  // Tampering invalidates the organization signature.
  Bytes tampered = response->data;
  tampered[tampered.size() / 2] ^= 0xFF;
  EXPECT_FALSE(proxy.signer().VerifyClassBytes(tampered).ok());
}

TEST_F(ProxyTest, AuditTrailRecordsDecisions) {
  auto proxy_ptr = MakeProxyPtr();
  DvmProxy& proxy = *proxy_ptr;
  ASSERT_TRUE(proxy.HandleRequest("app/One").ok());
  ASSERT_TRUE(proxy.HandleRequest("app/One").ok());
  ASSERT_TRUE(proxy.HandleRequest("app/Two").ok());
  ASSERT_EQ(proxy.audit_trail().size(), 3u);
  EXPECT_EQ(proxy.audit_trail()[0], "REWRITE app/One");
  EXPECT_EQ(proxy.audit_trail()[1], "HIT app/One");
  EXPECT_EQ(proxy.audit_trail()[2], "REWRITE app/Two");
}

TEST_F(ProxyTest, MissingClassPropagatesError) {
  auto proxy_ptr = MakeProxyPtr();
  DvmProxy& proxy = *proxy_ptr;
  auto response = proxy.HandleRequest("no/Such");
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.error().code, ErrorCode::kNotFound);
}

TEST_F(ProxyTest, MemoryModelThrashesPastCapacity) {
  ProxyConfig config;
  config.memory_bytes = 10 * 1024 * 1024;
  config.workspace_bytes_per_request = 1024 * 1024;
  auto proxy_ptr = MakeProxyPtr(config);
  DvmProxy& proxy = *proxy_ptr;
  EXPECT_DOUBLE_EQ(proxy.ThrashFactor(5), 1.0);
  EXPECT_GT(proxy.ThrashFactor(20), 1.5);
  EXPECT_GT(proxy.ThrashFactor(40), proxy.ThrashFactor(20));
}

TEST_F(ProxyTest, SystemClassesPassThrough) {
  auto proxy_ptr = MakeProxyPtr();
  DvmProxy& proxy = *proxy_ptr;
  auto response = proxy.HandleRequest("java/lang/String");
  ASSERT_TRUE(response.ok()) << response.error().ToString();
  auto parsed = ReadClassFile(response->data);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->name(), "java/lang/String");
  EXPECT_EQ(parsed->FindAttribute(kAttrServiceStamp), nullptr);
}

}  // namespace
}  // namespace dvm
