// The centralized security service (paper section 3.2), derived from DTOS:
// security identifiers (sids) attach to code, permissions attach to
// operations, and an organization-wide XML policy defines
//   (1) the code -> sid mapping,
//   (2) the access matrix sid x (operation, target) -> allow/deny,
//   (3) the hook points: which methods get an enforcement call injected.
//
// Static component: SecurityFilter rewrites matching methods (application OR
// system library — unlike the JDK, checks can be imposed anywhere, e.g. on
// File.read) to call dvm/rt/Enforcer.checkPermission(operation, target).
//
// Dynamic component: EnforcementManager, a small client-side cache over the
// central SecurityServer. First use downloads the relevant policy slice;
// subsequent checks are local lookups. The server pushes cache invalidations
// when the policy changes.
#ifndef SRC_SERVICES_SECURITY_SERVICE_H_
#define SRC_SERVICES_SECURITY_SERVICE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/rewrite/filter.h"
#include "src/runtime/machine.h"
#include "src/support/result.h"

namespace dvm {

struct SecurityRule {
  std::string sid;             // subject security identifier ("*" = any)
  std::string operation;       // e.g. "file.open" ("*" = any)
  std::string target_pattern;  // glob over the target, e.g. "/tmp/*"
  bool allow = true;
};

struct SecurityHook {
  std::string class_pattern;   // glob over class names
  std::string method_pattern;  // glob over method names
  std::string operation;       // operation name passed to the enforcer
  // Index of the String parameter carrying the target (0-based, excluding the
  // receiver); -1 means use the static "<class>.<method>" as the target.
  int target_arg = -1;
};

struct SecurityPolicy {
  uint64_t version = 1;
  // Code -> sid assignment, first match wins. Classes with no match run with
  // the empty (trusted) sid.
  std::vector<std::pair<std::string, std::string>> code_domains;
  std::vector<SecurityRule> rules;   // first match wins; no match => deny
  std::vector<SecurityHook> hooks;

  std::string DomainForClass(const std::string& class_name) const;
  // Access matrix evaluation (Lampson): first matching rule decides.
  bool Evaluate(const std::string& sid, const std::string& operation,
                const std::string& target) const;
};

// Parses the XML policy language. Example:
//   <policy version="2">
//     <domain sid="applet" code="app/*"/>
//     <allow sid="applet" operation="file.open" target="/tmp/*"/>
//     <deny  sid="applet" operation="file.*"    target="*"/>
//     <hook class="java/io/File" method="open" operation="file.open" target-arg="0"/>
//   </policy>
Result<SecurityPolicy> ParseSecurityPolicy(const std::string& xml_text);

// Static component.
class SecurityFilter : public CodeFilter {
 public:
  explicit SecurityFilter(const SecurityPolicy* policy) : policy_(policy) {}
  std::string name() const override { return "security"; }
  Result<FilterOutcome> Apply(ClassFile& cls, const FilterContext& ctx) override;

  uint64_t checks_injected() const { return checks_injected_; }

 private:
  const SecurityPolicy* policy_;
  uint64_t checks_injected_ = 0;
};

class EnforcementManager;

// The central policy server: owns the master policy, answers slice downloads,
// and drives the cache-invalidation protocol.
class SecurityServer {
 public:
  explicit SecurityServer(SecurityPolicy policy) : policy_(std::move(policy)) {}

  const SecurityPolicy& policy() const { return policy_; }
  // Installs a new policy and invalidates every registered manager's cache.
  void UpdatePolicy(SecurityPolicy policy);

  void RegisterManager(EnforcementManager* manager) { managers_.insert(manager); }
  void UnregisterManager(EnforcementManager* manager) { managers_.erase(manager); }

  bool Evaluate(const std::string& sid, const std::string& operation,
                const std::string& target) const {
    return policy_.Evaluate(sid, operation, target);
  }

  uint64_t slice_downloads() const { return slice_downloads_; }
  void CountSliceDownload() { slice_downloads_++; }

 private:
  SecurityPolicy policy_;
  std::set<EnforcementManager*> managers_;
  uint64_t slice_downloads_ = 0;
};

// Client-side dynamic component.
class EnforcementManager {
 public:
  // `server` must outlive the manager. Registers for invalidations.
  explicit EnforcementManager(SecurityServer* server);
  ~EnforcementManager();

  // The sid the current thread runs under (assigned from the policy's code
  // mapping when the application is launched).
  void SetThreadSid(std::string sid) { thread_sid_ = std::move(sid); }
  const std::string& thread_sid() const { return thread_sid_; }

  // Core check: consults the decision cache, downloading the policy slice on
  // first use. Charges costs to `machine`. Returns allow/deny.
  bool CheckPermission(Machine& machine, const std::string& operation,
                       const std::string& target);

  // Server-driven invalidation (policy changed).
  void Invalidate();

  // Binds the dvm/rt/Enforcer natives to this manager.
  void Install(Machine& machine);

  uint64_t cache_hits() const { return cache_hits_; }
  uint64_t cache_misses() const { return cache_misses_; }
  uint64_t invalidations() const { return invalidations_; }

 private:
  SecurityServer* server_;
  std::string thread_sid_;
  bool slice_downloaded_ = false;
  std::map<std::string, bool> decision_cache_;
  uint64_t cache_hits_ = 0;
  uint64_t cache_misses_ = 0;
  uint64_t invalidations_ = 0;
};

}  // namespace dvm

#endif  // SRC_SERVICES_SECURITY_SERVICE_H_
