// Remote monitoring scenario (paper section 3.3):
//
// Two clients run applications through the DVM; the administration console
// collects session handshakes and tamper-isolated audit trails, plus a
// dynamic call graph from the profiling service. Even an applet that crashes
// cannot erase the audit events it already generated.
//
// Build & run:  ./build/examples/monitoring_console
#include <cstdio>

#include "src/bytecode/builder.h"
#include "src/dvm/dvm.h"

using namespace dvm;

namespace {

ClassFile BuildWorker() {
  ClassBuilder cb("app/Worker", "java/lang/Object");
  MethodBuilder& helper = cb.AddMethod(AccessFlags::kPublic | AccessFlags::kStatic,
                                       "transform", "(I)I");
  helper.LoadLocal("I", 0).PushInt(3).Emit(Op::kImul).Emit(Op::kIreturn);
  MethodBuilder& m = cb.AddMethod(AccessFlags::kPublic | AccessFlags::kStatic, "main", "()V");
  m.PushInt(14).InvokeStatic("app/Worker", "transform", "(I)I").Emit(Op::kPop);
  m.Emit(Op::kReturn);
  return cb.Build().value();
}

ClassFile BuildCrasher() {
  ClassBuilder cb("app/Crasher", "java/lang/Object");
  MethodBuilder& m = cb.AddMethod(AccessFlags::kPublic | AccessFlags::kStatic, "main", "()V");
  m.PushInt(1).PushInt(0).Emit(Op::kIdiv).Emit(Op::kPop).Emit(Op::kReturn);
  return cb.Build().value();
}

}  // namespace

int main() {
  MapClassProvider origin;
  origin.AddClassFile(BuildWorker());
  origin.AddClassFile(BuildCrasher());

  DvmServerConfig config;
  config.enable_profile = true;
  config.policy = *ParseSecurityPolicy(R"(
      <policy version="1">
        <domain sid="user" code="app/*"/>
        <allow sid="user" operation="*" target="*"/>
      </policy>)");
  DvmServer server(std::move(config), &origin);

  DvmClient alice(&server, DvmMachineConfig(), MakeEthernet10Mb(), "alice", "ws-alice");
  DvmClient bob(&server, DvmMachineConfig(), MakeEthernet10Mb(), "bob", "ws-bob");

  (void)alice.RunApp("app/Worker");
  auto crash = bob.RunApp("app/Crasher");
  std::printf("bob's applet terminated with: %s\n",
              crash.ok() && crash->threw ? crash->exception_class.c_str() : "(no error)");

  const AdministrationConsole& console = server.console();
  std::printf("\n--- administration console ---\n");
  std::printf("Sessions:\n");
  for (const auto& session : console.sessions()) {
    std::printf("  #%llu %s@%s (%s, %s)\n",
                static_cast<unsigned long long>(session.session_id), session.user.c_str(),
                session.client_host.c_str(), session.hardware_config.c_str(),
                session.vm_version.c_str());
  }
  std::printf("Audit log (%zu events):\n", console.log().size());
  for (const auto& event : console.log()) {
    std::printf("  [session %llu] %-13s %s\n",
                static_cast<unsigned long long>(event.session_id), event.kind.c_str(),
                event.detail.c_str());
  }
  std::printf("Dynamic call graph edges:\n");
  for (const auto& [edge, count] : console.call_graph()) {
    std::printf("  %s -> %s (x%llu)\n", edge.first.c_str(), edge.second.c_str(),
                static_cast<unsigned long long>(count));
  }
  std::printf("Code-version inventory (%zu classes served):\n",
              console.code_versions().size());
  int shown = 0;
  for (const auto& [name, digest] : console.code_versions()) {
    if (shown++ == 4) {
      std::printf("  ...\n");
      break;
    }
    std::printf("  %-24s %s\n", name.c_str(), digest.substr(0, 12).c_str());
  }
  std::printf("\nNote: the crash event for bob is preserved — audit state lives on\n"
              "a host the untrusted application cannot reach (section 3.3).\n");
  return 0;
}
