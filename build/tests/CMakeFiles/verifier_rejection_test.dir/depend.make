# Empty dependencies file for verifier_rejection_test.
# This may be replaced when dependencies are built.
