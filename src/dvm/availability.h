// Per-service availability policy: what a client does when every replica of
// the centralized services is unreachable. Two choices exist (cf. Malkhi &
// Reiter's remote playground, which faces the same trusted-intermediary
// availability problem): fail closed (no code runs until the service returns)
// or fail open (degraded direct fetch, skipping the service).
//
// Safety-critical services are pinned: verification and security enforcement
// MUST fail closed — unverified or un-instrumented code never runs — and the
// policy object refuses to configure them open. Monitoring and profiling are
// observability-only, so a deployment may declare them fail-open and keep
// serving (uninstrumented) code through an outage.
#ifndef SRC_DVM_AVAILABILITY_H_
#define SRC_DVM_AVAILABILITY_H_

#include <map>
#include <vector>

#include "src/support/result.h"

namespace dvm {

// The service components a proxy pipeline can provide (paper Figure 2).
enum class ServiceClass {
  kVerification,
  kSecurity,
  kCompilation,
  kOptimization,
  kMonitoring,
  kProfiling,
};

enum class AvailabilityMode {
  kFailClosed,  // outage => typed kUnavailable error, no code runs
  kFailOpen,    // outage => degraded direct fetch without the service
};

const char* ServiceClassName(ServiceClass service);

class AvailabilityPolicy {
 public:
  // Verification and security may never fail open.
  static bool MustFailClosed(ServiceClass service) {
    return service == ServiceClass::kVerification || service == ServiceClass::kSecurity;
  }

  // Refuses (kInvalidArgument) attempts to open a pinned service.
  Status SetMode(ServiceClass service, AvailabilityMode mode);

  // Unconfigured services default to fail-closed (the safe direction).
  AvailabilityMode ModeFor(ServiceClass service) const;

  // A fetch that depends on `required` services fails closed if ANY of them
  // does: the strictest service wins.
  AvailabilityMode EffectiveMode(const std::vector<ServiceClass>& required) const;

 private:
  std::map<ServiceClass, AvailabilityMode> modes_;
};

}  // namespace dvm

#endif  // SRC_DVM_AVAILABILITY_H_
