file(REMOVE_RECURSE
  "CMakeFiles/dvmdump.dir/dvmdump.cpp.o"
  "CMakeFiles/dvmdump.dir/dvmdump.cpp.o.d"
  "dvmdump"
  "dvmdump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvmdump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
