// Multi-threaded coverage for the concurrent proxy request path: the sharded
// rewrite cache under mixed hit/miss/invalidate traffic, single-flight miss
// coalescing (pipeline runs exactly once per key), the bounded audit ring,
// the generated-class invalidation regression, and the server worker pool.
// The CI ThreadSanitizer job runs this binary.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/bytecode/builder.h"
#include "src/dvm/dvm.h"
#include "src/policy/xml.h"
#include "src/proxy/proxy.h"
#include "src/runtime/syslib.h"
#include "src/services/verify_service.h"

namespace dvm {
namespace {

ClassFile MustBuild(ClassBuilder& cb) {
  auto built = cb.Build();
  EXPECT_TRUE(built.ok()) << (built.ok() ? "" : built.error().ToString());
  return std::move(built).value();
}

ClassFile TrivialApp(const std::string& name) {
  ClassBuilder cb(name, "java/lang/Object");
  MethodBuilder& m = cb.AddMethod(AccessFlags::kPublic | AccessFlags::kStatic, "main", "()V");
  m.PushString("ran").InvokeStatic("java/lang/System", "println", "(Ljava/lang/String;)V");
  m.Emit(Op::kReturn);
  return MustBuild(cb);
}

// Manually opened latch: lets a test hold the filter pipeline inside Apply()
// so concurrent requests for the same key demonstrably pile up behind the
// single-flight leader.
struct Gate {
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;
  std::atomic<int> entered{0};

  void WaitOpen() {
    entered.fetch_add(1);
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return open; });
  }
  void Open() {
    {
      std::lock_guard<std::mutex> lock(mu);
      open = true;
    }
    cv.notify_all();
  }
};

// Counts pipeline executions per class; optionally blocks on a gate.
class CountingFilter : public CodeFilter {
 public:
  explicit CountingFilter(Gate* gate = nullptr) : gate_(gate) {}
  std::string name() const override { return "counting"; }

  Result<FilterOutcome> Apply(ClassFile& cls, const FilterContext& ctx) override {
    runs_.fetch_add(1);
    if (gate_ != nullptr) {
      gate_->WaitOpen();
    }
    FilterOutcome outcome;
    outcome.checks_performed = 1;
    return outcome;
  }

  int runs() const { return runs_.load(); }

 private:
  Gate* gate_;
  std::atomic<int> runs_{0};
};

// Synthesizes a "$cold" companion class for one parent, like the
// repartitioning optimizer does.
class SplitterFilter : public CodeFilter {
 public:
  explicit SplitterFilter(std::string parent) : parent_(std::move(parent)) {}
  std::string name() const override { return "splitter"; }

  Result<FilterOutcome> Apply(ClassFile& cls, const FilterContext& ctx) override {
    FilterOutcome outcome;
    if (cls.name() == parent_) {
      ClassBuilder cb(parent_ + "$cold", "java/lang/Object");
      outcome.extra_classes.push_back(MustBuild(cb));
      outcome.modified = true;
      outcome.checks_performed = 1;
    }
    return outcome;
  }

 private:
  std::string parent_;
};

class ProxyConcurrencyTest : public ::testing::Test {
 protected:
  ProxyConcurrencyTest() : library_(BuildSystemLibrary()) {
    for (const auto& cls : library_) {
      library_env_.Add(&cls);
    }
    for (int i = 0; i < kNumClasses; i++) {
      origin_.AddClassFile(TrivialApp(ClassName(i)));
    }
  }

  static std::string ClassName(int i) { return "app/Cls" + std::to_string(i); }

  static constexpr int kNumClasses = 16;
  std::vector<ClassFile> library_;
  MapClassEnv library_env_;
  MapClassProvider origin_;
};

TEST_F(ProxyConcurrencyTest, SingleFlightRunsPipelineOncePerKey) {
  DvmProxy proxy(ProxyConfig{}, &library_env_, &origin_);
  Gate gate;
  auto counting = std::make_unique<CountingFilter>(&gate);
  CountingFilter* counter = counting.get();
  proxy.AddFilter(std::move(counting));

  // Leader enters the pipeline and parks on the gate.
  std::thread leader([&] { ASSERT_TRUE(proxy.HandleRequest(ClassName(0)).ok()); });
  while (gate.entered.load() == 0) {
    std::this_thread::yield();
  }

  // Followers on the same key must coalesce behind the in-flight rewrite.
  constexpr int kFollowers = 7;
  std::vector<std::thread> followers;
  std::atomic<int> follower_hits{0};
  for (int i = 0; i < kFollowers; i++) {
    followers.emplace_back([&] {
      auto response = proxy.HandleRequest(ClassName(0));
      ASSERT_TRUE(response.ok());
      if (response->cache_hit) {
        follower_hits.fetch_add(1);
      }
    });
  }
  // Give the followers time to reach the single-flight wait, then release.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  gate.Open();
  leader.join();
  for (auto& t : followers) {
    t.join();
  }

  // The expensive pipeline ran exactly once; everyone else was served the
  // leader's result from the cache.
  EXPECT_EQ(counter->runs(), 1);
  EXPECT_EQ(follower_hits.load(), kFollowers);
  EXPECT_GE(proxy.coalesced_requests(), 1u);
  EXPECT_GE(proxy.stats().Value("proxy.coalesced"), 1u);
  EXPECT_EQ(proxy.stats().Value("proxy.rewrites"), 1u);
}

TEST_F(ProxyConcurrencyTest, StressMixedHitMissInvalidateStaysWithinBudget) {
  ProxyConfig config;
  config.cache_capacity_bytes = 16 * 1024;
  config.cache_shards = 8;
  config.audit_trail_capacity = 256;
  DvmProxy proxy(config, &library_env_, &origin_);
  auto counting = std::make_unique<CountingFilter>();
  proxy.AddFilter(std::move(counting));

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 200;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; i++) {
        int pick = (i * 31 + t * 7) % kNumClasses;
        auto response = proxy.HandleRequest(ClassName(pick));
        if (!response.ok()) {
          failures.fetch_add(1);
        }
        if (t == 0 && i % 67 == 66) {
          proxy.InvalidateCache();
        }
        if (i % 50 == 0) {
          // Concurrent readers of the aggregated accounting must be safe.
          (void)proxy.MemoryInUse(kThreads);
          (void)proxy.audit_trail();
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(proxy.requests_served(), static_cast<uint64_t>(kThreads * kOpsPerThread));
  // The sharded cache never exceeds its byte budget, globally or per shard.
  EXPECT_LE(proxy.cache().size_bytes(), config.cache_capacity_bytes);
  for (const auto& shard : proxy.cache().PerShardStats()) {
    EXPECT_LE(shard.bytes, config.cache_capacity_bytes / config.cache_shards);
  }
  // The audit ring respected its cap.
  EXPECT_LE(proxy.audit_trail().size(), config.audit_trail_capacity);
  // Accounting is consistent: every request either hit, coalesced, was
  // rewritten, or was re-served after an invalidation.
  EXPECT_GT(proxy.cache().hits(), 0u);
  EXPECT_GT(proxy.stats().Value("proxy.rewrites"), 0u);
  EXPECT_GT(proxy.stats().Value("proxy.lock_acquisitions"), 0u);
}

TEST_F(ProxyConcurrencyTest, InvalidateCacheDropsGeneratedClasses) {
  DvmProxy proxy(ProxyConfig{}, &library_env_, &origin_);
  proxy.AddFilter(std::make_unique<SplitterFilter>(ClassName(0)));

  // The parent's rewrite publishes the synthesized cold half.
  auto parent = proxy.HandleRequest(ClassName(0));
  ASSERT_TRUE(parent.ok());
  ASSERT_EQ(parent->extra_classes.size(), 1u);
  ASSERT_TRUE(proxy.HandleRequest(ClassName(0) + "$cold").ok());

  // Regression: InvalidateCache used to clear only the LRU cache, so the
  // synthesized class kept being served under the old service configuration.
  proxy.InvalidateCache();
  auto stale = proxy.HandleRequest(ClassName(0) + "$cold");
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.error().code, ErrorCode::kNotFound);

  // Re-rewriting the parent republishes the split.
  ASSERT_TRUE(proxy.HandleRequest(ClassName(0)).ok());
  EXPECT_TRUE(proxy.HandleRequest(ClassName(0) + "$cold").ok());
}

TEST_F(ProxyConcurrencyTest, InvalidateDuringInFlightRewriteRefusesToPublish) {
  DvmProxy proxy(ProxyConfig{}, &library_env_, &origin_);
  Gate gate;
  auto counting = std::make_unique<CountingFilter>(&gate);
  CountingFilter* counter = counting.get();
  proxy.AddFilter(std::move(counting));
  proxy.AddFilter(std::make_unique<SplitterFilter>(ClassName(0)));

  // Leader samples the cache generation, then parks inside the pipeline.
  std::thread leader([&] {
    auto response = proxy.HandleRequest(ClassName(0));
    ASSERT_TRUE(response.ok());
    EXPECT_FALSE(response->data.empty());
  });
  while (gate.entered.load() == 0) {
    std::this_thread::yield();
  }

  // A policy change lands while the rewrite is in flight.
  proxy.InvalidateCache();
  gate.Open();
  leader.join();

  // Regression: the finished rewrite used to repopulate the cache — and the
  // synthesized-class map — with artifacts instrumented under the *old*
  // configuration. The publish gate now sees the moved generation and keeps
  // them out of every shared structure; the requester still gets its bytes,
  // stamped with their true (stale) epoch.
  EXPECT_EQ(proxy.stats().Value("proxy.stale_rewrite_skips"), 1u);
  EXPECT_EQ(proxy.cache().entries(), 0u);
  auto stale_cold = proxy.HandleRequest(ClassName(0) + "$cold");
  ASSERT_FALSE(stale_cold.ok());
  EXPECT_EQ(stale_cold.error().code, ErrorCode::kNotFound);

  // The next request re-runs the pipeline under the new configuration and
  // publishes normally.
  auto fresh = proxy.HandleRequest(ClassName(0));
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE(fresh->cache_hit);
  EXPECT_EQ(counter->runs(), 2);
  EXPECT_EQ(proxy.cache().entries(), 1u);
  EXPECT_TRUE(proxy.HandleRequest(ClassName(0) + "$cold").ok());
}

TEST_F(ProxyConcurrencyTest, AuditRingIsBoundedAndCountsDrops) {
  ProxyConfig config;
  config.audit_trail_capacity = 8;
  DvmProxy proxy(config, &library_env_, &origin_);

  for (int i = 0; i < 20; i++) {
    ASSERT_TRUE(proxy.HandleRequest(ClassName(i % kNumClasses)).ok());
  }
  EXPECT_LE(proxy.audit_trail().size(), 8u);
  EXPECT_EQ(proxy.audit_ring().dropped(), 12u);
  // The ring keeps the newest entries.
  std::vector<std::string> trail = proxy.audit_trail();
  ASSERT_FALSE(trail.empty());
  EXPECT_EQ(trail.back(), "HIT " + ClassName(19 % kNumClasses));
}

TEST(DvmServerAsyncTest, WorkerPoolServesManyClientsConcurrently) {
  MapClassProvider origin;
  for (int i = 0; i < 8; i++) {
    origin.AddClassFile(TrivialApp("app/Async" + std::to_string(i)));
  }
  DvmServerConfig config;
  config.policy = *ParseSecurityPolicy(R"(
      <policy version="1">
        <domain sid="user" code="app/*"/>
        <allow sid="user" operation="*" target="*"/>
      </policy>)");
  config.proxy_worker_threads = 4;
  DvmServer server(std::move(config), &origin);
  ASSERT_NE(server.workers(), nullptr);
  EXPECT_EQ(server.workers()->size(), 4u);

  std::vector<std::future<Result<ProxyResponse>>> futures;
  constexpr int kRounds = 4;
  for (int round = 0; round < kRounds; round++) {
    for (int i = 0; i < 8; i++) {
      futures.push_back(server.HandleRequestAsync("app/Async" + std::to_string(i)));
    }
  }
  int hits = 0;
  for (auto& f : futures) {
    auto response = f.get();
    ASSERT_TRUE(response.ok()) << response.error().ToString();
    hits += response->cache_hit ? 1 : 0;
  }
  EXPECT_EQ(server.proxy().requests_served(), static_cast<uint64_t>(futures.size()));
  // f.get() returns when the promise is set, which precedes the worker's own
  // bookkeeping; Drain() waits for the pool to go quiescent.
  server.workers()->Drain();
  EXPECT_EQ(server.workers()->tasks_executed(), futures.size());
  // Every class was rewritten exactly once; every other response was served
  // from the cache (directly or after coalescing onto the in-flight rewrite).
  EXPECT_EQ(server.proxy().stats().Value("proxy.rewrites"), 8u);
  EXPECT_EQ(hits, static_cast<int>(futures.size()) - 8);

  // The synchronous fallback (no pool) still works and returns ready futures.
  server.StartWorkers(0);
  EXPECT_EQ(server.workers(), nullptr);
  auto inline_response = server.HandleRequestAsync("app/Async0").get();
  ASSERT_TRUE(inline_response.ok());
  EXPECT_TRUE(inline_response->cache_hit);
}

}  // namespace
}  // namespace dvm
