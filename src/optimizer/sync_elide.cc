#include "src/optimizer/sync_elide.h"

#include <map>
#include <set>

#include "src/bytecode/code.h"
#include "src/runtime/syslib.h"

namespace dvm {
namespace {

struct LocalUse {
  int stores = 0;
  bool fresh_allocation = false;  // the single store is new;dup;<init>;astore
  bool escapes = false;           // any use the analysis does not understand
  std::vector<size_t> monitor_aloads;  // indices of aload feeding monitor ops
};

}  // namespace

Result<std::vector<size_t>> FindElidableMonitorOps(const std::vector<Instr>& code) {
  std::map<int32_t, LocalUse> locals;

  // Branch targets: an edge landing on a monitor instruction would separate it
  // from its feeding aload; treat those pairs as non-elidable.
  std::set<int32_t> branch_targets;
  for (const auto& instr : code) {
    if (IsBranch(instr.op)) {
      branch_targets.insert(instr.a);
    }
  }

  for (size_t i = 0; i < code.size(); i++) {
    const Instr& instr = code[i];
    switch (instr.op) {
      case Op::kAstore: {
        LocalUse& use = locals[instr.a];
        use.stores++;
        // Fresh allocation window: new; dup; invokespecial <init>; astore.
        use.fresh_allocation =
            use.stores == 1 && i >= 3 && code[i - 3].op == Op::kNew &&
            code[i - 2].op == Op::kDup && code[i - 1].op == Op::kInvokespecial;
        break;
      }
      case Op::kAload: {
        LocalUse& use = locals[instr.a];
        bool next_is_monitor =
            i + 1 < code.size() && (code[i + 1].op == Op::kMonitorenter ||
                                    code[i + 1].op == Op::kMonitorexit);
        bool monitor_is_branch_target =
            next_is_monitor && branch_targets.count(static_cast<int32_t>(i + 1)) > 0;
        if (next_is_monitor && !monitor_is_branch_target) {
          use.monitor_aloads.push_back(i);
        } else {
          use.escapes = true;  // any other use of the reference
        }
        break;
      }
      default:
        break;
    }
  }

  std::vector<size_t> elidable;
  for (const auto& [local, use] : locals) {
    if (use.stores != 1 || !use.fresh_allocation || use.escapes ||
        use.monitor_aloads.empty()) {
      continue;
    }
    for (size_t aload_index : use.monitor_aloads) {
      elidable.push_back(aload_index);
      elidable.push_back(aload_index + 1);
    }
  }
  return elidable;
}

Result<FilterOutcome> SyncElideFilter::Apply(ClassFile& cls, const FilterContext& ctx) {
  FilterOutcome outcome;
  if (IsSystemClass(cls.name())) {
    return outcome;
  }
  for (auto& method : cls.methods) {
    if (!method.code.has_value()) {
      continue;
    }
    // Conservative: exception handlers complicate the monitor-pairing
    // argument; skip such methods entirely.
    if (!method.code->handlers.empty()) {
      continue;
    }
    stats_.methods_analyzed++;
    DVM_ASSIGN_OR_RETURN(std::vector<Instr> code, DecodeCode(method.code->code));
    for (const auto& instr : code) {
      if (instr.op == Op::kMonitorenter) {
        stats_.monitors_seen++;
      }
    }
    DVM_ASSIGN_OR_RETURN(std::vector<size_t> elidable, FindElidableMonitorOps(code));
    if (elidable.empty()) {
      continue;
    }
    for (size_t index : elidable) {
      if (code[index].op == Op::kMonitorenter) {
        stats_.monitors_elided++;
      }
      code[index] = Instr{Op::kNop, 0, 0};
    }
    DVM_ASSIGN_OR_RETURN(method.code->code, EncodeCode(code));
    outcome.modified = true;
    outcome.checks_performed += elidable.size();
  }
  return outcome;
}

}  // namespace dvm
