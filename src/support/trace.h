// Virtual-clock span tracing (the observability substrate, DESIGN.md §9).
//
// The paper factors monitoring out of the client into a centralized service
// (§3.3); this layer gives the reproduction the matching data path: every
// request through the system opens a Span on a thread-safe Tracer, child
// spans capture where the virtual time went (link queueing vs transmission,
// proxy pipeline stages, retry backoff, deadline waits), and completed spans
// flow to the AdministrationConsole next to the audit log. Because all
// timestamps are virtual nanoseconds, identical seeds produce byte-identical
// exported traces — a trace is a reproducible artifact, not a sampling.
//
// Two exporters: Chrome trace_event JSON (loadable in chrome://tracing or
// Perfetto) and a Prometheus-style text snapshot of a StatsRegistry's
// counters and histograms.
#ifndef SRC_SUPPORT_TRACE_H_
#define SRC_SUPPORT_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/support/stats.h"

namespace dvm {

using SpanId = uint64_t;  // 0 = "no span"

// One closed interval of virtual time, with causality (parent) and key/value
// annotations. `track` is the Chrome "tid" lane the span renders on; child
// spans inherit their parent's track by default so a request's whole tree
// stacks in one lane.
struct Span {
  SpanId id = 0;
  SpanId parent = 0;
  std::string name;
  std::string category;
  uint64_t track = 1;
  uint64_t start_nanos = 0;
  uint64_t end_nanos = 0;
  std::vector<std::pair<std::string, std::string>> annotations;

  uint64_t duration_nanos() const { return end_nanos - start_nanos; }
};

// Thread-safe span collector. Ids are assigned in Begin order under the lock,
// so a single-threaded virtual-clock run numbers its spans deterministically.
class Tracer {
 public:
  // `track` 0 inherits the parent's track (1 when there is no parent).
  SpanId Begin(std::string name, SpanId parent, uint64_t start_nanos,
               std::string category = "", uint64_t track = 0);
  // No-ops on an unknown or already-finished id.
  void Annotate(SpanId id, std::string key, std::string value);
  void End(SpanId id, uint64_t end_nanos);
  // Begin + End in one call, for spans whose extent is already known.
  SpanId Emit(std::string name, SpanId parent, uint64_t start_nanos, uint64_t end_nanos,
              std::string category = "", uint64_t track = 0);

  // Completed spans ordered by (start, id) — the exporter order.
  std::vector<Span> Finished() const;
  size_t finished_count() const;
  size_t open_count() const;
  void Reset();

 private:
  mutable std::mutex mu_;
  SpanId next_id_ = 1;
  std::map<SpanId, Span> open_;
  std::vector<Span> finished_;
};

// Null-tolerant helpers so call sites stay branch-free when tracing is off.
inline SpanId TraceBegin(Tracer* tracer, std::string name, SpanId parent, uint64_t start_nanos,
                         std::string category = "", uint64_t track = 0) {
  return tracer == nullptr
             ? 0
             : tracer->Begin(std::move(name), parent, start_nanos, std::move(category), track);
}
inline void TraceAnnotate(Tracer* tracer, SpanId id, std::string key, std::string value) {
  if (tracer != nullptr) {
    tracer->Annotate(id, std::move(key), std::move(value));
  }
}
inline void TraceEnd(Tracer* tracer, SpanId id, uint64_t end_nanos) {
  if (tracer != nullptr) {
    tracer->End(id, end_nanos);
  }
}
inline SpanId TraceEmit(Tracer* tracer, std::string name, SpanId parent, uint64_t start_nanos,
                        uint64_t end_nanos, std::string category = "", uint64_t track = 0) {
  return tracer == nullptr ? 0
                           : tracer->Emit(std::move(name), parent, start_nanos, end_nanos,
                                          std::move(category), track);
}

// Carries "who traces, under which parent, starting at which virtual time"
// into APIs that compute their own durations (proxy pipeline stages, link
// delivery legs). Default-constructed = tracing off.
struct TraceContext {
  Tracer* tracer = nullptr;
  SpanId parent = 0;
  uint64_t at = 0;  // virtual nanos at which the traced operation begins

  bool active() const { return tracer != nullptr; }
};

// RAII span tied to a virtual clock: opens at construction time's clock value,
// closes at destruction's. A null tracer makes every operation a no-op.
class SpanScope {
 public:
  using Clock = std::function<uint64_t()>;

  SpanScope(Tracer* tracer, Clock clock, std::string name, SpanId parent = 0,
            std::string category = "", uint64_t track = 0)
      : tracer_(tracer), clock_(std::move(clock)) {
    if (tracer_ != nullptr) {
      id_ = tracer_->Begin(std::move(name), parent, clock_(), std::move(category), track);
    }
  }
  ~SpanScope() {
    if (tracer_ != nullptr) {
      tracer_->End(id_, clock_());
    }
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  SpanId id() const { return id_; }
  void Annotate(std::string key, std::string value) {
    TraceAnnotate(tracer_, id_, std::move(key), std::move(value));
  }

 private:
  Tracer* tracer_;
  Clock clock_;
  SpanId id_ = 0;
};

// Chrome trace_event JSON ("X" complete events, ts/dur in microseconds with
// nanosecond precision). `metadata` lands in "otherData". Deterministic:
// identical spans and metadata serialize to identical bytes.
std::string ChromeTraceJson(const std::vector<Span>& spans,
                            const std::vector<std::pair<std::string, std::string>>& metadata = {});

// Prometheus text exposition of every counter and histogram in `stats`,
// prefixed "dvm_" with dots mapped to underscores; `labels` are attached to
// every series. Histogram buckets are cumulative, emitted up to the bucket
// holding the observed max.
std::string PrometheusText(const StatsRegistry& stats,
                           const std::vector<std::pair<std::string, std::string>>& labels = {});

// Same exposition over a detached snapshot — the form the console uses for
// per-replica and fleet-merged exports. The registry overload delegates here,
// so both produce byte-identical output for the same state.
std::string PrometheusText(const StatsSnapshot& snapshot,
                           const std::vector<std::pair<std::string, std::string>>& labels = {});

// Fixed-capacity span ring: keeps the most recent `capacity` spans and counts
// what it sheds, so a 10^6-client run ingests an unbounded span stream under a
// bounded RSS ceiling. Mirrors the proxy's AuditRing.
class BoundedSpanRing {
 public:
  explicit BoundedSpanRing(size_t capacity) : capacity_(capacity) {}

  void Push(Span span);
  // Ring contents ordered oldest-first (ingest order).
  std::vector<Span> Snapshot() const;
  size_t size() const;
  size_t capacity() const { return capacity_; }
  // Spans evicted to honor the cap, and total ever ingested.
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  uint64_t ingested() const { return ingested_.load(std::memory_order_relaxed); }

 private:
  size_t capacity_;
  mutable std::mutex mu_;
  std::deque<Span> ring_;
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> ingested_{0};
};

// Deterministic head-based sampling: the keep/drop decision is a pure hash of
// (seed, unit id), made once at the head of a request and inherited by every
// span under it. Identical seeds sample identical units, so sampled traces
// stay byte-reproducible; there is no RNG state to advance, so adding or
// removing sampling cannot perturb any other random stream.
class TraceSampler {
 public:
  // Samples ~1/`rate` units; rate 0 or 1 keeps everything.
  TraceSampler(uint64_t seed, uint64_t rate) : seed_(seed), rate_(rate) {}

  bool Keep(uint64_t unit_id) const {
    if (rate_ <= 1) {
      return true;
    }
    // splitmix64 finalizer over seed ^ id: uniform, cheap, stateless.
    uint64_t x = seed_ ^ (unit_id * 0x9e3779b97f4a7c15ULL);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x % rate_ == 0;
  }

  uint64_t rate() const { return rate_; }

 private:
  uint64_t seed_;
  uint64_t rate_;
};

}  // namespace dvm

#endif  // SRC_SUPPORT_TRACE_H_
