#include "src/workloads/applets.h"

#include <algorithm>

#include "src/bytecode/builder.h"
#include "src/support/rng.h"

namespace dvm {
namespace {

constexpr uint16_t kPubStatic = AccessFlags::kPublic | AccessFlags::kStatic;

ClassFile Must(Result<ClassFile> r) {
  if (!r.ok()) {
    std::abort();
  }
  return std::move(r).value();
}

void EmitPad(MethodBuilder& m, int instructions, int seed) {
  m.LoadLocal("I", 0).StoreLocal("I", 1);
  int emitted = 0;
  uint32_t value = static_cast<uint32_t>(seed);
  while (emitted < instructions) {
    value = value * 1103515245u + 12345u;
    m.LoadLocal("I", 1).PushInt((value >> 16) & 0x7F).Emit(Op::kIadd).StoreLocal("I", 1);
    emitted += 4;
  }
  m.LoadLocal("I", 1).Emit(Op::kIreturn);
}

}  // namespace

std::vector<AppBundle> BuildAppletPopulation(int count, uint64_t seed, double mean_bytes,
                                             double stddev_bytes) {
  Rng rng(seed);
  std::vector<AppBundle> applets;
  applets.reserve(static_cast<size_t>(count));

  for (int a = 0; a < count; a++) {
    double size = rng.NextLognormal(mean_bytes, stddev_bytes);
    size = std::clamp(size, 2'000.0, 400'000.0);
    int class_count = 1 + static_cast<int>(rng.Uniform(4));
    // ~1.5 bytes per straight-line instruction; reserve some for structure.
    int pad_per_class = static_cast<int>(size / class_count / 1.6);

    AppBundle bundle;
    bundle.name = "applet" + std::to_string(a);
    bundle.description = "synthetic Internet applet";
    std::string base = "applet/a" + std::to_string(a);
    bundle.main_class = base + "/Main";

    ClassBuilder main_cb(bundle.main_class, "java/lang/Object");
    MethodBuilder& m = main_cb.AddMethod(kPubStatic, "main", "()V");
    m.PushInt(16);
    for (int c = 0; c < class_count; c++) {
      m.InvokeStatic(base + "/Part" + std::to_string(c), "work", "(I)I");
      // Keep the chained argument bounded: the result feeds the next loop.
      m.PushInt(15).Emit(Op::kIand).PushInt(1).Emit(Op::kIadd);
    }
    m.Emit(Op::kPop).Emit(Op::kReturn);
    EmitPad(main_cb.AddMethod(kPubStatic, "bulk", "(I)I"), pad_per_class,
            static_cast<int>(seed) + a);
    bundle.classes.push_back(Must(main_cb.Build()));

    for (int c = 0; c < class_count; c++) {
      ClassBuilder cb(base + "/Part" + std::to_string(c), "java/lang/Object");
      MethodBuilder& work = cb.AddMethod(kPubStatic, "work", "(I)I");
      Label loop = work.NewLabel(), done = work.NewLabel();
      work.PushInt(c + 3).StoreLocal("I", 1).PushInt(0).StoreLocal("I", 2);
      work.Bind(loop);
      work.LoadLocal("I", 2).LoadLocal("I", 0).Branch(Op::kIfIcmpge, done);
      work.LoadLocal("I", 1).PushInt(17).Emit(Op::kImul).LoadLocal("I", 2).Emit(Op::kIadd)
          .StoreLocal("I", 1);
      work.Emit(Op::kIinc, 2, 1).Branch(Op::kGoto, loop);
      work.Bind(done).LoadLocal("I", 1).Emit(Op::kIreturn);
      EmitPad(cb.AddMethod(kPubStatic, "bulk", "(I)I"), pad_per_class, a * 31 + c);
      bundle.classes.push_back(Must(cb.Build()));
    }
    applets.push_back(std::move(bundle));
  }
  return applets;
}

}  // namespace dvm
