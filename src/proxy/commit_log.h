// Per-replica commit log for the replicated proxy control plane. Every
// decision a replica applies — a committed security-policy epoch, a pushed
// rewritten-class artifact — is appended here in commit order. A replica
// recovering from an outage window catches up by replaying the suffix of a
// live peer's log instead of re-running the rewrite pipeline: an epoch record
// replays as invalidate-and-advance, an artifact record replays as a cache
// install, and because epoch records precede the artifacts committed under
// them, in-order replay converges every replica to byte-identical state (the
// property bench_replication gates on).
#ifndef SRC_PROXY_COMMIT_LOG_H_
#define SRC_PROXY_COMMIT_LOG_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/support/bytes.h"

namespace dvm {

enum class CommitRecordType : uint8_t {
  kEpoch = 0,     // the cluster committed a new security-policy epoch
  kArtifact = 1,  // a rewritten-class artifact was pushed to the fleet
};

struct CommitRecord {
  uint64_t sequence = 0;  // assigned by CommitLog::Append, 1-based
  CommitRecordType type = CommitRecordType::kEpoch;
  uint64_t epoch = 0;  // the epoch committed / the epoch the artifact was rewritten under

  // kArtifact only: the rewrite-cache key ("class\x1fplatform"), the class
  // name, the instrumented bytes, and any filter-synthesized companions.
  std::string cache_key;
  std::string class_name;
  Bytes main_class;
  std::vector<std::pair<std::string, Bytes>> extra_classes;
  // Serialized verification certificate for main_class (certificate.h). A
  // receiving replica validates the artifact against it in one pass instead of
  // re-running the phase-3 fixpoint; empty means "no proof attached" and the
  // install is accepted on the pusher's authority, as before certificates.
  Bytes certificate;
};

// Wire size of a record when it travels in a 2PC prepare message: headers plus
// the artifact payload. Epoch records are header-only.
uint64_t CommitRecordBytes(const CommitRecord& record);

class CommitLog {
 public:
  // Stamps the next sequence number onto `record` and appends it. Returns the
  // assigned sequence.
  uint64_t Append(CommitRecord record);

  const std::vector<CommitRecord>& records() const { return records_; }
  uint64_t last_sequence() const { return last_sequence_; }
  uint64_t bytes() const { return bytes_; }

  // Order-sensitive FNV digest over every record (sequence, type, epoch, keys,
  // payload bytes). Two replicas whose logs digest equal hold the same state;
  // the rejoin gate compares digests across the fleet.
  uint64_t Digest() const;

 private:
  std::vector<CommitRecord> records_;
  uint64_t last_sequence_ = 0;
  uint64_t bytes_ = 0;
};

}  // namespace dvm

#endif  // SRC_PROXY_COMMIT_LOG_H_
