// Figure 9: performance of security services on monolithic and distributed
// virtual machines (milliseconds per operation).
//
// Columns: baseline (no check), JDK-style stack introspection (check and
// overhead), DVM enforcement manager (first-check download, cached check and
// overhead). The ReadFile row is the qualitative point: stack introspection
// cannot check it at all (checks attach to object creation only), while the
// DVM rewrites the read path itself.
#include "bench/bench_util.h"
#include "src/bytecode/builder.h"
#include "src/runtime/stack_security.h"
#include "src/runtime/syslib.h"
#include "src/services/security_service.h"

namespace dvm {
namespace {

constexpr uint16_t kPS = AccessFlags::kPublic | AccessFlags::kStatic;

ClassFile MustBuild(ClassBuilder& cb) {
  auto built = cb.Build();
  if (!built.ok()) {
    std::abort();
  }
  return std::move(built).value();
}

// One operation per method so each can be timed in isolation.
ClassFile BuildOpsClass() {
  ClassBuilder cb("app/Ops", "java/lang/Object");
  MethodBuilder& prop = cb.AddMethod(kPS, "getProp", "()V");
  prop.PushString("user.home");
  prop.InvokeStatic("java/lang/System", "getProperty",
                    "(Ljava/lang/String;)Ljava/lang/String;");
  prop.Emit(Op::kPop).Emit(Op::kReturn);

  MethodBuilder& open = cb.AddMethod(kPS, "openFile", "()V");
  open.PushString("/tmp/bench");
  open.InvokeStatic("java/io/File", "open", "(Ljava/lang/String;)I");
  open.Emit(Op::kPop).Emit(Op::kReturn);

  MethodBuilder& prio = cb.AddMethod(kPS, "setPrio", "()V");
  prio.PushInt(5).InvokeStatic("java/lang/Thread", "setPriority", "(I)V");
  prio.Emit(Op::kReturn);

  MethodBuilder& read = cb.AddMethod(kPS, "readFile", "(I)V");
  read.LoadLocal("I", 0).InvokeStatic("java/io/File", "read", "(I)I");
  read.Emit(Op::kPop).Emit(Op::kReturn);

  MethodBuilder& nop = cb.AddMethod(kPS, "calib", "()V");
  nop.Emit(Op::kReturn);
  return MustBuild(cb);
}

const char* kBenchPolicy = R"(
<policy version="1">
  <domain sid="user" code="app/*"/>
  <allow sid="user" operation="*" target="*"/>
  <hook class="java/lang/System" method="getProperty" operation="property.get"/>
  <hook class="java/io/File" method="open" operation="file.open" target-arg="0"/>
  <hook class="java/lang/Thread" method="setPriority" operation="thread.setPriority"/>
  <hook class="java/io/File" method="read" operation="file.read"/>
</policy>)";

struct MachineHandle {
  MapClassProvider provider;
  std::unique_ptr<Machine> machine;
  std::unique_ptr<SecurityServer> server;
  std::unique_ptr<EnforcementManager> manager;
};

enum class Arch { kBaseline, kJdk, kDvm };

MachineHandle MakeMachine(Arch arch) {
  MachineHandle handle;
  auto policy_result = ParseSecurityPolicy(kBenchPolicy);
  if (!policy_result.ok()) {
    std::abort();
  }
  SecurityPolicy policy = std::move(policy_result).value();

  if (arch == Arch::kDvm) {
    // Rewrite the system library per the hooks, the way the proxy would.
    handle.server = std::make_unique<SecurityServer>(policy);
    SecurityFilter filter(&handle.server->policy());
    MapClassEnv env;
    std::vector<ClassFile> library = BuildSystemLibrary();
    for (auto& cls : library) {
      env.Add(&cls);
    }
    for (auto& cls : library) {
      FilterContext ctx;
      ctx.env = &env;
      if (!filter.Apply(cls, ctx).ok()) {
        std::abort();
      }
      handle.provider.AddClassFile(cls);
    }
  } else {
    InstallSystemLibrary(handle.provider);
  }
  handle.provider.AddClassFile(BuildOpsClass());

  MachineConfig config;
  config.stack_introspection_security = arch == Arch::kJdk;
  handle.machine = std::make_unique<Machine>(config, &handle.provider);
  handle.machine->properties()["user.home"] = "/home/egs";
  handle.machine->files().Put("/tmp/bench", "0123456789");

  // Preload every class the operations touch so one-time class-load costs do
  // not contaminate the per-operation timings (steady-state, as in the paper).
  for (const char* cls : {"app/Ops", "java/lang/System", "java/lang/Thread",
                          "java/io/File", "java/lang/String"}) {
    if (!handle.machine->EnsureLoaded(cls).ok()) {
      std::abort();
    }
  }

  if (arch == Arch::kJdk) {
    handle.machine->registry().FindLoaded("app/Ops")->security_domain = "user";
    handle.machine->stack_security()->Grant("user", "*");
  }
  if (arch == Arch::kDvm) {
    handle.manager = std::make_unique<EnforcementManager>(handle.server.get());
    handle.manager->Install(*handle.machine);
    handle.manager->SetThreadSid("user");
  }
  return handle;
}

// Virtual nanoseconds of one invocation of app/Ops.<method>, minus the cost of
// an empty call (loop/dispatch calibration). The class is warmed first so
// one-time load/verify costs do not contaminate the per-operation numbers.
uint64_t TimeOp(Machine& machine, const std::string& method, const std::string& desc,
                std::vector<Value> args) {
  (void)machine.CallStatic("app/Ops", "calib", "()V");  // warm class load
  uint64_t calib_start = machine.virtual_nanos();
  (void)machine.CallStatic("app/Ops", "calib", "()V");
  uint64_t calib = machine.virtual_nanos() - calib_start;

  uint64_t start = machine.virtual_nanos();
  auto out = machine.CallStatic("app/Ops", method, desc, std::move(args));
  if (!out.ok() || out->threw) {
    std::fprintf(stderr, "op %s failed\n", method.c_str());
    std::abort();
  }
  uint64_t total = machine.virtual_nanos() - start;
  return total > calib ? total - calib : 0;
}

}  // namespace
}  // namespace dvm

int main() {
  using namespace dvm;
  using namespace dvm::bench;

  PrintHeader("Security microbenchmarks (milliseconds)", "Figure 9");
  PrintRow({"Operation", "Baseline", "JDKcheck", "JDKovhd", "DVMdownld", "DVMcheck",
            "DVMovhd"},
           12);

  struct OpSpec {
    const char* label;
    const char* method;
    const char* desc;
    bool takes_handle;
    bool jdk_checkable;  // ReadFile: N/A under stack introspection
    double paper_baseline_ms;
    double paper_jdk_ms;
    double paper_dvm_ms;
  };
  const OpSpec ops[] = {
      {"GetProperty", "getProp", "()V", false, true, 0.0020, 0.0488, 0.0092},
      {"OpenFile", "openFile", "()V", false, true, 1.406, 8.631, 1.430},
      {"ChangePrio", "setPrio", "()V", false, true, 0.0638, 0.0645, 0.0815},
      {"ReadFile", "readFile", "(I)V", true, false, 0.0141, -1.0, 0.0368},
  };

  for (const OpSpec& op : ops) {
    auto args_for = [&](MachineHandle& handle) {
      std::vector<Value> args;
      if (op.takes_handle) {
        args.push_back(Value::Int(handle.machine->files().Open("/tmp/bench")));
      }
      return args;
    };

    MachineHandle base = MakeMachine(Arch::kBaseline);
    (void)TimeOp(*base.machine, op.method, op.desc, args_for(base));  // steady-state warm
    uint64_t baseline = TimeOp(*base.machine, op.method, op.desc, args_for(base));

    uint64_t jdk = 0;
    if (op.jdk_checkable) {
      MachineHandle jdk_handle = MakeMachine(Arch::kJdk);
      (void)TimeOp(*jdk_handle.machine, op.method, op.desc, args_for(jdk_handle));
      jdk = TimeOp(*jdk_handle.machine, op.method, op.desc, args_for(jdk_handle));
    }

    MachineHandle dvm_handle = MakeMachine(Arch::kDvm);
    // First check: pays the policy-slice download.
    uint64_t download =
        TimeOp(*dvm_handle.machine, op.method, op.desc, args_for(dvm_handle));
    // Steady state: cached decisions.
    uint64_t dvm_check =
        TimeOp(*dvm_handle.machine, op.method, op.desc, args_for(dvm_handle));

    auto signed_ms = [](uint64_t a, uint64_t b) {
      return FmtDouble((static_cast<double>(a) - static_cast<double>(b)) / 1e6, 4);
    };
    PrintRow({op.label, FmtMillis(baseline),
              op.jdk_checkable ? FmtMillis(jdk) : std::string("N/A"),
              op.jdk_checkable ? signed_ms(jdk, baseline) : std::string("N/A"),
              FmtMillis(download), FmtMillis(dvm_check), signed_ms(dvm_check, baseline)},
             12);
  }

  std::printf("\nPaper reference rows (ms): GetProperty .0020/.0488/.0092 | OpenFile\n"
              "1.406/8.631/1.430 | ChangePrio .0638/.0645/.0815 | ReadFile .0141/NA/.0368\n"
              "Shape: DVM common-case checks are comparable to (or far cheaper than)\n"
              "stack introspection, and file reads are only checkable under the DVM.\n");
  return 0;
}
