#include "src/proxy/cache.h"

namespace dvm {

size_t RewriteCache::SizeOf(const CachedClass& value) {
  size_t bytes = value.main_class.size();
  for (const auto& [name, data] : value.extra_classes) {
    bytes += name.size() + data.size();
  }
  return bytes + 64;  // entry bookkeeping
}

const CachedClass* RewriteCache::Get(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    misses_++;
    return nullptr;
  }
  hits_++;
  lru_.erase(it->second.lru_pos);
  lru_.push_front(key);
  it->second.lru_pos = lru_.begin();
  return &it->second.value;
}

void RewriteCache::Put(const std::string& key, CachedClass value) {
  size_t bytes = SizeOf(value);
  if (bytes > capacity_bytes_) {
    return;  // would evict everything; not worth caching
  }
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    size_bytes_ -= SizeOf(it->second.value);
    lru_.erase(it->second.lru_pos);
    entries_.erase(it);
  }
  EvictTo(capacity_bytes_ - bytes);
  lru_.push_front(key);
  entries_[key] = Entry{std::move(value), lru_.begin()};
  size_bytes_ += bytes;
}

void RewriteCache::EvictTo(size_t budget) {
  while (size_bytes_ > budget && !lru_.empty()) {
    const std::string& victim = lru_.back();
    auto it = entries_.find(victim);
    size_bytes_ -= SizeOf(it->second.value);
    entries_.erase(it);
    lru_.pop_back();
  }
}

void RewriteCache::Clear() {
  entries_.clear();
  lru_.clear();
  size_bytes_ = 0;
}

}  // namespace dvm
