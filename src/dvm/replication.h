// Replicated proxy control plane (ROADMAP item 2). The paper's fleet story
// treats the proxy service as *one* logical rewriter; since PR 2 our replicas
// have been fully independent, so a policy update could leave some replicas
// rewriting under the old hook set. This layer makes the control state —
// security-policy epochs and rewritten-class artifacts — replicated:
//
//   * Epoch rounds: advancing the security policy is a two-phase vote/commit
//     round over the ControlPlane mesh. The lowest-indexed in-sync replica
//     coordinates; every live in-sync member must ACK the prepare within the
//     vote timeout or the round aborts fleet-wide. While a proposed epoch is
//     pending (including after an abort), *no* replica can prove it serves
//     the committed policy, so CanServe fails closed for everyone until a
//     retried round commits — a client never observes a half-applied update.
//
//   * Artifact rounds: after a replica rewrites a class, the artifact is
//     multicast to its in-sync peers with the same prepare/vote/commit
//     protocol (payload travels with the prepare). A committed push installs
//     the bytes into every peer's rewrite cache and synthesized-class map, so
//     one rewrite serves the whole fleet.
//
//   * Commit log + recovery: every committed decision appends to a
//     per-replica commit log (and the coordinator's authoritative cluster
//     log). A replica that misses rounds — outage window, partition, lost
//     decision message — is no longer *in sync*: it is excluded from rounds
//     and CanServe fails closed for it until Rejoin() replays the cluster
//     log suffix it missed, converging it to byte-identical state without
//     re-running the rewrite pipeline. A member that ACKed a prepare but
//     never learned the outcome is marked stale (classic 2PC in-doubt) and
//     handled the same way.
//
// Membership is fail-stop with a perfect failure detector (the FaultInjector
// outage schedule): replicas down at round start are excluded, fall behind,
// and catch up by replay. Everything runs on the virtual clock through
// SimLink FIFOs, so two runs with the same seed produce byte-identical
// fingerprints — the property bench_replication gates on.
#ifndef SRC_DVM_REPLICATION_H_
#define SRC_DVM_REPLICATION_H_

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/dvm/redirect_client.h"
#include "src/proxy/commit_log.h"
#include "src/simnet/multicast.h"
#include "src/support/stats.h"

namespace dvm {

struct ReplicationConfig {
  ControlPlaneConfig control;
  // Message sizes on the control mesh. Artifact prepares add the record's
  // payload bytes on top of the header.
  uint64_t prepare_bytes = 192;
  uint64_t vote_bytes = 64;
  uint64_t decision_bytes = 64;
};

// Outcome of one two-phase round.
struct RoundResult {
  bool committed = false;
  uint64_t epoch = 0;       // the epoch proposed/committed (epoch rounds)
  size_t participants = 0;  // live in-sync members at round start
  size_t acks = 0;          // peers that ACKed the prepare in time
  SimTime completed_at = 0;
};

class ReplicationCoordinator {
 public:
  ReplicationCoordinator(ProxyCluster* cluster, ReplicationConfig config);

  // Proposes committing the next policy epoch fleet-wide. On commit, every
  // member invalidates its rewritten state and advances its epoch stamp; on
  // abort (any NAK or timeout) the proposal stays pending and CanServe fails
  // closed for the whole fleet until a retry commits.
  RoundResult CommitPolicyEpoch(SimTime now);

  // Pushes the artifact cached under (class, platform) at `source` to every
  // in-sync peer. No-ops (uncommitted result) when the source has no cached
  // artifact, the artifact's epoch is not the committed one, or an epoch
  // proposal is pending. Idempotent per (key, epoch).
  RoundResult ReplicateArtifact(size_t source, const std::string& class_name,
                                const std::string& platform, SimTime now);

  // Recovers replica `index` by replaying the cluster-log suffix it missed
  // (a reliable bulk transfer: no drop draws, so recovery never perturbs the
  // fault streams). Clears the stale flag. Returns records replayed; 0 when
  // already caught up (replay is idempotent).
  size_t Rejoin(size_t index, SimTime now);

  // Fail-closed gate: true only when `index` is up, no epoch proposal is
  // pending, and the replica can prove it holds the cluster's committed log
  // position (and therefore the committed epoch). Clients treat a false as a
  // refusal and fail over.
  bool CanServe(size_t index, SimTime now) const;

  // In-sync = not stale and caught up to the cluster log. Round membership.
  bool InSync(size_t index) const;

  uint64_t committed_epoch() const { return committed_epoch_; }
  bool epoch_pending() const { return epoch_pending_; }
  uint64_t applied_epoch(size_t index) const { return applied_epoch_[index]; }
  uint64_t applied_sequence(size_t index) const { return applied_seq_[index]; }
  bool stale(size_t index) const { return stale_[index]; }
  const CommitLog& cluster_log() const { return cluster_log_; }
  const CommitLog& replica_log(size_t index) const { return logs_[index]; }
  ControlPlane& control_plane() { return control_; }

  // Test hook: the next prepare delivered to `index` votes NAK.
  void ForceNakOnce(size_t index) { force_nak_.insert(index); }

  // Order-sensitive digest of the whole control-plane state: cluster log,
  // per-replica logs/positions/staleness, epoch state, mesh counters. Two
  // same-seed runs must produce identical values on both event-queue
  // backends.
  uint64_t Fingerprint() const;

  // Named counters: repl.{rounds,commits,aborts,naks,timeouts,stale_marks,
  // artifact_pushes,epoch_commits,rejoins,replayed_records,replay_bytes}.
  const StatsRegistry& stats() const { return stats_; }

 private:
  // Runs one prepare/vote/decision round coordinated by `coordinator` over
  // the current in-sync live membership. On commit the record is appended to
  // the cluster log and applied at every member that received the decision;
  // `apply_at_coordinator` controls whether the coordinator itself runs
  // ApplyCommitRecord (epoch rounds) or only logs the decision (artifact
  // rounds — the source already holds the artifact).
  RoundResult RunRound(size_t coordinator, CommitRecord record, SimTime now,
                       bool apply_at_coordinator);
  // Appends to the member's log (sequence stays in lockstep with the cluster
  // log by the in-sync invariant) and advances its applied position.
  void AppendLog(size_t index, const CommitRecord& record);

  ProxyCluster* cluster_;
  ReplicationConfig config_;
  ControlPlane control_;

  CommitLog cluster_log_;
  std::vector<CommitLog> logs_;
  std::vector<uint64_t> applied_seq_;
  std::vector<uint64_t> applied_epoch_;
  // 2PC in-doubt: ACKed a prepare, never saw the decision. Fail closed until
  // Rejoin.
  std::vector<bool> stale_;

  uint64_t committed_epoch_ = 0;
  uint64_t pending_epoch_ = 0;
  bool epoch_pending_ = false;

  std::set<size_t> force_nak_;
  std::set<std::pair<std::string, uint64_t>> pushed_;  // (cache_key, epoch) dedup

  StatsRegistry stats_;
  StatCounter& c_rounds_;
  StatCounter& c_commits_;
  StatCounter& c_aborts_;
  StatCounter& c_naks_;
  StatCounter& c_timeouts_;
  StatCounter& c_stale_marks_;
  StatCounter& c_artifact_pushes_;
  StatCounter& c_epoch_commits_;
  StatCounter& c_rejoins_;
  StatCounter& c_replayed_records_;
  StatCounter& c_replay_bytes_;
};

}  // namespace dvm

#endif  // SRC_DVM_REPLICATION_H_
