// Mobile-code optimization scenario (paper section 5):
//
// A PDA-class client on a 28.8 Kb/s wireless link starts a graphical
// application. First, a profiling run on the LAN collects the first-use
// method order; the proxy then repartitions every class at method
// granularity, so the slow-link client downloads only startup-path code.
//
// Build & run:  ./build/examples/mobile_code
#include <cstdio>

#include "src/dvm/dvm.h"
#include "src/workloads/graphical.h"

using namespace dvm;

namespace {

SecurityPolicy Policy() {
  return *ParseSecurityPolicy(R"(
      <policy version="1">
        <domain sid="user" code="ui/*"/>
        <allow sid="user" operation="*" target="*"/>
      </policy>)");
}

uint64_t Startup(DvmServer* server, const AppBundle& app, double kbps,
                 uint64_t* bytes_fetched) {
  DvmClient client(server, DvmMachineConfig(), MakeModem(kbps), "pda-user", "pda-7");
  auto out = client.RunApp(app.main_class);
  if (!out.ok() || out->threw) {
    std::fprintf(stderr, "startup failed\n");
    std::abort();
  }
  *bytes_fetched = client.bytes_fetched();
  return client.machine().virtual_nanos();
}

}  // namespace

int main() {
  AppBundle app = GenerateGraphicalApp(GraphicalAppSpecs()[2]);  // "hotjava"
  std::printf("Application: %s (%llu bytes, %zu classes)\n", app.name.c_str(),
              static_cast<unsigned long long>(app.TotalBytes()), app.classes.size());

  // --- pass 1: profile the startup path on the LAN -------------------------------
  MapClassProvider profile_origin;
  app.InstallInto(&profile_origin);
  DvmServerConfig profile_config;
  profile_config.enable_profile = true;
  profile_config.enable_audit = false;
  profile_config.policy = Policy();
  DvmServer profile_server(std::move(profile_config), &profile_origin);
  DvmClient profiler(&profile_server, DvmMachineConfig(), MakeEthernet10Mb());
  if (!profiler.RunApp(app.main_class).ok()) {
    return 1;
  }
  const auto& first_use = profiler.profiler()->first_use_order();
  std::printf("Profiling run observed %zu first-use methods; first three:\n",
              first_use.size());
  for (size_t i = 0; i < 3 && i < first_use.size(); i++) {
    std::printf("  %zu. %s\n", i + 1, first_use[i].c_str());
  }

  // --- pass 2: compare startup over 28.8 Kb/s with and without repartitioning ----
  std::printf("\n%-22s %-12s %-12s\n", "Configuration", "Startup(s)", "BytesFetched");
  MapClassProvider base_origin;
  app.InstallInto(&base_origin);
  DvmServerConfig base_config;
  base_config.enable_audit = false;
  base_config.policy = Policy();
  DvmServer base_server(std::move(base_config), &base_origin);
  uint64_t base_bytes = 0;
  uint64_t base_nanos = Startup(&base_server, app, 28.8, &base_bytes);
  std::printf("%-22s %-12.1f %-12llu\n", "standard transfer", base_nanos / 1e9,
              static_cast<unsigned long long>(base_bytes));

  MapClassProvider opt_origin;
  app.InstallInto(&opt_origin);
  DvmServerConfig opt_config;
  opt_config.enable_audit = false;
  opt_config.repartition_profile = TransferProfile(first_use);
  opt_config.policy = Policy();
  DvmServer opt_server(std::move(opt_config), &opt_origin);
  uint64_t opt_bytes = 0;
  uint64_t opt_nanos = Startup(&opt_server, app, 28.8, &opt_bytes);
  std::printf("%-22s %-12.1f %-12llu\n", "repartitioned", opt_nanos / 1e9,
              static_cast<unsigned long long>(opt_bytes));

  std::printf("\nStart-up improvement: %.1f%%  (bytes saved: %.1f%%)\n",
              (1.0 - static_cast<double>(opt_nanos) / base_nanos) * 100.0,
              (1.0 - static_cast<double>(opt_bytes) / base_bytes) * 100.0);
  std::printf("Neither the client VM nor the origin server was modified — the\n"
              "repartitioning happened transparently at the proxy.\n");
  return 0;
}
