// Guest heap: handle-indexed objects with a mark-sweep collector. Handles stay
// stable across collections (the table is a free-list, not compacted), which
// keeps interpreter frames and native code simple.
#ifndef SRC_RUNTIME_HEAP_H_
#define SRC_RUNTIME_HEAP_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/runtime/value.h"
#include "src/support/result.h"

namespace dvm {

struct HeapObject {
  enum class Kind : uint8_t { kFree, kInstance, kIntArray, kLongArray, kRefArray, kString };

  Kind kind = Kind::kFree;
  // Class name for instances; array descriptor ("[I", "[Lfoo/Bar;") for arrays;
  // "java/lang/String" for strings.
  std::string class_name;
  // Interned class_name — the monomorphic inline caches compare this id
  // instead of the string bytes.
  uint32_t class_sym = 0;
  std::vector<Value> fields;     // kInstance: slot-indexed instance fields
  std::vector<int32_t> ints;     // kIntArray
  std::vector<int64_t> longs;    // kLongArray
  std::vector<ObjRef> refs;      // kRefArray
  std::string str;               // kString payload
  bool marked = false;

  size_t SizeBytes() const;
  int32_t ArrayLength() const;
};

class Heap {
 public:
  struct Stats {
    uint64_t allocations = 0;
    uint64_t allocated_bytes = 0;
    uint64_t gc_runs = 0;
    uint64_t objects_collected = 0;
  };

  explicit Heap(size_t capacity_bytes = 64 * 1024 * 1024) : capacity_bytes_(capacity_bytes) {}

  Result<ObjRef> AllocInstance(const std::string& class_name, size_t field_count);
  // Fast path: fields copied from a typed default template built at class link
  // time (no per-allocation descriptor parsing), class symbol precomputed.
  Result<ObjRef> AllocInstance(const std::string& class_name, uint32_t class_sym,
                               const std::vector<Value>& field_template);
  Result<ObjRef> AllocIntArray(int32_t length);
  Result<ObjRef> AllocLongArray(int32_t length);
  // `descriptor_sym` may be kNoSymbol, in which case the descriptor is
  // interned here (the quickened anewarray path passes its cached symbol).
  Result<ObjRef> AllocRefArray(const std::string& descriptor, int32_t length,
                               uint32_t descriptor_sym = 0);
  Result<ObjRef> AllocString(const std::string& value);

  // Returns nullptr for the null handle or a freed slot.
  HeapObject* Get(ObjRef ref);
  const HeapObject* Get(ObjRef ref) const;

  // Mark-sweep over the given roots. Statics and frames are supplied by the
  // machine; this class only owns the object graph.
  void Collect(const std::vector<ObjRef>& roots);

  size_t live_bytes() const { return live_bytes_; }
  size_t live_objects() const { return live_objects_; }
  size_t capacity_bytes() const { return capacity_bytes_; }
  const Stats& stats() const { return stats_; }

  // True when an allocation of `bytes` should trigger a collection first.
  bool NeedsGc(size_t bytes) const { return live_bytes_ + bytes > capacity_bytes_; }

 private:
  // kCapacity unless `bytes` more fit under the heap limit. Array allocators
  // call this before sizing the backing store so a huge verifier-legal length
  // (`newarray` with INT32_MAX) never drives a matching host allocation.
  Status Reserve(size_t bytes) const;
  Result<ObjRef> Place(HeapObject obj);
  void Mark(ObjRef ref);

  std::vector<HeapObject> objects_{1};  // slot 0 reserved for null
  std::vector<ObjRef> free_list_;
  size_t capacity_bytes_;
  size_t live_bytes_ = 0;
  size_t live_objects_ = 0;
  Stats stats_;
};

}  // namespace dvm

#endif  // SRC_RUNTIME_HEAP_H_
