// Guest-coded library classes: collections written in DVM *bytecode* (via the
// assembler), the way most of the real JDK's core is written in Java itself.
// They ship with the system library, execute on the interpreter, flow through
// the services like any other code, and exercise the object/array machinery
// far harder than native stubs would.
//
//   java/util/Vector  — growable reference vector (add/get/set/size)
//   java/util/IntMap  — open-addressing int->int hash map (put/get/size),
//                       linear probing, power-of-two capacity, 3/4 rehash
#ifndef SRC_RUNTIME_GUESTLIB_H_
#define SRC_RUNTIME_GUESTLIB_H_

#include "src/bytecode/classfile.h"

namespace dvm {

ClassFile BuildGuestVector();
ClassFile BuildGuestIntMap();

}  // namespace dvm

#endif  // SRC_RUNTIME_GUESTLIB_H_
