// Standalone driver for the fuzz harnesses, used where the toolchain has no
// libFuzzer (the default g++ build and the CI smoke job). Behaviour:
//
//   harness [flags] [corpus file or directory]...
//     -runs=N     mutation iterations after the corpus replay (default 0)
//     -seed=S     PRNG seed for the mutation loop (default 1)
//     -dump=PATH  write each input to PATH before executing it, so the input
//                 that crashed the harness survives the crash for triage
//
// Every corpus input is replayed through LLVMFuzzerTestOneInput first (the
// regression half), then `runs` mutants are generated from the corpus (or the
// built-in seeds when no corpus was given) and executed (the discovery half).
// Any oracle violation or sanitizer finding aborts the process non-zero,
// which is what the CI job keys on.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "fuzz/mutator.h"
#include "src/support/bytes.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

dvm::Bytes ReadFileBytes(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return dvm::Bytes(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

std::string g_dump_path;

void RunOne(const dvm::Bytes& data) {
  if (!g_dump_path.empty()) {
    std::ofstream out(g_dump_path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
  }
  LLVMFuzzerTestOneInput(data.data(), data.size());
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t runs = 0;
  uint64_t seed = 1;
  std::vector<std::filesystem::path> inputs;

  for (int i = 1; i < argc; i++) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "-runs=", 6) == 0) {
      runs = std::strtoull(arg + 6, nullptr, 10);
    } else if (std::strncmp(arg, "-seed=", 6) == 0) {
      seed = std::strtoull(arg + 6, nullptr, 10);
    } else if (std::strncmp(arg, "-dump=", 6) == 0) {
      g_dump_path = arg + 6;
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "unknown flag %s\n", arg);
      return 2;
    } else {
      inputs.emplace_back(arg);
    }
  }

  std::vector<dvm::Bytes> corpus;
  for (const auto& path : inputs) {
    std::error_code ec;
    if (std::filesystem::is_directory(path, ec)) {
      std::vector<std::filesystem::path> files;
      for (const auto& entry : std::filesystem::directory_iterator(path)) {
        if (entry.is_regular_file()) {
          files.push_back(entry.path());
        }
      }
      std::sort(files.begin(), files.end());  // deterministic replay order
      for (const auto& file : files) {
        corpus.push_back(ReadFileBytes(file));
      }
    } else {
      corpus.push_back(ReadFileBytes(path));
    }
  }

  std::printf("replaying %zu corpus input(s)\n", corpus.size());
  for (const auto& data : corpus) {
    RunOne(data);
  }

  if (runs > 0) {
    std::vector<dvm::Bytes> bases = corpus.empty() ? dvm::fuzz::BuiltinSeeds() : corpus;
    dvm::fuzz::Rng rng(seed);
    for (uint64_t i = 0; i < runs; i++) {
      const dvm::Bytes& base = bases[rng.Below(static_cast<uint32_t>(bases.size()))];
      RunOne(dvm::fuzz::MutateClassBytes(base, rng));
      if ((i + 1) % 5000 == 0) {
        std::printf("  %llu/%llu mutants\n", static_cast<unsigned long long>(i + 1),
                    static_cast<unsigned long long>(runs));
      }
    }
    std::printf("ran %llu mutant(s), seed=%llu\n", static_cast<unsigned long long>(runs),
                static_cast<unsigned long long>(seed));
  }
  std::printf("OK\n");
  return 0;
}
