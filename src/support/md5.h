// MD5 (RFC 1321). The paper's static services attach digital signatures so that
// injected checks are inseparable from application code (section 2, [Rivest 92]).
// We implement MD5 from the RFC and build a keyed digest on top (see proxy/signature).
#ifndef SRC_SUPPORT_MD5_H_
#define SRC_SUPPORT_MD5_H_

#include <array>
#include <cstdint>
#include <string>

#include "src/support/bytes.h"

namespace dvm {

using Md5Digest = std::array<uint8_t, 16>;

class Md5 {
 public:
  Md5();

  void Update(const uint8_t* data, size_t len);
  void Update(const Bytes& data) { Update(data.data(), data.size()); }
  void Update(const std::string& s) {
    Update(reinterpret_cast<const uint8_t*>(s.data()), s.size());
  }

  // Finishes the computation; the object must not be reused afterwards.
  Md5Digest Finish();

  static Md5Digest Hash(const Bytes& data);
  static std::string ToHex(const Md5Digest& digest);

 private:
  void ProcessBlock(const uint8_t block[64]);

  uint32_t a_, b_, c_, d_;
  uint64_t total_len_ = 0;
  uint8_t buffer_[64];
  size_t buffer_len_ = 0;
};

}  // namespace dvm

#endif  // SRC_SUPPORT_MD5_H_
