// Link-time assumptions collected during static verification (phases 1-3) and
// discharged by the dynamic component (phase 4). Each assumption carries its
// scope, which the rewriting service uses to decide where to place the residual
// check: class-scoped assumptions guard class initialization, method-scoped
// assumptions guard the first execution of the method that relies on them
// (the __mainChecked pattern of Figure 3).
#ifndef SRC_VERIFIER_ASSUMPTIONS_H_
#define SRC_VERIFIER_ASSUMPTIONS_H_

#include <string>
#include <vector>

namespace dvm {

enum class AssumptionKind : uint8_t {
  kClassExists,   // target_class must be loadable
  kFieldExists,   // target_class exports member_name with descriptor
  kMethodExists,  // target_class exports member_name with descriptor
  kAssignable,    // target_class must be assignable to expected_class
};

enum class AssumptionScope : uint8_t {
  kClass,   // affects the validity of the whole class (e.g. inheritance)
  kMethod,  // affects only the method whose instructions rely on it
};

struct Assumption {
  AssumptionKind kind = AssumptionKind::kClassExists;
  AssumptionScope scope = AssumptionScope::kMethod;
  std::string method_id;        // "name:descriptor" for method-scoped assumptions
  std::string target_class;     // class the assumption is about
  std::string member_name;      // field/method name for member assumptions
  std::string descriptor;       // member descriptor, or expected class for kAssignable
  std::string expected_class;   // kAssignable only

  std::string ToString() const;
  // Deduplication key; identical assumptions within one scope collapse to a
  // single dynamic check.
  std::string Key() const;
};

const char* AssumptionKindName(AssumptionKind kind);

// Removes duplicates, preserving first-seen order.
std::vector<Assumption> DedupAssumptions(std::vector<Assumption> assumptions);

}  // namespace dvm

#endif  // SRC_VERIFIER_ASSUMPTIONS_H_
