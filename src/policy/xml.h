// Minimal XML subset parser for the organization-wide security policy language
// (paper section 3.2: "a high-level, domain-specific language based on XML").
// Supports elements, attributes, text content, self-closing tags, comments,
// the XML declaration, and the five predefined entities.
#ifndef SRC_POLICY_XML_H_
#define SRC_POLICY_XML_H_

#include <map>
#include <string>
#include <vector>

#include "src/support/result.h"

namespace dvm {

struct XmlNode {
  std::string tag;
  std::map<std::string, std::string> attrs;
  std::vector<XmlNode> children;
  std::string text;  // concatenated character data directly under this element

  const XmlNode* FindChild(const std::string& child_tag) const;
  std::vector<const XmlNode*> FindAll(const std::string& child_tag) const;
  // Attribute value or `fallback` when absent.
  std::string Attr(const std::string& name, const std::string& fallback = "") const;
  bool HasAttr(const std::string& name) const { return attrs.count(name) > 0; }
};

// Parses a document with a single root element.
Result<XmlNode> ParseXml(const std::string& input);

}  // namespace dvm

#endif  // SRC_POLICY_XML_H_
