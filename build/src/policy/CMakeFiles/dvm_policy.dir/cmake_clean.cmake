file(REMOVE_RECURSE
  "CMakeFiles/dvm_policy.dir/xml.cc.o"
  "CMakeFiles/dvm_policy.dir/xml.cc.o.d"
  "libdvm_policy.a"
  "libdvm_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvm_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
