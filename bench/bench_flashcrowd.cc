// Flash crowd at a million clients: one applet goes viral and the whole
// population fetches it through the proxy tier at once. The paper's §4 claim
// is that proxy-side services let one organization serve a large client pool;
// the ROADMAP north star says "millions of users". This bench drives 10^6
// open-loop clients (heavy-tailed arrivals, src/workloads/arrivals) against a
// replicated proxy cost model calibrated from one real DvmProxy exchange, and
// sweeps admission/shed policies:
//
//   no-shed    — every request admitted; the queue collapses and p99 for
//                everyone goes to the backlog length;
//   shed       — bounded queue + token bucket, priority-aware shedding
//                (verification structurally unsheddable, observability shed
//                first);
//   shed-tight — same, quarter-size queue (earlier, harder shedding).
//
// Stdout is byte-deterministic for a given seed (the --check mode asserts it
// by running the shed policy twice); wall-clock and RSS go to stderr. The
// CI scale-smoke job runs --clients=100000 --check under a time budget and
// an RSS ceiling.
#include <cinttypes>
#include <cstring>
#include <ctime>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/dvm/admission.h"
#include "src/dvm/client_pool.h"
#include "src/proxy/proxy.h"
#include "src/runtime/syslib.h"
#include "src/services/verify_service.h"
#include "src/simnet/sim.h"
#include "src/support/hash.h"
#include "src/support/trace.h"
#include "src/workloads/applets.h"
#include "src/workloads/arrivals.h"

using namespace dvm;
using namespace dvm::bench;

namespace {

struct Options {
  uint64_t clients = 1'000'000;
  uint64_t seed = 42;
  size_t replicas = 4;
  bool check = false;
  uint64_t max_rss_mb = 0;  // 0 = no ceiling
};

struct Calibration {
  uint64_t hit_cpu_nanos = 0;
  uint64_t response_bytes = 0;
  uint64_t rewrite_cpu_nanos = 0;
};

// One real exchange through the real proxy pipeline: the viral class is
// rewritten once (miss), then every crowd request is a cache hit. The model
// uses the measured hit CPU and response size, not guessed constants.
Calibration Calibrate(uint64_t seed) {
  auto applets = BuildAppletPopulation(1, seed);
  MapClassProvider origin;
  InstallSystemLibrary(origin);
  applets[0].InstallInto(&origin);
  std::vector<ClassFile> library = BuildSystemLibrary();
  MapClassEnv env;
  for (const auto& cls : library) {
    env.Add(&cls);
  }
  DvmProxy proxy({}, &env, &origin);
  proxy.AddFilter(std::make_unique<VerificationFilter>());
  std::string viral = applets[0].ClassNames().front();
  auto miss = proxy.HandleRequest(viral);
  auto hit = proxy.HandleRequest(viral);
  if (!miss.ok() || !hit.ok() || !hit->cache_hit) {
    std::fprintf(stderr, "calibration request failed\n");
    std::abort();
  }
  return Calibration{hit->cpu_nanos, hit->data.size(), miss->cpu_nanos};
}

struct PolicyResult {
  std::string table;        // deterministic stdout block
  uint64_t fingerprint = 0; // FNV over the block
  Histogram::Snapshot verify_latency;
  Histogram::Snapshot monitor_latency;
  uint64_t verify_started = 0;
  uint64_t verify_succeeded = 0;
  uint64_t verify_failed = 0;
  uint64_t unsheddable_sheds = 0;
  uint64_t events_run = 0;
  uint64_t spans_sampled = 0;
  size_t spans_retained = 0;
  uint64_t spans_dropped = 0;
};

// Scale-safe tracing: one client in kTraceSampleRate is traced (head-based,
// decided by a stateless hash of the client id, so sampling perturbs no RNG
// stream), and retained spans live in a bounded ring. Memory for tracing is
// O(ring), not O(clients) — that is what keeps 10^6 clients under the CI RSS
// ceiling with tracing on.
constexpr uint64_t kTraceSampleRate = 512;
constexpr size_t kSpanRingCapacity = 1024;

std::string Row(const std::string& policy, const char* service, uint64_t started,
                uint64_t succeeded, uint64_t failed, const Histogram::Snapshot& lat) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-11s %-13s %9" PRIu64 " %8.1f%% %8" PRIu64
                                  " %10s %12s\n",
                policy.c_str(), service, started,
                started == 0 ? 0.0 : 100.0 * static_cast<double>(succeeded) /
                                         static_cast<double>(started),
                failed, FmtHistPct(lat, 50, 1e6).c_str(), FmtHistPct(lat, 99, 1e6).c_str());
  return buf;
}

PolicyResult RunPolicy(const Options& opt, const Calibration& cal,
                       const std::string& policy) {
  EventQueue queue;
  std::vector<CpuServer> replicas(opt.replicas);
  std::vector<AdmissionController> admission;
  if (policy != "no-shed") {
    AdmissionConfig config;
    // Sustained admit rate tracks the replica's actual service rate.
    config.tokens_per_second = 1e9 / static_cast<double>(cal.hit_cpu_nanos);
    config.burst = 400.0;
    config.queue_capacity = policy == "shed-tight" ? 256 : 1024;
    for (size_t i = 0; i < opt.replicas; i++) {
      admission.emplace_back(config);
    }
  }

  ClientPoolConfig pool_config;
  pool_config.service_cpu_nanos = cal.hit_cpu_nanos;
  pool_config.response_bytes = cal.response_bytes;
  StatsRegistry stats;
  ClientPool pool(pool_config, &queue, &replicas, policy == "no-shed" ? nullptr : &admission,
                  &stats);
  BoundedSpanRing span_ring(kSpanRingCapacity);
  pool.EnableTracing(&span_ring, TraceSampler(opt.seed, kTraceSampleRate));

  // Same seed per policy: identical per-client traffic classes and arrival
  // times, so policy is the only variable.
  ArrivalConfig arrival_config;
  arrival_config.seed = opt.seed;
  arrival_config.base_per_second = 2000.0;
  arrival_config.surge_at = 2 * kSecond;
  arrival_config.surge_duration = 10 * kSecond;
  arrival_config.surge_factor = 400.0;
  ArrivalGenerator arrivals(arrival_config);
  Rng mix(opt.seed ^ 0x5eedf00dULL);
  for (uint64_t id = 0; id < opt.clients; id++) {
    double roll = mix.NextDouble();
    ServiceClass traffic = roll < 0.60   ? ServiceClass::kVerification
                           : roll < 0.85 ? ServiceClass::kMonitoring
                                         : ServiceClass::kProfiling;
    pool.Start(static_cast<uint32_t>(id), traffic, arrivals.Next());
  }

  // Runaway guard: every client terminates within its retry budget, so the
  // event count is bounded; anything past the bound is a scenario bug.
  queue.set_max_events(opt.clients * (ClientPoolConfig{}.retry_budget + 2) + 1024);
  queue.RunUntilEmpty();

  PolicyResult result;
  for (ServiceClass service : {ServiceClass::kVerification, ServiceClass::kMonitoring,
                               ServiceClass::kProfiling}) {
    result.table += Row(policy, ServiceClassName(service), pool.started(service),
                        pool.succeeded(service), pool.failed(service),
                        pool.Latency(service));
  }
  char extra[256];
  uint64_t shed_total = 0;
  for (auto& controller : admission) {
    shed_total += controller.shed_total();
    result.unsheddable_sheds += controller.shed_for(ShedTier::kUnsheddable);
  }
  std::snprintf(extra, sizeof(extra),
                "%-11s sheds=%" PRIu64 " events=%" PRIu64 " end=%ss\n", policy.c_str(),
                shed_total, queue.events_run(), FmtSeconds(queue.now()).c_str());
  result.table += extra;
  result.spans_sampled = pool.spans_sampled();
  result.spans_retained = span_ring.size();
  result.spans_dropped = span_ring.dropped();
  std::snprintf(extra, sizeof(extra),
                "%-11s trace: 1/%" PRIu64 " sampled=%" PRIu64 " retained=%zu dropped=%"
                PRIu64 "\n",
                policy.c_str(), kTraceSampleRate, result.spans_sampled,
                result.spans_retained, result.spans_dropped);
  result.table += extra;
  result.fingerprint = Fnv1a(result.table);
  result.verify_latency = pool.Latency(ServiceClass::kVerification);
  result.monitor_latency = pool.Latency(ServiceClass::kMonitoring);
  result.verify_started = pool.started(ServiceClass::kVerification);
  result.verify_succeeded = pool.succeeded(ServiceClass::kVerification);
  result.verify_failed = pool.failed(ServiceClass::kVerification);
  result.events_run = queue.events_run();
  return result;
}

uint64_t PeakRssMb() {
  FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) {
    return 0;
  }
  char line[256];
  uint64_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmHWM: %" PRIu64 " kB", &kb) == 1) {
      break;
    }
  }
  std::fclose(f);
  return kb / 1024;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; i++) {
    if (std::sscanf(argv[i], "--clients=%" PRIu64, &opt.clients) == 1) continue;
    if (std::sscanf(argv[i], "--seed=%" PRIu64, &opt.seed) == 1) continue;
    if (std::sscanf(argv[i], "--replicas=%zu", &opt.replicas) == 1) continue;
    if (std::sscanf(argv[i], "--max-rss-mb=%" PRIu64, &opt.max_rss_mb) == 1) continue;
    if (std::strcmp(argv[i], "--check") == 0) {
      opt.check = true;
      continue;
    }
    std::fprintf(stderr, "unknown flag %s\n", argv[i]);
    return 2;
  }

  PrintHeader("Flash crowd: open-loop clients vs proxy admission control",
              "Section 4 scale claim at the north-star population");

  Calibration cal = Calibrate(opt.seed);
  std::printf("\nclients=%" PRIu64 " replicas=%zu seed=%" PRIu64
              " hit_cpu=%" PRIu64 "ns response=%" PRIu64 "B rewrite_once=%" PRIu64 "ns\n"
              "event_queue=%s\n\n",
              opt.clients, opt.replicas, opt.seed, cal.hit_cpu_nanos, cal.response_bytes,
              cal.rewrite_cpu_nanos,
              EventQueue::DefaultBackend() == EventQueue::Backend::kHeap ? "heap" : "wheel");
  std::printf("%-11s %-13s %9s %9s %8s %10s %12s\n", "policy", "traffic", "started",
              "success", "failed", "p50(ms)", "p99(ms)");

  struct timespec wall_start;
  clock_gettime(CLOCK_MONOTONIC, &wall_start);
  PolicyResult no_shed = RunPolicy(opt, cal, "no-shed");
  std::fputs(no_shed.table.c_str(), stdout);
  PolicyResult shed = RunPolicy(opt, cal, "shed");
  std::fputs(shed.table.c_str(), stdout);
  PolicyResult tight = RunPolicy(opt, cal, "shed-tight");
  std::fputs(tight.table.c_str(), stdout);
  struct timespec wall_end;
  clock_gettime(CLOCK_MONOTONIC, &wall_end);
  double wall_s = static_cast<double>(wall_end.tv_sec - wall_start.tv_sec) +
                  static_cast<double>(wall_end.tv_nsec - wall_start.tv_nsec) / 1e9;

  // Non-deterministic evidence lines go to stderr so stdout byte-compares.
  std::fprintf(stderr, "wall=%.1fs peak_rss=%" PRIu64 "MB\n", wall_s, PeakRssMb());

  if (!opt.check) {
    return 0;
  }

  bool ok = true;
  std::printf("\nChecks:\n");

  bool verify_ok = shed.verify_succeeded == shed.verify_started &&
                   shed.verify_failed == 0 && shed.unsheddable_sheds == 0 &&
                   tight.verify_failed == 0 && tight.unsheddable_sheds == 0;
  std::printf("  verification success 100%%, zero sheds, at every load level: %s\n",
              verify_ok ? "PASS" : "FAIL");
  ok &= verify_ok;

  double collapse_p99 = no_shed.monitor_latency.Percentile(99);
  double shed_p99 = shed.monitor_latency.Percentile(99);
  bool graceful = shed_p99 * 5.0 < collapse_p99;
  std::printf("  sheddable p99 degrades gracefully (%.0f ms shed vs %.0f ms collapse): %s\n",
              shed_p99 / 1e6, collapse_p99 / 1e6, graceful ? "PASS" : "FAIL");
  ok &= graceful;

  PolicyResult again = RunPolicy(opt, cal, "shed");
  bool deterministic = again.fingerprint == shed.fingerprint;
  std::printf("  identical seed reproduces byte-identical stats: %s\n",
              deterministic ? "PASS" : "FAIL");
  ok &= deterministic;

  bool trace_ok = shed.spans_sampled > 0 && shed.spans_retained <= kSpanRingCapacity &&
                  shed.spans_sampled == shed.spans_retained + shed.spans_dropped;
  std::printf("  sampled tracing stays bounded (ring %zu/%zu, %" PRIu64 " dropped): %s\n",
              shed.spans_retained, kSpanRingCapacity, shed.spans_dropped,
              trace_ok ? "PASS" : "FAIL");
  ok &= trace_ok;

  if (opt.max_rss_mb != 0) {
    uint64_t rss = PeakRssMb();
    bool rss_ok = rss <= opt.max_rss_mb;
    std::printf("  peak RSS within ceiling (%" PRIu64 " MB <= %" PRIu64 " MB): %s\n", rss,
                opt.max_rss_mb, rss_ok ? "PASS" : "FAIL");
    ok &= rss_ok;
  }

  return ok ? 0 : 1;
}
