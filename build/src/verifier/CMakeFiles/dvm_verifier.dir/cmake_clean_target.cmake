file(REMOVE_RECURSE
  "libdvm_verifier.a"
)
