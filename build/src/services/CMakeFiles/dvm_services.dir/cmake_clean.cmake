file(REMOVE_RECURSE
  "CMakeFiles/dvm_services.dir/monitor_service.cc.o"
  "CMakeFiles/dvm_services.dir/monitor_service.cc.o.d"
  "CMakeFiles/dvm_services.dir/reflect_service.cc.o"
  "CMakeFiles/dvm_services.dir/reflect_service.cc.o.d"
  "CMakeFiles/dvm_services.dir/security_service.cc.o"
  "CMakeFiles/dvm_services.dir/security_service.cc.o.d"
  "CMakeFiles/dvm_services.dir/verify_service.cc.o"
  "CMakeFiles/dvm_services.dir/verify_service.cc.o.d"
  "libdvm_services.a"
  "libdvm_services.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvm_services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
