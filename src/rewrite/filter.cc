#include "src/rewrite/filter.h"

#include "src/bytecode/serializer.h"

namespace dvm {

Result<PipelineResult> FilterPipeline::Run(const Bytes& class_bytes,
                                           const std::string& platform) const {
  DVM_ASSIGN_OR_RETURN(ClassFile cls, ReadClassFile(class_bytes));
  return Run(std::move(cls), platform);
}

Result<PipelineResult> FilterPipeline::Run(ClassFile cls, const std::string& platform) const {
  PipelineResult result;
  FilterContext ctx;
  ctx.env = env_;
  ctx.platform = platform;

  for (const auto& filter : filters_) {
    DVM_ASSIGN_OR_RETURN(FilterOutcome outcome, filter->Apply(cls, ctx));
    result.filters_run.push_back(filter->name());
    result.checks_performed += outcome.checks_performed;
    result.modified |= outcome.modified;
    if (outcome.replacement.has_value()) {
      cls = std::move(*outcome.replacement);
      result.modified = true;
    }
    for (auto& extra : outcome.extra_classes) {
      DVM_ASSIGN_OR_RETURN(Bytes extra_bytes, WriteClassFile(extra));
      result.extra_classes.emplace_back(extra.name(), std::move(extra_bytes));
      result.modified = true;
    }
  }

  result.class_name = cls.name();
  DVM_ASSIGN_OR_RETURN(result.class_bytes, WriteClassFile(cls));
  return result;
}

}  // namespace dvm
