// dvmgen: materialize a generated workload as .dvmc files on disk, for use
// with dvmdump and external experimentation.
//
//   dvmgen <workload> <output-dir>
//
// Workloads: jlex javacup pizza instantdb cassowary workshop studio hotjava
//            netcharts cq animatedui syslib
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "src/bytecode/serializer.h"
#include "src/runtime/syslib.h"
#include "src/workloads/apps.h"
#include "src/workloads/graphical.h"

using namespace dvm;

namespace {

AppBundle SyslibBundle() {
  AppBundle bundle;
  bundle.name = "syslib";
  bundle.description = "DVM system class library";
  bundle.classes = BuildSystemLibrary();
  return bundle;
}

bool BuildNamed(const std::string& name, AppBundle* out) {
  if (name == "jlex") {
    *out = BuildJlexApp(1);
  } else if (name == "javacup") {
    *out = BuildJavacupApp(1);
  } else if (name == "pizza") {
    *out = BuildPizzaApp(1);
  } else if (name == "instantdb") {
    *out = BuildInstantdbApp(1);
  } else if (name == "cassowary") {
    *out = BuildCassowaryApp(1);
  } else if (name == "syslib") {
    *out = SyslibBundle();
  } else {
    for (const auto& spec : GraphicalAppSpecs()) {
      if (spec.name == name) {
        *out = GenerateGraphicalApp(spec);
        return true;
      }
    }
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr,
                 "usage: dvmgen <workload> <output-dir>\n"
                 "workloads: jlex javacup pizza instantdb cassowary workshop studio\n"
                 "           hotjava netcharts cq animatedui syslib\n");
    return 2;
  }
  AppBundle bundle;
  if (!BuildNamed(argv[1], &bundle)) {
    std::fprintf(stderr, "dvmgen: unknown workload %s\n", argv[1]);
    return 1;
  }

  std::filesystem::path dir(argv[2]);
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "dvmgen: cannot create %s: %s\n", argv[2], ec.message().c_str());
    return 1;
  }

  uint64_t total = 0;
  for (const auto& cls : bundle.classes) {
    Bytes data = MustWriteClassFile(cls);
    std::string file_name = cls.name();
    for (char& c : file_name) {
      if (c == '/') {
        c = '.';
      }
    }
    std::ofstream out(dir / (file_name + ".dvmc"), std::ios::binary);
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
    total += data.size();
  }

  std::ofstream manifest(dir / "MANIFEST.txt");
  manifest << "workload: " << bundle.name << "\n"
           << "description: " << bundle.description << "\n"
           << "main-class: " << bundle.main_class << "\n"
           << "classes: " << bundle.classes.size() << "\n"
           << "bytes: " << total << "\n";

  std::printf("dvmgen: wrote %zu classes (%llu bytes) to %s\n", bundle.classes.size(),
              static_cast<unsigned long long>(total), argv[2]);
  return 0;
}
