file(REMOVE_RECURSE
  "libdvm_dvm.a"
)
