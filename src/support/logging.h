// Minimal leveled logging. Experiments run quietly by default; set the level to
// kDebug when tracing a pipeline or an interpreter run.
//
// The level is an atomic: SetLogLevel may race with worker threads logging
// (the proxy pool does exactly that), so LogMessage reads it with a relaxed
// load. The DVM_LOG macro checks the level BEFORE constructing the LogLine,
// so a filtered statement costs one relaxed load — no ostringstream, no
// allocation, and the streamed operands are never evaluated.
#ifndef SRC_SUPPORT_LOGGING_H_
#define SRC_SUPPORT_LOGGING_H_

#include <sstream>
#include <string>

namespace dvm {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();
// True when a message at `level` would be emitted — the DVM_LOG fast path.
bool LogEnabled(LogLevel level);
void LogMessage(LogLevel level, const std::string& message);

// Stream-style logging helper: DVM_LOG(kInfo) << "loaded " << n << " classes";
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Swallows the LogLine chain on the enabled branch of DVM_LOG. operator&
// binds looser than operator<<, so the whole streamed expression evaluates
// first; the conditional's two arms then both have type void.
struct LogVoidify {
  void operator&(const LogLine&) {}
};

#define DVM_LOG(level)                           \
  (!::dvm::LogEnabled(::dvm::LogLevel::level))   \
      ? (void)0                                  \
      : ::dvm::LogVoidify() & ::dvm::LogLine(::dvm::LogLevel::level)

}  // namespace dvm

#endif  // SRC_SUPPORT_LOGGING_H_
