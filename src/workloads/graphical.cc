#include "src/workloads/graphical.h"

#include "src/bytecode/builder.h"

namespace dvm {
namespace {

constexpr uint16_t kPubStatic = AccessFlags::kPublic | AccessFlags::kStatic;

ClassFile Must(Result<ClassFile> r) {
  if (!r.ok()) {
    std::abort();
  }
  return std::move(r).value();
}

void EmitStraightLine(MethodBuilder& m, int instructions, int seed) {
  m.LoadLocal("I", 0).StoreLocal("I", 1);
  int emitted = 0;
  uint32_t value = static_cast<uint32_t>(seed);
  while (emitted < instructions) {
    value = value * 1103515245u + 12345u;
    m.LoadLocal("I", 1).PushInt((value >> 16) & 0x7F).Emit(Op::kIadd).StoreLocal("I", 1);
    emitted += 4;
  }
  m.LoadLocal("I", 1).Emit(Op::kIreturn);
}

std::string UiModule(const std::string& tag, int index) {
  return "ui/" + tag + "/C" + std::to_string(index);
}

ClassFile BuildUiClass(const GraphicalAppSpec& spec, int index) {
  const std::string name = UiModule(spec.name, index);
  ClassBuilder cb(name, "java/lang/Object");
  cb.AddDefaultConstructor();

  // Startup path: a small loop plus some straight-line setup code, then the
  // next class in the chain.
  MethodBuilder& init = cb.AddMethod(kPubStatic, "init", "(I)I");
  Label loop = init.NewLabel(), done = init.NewLabel();
  init.PushInt(index + 1).StoreLocal("I", 1);
  init.PushInt(0).StoreLocal("I", 2);
  init.Bind(loop);
  init.LoadLocal("I", 2).LoadLocal("I", 0).Branch(Op::kIfIcmpge, done);
  init.LoadLocal("I", 1).PushInt(29).Emit(Op::kImul).LoadLocal("I", 2).Emit(Op::kIxor)
      .StoreLocal("I", 1);
  init.Emit(Op::kIinc, 2, 1).Branch(Op::kGoto, loop);
  init.Bind(done);
  int filler = spec.hot_instructions;
  uint32_t value = static_cast<uint32_t>(index) * 977u;
  while (filler > 0) {
    value = value * 1103515245u + 12345u;
    init.LoadLocal("I", 1).PushInt((value >> 16) & 0x3F).Emit(Op::kIadd).StoreLocal("I", 1);
    filler -= 4;
  }
  // Chain to the next startup class so lazy loading touches every class.
  // (This is what makes the whole bundle part of the startup transfer.)
  // Last class ends the chain.
  if (index + 1 < spec.class_count) {
    init.LoadLocal("I", 1).LoadLocal("I", 0)
        .InvokeStatic(UiModule(spec.name, index + 1), "init", "(I)I").Emit(Op::kIadd)
        .StoreLocal("I", 1);
  }
  init.LoadLocal("I", 1).Emit(Op::kIreturn);

  // Cold surface: rendering/print/preferences code not touched at startup.
  for (int c = 0; c < spec.cold_methods; c++) {
    EmitStraightLine(cb.AddMethod(kPubStatic, "render" + std::to_string(c), "(I)I"),
                     spec.cold_instructions / spec.cold_methods, index * 31 + c);
  }
  return Must(cb.Build());
}

ClassFile BuildUiMain(const GraphicalAppSpec& spec) {
  ClassBuilder cb("ui/" + spec.name + "/Main", "java/lang/Object");
  MethodBuilder& m = cb.AddMethod(kPubStatic, "main", "()V");
  m.PushInt(spec.init_work).InvokeStatic(UiModule(spec.name, 0), "init", "(I)I");
  m.InvokeStatic("java/lang/Integer", "toString", "(I)Ljava/lang/String;");
  m.InvokeStatic("java/lang/System", "println", "(Ljava/lang/String;)V");
  m.Emit(Op::kReturn);
  return Must(cb.Build());
}

}  // namespace

AppBundle GenerateGraphicalApp(const GraphicalAppSpec& spec) {
  AppBundle bundle;
  bundle.name = spec.name;
  bundle.description = "graphical application startup bundle";
  bundle.main_class = "ui/" + spec.name + "/Main";
  bundle.classes.push_back(BuildUiMain(spec));
  for (int i = 0; i < spec.class_count; i++) {
    bundle.classes.push_back(BuildUiClass(spec, i));
  }
  return bundle;
}

std::vector<GraphicalAppSpec> GraphicalAppSpecs() {
  // Sizes/shapes follow the 1999 suite: WorkShop and Studio are development
  // environments of a couple of MB; Animated UI is a small applet-style app.
  // cold_instructions / (hot + cold) sets each app's repartitioning headroom.
  // Cold fractions span the 10-30% of downloaded-but-never-invoked code the
  // paper measured; sizes span development-environment (MB-ish) down to small
  // applet-style applications.
  std::vector<GraphicalAppSpec> specs(6);
  specs[0] = {"workshop", 180, 48, 1340, 660, 4};
  specs[1] = {"studio", 150, 44, 1340, 580, 4};
  specs[2] = {"hotjava", 120, 40, 1440, 530, 3};
  specs[3] = {"netcharts", 68, 36, 1440, 410, 3};
  specs[4] = {"cq", 44, 32, 1540, 320, 2};
  specs[5] = {"animatedui", 24, 28, 1630, 200, 2};
  return specs;
}

std::vector<AppBundle> BuildGraphicalApps() {
  std::vector<AppBundle> apps;
  for (const auto& spec : GraphicalAppSpecs()) {
    apps.push_back(GenerateGraphicalApp(spec));
  }
  return apps;
}

}  // namespace dvm
