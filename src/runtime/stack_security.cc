#include "src/runtime/stack_security.h"

#include "src/runtime/machine.h"
#include "src/support/strings.h"

namespace dvm {
namespace {

// Per-frame cost of inspecting one stack frame during a JDK-style walk.
constexpr uint64_t kNanosPerFrameInspected = 350;

}  // namespace

void StackIntrospectionSecurity::Grant(const std::string& domain,
                                       const std::string& permission) {
  grants_[domain].insert(permission);
}

void StackIntrospectionSecurity::GrantAll(const std::string& domain) {
  all_granted_.insert(domain);
}

bool StackIntrospectionSecurity::DomainHolds(const std::string& domain,
                                             const std::string& permission) const {
  if (domain.empty()) {
    return true;  // trusted system code
  }
  if (all_granted_.count(domain) > 0) {
    return true;
  }
  auto it = grants_.find(domain);
  if (it == grants_.end()) {
    return false;
  }
  for (const auto& pattern : it->second) {
    if (GlobMatch(pattern, permission)) {
      return true;
    }
  }
  return false;
}

bool StackIntrospectionSecurity::Check(Machine& machine, const std::string& permission) {
  checks_++;
  machine.counters().security_checks++;
  uint64_t walk_cost = machine.call_stack().size() * kNanosPerFrameInspected;
  machine.AddNanos(walk_cost);
  machine.AddServiceNanos("security", walk_cost);
  for (const FrameInfo& frame : machine.call_stack()) {
    if (frame.cls == nullptr) {
      continue;
    }
    if (!DomainHolds(frame.cls->security_domain, permission)) {
      return false;
    }
  }
  return true;
}

}  // namespace dvm
