#include "src/bytecode/disasm.h"

#include <sstream>

#include "src/bytecode/code.h"

namespace dvm {
namespace {

std::string OperandString(const ClassFile* cls, const Instr& instr) {
  const OpInfo* info = GetOpInfo(instr.op);
  if (info == nullptr) {
    return "<bad opcode>";
  }
  std::ostringstream out;
  // Field quick forms carry a resolved slot index, not a constant-pool index;
  // annotate it directly instead of dereferencing the pool.
  if (instr.op == Op::kGetfieldQuick || instr.op == Op::kPutfieldQuick) {
    out << " #" << instr.a << " (slot)";
    return out.str();
  }
  switch (info->operands) {
    case OperandKind::kNone:
      break;
    case OperandKind::kI8:
    case OperandKind::kI16:
    case OperandKind::kU8:
      out << " " << instr.a;
      break;
    case OperandKind::kArrayKind:
      out << " " << (instr.a == static_cast<int>(ArrayKind::kLong) ? "long" : "int");
      break;
    case OperandKind::kBranch16:
      out << " -> " << instr.a;
      break;
    case OperandKind::kLocalIncr:
      out << " " << instr.a << " by " << instr.b;
      break;
    case OperandKind::kCpIndex: {
      uint16_t index = static_cast<uint16_t>(instr.a);
      out << " #" << index;
      if (cls == nullptr) {
        break;
      }
      const ConstantPool& pool = cls->pool();
      if (pool.HasTag(index, CpTag::kFieldRef)) {
        out << " " << pool.FieldRefAt(index).value().ToString();
      } else if (pool.HasTag(index, CpTag::kMethodRef)) {
        out << " " << pool.MethodRefAt(index).value().ToString();
      } else if (pool.HasTag(index, CpTag::kClass)) {
        out << " " << pool.ClassNameAt(index).value();
      } else if (pool.HasTag(index, CpTag::kString)) {
        out << " \"" << pool.StringAt(index).value() << "\"";
      } else if (pool.HasTag(index, CpTag::kInteger)) {
        out << " " << pool.IntegerAt(index).value();
      } else if (pool.HasTag(index, CpTag::kLong)) {
        out << " " << pool.LongAt(index).value() << "L";
      }
      break;
    }
  }
  return out.str();
}

}  // namespace

std::string DisassembleInstr(const ClassFile* cls, const Instr& instr) {
  const OpInfo* info = GetOpInfo(instr.op);
  std::string name = info != nullptr ? std::string(info->name) : "<bad>";
  return name + OperandString(cls, instr);
}

std::string DisassembleCode(const ClassFile* cls, const std::vector<Instr>& code) {
  std::ostringstream out;
  for (size_t i = 0; i < code.size(); i++) {
    out << "    " << i << ": " << DisassembleInstr(cls, code[i]) << "\n";
  }
  return out.str();
}

std::string DisassembleMethod(const ClassFile& cls, const MethodInfo& method) {
  std::ostringstream out;
  out << "  method " << method.name << method.descriptor;
  if (method.IsNative()) {
    out << " (native)\n";
    return out.str();
  }
  if (method.IsAbstract()) {
    out << " (abstract)\n";
    return out.str();
  }
  if (!method.code.has_value()) {
    out << " (no code)\n";
    return out.str();
  }
  const CodeAttr& code = *method.code;
  out << " stack=" << code.max_stack << " locals=" << code.max_locals << "\n";
  auto decoded = DecodeCode(code.code);
  if (!decoded.ok()) {
    out << "    <undecodable: " << decoded.error().ToString() << ">\n";
    return out.str();
  }
  const auto& instrs = decoded.value();
  for (size_t i = 0; i < instrs.size(); i++) {
    const OpInfo* info = GetOpInfo(instrs[i].op);
    out << "    " << i << ": " << (info != nullptr ? info->name : "<bad>")
        << OperandString(&cls, instrs[i]) << "\n";
  }
  for (const auto& h : code.handlers) {
    out << "    handler [" << h.start_pc << "," << h.end_pc << ") -> " << h.handler_pc;
    if (h.catch_type != 0) {
      out << " catch " << cls.pool().ClassNameAt(h.catch_type).value();
    }
    out << "\n";
  }
  return out.str();
}

std::string DisassembleClass(const ClassFile& cls) {
  std::ostringstream out;
  out << "class " << cls.name();
  if (!cls.super_name().empty()) {
    out << " extends " << cls.super_name();
  }
  out << "\n";
  for (const auto& f : cls.fields) {
    out << "  field " << (f.IsStatic() ? "static " : "") << f.name << ":" << f.descriptor
        << "\n";
  }
  for (const auto& m : cls.methods) {
    out << DisassembleMethod(cls, m);
  }
  return out.str();
}

}  // namespace dvm
