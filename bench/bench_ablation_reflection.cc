// Ablation: the reflection service (section 4.3). "An earlier implementation
// of our verifier relied on reflection primitives built into the JVM and was
// too slow. We subsequently developed a reflection service that adds
// self-describing attributes to classes." This benchmark regenerates that
// anecdote: client-side dynamic-verification time with and without the
// self-describing attributes.
#include "bench/bench_util.h"

int main() {
  using namespace dvm;
  using namespace dvm::bench;

  PrintHeader("Reflection-service ablation: client dynamic-verify time",
              "Section 4.3 anecdote");
  PrintRow({"App", "withRefl(ms)", "without(ms)", "Speedup"}, 14);

  for (const AppBundle& app : BuildFig5Apps(1)) {
    DvmServerConfig with_config;
    with_config.enable_audit = false;
    with_config.enable_reflection = true;
    EndToEndResult with_refl = RunDvmFresh(app, with_config);

    DvmServerConfig without_config;
    without_config.enable_audit = false;
    without_config.enable_reflection = false;
    EndToEndResult without_refl = RunDvmFresh(app, without_config);

    double speedup = with_refl.verify_nanos == 0
                         ? 0.0
                         : static_cast<double>(without_refl.verify_nanos) /
                               static_cast<double>(with_refl.verify_nanos);
    PrintRow({app.name, FmtMillis(with_refl.verify_nanos),
              FmtMillis(without_refl.verify_nanos), FmtDouble(speedup, 1) + "x"},
             14);
  }
  std::printf("\nSelf-describing attributes turn each residual check into a table\n"
              "lookup instead of a reflective walk of the library interface.\n");
  return 0;
}
