#include "src/proxy/commit_log.h"

#include "src/support/hash.h"

namespace dvm {

uint64_t CommitRecordBytes(const CommitRecord& record) {
  // sequence + type + epoch headers, then keys and payload.
  uint64_t bytes = 8 + 1 + 8;
  bytes += record.cache_key.size() + record.class_name.size();
  bytes += record.main_class.size() + record.certificate.size();
  for (const auto& [name, data] : record.extra_classes) {
    bytes += name.size() + data.size();
  }
  return bytes;
}

uint64_t CommitLog::Append(CommitRecord record) {
  record.sequence = ++last_sequence_;
  bytes_ += CommitRecordBytes(record);
  records_.push_back(std::move(record));
  return last_sequence_;
}

uint64_t CommitLog::Digest() const {
  uint64_t h = 0xcbf29ce484222325ULL;
  auto fold = [&h](uint64_t value) { h = (h ^ value) * 0x100000001b3ULL; };
  for (const CommitRecord& record : records_) {
    fold(record.sequence);
    fold(static_cast<uint64_t>(record.type));
    fold(record.epoch);
    fold(Fnv1a(record.cache_key));
    fold(Fnv1a(record.class_name));
    fold(Fnv1a(record.main_class.data(), record.main_class.size()));
    fold(Fnv1a(record.certificate.data(), record.certificate.size()));
    for (const auto& [name, data] : record.extra_classes) {
      fold(Fnv1a(name));
      fold(Fnv1a(data.data(), data.size()));
    }
  }
  return h;
}

}  // namespace dvm
