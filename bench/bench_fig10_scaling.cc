// Figure 10: sustained proxy throughput versus number of simultaneous clients,
// with proxy caching DISABLED (worst case: every request is parsed,
// instrumented and regenerated). Clients fetch distinct applets from the
// simulated Internet through a single proxy host with 64 MB of memory.
//
// Expected shape: throughput grows linearly to ~250 clients, then degrades as
// the proxy's memory is exhausted and it starts paging; per-kB client latency
// stays roughly flat (1.0-1.2 s/kB) while the proxy is healthy.
#include <algorithm>
#include <queue>

#include "bench/bench_util.h"
#include "src/proxy/proxy.h"
#include "src/runtime/syslib.h"
#include "src/services/monitor_service.h"
#include "src/services/security_service.h"
#include "src/services/verify_service.h"
#include "src/simnet/sim.h"
#include "src/workloads/applets.h"

namespace dvm {
namespace {

struct ScalingResult {
  double throughput_bytes_per_sec = 0;
  double latency_sec_per_kb = 0;
};

// Discrete-event run: each of `num_clients` fetches `fetches_per_client`
// distinct applets back-to-back. The proxy CPU is a shared FIFO server whose
// service time inflates once memory is overcommitted.
ScalingResult RunScaling(int num_clients, int fetches_per_client,
                         const std::vector<AppBundle>& applets) {
  // Origin: every applet's classes, reachable over the 1999 Internet.
  MapClassProvider origin;
  InstallSystemLibrary(origin);
  for (const auto& applet : applets) {
    applet.InstallInto(&origin);
  }

  std::vector<ClassFile> library = BuildSystemLibrary();
  MapClassEnv library_env;
  for (const auto& cls : library) {
    library_env.Add(&cls);
  }
  ProxyConfig config;
  config.enable_cache = false;  // paper: worst case, caching disabled
  // The scaling run uses a cheaper per-byte CPU model than the end-to-end
  // benchmarks: the paper's own constants disagree across experiments (a
  // proxy that costs 265 ms per 20 KB applet cannot also sustain 250 WAN
  // clients CPU-bound), and its analysis attributes the Figure 10 knee to
  // MEMORY exhaustion, not CPU. We calibrate CPU so that, as in the paper,
  // memory is the binding constraint at ~250 clients. See EXPERIMENTS.md.
  config.nanos_per_byte_parse = 2'600;
  config.nanos_per_byte_emit = 900;
  DvmProxy proxy(config, &library_env, &origin);
  proxy.AddFilter(std::make_unique<VerificationFilter>());
  proxy.AddFilter(std::make_unique<AuditFilter>());

  // Per-connection WAN bandwidth of the era: ~1 KB/s per fetch stream, which
  // is what yields the paper's ~1.0-1.2 s/kB client latency.
  WanModel wan(/*seed=*/99, /*mean_latency_ms=*/600.0, /*stddev_latency_ms=*/400.0,
               /*bytes_per_second=*/1'050.0);
  CpuServer proxy_cpu;

  struct ClientState {
    int fetch = 0;         // applet round
    size_t class_index = 0;  // class within the current applet
    SimTime fetch_start = 0;
    uint64_t fetch_bytes = 0;
    SimLink link = MakeEthernet10Mb();
  };
  std::vector<ClientState> clients(static_cast<size_t>(num_clients));

  // Two event phases per class: kArriveAtProxy (after the WAN fetch; CPU jobs
  // must enter the shared FIFO server in global time order) and kDelivered.
  enum class Phase { kStartClass, kArriveAtProxy };
  struct Event {
    SimTime when;
    int client;
    Phase phase;
    uint64_t cpu_nanos;   // valid for kArriveAtProxy
    uint64_t data_bytes;  // valid for kArriveAtProxy
    bool operator>(const Event& other) const { return when > other.when; }
  };
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue;
  for (int c = 0; c < num_clients; c++) {
    queue.push({0, c, Phase::kStartClass, 0, 0});
  }

  uint64_t total_bytes = 0;
  double latency_per_kb_sum = 0;
  uint64_t fetch_count = 0;
  SimTime makespan = 0;
  // All clients stay active through the run; in-flight requests hold proxy
  // workspace (this is what exhausts the 64 MB past ~250 clients).
  double thrash = proxy.ThrashFactor(static_cast<size_t>(num_clients));

  auto applet_of = [&](const ClientState& client, int client_id) -> const AppBundle& {
    size_t index = static_cast<size_t>(client_id * fetches_per_client + client.fetch) %
                   applets.size();
    return applets[index];
  };

  while (!queue.empty()) {
    Event event = queue.top();
    queue.pop();
    ClientState& client = clients[static_cast<size_t>(event.client)];

    if (event.phase == Phase::kStartClass) {
      if (client.fetch >= fetches_per_client) {
        continue;
      }
      const AppBundle& applet = applet_of(client, event.client);
      if (client.class_index == 0) {
        client.fetch_start = event.when;
        client.fetch_bytes = 0;
      }
      const std::string cls = applet.classes[client.class_index].name();
      auto response = proxy.HandleRequest(cls);
      if (!response.ok()) {
        std::abort();
      }
      SimTime cpu = static_cast<SimTime>(static_cast<double>(response->cpu_nanos) * thrash);
      SimTime arrive = event.when + wan.FetchDuration(response->origin_bytes);
      queue.push({arrive, event.client, Phase::kArriveAtProxy, cpu,
                  response->data.size()});
      continue;
    }

    // kArriveAtProxy: popped in global time order, so the FIFO CPU queue sees
    // arrivals correctly.
    SimTime done_cpu = proxy_cpu.Execute(event.when, event.cpu_nanos);
    SimTime delivered = client.link.Deliver(done_cpu, event.data_bytes);
    client.fetch_bytes += event.data_bytes;
    client.class_index++;
    const AppBundle& applet = applet_of(client, event.client);
    if (client.class_index >= applet.classes.size()) {
      total_bytes += client.fetch_bytes;
      fetch_count++;
      double seconds = static_cast<double>(delivered - client.fetch_start) / 1e9;
      latency_per_kb_sum += seconds / (static_cast<double>(client.fetch_bytes) / 1024.0);
      makespan = std::max(makespan, delivered);
      client.fetch++;
      client.class_index = 0;
    }
    queue.push({delivered, event.client, Phase::kStartClass, 0, 0});
  }

  ScalingResult result;
  result.throughput_bytes_per_sec =
      static_cast<double>(total_bytes) / (static_cast<double>(makespan) / 1e9);
  result.latency_sec_per_kb = latency_per_kb_sum / static_cast<double>(fetch_count);
  return result;
}

}  // namespace
}  // namespace dvm

int main() {
  using namespace dvm;
  using namespace dvm::bench;

  PrintHeader("Proxy throughput vs number of clients (caching disabled)", "Figure 10");
  PrintRow({"Clients", "Thruput(B/s)", "s/kB", "perClient(B/s)"});

  auto applets = BuildAppletPopulation(120, /*seed=*/5);
  const int kFetches = 2;
  for (int clients : {1, 10, 25, 50, 100, 150, 200, 250, 300, 350}) {
    ScalingResult r = RunScaling(clients, kFetches, applets);
    PrintRow({std::to_string(clients), FmtDouble(r.throughput_bytes_per_sec, 0),
              FmtDouble(r.latency_sec_per_kb, 2),
              FmtDouble(r.throughput_bytes_per_sec / clients, 0)});
  }
  std::printf("\nPaper shape: linear scaling to ~250 simultaneous clients, degradation\n"
              "after the proxy's 64 MB is exhausted; latency ~1.0-1.2 s/kB in range.\n");
  return 0;
}
