// The DVM verifier, phases 1-3 (paper section 3.1):
//   phase 1 — class file internal consistency,
//   phase 2 — instruction integrity,
//   phase 3 — dataflow type-safety.
// Phase 4 (link-time namespace checks) lives in link_checker.h; in a DVM the
// static services run phases 1-3 on the proxy and the verification service
// rewrites the class so that phase 4 happens lazily on the client.
//
// Verification runs against a ClassEnv. References to classes outside the
// environment are *recorded as assumptions* rather than rejected — exactly the
// split that lets the proxy verify code without the client's namespace.
#ifndef SRC_VERIFIER_VERIFIER_H_
#define SRC_VERIFIER_VERIFIER_H_

#include <cstdint>
#include <vector>

#include "src/bytecode/classfile.h"
#include "src/support/result.h"
#include "src/verifier/assumptions.h"
#include "src/verifier/class_env.h"

namespace dvm {

// Counts of discrete safety checks performed, reported by bench_fig8_checkcounts.
struct VerifyStats {
  uint64_t phase1_checks = 0;
  uint64_t phase2_checks = 0;
  uint64_t phase3_checks = 0;
  uint64_t instructions_verified = 0;

  uint64_t TotalStaticChecks() const { return phase1_checks + phase2_checks + phase3_checks; }
  void Accumulate(const VerifyStats& other) {
    phase1_checks += other.phase1_checks;
    phase2_checks += other.phase2_checks;
    phase3_checks += other.phase3_checks;
    instructions_verified += other.instructions_verified;
  }
};

struct VerifiedClass {
  VerifyStats stats;
  // Deduplicated, in first-seen order.
  std::vector<Assumption> assumptions;
};

struct ClassCertificate;  // certificate.h

// Runs phases 1-3. A returned error means the class is provably unsafe; the
// verification service converts that into a replacement class raising a guest
// VerifyError (services/verify_service.h).
//
// When `cert_out` is non-null and the class is accepted, it is filled with a
// stack-map-style certificate: the fixpoint typestate frame at every merge
// point (branch targets, exception-handler entries) plus the class's
// link-time assumptions. A replica holding the certificate can re-check the
// class in one linear pass (certificate.h) instead of re-running this
// fixpoint.
Result<VerifiedClass> VerifyClass(const ClassFile& cls, const ClassEnv& env,
                                  ClassCertificate* cert_out = nullptr);

}  // namespace dvm

#endif  // SRC_VERIFIER_VERIFIER_H_
