// Verification type lattice and abstract frames for the phase-3 dataflow pass.
//
//            Top (unusable / conflict)
//           /  |   \
//        Int  Long  Ref(C) ... Ref(Object)
//                     |
//                    Null        (bottom of the reference sub-lattice)
//
// Uninit(C, site) values are produced by `new` and become Ref(C) when the
// matching <init> runs; they merge only with themselves.
#ifndef SRC_VERIFIER_TYPESTATE_H_
#define SRC_VERIFIER_TYPESTATE_H_

#include <string>
#include <vector>

#include "src/verifier/class_env.h"

namespace dvm {

struct VType {
  enum class Kind : uint8_t {
    kTop,     // unknown / conflicting — cannot be used
    kInt,
    kLong,
    kNull,    // null constant, assignable to any reference type
    kRef,     // reference; `name` is a class name ("foo/Bar") or array descriptor ("[I")
    kUninit,  // allocated but unconstructed; `name` is the class, `site` the new-index
  };

  Kind kind = Kind::kTop;
  std::string name;
  int site = -1;

  static VType Top() { return {Kind::kTop, "", -1}; }
  static VType Int() { return {Kind::kInt, "", -1}; }
  static VType Long() { return {Kind::kLong, "", -1}; }
  static VType Null() { return {Kind::kNull, "", -1}; }
  static VType Ref(std::string class_or_array) {
    return {Kind::kRef, std::move(class_or_array), -1};
  }
  static VType Uninit(std::string class_name, int new_site) {
    return {Kind::kUninit, std::move(class_name), new_site};
  }
  // VType for a field/param descriptor ("I", "J", "Lfoo/Bar;", "[I").
  static VType FromDescriptor(const std::string& desc);

  bool IsRefLike() const { return kind == Kind::kRef || kind == Kind::kNull; }
  bool IsArray() const { return kind == Kind::kRef && !name.empty() && name[0] == '['; }
  bool operator==(const VType& other) const = default;

  std::string ToString() const;
};

// Result of an assignability query against a partial environment.
enum class Assignability {
  kYes,      // provable in the environment
  kNo,       // provably wrong — verification error
  kUnknown,  // involves a class the environment has not seen — record assumption
};

// Walks superclass chains in `env`. Interfaces are treated as assignable
// targets when found in the chain's interface lists.
Assignability IsAssignable(const VType& src, const std::string& dst_class, const ClassEnv& env);

// Least upper bound of two reference types in `env`; unknown hierarchy merges
// to java/lang/Object (safe: uses are re-checked by IsAssignable).
// Commutative: Merge(a, b) == Merge(b, a), even on degenerate (cyclic)
// hierarchies — the certificate validator's shadow joins rely on it.
VType MergeTypes(const VType& a, const VType& b, const ClassEnv& env);

// a ⊑ b in the merge lattice: merging `a` into `b` leaves `b` unchanged. The
// one-pass certificate validator uses this instead of re-running the fixpoint.
bool FitsInto(const VType& a, const VType& b, const ClassEnv& env);

// Abstract machine state at one instruction.
struct Frame {
  std::vector<VType> locals;
  std::vector<VType> stack;

  bool operator==(const Frame& other) const = default;
  std::string ToString() const;
};

// Pointwise merge. Sets *changed when the result differs from `into`.
void MergeFrames(Frame& into, const Frame& from, const ClassEnv& env, bool* changed);

// Pointwise ⊑: same shape, every slot of `a` fits into the matching slot of
// `b`. A frame that fits an asserted merge-point frame may safely adopt it.
bool FrameFits(const Frame& a, const Frame& b, const ClassEnv& env);

}  // namespace dvm

#endif  // SRC_VERIFIER_TYPESTATE_H_
