# Empty dependencies file for dvm_dvm.
# This may be replaced when dependencies are built.
