# Empty dependencies file for guestlib_test.
# This may be replaced when dependencies are built.
