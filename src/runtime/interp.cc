#include "src/runtime/interp.h"

#include "src/bytecode/descriptor.h"
#include "src/verifier/link_checker.h"

namespace dvm {
namespace {

Error HostErr(const std::string& message) { return Error{ErrorCode::kRuntimeError, message}; }

}  // namespace

Interpreter::Interpreter(Machine& machine) : machine_(machine) {
  previous_root_provider_ = machine_.frame_root_provider();
  machine_.SetFrameRootProvider([this](std::vector<ObjRef>* roots) {
    if (previous_root_provider_) {
      previous_root_provider_(roots);
    }
    CollectFrameRoots(roots);
  });
}

Interpreter::~Interpreter() { machine_.SetFrameRootProvider(previous_root_provider_); }

void Interpreter::CollectFrameRoots(std::vector<ObjRef>* roots) const {
  auto add = [roots](const Value& v) {
    if (v.kind == Value::Kind::kRef && !v.IsNullRef()) {
      roots->push_back(v.AsRef());
    }
  };
  for (const auto& frame : frames_) {
    for (const Value& v : frame.locals) {
      add(v);
    }
    for (const Value& v : frame.stack) {
      add(v);
    }
  }
  if (has_return_value_) {
    add(return_value_);
  }
}

Result<PreparedMethod*> Interpreter::Prepare(RuntimeClass* cls, const MethodInfo* method) {
  auto it = cls->prepared.find(method->Id());
  if (it != cls->prepared.end()) {
    return it->second.get();
  }
  auto prepared = std::make_unique<PreparedMethod>();
  prepared->method = method;
  prepared->compiled = cls->file.FindAttribute(kAttrCompiledStamp) != nullptr;
  DVM_ASSIGN_OR_RETURN(prepared->code, DecodeCode(method->code->code));
  prepared->cache.resize(prepared->code.size());

  std::vector<uint32_t> offsets = CodeByteOffsets(prepared->code);
  auto index_of = [&offsets](uint16_t byte_pc) -> int64_t {
    for (size_t i = 0; i < offsets.size(); i++) {
      if (offsets[i] == byte_pc) {
        return static_cast<int64_t>(i);
      }
    }
    return -1;
  };
  for (const auto& h : method->code->handlers) {
    int64_t start = index_of(h.start_pc);
    int64_t end = index_of(h.end_pc);
    int64_t handler = index_of(h.handler_pc);
    if (start < 0 || end < 0 || handler < 0) {
      return HostErr("exception handler not on instruction boundary in " + method->Id());
    }
    PreparedMethod::Handler entry;
    entry.start_ix = static_cast<uint32_t>(start);
    entry.end_ix = static_cast<uint32_t>(end);
    entry.handler_ix = static_cast<uint32_t>(handler);
    if (h.catch_type != 0) {
      DVM_ASSIGN_OR_RETURN(entry.catch_class, cls->file.pool().ClassNameAt(h.catch_type));
    }
    prepared->handlers.push_back(std::move(entry));
  }
  PreparedMethod* out = prepared.get();
  cls->prepared[method->Id()] = std::move(prepared);
  return out;
}

Status Interpreter::PushFrame(RuntimeClass* cls, const MethodInfo* method,
                              std::vector<Value> args) {
  if (frames_.size() >= machine_.config().max_frames) {
    machine_.ThrowGuest("java/lang/StackOverflowError", "frame limit reached");
    return Status::Ok();
  }
  DVM_ASSIGN_OR_RETURN(PreparedMethod * prepared, Prepare(cls, method));
  ExecFrame frame;
  frame.cls = cls;
  frame.method = method;
  frame.prepared = prepared;
  frame.locals.assign(method->code->max_locals, Value::Null());
  for (size_t i = 0; i < args.size() && i < frame.locals.size(); i++) {
    frame.locals[i] = args[i];
  }
  frame.stack.reserve(method->code->max_stack);
  frames_.push_back(std::move(frame));
  machine_.call_stack().push_back(FrameInfo{cls, method});
  machine_.counters().method_invocations++;
  machine_.AddNanos(machine_.config().cost.nanos_per_invoke);
  return Status::Ok();
}

Status Interpreter::EnsureInitialized(RuntimeClass* cls) {
  if (cls->init_state != InitState::kUninitialized) {
    return Status::Ok();
  }
  cls->init_state = InitState::kInitializing;
  if (cls->super != nullptr) {
    DVM_RETURN_IF_ERROR(EnsureInitialized(cls->super));
    if (machine_.HasPendingException()) {
      cls->init_state = InitState::kUninitialized;
      return Status::Ok();
    }
  }

  // Monolithic clients discharge the verifier's link assumptions here, at
  // first active use — the same laziness the DVM gets via injected preambles.
  if (auto* pending = machine_.PendingLinkChecks(cls->name)) {
    LinkCheckStats stats;
    Status status = Status::Ok();
    for (const auto& assumption : *pending) {
      // Force-load the classes each assumption talks about, then check.
      (void)machine_.registry().GetClass(assumption.target_class);
      status = CheckAssumption(assumption, machine_.registry(), &stats);
      if (!status.ok()) {
        break;
      }
    }
    uint64_t cost = stats.dynamic_checks * machine_.config().cost.nanos_per_link_check;
    machine_.AddNanos(cost);
    machine_.AddServiceNanos("verify", cost);
    machine_.counters().dynamic_verify_checks += stats.dynamic_checks;
    machine_.ClearPendingLinkChecks(cls->name);
    if (!status.ok()) {
      cls->init_state = InitState::kInitialized;  // poisoned; never re-checked
      machine_.ThrowGuest("java/lang/VerifyError", status.error().message);
      return Status::Ok();
    }
  }

  const MethodInfo* clinit = cls->file.FindMethod("<clinit>", "()V");
  if (clinit != nullptr && clinit->code.has_value()) {
    Interpreter nested(machine_);
    DVM_ASSIGN_OR_RETURN(CallOutcome outcome, nested.RunMethod(cls, clinit, {}));
    if (outcome.threw) {
      cls->init_state = InitState::kInitialized;
      machine_.ThrowGuest("java/lang/ExceptionInInitializerError",
                          outcome.exception_class + ": " + outcome.exception_message);
      return Status::Ok();
    }
  }
  cls->init_state = InitState::kInitialized;
  return Status::Ok();
}

Result<CallOutcome> Interpreter::RunStatic(const std::string& class_name,
                                           const std::string& method_name,
                                           const std::string& descriptor,
                                           std::vector<Value> args) {
  DVM_ASSIGN_OR_RETURN(RuntimeClass * cls, machine_.registry().GetClass(class_name));
  const RuntimeClass* owner = cls->FindMethodOwner(method_name, descriptor);
  if (owner == nullptr) {
    return HostErr("no such method: " + class_name + "." + method_name + ":" + descriptor);
  }
  const MethodInfo* method = owner->file.FindMethod(method_name, descriptor);
  if (!method->IsStatic()) {
    return HostErr("method is not static: " + method_name);
  }
  return RunMethod(machine_.registry().FindLoaded(owner->name), method, std::move(args));
}

Result<CallOutcome> Interpreter::RunMethod(RuntimeClass* cls, const MethodInfo* method,
                                           std::vector<Value> args) {
  DVM_RETURN_IF_ERROR(EnsureInitialized(cls));
  if (!machine_.HasPendingException()) {
    if (method->IsNative()) {
      DVM_RETURN_IF_ERROR(CallNative(cls, method, std::move(args)));
      if (!machine_.HasPendingException()) {
        CallOutcome outcome;
        if (has_return_value_) {
          outcome.value = return_value_;
        }
        return outcome;
      }
    } else {
      DVM_RETURN_IF_ERROR(PushFrame(cls, method, std::move(args)));
    }
  }
  return Loop();
}

Result<CallOutcome> Interpreter::Loop() {
  while (true) {
    if (machine_.HasPendingException()) {
      DVM_ASSIGN_OR_RETURN(bool handled, DispatchPendingException());
      if (!handled) {
        ObjRef exception = machine_.TakePendingException();
        CallOutcome outcome;
        outcome.threw = true;
        outcome.value = Value::Ref(exception);
        const HeapObject* obj = machine_.heap().Get(exception);
        if (obj != nullptr) {
          if (obj->kind == HeapObject::Kind::kString) {
            outcome.exception_class = "java/lang/Throwable";
            outcome.exception_message = obj->str;
          } else {
            outcome.exception_class = obj->class_name;
            RuntimeClass* cls = machine_.registry().FindLoaded(obj->class_name);
            const RuntimeClass* owner =
                cls != nullptr ? cls->FindFieldOwner("message") : nullptr;
            if (owner != nullptr) {
              auto slot = owner->own_field_slots.find("message");
              if (slot != owner->own_field_slots.end() &&
                  slot->second < obj->fields.size()) {
                Value message = obj->fields[slot->second];
                if (message.kind == Value::Kind::kRef && !message.IsNullRef()) {
                  auto str = machine_.StringValue(message.AsRef());
                  if (str.ok()) {
                    outcome.exception_message = str.value();
                  }
                }
              }
            }
          }
        }
        return outcome;
      }
      continue;
    }
    if (frames_.empty()) {
      CallOutcome outcome;
      if (has_return_value_) {
        outcome.value = return_value_;
      }
      return outcome;
    }
    if (machine_.counters().instructions >= machine_.config().max_instructions) {
      return HostErr("instruction budget exceeded");
    }
    DVM_RETURN_IF_ERROR(Step());
  }
}

Result<bool> Interpreter::DispatchPendingException() {
  ObjRef exception = machine_.TakePendingException();
  std::string exception_class = "java/lang/Throwable";
  const HeapObject* obj = machine_.heap().Get(exception);
  if (obj != nullptr && obj->kind == HeapObject::Kind::kInstance) {
    exception_class = obj->class_name;
  }

  while (!frames_.empty()) {
    ExecFrame& frame = frames_.back();
    size_t fault_ix = frame.pc == 0 ? 0 : frame.pc - 1;
    for (const auto& h : frame.prepared->handlers) {
      if (fault_ix < h.start_ix || fault_ix >= h.end_ix) {
        continue;
      }
      bool matches = h.catch_class.empty();
      if (!matches) {
        auto is_sub = machine_.registry().IsSubclass(exception_class, h.catch_class);
        matches = is_sub.ok() && is_sub.value();
      }
      if (matches) {
        frame.stack.clear();
        frame.stack.push_back(Value::Ref(exception));
        frame.pc = h.handler_ix;
        return true;
      }
    }
    frames_.pop_back();
    machine_.call_stack().pop_back();
  }
  // No handler anywhere: re-arm so Loop can report it.
  machine_.SetPendingExceptionObject(exception);
  return false;
}

Status Interpreter::CallNative(RuntimeClass* owner, const MethodInfo* method,
                               std::vector<Value> args) {
  const NativeFn* fn =
      machine_.natives().Find(owner->name, method->name, method->descriptor);
  if (fn == nullptr && method->name.rfind("__dvmSecured$", 0) == 0) {
    // The security service wraps hooked natives by renaming them; the
    // implementation stays bound under the original name.
    fn = machine_.natives().Find(owner->name, method->name.substr(13), method->descriptor);
  }
  if (fn == nullptr) {
    return HostErr("unbound native method " + owner->name + "." + method->Id());
  }
  machine_.counters().native_calls++;
  machine_.AddNanos(machine_.config().cost.nanos_per_native_call);
  DVM_ASSIGN_OR_RETURN(Value result, (*fn)(machine_, args));
  if (machine_.HasPendingException()) {
    return Status::Ok();
  }
  auto sig = ParseMethodDescriptor(method->descriptor);
  if (sig.ok() && !sig->ReturnsVoid()) {
    if (!frames_.empty()) {
      frames_.back().stack.push_back(result);
    } else {
      return_value_ = result;
      has_return_value_ = true;
    }
  }
  return Status::Ok();
}

Status Interpreter::Invoke(Op op, uint16_t cp_index, InlineCache& ic) {
  ExecFrame& caller = frames_.back();
  const ConstantPool& pool = caller.cls->file.pool();

  // Quicken the call shape (argument slots, result arity) on first execution.
  if (ic.arg_count < 0) {
    DVM_ASSIGN_OR_RETURN(MemberRef ref, pool.MethodRefAt(cp_index));
    DVM_ASSIGN_OR_RETURN(MethodSignature sig, ParseMethodDescriptor(ref.descriptor));
    ic.arg_count = sig.ArgSlots() + (op == Op::kInvokestatic ? 0 : 1);
    ic.has_result = !sig.ReturnsVoid();
  }
  size_t arg_count = static_cast<size_t>(ic.arg_count);
  if (caller.stack.size() < arg_count) {
    return HostErr("operand stack underflow on invoke in " + caller.method->Id());
  }
  std::vector<Value> args(caller.stack.end() - static_cast<long>(arg_count),
                          caller.stack.end());
  caller.stack.resize(caller.stack.size() - arg_count);

  if (op != Op::kInvokestatic && args[0].IsNullRef()) {
    machine_.ThrowGuest("java/lang/NullPointerException", "invoke on null receiver");
    return Status::Ok();
  }

  RuntimeClass* owner = nullptr;
  const MethodInfo* method = nullptr;

  if (op == Op::kInvokevirtual) {
    const HeapObject* receiver = machine_.heap().Get(args[0].AsRef());
    if (receiver == nullptr) {
      return HostErr("dangling receiver reference");
    }
    if (ic.invoke_method != nullptr && ic.receiver_class == receiver->class_name) {
      // Monomorphic fast path.
      owner = ic.invoke_owner;
      method = ic.invoke_method;
    } else {
      DVM_ASSIGN_OR_RETURN(MemberRef ref, pool.MethodRefAt(cp_index));
      std::string dynamic_class = receiver->class_name;
      if (!dynamic_class.empty() && dynamic_class[0] == '[') {
        dynamic_class = "java/lang/Object";
      }
      DVM_ASSIGN_OR_RETURN(RuntimeClass * dispatch_cls,
                           machine_.registry().GetClass(dynamic_class));
      const RuntimeClass* found =
          dispatch_cls->FindMethodOwner(ref.member_name, ref.descriptor);
      if (found == nullptr) {
        // Fall back to the static type (e.g. interface-typed receivers).
        DVM_ASSIGN_OR_RETURN(RuntimeClass * ref_cls,
                             machine_.registry().GetClass(ref.class_name));
        found = ref_cls->FindMethodOwner(ref.member_name, ref.descriptor);
      }
      if (found == nullptr) {
        machine_.ThrowGuest("java/lang/NoSuchMethodError", ref.ToString());
        return Status::Ok();
      }
      owner = machine_.registry().FindLoaded(found->name);
      method = owner->file.FindMethod(ref.member_name, ref.descriptor);
      if (method->IsStatic()) {
        machine_.ThrowGuest("java/lang/IncompatibleClassChangeError",
                            ref.ToString() + " is static");
        return Status::Ok();
      }
      // Install the monomorphic cache entry (last receiver type wins).
      ic.invoke_owner = owner;
      ic.invoke_method = method;
      ic.receiver_class = receiver->class_name;
    }
  } else if (ic.invoke_method != nullptr) {
    // invokestatic / invokespecial resolve statically: cache is always valid
    // (and for statics implies the owner finished initialization).
    owner = ic.invoke_owner;
    method = ic.invoke_method;
  } else {
    DVM_ASSIGN_OR_RETURN(MemberRef ref, pool.MethodRefAt(cp_index));
    DVM_ASSIGN_OR_RETURN(RuntimeClass * ref_cls,
                         machine_.registry().GetClass(ref.class_name));
    const RuntimeClass* found = ref_cls->FindMethodOwner(ref.member_name, ref.descriptor);
    if (found == nullptr) {
      machine_.ThrowGuest("java/lang/NoSuchMethodError", ref.ToString());
      return Status::Ok();
    }
    owner = machine_.registry().FindLoaded(found->name);
    method = owner->file.FindMethod(ref.member_name, ref.descriptor);
    if (op == Op::kInvokestatic) {
      if (!method->IsStatic()) {
        machine_.ThrowGuest("java/lang/IncompatibleClassChangeError",
                            ref.ToString() + " is not static");
        return Status::Ok();
      }
      DVM_RETURN_IF_ERROR(EnsureInitialized(owner));
      if (machine_.HasPendingException()) {
        return Status::Ok();
      }
    } else if (method->IsStatic()) {
      machine_.ThrowGuest("java/lang/IncompatibleClassChangeError",
                          ref.ToString() + " is static");
      return Status::Ok();
    }
    ic.invoke_owner = owner;
    ic.invoke_method = method;
  }

  if (method->IsAbstract()) {
    machine_.ThrowGuest("java/lang/AbstractMethodError", owner->name + "." + method->Id());
    return Status::Ok();
  }
  if (method->IsNative()) {
    return CallNative(owner, method, std::move(args));
  }
  return PushFrame(owner, method, std::move(args));
}

Status Interpreter::Step() {
  ExecFrame& f = frames_.back();
  if (f.pc >= f.prepared->code.size()) {
    return HostErr("pc escaped method body in " + f.method->Id());
  }
  const Instr instr = f.prepared->code[f.pc];
  f.pc++;
  machine_.counters().instructions++;
  machine_.AddNanos(f.prepared->compiled ? machine_.config().cost.nanos_per_instr_compiled
                                         : machine_.config().cost.nanos_per_instr);

  const ConstantPool& pool = f.cls->file.pool();
  auto& stack = f.stack;

  auto pop = [&stack]() {
    Value v = stack.back();
    stack.pop_back();
    return v;
  };
  auto underflow_guard = [&](size_t need) -> Status {
    if (stack.size() < need) {
      return HostErr("operand stack underflow in " + f.method->Id());
    }
    return Status::Ok();
  };

  switch (instr.op) {
    case Op::kNop:
      break;
    case Op::kAconstNull:
      stack.push_back(Value::Null());
      break;
    case Op::kIconst0:
      stack.push_back(Value::Int(0));
      break;
    case Op::kIconst1:
      stack.push_back(Value::Int(1));
      break;
    case Op::kBipush:
    case Op::kSipush:
      stack.push_back(Value::Int(instr.a));
      break;
    case Op::kLdc: {
      uint16_t index = static_cast<uint16_t>(instr.a);
      if (pool.HasTag(index, CpTag::kInteger)) {
        stack.push_back(Value::Int(pool.IntegerAt(index).value()));
      } else if (pool.HasTag(index, CpTag::kLong)) {
        stack.push_back(Value::Long(pool.LongAt(index).value()));
      } else if (pool.HasTag(index, CpTag::kString)) {
        DVM_ASSIGN_OR_RETURN(ObjRef str,
                             machine_.InternString(pool.StringAt(index).value()));
        stack.push_back(Value::Ref(str));
      } else {
        return HostErr("ldc on unsupported constant");
      }
      break;
    }
    case Op::kIload:
    case Op::kLload:
    case Op::kAload:
      stack.push_back(f.locals[static_cast<size_t>(instr.a)]);
      break;
    case Op::kIstore:
    case Op::kLstore:
    case Op::kAstore: {
      DVM_RETURN_IF_ERROR(underflow_guard(1));
      f.locals[static_cast<size_t>(instr.a)] = pop();
      break;
    }
    case Op::kIaload:
    case Op::kLaload:
    case Op::kAaload: {
      DVM_RETURN_IF_ERROR(underflow_guard(2));
      int32_t index = pop().AsInt();
      Value array_ref = pop();
      if (array_ref.IsNullRef()) {
        machine_.ThrowGuest("java/lang/NullPointerException", "array load on null");
        break;
      }
      HeapObject* array = machine_.heap().Get(array_ref.AsRef());
      if (array == nullptr) {
        return HostErr("dangling array reference");
      }
      if (index < 0 || index >= array->ArrayLength()) {
        machine_.ThrowGuest("java/lang/ArrayIndexOutOfBoundsException",
                            std::to_string(index));
        break;
      }
      if (instr.op == Op::kIaload) {
        stack.push_back(Value::Int(array->ints[static_cast<size_t>(index)]));
      } else if (instr.op == Op::kLaload) {
        stack.push_back(Value::Long(array->longs[static_cast<size_t>(index)]));
      } else {
        stack.push_back(Value::Ref(array->refs[static_cast<size_t>(index)]));
      }
      break;
    }
    case Op::kIastore:
    case Op::kLastore:
    case Op::kAastore: {
      DVM_RETURN_IF_ERROR(underflow_guard(3));
      Value value = pop();
      int32_t index = pop().AsInt();
      Value array_ref = pop();
      if (array_ref.IsNullRef()) {
        machine_.ThrowGuest("java/lang/NullPointerException", "array store on null");
        break;
      }
      HeapObject* array = machine_.heap().Get(array_ref.AsRef());
      if (array == nullptr) {
        return HostErr("dangling array reference");
      }
      if (index < 0 || index >= array->ArrayLength()) {
        machine_.ThrowGuest("java/lang/ArrayIndexOutOfBoundsException",
                            std::to_string(index));
        break;
      }
      if (instr.op == Op::kIastore) {
        array->ints[static_cast<size_t>(index)] = value.AsInt();
      } else if (instr.op == Op::kLastore) {
        array->longs[static_cast<size_t>(index)] = value.AsLong();
      } else {
        array->refs[static_cast<size_t>(index)] = value.AsRef();
      }
      break;
    }
    case Op::kPop:
      DVM_RETURN_IF_ERROR(underflow_guard(1));
      pop();
      break;
    case Op::kDup: {
      DVM_RETURN_IF_ERROR(underflow_guard(1));
      stack.push_back(stack.back());
      break;
    }
    case Op::kDupX1: {
      DVM_RETURN_IF_ERROR(underflow_guard(2));
      Value v1 = pop();
      Value v2 = pop();
      stack.push_back(v1);
      stack.push_back(v2);
      stack.push_back(v1);
      break;
    }
    case Op::kSwap: {
      DVM_RETURN_IF_ERROR(underflow_guard(2));
      Value v1 = pop();
      Value v2 = pop();
      stack.push_back(v1);
      stack.push_back(v2);
      break;
    }
    case Op::kIadd:
    case Op::kIsub:
    case Op::kImul:
    case Op::kIand:
    case Op::kIor:
    case Op::kIxor:
    case Op::kIshl:
    case Op::kIshr:
    case Op::kIushr: {
      DVM_RETURN_IF_ERROR(underflow_guard(2));
      int32_t b = pop().AsInt();
      int32_t a = pop().AsInt();
      int32_t r = 0;
      switch (instr.op) {
        case Op::kIadd:
          r = static_cast<int32_t>(static_cast<uint32_t>(a) + static_cast<uint32_t>(b));
          break;
        case Op::kIsub:
          r = static_cast<int32_t>(static_cast<uint32_t>(a) - static_cast<uint32_t>(b));
          break;
        case Op::kImul:
          r = static_cast<int32_t>(static_cast<uint32_t>(a) * static_cast<uint32_t>(b));
          break;
        case Op::kIand:
          r = a & b;
          break;
        case Op::kIor:
          r = a | b;
          break;
        case Op::kIxor:
          r = a ^ b;
          break;
        case Op::kIshl:
          r = static_cast<int32_t>(static_cast<uint32_t>(a) << (b & 31));
          break;
        case Op::kIshr:
          r = a >> (b & 31);
          break;
        case Op::kIushr:
          r = static_cast<int32_t>(static_cast<uint32_t>(a) >> (b & 31));
          break;
        default:
          break;
      }
      stack.push_back(Value::Int(r));
      break;
    }
    case Op::kIdiv:
    case Op::kIrem: {
      DVM_RETURN_IF_ERROR(underflow_guard(2));
      int32_t b = pop().AsInt();
      int32_t a = pop().AsInt();
      if (b == 0) {
        machine_.ThrowGuest("java/lang/ArithmeticException", "/ by zero");
        break;
      }
      int64_t wide = instr.op == Op::kIdiv ? static_cast<int64_t>(a) / b
                                           : static_cast<int64_t>(a) % b;
      stack.push_back(Value::Int(static_cast<int32_t>(wide)));
      break;
    }
    case Op::kLadd:
    case Op::kLsub:
    case Op::kLmul: {
      DVM_RETURN_IF_ERROR(underflow_guard(2));
      uint64_t b = static_cast<uint64_t>(pop().AsLong());
      uint64_t a = static_cast<uint64_t>(pop().AsLong());
      uint64_t r = instr.op == Op::kLadd ? a + b : instr.op == Op::kLsub ? a - b : a * b;
      stack.push_back(Value::Long(static_cast<int64_t>(r)));
      break;
    }
    case Op::kLdiv:
    case Op::kLrem: {
      DVM_RETURN_IF_ERROR(underflow_guard(2));
      int64_t b = pop().AsLong();
      int64_t a = pop().AsLong();
      if (b == 0) {
        machine_.ThrowGuest("java/lang/ArithmeticException", "/ by zero");
        break;
      }
      // INT64_MIN / -1 overflows (hardware trap on x86); the JVM defines it as
      // INT64_MIN with remainder 0, and there is no wider type to widen into.
      if (a == INT64_MIN && b == -1) {
        stack.push_back(Value::Long(instr.op == Op::kLdiv ? INT64_MIN : 0));
        break;
      }
      stack.push_back(Value::Long(instr.op == Op::kLdiv ? a / b : a % b));
      break;
    }
    case Op::kIneg: {
      DVM_RETURN_IF_ERROR(underflow_guard(1));
      int32_t a = pop().AsInt();
      stack.push_back(Value::Int(static_cast<int32_t>(-static_cast<uint32_t>(a))));
      break;
    }
    case Op::kLneg: {
      DVM_RETURN_IF_ERROR(underflow_guard(1));
      int64_t a = pop().AsLong();
      stack.push_back(Value::Long(static_cast<int64_t>(-static_cast<uint64_t>(a))));
      break;
    }
    case Op::kIinc: {
      Value& local = f.locals[static_cast<size_t>(instr.a)];
      // Unsigned add: iinc at INT32_MAX wraps per JVM semantics, not UB.
      local = Value::Int(static_cast<int32_t>(static_cast<uint32_t>(local.AsInt()) +
                                              static_cast<uint32_t>(instr.b)));
      break;
    }
    case Op::kI2l: {
      DVM_RETURN_IF_ERROR(underflow_guard(1));
      stack.push_back(Value::Long(pop().AsInt()));
      break;
    }
    case Op::kL2i: {
      DVM_RETURN_IF_ERROR(underflow_guard(1));
      stack.push_back(Value::Int(static_cast<int32_t>(pop().AsLong())));
      break;
    }
    case Op::kLcmp: {
      DVM_RETURN_IF_ERROR(underflow_guard(2));
      int64_t b = pop().AsLong();
      int64_t a = pop().AsLong();
      stack.push_back(Value::Int(a < b ? -1 : a > b ? 1 : 0));
      break;
    }
    case Op::kIfeq:
    case Op::kIfne:
    case Op::kIflt:
    case Op::kIfge:
    case Op::kIfgt:
    case Op::kIfle: {
      DVM_RETURN_IF_ERROR(underflow_guard(1));
      int32_t v = pop().AsInt();
      bool taken = false;
      switch (instr.op) {
        case Op::kIfeq:
          taken = v == 0;
          break;
        case Op::kIfne:
          taken = v != 0;
          break;
        case Op::kIflt:
          taken = v < 0;
          break;
        case Op::kIfge:
          taken = v >= 0;
          break;
        case Op::kIfgt:
          taken = v > 0;
          break;
        case Op::kIfle:
          taken = v <= 0;
          break;
        default:
          break;
      }
      if (taken) {
        f.pc = static_cast<size_t>(instr.a);
      }
      break;
    }
    case Op::kIfIcmpeq:
    case Op::kIfIcmpne:
    case Op::kIfIcmplt:
    case Op::kIfIcmpge:
    case Op::kIfIcmpgt:
    case Op::kIfIcmple: {
      DVM_RETURN_IF_ERROR(underflow_guard(2));
      int32_t b = pop().AsInt();
      int32_t a = pop().AsInt();
      bool taken = false;
      switch (instr.op) {
        case Op::kIfIcmpeq:
          taken = a == b;
          break;
        case Op::kIfIcmpne:
          taken = a != b;
          break;
        case Op::kIfIcmplt:
          taken = a < b;
          break;
        case Op::kIfIcmpge:
          taken = a >= b;
          break;
        case Op::kIfIcmpgt:
          taken = a > b;
          break;
        case Op::kIfIcmple:
          taken = a <= b;
          break;
        default:
          break;
      }
      if (taken) {
        f.pc = static_cast<size_t>(instr.a);
      }
      break;
    }
    case Op::kIfAcmpeq:
    case Op::kIfAcmpne: {
      DVM_RETURN_IF_ERROR(underflow_guard(2));
      ObjRef b = pop().AsRef();
      ObjRef a = pop().AsRef();
      bool taken = instr.op == Op::kIfAcmpeq ? a == b : a != b;
      if (taken) {
        f.pc = static_cast<size_t>(instr.a);
      }
      break;
    }
    case Op::kIfnull:
    case Op::kIfnonnull: {
      DVM_RETURN_IF_ERROR(underflow_guard(1));
      bool is_null = pop().IsNullRef();
      if ((instr.op == Op::kIfnull) == is_null) {
        f.pc = static_cast<size_t>(instr.a);
      }
      break;
    }
    case Op::kGoto:
      f.pc = static_cast<size_t>(instr.a);
      break;
    case Op::kIreturn:
    case Op::kLreturn:
    case Op::kAreturn:
    case Op::kReturn: {
      Value result = Value::Null();
      bool has_result = instr.op != Op::kReturn;
      if (has_result) {
        DVM_RETURN_IF_ERROR(underflow_guard(1));
        result = pop();
      }
      frames_.pop_back();
      machine_.call_stack().pop_back();
      if (frames_.empty()) {
        return_value_ = result;
        has_return_value_ = has_result;
      } else if (has_result) {
        frames_.back().stack.push_back(result);
      }
      break;
    }
    case Op::kGetstatic:
    case Op::kPutstatic: {
      InlineCache& ic = f.prepared->cache[f.pc - 1];
      if (ic.field_owner == nullptr) {
        // Slow path: resolve through the constant pool, then quicken.
        DVM_ASSIGN_OR_RETURN(MemberRef ref,
                             pool.FieldRefAt(static_cast<uint16_t>(instr.a)));
        DVM_ASSIGN_OR_RETURN(RuntimeClass * ref_cls,
                             machine_.registry().GetClass(ref.class_name));
        RuntimeClass* owner = nullptr;
        for (RuntimeClass* c = ref_cls; c != nullptr; c = c->super) {
          if (c->static_slots.count(ref.member_name) > 0) {
            owner = c;
            break;
          }
        }
        if (owner == nullptr) {
          machine_.ThrowGuest("java/lang/NoSuchFieldError", ref.ToString());
          break;
        }
        DVM_RETURN_IF_ERROR(EnsureInitialized(owner));
        if (machine_.HasPendingException()) {
          break;
        }
        ic.field_slot = owner->static_slots[ref.member_name];
        ic.field_owner = owner;  // set last: presence implies initialized
      }
      if (instr.op == Op::kGetstatic) {
        stack.push_back(ic.field_owner->statics[ic.field_slot]);
      } else {
        DVM_RETURN_IF_ERROR(underflow_guard(1));
        ic.field_owner->statics[ic.field_slot] = pop();
      }
      break;
    }
    case Op::kGetfield:
    case Op::kPutfield: {
      InlineCache& ic = f.prepared->cache[f.pc - 1];
      Value value = Value::Null();
      if (instr.op == Op::kPutfield) {
        DVM_RETURN_IF_ERROR(underflow_guard(2));
        value = pop();
      } else {
        DVM_RETURN_IF_ERROR(underflow_guard(1));
      }
      Value obj_ref = pop();
      if (obj_ref.IsNullRef()) {
        machine_.ThrowGuest("java/lang/NullPointerException", "field access on null");
        break;
      }
      HeapObject* obj = machine_.heap().Get(obj_ref.AsRef());
      if (obj == nullptr || obj->kind != HeapObject::Kind::kInstance) {
        return HostErr("field access on non-instance");
      }
      if (ic.field_owner == nullptr) {
        DVM_ASSIGN_OR_RETURN(MemberRef ref,
                             pool.FieldRefAt(static_cast<uint16_t>(instr.a)));
        DVM_ASSIGN_OR_RETURN(RuntimeClass * ref_cls,
                             machine_.registry().GetClass(ref.class_name));
        RuntimeClass* owner = nullptr;
        for (RuntimeClass* c = ref_cls; c != nullptr; c = c->super) {
          if (c->own_field_slots.count(ref.member_name) > 0) {
            owner = c;
            break;
          }
        }
        if (owner == nullptr) {
          machine_.ThrowGuest("java/lang/NoSuchFieldError", ref.ToString());
          break;
        }
        ic.field_slot = owner->own_field_slots.at(ref.member_name);
        ic.field_owner = owner;
      }
      if (ic.field_slot >= obj->fields.size()) {
        return HostErr("field slot out of range in " + f.method->Id());
      }
      if (instr.op == Op::kGetfield) {
        stack.push_back(obj->fields[ic.field_slot]);
      } else {
        obj->fields[ic.field_slot] = value;
      }
      break;
    }
    case Op::kInvokestatic:
    case Op::kInvokevirtual:
    case Op::kInvokespecial: {
      InlineCache& ic = f.prepared->cache[f.pc - 1];
      DVM_RETURN_IF_ERROR(Invoke(instr.op, static_cast<uint16_t>(instr.a), ic));
      break;
    }
    case Op::kNew: {
      DVM_ASSIGN_OR_RETURN(std::string class_name,
                           pool.ClassNameAt(static_cast<uint16_t>(instr.a)));
      DVM_ASSIGN_OR_RETURN(RuntimeClass * cls, machine_.registry().GetClass(class_name));
      DVM_RETURN_IF_ERROR(EnsureInitialized(cls));
      if (machine_.HasPendingException()) {
        break;
      }
      auto obj = machine_.AllocInstance(cls);
      if (!obj.ok()) {
        machine_.ThrowGuest("java/lang/OutOfMemoryError", obj.error().message);
        break;
      }
      stack.push_back(Value::Ref(obj.value()));
      break;
    }
    case Op::kNewarray: {
      DVM_RETURN_IF_ERROR(underflow_guard(1));
      int32_t length = pop().AsInt();
      if (length < 0) {
        machine_.ThrowGuest("java/lang/NegativeArraySizeException", std::to_string(length));
        break;
      }
      auto arr = machine_.AllocArray(
          instr.a == static_cast<int>(ArrayKind::kLong) ? "[J" : "[I", length);
      if (!arr.ok()) {
        machine_.ThrowGuest("java/lang/OutOfMemoryError", arr.error().message);
        break;
      }
      stack.push_back(Value::Ref(arr.value()));
      break;
    }
    case Op::kAnewarray: {
      DVM_ASSIGN_OR_RETURN(std::string element,
                           pool.ClassNameAt(static_cast<uint16_t>(instr.a)));
      DVM_RETURN_IF_ERROR(underflow_guard(1));
      int32_t length = pop().AsInt();
      if (length < 0) {
        machine_.ThrowGuest("java/lang/NegativeArraySizeException", std::to_string(length));
        break;
      }
      auto arr = machine_.AllocArray("[" + DescriptorFromClassName(element), length);
      if (!arr.ok()) {
        machine_.ThrowGuest("java/lang/OutOfMemoryError", arr.error().message);
        break;
      }
      stack.push_back(Value::Ref(arr.value()));
      break;
    }
    case Op::kArraylength: {
      DVM_RETURN_IF_ERROR(underflow_guard(1));
      Value arr_ref = pop();
      if (arr_ref.IsNullRef()) {
        machine_.ThrowGuest("java/lang/NullPointerException", "arraylength on null");
        break;
      }
      const HeapObject* arr = machine_.heap().Get(arr_ref.AsRef());
      if (arr == nullptr || arr->ArrayLength() < 0) {
        return HostErr("arraylength on non-array");
      }
      stack.push_back(Value::Int(arr->ArrayLength()));
      break;
    }
    case Op::kAthrow: {
      DVM_RETURN_IF_ERROR(underflow_guard(1));
      Value exception = pop();
      if (exception.IsNullRef()) {
        machine_.ThrowGuest("java/lang/NullPointerException", "athrow on null");
        break;
      }
      machine_.counters().exceptions_thrown++;
      machine_.SetPendingExceptionObject(exception.AsRef());
      break;
    }
    case Op::kCheckcast: {
      DVM_ASSIGN_OR_RETURN(std::string target,
                           pool.ClassNameAt(static_cast<uint16_t>(instr.a)));
      DVM_RETURN_IF_ERROR(underflow_guard(1));
      Value v = stack.back();
      if (!v.IsNullRef()) {
        const HeapObject* obj = machine_.heap().Get(v.AsRef());
        if (obj == nullptr) {
          return HostErr("checkcast on dangling reference");
        }
        auto is_sub = machine_.registry().IsSubclass(obj->class_name, target);
        if (!is_sub.ok() || !is_sub.value()) {
          pop();
          machine_.ThrowGuest("java/lang/ClassCastException",
                              obj->class_name + " -> " + target);
        }
      }
      break;
    }
    case Op::kInstanceof: {
      DVM_ASSIGN_OR_RETURN(std::string target,
                           pool.ClassNameAt(static_cast<uint16_t>(instr.a)));
      DVM_RETURN_IF_ERROR(underflow_guard(1));
      Value v = pop();
      if (v.IsNullRef()) {
        stack.push_back(Value::Int(0));
        break;
      }
      const HeapObject* obj = machine_.heap().Get(v.AsRef());
      if (obj == nullptr) {
        return HostErr("instanceof on dangling reference");
      }
      auto is_sub = machine_.registry().IsSubclass(obj->class_name, target);
      stack.push_back(Value::Int(is_sub.ok() && is_sub.value() ? 1 : 0));
      break;
    }
    case Op::kMonitorenter:
    case Op::kMonitorexit: {
      DVM_RETURN_IF_ERROR(underflow_guard(1));
      Value v = pop();
      if (v.IsNullRef()) {
        machine_.ThrowGuest("java/lang/NullPointerException", "monitor on null");
        break;
      }
      // Single simulated thread: always uncontended, but acquisition itself
      // is far from free (the point of the sync-elision optimizer).
      machine_.AddNanos(machine_.config().cost.nanos_per_monitor_op);
      break;
    }
  }
  return Status::Ok();
}

}  // namespace dvm
