// Property-based sweeps over the toolchain invariants:
//   1. every opcode encode/decode round-trips,
//   2. randomly generated (stack-disciplined) programs verify, serialize,
//      execute deterministically, and survive rewriting unchanged,
//   3. random byte mutations of valid class files never crash the parser,
//      verifier, or interpreter — they fail cleanly or run safely,
//   4. random object graphs survive garbage collection exactly when reachable.
#include <gtest/gtest.h>

#include "src/bytecode/builder.h"
#include "src/bytecode/serializer.h"
#include "src/rewrite/method_editor.h"
#include "src/runtime/machine.h"
#include "src/runtime/syslib.h"
#include "src/support/rng.h"
#include "src/verifier/verifier.h"

namespace dvm {
namespace {

// ---------------------------------------------------------------------------
// 1. Opcode round-trip sweep.
// ---------------------------------------------------------------------------

std::vector<Op> AllOps() {
  std::vector<Op> ops;
  for (int raw = 0; raw < 256; raw++) {
    if (GetOpInfo(static_cast<uint8_t>(raw)) != nullptr) {
      ops.push_back(static_cast<Op>(raw));
    }
  }
  return ops;
}

class OpcodeRoundTripTest : public ::testing::TestWithParam<Op> {};

TEST_P(OpcodeRoundTripTest, EncodeDecodeRoundTrips) {
  Op op = GetParam();
  const OpInfo* info = GetOpInfo(op);
  ASSERT_NE(info, nullptr);

  Instr instr{op, 0, 0};
  switch (info->operands) {
    case OperandKind::kI8:
      instr.a = -77;
      break;
    case OperandKind::kI16:
      instr.a = -12345;
      break;
    case OperandKind::kU8:
      instr.a = 200;
      break;
    case OperandKind::kCpIndex:
      instr.a = 1234;
      break;
    case OperandKind::kBranch16:
      instr.a = 1;  // target: the trailing return
      break;
    case OperandKind::kLocalIncr:
      instr.a = 9;
      instr.b = -3;
      break;
    case OperandKind::kArrayKind:
      instr.a = static_cast<int>(ArrayKind::kLong);
      break;
    case OperandKind::kNone:
      break;
  }
  std::vector<Instr> code = {instr, {Op::kReturn, 0, 0}};
  auto encoded = EncodeCode(code);
  if (IsQuickOp(op)) {
    // Quick forms are runtime-internal: they never serialize and a class file
    // carrying one must not decode.
    EXPECT_FALSE(encoded.ok());
    return;
  }
  ASSERT_TRUE(encoded.ok()) << encoded.error().ToString();
  auto decoded = DecodeCode(*encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.error().ToString();
  EXPECT_EQ(*decoded, code);
  EXPECT_EQ(static_cast<int>((*encoded).size()),
            InstructionLength(op) + InstructionLength(Op::kReturn));
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, OpcodeRoundTripTest, ::testing::ValuesIn(AllOps()),
                         [](const ::testing::TestParamInfo<Op>& info) {
                           return std::string(GetOpInfo(info.param)->name);
                         });

// ---------------------------------------------------------------------------
// 2. Random stack-disciplined programs.
// ---------------------------------------------------------------------------

// Emits a random straight-line body over int locals 1..4 (local 0 is the
// argument), tracking stack depth so the program always verifies, wrapped in a
// countdown loop on local 0 to exercise branches.
ClassFile GenerateRandomProgram(uint64_t seed) {
  Rng rng(seed);
  ClassBuilder cb("prop/R" + std::to_string(seed), "java/lang/Object");
  MethodBuilder& m = cb.AddMethod(AccessFlags::kStatic | AccessFlags::kPublic, "f", "(I)I");

  for (int local = 1; local <= 4; local++) {
    m.PushInt(static_cast<int32_t>(rng.Range(-50, 50))).StoreLocal("I", local);
  }
  Label loop = m.NewLabel(), done = m.NewLabel();
  m.Bind(loop);
  m.LoadLocal("I", 0).Branch(Op::kIfle, done);

  int depth = 0;
  int ops = static_cast<int>(rng.Range(10, 60));
  for (int i = 0; i < ops; i++) {
    switch (rng.Uniform(8)) {
      case 0:
        m.PushInt(static_cast<int32_t>(rng.Range(-100, 100)));
        depth++;
        break;
      case 1:
        m.LoadLocal("I", static_cast<int>(rng.Range(1, 4)));
        depth++;
        break;
      case 2:
        if (depth >= 1) {
          m.StoreLocal("I", static_cast<int>(rng.Range(1, 4)));
          depth--;
        }
        break;
      case 3:
      case 4: {
        if (depth >= 2) {
          // No idiv/irem: keep the program exception-free by construction.
          Op arith[] = {Op::kIadd, Op::kIsub, Op::kImul, Op::kIand, Op::kIor, Op::kIxor};
          m.Emit(arith[rng.Uniform(6)]);
          depth--;
        }
        break;
      }
      case 5:
        if (depth >= 1) {
          m.Emit(Op::kDup);
          depth++;
        }
        break;
      case 6:
        if (depth >= 2) {
          m.Emit(Op::kSwap);
        }
        break;
      case 7:
        m.Emit(Op::kIinc, static_cast<int>(rng.Range(1, 4)),
               static_cast<int>(rng.Range(-3, 3)));
        break;
    }
  }
  while (depth > 0) {
    m.Emit(Op::kPop);
    depth--;
  }
  m.Emit(Op::kIinc, 0, -1);
  m.Branch(Op::kGoto, loop);
  m.Bind(done);
  m.LoadLocal("I", 1).LoadLocal("I", 2).Emit(Op::kIadd);
  m.LoadLocal("I", 3).Emit(Op::kIxor).Emit(Op::kIreturn);

  auto built = cb.Build();
  EXPECT_TRUE(built.ok()) << (built.ok() ? "" : built.error().ToString());
  return std::move(built).value();
}

class RandomProgramTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomProgramTest, VerifiesSerializesRunsDeterministically) {
  ClassFile cls = GenerateRandomProgram(GetParam());

  // Verifies against a minimal environment.
  ClassBuilder obj_cb("java/lang/Object", "");
  obj_cb.AddDefaultConstructor();
  ClassFile object = obj_cb.Build().value();
  MapClassEnv env;
  env.Add(&object);
  auto verified = VerifyClass(cls, env);
  ASSERT_TRUE(verified.ok()) << verified.error().ToString();

  // Serializer round-trip is byte-stable.
  Bytes wire = MustWriteClassFile(cls);
  auto back = ReadClassFile(wire);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(MustWriteClassFile(*back), wire);

  // Runs cleanly and deterministically.
  auto run = [&cls](int arg) {
    MapClassProvider provider;
    InstallSystemLibrary(provider);
    provider.AddClassFile(cls);
    Machine machine({}, &provider);
    auto out = machine.CallStatic(cls.name(), "f", "(I)I", {Value::Int(arg)});
    EXPECT_TRUE(out.ok()) << (out.ok() ? "" : out.error().ToString());
    EXPECT_FALSE(out->threw);
    return out->value.AsInt();
  };
  int first = run(9);
  EXPECT_EQ(run(9), first);

  // Rewriting with a no-op preamble preserves the result and still verifies.
  MethodInfo* method = cls.FindMethod("f", "(I)I");
  auto editor = MethodEditor::Open(&cls, method);
  ASSERT_TRUE(editor.ok());
  ASSERT_TRUE(editor->InsertBefore(0, {{Op::kBipush, 11, 0}, {Op::kPop, 0, 0}}).ok());
  ASSERT_TRUE(editor->Commit().ok());
  auto reverified = VerifyClass(cls, env);
  ASSERT_TRUE(reverified.ok()) << reverified.error().ToString();
  EXPECT_EQ(run(9), first);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramTest,
                         ::testing::Range<uint64_t>(1, 25));

// ---------------------------------------------------------------------------
// 3. Mutation robustness: corrupt class files fail cleanly.
// ---------------------------------------------------------------------------

class MutationTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MutationTest, CorruptClassFilesNeverCrashTheStack) {
  ClassFile cls = GenerateRandomProgram(GetParam());
  Bytes wire = MustWriteClassFile(cls);

  Rng rng(GetParam() * 7919 + 13);
  for (int trial = 0; trial < 60; trial++) {
    Bytes mutated = wire;
    int flips = static_cast<int>(rng.Range(1, 4));
    for (int f = 0; f < flips; f++) {
      size_t pos = rng.Uniform(mutated.size());
      mutated[pos] ^= static_cast<uint8_t>(1 + rng.Uniform(255));
    }
    auto parsed = ReadClassFile(mutated);
    if (!parsed.ok()) {
      continue;  // clean parse rejection
    }
    ClassBuilder obj_cb("java/lang/Object", "");
    obj_cb.AddDefaultConstructor();
    ClassFile object = obj_cb.Build().value();
    MapClassEnv env;
    env.Add(&object);
    auto verified = VerifyClass(*parsed, env);
    if (!verified.ok()) {
      continue;  // clean verification rejection
    }
    // Survived both: it must also execute without host-level failure (guest
    // exceptions are fine). Bound the budget in case the mutation changed a
    // loop counter.
    MapClassProvider provider;
    InstallSystemLibrary(provider);
    provider.AddClassFile(*parsed);
    MachineConfig config;
    config.max_instructions = 200'000;
    Machine machine(config, &provider);
    if (parsed->FindMethod("f", "(I)I") != nullptr) {
      auto out = machine.CallStatic(parsed->name(), "f", "(I)I", {Value::Int(3)});
      if (!out.ok()) {
        // Structured failures are fine (budget exhaustion, unresolvable names
        // the static verifier correctly deferred to link time); an internal
        // invariant violation is not.
        EXPECT_NE(out.error().code, ErrorCode::kInternal) << out.error().ToString();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationTest, ::testing::Range<uint64_t>(1, 9));

// ---------------------------------------------------------------------------
// 4. GC reachability property.
// ---------------------------------------------------------------------------

class GcPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GcPropertyTest, CollectKeepsExactlyTheReachable) {
  Rng rng(GetParam());
  Heap heap(8 * 1024 * 1024);

  // Build a random graph of ref-arrays.
  std::vector<ObjRef> nodes;
  for (int i = 0; i < 80; i++) {
    nodes.push_back(heap.AllocRefArray("[Ljava/lang/Object;", 4).value());
  }
  for (int e = 0; e < 160; e++) {
    ObjRef from = nodes[rng.Uniform(nodes.size())];
    ObjRef to = nodes[rng.Uniform(nodes.size())];
    heap.Get(from)->refs[rng.Uniform(4)] = to;
  }
  // Pick random roots and compute reachability independently.
  std::vector<ObjRef> roots;
  for (int r = 0; r < 5; r++) {
    roots.push_back(nodes[rng.Uniform(nodes.size())]);
  }
  std::set<ObjRef> reachable;
  std::vector<ObjRef> work = roots;
  while (!work.empty()) {
    ObjRef ref = work.back();
    work.pop_back();
    if (ref == kNullRef || !reachable.insert(ref).second) {
      continue;
    }
    for (ObjRef next : heap.Get(ref)->refs) {
      work.push_back(next);
    }
  }

  heap.Collect(roots);

  for (ObjRef node : nodes) {
    if (reachable.count(node)) {
      EXPECT_NE(heap.Get(node), nullptr) << "reachable object collected";
    } else {
      EXPECT_EQ(heap.Get(node), nullptr) << "garbage survived";
    }
  }
  EXPECT_EQ(heap.live_objects(), reachable.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GcPropertyTest, ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace dvm
