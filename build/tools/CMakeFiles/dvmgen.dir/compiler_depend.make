# Empty compiler generated dependencies file for dvmgen.
# This may be replaced when dependencies are built.
