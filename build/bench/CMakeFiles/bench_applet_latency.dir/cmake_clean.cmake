file(REMOVE_RECURSE
  "CMakeFiles/bench_applet_latency.dir/bench_applet_latency.cc.o"
  "CMakeFiles/bench_applet_latency.dir/bench_applet_latency.cc.o.d"
  "bench_applet_latency"
  "bench_applet_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_applet_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
